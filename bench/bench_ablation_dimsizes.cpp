// Ablation (Section 5 discussion): at a fixed VPT dimension n, balanced
// dimension sizes minimize the maximum message count but maximize the
// chance of forwarding; skewed sizes trade the other way. The paper elects
// not to explore this knob ("we can already obtain a similar trade-off by
// adjusting the VPT dimension") — this harness shows the trade-off exists,
// justifying that design choice.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/vpt.hpp"
#include "spmv/distributed.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  const auto machine = netsim::Machine::blue_gene_q(K);
  const auto inst = bench::make_instance("GaAsH6", K);
  const auto parts = inst.parts(K);
  const spmv::SpmvProblem problem(inst.matrix, parts, K, false);
  const auto pattern = problem.comm_pattern();

  struct Case {
    const char* label;
    std::vector<int> dims;
  };
  const Case cases[] = {
      {"T_2 balanced (16,16)", {16, 16}},
      {"T_2 skewed   (8,32)", {8, 32}},
      {"T_2 skewed   (4,64)", {4, 64}},
      {"T_2 skewed   (2,128)", {2, 128}},
      {"T_3 balanced (8,8,4)", {8, 8, 4}},
      {"T_3 skewed   (2,2,64)", {2, 2, 64}},
      {"T_3 skewed   (4,4,16)", {4, 4, 16}},
  };

  std::printf("Dimension-size ablation: GaAsH6 pattern at K=%d (BG/Q model)\n", K);
  std::printf("%-22s | %6s | %8s %9s %10s\n", "VPT", "bound", "mmax", "tot vol", "comm(us)");
  bench::print_rule(66);
  for (const Case& c : cases) {
    const core::Vpt vpt(c.dims);
    sim::SimOptions opts;
    opts.machine = &machine;
    const auto r = sim::simulate_exchange(vpt, pattern, opts);
    std::printf("%-22s | %6d | %8lld %9lld %10.0f\n", c.label, vpt.max_message_count_bound(),
                static_cast<long long>(r.metrics.max_send_count()),
                static_cast<long long>(r.metrics.total_volume_words()), r.comm_time_us);
  }
  std::printf("\nExpected: balanced sizes give the smallest mmax bound; skewing lowers\n"
              "total volume (fewer forwards) at the cost of a larger mmax.\n");
  return 0;
}
