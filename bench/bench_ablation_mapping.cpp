// Ablation for the paper's Section 8 future work, implemented in
// src/mapping: (1) mapping processes onto the VPT to reduce forwarding
// volume (Hamming distance of heavy pairs), and (2) mapping ranks onto the
// physical topology to reduce hop-weighted wire cost. The paper leaves both
// as future work; this harness quantifies what they would have bought.

#include <cstdio>

#include "bench_util.hpp"
#include "mapping/mapping.hpp"
#include "spmv/distributed.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  const auto machine = netsim::Machine::cray_xk7(K);

  std::printf("Section 8 (future work) ablation at K=%d on %s\n\n", K, machine.name().c_str());
  std::printf("%-18s %-8s | %10s %10s %7s | %10s %10s %7s\n", "matrix", "scheme", "vol(id)",
              "vol(map)", "saved", "comm(id)", "comm(map)", "saved");
  bench::print_rule(100);

  for (const char* name : {"GaAsH6", "gupta2", "coAuthorsDBLP"}) {
    const auto inst = bench::make_instance(name, K);
    const auto parts = inst.parts(K);
    const spmv::SpmvProblem problem(inst.matrix, parts, K, false);
    const auto pattern = problem.comm_pattern(bench::bench_entry_bytes());

    for (int dim : {2, 4}) {
      const core::Vpt vpt = core::Vpt::balanced(K, dim);
      const auto vmap = mapping::optimize_vpt_mapping(pattern, vpt);
      const auto mapped = mapping::permute_pattern(pattern, vmap);

      sim::SimOptions opts;
      opts.machine = &machine;
      const auto before = sim::simulate_exchange(vpt, pattern, opts);
      const auto after = sim::simulate_exchange(vpt, mapped, opts);
      std::printf("%-18s %-8s | %10lld %10lld %6.1f%% | %10.0f %10.0f %6.1f%%\n", name,
                  bench::scheme_name(dim).c_str(),
                  static_cast<long long>(before.metrics.total_volume_words()),
                  static_cast<long long>(after.metrics.total_volume_words()),
                  100.0 * (1.0 - static_cast<double>(after.metrics.total_volume_words()) /
                                     static_cast<double>(before.metrics.total_volume_words())),
                  before.comm_time_us, after.comm_time_us,
                  100.0 * (1.0 - after.comm_time_us / before.comm_time_us));
    }

    // Physical mapping applies to BL directly (hop-weighted wire cost).
    const auto pmap = mapping::optimize_physical_mapping(pattern, machine);
    std::printf("%-18s %-8s | hop cost %12llu -> %12llu (%5.1f%% saved)\n\n", name, "physical",
                static_cast<unsigned long long>(mapping::physical_hop_cost(
                    pattern, machine, mapping::Permutation::identity(K))),
                static_cast<unsigned long long>(
                    mapping::physical_hop_cost(pattern, machine, pmap)),
                100.0 * (1.0 - static_cast<double>(mapping::physical_hop_cost(pattern, machine,
                                                                              pmap)) /
                                   static_cast<double>(mapping::physical_hop_cost(
                                       pattern, machine,
                                       mapping::Permutation::identity(K)))));
  }
  std::printf("Expected: VPT mapping trims forwarding volume a further 5-30%% on top of\n"
              "the partitioner's locality; physical mapping trims hop-weighted cost.\n");
  return 0;
}
