// Ablation: how much of STFW's win depends on the (PaToH-style) hypergraph
// partitioner? The paper partitions all instances with PaToH to lower the
// baseline's volume; this harness feeds BL and STFW4 with hypergraph, block
// and cyclic row partitions. Expected: the partitioner reduces volume and
// message counts for everyone, but STFW's latency advantage over BL is
// robust to the partitioning choice.

#include <cstdio>

#include "bench_util.hpp"
#include "partition/partitioner.hpp"
#include "spmv/distributed.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  const auto machine = netsim::Machine::blue_gene_q(K);

  std::printf("Partitioner ablation at K=%d (BG/Q model)\n", K);
  std::printf("%-18s %-12s | %8s %9s | %10s %10s | %8s\n", "matrix", "partition", "BL mmax",
              "BL vol", "BL comm", "STFW4 comm", "speedup");
  bench::print_rule(100);

  for (const char* name : {"GaAsH6", "pattern1", "sparsine"}) {
    const auto inst = bench::make_instance(name, K);
    struct Labeling {
      const char* label;
      std::vector<std::int32_t> parts;
    };
    const Labeling labelings[] = {
        {"hypergraph", inst.parts(K)},
        {"block", partition::block_partition_rows(inst.matrix, K)},
        {"cyclic", partition::cyclic_partition(inst.matrix.num_rows(), K)},
    };
    for (const Labeling& l : labelings) {
      const spmv::SpmvProblem problem(inst.matrix, l.parts, K, false);
      const auto pattern = problem.comm_pattern();
      sim::SimOptions opts;
      opts.machine = &machine;
      const auto bl = sim::simulate_exchange(core::Vpt::direct(K), pattern, opts);
      const auto stfw =
          sim::simulate_exchange(core::Vpt::balanced(K, 4), pattern, opts);
      std::printf("%-18s %-12s | %8lld %9lld | %10.0f %10.0f | %7.2fx\n", name, l.label,
                  static_cast<long long>(bl.metrics.max_send_count()),
                  static_cast<long long>(bl.metrics.total_volume_words()), bl.comm_time_us,
                  stfw.comm_time_us, bl.comm_time_us / stfw.comm_time_us);
    }
  }
  std::printf("\nExpected: hypergraph partitioning lowers BL volume/mmax, yet STFW4 beats\n"
              "BL under every partitioning of these latency-bound instances.\n");
  return 0;
}
