// Reproduces the Section 4 analysis: for the all-to-all worst case it
// tabulates the closed-form maximum message count, exact forwarding volume
// (vs the loose n*V bound) and buffer bound, and verifies each against the
// simulator. The paper quotes the K = 256 ratios: T_2 -> 1.88 (loose 2),
// T_4 -> 3.01 (loose 4), T_8 -> 4.02 (loose 8).

#include <cstdio>

#include "core/analysis.hpp"
#include "core/vpt.hpp"
#include "sim/bsp_simulator.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  constexpr std::uint32_t kPayload = 8;  // one word per message, as in Section 4

  sim::CommPattern alltoall(K);
  for (core::Rank i = 0; i < K; ++i)
    for (core::Rank j = 0; j < K; ++j)
      if (i != j) alltoall.add_send(i, j, kPayload);
  alltoall.finalize();

  std::printf("Section 4 reproduction: all-to-all analysis at K=%d\n", K);
  std::printf("%-6s | %10s %10s | %12s %12s %8s | %12s %10s\n", "VPT", "mmax(anl)", "mmax(sim)",
              "vol ratio", "vol (sim)", "loose", "buf bound", "buf(sim)");
  for (int n = 1; n <= 8; ++n) {
    const core::Vpt vpt = core::Vpt::balanced(K, n);
    const auto r = sim::simulate_exchange(vpt, alltoall);
    const double vol_ratio = core::analysis::alltoall_volume_ratio(vpt);
    const double sim_ratio = static_cast<double>(r.metrics.total_volume_words()) /
                             (static_cast<double>(K) * (K - 1));
    std::printf("T_%-4d | %10lld %10lld | %12.3f %12.3f %8lld | %12lld %10llu\n", n,
                static_cast<long long>(core::analysis::max_message_count_bound(vpt)),
                static_cast<long long>(r.metrics.max_send_count()), vol_ratio, sim_ratio,
                static_cast<long long>(core::analysis::alltoall_volume_ratio_loose(vpt)),
                static_cast<long long>(core::analysis::buffer_bound_units(vpt) * kPayload),
                static_cast<unsigned long long>(r.metrics.max_buffer_bytes() / 2));
  }
  std::printf("\n(buf(sim) halved: our metric adds delivered bytes, also s*(K-1), to the\n"
              "parked-forward-buffer bound the paper derives.)\n"
              "Paper: ratios 1.88 / 3.01 / 4.02 for T_2 / T_4 / T_8 vs loose 2 / 4 / 8.\n");
  return 0;
}
