// Scheme comparison beyond the paper: BL vs hierarchical leader
// aggregation (the practitioner's usual fix, Section 7 adjacent) vs the
// node-aware two-level VPT vs the paper's balanced STFW. Leader aggregation
// bounds non-leader message counts but funnels all of a node's off-node
// traffic through one process; the VPT keeps every process a router.

#include <cstdio>

#include "bench_util.hpp"
#include "core/vpt.hpp"
#include "sim/leader_aggregation.hpp"
#include "spmv/distributed.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  const auto machine = netsim::Machine::blue_gene_q(K);  // 16 ranks/node

  std::printf("Scheme comparison at K=%d on %s\n\n", K, machine.name().c_str());
  std::printf("%-18s %-14s | %8s %8s %10s | %10s\n", "matrix", "scheme", "mmax", "mavg",
              "vol(words)", "comm(us)");
  bench::print_rule(84);

  for (const char* name : {"GaAsH6", "pattern1", "coAuthorsDBLP", "TSOPF_FS_b300_c2"}) {
    const auto inst = bench::make_instance(name, K);
    const auto parts = inst.parts(K);
    const spmv::SpmvProblem problem(inst.matrix, parts, K, false);
    const auto pattern = problem.comm_pattern(bench::bench_entry_bytes());
    sim::SimOptions opts;
    opts.machine = &machine;

    auto row = [&](const char* scheme, const core::ExchangeMetrics& m, double time_us) {
      std::printf("%-18s %-14s | %8lld %8.1f %10lld | %10.0f\n", name, scheme,
                  static_cast<long long>(m.max_send_count()), m.avg_send_count(),
                  static_cast<long long>(m.total_volume_words()), time_us);
    };

    const auto bl = sim::simulate_exchange(core::Vpt::direct(K), pattern, opts);
    row("BL", bl.metrics, bl.comm_time_us);
    const auto leader = sim::simulate_leader_aggregation(pattern, machine);
    row("leader-agg", leader.metrics, leader.comm_time_us);
    const auto node_aware = sim::simulate_exchange(
        core::Vpt::node_aware(K, machine.ranks_per_node()), pattern, opts);
    row("T2 node-aware", node_aware.metrics, node_aware.comm_time_us);
    const auto stfw4 = sim::simulate_exchange(core::Vpt::balanced(K, 4), pattern, opts);
    row("STFW4", stfw4.metrics, stfw4.comm_time_us);
    const auto stfw8 = sim::simulate_exchange(core::Vpt::balanced(K, 8), pattern, opts);
    row("STFW8", stfw8.metrics, stfw8.comm_time_us);
    bench::print_rule(84);
  }
  std::printf("\nExpected: leader aggregation already beats BL, but its busiest process\n"
              "(the leader) keeps a high message count; the VPT schemes spread routing\n"
              "over every process and win on the slowest-process metrics.\n");
  return 0;
}
