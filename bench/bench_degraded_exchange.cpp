// Cost of surviving a rank failure: healthy replay vs degraded replay.
//
// exchange_resilient() on a repeated pattern replays the frozen ExchangePlan;
// after a survivable rank crash the plan is incrementally repaired (detours
// over the relay lane, dead destinations dropped) and replayed among the
// survivors instead of being re-recorded. This harness prices that repaired
// replay against the all-alive baseline on one skewed pattern per K:
//
//   healthy    all K ranks alive; warm plain exchange() records the plan,
//              timed iterations replay it through exchange_resilient()
//   degraded   same warm-up, then a FaultInjector crashes rank 1 survivably
//              at stage 0 of the first resilient exchange; the timed
//              iterations replay the *repaired* plan among the K-1 survivors
//
// The crash exchange itself is untimed — it pays one-off detection and
// repair costs (retransmit timeouts toward the dead rank, the epoch bump,
// the plan diff); the steady state an iterative solver lives in afterwards
// is what the degraded rows measure. Rows land in
// BENCH_degraded_exchange.json for tools/compare_bench.py. Knobs:
// STFW_BENCH_DEGRADED_KMAX (default 128), STFW_BENCH_DEGRADED_ITERS (timed
// iterations, default 16), STFW_BENCH_DEGRADED_BYTES (base payload, 64).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/env.hpp"
#include "core/vpt.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

namespace {

using stfw::core::Rank;

/// splitmix64 — deterministic pattern generation, no <random> state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Skewed fixed pattern: every rank sends to ~12 pseudo-random peers with
/// sizes in [base, 4*base); rank 0 additionally sends to everyone. The
/// pattern is held constant across modes and iterations so the degraded
/// rows replay the same signature the healthy rows do — traffic whose
/// destination died is dropped at seed time, not rebuilt.
std::vector<std::vector<stfw::OutboundMessage>> build_pattern(Rank num_ranks,
                                                              std::uint32_t base_bytes,
                                                              std::uint64_t seed) {
  const auto nK = static_cast<std::size_t>(num_ranks);
  std::vector<std::vector<stfw::OutboundMessage>> sends(nK);
  for (Rank r = 0; r < num_ranks; ++r) {
    std::vector<bool> chosen(nK, false);
    auto add = [&](Rank dest) -> bool {
      if (dest == r || chosen[static_cast<std::size_t>(dest)]) return false;
      chosen[static_cast<std::size_t>(dest)] = true;
      const std::uint64_t h =
          mix(seed ^ (static_cast<std::uint64_t>(r) << 32) ^ static_cast<std::uint64_t>(dest));
      const std::uint32_t size = base_bytes * (1u + static_cast<std::uint32_t>(h % 4));
      stfw::OutboundMessage m;
      m.dest = dest;
      m.bytes.assign(size, std::byte{static_cast<unsigned char>(h)});
      sends[static_cast<std::size_t>(r)].push_back(std::move(m));
      return true;
    };
    if (r == 0) {
      for (Rank d = 1; d < num_ranks; ++d) add(d);
    } else {
      const int fanout = std::min<int>(12, num_ranks - 1);
      std::uint64_t h = mix(seed ^ static_cast<std::uint64_t>(r));
      int added = 0;
      for (int attempts = 0; added < fanout && attempts < 16 * fanout; ++attempts) {
        h = mix(h);
        if (add(static_cast<Rank>(h % static_cast<std::uint64_t>(num_ranks)))) ++added;
      }
    }
  }
  return sends;
}

enum class Mode { kHealthy, kDegraded };

const char* mode_name(Mode m) { return m == Mode::kHealthy ? "healthy" : "degraded"; }

constexpr Rank kCrashRank = 1;

struct ModeResult {
  double ns_per_exchange = 0.0;
  std::int64_t plan_repairs = 0;       // across all survivors, whole run
  std::int64_t relay_submessages = 0;  // per timed iteration, summed over survivors
  std::int64_t live_ranks = 0;
  std::uint32_t epoch = 0;  // membership epoch the timed iterations ran at
};

std::atomic<std::uint64_t> g_sink{0};  // defeats dead-code elimination

/// Tight enough that the crash exchange's retransmits toward the dead rank
/// resolve quickly, loose enough that healthy replay never trips a retry.
stfw::ResilienceOptions bench_options() {
  stfw::ResilienceOptions opt;
  opt.retransmit_timeout = std::chrono::milliseconds(5);
  opt.max_attempts = 8;
  opt.stage_deadline = std::chrono::milliseconds(2000);
  return opt;
}

ModeResult run_mode(const stfw::core::Vpt& vpt,
                    const std::vector<std::vector<stfw::OutboundMessage>>& pattern, int iters,
                    Mode mode, std::uint64_t seed) {
  const Rank num_ranks = vpt.size();
  stfw::runtime::Cluster cluster(num_ranks);
  std::shared_ptr<stfw::fault::FaultInjector> injector;
  if (mode == Mode::kDegraded) {
    stfw::fault::FaultConfig cfg;
    cfg.seed = seed;
    cfg.crash_rank = kCrashRank;
    // Visits 0..dim-1 belong to the warm plain exchange (which cannot
    // survive a crash); visit dim is stage 0 of the first resilient one.
    cfg.crash_visit = vpt.dim();
    cfg.crash_survivable = true;
    injector = std::make_shared<stfw::fault::FaultInjector>(cfg);
    cluster.set_fault_injector(injector);
  }

  double wall_ns = 0.0;
  std::atomic<std::int64_t> repairs{0};
  std::atomic<std::int64_t> relays{0};
  std::atomic<std::uint32_t> epoch{0};
  const stfw::ResilienceOptions opt = bench_options();
  cluster.run([&](stfw::runtime::Comm& comm) {
    stfw::StfwCommunicator communicator(comm, vpt);
    const auto& sends = pattern[static_cast<std::size_t>(comm.rank())];
    (void)communicator.exchange(sends);  // warm-up records the plan
    std::int64_t my_repairs = 0;
    if (mode == Mode::kDegraded) {
      // The crash exchange: rank kCrashRank dies at stage 0, survivors
      // detect the death, bump the epoch and repair the plan. Untimed.
      (void)communicator.exchange_resilient(sends, opt);
      my_repairs += communicator.last_stats().plan_repairs;
    }
    comm.barrier();  // alive-aware: released once every survivor arrives
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t received = 0;
    std::int64_t my_relays = 0;
    for (int it = 0; it < iters; ++it) {
      const stfw::ResilientExchangeResult result = communicator.exchange_resilient(sends, opt);
      for (const stfw::InboundMessage& m : result.delivered) received += m.bytes.size();
      my_repairs += communicator.last_stats().plan_repairs;
      my_relays += communicator.last_stats().relay_submessages;
    }
    comm.barrier();
    const auto t1 = std::chrono::steady_clock::now();
    g_sink.fetch_add(received, std::memory_order_relaxed);
    repairs.fetch_add(my_repairs, std::memory_order_relaxed);
    relays.fetch_add(my_relays, std::memory_order_relaxed);
    if (comm.rank() == 0) {
      epoch.store(communicator.last_stats().membership_epoch, std::memory_order_relaxed);
      wall_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    }
  });
  cluster.set_fault_injector(nullptr);

  ModeResult out;
  out.ns_per_exchange = wall_ns / static_cast<double>(iters);
  out.plan_repairs = repairs.load();
  out.relay_submessages = relays.load();
  out.live_ranks = num_ranks - static_cast<Rank>(cluster.membership().failed().size());
  out.epoch = epoch.load();
  if (mode == Mode::kDegraded && injector->counters().crashes != 1)
    std::fprintf(stderr, "warning: K=%d expected 1 injected crash, saw %lld\n", num_ranks,
                 static_cast<long long>(injector->counters().crashes));
  return out;
}

}  // namespace

int main() {
  using stfw::bench::Json;
  using stfw::bench::fmt;

  const int kmax = static_cast<int>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_DEGRADED_KMAX", 128), 4, 4096));
  const int iters = static_cast<int>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_DEGRADED_ITERS", 16), 1, 100000));
  const auto base_bytes = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_DEGRADED_BYTES", 64), 1, 1 << 20));

  Json root = stfw::bench::bench_json_envelope("degraded_exchange");
  root.set("config", Json::object()
                         .set("kmax", Json::integer(kmax))
                         .set("iters", Json::integer(iters))
                         .set("payload_base_bytes", Json::integer(base_bytes))
                         .set("crash_rank", Json::integer(kCrashRank))
                         .set("seed", Json::integer(static_cast<std::int64_t>(
                                          stfw::bench::bench_seed()))));
  Json results = Json::array();

  std::printf("healthy vs one-rank-dead repaired-plan replay, %d timed iterations\n", iters);
  std::printf("%6s %10s %6s %14s %9s %9s %10s\n", "K", "mode", "live", "ns/exchange",
              "repairs", "relays", "overhead");
  stfw::bench::print_rule(70);

  for (const Rank num_ranks : {16, 32, 64, 128, 256}) {
    if (num_ranks > kmax) break;
    const stfw::core::Vpt vpt = stfw::core::Vpt::balanced(num_ranks, 2);
    const std::uint64_t seed =
        stfw::bench::bench_seed() ^ static_cast<std::uint64_t>(num_ranks);
    const auto pattern = build_pattern(num_ranks, base_bytes, seed);

    double healthy_ns = 0.0;
    for (const Mode mode : {Mode::kHealthy, Mode::kDegraded}) {
      const ModeResult r = run_mode(vpt, pattern, iters, mode, seed);
      if (mode == Mode::kHealthy) healthy_ns = r.ns_per_exchange;
      const double overhead = healthy_ns > 0.0 ? r.ns_per_exchange / healthy_ns : 0.0;
      std::printf("%6d %10s %6lld %14.0f %9lld %9lld %10s\n", num_ranks, mode_name(mode),
                  static_cast<long long>(r.live_ranks), r.ns_per_exchange,
                  static_cast<long long>(r.plan_repairs),
                  static_cast<long long>(r.relay_submessages), (fmt(overhead, 2) + "x").c_str());
      std::string row_name = "K";
      row_name += std::to_string(num_ranks);
      row_name += '/';
      row_name += mode_name(mode);
      results.push(Json::object()
                       .set("name", Json::string(std::move(row_name)))
                       .set("mode", Json::string(mode_name(mode)))
                       .set("scheme", Json::string(stfw::bench::scheme_name(2)))
                       .set("ranks", Json::integer(num_ranks))
                       .set("live_ranks", Json::integer(r.live_ranks))
                       .set("iters", Json::integer(iters))
                       .set("membership_epoch", Json::integer(r.epoch))
                       .set("plan_repairs", Json::integer(r.plan_repairs))
                       .set("relay_submessages", Json::integer(r.relay_submessages))
                       .set("wall_ns_per_exchange", Json::number(r.ns_per_exchange))
                       .set("overhead_vs_healthy", Json::number(overhead)));
    }
  }

  root.set("results", std::move(results));
  const std::string path = stfw::bench::write_bench_json("degraded_exchange", root);
  std::printf("\nwrote %s (sink %llu)\n", path.c_str(),
              static_cast<unsigned long long>(g_sink.load()));
  return 0;
}
