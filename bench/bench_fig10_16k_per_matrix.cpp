// Reproduces Figure 10: per-matrix communication times of the seven STFW
// dimensions on 16K processes (Cray XK7 model), with the BL value reported
// as text per matrix as in the paper. The middle dimensions (STFW4/8/9)
// generally win; the lowest stay latency-bound and the highest pay too much
// forwarding volume.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/vpt.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 16384;
  const auto machine = netsim::Machine::cray_xk7(K);
  const int lg = core::floor_log2(K);  // 14
  const std::vector<int> dims{2, 3, 4, lg / 2 + 1, lg / 2 + 2, lg - 1, lg};

  std::printf("Figure 10 reproduction: comm time (us) per matrix at K=%d on XK7 model\n\n", K);
  std::printf("%-18s | %8s |", "matrix", "BL");
  for (int d : dims) std::printf(" %8s", bench::scheme_name(d).c_str());
  std::printf(" | best\n");
  bench::print_rule(110);

  for (const auto& spec : sparse::paper_matrices_large()) {
    const auto inst = bench::make_instance(std::string(spec.name), K);
    const auto bl = bench::run_scheme(inst, K, 1, machine);
    std::printf("%-18s | %8.0f |", inst.name.c_str(), bl.comm_us);
    double best = bl.comm_us;
    std::string best_name = "BL";
    for (int d : dims) {
      const auto r = bench::run_scheme(inst, K, d, machine);
      std::printf(" %8.0f", r.comm_us);
      if (r.comm_us < best) {
        best = r.comm_us;
        best_name = r.scheme;
      }
    }
    std::printf(" | %s (%.1fx)\n", best_name.c_str(), bl.comm_us / best);
  }
  std::printf("\nPaper shape: BL is one to two orders of magnitude above the best STFW\n"
              "(e.g. mip1 BL 91281us vs sub-2000us STFW); middle dims win most often.\n");
  return 0;
}
