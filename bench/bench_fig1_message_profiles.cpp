// Reproduces Figure 1: per-process send-message counts of SpMV at K = 256
// for pattern1, pkustk04 and sparsine under the BL baseline, showing the
// large gap between the maximum (solid line in the paper) and the average
// (dashed line) message count.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "spmv/distributed.hpp"

namespace {

void profile(const stfw::bench::Instance& inst, stfw::core::Rank K) {
  using namespace stfw;
  const auto parts = inst.parts(K);
  const spmv::SpmvProblem problem(inst.matrix, parts, K, /*build_plans=*/false);
  const auto pattern = problem.comm_pattern();
  const auto counts = pattern.send_counts();
  const auto mmax = pattern.max_send_count();
  const double avg = pattern.avg_send_count();

  std::printf("\n%s  (K=%d): max=%lld avg=%.1f  max/avg=%.1fx\n", inst.name.c_str(), K,
              static_cast<long long>(mmax), avg, static_cast<double>(mmax) / std::max(avg, 1e-9));
  // 64-bucket ASCII profile over process id (paper plots full 256 points).
  constexpr int kBuckets = 64;
  constexpr int kHeight = 12;
  std::vector<double> bucket(kBuckets, 0.0);
  for (std::size_t r = 0; r < counts.size(); ++r) {
    const auto b = static_cast<std::size_t>(r * kBuckets / counts.size());
    bucket[b] = std::max(bucket[b], static_cast<double>(counts[r]));
  }
  for (int h = kHeight; h >= 1; --h) {
    const double level = static_cast<double>(mmax) * h / kHeight;
    std::putchar(std::abs(level - avg) < static_cast<double>(mmax) / kHeight ? '~' : ' ');
    for (int b = 0; b < kBuckets; ++b)
      std::putchar(bucket[static_cast<std::size_t>(b)] >= level ? '#' : ' ');
    if (h == kHeight) std::printf(" <- max (%lld msgs)", static_cast<long long>(mmax));
    std::putchar('\n');
  }
  std::printf(" %s\n", std::string(kBuckets, '-').c_str());
  std::printf(" process id ->   (~ row marks the average, %.1f msgs)\n", avg);
}

}  // namespace

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  std::printf("Figure 1 reproduction: per-process message counts under BL at K=%d\n", K);
  for (const char* name : {"pattern1", "pkustk04", "sparsine"})
    profile(bench::make_instance(name, K), K);
  return 0;
}
