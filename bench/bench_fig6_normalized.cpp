// Reproduces Figure 6: the Table 2 metrics at K = 256 for every STFW
// dimension, normalized to BL (log-scale bars in the paper; printed ratios
// here). A value y > 1 means BL is y times better; y < 1 means STFW is
// 1/y times better.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  const auto machine = netsim::Machine::blue_gene_q(K);

  std::vector<bench::Instance> instances;
  for (const auto& spec : sparse::paper_matrices_small())
    instances.push_back(bench::make_instance(std::string(spec.name), K));

  auto geomeans_for = [&](int dim) {
    std::vector<double> mmax, mavg, vavg, comm, spmv;
    for (const auto& inst : instances) {
      const auto r = bench::run_scheme(inst, K, dim, machine);
      mmax.push_back(static_cast<double>(r.mmax));
      mavg.push_back(r.mavg);
      vavg.push_back(r.vavg);
      comm.push_back(r.comm_us);
      spmv.push_back(r.spmv_us);
    }
    return std::vector<double>{bench::geomean(vavg), bench::geomean(mmax), bench::geomean(mavg),
                               bench::geomean(comm), bench::geomean(spmv)};
  };

  const auto bl = geomeans_for(1);
  std::printf("Figure 6 reproduction: STFW metrics at K=%d normalized to BL\n", K);
  std::printf("%-6s | %9s %9s %9s %9s %9s\n", "VPT", "avg vol", "max msg", "avg msg", "comm t",
              "spmv t");
  bench::print_rule(66);
  for (int dim = 2; dim <= 8; ++dim) {
    const auto v = geomeans_for(dim);
    std::printf("T_%-4d | %9.2f %9.2f %9.2f %9.2f %9.2f\n", dim, v[0] / bl[0], v[1] / bl[1],
                v[2] / bl[2], v[3] / bl[3], v[4] / bl[4]);
  }
  std::printf("\nPaper shape: avg volume rises to ~2.4-3x, max/avg msg count falls to\n"
              "~0.07-0.15x, comm and SpMV times fall below 1x for every dimension.\n");
  return 0;
}
