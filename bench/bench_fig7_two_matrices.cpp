// Reproduces Figure 7: a per-dimension comparison of GaAsH6 and
// coAuthorsDBLP at K = 256 in four panels — average volume, average message
// count, maximum message count, parallel SpMV runtime. The two matrices
// have comparable volume statistics, but coAuthorsDBLP is more
// latency-bound, so STFW's latency wins show up more prominently in its
// SpMV time.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace stfw;
  constexpr core::Rank K = 256;
  const auto machine = netsim::Machine::blue_gene_q(K);

  const auto gaas = bench::make_instance("GaAsH6", K);
  const auto dblp = bench::make_instance("coAuthorsDBLP", K);

  std::printf("Figure 7 reproduction: GaAsH6 vs coAuthorsDBLP at K=%d (BG/Q model)\n\n", K);
  std::printf("%-8s | %9s %9s | %8s %8s | %8s %8s | %9s %9s\n", "scheme", "vavg:GaAs",
              "vavg:DBLP", "mavg:G", "mavg:D", "mmax:G", "mmax:D", "spmv:G", "spmv:D");
  bench::print_rule(100);
  for (int dim = 1; dim <= 8; ++dim) {
    const auto g = bench::run_scheme(gaas, K, dim, machine);
    const auto d = bench::run_scheme(dblp, K, dim, machine);
    std::printf("%-8s | %9.0f %9.0f | %8.1f %8.1f | %8lld %8lld | %9.0f %9.0f\n",
                bench::scheme_name(dim).c_str(), g.vavg, d.vavg, g.mavg, d.mavg,
                static_cast<long long>(g.mmax), static_cast<long long>(d.mmax), g.spmv_us,
                d.spmv_us);
  }
  const auto g_bl = bench::run_scheme(gaas, K, 1, machine);
  const auto g_best = bench::run_scheme(gaas, K, 8, machine);
  const auto d_bl = bench::run_scheme(dblp, K, 1, machine);
  const auto d_best = bench::run_scheme(dblp, K, 8, machine);
  std::printf("\nSpMV speedup BL -> STFW8:  GaAsH6 %.2fx,  coAuthorsDBLP %.2fx\n",
              g_bl.spmv_us / g_best.spmv_us, d_bl.spmv_us / d_best.spmv_us);
  std::printf("Paper shape: the more latency-bound coAuthorsDBLP gains more.\n");
  return 0;
}
