// Reproduces Figure 8: strong-scaling of parallel SpMV runtime on the
// BlueGene/Q model for 12 matrices, K = 32..512, comparing BL against the
// even STFW dimensions {2, 4, 6, 8}. The paper's finding: latency-bound
// instances (coAuthorsDBLP, GaAsH6, gupta2, human_gene2, net125, pattern1,
// sparsine, TSOPF_FS_b300_c2) stop scaling under BL but keep scaling under
// STFW; milder instances separate only at larger K.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/vpt.hpp"

int main() {
  using namespace stfw;
  const std::vector<core::Rank> rank_counts{32, 64, 128, 256, 512};
  constexpr core::Rank kMaxRanks = 512;
  const char* matrices[12] = {"coAuthorsDBLP", "coPapersCiteseer", "fe_rotor",
                              "GaAsH6",        "gupta2",           "human_gene2",
                              "nd3k",          "net125",           "pattern1",
                              "pkustk04",      "sparsine",         "TSOPF_FS_b300_c2"};
  const std::vector<int> dims{1, 2, 4, 6, 8};  // 1 = BL

  std::printf("Figure 8 reproduction: SpMV runtime (us, simulated BG/Q) vs K\n");
  for (const char* name : matrices) {
    const auto inst = bench::make_instance(name, kMaxRanks);
    std::printf("\n%-18s |", name);
    for (int dim : dims) std::printf(" %9s", bench::scheme_name(dim).c_str());
    std::printf("\n");
    bench::print_rule(70);
    for (core::Rank K : rank_counts) {
      const auto machine = netsim::Machine::blue_gene_q(K);
      std::printf("K=%-16d |", K);
      for (int dim : dims) {
        if (dim > core::floor_log2(K)) {
          std::printf(" %9s", "-");
          continue;
        }
        const auto r = bench::run_scheme(inst, K, dim, machine);
        std::printf(" %9.0f", r.spmv_us);
      }
      std::printf("\n");
    }
  }
  std::printf("\nPaper shape: BL flattens or inverts with K on the latency-bound\n"
              "instances while STFW keeps descending; STFW2 can lose to higher dims\n"
              "except on volume-heavy TSOPF_FS_b300_c2.\n");
  return 0;
}
