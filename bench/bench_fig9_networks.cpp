// Reproduces Figure 9: geometric-mean communication times of BL and all
// STFW dimensions at K = 128 and K = 512 on two different networks — the
// BlueGene/Q torus and the Cray XC40 dragonfly. The paper's finding: STFW
// helps on both, and helps *more* on the XC40 because its network is more
// latency-bound (larger startup-to-per-byte ratio).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/vpt.hpp"
#include "sim/bsp_simulator.hpp"
#include "spmv/distributed.hpp"

namespace {

using namespace stfw;

double comm_geomean(const std::vector<bench::Instance>& instances, core::Rank K, int dim,
                    const netsim::Machine& machine, std::uint32_t entry_bytes) {
  std::vector<double> times;
  for (const auto& inst : instances) {
    const auto parts = inst.parts(K);
    const spmv::SpmvProblem problem(inst.matrix, parts, K, false);
    const auto pattern = problem.comm_pattern(entry_bytes);
    const core::Vpt vpt = dim <= 1 ? core::Vpt::direct(K) : core::Vpt::balanced(K, dim);
    sim::SimOptions opts;
    opts.machine = &machine;
    times.push_back(sim::simulate_exchange(vpt, pattern, opts).comm_time_us);
  }
  return bench::geomean(times);
}

}  // namespace

int main() {
  constexpr core::Rank kMaxRanks = 512;
  std::vector<bench::Instance> instances;
  for (const auto& spec : sparse::paper_matrices_small())
    instances.push_back(bench::make_instance(std::string(spec.name), kMaxRanks));

  std::printf("Figure 9 reproduction: comm time (us, geomean over %zu matrices)\n",
              instances.size());
  // Two volume regimes: one word per x entry (the paper's SpMV; at our
  // scaled sizes everything is startup-dominated, so both networks improve
  // alike) and a heavy-entry regime where the bandwidth term is alive and
  // the more latency-bound XC40 network gains visibly more from STFW, as in
  // the paper.
  for (const std::uint32_t entry_bytes : {bench::bench_entry_bytes(), 2048u}) {
    std::printf("\n=== %u bytes per communicated entry ===\n", entry_bytes);
    for (core::Rank K : {core::Rank{128}, core::Rank{512}}) {
      const auto bgq = netsim::Machine::blue_gene_q(K);
      const auto xc40 = netsim::Machine::cray_xc40(K);
      std::printf("\n%d processes\n%-8s | %12s %12s | %10s %10s\n", K, "scheme", "BG/Q torus",
                  "XC40 dfly", "vs BL", "vs BL");
      bench::print_rule(64);
      double bl_bgq = 0.0, bl_xc40 = 0.0;
      for (int dim = 1; dim <= core::floor_log2(K); ++dim) {
        const double g_bgq = comm_geomean(instances, K, dim, bgq, entry_bytes);
        const double g_xc40 = comm_geomean(instances, K, dim, xc40, entry_bytes);
        if (dim == 1) {
          bl_bgq = g_bgq;
          bl_xc40 = g_xc40;
        }
        std::printf("%-8s | %12.0f %12.0f | %9.0f%% %9.0f%%\n", bench::scheme_name(dim).c_str(),
                    g_bgq, g_xc40, 100.0 * (1.0 - g_bgq / bl_bgq),
                    100.0 * (1.0 - g_xc40 / bl_xc40));
      }
    }
  }
  std::printf("\nPaper reference: at K=128 STFW4 improves 45%% (BG/Q) and 70%% (XC40);\n"
              "at K=512 the improvements rise to 69%% and 85%%.\n");
  return 0;
}
