// Micro-benchmarks (google-benchmark) of the core routing machinery: VPT
// coordinate math, SendSet seeding, stage outbox formation, wire
// serialization, and whole-exchange simulator throughput.

#include <benchmark/benchmark.h>

#include <random>

#include "core/rank_state.hpp"
#include "core/vpt.hpp"
#include "core/wire.hpp"
#include "sim/bsp_simulator.hpp"

namespace {

using namespace stfw;
using core::Rank;
using core::Vpt;

void BM_VptCoordRoundTrip(benchmark::State& state) {
  const Vpt vpt = Vpt::balanced(4096, static_cast<int>(state.range(0)));
  Rank r = 1;
  for (auto _ : state) {
    const auto c = vpt.coords_of(r);
    benchmark::DoNotOptimize(vpt.rank_of(c));
    r = static_cast<Rank>((static_cast<std::uint32_t>(r) * 2654435761u + 1) %
                          static_cast<std::uint32_t>(vpt.size()));
  }
}
BENCHMARK(BM_VptCoordRoundTrip)->Arg(2)->Arg(6)->Arg(12);

void BM_VptFirstDiffDim(benchmark::State& state) {
  const Vpt vpt = Vpt::balanced(16384, static_cast<int>(state.range(0)));
  Rank a = 7, b = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vpt.first_diff_dim(a, b));
    a = (a + 97) % vpt.size();
    b = (b + 41) % vpt.size();
  }
}
BENCHMARK(BM_VptFirstDiffDim)->Arg(2)->Arg(7)->Arg(14);

void BM_SendSetSeeding(benchmark::State& state) {
  const Vpt vpt = Vpt::balanced(1024, static_cast<int>(state.range(0)));
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<Rank> pick(0, vpt.size() - 1);
  std::vector<Rank> dests(512);
  for (auto& d : dests) d = pick(rng);
  for (auto _ : state) {
    core::StfwRankState s(vpt, 0);
    for (Rank d : dests)
      if (d != 0) s.add_send(d, 0, 64);
    benchmark::DoNotOptimize(s.buffered_payload_bytes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dests.size()));
}
BENCHMARK(BM_SendSetSeeding)->Arg(2)->Arg(5)->Arg(10);

void BM_WireSerializeRoundTrip(benchmark::State& state) {
  core::PayloadArena arena;
  core::StageMessage msg{0, 1, {}};
  const std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)));
  for (int i = 0; i < 64; ++i)
    msg.subs.push_back(core::Submessage{i, i + 1, arena.add(payload),
                                        static_cast<std::uint32_t>(payload.size())});
  for (auto _ : state) {
    const auto wire = core::serialize(msg, arena);
    core::PayloadArena scratch;
    benchmark::DoNotOptimize(core::deserialize(wire, scratch));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(core::wire_size_bytes(
                              64, 64 * static_cast<std::uint64_t>(state.range(0)))));
}
BENCHMARK(BM_WireSerializeRoundTrip)->Arg(16)->Arg(256)->Arg(4096);

void BM_SimulateExchange(benchmark::State& state) {
  const auto K = static_cast<Rank>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Rank> pick(0, K - 1);
  sim::CommPattern pattern(K);
  for (Rank r = 0; r < K; ++r)
    for (int j = 0; j < 16; ++j) pattern.add_send(r, pick(rng), 64);
  pattern.finalize();
  const Vpt vpt = dim <= 1 ? Vpt::direct(K) : Vpt::balanced(K, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_exchange(vpt, pattern));
  }
  state.SetItemsProcessed(state.iterations() * pattern.total_messages());
}
BENCHMARK(BM_SimulateExchange)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 5})
    ->Args({1024, 10})
    ->Args({8192, 4});

}  // namespace

BENCHMARK_MAIN();
