// Planned-vs-unplanned exchange() on repeated identical patterns.
//
// The iterative-solver loop (spmv::run_distributed) re-issues the same send
// pattern every iteration; the persistent-plan layer trades the per-exchange
// route derivation and frame assembly for a one-time recording. This harness
// measures that trade at several K on one skewed pattern per K:
//
//   unplanned  plan cache disabled (capacity 0) — Algorithm 1 every time
//   cached     transparent plan cache: one warm-up records, timed iterations
//              replay (plain exchange(), no API change)
//   planned    explicit plan() + barrier-free replay. With zero-copy enabled
//              (STFW_ZERO_COPY, the default) the timed loop drives
//              exchange_views() — pooled gather out, views in — i.e. the
//              full zero-copy hot path; with STFW_ZERO_COPY=0 it drives the
//              historical copying exchange(plan, payloads), which is the A/B
//              baseline the CI zero-copy gate compares against.
//
// Rows land in BENCH_micro_exchange.json (schema: docs/performance.md) for
// tools/compare_bench.py. Knobs: STFW_BENCH_MICRO_KMAX (default 512),
// STFW_BENCH_MICRO_ITERS (timed iterations, default 16),
// STFW_BENCH_MICRO_BYTES (base payload size, default 64).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

namespace {

using stfw::core::Rank;

/// splitmix64 — deterministic pattern generation, no <random> state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Skewed fixed pattern: every rank sends to ~12 pseudo-random peers with
/// sizes in [base, 4*base); rank 0 additionally sends to everyone (the
/// high-fan-out row that makes BL mmax explode in the paper).
std::vector<std::vector<stfw::OutboundMessage>> build_pattern(Rank num_ranks,
                                                              std::uint32_t base_bytes,
                                                              std::uint64_t seed) {
  const auto nK = static_cast<std::size_t>(num_ranks);
  std::vector<std::vector<stfw::OutboundMessage>> sends(nK);
  for (Rank r = 0; r < num_ranks; ++r) {
    std::vector<bool> chosen(nK, false);
    auto add = [&](Rank dest) -> bool {
      if (dest == r || chosen[static_cast<std::size_t>(dest)]) return false;
      chosen[static_cast<std::size_t>(dest)] = true;
      const std::uint64_t h =
          mix(seed ^ (static_cast<std::uint64_t>(r) << 32) ^ static_cast<std::uint64_t>(dest));
      const std::uint32_t size = base_bytes * (1u + static_cast<std::uint32_t>(h % 4));
      stfw::OutboundMessage m;
      m.dest = dest;
      m.bytes.assign(size, std::byte{static_cast<unsigned char>(h)});
      sends[static_cast<std::size_t>(r)].push_back(std::move(m));
      return true;
    };
    if (r == 0) {
      for (Rank d = 1; d < num_ranks; ++d) add(d);
    } else {
      const int fanout = std::min<int>(12, num_ranks - 1);
      std::uint64_t h = mix(seed ^ static_cast<std::uint64_t>(r));
      int added = 0;
      for (int attempts = 0; added < fanout && attempts < 16 * fanout; ++attempts) {
        h = mix(h);
        if (add(static_cast<Rank>(h % static_cast<std::uint64_t>(num_ranks)))) ++added;
      }
    }
  }
  return sends;
}

enum class Mode { kUnplanned, kCached, kPlanned };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kUnplanned: return "unplanned";
    case Mode::kCached: return "cached";
    case Mode::kPlanned: return "planned";
  }
  return "?";
}

struct ModeResult {
  double ns_per_exchange = 0.0;
  double plan_hit_rate = 0.0;
};

std::atomic<std::uint64_t> g_sink{0};  // defeats dead-code elimination

ModeResult run_mode(stfw::runtime::Cluster& cluster, const stfw::core::Vpt& vpt,
                    const std::vector<std::vector<stfw::OutboundMessage>>& pattern, int iters,
                    Mode mode) {
  double wall_ns = 0.0;
  std::atomic<std::int64_t> hits{0};
  cluster.run([&](stfw::runtime::Comm& comm) {
    stfw::StfwCommunicator communicator(comm, vpt);
    const auto& sends = pattern[static_cast<std::size_t>(comm.rank())];
    std::shared_ptr<stfw::runtime::ExchangePlan> plan;
    switch (mode) {
      case Mode::kUnplanned: communicator.set_plan_cache_capacity(0); break;
      case Mode::kCached: (void)communicator.exchange(sends); break;  // warm-up records
      case Mode::kPlanned: plan = communicator.plan(sends); break;
    }
    std::vector<std::span<const std::byte>> payloads;
    payloads.reserve(sends.size());
    for (const auto& s : sends) payloads.emplace_back(s.bytes);
    const bool views = plan != nullptr && communicator.zero_copy_enabled();
    comm.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t received = 0;
    std::int64_t my_hits = 0;
    for (int it = 0; it < iters; ++it) {
      if (views) {
        for (const stfw::runtime::InboundView& v : communicator.exchange_views(*plan, payloads))
          received += v.bytes.size();
      } else {
        std::vector<stfw::InboundMessage> result =
            plan ? communicator.exchange(*plan, sends) : communicator.exchange(sends);
        for (const stfw::InboundMessage& m : result) received += m.bytes.size();
      }
      my_hits += communicator.last_stats().plan_hits;
    }
    comm.barrier();
    const auto t1 = std::chrono::steady_clock::now();
    g_sink.fetch_add(received, std::memory_order_relaxed);
    hits.fetch_add(my_hits, std::memory_order_relaxed);
    if (comm.rank() == 0)
      wall_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  });
  ModeResult out;
  out.ns_per_exchange = wall_ns / static_cast<double>(iters);
  out.plan_hit_rate = static_cast<double>(hits.load()) /
                      static_cast<double>(static_cast<std::int64_t>(cluster.size()) * iters);
  return out;
}

}  // namespace

int main() {
  using stfw::bench::Json;
  using stfw::bench::fmt;

  const int kmax = static_cast<int>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_MICRO_KMAX", 512), 4, 4096));
  const int iters = static_cast<int>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_MICRO_ITERS", 16), 1, 100000));
  const auto base_bytes = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_MICRO_BYTES", 64), 1, 1 << 20));

  Json root = stfw::bench::bench_json_envelope("micro_exchange");
  root.set("config", Json::object()
                         .set("kmax", Json::integer(kmax))
                         .set("iters", Json::integer(iters))
                         .set("payload_base_bytes", Json::integer(base_bytes))
                         .set("zero_copy", Json::boolean(
                                               stfw::core::env_flag("STFW_ZERO_COPY", true)))
                         .set("seed", Json::integer(static_cast<std::int64_t>(
                                          stfw::bench::bench_seed()))));
  Json results = Json::array();

  std::printf("planned vs unplanned exchange, %d timed iterations per mode\n", iters);
  std::printf("%6s %10s %6s %12s %14s %9s %9s\n", "K", "mode", "mmax", "volume_B",
              "ns/exchange", "hit_rate", "speedup");
  stfw::bench::print_rule(74);

  for (const Rank num_ranks : {32, 64, 128, 256, 512}) {
    if (num_ranks > kmax) break;
    const stfw::core::Vpt vpt = stfw::core::Vpt::balanced(num_ranks, 2);
    const auto pattern =
        build_pattern(num_ranks, base_bytes, stfw::bench::bench_seed() ^
                                                 static_cast<std::uint64_t>(num_ranks));
    std::int64_t mmax = 0;
    std::uint64_t volume = 0;
    for (const auto& sends : pattern) {
      mmax = std::max(mmax, static_cast<std::int64_t>(sends.size()));
      for (const auto& s : sends) volume += s.bytes.size();
    }

    stfw::runtime::Cluster cluster(num_ranks);
    double unplanned_ns = 0.0;
    for (const Mode mode : {Mode::kUnplanned, Mode::kCached, Mode::kPlanned}) {
      const ModeResult r = run_mode(cluster, vpt, pattern, iters, mode);
      if (mode == Mode::kUnplanned) unplanned_ns = r.ns_per_exchange;
      const double speedup =
          r.ns_per_exchange > 0.0 ? unplanned_ns / r.ns_per_exchange : 0.0;
      std::printf("%6d %10s %6lld %12llu %14.0f %9.2f %9s\n", num_ranks, mode_name(mode),
                  static_cast<long long>(mmax), static_cast<unsigned long long>(volume),
                  r.ns_per_exchange, r.plan_hit_rate, (fmt(speedup, 2) + "x").c_str());
      std::string row_name = "K";
      row_name += std::to_string(num_ranks);
      row_name += '/';
      row_name += mode_name(mode);
      results.push(Json::object()
                       .set("name", Json::string(std::move(row_name)))
                       .set("mode", Json::string(mode_name(mode)))
                       .set("scheme", Json::string(stfw::bench::scheme_name(2)))
                       .set("ranks", Json::integer(num_ranks))
                       .set("iters", Json::integer(iters))
                       .set("mmax", Json::integer(mmax))
                       .set("volume_bytes", Json::integer(static_cast<std::int64_t>(volume)))
                       .set("wall_ns_per_exchange", Json::number(r.ns_per_exchange))
                       .set("plan_hit_rate", Json::number(r.plan_hit_rate))
                       .set("speedup_vs_unplanned", Json::number(speedup)));
    }
  }

  root.set("results", std::move(results));
  const std::string path = stfw::bench::write_bench_json("micro_exchange", root);
  std::printf("\nwrote %s (sink %llu)\n", path.c_str(),
              static_cast<unsigned long long>(g_sink.load()));
  return 0;
}
