// Micro-benchmarks (google-benchmark) of the substrates: synthetic matrix
// generation, column-net hypergraph construction, multilevel partitioning
// and SpMV communication-pattern extraction.

#include <benchmark/benchmark.h>

#include "partition/partitioner.hpp"
#include "sparse/generators.hpp"
#include "spmv/distributed.hpp"

namespace {

using namespace stfw;

sparse::Csr test_matrix(double scale) {
  return sparse::generate(
      sparse::scaled_spec(sparse::find_paper_matrix("GaAsH6"), scale, 512), 42);
}

void BM_GenerateMatrix(benchmark::State& state) {
  const auto spec = sparse::scaled_spec(sparse::find_paper_matrix("GaAsH6"),
                                        static_cast<double>(state.range(0)) / 1000.0, 512);
  for (auto _ : state) benchmark::DoNotOptimize(sparse::generate(spec, 1));
  state.SetItemsProcessed(state.iterations() * spec.nnz);
}
BENCHMARK(BM_GenerateMatrix)->Arg(10)->Arg(50)->Arg(100);

void BM_ColumnNetModel(benchmark::State& state) {
  const auto a = test_matrix(static_cast<double>(state.range(0)) / 1000.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(partition::Hypergraph::column_net_model(a));
  state.SetItemsProcessed(state.iterations() * a.num_nonzeros());
}
BENCHMARK(BM_ColumnNetModel)->Arg(20)->Arg(100);

void BM_PartitionKWay(benchmark::State& state) {
  const auto a = test_matrix(0.03);
  partition::PartitionOptions opts;
  opts.num_parts = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(partition::partition_rows(a, opts));
  state.SetItemsProcessed(state.iterations() * a.num_nonzeros());
}
BENCHMARK(BM_PartitionKWay)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CommPatternExtraction(benchmark::State& state) {
  const auto a = test_matrix(0.05);
  const auto parts =
      partition::cyclic_partition(a.num_rows(), static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    spmv::SpmvProblem problem(a, parts, static_cast<core::Rank>(state.range(0)), false);
    benchmark::DoNotOptimize(problem.comm_pattern());
  }
  state.SetItemsProcessed(state.iterations() * a.num_nonzeros());
}
BENCHMARK(BM_CommPatternExtraction)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
