// Communication/computation overlap on the dependency-driven exchange.
//
// The solver loop does one exchange plus one local compute phase per
// iteration. Three schedules of that pair are timed on the same skewed
// pattern:
//
//   barrier   STFW_BARRIER_SYNC emulation (set_barrier_sync(true)): a global
//             barrier delimits every stage — the pre-refactor schedule —
//             and the compute phase runs after the exchange returns
//   sync      dependency-driven stages (no barriers), compute still after
//             the exchange returns (STFW_OVERLAP=0 in the solver)
//   overlap   dependency-driven stages with the compute phase run inside
//             the exchange's OverlapHook, i.e. between posting the stage-0
//             sends and blocking on the stage-0 receives
//
// The in-process cluster has no wire: a message "travels" by moving between
// mailboxes under a mutex, so communication time is all CPU and there is
// nothing for compute to overlap *with*. The harness therefore models
// network latency with the fault injector's delay machinery — every frame
// is held for STFW_BENCH_OVERLAP_LAT_MS by the monitor pump before
// delivery, which is real non-CPU in-flight time exactly like a NIC's.
//
// Rows land in BENCH_overlap.json (schema: docs/performance.md) for
// tools/compare_bench.py --overlap-gate. Knobs: STFW_BENCH_OVERLAP_KMAX
// (default 256), STFW_BENCH_OVERLAP_ITERS (timed iterations, default 12),
// STFW_BENCH_OVERLAP_BYTES (base payload size, default 64),
// STFW_BENCH_OVERLAP_WORK (compute-phase fma count per rank, default
// 65536), STFW_BENCH_OVERLAP_LAT_MS (per-hop latency, default 64, 0 = no
// modeled latency).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/env.hpp"
#include "core/vpt.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

namespace {

using stfw::core::Rank;

/// splitmix64 — deterministic pattern generation, no <random> state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Skewed fixed pattern: every rank sends to ~8 pseudo-random peers with
/// sizes in [base, 4*base) — sparse enough that the regularized exchange
/// ships filler frames, the regime the barrier-free schedule targets.
std::vector<std::vector<stfw::OutboundMessage>> build_pattern(Rank num_ranks,
                                                              std::uint32_t base_bytes,
                                                              std::uint64_t seed) {
  const auto nK = static_cast<std::size_t>(num_ranks);
  std::vector<std::vector<stfw::OutboundMessage>> sends(nK);
  for (Rank r = 0; r < num_ranks; ++r) {
    std::vector<bool> chosen(nK, false);
    const int fanout = std::min<int>(8, num_ranks - 1);
    std::uint64_t h = mix(seed ^ static_cast<std::uint64_t>(r));
    int added = 0;
    for (int attempts = 0; added < fanout && attempts < 16 * fanout; ++attempts) {
      h = mix(h);
      const auto dest = static_cast<Rank>(h % static_cast<std::uint64_t>(num_ranks));
      if (dest == r || chosen[static_cast<std::size_t>(dest)]) continue;
      chosen[static_cast<std::size_t>(dest)] = true;
      const std::uint32_t size = base_bytes * (1u + static_cast<std::uint32_t>(h % 4));
      stfw::OutboundMessage m;
      m.dest = dest;
      m.bytes.assign(size, std::byte{static_cast<unsigned char>(h)});
      sends[static_cast<std::size_t>(r)].push_back(std::move(m));
      ++added;
    }
  }
  return sends;
}

enum class Mode { kBarrier, kSync, kOverlap };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kBarrier: return "barrier";
    case Mode::kSync: return "sync";
    case Mode::kOverlap: return "overlap";
  }
  return "?";
}

std::atomic<std::uint64_t> g_sink{0};  // defeats dead-code elimination

/// The per-iteration compute phase: `work` dependent fmas on rank-local
/// state. Stands in for the interior-row SpMV the solver overlaps. Yields
/// between chunks so the oversubscribed thread-per-rank scheduler can
/// interleave one rank's compute with the other ranks' frame posting — the
/// in-process analogue of compute running on its own core while the NIC
/// progresses the exchange; without the yields a hook would monopolize the
/// CPU and serialize ahead of every later rank's sends.
double compute_phase(std::uint64_t seed, int work) {
  double acc = 0.0;
  double x = 1.0 + static_cast<double>(seed % 1024) * 1e-6;
  constexpr int kChunk = 8192;
  for (int done = 0; done < work;) {
    const int end = std::min(work, done + kChunk);
    for (; done < end; ++done) {
      acc += x * 1.0000001;
      x = x * 0.9999999 + 1e-9;
    }
    std::this_thread::yield();
  }
  return acc + x;
}

double run_mode(stfw::runtime::Cluster& cluster, const stfw::core::Vpt& vpt,
                const std::vector<std::vector<stfw::OutboundMessage>>& pattern, int iters,
                int work, Mode mode) {
  double wall_ns = 0.0;
  cluster.run([&](stfw::runtime::Comm& comm) {
    stfw::StfwCommunicator communicator(comm, vpt);
    communicator.set_barrier_sync(mode == Mode::kBarrier);
    const auto& sends = pattern[static_cast<std::size_t>(comm.rank())];
    const auto seed = static_cast<std::uint64_t>(comm.rank());
    // Skewed compute, like an irregular partition's row distribution: every
    // fourth rank carries 4x the work. Under per-stage barriers the heavy
    // ranks gate every stage of every iteration; dependency-driven progress
    // lets light ranks run ahead (the epoch+stage tag demux absorbs their
    // early frames), so their wait time soaks up the heavy ranks' compute.
    const int my_work = work * (comm.rank() % 4 == 0 ? 4 : 1);
    (void)communicator.exchange(sends);  // warm-up records the plan
    comm.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t received = 0;
    double acc = 0.0;
    for (int it = 0; it < iters; ++it) {
      std::vector<stfw::InboundMessage> result;
      if (mode == Mode::kOverlap) {
        const stfw::OverlapHook hook = [&] { acc += compute_phase(seed, my_work); };
        result = communicator.exchange(sends, hook);
      } else {
        result = communicator.exchange(sends);
        acc += compute_phase(seed, my_work);
      }
      for (const stfw::InboundMessage& m : result) received += m.bytes.size();
    }
    comm.barrier();
    const auto t1 = std::chrono::steady_clock::now();
    g_sink.fetch_add(received + static_cast<std::uint64_t>(acc), std::memory_order_relaxed);
    if (comm.rank() == 0)
      wall_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  });
  return wall_ns / static_cast<double>(iters);
}

}  // namespace

int main() {
  using stfw::bench::Json;
  using stfw::bench::fmt;

  const int kmax = static_cast<int>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_OVERLAP_KMAX", 256), 4, 4096));
  const int iters = static_cast<int>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_OVERLAP_ITERS", 12), 1, 100000));
  const auto base_bytes = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(stfw::core::env_int("STFW_BENCH_OVERLAP_BYTES", 64), 1, 1 << 20));
  const int work = static_cast<int>(std::clamp<std::int64_t>(
      stfw::core::env_int("STFW_BENCH_OVERLAP_WORK", 65536), 0, 1 << 26));
  const auto lat_ms = std::clamp<std::int64_t>(
      stfw::core::env_int("STFW_BENCH_OVERLAP_LAT_MS", 64), 0, 1000);

  Json root = stfw::bench::bench_json_envelope("overlap");
  root.set("config", Json::object()
                         .set("kmax", Json::integer(kmax))
                         .set("iters", Json::integer(iters))
                         .set("payload_base_bytes", Json::integer(base_bytes))
                         .set("compute_work", Json::integer(work))
                         .set("latency_ms", Json::integer(lat_ms))
                         .set("seed", Json::integer(static_cast<std::int64_t>(
                                          stfw::bench::bench_seed()))));
  Json results = Json::array();

  std::printf("exchange + compute schedules, %d timed iterations per mode\n", iters);
  std::printf("%6s %9s %14s %9s\n", "K", "mode", "ns/iter", "speedup");
  stfw::bench::print_rule(42);

  for (const Rank num_ranks : {32, 64, 128, 256}) {
    if (num_ranks > kmax) break;
    const stfw::core::Vpt vpt = stfw::core::Vpt::balanced(num_ranks, 2);
    const auto pattern =
        build_pattern(num_ranks, base_bytes,
                      stfw::bench::bench_seed() ^ static_cast<std::uint64_t>(num_ranks));

    stfw::runtime::Cluster cluster(num_ranks);
    if (lat_ms > 0) {
      // Deterministic per-hop in-flight latency: every frame is held by the
      // delayed-message pump for lat_ms before it reaches the mailbox.
      stfw::fault::FaultConfig fc;
      fc.seed = stfw::bench::bench_seed();
      fc.delay_prob = 1.0;
      fc.delay_min = std::chrono::milliseconds(lat_ms);
      fc.delay_max = std::chrono::milliseconds(lat_ms);
      cluster.set_fault_injector(std::make_shared<stfw::fault::FaultInjector>(fc));
    }
    double barrier_ns = 0.0;
    for (const Mode mode : {Mode::kBarrier, Mode::kSync, Mode::kOverlap}) {
      const double ns = run_mode(cluster, vpt, pattern, iters, work, mode);
      if (mode == Mode::kBarrier) barrier_ns = ns;
      const double speedup = ns > 0.0 ? barrier_ns / ns : 0.0;
      std::printf("%6d %9s %14.0f %9s\n", num_ranks, mode_name(mode), ns,
                  (fmt(speedup, 2) + "x").c_str());
      std::string row_name = "K";
      row_name += std::to_string(num_ranks);
      row_name += '/';
      row_name += mode_name(mode);
      results.push(Json::object()
                       .set("name", Json::string(std::move(row_name)))
                       .set("mode", Json::string(mode_name(mode)))
                       .set("ranks", Json::integer(num_ranks))
                       .set("iters", Json::integer(iters))
                       .set("compute_work", Json::integer(work))
                       .set("wall_ns_per_iter", Json::number(ns))
                       .set("speedup_vs_barrier", Json::number(speedup)));
    }
  }

  root.set("results", std::move(results));
  const std::string path = stfw::bench::write_bench_json("overlap", root);
  std::printf("\nwrote %s (sink %llu)\n", path.c_str(),
              static_cast<unsigned long long>(g_sink.load()));
  return 0;
}
