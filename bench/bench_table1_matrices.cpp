// Reproduces Table 1: properties of the 22 evaluation matrices.
//
// The paper's matrices come from SuiteSparse; ours are synthetic stand-ins
// generated to match each matrix's row count, nonzero count, maximum row
// degree, degree coefficient of variation (cv) and maxdr. This harness
// prints the target (scaled) statistics next to the measured statistics of
// the generated matrices — the fidelity check for the substitution.

#include <cstdio>

#include "bench_util.hpp"
#include "sparse/csr.hpp"

int main() {
  using namespace stfw;
  std::printf("Table 1 reproduction: generator fidelity (scale=%.3g, nnz cap=%lld)\n",
              bench::bench_scale(), static_cast<long long>(bench::bench_nnz_cap()));
  std::printf("%-18s | %9s %9s | %8s %8s | %6s %6s | %7s %7s\n", "matrix", "rows",
              "nnz(meas)", "max(tgt)", "max(meas)", "cv(tgt)", "cv(ms)", "maxdr-t", "maxdr-m");
  bench::print_rule(108);
  for (const auto& orig : sparse::paper_matrices()) {
    auto spec = sparse::scaled_spec(orig, bench::bench_scale(), 512);
    if (spec.nnz > bench::bench_nnz_cap()) {
      const double thin =
          static_cast<double>(bench::bench_nnz_cap()) / static_cast<double>(spec.nnz);
      spec.nnz = bench::bench_nnz_cap();
      spec.max_degree = std::max<std::int64_t>(
          2, static_cast<std::int64_t>(static_cast<double>(spec.max_degree) * thin));
      spec.maxdr = static_cast<double>(spec.max_degree) / spec.rows;
    }
    const sparse::Csr a = sparse::generate(spec, bench::bench_seed());
    const sparse::DegreeStats s = sparse::degree_stats(a);
    std::printf("%-18s | %9d %9lld | %8lld %8lld | %6.2f %6.2f | %7.3f %7.3f\n",
                std::string(orig.name).c_str(), a.num_rows(),
                static_cast<long long>(a.num_nonzeros()),
                static_cast<long long>(spec.max_degree), static_cast<long long>(s.max_degree),
                spec.cv, s.cv, spec.maxdr, s.maxdr);
  }
  std::printf("\nPaper (unscaled) Table 1 values are in sparse/generators.cpp.\n");
  return 0;
}
