// Reproduces Table 2: geometric means over the 15-matrix application set of
// six metrics — maximum message count (mmax), average message count (mavg),
// average volume in words (vavg), simulated communication time, simulated
// parallel SpMV time, and buffer size — for BL and STFW2..STFW(lg2 K) at
// K in {64, 128, 256, 512} on the BlueGene/Q machine model.
//
// Paper reference points (geomeans on real hardware): at K = 256 BL has
// mmax 120.5 / comm 825us / SpMV 1091us, while STFW8 has mmax 8.0 / comm
// 322us / SpMV 636us. Absolute values here differ (simulated network,
// scaled matrices); the shape — mmax collapsing by an order of magnitude,
// volume growing ~2-3x, comm and SpMV time winning at mid-to-high
// dimensions — is the reproduction target.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "core/vpt.hpp"

int main() {
  using namespace stfw;
  const std::vector<core::Rank> rank_counts{64, 128, 256, 512};
  constexpr core::Rank kMaxRanks = 512;

  std::printf("Table 2 reproduction (BG/Q model, %zu matrices, scale=%.3g)\n",
              sparse::paper_matrices_small().size(), bench::bench_scale());
  std::printf("%4s %-8s | %8s %8s %9s | %9s %9s | %9s\n", "K", "scheme", "mmax", "mavg", "vavg",
              "comm(us)", "spmv(us)", "buf(KB)");
  bench::print_rule(86);

  std::vector<bench::Instance> instances;
  for (const auto& spec : sparse::paper_matrices_small())
    instances.push_back(bench::make_instance(std::string(spec.name), kMaxRanks));

  bench::Json root = bench::bench_json_envelope("table2_metrics");
  bench::Json results = bench::Json::array();

  for (core::Rank K : rank_counts) {
    const auto machine = netsim::Machine::blue_gene_q(K);
    const int max_dim = core::floor_log2(K);
    for (int dim = 1; dim <= max_dim; ++dim) {
      std::vector<double> mmax, mavg, vavg, comm, spmv, buf;
      for (const auto& inst : instances) {
        const auto r = bench::run_scheme(inst, K, dim, machine);
        mmax.push_back(static_cast<double>(r.mmax));
        mavg.push_back(r.mavg);
        vavg.push_back(r.vavg);
        comm.push_back(r.comm_us);
        spmv.push_back(r.spmv_us);
        buf.push_back(r.buffer_kb);
      }
      std::printf("%4d %-8s | %8.1f %8.1f %9.0f | %9.0f %9.0f | %9.1f\n", K,
                  bench::scheme_name(dim).c_str(), bench::geomean(mmax), bench::geomean(mavg),
                  bench::geomean(vavg), bench::geomean(comm), bench::geomean(spmv),
                  bench::geomean(buf));
      std::string row_name = "K";
      row_name += std::to_string(K);
      row_name += '/';
      row_name += bench::scheme_name(dim);
      results.push(bench::Json::object()
                       .set("name", bench::Json::string(std::move(row_name)))
                       .set("scheme", bench::Json::string(bench::scheme_name(dim)))
                       .set("ranks", bench::Json::integer(K))
                       .set("mmax_geomean", bench::Json::number(bench::geomean(mmax)))
                       .set("mavg_geomean", bench::Json::number(bench::geomean(mavg)))
                       .set("vavg_words_geomean", bench::Json::number(bench::geomean(vavg)))
                       .set("comm_us_geomean", bench::Json::number(bench::geomean(comm)))
                       .set("spmv_us_geomean", bench::Json::number(bench::geomean(spmv)))
                       .set("buffer_kb_geomean", bench::Json::number(bench::geomean(buf))));
    }
    bench::print_rule(86);
  }
  root.set("results", std::move(results));
  const std::string path = bench::write_bench_json("table2_metrics", root);
  std::printf("Paper Table 2 (K=256): BL mmax 120.5 -> STFW8 mmax 8.0; comm 825 -> 322 us;\n"
              "vavg 1181 -> 3544 words; buffers always < 2x BL.\n"
              "wrote %s\n", path.c_str());
  return 0;
}
