// Reproduces Table 3: large-scale communication statistics and times on a
// Cray XK7 (3D torus) at 8K and 16K processes and a Cray XC40 (dragonfly)
// at 4K processes, over the 10 matrices with more than 10M nonzeros. For
// each system the paper evaluates BL plus seven VPT dimensions: the lowest
// three (2, 3, 4), the middle two, and the highest two.
//
// Paper headline: communication time improves by up to 94-95% (=> ~17-22x)
// on the XK7 and 86% (~7x) on the XC40, with the middle dimensions winning.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/vpt.hpp"

namespace {

std::vector<int> table3_dims(stfw::core::Rank K) {
  const int lg = stfw::core::floor_log2(K);
  return {2, 3, 4, lg / 2 + 1, lg / 2 + 2, lg - 1, lg};
}

}  // namespace

int main() {
  using namespace stfw;
  struct System {
    const char* label;
    core::Rank ranks;
    netsim::Machine machine;
  };
  const System systems[] = {
      {"Cray XK7 (3D torus), 8K", 8192, netsim::Machine::cray_xk7(8192)},
      {"Cray XK7 (3D torus), 16K", 16384, netsim::Machine::cray_xk7(16384)},
      {"Cray XC40 (dragonfly), 4K", 4096, netsim::Machine::cray_xc40(4096)},
  };

  const auto large = sparse::paper_matrices_large();
  std::printf("Table 3 reproduction: %zu large matrices (scale=%.3g, nnz cap=%lld)\n",
              large.size(), bench::bench_scale(),
              static_cast<long long>(bench::bench_nnz_cap()));

  // Generate + partition once at the largest rank count; smaller counts
  // derive from the bisection tree.
  std::vector<bench::Instance> instances;
  for (const auto& spec : large)
    instances.push_back(bench::make_instance(std::string(spec.name), 16384));

  for (const System& sys : systems) {
    std::printf("\n%s processes\n", sys.label);
    std::printf("%-8s | %9s %9s %9s | %10s | %7s\n", "scheme", "mmax", "mavg", "vavg",
                "comm(us)", "vs BL");
    bench::print_rule(66);
    double bl_comm = 0.0;
    std::vector<int> dims{1};
    for (int d : table3_dims(sys.ranks)) dims.push_back(d);
    for (int dim : dims) {
      std::vector<double> mmax, mavg, vavg, comm;
      for (const auto& inst : instances) {
        const auto r = bench::run_scheme(inst, sys.ranks, dim, sys.machine);
        mmax.push_back(static_cast<double>(r.mmax));
        mavg.push_back(r.mavg);
        vavg.push_back(r.vavg);
        comm.push_back(r.comm_us);
      }
      const double g_comm = bench::geomean(comm);
      if (dim == 1) bl_comm = g_comm;
      std::printf("%-8s | %9.1f %9.1f %9.0f | %10.0f | %6.0f%%\n",
                  bench::scheme_name(dim).c_str(), bench::geomean(mmax), bench::geomean(mavg),
                  bench::geomean(vavg), g_comm, 100.0 * (1.0 - g_comm / bl_comm));
    }
  }
  std::printf("\nPaper reference: XK7 8K STFW4 -94%%, XK7 16K STFW4 -95%%, XC40 4K STFW7 -86%%;\n"
              "middle dimensions beat the lowest (still latency-bound) and the highest\n"
              "(too much forwarding volume).\n");
  return 0;
}
