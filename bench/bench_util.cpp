#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/env.hpp"
#include "core/error.hpp"
#include "partition/partitioner.hpp"
#include "spmv/distributed.hpp"

namespace stfw::bench {

// Knob parsing is strict (core/env.hpp): STFW_BENCH_SCALE=0.1x is a loud
// core::ValidationError, not a silently truncated 0.1.

double bench_scale() {
  return std::clamp(core::env_double("STFW_BENCH_SCALE", 0.08), 1e-4, 1.0);
}

std::int64_t bench_nnz_cap() { return core::env_int("STFW_BENCH_NNZ_CAP", 600'000); }

std::uint64_t bench_seed() { return core::env_u64("STFW_BENCH_SEED", 20190717); }

std::uint32_t bench_entry_bytes() {
  return static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(core::env_int("STFW_BENCH_ENTRY_BYTES", 8), 1, 65536));
}

std::vector<std::int32_t> Instance::parts(core::Rank num_ranks) const {
  core::require(num_ranks >= 1 && num_ranks <= max_ranks && max_ranks % num_ranks == 0,
                "Instance::parts: rank count must divide the partitioned maximum");
  return partition::derive_coarser(parts_at_max, max_ranks / num_ranks);
}

Instance make_instance(const std::string& name, core::Rank max_ranks) {
  const sparse::MatrixSpec& orig = sparse::find_paper_matrix(name);
  // Scale down, but keep at least ~4 rows per rank where the original had
  // them (instances smaller than the rank count stay at their true size).
  sparse::MatrixSpec spec =
      sparse::scaled_spec(orig, bench_scale(), std::min(orig.rows, 4 * max_ranks));
  if (spec.nnz > bench_nnz_cap()) {
    // Cap total work: thin the matrix, preserving rows and shape stats.
    const double thin = static_cast<double>(bench_nnz_cap()) / static_cast<double>(spec.nnz);
    spec.nnz = bench_nnz_cap();
    spec.max_degree = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(static_cast<double>(spec.max_degree) * thin));
    spec.maxdr = static_cast<double>(spec.max_degree) / spec.rows;
  }

  Instance inst;
  inst.name = name;
  inst.original = orig;
  inst.spec = spec;
  inst.matrix = sparse::generate(spec, bench_seed() ^ std::hash<std::string>{}(name));
  inst.max_ranks = max_ranks;
  partition::PartitionOptions opts;
  opts.num_parts = max_ranks;
  opts.seed = bench_seed();
  inst.parts_at_max = partition::partition_rows(inst.matrix, opts);
  return inst;
}

SchemeResult run_scheme(const Instance& inst, core::Rank num_ranks, int vpt_dim,
                        const netsim::Machine& machine) {
  const auto parts = inst.parts(num_ranks);
  const spmv::SpmvProblem problem(inst.matrix, parts, num_ranks, /*build_plans=*/false);
  const auto pattern = problem.comm_pattern(bench_entry_bytes());
  const core::Vpt vpt =
      vpt_dim <= 1 ? core::Vpt::direct(num_ranks) : core::Vpt::balanced(num_ranks, vpt_dim);
  sim::SimOptions opts;
  opts.machine = &machine;
  const sim::SimResult r = sim::simulate_exchange(vpt, pattern, opts);

  SchemeResult out;
  out.scheme = scheme_name(vpt_dim);
  out.mmax = r.metrics.max_send_count();
  out.mavg = r.metrics.avg_send_count();
  out.vavg = r.metrics.avg_send_volume_words();
  out.comm_us = r.comm_time_us;
  // Compute phase at *paper* scale: the original matrix's nonzero count is
  // known exactly, so charge the slowest rank the measured partition
  // imbalance applied to the original work. This restores the paper's
  // compute-dominated-at-small-K strong-scaling shape, which the scaled
  // communication proxy alone cannot show.
  const double imbalance_frac = static_cast<double>(problem.max_local_nnz()) /
                                static_cast<double>(inst.matrix.num_nonzeros());
  out.spmv_us =
      r.comm_time_us + spmv::compute_time_us(static_cast<std::int64_t>(
                           imbalance_frac * static_cast<double>(inst.original.nnz)));
  out.buffer_kb = static_cast<double>(r.metrics.max_buffer_bytes()) / 1024.0;
  return out;
}

double geomean(const std::vector<double>& values, double floor) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, floor));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string scheme_name(int vpt_dim) {
  return vpt_dim <= 1 ? "BL" : "STFW" + std::to_string(vpt_dim);
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// --- perf-regression JSON output -------------------------------------------

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json& Json::set(const std::string& key, Json v) {
  core::require(kind_ == Kind::kObject, "Json::set: not an object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  core::require(kind_ == Kind::kArray, "Json::push: not an array");
  items_.push_back(std::move(v));
  return *this;
}

namespace {

void write_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                              ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no NaN/Inf
        break;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.12g", number_);
      out += buf;
      break;
    }
    case Kind::kString: write_json_string(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].write(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += '\n';
      }
      out += close_pad + "]";
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        write_json_string(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      out += close_pad + "}";
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  out += '\n';
  return out;
}

Json bench_json_envelope(const std::string& bench_name) {
  Json config = Json::object();
  config.set("scale", Json::number(bench_scale()));
  config.set("nnz_cap", Json::integer(bench_nnz_cap()));
  config.set("seed", Json::integer(static_cast<std::int64_t>(bench_seed())));
  config.set("entry_bytes", Json::integer(bench_entry_bytes()));

  Json root = Json::object();
  root.set("bench", Json::string(bench_name));
  root.set("schema_version", Json::integer(1));
  root.set("config", std::move(config));
  root.set("results", Json::array());
  return root;
}

std::string write_bench_json(const std::string& bench_name, const Json& payload) {
  std::string path = core::env_string("STFW_BENCH_JSON_DIR", ".");
  if (path.back() != '/') path += '/';
  path += "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  core::require(f != nullptr, "write_bench_json: cannot open " + path);
  const std::string text = payload.dump();
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  core::require(written == text.size(), "write_bench_json: short write to " + path);
  return path;
}

}  // namespace stfw::bench
