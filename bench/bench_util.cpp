#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/error.hpp"
#include "partition/partitioner.hpp"
#include "spmv/distributed.hpp"

namespace stfw::bench {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

}  // namespace

double bench_scale() { return std::clamp(env_double("STFW_BENCH_SCALE", 0.08), 1e-4, 1.0); }

std::int64_t bench_nnz_cap() {
  return static_cast<std::int64_t>(env_double("STFW_BENCH_NNZ_CAP", 600'000.0));
}

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(env_double("STFW_BENCH_SEED", 20190717.0));
}

std::uint32_t bench_entry_bytes() {
  return static_cast<std::uint32_t>(
      std::clamp(env_double("STFW_BENCH_ENTRY_BYTES", 8.0), 1.0, 65536.0));
}

std::vector<std::int32_t> Instance::parts(core::Rank num_ranks) const {
  core::require(num_ranks >= 1 && num_ranks <= max_ranks && max_ranks % num_ranks == 0,
                "Instance::parts: rank count must divide the partitioned maximum");
  return partition::derive_coarser(parts_at_max, max_ranks / num_ranks);
}

Instance make_instance(const std::string& name, core::Rank max_ranks) {
  const sparse::MatrixSpec& orig = sparse::find_paper_matrix(name);
  // Scale down, but keep at least ~4 rows per rank where the original had
  // them (instances smaller than the rank count stay at their true size).
  sparse::MatrixSpec spec =
      sparse::scaled_spec(orig, bench_scale(), std::min(orig.rows, 4 * max_ranks));
  if (spec.nnz > bench_nnz_cap()) {
    // Cap total work: thin the matrix, preserving rows and shape stats.
    const double thin = static_cast<double>(bench_nnz_cap()) / static_cast<double>(spec.nnz);
    spec.nnz = bench_nnz_cap();
    spec.max_degree = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(static_cast<double>(spec.max_degree) * thin));
    spec.maxdr = static_cast<double>(spec.max_degree) / spec.rows;
  }

  Instance inst;
  inst.name = name;
  inst.original = orig;
  inst.spec = spec;
  inst.matrix = sparse::generate(spec, bench_seed() ^ std::hash<std::string>{}(name));
  inst.max_ranks = max_ranks;
  partition::PartitionOptions opts;
  opts.num_parts = max_ranks;
  opts.seed = bench_seed();
  inst.parts_at_max = partition::partition_rows(inst.matrix, opts);
  return inst;
}

SchemeResult run_scheme(const Instance& inst, core::Rank num_ranks, int vpt_dim,
                        const netsim::Machine& machine) {
  const auto parts = inst.parts(num_ranks);
  const spmv::SpmvProblem problem(inst.matrix, parts, num_ranks, /*build_plans=*/false);
  const auto pattern = problem.comm_pattern(bench_entry_bytes());
  const core::Vpt vpt =
      vpt_dim <= 1 ? core::Vpt::direct(num_ranks) : core::Vpt::balanced(num_ranks, vpt_dim);
  sim::SimOptions opts;
  opts.machine = &machine;
  const sim::SimResult r = sim::simulate_exchange(vpt, pattern, opts);

  SchemeResult out;
  out.scheme = scheme_name(vpt_dim);
  out.mmax = r.metrics.max_send_count();
  out.mavg = r.metrics.avg_send_count();
  out.vavg = r.metrics.avg_send_volume_words();
  out.comm_us = r.comm_time_us;
  // Compute phase at *paper* scale: the original matrix's nonzero count is
  // known exactly, so charge the slowest rank the measured partition
  // imbalance applied to the original work. This restores the paper's
  // compute-dominated-at-small-K strong-scaling shape, which the scaled
  // communication proxy alone cannot show.
  const double imbalance_frac = static_cast<double>(problem.max_local_nnz()) /
                                static_cast<double>(inst.matrix.num_nonzeros());
  out.spmv_us =
      r.comm_time_us + spmv::compute_time_us(static_cast<std::int64_t>(
                           imbalance_frac * static_cast<double>(inst.original.nnz)));
  out.buffer_kb = static_cast<double>(r.metrics.max_buffer_bytes()) / 1024.0;
  return out;
}

double geomean(const std::vector<double>& values, double floor) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, floor));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string scheme_name(int vpt_dim) {
  return vpt_dim <= 1 ? "BL" : "STFW" + std::to_string(vpt_dim);
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace stfw::bench
