#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/vpt.hpp"
#include "netsim/machine.hpp"
#include "sim/bsp_simulator.hpp"
#include "sparse/generators.hpp"

/// \file bench_util.hpp
/// Shared plumbing for the table/figure reproduction harnesses.
///
/// Every harness regenerates one table or figure of the paper on synthetic
/// stand-ins for the SuiteSparse matrices. Instances are scaled so the whole
/// suite runs on one laptop core: STFW_BENCH_SCALE (default 0.08) multiplies
/// rows/nnz of every Table 1 matrix, and STFW_BENCH_NNZ_CAP (default 600000)
/// caps the per-instance nonzero count. Absolute numbers therefore differ
/// from the paper; the shapes (who wins, by what factor, where the best VPT
/// dimension sits) are what EXPERIMENTS.md compares.

namespace stfw::bench {

/// Environment-tunable scaling of the paper instances.
double bench_scale();
std::int64_t bench_nnz_cap();
std::uint64_t bench_seed();

/// Bytes shipped per communicated x entry (STFW_BENCH_ENTRY_BYTES, default
/// 8 = one double, the paper's SpMV). Larger values emulate the SpMM /
/// multiple-vector regime with proportionally heavier volume — useful to
/// reproduce the paper's large-scale crossover where the highest VPT
/// dimensions start losing to the middle ones on bandwidth.
std::uint32_t bench_entry_bytes();

/// A generated-and-partitioned instance, partitioned once at `max_ranks`
/// (power of two) by the multilevel hypergraph partitioner; partitions for
/// any smaller power-of-two rank count derive from the bisection tree.
struct Instance {
  std::string name;
  sparse::MatrixSpec original;  // the unscaled Table 1 spec
  sparse::MatrixSpec spec;      // the scaled spec actually generated
  sparse::Csr matrix;
  core::Rank max_ranks = 0;
  std::vector<std::int32_t> parts_at_max;

  std::vector<std::int32_t> parts(core::Rank num_ranks) const;
};

/// Generate + partition one paper matrix for rank counts up to `max_ranks`.
Instance make_instance(const std::string& name, core::Rank max_ranks);

/// All metrics of one (instance, scheme, K) cell of Table 2 / Table 3.
struct SchemeResult {
  std::string scheme;  // "BL" or "STFWn"
  std::int64_t mmax = 0;
  double mavg = 0.0;
  double vavg = 0.0;       // words
  double comm_us = 0.0;    // simulated communication time
  double spmv_us = 0.0;    // comm + compute model
  double buffer_kb = 0.0;  // max over ranks
};

/// Run BL (n = 1) or STFW (n > 1) for one instance at K ranks.
[[nodiscard]] SchemeResult run_scheme(const Instance& inst, core::Rank num_ranks, int vpt_dim,
                                      const netsim::Machine& machine);

/// Geometric mean (values must be positive; zeros are clamped to `floor`).
double geomean(const std::vector<double>& values, double floor = 1e-9);

/// "STFW4" / "BL" label for a VPT dimension.
std::string scheme_name(int vpt_dim);

/// Fixed-width table printing helpers.
void print_rule(int width);
std::string fmt(double v, int precision = 1);

// --- perf-regression JSON output -------------------------------------------
//
// Every harness can emit one machine-readable BENCH_<name>.json next to its
// human-readable table so runs are diffable across commits
// (tools/compare_bench.py). Schema (docs/performance.md):
//   { "bench": <name>, "schema_version": 1,
//     "config": { knob: value, ... },
//     "results": [ { "name": <row key>, <numeric metrics>... }, ... ] }

/// Minimal ordered JSON value tree (objects keep insertion order).
class Json {
public:
  Json() = default;  // null
  static Json object();
  static Json array();
  static Json number(double v);
  static Json integer(std::int64_t v);
  static Json string(std::string v);
  static Json boolean(bool v);

  /// Object member set / array append; both return *this for chaining and
  /// throw core::Error on kind misuse.
  Json& set(const std::string& key, Json v);
  Json& push(Json v);

  std::string dump(int indent = 2) const;

private:
  enum class Kind { kNull, kBool, kInt, kNumber, kString, kArray, kObject };
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// The standard top-level envelope: bench name, schema_version, the shared
/// bench_* knobs under "config", and an empty "results" array.
[[nodiscard]] Json bench_json_envelope(const std::string& bench_name);

/// Write `payload` as BENCH_<name>.json into $STFW_BENCH_JSON_DIR (default:
/// current directory). Returns the path written.
std::string write_bench_json(const std::string& bench_name, const Json& payload);

}  // namespace stfw::bench
