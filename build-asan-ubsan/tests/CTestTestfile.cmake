# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan-ubsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan-ubsan/tests/test_vpt[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_rank_state[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_wire[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_metrics[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_runtime[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_collectives[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_stfw_communicator[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_exchange_stats[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_validate[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_pattern[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_bsp_simulator[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_leader_aggregation[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_topology[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_machine[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_csr[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_matrix_market[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_generators[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_reorder[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_hypergraph[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_partitioner[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_spmv_problem[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_spmv_runner[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_mapping[1]_include.cmake")
include("/root/repo/build-asan-ubsan/tests/test_integration[1]_include.cmake")
