// Irregular neighbor exchange in a distributed graph application.
//
// Beyond SpMV, any bulk-synchronous graph computation with vertex-centric
// messaging has the paper's communication shape: each rank owns a slice of
// vertices and must push updates to the (irregular, skewed) set of ranks
// owning its out-neighbors. This example runs a few rounds of distributed
// PageRank-style accumulation on a scale-free graph over the threaded
// cluster, comparing BL with a store-and-forward VPT, and verifies both
// produce identical global results.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <vector>

#include "core/vpt.hpp"
#include "runtime/stfw_communicator.hpp"
#include "sparse/generators.hpp"

using namespace stfw;

namespace {

constexpr core::Rank kRanks = 32;
constexpr int kRounds = 3;

struct Update {
  std::int32_t vertex;
  double value;
};

std::vector<double> run_rounds(const sparse::Csr& graph, const core::Vpt& vpt,
                               std::int64_t* mmax_out) {
  const std::int32_t n = graph.num_rows();
  const auto owner = [n](std::int32_t v) {
    return static_cast<core::Rank>(static_cast<std::int64_t>(v) * kRanks / n);
  };
  std::vector<double> rank_value(static_cast<std::size_t>(n), 1.0);
  std::vector<std::int64_t> sent(kRanks, 0);

  runtime::Cluster cluster(kRanks);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> next(static_cast<std::size_t>(n), 0.15);
    cluster.run([&](runtime::Comm& comm) {
      StfwCommunicator communicator(comm, vpt);
      const auto me = static_cast<core::Rank>(comm.rank());
      // Accumulate contributions per destination rank.
      std::map<core::Rank, std::vector<Update>> outgoing;
      for (std::int32_t v = 0; v < n; ++v) {
        if (owner(v) != me) continue;
        const auto out = graph.row_cols(v);
        if (out.empty()) continue;
        const double share = 0.85 * rank_value[static_cast<std::size_t>(v)] /
                             static_cast<double>(out.size());
        for (std::int32_t u : out) outgoing[owner(u)].push_back({u, share});
      }
      std::vector<OutboundMessage> sends;
      for (auto& [dest, updates] : outgoing) {
        std::vector<std::byte> bytes(updates.size() * sizeof(Update));
        std::memcpy(bytes.data(), updates.data(), bytes.size());
        sends.push_back({dest, std::move(bytes)});
      }
      const auto inbox = communicator.exchange(sends);
      sent[static_cast<std::size_t>(me)] =
          std::max(sent[static_cast<std::size_t>(me)],
                   communicator.last_stats().messages_sent);
      // Apply updates to owned vertices (disjoint writes across ranks).
      for (const InboundMessage& m : inbox) {
        const auto count = m.bytes.size() / sizeof(Update);
        std::vector<Update> updates(count);
        std::memcpy(updates.data(), m.bytes.data(), m.bytes.size());
        for (const Update& u : updates) next[static_cast<std::size_t>(u.vertex)] += u.value;
      }
    });
    rank_value = next;
  }
  *mmax_out = *std::max_element(sent.begin(), sent.end());
  return rank_value;
}

}  // namespace

int main() {
  // Scale-free graph: a few hubs force one rank to message most others.
  const auto weights = sparse::lognormal_degrees(6000, 10.0, 3.0, 1500, 5);
  const sparse::Csr graph = sparse::chung_lu_symmetric(weights, 6);
  std::printf("graph: %d vertices, %lld edges (incl. self), max degree %lld\n\n",
              graph.num_rows(), static_cast<long long>(graph.num_nonzeros()),
              static_cast<long long>(sparse::degree_stats(graph).max_degree));

  std::int64_t mmax_bl = 0, mmax_stfw = 0;
  const auto bl = run_rounds(graph, core::Vpt::direct(kRanks), &mmax_bl);
  const auto stfw = run_rounds(graph, core::Vpt({4, 4, 2}), &mmax_stfw);

  double max_err = 0.0;
  for (std::size_t i = 0; i < bl.size(); ++i)
    max_err = std::max(max_err, std::abs(bl[i] - stfw[i]));
  const double total = std::accumulate(bl.begin(), bl.end(), 0.0);

  std::printf("BL        : per-round mmax %lld messages\n", static_cast<long long>(mmax_bl));
  std::printf("STFW T_3  : per-round mmax %lld messages (bound %d)\n",
              static_cast<long long>(mmax_stfw), core::Vpt({4, 4, 2}).max_message_count_bound());
  std::printf("result    : sum %.6f, max |BL - STFW| = %.3e (identical modulo fp order)\n",
              total, max_err);
  return max_err < 1e-9 ? 0 : 1;
}
