// Quickstart: regularize an irregular point-to-point exchange.
//
// 16 processes run in an in-process cluster. Rank 0 is a "hub" that must
// send a small message to everyone (the latency-bound scenario of the
// paper's introduction); every rank also talks to a few random peers. The
// same exchange is executed twice: directly (BL, the T_1 topology) and
// store-and-forward over a T_2(4,4) virtual process topology. The hub's
// message count drops from 15 to the Section 4 bound of 6.

#include <cstdio>
#include <cstring>
#include <random>

#include "core/sync.hpp"
#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

using namespace stfw;

namespace {

std::vector<std::byte> make_payload(int from, int to) {
  char text[64];
  std::snprintf(text, sizeof(text), "hello %d -> %d", from, to);
  std::vector<std::byte> bytes(std::strlen(text));
  std::memcpy(bytes.data(), text, bytes.size());
  return bytes;
}

std::vector<OutboundMessage> build_sendset(int rank, int size) {
  std::vector<OutboundMessage> sends;
  if (rank == 0) {  // the hub: one message to every other process
    for (int d = 1; d < size; ++d) sends.push_back({d, make_payload(0, d)});
  } else {  // everyone else: reply to the hub and ping two random peers
    sends.push_back({0, make_payload(rank, 0)});
    std::mt19937_64 rng(static_cast<std::uint64_t>(rank));
    std::uniform_int_distribution<int> pick(0, size - 1);
    for (int j = 0; j < 2; ++j) {
      const int d = pick(rng);
      if (d != rank) sends.push_back({d, make_payload(rank, d)});
    }
  }
  return sends;
}

void run(const core::Vpt& vpt, const char* label) {
  runtime::Cluster cluster(vpt.size());
  core::Mutex io;
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    const auto sends = build_sendset(comm.rank(), comm.size());
    const auto inbox = communicator.exchange(sends);
    if (comm.rank() == 0) {
      core::MutexLock lock(io);
      std::printf("%-10s hub sent %lld wire messages (bound %d), received %zu payloads\n",
                  label, static_cast<long long>(communicator.last_stats().messages_sent),
                  vpt.max_message_count_bound(), inbox.size());
      std::printf("%-10s first payload: \"%.*s\" from rank %d\n", "",
                  static_cast<int>(inbox.front().bytes.size()),
                  reinterpret_cast<const char*>(inbox.front().bytes.data()),
                  inbox.front().source);
    }
  });
}

}  // namespace

int main() {
  std::printf("stfw quickstart: 16 ranks, hub-and-spoke + random exchange\n\n");
  run(core::Vpt::direct(16), "BL/T_1:");        // plain point-to-point
  run(core::Vpt({4, 4}), "STFW/T_2:");          // 2D virtual topology
  run(core::Vpt::hypercube(16), "STFW/T_4:");   // hypercube extreme
  std::printf("\nSame messages delivered each time; only the message *organization*\n"
              "changed. See examples/spmv_simulation.cpp for the paper's SpMV use.\n");
  return 0;
}
