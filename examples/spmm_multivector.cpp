// SpMM: the multiple-vector regime.
//
// Communicating b vectors at once multiplies every message's payload by b
// without changing message *counts* — it slides the workload from the
// latency-bound regime (where high VPT dimensions win) toward the
// bandwidth-bound regime (where forwarding volume hurts and lower
// dimensions win). This example runs a numeric distributed SpMM on the
// threaded cluster to show correctness, then sweeps b on the simulator to
// show the optimum dimension drifting downward — the practical guidance of
// the paper's Section 6.4.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>

#include "netsim/machine.hpp"
#include "partition/partitioner.hpp"
#include "sim/bsp_simulator.hpp"
#include "sparse/generators.hpp"
#include "spmv/runner.hpp"

using namespace stfw;

int main() {
  constexpr core::Rank K = 32;
  const auto spec = sparse::scaled_spec(sparse::find_paper_matrix("pkustk04"), 0.05, 4 * K);
  const sparse::Csr a = sparse::generate(spec, 77);
  partition::PartitionOptions popts;
  popts.num_parts = K;
  const auto parts = partition::partition_rows(a, popts);

  // 1. Numeric check: distributed SpMM == serial SpMM.
  {
    const spmv::SpmvProblem problem(a, parts, K);
    runtime::Cluster cluster(K);
    constexpr std::int32_t kVectors = 4;
    std::vector<double> x0(static_cast<std::size_t>(a.num_rows()) * kVectors);
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (double& v : x0) v = dist(rng);
    const auto dist_y =
        spmv::run_distributed_spmm(cluster, problem, core::Vpt({4, 4, 2}), x0, kVectors, 2);
    const auto serial_y = spmv::run_serial_spmm(a, x0, kVectors, 2);
    double err = 0.0;
    for (std::size_t i = 0; i < dist_y.size(); ++i)
      err = std::max(err, std::abs(dist_y[i] - serial_y[i]));
    std::printf("numeric SpMM (b=%d, 2 iterations, T_3(4,4,2)): max |err| = %.3e\n\n", kVectors,
                err);
  }

  // 2. Regime sweep on the simulator at a larger K.
  constexpr core::Rank kSweepRanks = 512;
  const auto sweep_spec =
      sparse::scaled_spec(sparse::find_paper_matrix("pkustk04"), 0.08, 4 * kSweepRanks);
  const sparse::Csr sweep_a = sparse::generate(sweep_spec, 78);
  partition::PartitionOptions sweep_popts;
  sweep_popts.num_parts = kSweepRanks;
  const auto sweep_parts = partition::partition_rows(sweep_a, sweep_popts);
  const spmv::SpmvProblem sweep_problem(sweep_a, sweep_parts, kSweepRanks, false);
  const auto machine = netsim::Machine::blue_gene_q(kSweepRanks);

  std::printf("best VPT dimension vs vectors-per-exchange (K=%d, BG/Q model):\n", kSweepRanks);
  std::printf("%10s | %22s | %12s %12s\n", "vectors b", "best scheme", "comm(us)", "BL(us)");
  for (std::int32_t b : {1, 8, 32, 128, 512}) {
    const auto pattern = sweep_problem.comm_pattern(static_cast<std::uint32_t>(8 * b));
    sim::SimOptions opts;
    opts.machine = &machine;
    double best_time = 1e300, bl_time = 0.0;
    int best_dim = 1;
    for (int n = 1; n <= core::floor_log2(kSweepRanks); ++n) {
      const core::Vpt vpt =
          n == 1 ? core::Vpt::direct(kSweepRanks) : core::Vpt::balanced(kSweepRanks, n);
      const double t = sim::simulate_exchange(vpt, pattern, opts).comm_time_us;
      if (n == 1) bl_time = t;
      if (t < best_time) {
        best_time = t;
        best_dim = n;
      }
    }
    const core::Vpt best_vpt = best_dim == 1 ? core::Vpt::direct(kSweepRanks)
                                             : core::Vpt::balanced(kSweepRanks, best_dim);
    std::printf("%10d | %22s | %12.0f %12.0f\n", b, best_vpt.to_string().c_str(), best_time,
                bl_time);
  }
  std::printf("\nExpected: the optimum drifts from the hypercube extreme toward low\n"
              "dimensions (and eventually BL) as the per-entry payload grows.\n");
  return 0;
}
