// Distributed SpMV with regularized communication — the paper's evaluation
// kernel as an application.
//
// Generates a synthetic stand-in for a latency-bound Table 1 matrix,
// partitions it row-wise with the multilevel hypergraph partitioner, and
// runs a few power-method iterations (x <- A x / ||A x||) on the threaded
// in-process cluster, once with direct communication (BL) and once over a
// 3-dimensional virtual process topology. Results are verified to match a
// serial computation; per-rank communication statistics are reported.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "partition/partitioner.hpp"
#include "runtime/stfw_communicator.hpp"
#include "sparse/generators.hpp"
#include "spmv/runner.hpp"

using namespace stfw;

namespace {

double norm(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

int main() {
  constexpr core::Rank K = 32;
  constexpr int kIterations = 4;

  // A scaled GaAsH6: irregular, with a dense row — latency-bound under BL.
  const auto spec = sparse::scaled_spec(sparse::find_paper_matrix("GaAsH6"), 0.05, 4 * K);
  const sparse::Csr a = sparse::generate(spec, 2024);
  std::printf("matrix: GaAsH6 stand-in, %d rows, %lld nnz, max degree %lld\n", a.num_rows(),
              static_cast<long long>(a.num_nonzeros()),
              static_cast<long long>(sparse::degree_stats(a).max_degree));

  partition::PartitionOptions popts;
  popts.num_parts = K;
  const auto parts = partition::partition_rows(a, popts);
  const spmv::SpmvProblem problem(a, parts, K);
  std::printf("partition: %d ranks, comm volume %lld words, max local nnz %lld\n\n", K,
              static_cast<long long>(problem.total_comm_volume_words()),
              static_cast<long long>(problem.max_local_nnz()));

  const std::vector<double> x0(static_cast<std::size_t>(a.num_rows()), 1.0);
  runtime::Cluster cluster(K);

  const auto serial = spmv::run_serial(a, x0, kIterations);
  for (const core::Vpt& vpt : {core::Vpt::direct(K), core::Vpt({4, 4, 2}), core::Vpt::hypercube(K)}) {
    const auto y = spmv::run_distributed(cluster, problem, vpt, x0, kIterations);
    double max_err = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      max_err = std::max(max_err, std::abs(y[i] - serial[i]));
    std::printf("%-12s  ||Ax||=%.6e  max |err| vs serial = %.3e\n", vpt.to_string().c_str(),
                norm(y), max_err);
  }

  // Communication statistics of one exchange, per scheme (the interesting
  // part: the hub rank's message count collapses under the VPT).
  std::printf("\nper-exchange wire-message counts (max over ranks):\n");
  for (const core::Vpt& vpt : {core::Vpt::direct(K), core::Vpt({4, 4, 2}), core::Vpt::hypercube(K)}) {
    std::vector<std::int64_t> sent(static_cast<std::size_t>(K));
    cluster.run([&](runtime::Comm& comm) {
      StfwCommunicator communicator(comm, vpt);
      const auto me = static_cast<core::Rank>(comm.rank());
      const spmv::RankPlan& plan = problem.plan(me);
      std::vector<OutboundMessage> sends;
      for (const auto& s : plan.sends)
        sends.push_back({s.dest, std::vector<std::byte>(s.x_slots.size() * 8)});
      communicator.exchange(sends);
      sent[static_cast<std::size_t>(me)] = communicator.last_stats().messages_sent;
    });
    std::printf("  %-12s mmax = %3lld (bound %d)\n", vpt.to_string().c_str(),
                static_cast<long long>(*std::max_element(sent.begin(), sent.end())),
                vpt.max_message_count_bound());
  }
  return 0;
}
