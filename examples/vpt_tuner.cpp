// VPT dimension auto-tuner: which topology should my application use?
//
// Section 6's practical takeaway is that the best VPT dimension depends on
// how latency-bound the instance and the network are: low dimensions stay
// latency-bound, high dimensions pay too much forwarding volume, and the
// sweet spot sits in the middle (lower on bandwidth-bound networks). This
// example sweeps every dimension for a given matrix / rank count / machine
// on the large-scale simulator and recommends the lowest-communication-time
// topology.
//
// Usage: vpt_tuner [matrix] [ranks] [machine]
//        vpt_tuner gupta2 1024 xk7       (defaults)

#include <cstdio>
#include <cstring>
#include <string>

#include "core/vpt.hpp"
#include "netsim/machine.hpp"
#include "partition/partitioner.hpp"
#include "sim/bsp_simulator.hpp"
#include "sparse/generators.hpp"
#include "spmv/distributed.hpp"

using namespace stfw;

int main(int argc, char** argv) {
  const std::string matrix = argc > 1 ? argv[1] : "gupta2";
  const auto K = static_cast<core::Rank>(argc > 2 ? std::atoi(argv[2]) : 1024);
  const std::string machine_name = argc > 3 ? argv[3] : "xk7";
  if (!core::is_pow2(K)) {
    std::fprintf(stderr, "ranks must be a power of two\n");
    return 1;
  }
  const netsim::Machine machine = machine_name == "bgq"    ? netsim::Machine::blue_gene_q(K)
                                  : machine_name == "xc40" ? netsim::Machine::cray_xc40(K)
                                                           : netsim::Machine::cray_xk7(K);

  const auto spec = sparse::scaled_spec(sparse::find_paper_matrix(matrix), 0.08,
                                        std::min(sparse::find_paper_matrix(matrix).rows, 4 * K));
  const sparse::Csr a = sparse::generate(spec, 7);
  partition::PartitionOptions popts;
  popts.num_parts = K;
  const auto parts = partition::partition_rows(a, popts);
  const spmv::SpmvProblem problem(a, parts, K, /*build_plans=*/false);
  const auto pattern = problem.comm_pattern();

  std::printf("tuning %s stand-in (%d rows, %lld nnz) at K=%d on %s\n\n", matrix.c_str(),
              a.num_rows(), static_cast<long long>(a.num_nonzeros()), K,
              machine.name().c_str());
  std::printf("%-8s %-16s | %8s %9s | %10s\n", "scheme", "dims", "mmax", "vol(w)", "comm(us)");

  sim::SimOptions opts;
  opts.machine = &machine;
  double best_time = 1e300;
  int best_dim = 1;
  for (int n = 1; n <= core::floor_log2(K); ++n) {
    const core::Vpt vpt = n == 1 ? core::Vpt::direct(K) : core::Vpt::balanced(K, n);
    const auto r = sim::simulate_exchange(vpt, pattern, opts);
    std::printf("%-8s %-16s | %8lld %9lld | %10.0f\n",
                (n == 1 ? "BL" : "STFW" + std::to_string(n)).c_str(), vpt.to_string().c_str(),
                static_cast<long long>(r.metrics.max_send_count()),
                static_cast<long long>(r.metrics.total_volume_words()), r.comm_time_us);
    if (r.comm_time_us < best_time) {
      best_time = r.comm_time_us;
      best_dim = n;
    }
  }
  std::printf("\nrecommendation: %s (%s), simulated comm time %.0f us\n",
              (best_dim == 1 ? std::string("BL") : "STFW" + std::to_string(best_dim)).c_str(),
              (best_dim == 1 ? core::Vpt::direct(K) : core::Vpt::balanced(K, best_dim))
                  .to_string()
                  .c_str(),
              best_time);
  return 0;
}
