#include "analysis.hpp"

#include "error.hpp"

namespace stfw::core::analysis {

std::int64_t max_message_count_bound(const Vpt& vpt) { return vpt.max_message_count_bound(); }

std::int64_t alltoall_forward_hops(const Vpt& vpt) {
  // Sum over all other ranks of the Hamming distance from a fixed source.
  // Per dimension d, exactly K * (k_d - 1) / k_d ranks differ in digit d.
  // For equal sizes k this collapses to the paper's
  //   sum_{l=1..n} (k-1)^l * C(n,l) * l  ==  n * (k-1) * k^(n-1).
  std::int64_t total = 0;
  const std::int64_t K = vpt.size();
  for (int d = 0; d < vpt.dim(); ++d) {
    const std::int64_t kd = vpt.dim_size(d);
    total += K / kd * (kd - 1);
  }
  return total;
}

std::int64_t alltoall_volume_units(const Vpt& vpt) { return alltoall_forward_hops(vpt); }

double alltoall_volume_ratio(const Vpt& vpt) {
  return static_cast<double>(alltoall_volume_units(vpt)) / static_cast<double>(vpt.size() - 1);
}

std::int64_t alltoall_volume_ratio_loose(const Vpt& vpt) { return vpt.dim(); }

std::int64_t buffer_bound_units(const Vpt& vpt) { return vpt.size() - 1; }

std::int64_t resident_submessages_after_stage(const Vpt& vpt, int stage) {
  require(stage >= 0 && stage < vpt.dim(), "resident_submessages_after_stage: bad stage");
  // Destinations whose digits 0..stage match ours: K / prod(k_0..k_stage).
  // Sources whose digits stage+1..n-1 match ours: prod(k_0..k_stage).
  std::int64_t prefix = 1;
  for (int d = 0; d <= stage; ++d) prefix *= vpt.dim_size(d);
  const std::int64_t dests = vpt.size() / prefix;
  const std::int64_t sources = prefix;
  return dests * sources - 1;  // minus the self submessage
}

}  // namespace stfw::core::analysis
