#pragma once

#include <cstdint>

#include "vpt.hpp"

/// \file analysis.hpp
/// Closed-form performance analysis of the store-and-forward scheme —
/// Section 4 of the paper. All quantities are for the worst case where every
/// process sends the same amount `s` to every other process (|SendSet| = K-1).

namespace stfw::core::analysis {

/// Maximum number of messages any process sends over the exchange:
/// sum_d (k_d - 1). Equals K-1 for T_1 and lg2 K for the hypercube.
std::int64_t max_message_count_bound(const Vpt& vpt);

/// Total number of store-and-forward hops taken by the submessages
/// originating at one process when it sends to all K-1 others: the sum of
/// Hamming distances to every other rank. For equal dimension sizes k this
/// is the paper's sum_{l=1..n} (k-1)^l * C(n,l) * l; computed here for
/// arbitrary dimension sizes via the per-dimension expectation.
std::int64_t alltoall_forward_hops(const Vpt& vpt);

/// Exact communication volume (in units of the per-message size s) incurred
/// for one process's all-to-all submessages: equal to alltoall_forward_hops.
/// Direct communication (T_1) gives K - 1.
std::int64_t alltoall_volume_units(const Vpt& vpt);

/// Ratio of STFW all-to-all volume to direct-communication volume,
/// e.g. 1.88 for T_2 at K=256, 3.01 for T_4, 4.02 for T_8 (paper Section 4).
double alltoall_volume_ratio(const Vpt& vpt);

/// Loose upper bound on that ratio: every submessage forwarded in all n
/// stages, i.e. simply n.
std::int64_t alltoall_volume_ratio_loose(const Vpt& vpt);

/// Per-process buffer bound at any stage: s * (K - 1) payload units
/// (the paper shows exactly K-1 submessages reside at a process between
/// stages in the all-to-all case).
std::int64_t buffer_bound_units(const Vpt& vpt);

/// Number of submessages resident at one process after stage d completes in
/// the all-to-all case; the paper derives K - 1 for every d (self excluded).
std::int64_t resident_submessages_after_stage(const Vpt& vpt, int stage);

}  // namespace stfw::core::analysis
