#include "buffer_pool.hpp"

#include <algorithm>
#include <bit>

namespace stfw::core {

namespace {

/// Class index of the smallest power-of-two capacity >= bytes (floored at
/// kMinClassBytes): 64 -> 0, 128 -> 1, ...
std::size_t class_index_for(std::size_t bytes) noexcept {
  const std::size_t cls = std::bit_ceil(std::max(bytes, BufferPool::kMinClassBytes));
  return static_cast<std::size_t>(std::bit_width(cls) -
                                  std::bit_width(BufferPool::kMinClassBytes));
}

}  // namespace

std::size_t BufferPool::class_bytes(std::size_t bytes) noexcept {
  return std::bit_ceil(std::max(bytes, kMinClassBytes));
}

std::vector<std::byte> BufferPool::acquire(std::size_t bytes) {
  const std::size_t idx = class_index_for(bytes);
  if (idx < classes_.size() && !classes_[idx].empty()) {
    std::vector<std::byte> buf = std::move(classes_[idx].back());
    classes_[idx].pop_back();
    // Steady-state replays request the same size every iteration, so this
    // resize is a no-op; growth within the class only value-initializes the
    // delta, never reallocates.
    buf.resize(bytes);
    ++stats_.hits;
    stats_.reused_bytes += bytes;
    return buf;
  }
  ++stats_.misses;
  std::vector<std::byte> buf;
  buf.reserve(class_bytes(bytes));
  buf.resize(bytes);
  return buf;
}

void BufferPool::release(std::vector<std::byte> buf) {
  if (buf.capacity() < kMinClassBytes) {
    ++stats_.dropped;
    return;
  }
  // Bin by the largest class the capacity fully covers, so every future
  // acquire from that class is guaranteed to fit without reallocation even
  // for buffers the pool never allocated itself.
  const std::size_t idx = static_cast<std::size_t>(
      std::bit_width(std::bit_floor(buf.capacity())) - std::bit_width(kMinClassBytes));
  if (idx >= classes_.size()) classes_.resize(idx + 1);
  if (classes_[idx].size() >= kMaxCachedPerClass) {
    ++stats_.dropped;
    return;
  }
#if STFW_SANITIZE_ENABLED
  // Poison, don't shrink: a stale span into this buffer now reads 0xA5
  // instead of the previous exchange's payload (test_wire_fuzz pins this).
  std::fill(buf.begin(), buf.end(), std::byte{0xA5});
#endif
  classes_[idx].push_back(std::move(buf));
}

}  // namespace stfw::core
