#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file buffer_pool.hpp
/// Size-classed recycling of wire buffers.
///
/// The zero-copy replay path (docs/performance.md, "Zero-copy replay and
/// lock-free delivery") gathers every outgoing coalesced frame straight into
/// one wire buffer and parks every inbound raw frame until the next replay
/// reuses its slots. Allocating those buffers fresh per (stage, neighbor)
/// per iteration puts the allocator on the hot path of exactly the loop the
/// plan layer exists to strip bare; the pool recycles them instead.
///
/// Buffers are binned by power-of-two capacity classes (kMinClassBytes up).
/// acquire(n) pops a cached buffer whose capacity covers the class of n —
/// steady-state replays request identical sizes, so the resize is a no-op
/// and no bytes are touched — and falls back to a fresh allocation sized to
/// the full class, so the buffer is reusable for anything in its class for
/// the rest of its life. release() returns a buffer to its class, dropping
/// it when the class is already full (the pool must never become a leak).
///
/// Under STFW_SANITIZE builds (STFW_SANITIZE_ENABLED) every released buffer
/// is poisoned with 0xA5 so a stale view into a recycled buffer reads
/// garbage loudly instead of yesterday's payload; the gather path overwrites
/// every byte it sends, so poison can never leak onto the wire.
///
/// Single-threaded by design: each StfwCommunicator owns one pool and calls
/// it only from its own rank thread. Buffers migrate across ranks inside
/// messages (acquired from the sender's pool, released into the receiver's);
/// a pool only ever touches buffers currently owned by its thread.

namespace stfw::core {

/// Cumulative counters; LocalExchangeStats reports per-exchange deltas.
struct BufferPoolStats {
  std::int64_t hits = 0;           // acquire served from the cache
  std::int64_t misses = 0;         // acquire fell back to the allocator
  std::int64_t dropped = 0;        // release into a full class (buffer freed)
  std::uint64_t reused_bytes = 0;  // bytes handed out without allocating
};

class BufferPool {
public:
  /// A buffer of exactly `bytes` size whose capacity covers the full size
  /// class. Contents are unspecified (poison after a sanitized reuse, zero
  /// when freshly allocated); callers must write every byte they send.
  std::vector<std::byte> acquire(std::size_t bytes);

  /// Return a buffer to the pool. Buffers below the minimum class or into a
  /// full class are simply freed. Safe for buffers the pool never handed
  /// out (inbound frames allocated by a peer's pool or by the unplanned
  /// path); they are binned by their actual capacity.
  void release(std::vector<std::byte> buf);

  /// Drop every cached buffer (the counters survive).
  void clear() { classes_.clear(); }

  [[nodiscard]] const BufferPoolStats& stats() const noexcept { return stats_; }

  /// Capacity of the size class serving a `bytes`-sized acquire.
  static std::size_t class_bytes(std::size_t bytes) noexcept;

  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxCachedPerClass = 32;

private:
  std::vector<std::vector<std::vector<std::byte>>> classes_;  // [class][cached]
  BufferPoolStats stats_;
};

}  // namespace stfw::core
