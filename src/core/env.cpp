#include "core/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "core/error.hpp"

namespace stfw::core {
namespace {

// Trims leading/trailing ASCII whitespace in place and returns whether any
// non-whitespace content remains.
bool trim(std::string& s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  s = s.substr(b, e - b);
  return !s.empty();
}

[[noreturn]] void bad_value(const char* what, const std::string& text, const char* reason) {
  throw ValidationError("env", /*rank=*/-1, /*stage=*/-1,
                        std::string(what) + "=\"" + text + "\" " + reason);
}

}  // namespace

double parse_double(const char* text, const char* what) {
  std::string tok(text == nullptr ? "" : text);
  if (!trim(tok)) bad_value(what, tok, "is empty");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || end == tok.c_str())
    bad_value(what, tok, "is not a number");
  if (errno == ERANGE) bad_value(what, tok, "is out of range");
  return value;
}

std::int64_t parse_int(const char* text, const char* what) {
  std::string tok(text == nullptr ? "" : text);
  if (!trim(tok)) bad_value(what, tok, "is empty");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || end == tok.c_str())
    bad_value(what, tok, "is not an integer");
  if (errno == ERANGE) bad_value(what, tok, "is out of range");
  return static_cast<std::int64_t>(value);
}

std::uint64_t parse_u64(const char* text, const char* what) {
  std::string tok(text == nullptr ? "" : text);
  if (!trim(tok)) bad_value(what, tok, "is empty");
  // strtoull accepts and silently negates "-1"; reject a sign ourselves.
  if (tok[0] == '-') bad_value(what, tok, "must be non-negative");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || end == tok.c_str())
    bad_value(what, tok, "is not an unsigned integer");
  if (errno == ERANGE) bad_value(what, tok, "is out of range");
  return static_cast<std::uint64_t>(value);
}

bool parse_flag(const char* text, const char* what) {
  std::string tok(text == nullptr ? "" : text);
  if (!trim(tok)) bad_value(what, tok, "is empty");
  for (char& c : tok) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (tok == "1" || tok == "true" || tok == "on" || tok == "yes") return true;
  if (tok == "0" || tok == "false" || tok == "off" || tok == "no") return false;
  bad_value(what, tok, "is not a boolean (expected 1/0, true/false, on/off, yes/no)");
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return parse_double(v, name);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return parse_int(v, name);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return parse_u64(v, name);
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return parse_flag(v, name);
}

std::string env_string(const char* name, std::string fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return v;
}

bool env_present(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0';
}

}  // namespace stfw::core
