#pragma once

#include <cstdint>

/// \file env.hpp
/// Strict environment-variable parsing shared by the fault injector, the
/// bench harnesses and the runtime's tuning knobs.
///
/// The STFW_* environment surface is configuration: a typo'd value must be a
/// loud error, not a silently truncated number (strtod("0.1x") == 0.1,
/// atof("abc") == 0.0). These helpers parse the *full* token and throw a
/// structured core::ValidationError (check "env", naming the variable) on
/// anything malformed or out of range. An unset or empty variable means
/// "use the default", matching the unset convention of POSIX tools.

namespace stfw::core {

/// Parse `name` as a floating-point number. Leading/trailing whitespace is
/// tolerated; any other unconsumed character throws.
double env_double(const char* name, double fallback);

/// Parse `name` as a signed decimal integer (no fractional part).
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Parse `name` as an unsigned decimal integer. Rejects negative input
/// (strtoull would silently wrap it).
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Parsing core of the helpers above, exposed for values that do not come
/// from the environment (e.g. harness CLI arguments). `what` names the
/// value in the error message.
double parse_double(const char* text, const char* what);
std::int64_t parse_int(const char* text, const char* what);
std::uint64_t parse_u64(const char* text, const char* what);

}  // namespace stfw::core
