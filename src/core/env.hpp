#pragma once

#include <cstdint>
#include <string>

/// \file env.hpp
/// Strict environment-variable parsing shared by the fault injector, the
/// bench harnesses and the runtime's tuning knobs.
///
/// The STFW_* environment surface is configuration: a typo'd value must be a
/// loud error, not a silently truncated number (strtod("0.1x") == 0.1,
/// atof("abc") == 0.0). These helpers parse the *full* token and throw a
/// structured core::ValidationError (check "env", naming the variable) on
/// anything malformed or out of range. An unset or empty variable means
/// "use the default", matching the unset convention of POSIX tools.

namespace stfw::core {

/// Parse `name` as a floating-point number. Leading/trailing whitespace is
/// tolerated; any other unconsumed character throws.
double env_double(const char* name, double fallback);

/// Parse `name` as a signed decimal integer (no fractional part).
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Parse `name` as an unsigned decimal integer. Rejects negative input
/// (strtoull would silently wrap it).
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Parse `name` as a boolean switch. Accepts (case-insensitively) 1/0,
/// true/false, on/off, yes/no; anything else throws. "STFW_VALIDATE=flase"
/// must not silently enable the validator.
bool env_flag(const char* name, bool fallback);

/// Raw string value of `name`, or `fallback` when unset/empty. Routes the
/// last remaining string knobs through this header so L1 (no raw getenv
/// outside core/env) covers the whole tree.
std::string env_string(const char* name, std::string fallback);

/// Whether `name` is set to a non-empty value. For presence-only switches
/// whose value is parsed elsewhere.
bool env_present(const char* name);

/// Parsing core of the helpers above, exposed for values that do not come
/// from the environment (e.g. harness CLI arguments). `what` names the
/// value in the error message.
double parse_double(const char* text, const char* what);
std::int64_t parse_int(const char* text, const char* what);
std::uint64_t parse_u64(const char* text, const char* what);
bool parse_flag(const char* text, const char* what);

}  // namespace stfw::core
