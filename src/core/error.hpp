#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

/// \file error.hpp
/// Error handling for the stfw library.
///
/// Precondition violations on the public API throw stfw::core::Error so
/// misuse is diagnosable in tests and applications; internal invariants use
/// STFW_ASSERT, which is compiled in all build types (the checks are cheap
/// relative to communication work). The fault-tolerance layer
/// (docs/fault_model.md) adds structured subtypes: TimeoutError for expired
/// deadlines, DeadlockError for watchdog verdicts, ClusterAbortedError for
/// secondary failures caused by a peer's abort, and MultiRankError when
/// several ranks fail in one Cluster::run.

namespace stfw::core {

/// Exception thrown on API misuse (bad VPT sizes, out-of-range ranks, ...).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Structured diagnostic thrown by the debug-mode exchange validator
/// (src/validate/) when a store-and-forward invariant of Algorithm 1 is
/// violated. Carries the machine-readable context alongside the formatted
/// message so tests and tooling can assert on the exact check that fired.
class ValidationError : public Error {
public:
  ValidationError(std::string check, int rank, int stage, const std::string& detail)
      : Error("[validate:" + check + "] rank " + std::to_string(rank) + " stage " +
              std::to_string(stage) + ": " + detail),
        check_(std::move(check)),
        rank_(rank),
        stage_(stage) {}

  /// Identifier of the violated invariant, e.g. "neighbor-send" or
  /// "payload-conservation".
  const std::string& check() const noexcept { return check_; }
  int rank() const noexcept { return rank_; }
  /// Stage in which the violation was observed; -1 for exchange-wide checks.
  int stage() const noexcept { return stage_; }

private:
  std::string check_;
  int rank_;
  int stage_;
};

/// A blocking communication primitive exceeded its deadline. Carries the
/// waiter's identity and what it was waiting for, so a stalled peer is
/// nameable from the exception alone ("rank 1 waited 100ms for rank 0").
class TimeoutError : public Error {
public:
  TimeoutError(std::string op, int rank, int peer, int tag, long long waited_ms,
               const std::string& detail = {})
      : Error("[timeout:" + op + "] rank " + std::to_string(rank) + " waited " +
              std::to_string(waited_ms) + "ms" +
              (peer >= 0 ? " for rank " + std::to_string(peer) : std::string()) +
              (op == "recv" ? " (tag " + std::to_string(tag) + ")" : std::string()) +
              (detail.empty() ? std::string() : ": " + detail)),
        op_(std::move(op)),
        rank_(rank),
        peer_(peer),
        tag_(tag),
        waited_ms_(waited_ms) {}

  /// Primitive that timed out: "recv", "barrier", "allgather", ...
  const std::string& op() const noexcept { return op_; }
  /// Rank that was waiting.
  int rank() const noexcept { return rank_; }
  /// Rank being waited for (the stuck/stalled rank); kAnySource/-1 if any.
  int peer() const noexcept { return peer_; }
  int tag() const noexcept { return tag_; }
  long long waited_ms() const noexcept { return waited_ms_; }

private:
  std::string op_;
  int rank_;
  int peer_;
  int tag_;
  long long waited_ms_;
};

/// The cluster watchdog concluded that no progress is possible and reports
/// where every rank is stuck (see Cluster::set_watchdog).
class DeadlockError : public TimeoutError {
public:
  DeadlockError(int rank, long long waited_ms, const std::string& report)
      : TimeoutError("deadlock", rank, -1, 0, waited_ms, report) {}
};

/// Secondary failure: a blocking call was unblocked because *another* rank
/// threw. Cluster::run filters these out of its error aggregation so the
/// primary cause is what callers see.
class ClusterAbortedError : public Error {
public:
  explicit ClusterAbortedError(const std::string& what) : Error(what) {}
};

/// More than one rank failed with a primary error in a single Cluster::run.
/// what() summarizes every failing rank; failures() carries them verbatim.
class MultiRankError : public Error {
public:
  struct RankFailure {
    int rank;
    std::string message;
  };

  explicit MultiRankError(std::vector<RankFailure> failures)
      : Error(summarize(failures)), failures_(std::move(failures)) {}

  const std::vector<RankFailure>& failures() const noexcept { return failures_; }

private:
  static std::string summarize(const std::vector<RankFailure>& failures) {
    std::string s = std::to_string(failures.size()) + " ranks failed:";
    for (const RankFailure& f : failures)
      s += "\n  [rank " + std::to_string(f.rank) + "] " + f.message;
    return s;
  }

  std::vector<RankFailure> failures_;
};

[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc = std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " + msg);
}

inline void require(bool cond, const char* msg,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);  // literal overload: no allocation on the hot path
}

inline void require(bool cond, const std::string& msg,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

}  // namespace stfw::core

/// Internal invariant check; always on.
#define STFW_ASSERT(cond, msg)                     \
  do {                                             \
    if (!(cond)) ::stfw::core::fail((msg));        \
  } while (0)
