#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error handling for the stfw library.
///
/// Precondition violations on the public API throw stfw::core::Error so
/// misuse is diagnosable in tests and applications; internal invariants use
/// STFW_ASSERT, which is compiled in all build types (the checks are cheap
/// relative to communication work).

namespace stfw::core {

/// Exception thrown on API misuse (bad VPT sizes, out-of-range ranks, ...).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Structured diagnostic thrown by the debug-mode exchange validator
/// (src/validate/) when a store-and-forward invariant of Algorithm 1 is
/// violated. Carries the machine-readable context alongside the formatted
/// message so tests and tooling can assert on the exact check that fired.
class ValidationError : public Error {
public:
  ValidationError(std::string check, int rank, int stage, const std::string& detail)
      : Error("[validate:" + check + "] rank " + std::to_string(rank) + " stage " +
              std::to_string(stage) + ": " + detail),
        check_(std::move(check)),
        rank_(rank),
        stage_(stage) {}

  /// Identifier of the violated invariant, e.g. "neighbor-send" or
  /// "payload-conservation".
  const std::string& check() const noexcept { return check_; }
  int rank() const noexcept { return rank_; }
  /// Stage in which the violation was observed; -1 for exchange-wide checks.
  int stage() const noexcept { return stage_; }

private:
  std::string check_;
  int rank_;
  int stage_;
};

[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc = std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " + msg);
}

inline void require(bool cond, const char* msg,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);  // literal overload: no allocation on the hot path
}

inline void require(bool cond, const std::string& msg,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

}  // namespace stfw::core

/// Internal invariant check; always on.
#define STFW_ASSERT(cond, msg)                     \
  do {                                             \
    if (!(cond)) ::stfw::core::fail((msg));        \
  } while (0)
