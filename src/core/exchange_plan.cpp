#include "exchange_plan.hpp"

#include <algorithm>
#include <cstring>

#include "error.hpp"
#include "wire.hpp"

namespace stfw::core {

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(v));
  std::memcpy(out.data() + pos, &v, sizeof(v));
}

void put_i32(std::vector<std::byte>& out, std::int32_t v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(v));
  std::memcpy(out.data() + pos, &v, sizeof(v));
}

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
}

}  // namespace

PatternSignature PatternSignature::of(
    std::span<const std::pair<Rank, std::uint32_t>> seq) {
  PatternSignature sig;
  sig.sequence.assign(seq.begin(), seq.end());
  std::vector<std::pair<Rank, std::uint32_t>> sorted = sig.sequence;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t h = 14695981039346656037ull;
  hash_u64(h, sorted.size());
  for (const auto& [dest, size] : sorted) {
    hash_u64(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)));
    hash_u64(h, size);
  }
  sig.key = h;
  return sig;
}

PlanRecorder::PlanRecorder(const Vpt& vpt, Rank me,
                           std::span<const std::pair<Rank, std::uint32_t>> pattern) {
  layout_.signature = PatternSignature::of(pattern);
  layout_.vpt_dims = vpt.dim_sizes();
  layout_.rank = me;
  const int n = vpt.dim();
  require(n > 0 && n <= 127, "PlanRecorder: VPT dimension out of range");
  layout_.out_frames.resize(static_cast<std::size_t>(n));
  layout_.in_frames.resize(static_cast<std::size_t>(n));
  layout_.stage_buffered_bytes.assign(static_cast<std::size_t>(n), 0);
  layout_.stage_buffered_subs.assign(static_cast<std::size_t>(n), 0);
  layout_.expected_stage_frames.resize(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d)
    layout_.expected_stage_frames[static_cast<std::size_t>(d)] = vpt.dim_size(d) - 1;
  layout_.seed_first_dim.reserve(pattern.size());
  for (const auto& [dest, size] : pattern) {
    require(dest >= 0 && dest < vpt.size(), "PlanRecorder: destination out of range");
    layout_.seed_first_dim.push_back(
        static_cast<std::int8_t>(dest == me ? -1 : vpt.first_diff_dim(me, dest)));
    layout_.seed_payload_bytes += size;
  }
}

void PlanRecorder::on_stage_send(int stage, Rank to, std::span<const Submessage> subs,
                                 std::span<const PayloadSrc> srcs) {
  STFW_ASSERT(stage >= 0 && stage < layout_.dim(), "plan: send stage out of range");
  STFW_ASSERT(subs.size() == srcs.size(), "plan: provenance/submessage count mismatch");
  PlanOutFrame frame;
  frame.to = to;
  frame.subs.assign(subs.begin(), subs.end());
  std::uint64_t payload = 0;
  for (const Submessage& s : subs) payload += s.size_bytes;
  frame.payload_bytes = payload;
  const std::uint64_t total = wire_size_bytes(subs.size(), payload);
  require(total <= 0xffffffffull, "plan: frame exceeds 4 GiB wire limit");
  frame.image.reserve(total);
  put_u32(frame.image, static_cast<std::uint32_t>(subs.size()));
  for (std::size_t k = 0; k < subs.size(); ++k) {
    const Submessage& s = subs[k];
    put_i32(frame.image, s.source);
    put_i32(frame.image, s.dest);
    put_u32(frame.image, s.size_bytes);
    if (s.size_bytes > 0) {
      STFW_ASSERT(srcs[k].bytes == s.size_bytes, "plan: provenance size mismatch");
      frame.slot_offsets.push_back(static_cast<std::uint32_t>(frame.image.size()));
      frame.slots.push_back(srcs[k]);
      frame.image.resize(frame.image.size() + s.size_bytes);  // zeroed gap
    }
  }
  layout_.messages_sent += 1;
  layout_.payload_bytes_sent += payload;
  layout_.wire_bytes_sent += frame.image.size();
  layout_.out_frames[static_cast<std::size_t>(stage)].push_back(std::move(frame));
}

const PlanInFrame& PlanRecorder::on_stage_recv(int stage, Rank source,
                                               std::span<const Submessage> subs) {
  STFW_ASSERT(stage >= 0 && stage < layout_.dim(), "plan: recv stage out of range");
  auto& frames = layout_.in_frames[static_cast<std::size_t>(stage)];
  require(frames.size() < 0xffff, "plan: too many inbound frames in one stage");
  PlanInFrame frame;
  frame.source = source;
  frame.subs.assign(subs.begin(), subs.end());
  std::uint64_t pos = 4;  // past the u32 count
  for (Submessage& s : frame.subs) {
    pos += 12;  // past {source, dest, len}
    s.offset = pos;
    pos += s.size_bytes;
  }
  frame.wire_size = pos;
  layout_.messages_received += 1;
  frames.push_back(std::move(frame));
  return frames.back();
}

void PlanRecorder::on_stage_complete(int stage, std::uint64_t buffered_bytes,
                                     std::uint64_t buffered_subs) {
  STFW_ASSERT(stage >= 0 && stage < layout_.dim(), "plan: stage out of range");
  layout_.stage_buffered_bytes[static_cast<std::size_t>(stage)] = buffered_bytes;
  layout_.stage_buffered_subs[static_cast<std::size_t>(stage)] = buffered_subs;
  layout_.transit_peak_bytes = std::max(layout_.transit_peak_bytes, buffered_bytes);
}

ExchangePlanLayout PlanRecorder::finish(std::span<const Submessage> delivered,
                                        std::span<const PayloadSrc> delivered_srcs) {
  STFW_ASSERT(delivered.size() == delivered_srcs.size(),
              "plan: delivery provenance count mismatch");
  layout_.deliveries.reserve(delivered.size());
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    STFW_ASSERT(delivered_srcs[i].bytes == delivered[i].size_bytes,
                "plan: delivery provenance size mismatch");
    layout_.deliveries.push_back(PlanDelivery{delivered[i].source, delivered_srcs[i]});
    layout_.delivered_payload_bytes += delivered[i].size_bytes;
  }
  return std::move(layout_);
}

void validate_plan_layout(const ExchangePlanLayout& layout) {
  const auto bad = [&](int stage, const std::string& detail) {
    throw ValidationError("plan-layout", static_cast<int>(layout.rank), stage, detail);
  };
  const std::size_t nstages = layout.out_frames.size();
  if (layout.in_frames.size() != nstages)
    bad(-1, "in_frames/out_frames stage count mismatch");

  // Provenance bounds shared by payload slots and deliveries: the gather
  // path memcpys straight out of whatever this PayloadSrc names, so every
  // reference must be provably inside its buffer before any byte moves.
  const auto check_src = [&](int stage, const PayloadSrc& src, const char* where) {
    // Zero-size sources are placeholders (recorded plans use a default
    // PayloadSrc for empty submessages); no byte is ever read through them.
    if (src.bytes == 0) return;
    if (src.kind == PayloadSrc::Kind::kSeed) {
      if (src.index >= layout.signature.sequence.size())
        bad(stage, std::string(where) + ": seed index out of range");
      if (src.bytes != layout.signature.sequence[src.index].second)
        bad(stage, std::string(where) + ": seed slot size disagrees with the pattern");
      return;
    }
    const auto rs = static_cast<std::size_t>(src.stage);
    if (rs >= nstages) bad(stage, std::string(where) + ": recv stage out of range");
    const auto& stage_in = layout.in_frames[rs];
    if (src.frame >= stage_in.size())
      bad(stage, std::string(where) + ": recv frame index out of range");
    const std::uint64_t end =
        static_cast<std::uint64_t>(src.offset) + static_cast<std::uint64_t>(src.bytes);
    if (end > stage_in[src.frame].wire_size)
      bad(stage, std::string(where) + ": recv slot reads past its inbound frame");
  };

  for (std::size_t s = 0; s < nstages; ++s) {
    const int stage = static_cast<int>(s);
    for (const PlanOutFrame& f : layout.out_frames[s]) {
      if (f.slot_offsets.size() != f.slots.size())
        bad(stage, "slot offset/source table size mismatch");
      std::uint64_t prev_end = 0;
      for (std::size_t k = 0; k < f.slots.size(); ++k) {
        const std::uint64_t off = f.slot_offsets[k];
        const std::uint64_t end = off + static_cast<std::uint64_t>(f.slots[k].bytes);
        if (off < prev_end) bad(stage, "payload slots overlap or are out of order");
        if (end > f.image.size()) bad(stage, "payload slot exceeds the frame image");
        prev_end = end;
        check_src(stage, f.slots[k], "out-frame slot");
      }
    }
    for (const PlanInFrame& f : layout.in_frames[s]) {
      for (const Submessage& sub : f.subs) {
        const std::uint64_t end = sub.offset + static_cast<std::uint64_t>(sub.size_bytes);
        if (end > f.wire_size) bad(stage, "inbound submessage exceeds its frame");
      }
    }
  }
  for (const PlanDelivery& d : layout.deliveries) check_src(-1, d.src, "delivery");
}

}  // namespace stfw::core
