#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "message.hpp"
#include "vpt.hpp"

/// \file exchange_plan.hpp
/// Frozen layout of one store-and-forward exchange.
///
/// The paper's flagship workload (iterative SpMV, §5) performs the *same*
/// exchange every iteration: identical send pattern, identical VPT, only the
/// payload bytes change. Deriving the dimension-order routes, the per-stage
/// coalesced frame layouts, and all intermediate Submessage bookkeeping from
/// scratch each time is pure overhead — the store-and-forward analogue of
/// MPI persistent collectives is to record the schedule once and replay it.
///
/// ExchangePlanLayout is that record, from one rank's point of view:
///
///   - for every stage, the exact wire frames this rank sends (a prebuilt
///     wire image with payload gaps plus an offset table saying which bytes
///     fill each gap), and
///   - the exact frames it receives (source, size, and where inside the raw
///     frame every forwarded payload sits), and
///   - the delivery list (which seed payload / which received-frame slice
///     becomes each InboundMessage).
///
/// Replaying a plan therefore needs no StfwRankState, no PayloadArena, no
/// per-submessage vectors — only memcpys through the offset tables. The
/// layout is pure data (core has no runtime dependency); the executor lives
/// in runtime::StfwCommunicator.

namespace stfw::core {

/// Identity of a send pattern: an order-preserving copy of the caller's
/// (dest, size) sequence plus an order-insensitive FNV-1a key over the
/// sorted pairs for cheap cache lookup. Two patterns are equal only if the
/// exact sequences match — the hash alone is never trusted.
struct PatternSignature {
  std::uint64_t key = 0;
  std::vector<std::pair<Rank, std::uint32_t>> sequence;

  static PatternSignature of(std::span<const std::pair<Rank, std::uint32_t>> seq);

  friend bool operator==(const PatternSignature& a, const PatternSignature& b) {
    return a.key == b.key && a.sequence == b.sequence;
  }
};

/// Where the bytes of one planned payload slot come from at replay time:
/// either the caller's seed payload number `index`, or `bytes` bytes at
/// `offset` inside inbound raw frame `frame` of stage `stage`.
struct PayloadSrc {
  enum class Kind : std::uint8_t { kSeed, kRecv };
  Kind kind = Kind::kSeed;
  std::uint8_t stage = 0;   // kRecv: stage whose inbound frame holds the bytes
  std::uint16_t frame = 0;  // kRecv: frame index within that stage, drain order
  std::uint32_t index = 0;  // kSeed: position in the caller's send sequence
  std::uint32_t offset = 0; // kRecv: byte offset of the payload inside the frame
  std::uint32_t bytes = 0;

  friend bool operator==(const PayloadSrc&, const PayloadSrc&) = default;
};

/// One outgoing coalesced frame: the complete wire image with every payload
/// gap zeroed, and parallel offset/source tables for filling the gaps.
/// Zero-size payloads need no slot; `subs` keeps the full headers (offsets
/// meaningless) for the debug validator.
struct PlanOutFrame {
  Rank to = -1;
  std::vector<std::byte> image;
  std::vector<std::uint32_t> slot_offsets;  // image offset of each payload gap
  std::vector<PayloadSrc> slots;            // what fills each gap
  std::vector<Submessage> subs;
  std::uint64_t payload_bytes = 0;
};

/// One expected incoming frame: who sends it, how big it must be, and the
/// decoded headers with Submessage::offset repurposed as the payload's byte
/// offset *within the frame* (so replay never copies into an arena).
struct PlanInFrame {
  Rank source = -1;
  std::uint64_t wire_size = 0;
  std::vector<Submessage> subs;
};

/// One delivery: the InboundMessage's source rank and where its bytes live.
struct PlanDelivery {
  Rank source = -1;
  PayloadSrc src;
};

/// The complete frozen exchange, one rank's view. Immutable once built.
struct ExchangePlanLayout {
  PatternSignature signature;
  std::vector<int> vpt_dims;
  Rank rank = -1;

  /// Routing dimension of each seed send (index-parallel with
  /// signature.sequence); -1 for self-sends. Lets the resilient exchange
  /// skip the per-send first_diff_dim scan on a plan hit.
  std::vector<std::int8_t> seed_first_dim;

  std::vector<std::vector<PlanOutFrame>> out_frames;  // [stage][frame]
  std::vector<std::vector<PlanInFrame>> in_frames;    // [stage][frame]
  std::vector<PlanDelivery> deliveries;               // sorted by source

  /// Per-stage inbound dependency table of the barrier-free replay: the
  /// total number of frames — real (in_frames) plus 4-byte empty fillers —
  /// this rank awaits in stage d, i.e. its k_d - 1 dimension-d neighbors.
  /// Frozen so a replay blocks on exactly these counts instead of a global
  /// barrier; any neighbor beyond in_frames must arrive empty.
  std::vector<int> expected_stage_frames;

  /// Forward-buffer residency after each stage, frozen for the validator's
  /// on_stage_complete hook.
  std::vector<std::uint64_t> stage_buffered_bytes;
  std::vector<std::uint64_t> stage_buffered_subs;

  /// Frozen per-exchange stats (identical every replay by construction).
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t wire_bytes_sent = 0;
  std::uint64_t seed_payload_bytes = 0;
  std::uint64_t delivered_payload_bytes = 0;
  std::uint64_t transit_peak_bytes = 0;

  int dim() const noexcept { return static_cast<int>(vpt_dims.size()); }
  std::uint64_t peak_buffer_bytes() const noexcept {
    return seed_payload_bytes + delivered_payload_bytes + transit_peak_bytes;
  }
};

/// Builds an ExchangePlanLayout from a stream of per-stage events. Fed either
/// by StfwCommunicator::plan() (a header-only collective planning pass) or by
/// a recording unplanned exchange (the transparent cache's miss path); both
/// produce identical layouts because routing is deterministic.
class PlanRecorder {
public:
  PlanRecorder(const Vpt& vpt, Rank me,
               std::span<const std::pair<Rank, std::uint32_t>> pattern);

  /// Record one outgoing stage frame. `srcs[k]` is the provenance of
  /// `subs[k]`'s payload (entries for zero-size submessages are ignored).
  void on_stage_send(int stage, Rank to, std::span<const Submessage> subs,
                     std::span<const PayloadSrc> srcs);

  /// Record one incoming stage frame (frames are appended in drain order).
  /// Returns the recorded frame; its subs carry the in-frame payload offsets
  /// the caller needs to register provenance for forwarded bytes.
  const PlanInFrame& on_stage_recv(int stage, Rank source,
                                   std::span<const Submessage> subs);

  /// Record forward-buffer residency at the end of `stage`.
  void on_stage_complete(int stage, std::uint64_t buffered_bytes,
                         std::uint64_t buffered_subs);

  /// Finish with the delivery list (already sorted by source) and each
  /// delivery's provenance. Invalidates the recorder.
  ExchangePlanLayout finish(std::span<const Submessage> delivered,
                            std::span<const PayloadSrc> delivered_srcs);

private:
  ExchangePlanLayout layout_;
};

/// Structural audit of a frozen layout, throwing core::ValidationError
/// ("plan-layout") on the first inconsistency. The zero-copy gather path
/// trusts the slot tables blindly on every replay — a mutated or corrupted
/// layout must be rejected here, before a single byte is read from caller
/// buffers, never discovered as an out-of-bounds memcpy. Checks: slot
/// offset/source tables agree in size; payload slots are ordered,
/// non-overlapping and inside their frame image; every seed reference is in
/// pattern range with the pattern's size; every recv reference points at a
/// recorded inbound frame and stays inside its wire size (deliveries
/// included); inbound submessage offsets stay inside their frame.
void validate_plan_layout(const ExchangePlanLayout& layout);

}  // namespace stfw::core
