#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vpt.hpp"

/// \file message.hpp
/// Submessages and payload storage.
///
/// The paper distinguishes *messages* (what travels between neighboring
/// processes in one stage, M_ij) from *submessages* (the original P2P
/// payloads (P_dest, m_src,dest) carried inside them). A submessage's
/// payload never changes while it is stored and forwarded, so payloads live
/// once in an append-only PayloadArena and submessages are small fixed-size
/// records referencing it. This is an implementation device of the in-process
/// substrates; the wire format serialized by wire.hpp carries the bytes.

namespace stfw::core {

/// One original point-to-point payload in flight: source, final destination,
/// and its bytes (offset/length into a PayloadArena).
struct Submessage {
  Rank source = -1;
  Rank dest = -1;
  std::uint64_t offset = 0;
  std::uint32_t size_bytes = 0;
  /// Per-source sequence number assigned at seeding, so (source, id)
  /// identifies a submessage exchange-wide. The resilient exchange carries
  /// it on the wire to deduplicate end-to-end when a retry-exhausted frame
  /// is re-routed directly even though the original was in fact accepted
  /// (the at-least-once window of docs/fault_model.md). The plain exchange
  /// ignores it.
  std::uint32_t id = 0;

  friend bool operator==(const Submessage&, const Submessage&) = default;
};

/// Append-only byte store for submessage payloads.
class PayloadArena {
public:
  /// Copies `bytes` into the arena and returns its offset.
  std::uint64_t add(std::span<const std::byte> bytes) {
    const std::uint64_t off = bytes_.size();
    bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
    return off;
  }

  std::span<const std::byte> view(const Submessage& s) const {
    return std::span<const std::byte>(bytes_.data() + s.offset, s.size_bytes);
  }

  std::uint64_t size_bytes() const noexcept { return bytes_.size(); }
  void clear() noexcept { bytes_.clear(); }
  void reserve(std::uint64_t n) { bytes_.reserve(n); }

private:
  std::vector<std::byte> bytes_;
};

/// A coalesced stage message: all submessages a process sends to one
/// dimension-d neighbor in one stage (the paper's M_ij).
struct StageMessage {
  Rank from = -1;
  Rank to = -1;
  std::vector<Submessage> subs;

  std::uint64_t payload_bytes() const noexcept {
    std::uint64_t b = 0;
    for (const Submessage& s : subs) b += s.size_bytes;
    return b;
  }
};

}  // namespace stfw::core
