#include "metrics.hpp"

#include <algorithm>
#include <numeric>

#include "error.hpp"

namespace stfw::core {

ExchangeMetrics::ExchangeMetrics(Rank num_ranks)
    : msgs_sent_(static_cast<std::size_t>(num_ranks), 0),
      msgs_recv_(static_cast<std::size_t>(num_ranks), 0),
      payload_sent_(static_cast<std::size_t>(num_ranks), 0),
      payload_recv_(static_cast<std::size_t>(num_ranks), 0),
      buffer_bytes_(static_cast<std::size_t>(num_ranks), 0) {
  require(num_ranks >= 1, "ExchangeMetrics: need at least one rank");
}

std::int64_t ExchangeMetrics::max_send_count() const noexcept {
  return *std::max_element(msgs_sent_.begin(), msgs_sent_.end());
}

double ExchangeMetrics::avg_send_count() const noexcept {
  const auto total = std::accumulate(msgs_sent_.begin(), msgs_sent_.end(), std::int64_t{0});
  return static_cast<double>(total) / static_cast<double>(msgs_sent_.size());
}

double ExchangeMetrics::avg_send_volume_words() const noexcept {
  const auto total = std::accumulate(payload_sent_.begin(), payload_sent_.end(), std::uint64_t{0});
  return static_cast<double>(total) / 8.0 / static_cast<double>(payload_sent_.size());
}

std::int64_t ExchangeMetrics::max_send_volume_words() const noexcept {
  const auto m = *std::max_element(payload_sent_.begin(), payload_sent_.end());
  return static_cast<std::int64_t>(m / 8);
}

std::int64_t ExchangeMetrics::total_volume_words() const noexcept {
  const auto total = std::accumulate(payload_sent_.begin(), payload_sent_.end(), std::uint64_t{0});
  return static_cast<std::int64_t>(total / 8);
}

std::uint64_t ExchangeMetrics::max_buffer_bytes() const noexcept {
  return *std::max_element(buffer_bytes_.begin(), buffer_bytes_.end());
}

}  // namespace stfw::core
