#pragma once

#include <cstdint>
#include <vector>

#include "vpt.hpp"

/// \file metrics.hpp
/// Per-exchange communication metrics — the columns of Tables 2 and 3.
///
/// Counts are of coalesced stage messages *sent* by each process over all
/// stages; volume is payload words (8-byte) sent, including forwarding;
/// the buffer metric is the per-process peak of parked forward-buffer bytes
/// plus the final delivered bytes (see DESIGN.md section 6).

namespace stfw::core {

class ExchangeMetrics {
public:
  explicit ExchangeMetrics(Rank num_ranks);

  void record_send(Rank r, std::uint64_t payload_bytes) {
    ++msgs_sent_[static_cast<std::size_t>(r)];
    payload_sent_[static_cast<std::size_t>(r)] += payload_bytes;
  }
  void record_recv(Rank r, std::uint64_t payload_bytes) {
    ++msgs_recv_[static_cast<std::size_t>(r)];
    payload_recv_[static_cast<std::size_t>(r)] += payload_bytes;
  }
  void record_buffer_bytes(Rank r, std::uint64_t bytes) {
    buffer_bytes_[static_cast<std::size_t>(r)] = bytes;
  }

  Rank num_ranks() const noexcept { return static_cast<Rank>(msgs_sent_.size()); }

  /// mmax — maximum over processes of messages sent.
  std::int64_t max_send_count() const noexcept;
  /// mavg — average over processes of messages sent.
  double avg_send_count() const noexcept;
  /// vavg — average over processes of payload words (8 bytes) sent.
  double avg_send_volume_words() const noexcept;
  /// Maximum over processes of payload words sent.
  std::int64_t max_send_volume_words() const noexcept;
  /// Total payload words moved (all processes, all hops).
  std::int64_t total_volume_words() const noexcept;
  /// Maximum over processes of the buffer metric, in bytes.
  std::uint64_t max_buffer_bytes() const noexcept;

  const std::vector<std::int64_t>& send_counts() const noexcept { return msgs_sent_; }
  const std::vector<std::int64_t>& recv_counts() const noexcept { return msgs_recv_; }
  const std::vector<std::uint64_t>& send_payload_bytes() const noexcept { return payload_sent_; }
  const std::vector<std::uint64_t>& recv_payload_bytes() const noexcept { return payload_recv_; }
  const std::vector<std::uint64_t>& buffer_bytes() const noexcept { return buffer_bytes_; }

private:
  std::vector<std::int64_t> msgs_sent_;
  std::vector<std::int64_t> msgs_recv_;
  std::vector<std::uint64_t> payload_sent_;
  std::vector<std::uint64_t> payload_recv_;
  std::vector<std::uint64_t> buffer_bytes_;
};

}  // namespace stfw::core
