#include "plan_repair.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "error.hpp"

namespace stfw::core {

namespace {

// Same resize+memcpy idiom as wire.cpp (gcc 12 -Wstringop-overflow dodge).
template <class T>
void put(std::vector<std::byte>& out, T v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &v, sizeof(T));
}

bool is_alive(std::span<const std::uint8_t> alive, Rank r) {
  return r >= 0 && r < static_cast<Rank>(alive.size()) && alive[static_cast<std::size_t>(r)] != 0;
}

/// Walks the canonical route src -> dst up to (excluding) `me`. Returns true
/// iff every hop strictly before `me` is alive — i.e. the submessage still
/// reaches `me` through the static frames. On success *pred (if non-null)
/// receives the hop immediately before `me` (src itself when me is the first
/// hop), from which the arrival stage at `me` follows.
bool arrives_at(const Vpt& vpt, std::span<const std::uint8_t> alive, Rank src, Rank dst,
                Rank me, Rank* pred) {
  if (src == me) {
    if (pred != nullptr) *pred = me;
    return true;
  }
  Rank cur = src;
  while (cur != dst) {
    const int d = vpt.first_diff_dim(cur, dst);
    const Rank next = vpt.with_coord(cur, d, vpt.coord(dst, d));
    if (next == me) {
      if (pred != nullptr) *pred = cur;
      return true;
    }
    if (!is_alive(alive, next)) return false;
    cur = next;
  }
  // `me` was not on the route at all: it cannot receive this submessage.
  return false;
}

}  // namespace

std::vector<Rank> route_hops(const Vpt& vpt, Rank src, Rank dst) {
  std::vector<Rank> hops;
  Rank cur = src;
  while (cur != dst) {
    const int d = vpt.first_diff_dim(cur, dst);
    cur = vpt.with_coord(cur, d, vpt.coord(dst, d));
    hops.push_back(cur);
  }
  return hops;
}

Rank greedy_next_hop(const Vpt& vpt, std::span<const std::uint8_t> alive, Rank cur, Rank dst) {
  require(cur != dst, "greedy_next_hop: already at destination");
  require(is_alive(alive, dst), "greedy_next_hop: destination is dead");
  for (int d = 0; d < vpt.dim(); ++d) {
    if (vpt.coord(cur, d) == vpt.coord(dst, d)) continue;
    const Rank cand = vpt.with_coord(cur, d, vpt.coord(dst, d));
    if (is_alive(alive, cand)) return cand;
  }
  // No surviving intermediate in any dimension: hop straight to the
  // destination (the relay lane's equivalent of the direct fallback).
  return dst;
}

RepairedPlan repair_plan(const ExchangePlanLayout& pristine, const Vpt& vpt,
                         std::span<const std::uint8_t> alive) {
  const Rank me = pristine.rank;
  require(is_alive(alive, me), "repair_plan: own rank is dead");
  require(static_cast<int>(alive.size()) == vpt.size(),
          "repair_plan: alive bitmap size mismatch");

  RepairedPlan out;
  out.layout = pristine;
  ExchangePlanLayout& L = out.layout;
  const int n = pristine.dim();

  // Fully-alive fast path: the contract promises an untouched copy, and the
  // recomputed transit/buffering estimates below would otherwise replace the
  // runtime-recorded ones with an analytic model of them.
  if (std::all_of(alive.begin(), alive.end(),
                  [](std::uint8_t a) { return a != 0; })) {
    out.seed_routes.resize(pristine.signature.sequence.size());
    for (std::size_t i = 0; i < pristine.signature.sequence.size(); ++i) {
      SeedRoute& sr = out.seed_routes[i];
      if (pristine.seed_first_dim[i] < 0) {
        sr.kind = SeedRoute::Kind::kSelf;
      } else {
        sr.kind = SeedRoute::Kind::kPlanned;
        sr.first_dim = pristine.seed_first_dim[i];
      }
    }
    return out;
  }

  // ---- pass 0: seed routing overrides -------------------------------------
  out.seed_routes.resize(pristine.signature.sequence.size());
  for (std::size_t i = 0; i < pristine.signature.sequence.size(); ++i) {
    const Rank dest = pristine.signature.sequence[i].first;
    SeedRoute& sr = out.seed_routes[i];
    if (dest == me) {
      sr.kind = SeedRoute::Kind::kSelf;
      continue;
    }
    if (!is_alive(alive, dest)) {
      sr.kind = SeedRoute::Kind::kDeadDest;
      ++out.stats.subs_dropped_dead_dest;
      continue;
    }
    const std::int8_t d = pristine.seed_first_dim[i];
    const Rank hop = vpt.with_coord(me, d, vpt.coord(dest, d));
    if (is_alive(alive, hop)) {
      sr.kind = SeedRoute::Kind::kPlanned;
      sr.first_dim = d;
    } else {
      // The canonical first hop died. A detour would break the ascending
      // dimension order the stage machinery depends on, so this send leaves
      // the static plan entirely and is injected into the relay lane.
      sr.kind = SeedRoute::Kind::kRelay;
      ++out.stats.seed_reroutes;
    }
  }

  // ---- pass 1: inbound frames ---------------------------------------------
  // frame_map[stage][old_idx] -> new idx (-1 removed); offset_map remaps a
  // kept payload's byte offset within its frame. Both drive slot/delivery
  // patching in the later passes.
  std::vector<std::vector<int>> frame_map(static_cast<std::size_t>(n));
  std::vector<std::vector<std::unordered_map<std::uint32_t, std::uint32_t>>> offset_map(
      static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    const auto& frames = pristine.in_frames[static_cast<std::size_t>(s)];
    auto& fmap = frame_map[static_cast<std::size_t>(s)];
    auto& omap = offset_map[static_cast<std::size_t>(s)];
    fmap.assign(frames.size(), -1);
    omap.resize(frames.size());
    std::vector<PlanInFrame> kept;
    for (std::size_t fi = 0; fi < frames.size(); ++fi) {
      const PlanInFrame& f = frames[fi];
      if (!is_alive(alive, f.source)) {
        ++out.stats.in_frames_removed;
        continue;
      }
      PlanInFrame nf;
      nf.source = f.source;
      std::uint64_t pos = 4;  // u32 count
      for (const Submessage& sub : f.subs) {
        const bool keep = is_alive(alive, sub.source) && is_alive(alive, sub.dest) &&
                          arrives_at(vpt, alive, sub.source, sub.dest, me, nullptr);
        if (!keep) {
          ++out.stats.subs_excised;
          continue;
        }
        Submessage ns = sub;
        pos += 12;  // i32 source, i32 dest, u32 len
        omap[fi].emplace(static_cast<std::uint32_t>(sub.offset),
                         static_cast<std::uint32_t>(pos));
        ns.offset = pos;
        pos += ns.size_bytes;
        nf.subs.push_back(ns);
      }
      if (nf.subs.empty()) {
        // The sending peer's repaired plan drops this frame for the same
        // reasons (the classification is a pure function of global state),
        // so expecting it would hang the replay.
        ++out.stats.in_frames_removed;
        continue;
      }
      nf.wire_size = pos;
      fmap[fi] = static_cast<int>(kept.size());
      kept.push_back(std::move(nf));
    }
    L.in_frames[static_cast<std::size_t>(s)] = std::move(kept);
  }

  // Remaps a pristine kRecv PayloadSrc to repaired coordinates. Returns
  // false when the referenced bytes no longer arrive statically.
  auto remap_src = [&](PayloadSrc& src) {
    if (src.kind != PayloadSrc::Kind::kRecv) return true;
    const auto st = static_cast<std::size_t>(src.stage);
    if (st >= frame_map.size() || src.frame >= frame_map[st].size()) return false;
    const int nfi = frame_map[st][src.frame];
    if (nfi < 0) return false;
    const auto& om = offset_map[st][src.frame];
    const auto it = om.find(src.offset);
    if (it == om.end()) return false;
    src.frame = static_cast<std::uint16_t>(nfi);
    src.offset = it->second;
    return true;
  };

  // ---- pass 2: outbound frames --------------------------------------------
  for (int s = 0; s < n; ++s) {
    auto& stage_frames = L.out_frames[static_cast<std::size_t>(s)];
    std::vector<PlanOutFrame> kept;
    for (const PlanOutFrame& f : pristine.out_frames[static_cast<std::size_t>(s)]) {
      const bool to_dead = !is_alive(alive, f.to);
      PlanOutFrame nf;
      nf.to = f.to;
      put<std::uint32_t>(nf.image, 0);  // count backpatched below
      std::size_t slot_idx = 0;         // pristine slots cover size>0 subs in order
      for (const Submessage& sub : f.subs) {
        const PayloadSrc* psrc = nullptr;
        if (sub.size_bytes > 0) psrc = &f.slots[slot_idx++];
        if (!is_alive(alive, sub.source)) {
          ++out.stats.subs_excised;
          continue;
        }
        if (!is_alive(alive, sub.dest)) {
          // Origin-side dead-destination drops were already counted by the
          // seed pass; transit copies count as plain excisions.
          if (sub.source != me) ++out.stats.subs_excised;
          continue;
        }
        if (!arrives_at(vpt, alive, sub.source, sub.dest, me, nullptr)) {
          ++out.stats.subs_excised;
          continue;
        }
        if (to_dead) {
          // This rank is the pivot: the last alive holder before the dead
          // hop. Origin seeds are re-homed by their SeedRoute override;
          // transit submessages become explicit pivot work.
          if (sub.source != me) {
            PivotSend ps;
            ps.sub = sub;
            if (psrc != nullptr) {
              ps.src = *psrc;
              require(remap_src(ps.src), "repair_plan: pivot payload source vanished");
            }
            ps.stage = s;
            ps.dead_hop = f.to;
            out.pivot_sends.push_back(std::move(ps));
            ++out.stats.pivot_reroutes;
          }
          continue;
        }
        // Keep: append header + (zeroed) payload gap to the rebuilt image.
        put<std::int32_t>(nf.image, sub.source);
        put<std::int32_t>(nf.image, sub.dest);
        put<std::uint32_t>(nf.image, sub.size_bytes);
        if (sub.size_bytes > 0) {
          PayloadSrc ns = *psrc;
          const PayloadSrc before = ns;
          require(remap_src(ns), "repair_plan: kept payload source vanished");
          if (!(ns == before)) ++out.stats.slots_patched;
          nf.slot_offsets.push_back(static_cast<std::uint32_t>(nf.image.size()));
          nf.slots.push_back(ns);
          nf.image.resize(nf.image.size() + sub.size_bytes);  // zeroed gap
          nf.payload_bytes += sub.size_bytes;
        }
        nf.subs.push_back(sub);
      }
      if (to_dead || nf.subs.empty()) {
        ++out.stats.out_frames_removed;
        continue;
      }
      const auto count = static_cast<std::uint32_t>(nf.subs.size());
      std::memcpy(nf.image.data(), &count, sizeof(count));
      kept.push_back(std::move(nf));
    }
    stage_frames = std::move(kept);
  }

  // ---- pass 3: deliveries --------------------------------------------------
  {
    std::vector<PlanDelivery> kept;
    for (PlanDelivery d : pristine.deliveries) {
      if (!is_alive(alive, d.source) || !remap_src(d.src)) {
        ++out.stats.deliveries_removed;
        continue;
      }
      kept.push_back(d);
    }
    L.deliveries = std::move(kept);
  }

  // ---- pass 4: recompute the frozen stats ---------------------------------
  L.messages_sent = 0;
  L.messages_received = 0;
  L.payload_bytes_sent = 0;
  L.wire_bytes_sent = 0;
  std::vector<std::uint64_t> buf_bytes(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> buf_subs(static_cast<std::size_t>(n), 0);
  std::uint64_t initial_seed_buffered = 0;
  for (int s = 0; s < n; ++s) {
    L.messages_received +=
        static_cast<std::int64_t>(L.in_frames[static_cast<std::size_t>(s)].size());
    for (const PlanOutFrame& f : L.out_frames[static_cast<std::size_t>(s)]) {
      ++L.messages_sent;
      L.payload_bytes_sent += f.payload_bytes;
      L.wire_bytes_sent += f.image.size();
      for (const Submessage& sub : f.subs) {
        Rank pred = -1;
        arrives_at(vpt, alive, sub.source, sub.dest, me, &pred);
        const int arrival = sub.source == me ? -1 : vpt.first_diff_dim(pred, me);
        if (arrival < 0) initial_seed_buffered += sub.size_bytes;
        for (int d = std::max(arrival, 0); d < s; ++d) {
          buf_bytes[static_cast<std::size_t>(d)] += sub.size_bytes;
          buf_subs[static_cast<std::size_t>(d)] += 1;
        }
      }
    }
  }
  L.stage_buffered_bytes.assign(buf_bytes.begin(), buf_bytes.end());
  L.stage_buffered_subs.assign(buf_subs.begin(), buf_subs.end());
  std::uint64_t peak = initial_seed_buffered;
  for (const std::uint64_t b : buf_bytes) peak = std::max(peak, b);
  L.transit_peak_bytes = peak;
  L.seed_payload_bytes = 0;
  for (std::size_t i = 0; i < pristine.signature.sequence.size(); ++i)
    if (out.seed_routes[i].kind != SeedRoute::Kind::kDeadDest)
      L.seed_payload_bytes += pristine.signature.sequence[i].second;
  L.delivered_payload_bytes = 0;
  for (const PlanDelivery& d : L.deliveries) L.delivered_payload_bytes += d.src.bytes;

  return out;
}

}  // namespace stfw::core
