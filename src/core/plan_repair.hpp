#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exchange_plan.hpp"
#include "vpt.hpp"

/// \file plan_repair.hpp
/// Incremental repair of a frozen ExchangePlanLayout after rank failure.
///
/// Dimension-order routing is fully deterministic: the route of a submessage
/// (src, dst) is a pure function of the two ranks and the VPT. That means a
/// membership change needs **no communication** to repair a plan — every
/// survivor can locally diff the dead ranks out of its own frozen layout:
///
///   * frames to/from a dead neighbor are removed outright;
///   * a submessage whose source or final destination died is excised
///     everywhere (its traffic no longer exists / can no longer be wanted);
///   * a submessage whose route crosses a dead *intermediate* rank is kept
///     in the frames up to the last alive rank before the dead hop (the
///     **pivot**), excised downstream, and reported to the pivot as a
///     `PivotSend` so the resilient exchange can re-home it over the relay
///     lane (kRelay frames, greedy-alive next hops);
///   * affected frame images, payload slot tables, in-frame offsets and the
///     delivery list are patched in place — nothing is re-recorded.
///
/// Re-homed traffic cannot go back through the stage machinery: store-and-
/// forward fixes dimensions in ascending order, and a detour around a dead
/// rank generally breaks that order. Relay frames are therefore event-driven
/// (forwarded or delivered on receipt, any stage), which is why the repaired
/// *static* layout carries only fully-surviving routes and hands the rest to
/// the dynamic lane.

namespace stfw::core {

/// Canonical dimension-order hop sequence from `src` to `dst`, excluding
/// `src`, including `dst`. Empty when src == dst.
std::vector<Rank> route_hops(const Vpt& vpt, Rank src, Rank dst);

/// Greedy-alive next hop from `cur` toward `dst`: the aligned neighbor in
/// the smallest differing dimension that is still alive, falling back to
/// `dst` itself (direct) when no intermediate survives. Every hop fixes one
/// coordinate, so relay chains strictly reduce Hamming distance and cannot
/// cycle, whatever (possibly stale) alive views the hops hold. Requires
/// `dst` alive and cur != dst.
Rank greedy_next_hop(const Vpt& vpt, std::span<const std::uint8_t> alive, Rank cur, Rank dst);

/// How one seed send should be injected after repair.
struct SeedRoute {
  enum class Kind : std::uint8_t {
    kSelf,      // self-send, delivered locally as before
    kPlanned,   // canonical first hop alive: file under first_dim as usual
    kRelay,     // canonical first hop dead: inject into the relay lane
    kDeadDest,  // destination died: drop and account
  };
  Kind kind = Kind::kPlanned;
  std::int8_t first_dim = -1;  // kPlanned only
};

/// A submessage this rank must re-home: its next canonical hop died while
/// this rank is (or will be) holding it.
struct PivotSend {
  Submessage sub;      // full header; offset is meaningless here
  PayloadSrc src;      // where the bytes live at replay time
  int stage = 0;       // stage of the out-frame it was excised from
  Rank dead_hop = -1;  // the canonical next hop that died
};

struct PlanRepairStats {
  int out_frames_removed = 0;
  int in_frames_removed = 0;
  int subs_excised = 0;            // upstream-dead / dead-source / transit dead-dest
  int pivot_reroutes = 0;          // subs handed to the relay lane at this rank
  int seed_reroutes = 0;           // seed sends diverted off their canonical dim
  int subs_dropped_dead_dest = 0;  // this rank's own sends to dead destinations
  int slots_patched = 0;
  int deliveries_removed = 0;
};

/// A repaired plan: the patched static layout plus the dynamic-lane work
/// (seed routing overrides and pivot re-homes) the static frames cannot
/// carry. Pure data; computed locally with no communication.
struct RepairedPlan {
  ExchangePlanLayout layout;
  std::vector<SeedRoute> seed_routes;  // parallel to layout.signature.sequence
  std::vector<PivotSend> pivot_sends;
  PlanRepairStats stats;
};

/// Diff the dead ranks out of `pristine`. `alive` is indexed by rank (1 =
/// alive); the layout's own rank must be alive. A fully-alive bitmap returns
/// an untouched copy with empty pivot/override lists.
RepairedPlan repair_plan(const ExchangePlanLayout& pristine, const Vpt& vpt,
                         std::span<const std::uint8_t> alive);

}  // namespace stfw::core
