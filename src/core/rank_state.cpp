#include "rank_state.hpp"

#include <algorithm>

#include "error.hpp"

namespace stfw::core {

StfwRankState::StfwRankState(const Vpt& vpt, Rank me) : vpt_(&vpt), me_(me) {
  require(me >= 0 && me < vpt.size(), "StfwRankState: rank out of range");
  fwbuf_.resize(static_cast<std::size_t>(vpt.dim()));
}

void StfwRankState::add_send(Rank dest, std::uint64_t payload_offset,
                             std::uint32_t payload_bytes, std::uint32_t id) {
  require(dest >= 0 && dest < vpt_->size(), "add_send: destination out of range");
  require(stages_consumed_ == 0, "add_send: exchange already started");
  const Submessage s{me_, dest, payload_offset, payload_bytes, id};
  if (dest == me_) {
    delivered_.push_back(s);
    delivered_bytes_ += payload_bytes;
    return;
  }
  stash(-1, s);
}

void StfwRankState::add_send_routed(Rank dest, int first_dim, std::uint64_t payload_offset,
                                    std::uint32_t payload_bytes, std::uint32_t id) {
  require(dest >= 0 && dest < vpt_->size(), "add_send_routed: destination out of range");
  require(stages_consumed_ == 0, "add_send_routed: exchange already started");
  const Submessage s{me_, dest, payload_offset, payload_bytes, id};
  if (first_dim < 0) {
    STFW_ASSERT(dest == me_, "add_send_routed: negative dimension but not a self-send");
    delivered_.push_back(s);
    delivered_bytes_ += payload_bytes;
    return;
  }
  require(first_dim < vpt_->dim(), "add_send_routed: dimension out of range");
  stash_into(first_dim, s);
}

void StfwRankState::stash(int stage_from, const Submessage& s) {
  const int d = vpt_->first_diff_dim_after(me_, s.dest, stage_from);
  if (d < 0) {
    STFW_ASSERT(s.dest == me_, "stash: no differing dimension but not addressed to me");
    delivered_.push_back(s);
    delivered_bytes_ += s.size_bytes;
    return;
  }
  STFW_ASSERT(d >= stages_consumed_, "stash: routing targets an already-consumed stage buffer");
  stash_into(d, s);
}

void StfwRankState::stash_into(int d, const Submessage& s) {
  const int x = vpt_->coord(s.dest, d);
  fwbuf_[static_cast<std::size_t>(d)][x].push_back(s);
  buffered_bytes_ += s.size_bytes;
  ++buffered_count_;
  peak_buffered_bytes_ = std::max(peak_buffered_bytes_, buffered_bytes_);
}

void StfwRankState::make_stage_outbox(int stage, std::vector<StageMessage>& out) {
  require(stage == stages_consumed_, "make_stage_outbox: stages must run in order");
  require(stage < vpt_->dim(), "make_stage_outbox: stage out of range");
  auto& slots = fwbuf_[static_cast<std::size_t>(stage)];
  const int mine = vpt_->coord(me_, stage);
  // Deterministic neighbor order regardless of hash-map iteration order.
  std::vector<int> coords;
  coords.reserve(slots.size());
  for (const auto& [x, slot] : slots)
    if (!slot.empty()) coords.push_back(x);
  std::sort(coords.begin(), coords.end());
  for (int x : coords) {
    STFW_ASSERT(x != mine, "make_stage_outbox: own-coordinate slot must stay empty");
    StageMessage m;
    m.from = me_;
    m.to = vpt_->with_coord(me_, stage, x);
    m.subs = std::move(slots[x]);
    buffered_bytes_ -= m.payload_bytes();
    buffered_count_ -= m.subs.size();
    out.push_back(std::move(m));
  }
  slots.clear();
  ++stages_consumed_;
}

void StfwRankState::accept(int stage, std::span<const Submessage> subs) {
  require(stage == stages_consumed_ - 1,
          "accept: received messages belong to the stage just consumed");
  for (const Submessage& s : subs) {
    STFW_ASSERT(vpt_->coord(s.dest, stage) == vpt_->coord(me_, stage),
                "accept: dimension-order routing violated");
    stash(stage, s);
  }
}

void StfwRankState::reset() {
  for (auto& dim : fwbuf_) dim.clear();
  delivered_.clear();
  stages_consumed_ = 0;
  buffered_bytes_ = 0;
  buffered_count_ = 0;
  peak_buffered_bytes_ = 0;
  delivered_bytes_ = 0;
}

}  // namespace stfw::core
