#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "message.hpp"
#include "vpt.hpp"

/// \file rank_state.hpp
/// Per-process state of the store-and-forward scheme — Algorithm 1.
///
/// StfwRankState owns the forward buffers fwbuf[d][x] of one process and
/// implements the three phases of Algorithm 1:
///
///   1. seeding from the process's SendSet (lines 4-6),
///   2. per-stage outbox formation (lines 9-12) and scatter of received
///      submessages into later-stage buffers (lines 14-17),
///   3. gathering the submessages destined for this process (lines 18-21).
///
/// Both execution substrates (the threaded runtime and the BSP simulator)
/// drive this one class, so routing behaviour cannot diverge between them.

namespace stfw::core {

class StfwRankState {
public:
  StfwRankState(const Vpt& vpt, Rank me);

  Rank rank() const noexcept { return me_; }
  const Vpt& vpt() const noexcept { return *vpt_; }

  /// Algorithm 1 lines 4-6: queue an original message for `dest` in the
  /// buffer of the first dimension where our coordinates differ. A message
  /// to ourselves is delivered immediately (it never hits the network).
  /// `id` is the per-source submessage id (see Submessage::id); the plain
  /// exchange leaves it 0.
  void add_send(Rank dest, std::uint64_t payload_offset, std::uint32_t payload_bytes,
                std::uint32_t id = 0);

  /// Seeding fast path for replayed patterns: like add_send, but the caller
  /// supplies the routing dimension (`first_dim`, -1 for a self-send) frozen
  /// in an ExchangePlanLayout, skipping the per-send first_diff_dim scan.
  /// The value is trusted — a wrong dimension is caught by accept()'s
  /// routing assertion at the next hop, not here.
  void add_send_routed(Rank dest, int first_dim, std::uint64_t payload_offset,
                       std::uint32_t payload_bytes, std::uint32_t id = 0);

  /// Algorithm 1 lines 9-12: move the non-empty dimension-d buffers out as
  /// coalesced messages, one per neighbor coordinate. Buffers for stage d
  /// are consumed by this call; routing guarantees nothing is scattered
  /// into them afterwards (asserted). Appends to `out`.
  void make_stage_outbox(int stage, std::vector<StageMessage>& out);

  /// Algorithm 1 lines 14-17: scatter submessages received in `stage` into
  /// the buffers of the first dimension > stage where we differ from the
  /// destination; submessages addressed to us are delivered.
  void accept(int stage, std::span<const Submessage> subs);

  /// Algorithm 1 lines 18-21: the list L of submessages for this process.
  /// Valid after all n stages have run; sorted by (source, arrival order).
  const std::vector<Submessage>& delivered() const noexcept { return delivered_; }
  std::vector<Submessage> take_delivered() noexcept { return std::move(delivered_); }

  /// Bytes of payload currently parked in forward buffers.
  std::uint64_t buffered_payload_bytes() const noexcept { return buffered_bytes_; }

  /// Submessages currently parked in forward buffers — the paper's per-stage
  /// residency count (≤ K-1 for single-message-per-pair patterns).
  std::uint64_t buffered_submessage_count() const noexcept { return buffered_count_; }

  /// High-water mark of buffered_payload_bytes() over the exchange, the
  /// store-and-forward part of the paper's buffer-size metric.
  std::uint64_t peak_buffered_payload_bytes() const noexcept { return peak_buffered_bytes_; }

  /// Total payload bytes delivered to this process so far.
  std::uint64_t delivered_payload_bytes() const noexcept { return delivered_bytes_; }

  /// Reset all buffers for a fresh exchange on the same VPT.
  void reset();

private:
  void stash(int stage_from, const Submessage& s);
  void stash_into(int d, const Submessage& s);

  const Vpt* vpt_;
  Rank me_;
  int stages_consumed_ = 0;  // buffers for stages < this are gone
  // fwbuf_[d][x]: submessages to forward in stage d to the neighbor whose
  // digit d is x; slot x == our own digit d is unused (self-routing is
  // resolved at delivery). Slots are stored sparsely — a dimension of size
  // k_d would otherwise cost k_d empty vectors per rank, which is O(K^2)
  // across ranks for the direct topology at large K.
  std::vector<std::unordered_map<int, std::vector<Submessage>>> fwbuf_;
  std::vector<Submessage> delivered_;
  std::uint64_t buffered_bytes_ = 0;
  std::uint64_t buffered_count_ = 0;
  std::uint64_t peak_buffered_bytes_ = 0;
  std::uint64_t delivered_bytes_ = 0;
};

}  // namespace stfw::core
