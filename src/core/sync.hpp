#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

/// \file sync.hpp
/// Annotated synchronization primitives for the thread-per-rank runtime.
///
/// Thin wrappers over std::mutex / std::unique_lock / std::condition_variable
/// carrying the Clang TSA attributes from core/thread_annotations.hpp. Under
/// gcc they compile to exactly the std types; under the `tsa` preset
/// (-Wthread-safety -Werror) they let the compiler prove that every access to
/// a STFW_GUARDED_BY member happens under its mutex.
///
/// Usage mirrors the std types:
///
///   core::Mutex mu;
///   int value STFW_GUARDED_BY(mu);
///   {
///     core::MutexLock lock(mu);   // scoped acquire (std::unique_lock)
///     ++value;                    // proven: mu is held
///     cv.wait(lock);              // CondVar interoperates with MutexLock
///   }

namespace stfw::core {

class CondVar;

/// std::mutex with the TSA `capability` attribute.
class STFW_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STFW_ACQUIRE() { mu_.lock(); }
  void unlock() STFW_RELEASE() { mu_.unlock(); }
  bool try_lock() STFW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock (RAII) over core::Mutex — std::unique_lock underneath so
/// CondVar::wait can temporarily release it. Supports early unlock();
/// the destructor releases the mutex only if it is still held.
class STFW_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) STFW_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() STFW_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before the end of the scope (e.g. to throw without the lock).
  void unlock() STFW_RELEASE() { lock_.unlock(); }

private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable adapted to MutexLock. Waiting atomically releases
/// and reacquires the lock; TSA sees the capability as held across the call,
/// which matches the caller-visible contract.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  std::cv_status wait_until(MutexLock& lock,
                            std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

private:
  std::condition_variable cv_;
};

}  // namespace stfw::core
