#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "core/thread_annotations.hpp"
#include "core/verify_hooks.hpp"

/// \file sync.hpp
/// Annotated synchronization primitives for the thread-per-rank runtime.
///
/// Thin wrappers over std::mutex / std::unique_lock / std::condition_variable
/// carrying the Clang TSA attributes from core/thread_annotations.hpp. Under
/// gcc they compile to exactly the std types; under the `tsa` preset
/// (-Wthread-safety -Werror) they let the compiler prove that every access to
/// a STFW_GUARDED_BY member happens under its mutex.
///
/// Under -DSTFW_VERIFY=ON every operation additionally reports to the
/// stfw-verify hooks (core/verify_hooks.hpp): the happens-before race
/// detector learns lock/unlock and wait/notify edges from here, and the
/// deterministic schedule explorer uses the same calls as its yield points.
/// This file is the only place raw std sync types may appear (stfw-lint rule
/// l6-raw-sync) — new concurrency goes through these wrappers so it is
/// annotated and verifiable by construction.
///
/// Usage mirrors the std types:
///
///   core::Mutex mu;
///   int value STFW_GUARDED_BY(mu);
///   {
///     core::MutexLock lock(mu);   // scoped acquire (std::unique_lock)
///     ++value;                    // proven: mu is held
///     cv.wait(lock);              // CondVar interoperates with MutexLock
///   }

namespace stfw::core {

class CondVar;

/// std::mutex with the TSA `capability` attribute.
class STFW_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STFW_ACQUIRE() {
#if STFW_VERIFY_ENABLED
    if (verify::Hooks* h = verify::hooks()) {
      h->mutex_acquire(this);  // may park until the scheduler grants it
      mu_.lock();
      h->mutex_acquired(this);
      return;
    }
#endif
    mu_.lock();
  }

  void unlock() STFW_RELEASE() {
    STFW_VERIFY_HOOK(mutex_release(this));
    mu_.unlock();
  }

  bool try_lock() STFW_TRY_ACQUIRE(true) {
#if STFW_VERIFY_ENABLED
    if (verify::Hooks* h = verify::hooks()) {
      // No pre-acquire event: try_lock never blocks, so it cannot be a
      // scheduler park point; a success still registers ownership.
      if (!mu_.try_lock()) return false;
      h->mutex_acquired(this);
      return true;
    }
#endif
    return mu_.try_lock();
  }

private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock (RAII) over core::Mutex — std::unique_lock underneath so
/// CondVar::wait can temporarily release it. Supports early unlock();
/// the destructor releases the mutex only if it is still held.
class STFW_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) STFW_ACQUIRE(mu) : lock_(mu.mu_, std::defer_lock) {
#if STFW_VERIFY_ENABLED
    mu_ = &mu;
    if (verify::Hooks* h = verify::hooks()) {
      h->mutex_acquire(mu_);
      lock_.lock();
      h->mutex_acquired(mu_);
      return;
    }
#endif
    lock_.lock();
  }

  ~MutexLock() STFW_RELEASE() {
#if STFW_VERIFY_ENABLED
    if (lock_.owns_lock()) STFW_VERIFY_HOOK(mutex_release(mu_));
#endif
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before the end of the scope (e.g. to throw without the lock).
  void unlock() STFW_RELEASE() {
#if STFW_VERIFY_ENABLED
    STFW_VERIFY_HOOK(mutex_release(mu_));
#endif
    lock_.unlock();
  }

private:
  friend class CondVar;
#if STFW_VERIFY_ENABLED
  Mutex* mu_ = nullptr;
#endif
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable adapted to MutexLock. Waiting atomically releases
/// and reacquires the lock; TSA sees the capability as held across the call,
/// which matches the caller-visible contract.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) {
#if STFW_VERIFY_ENABLED
    if (verify::Hooks* h = verify::hooks()) {
      bool timed_out = false;
      if (h->cv_wait(this, lock.mu_, lock.lock_, nullptr, timed_out)) return;
      cv_.wait(lock.lock_);
      h->cv_woke(this, lock.mu_);
      return;
    }
#endif
    cv_.wait(lock.lock_);
  }

  std::cv_status wait_until(MutexLock& lock,
                            std::chrono::steady_clock::time_point deadline) {
#if STFW_VERIFY_ENABLED
    if (verify::Hooks* h = verify::hooks()) {
      bool timed_out = false;
      if (h->cv_wait(this, lock.mu_, lock.lock_, &deadline, timed_out))
        return timed_out ? std::cv_status::timeout : std::cv_status::no_timeout;
      const std::cv_status st = cv_.wait_until(lock.lock_, deadline);
      h->cv_woke(this, lock.mu_);
      return st;
    }
#endif
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept {
    STFW_VERIFY_HOOK(cv_notify(this, false));
    cv_.notify_one();
  }
  void notify_all() noexcept {
    STFW_VERIFY_HOOK(cv_notify(this, true));
    cv_.notify_all();
  }

private:
  std::condition_variable cv_;
};

/// std::thread confined to this header (stfw-lint rule l6-raw-sync): threads
/// created elsewhere must go through this wrapper so every thread in the
/// process is eligible for verify instrumentation (Hooks::thread_begin is the
/// spawner's responsibility — see Cluster::run and verify::run_threads).
/// Same contract as std::thread: join before destruction or std::terminate.
class Thread {
public:
  Thread() noexcept = default;
  template <typename Fn>
  explicit Thread(Fn&& fn) : t_(std::forward<Fn>(fn)) {}

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&&) = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  [[nodiscard]] bool joinable() const noexcept { return t_.joinable(); }
  void join() { t_.join(); }

private:
  std::thread t_;
};

}  // namespace stfw::core
