#pragma once

/// \file thread_annotations.hpp
/// Clang thread-safety-analysis (TSA) attribute macros.
///
/// The STFW runtime is a thread-per-rank system whose correctness rests on a
/// handful of locking invariants (which mutex guards which mailbox, the
/// mailbox-before-block_mu_ acquisition order, the watchdog's publish
/// protocol). These macros let the code *state* those invariants so that
/// Clang's -Wthread-safety proves them at compile time; see
/// docs/validation.md ("Static-analysis layers") and the `tsa` CMake preset.
///
/// Under non-Clang compilers every macro expands to nothing, so the annotated
/// wrappers in core/sync.hpp cost exactly a std::mutex on gcc builds.
///
/// Naming follows the Clang documentation's mutex.h example; only the subset
/// the repo actually uses is defined.

#if defined(__clang__) && (!defined(SWIG))
#define STFW_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define STFW_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define STFW_CAPABILITY(x) STFW_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define STFW_SCOPED_CAPABILITY STFW_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define STFW_GUARDED_BY(x) STFW_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define STFW_PT_GUARDED_BY(x) STFW_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define STFW_REQUIRES(...) \
  STFW_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define STFW_ACQUIRE(...) \
  STFW_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define STFW_RELEASE(...) \
  STFW_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function may acquire the capability; the boolean says which return value
/// means "acquired".
#define STFW_TRY_ACQUIRE(...) \
  STFW_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the listed capabilities held (deadlock
/// and double-acquire prevention).
#define STFW_EXCLUDES(...) STFW_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability guarding this object.
#define STFW_RETURN_CAPABILITY(x) STFW_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must carry
/// a comment justifying why the invariant holds anyway (suppression policy in
/// docs/validation.md).
#define STFW_NO_THREAD_SAFETY_ANALYSIS \
  STFW_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
