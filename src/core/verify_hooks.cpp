#include "core/verify_hooks.hpp"

// Compiled only under -DSTFW_VERIFY=ON (see src/core/CMakeLists.txt); the
// header's disabled branch needs no storage at all.

namespace stfw::verify {

namespace detail {
std::atomic<Hooks*> g_hooks{nullptr};
}

void install_hooks(Hooks* h) noexcept {
  detail::g_hooks.store(h, std::memory_order_release);
}

}  // namespace stfw::verify
