#pragma once

#include <chrono>

/// \file verify_hooks.hpp
/// Event seam for stfw-verify, the dynamic concurrency checker
/// (src/verify/, docs/validation.md "Layer 5 — dynamic verification").
///
/// The verification engine lives above the runtime, but the events it needs
/// originate below it: lock operations inside core::Mutex / core::CondVar,
/// mailbox send/recv edges inside runtime::Cluster, watchdog ticks and
/// injector stalls. This header is the one seam both sides share: the
/// instrumented code calls the hook macros, src/verify/ implements the Hooks
/// interface and installs it for the duration of a checked run.
///
/// Everything here is gated on the STFW_VERIFY CMake option (macro
/// STFW_VERIFY_ENABLED, a PUBLIC define on stfw_core). Without it the macros
/// expand to nothing and verify_now() is exactly steady_clock::now(), so the
/// production build pays zero cost — no branch, no atomic load.
///
/// With STFW_VERIFY_ENABLED but no engine installed (hooks() == nullptr) the
/// cost is one relaxed-ish atomic load per event, and behaviour is unchanged.
///
/// Hook semantics the instrumentation relies on:
///  * mutex_acquire may block (under the cooperative scheduler it parks the
///    thread until the engine grants ownership); mutex_acquired / release
///    only record happens-before edges and never block.
///  * cv_wait returning true means the engine performed the whole wait
///    (released `real`, parked, reacquired); the caller must not touch the
///    std::condition_variable. Returning false means "do the real wait, then
///    report cv_woke".
///  * mailbox_send is a scheduler yield point and returns the message id the
///    caller stamps into Message::verify_id; mailbox_recv joins that id's
///    clock and never blocks (safe to call holding the mailbox mutex).
///  * now()/tick_sleep()/stall() virtualize time: under the scheduler the
///    clock is logical and only advances at ticks/stalls/timeout jumps, which
///    is what makes watchdog and deadline behaviour schedule-deterministic.

#if STFW_VERIFY_ENABLED

#include <atomic>
#include <cstdint>
#include <mutex>

namespace stfw::verify {

class Hooks {
public:
  virtual ~Hooks() = default;

  /// A run() region is about to start `expected_threads` hooked threads
  /// (ranks + monitor). Called from the spawning (external) thread.
  virtual void region_begin(int expected_threads) = 0;
  /// All region threads have been joined. Called from the spawning thread.
  virtual void region_end() = 0;
  /// First statement on a hooked thread. `ticker` marks background threads
  /// (the watchdog monitor) the scheduler runs only when no rank can.
  virtual void thread_begin(int logical_id, bool ticker) = 0;
  virtual void thread_end() = 0;

  virtual void mutex_acquire(const void* mu) = 0;   // before the real lock
  virtual void mutex_acquired(const void* mu) = 0;  // after the real lock
  virtual void mutex_release(const void* mu) = 0;   // before the real unlock

  virtual bool cv_wait(const void* cv, const void* mu,
                       std::unique_lock<std::mutex>& real,
                       const std::chrono::steady_clock::time_point* deadline,
                       bool& timed_out) = 0;
  virtual void cv_woke(const void* cv, const void* mu) = 0;
  virtual void cv_notify(const void* cv, bool all) noexcept = 0;

  virtual std::uint64_t mailbox_send(int source, int dest, int tag) = 0;
  virtual void mailbox_recv(int me, int source, int tag, std::uint64_t id) = 0;

  /// Protocol annotation from the exchange loops (trace context only).
  virtual void stage(int rank, int stage) = 0;

  virtual std::chrono::steady_clock::time_point now() = 0;
  virtual void tick_sleep(std::chrono::milliseconds d) = 0;
  virtual void stall(std::chrono::milliseconds d) = 0;

  /// Tagged shared-memory access (STFW_VERIFY_READ / STFW_VERIFY_WRITE).
  /// `site` must be a string with static storage duration.
  virtual void access(const void* addr, bool write, const char* site) = 0;
};

namespace detail {
extern std::atomic<Hooks*> g_hooks;  // storage in verify_hooks.cpp
}

inline Hooks* hooks() noexcept {
  return detail::g_hooks.load(std::memory_order_acquire);
}

/// Install (or, with nullptr, remove) the process-wide event sink. Only call
/// while no hooked threads are running — between schedule runs.
void install_hooks(Hooks* h) noexcept;

inline std::chrono::steady_clock::time_point verify_now() {
  if (Hooks* h = hooks()) return h->now();
  return std::chrono::steady_clock::now();
}

}  // namespace stfw::verify

#define STFW_VERIFY_STRINGIFY_IMPL(x) #x
#define STFW_VERIFY_STRINGIFY(x) STFW_VERIFY_STRINGIFY_IMPL(x)
#define STFW_VERIFY_SITE(label) \
  (__FILE__ ":" STFW_VERIFY_STRINGIFY(__LINE__) " " label)

#define STFW_VERIFY_READ(addr, label)                                        \
  do {                                                                       \
    if (::stfw::verify::Hooks* stfw_vh_ = ::stfw::verify::hooks())           \
      stfw_vh_->access((addr), false, STFW_VERIFY_SITE(label));              \
  } while (0)
#define STFW_VERIFY_WRITE(addr, label)                                       \
  do {                                                                       \
    if (::stfw::verify::Hooks* stfw_vh_ = ::stfw::verify::hooks())           \
      stfw_vh_->access((addr), true, STFW_VERIFY_SITE(label));               \
  } while (0)
/// Fire an arbitrary hook: STFW_VERIFY_HOOK(stage(rank, s)).
#define STFW_VERIFY_HOOK(call)                                               \
  do {                                                                       \
    if (::stfw::verify::Hooks* stfw_vh_ = ::stfw::verify::hooks())           \
      stfw_vh_->call;                                                        \
  } while (0)

#else  // !STFW_VERIFY_ENABLED

namespace stfw::verify {

inline std::chrono::steady_clock::time_point verify_now() {
  return std::chrono::steady_clock::now();
}

}  // namespace stfw::verify

#define STFW_VERIFY_READ(addr, label) \
  do {                                \
  } while (0)
#define STFW_VERIFY_WRITE(addr, label) \
  do {                                 \
  } while (0)
#define STFW_VERIFY_HOOK(call) \
  do {                         \
  } while (0)

#endif  // STFW_VERIFY_ENABLED
