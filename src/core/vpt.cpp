#include "vpt.hpp"

#include <algorithm>
#include <numeric>

#include "error.hpp"

namespace stfw::core {

int floor_log2(Rank x) noexcept {
  int l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

bool is_pow2(Rank x) noexcept { return x >= 1 && (x & (x - 1)) == 0; }

Vpt::Vpt(std::vector<int> dim_sizes) : k_(std::move(dim_sizes)) {
  require(!k_.empty(), "Vpt: at least one dimension required");
  const bool single = k_.size() == 1;
  std::int64_t prod = 1;
  for (int kd : k_) {
    require(kd >= (single ? 1 : 2), "Vpt: dimension sizes must be >= 2 (>= 1 for T_1)");
    prod *= kd;
    require(prod <= (std::int64_t{1} << 30), "Vpt: too many processes");
  }
  size_ = static_cast<Rank>(prod);
  stride_.resize(k_.size());
  Rank s = 1;
  for (std::size_t d = 0; d < k_.size(); ++d) {
    stride_[d] = s;
    s *= k_[d];
  }
}

Vpt Vpt::balanced(Rank num_ranks, int dim) {
  require(is_pow2(num_ranks), "Vpt::balanced: K must be a power of two");
  const int lg = floor_log2(num_ranks);
  require(dim >= 1 && (dim <= lg || (lg == 0 && dim == 1)),
          "Vpt::balanced: need 1 <= n <= lg2 K");
  const int q = lg / dim;
  const int rem = lg % dim;
  std::vector<int> sizes(static_cast<std::size_t>(dim));
  for (int d = 0; d < dim; ++d)
    sizes[static_cast<std::size_t>(d)] = 1 << (d < rem ? q + 1 : q);
  return Vpt(std::move(sizes));
}

Vpt Vpt::balanced_any(Rank num_ranks, int dim) {
  require(num_ranks >= 2, "Vpt::balanced_any: K must be >= 2");
  require(dim >= 1, "Vpt::balanced_any: n must be >= 1");
  // Prime factorization, smallest factors first.
  std::vector<int> factors;
  Rank rest = num_ranks;
  for (Rank p = 2; p * p <= rest; ++p)
    while (rest % p == 0) {
      factors.push_back(static_cast<int>(p));
      rest /= p;
    }
  if (rest > 1) factors.push_back(static_cast<int>(rest));
  require(static_cast<int>(factors.size()) >= dim,
          "Vpt::balanced_any: K has fewer prime factors than requested dimensions");
  // Largest factors first, each onto the currently smallest dimension —
  // the classic greedy multiway-product balancing heuristic.
  std::sort(factors.rbegin(), factors.rend());
  std::vector<int> sizes(static_cast<std::size_t>(dim), 1);
  for (int f : factors)
    *std::min_element(sizes.begin(), sizes.end()) *= f;
  std::sort(sizes.begin(), sizes.end());
  return Vpt(std::move(sizes));
}

Vpt Vpt::direct(Rank num_ranks) {
  require(num_ranks >= 1, "Vpt::direct: K must be >= 1");
  return Vpt(std::vector<int>{static_cast<int>(num_ranks)});
}

Vpt Vpt::node_aware(Rank num_ranks, int ranks_per_node) {
  require(num_ranks >= 2, "Vpt::node_aware: K must be >= 2");
  require(ranks_per_node >= 2 && ranks_per_node < num_ranks &&
              num_ranks % ranks_per_node == 0,
          "Vpt::node_aware: ranks_per_node must divide K with 2 <= r < K");
  return Vpt({ranks_per_node, static_cast<int>(num_ranks / ranks_per_node)});
}

Vpt Vpt::hypercube(Rank num_ranks) {
  require(is_pow2(num_ranks) && num_ranks >= 2, "Vpt::hypercube: K must be a power of two >= 2");
  return Vpt(std::vector<int>(static_cast<std::size_t>(floor_log2(num_ranks)), 2));
}

int Vpt::dim_size(int d) const {
  require(d >= 0 && d < dim(), "Vpt::dim_size: dimension out of range");
  return k_[static_cast<std::size_t>(d)];
}

std::vector<int> Vpt::coords_of(Rank r) const {
  require(r >= 0 && r < size_, "Vpt::coords_of: rank out of range");
  std::vector<int> c(k_.size());
  for (int d = 0; d < dim(); ++d) c[static_cast<std::size_t>(d)] = coord(r, d);
  return c;
}

Rank Vpt::rank_of(std::span<const int> coords) const {
  require(coords.size() == k_.size(), "Vpt::rank_of: wrong coordinate count");
  Rank r = 0;
  for (std::size_t d = 0; d < k_.size(); ++d) {
    require(coords[d] >= 0 && coords[d] < k_[d], "Vpt::rank_of: coordinate out of range");
    r += coords[d] * stride_[d];
  }
  return r;
}

Rank Vpt::with_coord(Rank r, int d, int value) const {
  require(r >= 0 && r < size_, "Vpt::with_coord: rank out of range");
  require(d >= 0 && d < dim(), "Vpt::with_coord: dimension out of range");
  require(value >= 0 && value < k_[static_cast<std::size_t>(d)],
          "Vpt::with_coord: coordinate out of range");
  const Rank stride = stride_[static_cast<std::size_t>(d)];
  return r + (value - coord(r, d)) * stride;
}

std::vector<Rank> Vpt::neighbors(Rank r, int d) const {
  std::vector<Rank> out;
  neighbors(r, d, out);
  return out;
}

void Vpt::neighbors(Rank r, int d, std::vector<Rank>& out) const {
  require(r >= 0 && r < size_, "Vpt::neighbors: rank out of range");
  require(d >= 0 && d < dim(), "Vpt::neighbors: dimension out of range");
  out.clear();
  const int mine = coord(r, d);
  const int kd = k_[static_cast<std::size_t>(d)];
  out.reserve(static_cast<std::size_t>(kd - 1));
  const Rank stride = stride_[static_cast<std::size_t>(d)];
  const Rank base = r - mine * stride;
  for (int x = 0; x < kd; ++x)
    if (x != mine) out.push_back(base + x * stride);
}

int Vpt::first_diff_dim(Rank a, Rank b) const noexcept { return first_diff_dim_after(a, b, -1); }

int Vpt::first_diff_dim_after(Rank a, Rank b, int d) const noexcept {
  for (int c = d + 1; c < dim(); ++c)
    if (coord(a, c) != coord(b, c)) return c;
  return -1;
}

int Vpt::hamming(Rank a, Rank b) const noexcept {
  int h = 0;
  for (int d = 0; d < dim(); ++d) h += coord(a, d) != coord(b, d);
  return h;
}

int Vpt::max_message_count_bound() const noexcept {
  int s = 0;
  for (int kd : k_) s += kd - 1;
  return s;
}

bool Vpt::are_neighbors(Rank a, Rank b) const noexcept { return hamming(a, b) <= 1; }

std::string Vpt::to_string() const {
  std::string s = "T_" + std::to_string(dim()) + "(";
  for (std::size_t d = 0; d < k_.size(); ++d) {
    if (d > 0) s += ",";
    s += std::to_string(k_[d]);
  }
  return s + ")";
}

namespace {

void enumerate(Rank remaining, int min_factor, std::vector<int>& cur,
               std::vector<std::vector<int>>& out) {
  if (remaining == 1) {
    if (!cur.empty()) out.push_back(cur);
    return;
  }
  for (int f = min_factor; static_cast<Rank>(f) <= remaining; ++f) {
    if (remaining % f != 0) continue;
    cur.push_back(f);
    enumerate(remaining / f, f, cur, out);
    cur.pop_back();
  }
}

}  // namespace

std::vector<std::vector<int>> all_factorizations(Rank K) {
  require(K >= 2, "all_factorizations: K must be >= 2");
  std::vector<std::vector<int>> out;
  std::vector<int> cur;
  enumerate(K, 2, cur, out);
  return out;
}

}  // namespace stfw::core
