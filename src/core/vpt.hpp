#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// \file vpt.hpp
/// Virtual process topology (VPT) — the paper's T_n(k1, ..., kn).
///
/// A VPT organizes K = k1 * k2 * ... * kn processes into an n-dimensional
/// structure. Each process is identified by a mixed-radix coordinate vector;
/// two processes are *neighbors in dimension d* iff their coordinates differ
/// only in digit d. Unlike a k-ary n-cube, every dimension group is
/// completely connected: a process has (k_d - 1) neighbors in dimension d,
/// not 2.
///
/// Dimension 0 is the fastest-varying digit and is routed in the first
/// communication stage (the paper's dimension 1).

namespace stfw::core {

using Rank = std::int32_t;

class Vpt {
public:
  /// Construct from explicit dimension sizes {k1, ..., kn}; each k_d >= 2
  /// unless n == 1 (T_1(K) is the direct-communication baseline, any K >= 1).
  explicit Vpt(std::vector<int> dim_sizes);

  /// The paper's Section 5 scheme: for K a power of two and 1 <= n <= lg2 K,
  /// the first (lg2 K mod n) dimensions get size 2^(floor(lg2K/n)+1) and the
  /// rest 2^floor(lg2K/n). Optimal total maximum message count for that n.
  static Vpt balanced(Rank num_ranks, int dim);

  /// Generalization of balanced() to arbitrary K >= 2 (the paper assumes
  /// powers of two but notes the extension is easy): K's prime factors are
  /// distributed over n dimensions greedily, assigning each factor to the
  /// currently smallest dimension — near-minimal sum of (k_d - 1) among
  /// n-factorizations. Requires K to have at least n prime factors
  /// (counted with multiplicity).
  static Vpt balanced_any(Rank num_ranks, int dim);

  /// T_1(K): every process neighbors every other — the BL baseline.
  static Vpt direct(Rank num_ranks);

  /// Node-aware two-level topology T_2(ranks_per_node, K / ranks_per_node):
  /// stage 1 communicates only among the ranks of one node (cheap,
  /// intra-node) and stage 2 across nodes — the classic hierarchical
  /// aggregation pattern, expressed as a VPT. Requires ranks_per_node to
  /// divide K. With contiguous rank-to-node placement (as in
  /// netsim::Machine), all stage-1 messages stay on-node.
  static Vpt node_aware(Rank num_ranks, int ranks_per_node);

  /// T_{lg2 K}(2, ..., 2): the hypercube extreme, O(lg K) message bound.
  static Vpt hypercube(Rank num_ranks);

  int dim() const noexcept { return static_cast<int>(k_.size()); }
  Rank size() const noexcept { return size_; }
  int dim_size(int d) const;
  const std::vector<int>& dim_sizes() const noexcept { return k_; }

  /// Digit d of rank r (0-based coordinate value in [0, k_d)).
  int coord(Rank r, int d) const noexcept {
    return static_cast<int>((r / stride_[static_cast<std::size_t>(d)]) %
                            k_[static_cast<std::size_t>(d)]);
  }

  /// Full coordinate vector of r, digit 0 first.
  std::vector<int> coords_of(Rank r) const;

  /// Rank with the given coordinate vector.
  Rank rank_of(std::span<const int> coords) const;

  /// The unique dimension-d neighbor of r whose digit d equals `value`
  /// (returns r itself when value == coord(r, d)).
  Rank with_coord(Rank r, int d, int value) const;

  /// v(P_r, d): all k_d - 1 neighbors of r in dimension d, ascending rank.
  std::vector<Rank> neighbors(Rank r, int d) const;
  void neighbors(Rank r, int d, std::vector<Rank>& out) const;

  /// Smallest dimension in which a and b differ; -1 if a == b.
  /// This is the stage in which a message from a to b is first forwarded.
  int first_diff_dim(Rank a, Rank b) const noexcept;

  /// Smallest dimension > d in which a and b differ; -1 if none.
  int first_diff_dim_after(Rank a, Rank b, int d) const noexcept;

  /// Number of differing coordinates == number of hops a submessage from a
  /// to b takes under dimension-order store-and-forward routing.
  int hamming(Rank a, Rank b) const noexcept;

  /// Section 4 bound: the maximum number of messages any process sends over
  /// the whole exchange, sum_d (k_d - 1).
  int max_message_count_bound() const noexcept;

  /// True iff a and b differ in at most one coordinate (direct neighbors or
  /// equal) — i.e. a may send a stage message to b in some stage.
  bool are_neighbors(Rank a, Rank b) const noexcept;

  /// "T_n(k1,k2,...)" — for logs and error messages.
  std::string to_string() const;

  friend bool operator==(const Vpt& a, const Vpt& b) noexcept { return a.k_ == b.k_; }

private:
  std::vector<int> k_;        // dimension sizes, digit 0 first
  std::vector<Rank> stride_;  // mixed-radix strides; stride_[0] == 1
  Rank size_ = 0;
};

/// All multisets {k1,...,kn} with product K and every k >= 2, enumerated as
/// non-decreasing sequences. Used by tests and the dimension-size ablation.
std::vector<std::vector<int>> all_factorizations(Rank K);

/// floor(lg2 x) for x >= 1.
int floor_log2(Rank x) noexcept;

/// True iff x is a power of two (x >= 1).
bool is_pow2(Rank x) noexcept;

}  // namespace stfw::core
