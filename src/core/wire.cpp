#include "wire.hpp"

#include <cstring>

#include "error.hpp"

namespace stfw::core {

namespace {

// resize + memcpy rather than insert(end, p, p + sizeof(T)): gcc 12's
// -Wstringop-overflow misfires on the 4-byte insert path at -O2.
template <class T>
void put(std::vector<std::byte>& out, T v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &v, sizeof(T));
}

template <class T>
T get(std::span<const std::byte> in, std::size_t& pos) {
  require(pos + sizeof(T) <= in.size(), "deserialize: truncated buffer");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::vector<std::byte> serialize(const StageMessage& msg, const PayloadArena& arena) {
  std::vector<std::byte> out;
  out.reserve(wire_size_bytes(msg.subs.size(), msg.payload_bytes()));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(msg.subs.size()));
  for (const Submessage& s : msg.subs) {
    put<std::int32_t>(out, s.source);
    put<std::int32_t>(out, s.dest);
    put<std::uint32_t>(out, s.size_bytes);
    const auto payload = arena.view(s);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

std::vector<Submessage> deserialize(std::span<const std::byte> wire, PayloadArena& arena) {
  std::size_t pos = 0;
  const auto count = get<std::uint32_t>(wire, pos);
  std::vector<Submessage> subs;
  subs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Submessage s;
    s.source = get<std::int32_t>(wire, pos);
    s.dest = get<std::int32_t>(wire, pos);
    s.size_bytes = get<std::uint32_t>(wire, pos);
    require(pos + s.size_bytes <= wire.size(), "deserialize: truncated payload");
    s.offset = arena.add(std::span<const std::byte>(wire.data() + pos, s.size_bytes));
    pos += s.size_bytes;
    subs.push_back(s);
  }
  require(pos == wire.size(), "deserialize: trailing bytes");
  return subs;
}

}  // namespace stfw::core
