#include "wire.hpp"

#include <cstring>

#include "error.hpp"

namespace stfw::core {

namespace {

// resize + memcpy rather than insert(end, p, p + sizeof(T)): gcc 12's
// -Wstringop-overflow misfires on the 4-byte insert path at -O2.
template <class T>
void put(std::vector<std::byte>& out, T v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &v, sizeof(T));
}

template <class T>
T get(std::span<const std::byte> in, std::size_t& pos) {
  require(pos + sizeof(T) <= in.size(), "deserialize: truncated buffer");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::vector<std::byte> serialize(const StageMessage& msg, const PayloadArena& arena) {
  std::vector<std::byte> out;
  out.reserve(wire_size_bytes(msg.subs.size(), msg.payload_bytes()));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(msg.subs.size()));
  for (const Submessage& s : msg.subs) {
    put<std::int32_t>(out, s.source);
    put<std::int32_t>(out, s.dest);
    put<std::uint32_t>(out, s.size_bytes);
    const auto payload = arena.view(s);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

std::vector<Submessage> deserialize(std::span<const std::byte> wire, PayloadArena& arena) {
  std::size_t pos = 0;
  const auto count = get<std::uint32_t>(wire, pos);
  // Every submessage needs at least its 12-byte header; checking before the
  // reserve keeps a corrupt count from demanding gigabytes up front.
  require(static_cast<std::uint64_t>(count) * 12 <= wire.size() - pos,
          "deserialize: submessage count exceeds buffer");
  std::vector<Submessage> subs;
  subs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Submessage s;
    s.source = get<std::int32_t>(wire, pos);
    s.dest = get<std::int32_t>(wire, pos);
    s.size_bytes = get<std::uint32_t>(wire, pos);
    require(pos + s.size_bytes <= wire.size(), "deserialize: truncated payload");
    s.offset = arena.add(std::span<const std::byte>(wire.data() + pos, s.size_bytes));
    pos += s.size_bytes;
    subs.push_back(s);
  }
  require(pos == wire.size(), "deserialize: trailing bytes");
  return subs;
}

std::vector<std::byte> serialize_tracked(const StageMessage& msg, const PayloadArena& arena) {
  std::vector<std::byte> out;
  out.reserve(wire_size_bytes(msg.subs.size(), msg.payload_bytes()) + 4 * msg.subs.size());
  put<std::uint32_t>(out, static_cast<std::uint32_t>(msg.subs.size()));
  for (const Submessage& s : msg.subs) {
    put<std::int32_t>(out, s.source);
    put<std::int32_t>(out, s.dest);
    put<std::uint32_t>(out, s.id);
    put<std::uint32_t>(out, s.size_bytes);
    const auto payload = arena.view(s);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

std::vector<Submessage> deserialize_tracked(std::span<const std::byte> wire,
                                            PayloadArena& arena) {
  std::size_t pos = 0;
  const auto count = get<std::uint32_t>(wire, pos);
  // As above, but the tracked format carries a 16-byte per-sub header.
  require(static_cast<std::uint64_t>(count) * 16 <= wire.size() - pos,
          "deserialize: submessage count exceeds buffer");
  std::vector<Submessage> subs;
  subs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Submessage s;
    s.source = get<std::int32_t>(wire, pos);
    s.dest = get<std::int32_t>(wire, pos);
    s.id = get<std::uint32_t>(wire, pos);
    s.size_bytes = get<std::uint32_t>(wire, pos);
    require(pos + s.size_bytes <= wire.size(), "deserialize: truncated payload");
    s.offset = arena.add(std::span<const std::byte>(wire.data() + pos, s.size_bytes));
    pos += s.size_bytes;
    subs.push_back(s);
  }
  require(pos == wire.size(), "deserialize: trailing bytes");
  return subs;
}

std::uint64_t fnv1a(std::span<const std::byte> bytes, std::uint64_t h) noexcept {
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::byte> encode_frame(FrameHeader header, std::span<const std::byte> body) {
  header.body_len = static_cast<std::uint32_t>(body.size());
  std::vector<std::byte> out;
  out.reserve(kFrameOverheadBytes + body.size());
  put<std::uint32_t>(out, kFrameMagic);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(header.kind));
  put<std::uint16_t>(out, header.stage);
  put<std::uint32_t>(out, header.epoch);
  put<std::uint32_t>(out, header.member_epoch);
  put<std::uint32_t>(out, header.seq);
  put<std::int32_t>(out, header.sender);
  put<std::uint32_t>(out, header.body_len);
  // Checksum covers everything framed so far plus the body.
  const std::uint64_t sum = fnv1a(body, fnv1a(out));
  put<std::uint64_t>(out, sum);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<DecodedFrame> decode_frame(std::span<const std::byte> wire) noexcept {
  if (wire.size() < kFrameOverheadBytes) return std::nullopt;
  std::size_t pos = 0;
  if (get<std::uint32_t>(wire, pos) != kFrameMagic) return std::nullopt;
  DecodedFrame f;
  const auto kind = get<std::uint16_t>(wire, pos);
  if (kind < static_cast<std::uint16_t>(FrameKind::kData) ||
      kind > static_cast<std::uint16_t>(FrameKind::kFailureNotice))
    return std::nullopt;
  f.header.kind = static_cast<FrameKind>(kind);
  f.header.stage = get<std::uint16_t>(wire, pos);
  f.header.epoch = get<std::uint32_t>(wire, pos);
  f.header.member_epoch = get<std::uint32_t>(wire, pos);
  f.header.seq = get<std::uint32_t>(wire, pos);
  f.header.sender = get<std::int32_t>(wire, pos);
  f.header.body_len = get<std::uint32_t>(wire, pos);
  const std::size_t checksum_pos = pos;
  const auto claimed = get<std::uint64_t>(wire, pos);
  if (wire.size() != kFrameOverheadBytes + f.header.body_len) return std::nullopt;
  f.body = wire.subspan(pos);
  const std::uint64_t sum = fnv1a(f.body, fnv1a(wire.first(checksum_pos)));
  if (sum != claimed) return std::nullopt;
  return f;
}

void restamp_member_epoch(std::vector<std::byte>& wire, std::uint32_t member_epoch) {
  // Field offsets in the frame layout: magic(0) kind(4) stage(6) epoch(8)
  // member_epoch(12) seq(16) sender(20) body_len(24) checksum(28) body(36).
  constexpr std::size_t kMemberEpochPos = 12;
  constexpr std::size_t kChecksumPos = 28;
  require(wire.size() >= kFrameOverheadBytes, "restamp_member_epoch: not a frame");
  std::memcpy(wire.data() + kMemberEpochPos, &member_epoch, sizeof(member_epoch));
  const std::span<const std::byte> all(wire);
  const std::uint64_t sum =
      fnv1a(all.subspan(kFrameOverheadBytes), fnv1a(all.first(kChecksumPos)));
  std::memcpy(wire.data() + kChecksumPos, &sum, sizeof(sum));
}

std::vector<std::byte> encode_failure_notice(std::uint32_t membership_epoch,
                                             std::span<const std::int32_t> dead) {
  std::vector<std::byte> out;
  out.reserve(8 + 4 * dead.size());
  put<std::uint32_t>(out, membership_epoch);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(dead.size()));
  for (const std::int32_t r : dead) put<std::int32_t>(out, r);
  return out;
}

std::optional<FailureNotice> decode_failure_notice(std::span<const std::byte> body) noexcept {
  if (body.size() < 8) return std::nullopt;
  std::size_t pos = 0;
  FailureNotice n;
  n.membership_epoch = get<std::uint32_t>(body, pos);
  const auto count = get<std::uint32_t>(body, pos);
  // Bound the count by the bytes actually present before reserving, as the
  // submessage deserializers do: a corrupt count must not demand gigabytes.
  if (static_cast<std::uint64_t>(count) * 4 != body.size() - pos) return std::nullopt;
  n.dead.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) n.dead.push_back(get<std::int32_t>(body, pos));
  return n;
}

}  // namespace stfw::core
