#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "message.hpp"

/// \file wire.hpp
/// Wire format of a coalesced stage message.
///
/// Layout (little-endian, packed):
///   u32 count
///   count times: { i32 source, i32 dest, u32 len, u8 bytes[len] }
///
/// The threaded runtime ships stage messages in this format (as a real MPI
/// implementation would); the BSP simulator skips the byte copies but the
/// format is still what the buffer-size metric charges for.
///
/// On top of it sits a *frame* layer used by the resilient exchange
/// (docs/fault_model.md): every transmission is wrapped in a checksummed,
/// sequence-numbered header so drops, duplicates, reordering and truncation
/// become detectable and recoverable instead of fatal.

namespace stfw::core {

/// Bytes the wire format needs for a stage message with `count` submessages
/// totalling `payload_bytes` of payload.
constexpr std::uint64_t wire_size_bytes(std::uint64_t count, std::uint64_t payload_bytes) {
  return 4 + count * 12 + payload_bytes;
}

/// Serialize `msg`, pulling payload bytes from `arena`.
std::vector<std::byte> serialize(const StageMessage& msg, const PayloadArena& arena);

/// Parse a wire buffer; payloads are appended to `arena` and the returned
/// submessages reference it. Throws Error on malformed input.
std::vector<Submessage> deserialize(std::span<const std::byte> wire, PayloadArena& arena);

/// Variants of serialize/deserialize that additionally carry each
/// submessage's per-source id (layout: u32 count, then per submessage
/// { i32 source, i32 dest, u32 id, u32 len, u8 bytes[len] }). The resilient
/// exchange uses these so final destinations can deduplicate a submessage
/// that arrives both via store-and-forward and via the direct fallback; the
/// plain exchange keeps the id-less paper format above.
std::vector<std::byte> serialize_tracked(const StageMessage& msg, const PayloadArena& arena);
std::vector<Submessage> deserialize_tracked(std::span<const std::byte> wire, PayloadArena& arena);

// --- resilient frame layer -------------------------------------------------
//
// Frame layout (little-endian, packed):
//   u32 magic  u16 kind  u16 stage  u32 epoch  u32 member_epoch  u32 seq
//   i32 sender  u32 body_len  u64 checksum  u8 body[body_len]
//
// `seq` is monotonically increasing per sender within one exchange, so every
// frame a rank emits is globally identified by (sender, epoch, seq); acks
// echo the seq they acknowledge. `member_epoch` is the cluster membership
// version the sender believed in when it built the frame: receivers whose
// membership has advanced past it nack the frame, forcing the sender to
// observe the failure and re-route before retrying (docs/fault_model.md,
// "Membership epochs"). `checksum` is FNV-1a over all preceding header bytes
// plus the body, which catches the truncation and bit-rot faults the
// injector can produce.

inline constexpr std::uint32_t kFrameMagic = 0x53544652u;  // "STFR"
inline constexpr std::uint64_t kFrameOverheadBytes = 36;

enum class FrameKind : std::uint16_t {
  kData = 1,    // a serialized StageMessage routed between stage neighbors
  kAck = 2,     // acknowledges (sender, seq); empty body
  kDirect = 3,  // degradation fallback: submessages sent straight to dest
  kNack = 4,    // refuses (sender, seq): receiver moved past that stage or
                // has a newer membership epoch; the sender should re-route
                // instead of retrying
  kRelay = 5,   // degraded-mode re-homing: tracked submessages detoured
                // around a dead rank; receivers deliver their own and
                // forward the rest along surviving dimension-order hops
  kFailureNotice = 6,  // membership change announcement; body is the
                       // failure-notice codec below
};

struct FrameHeader {
  FrameKind kind = FrameKind::kData;
  std::uint16_t stage = 0;  // sending stage; unused for kAck/kDirect
  std::uint32_t epoch = 0;  // exchange number on the communicator
  std::uint32_t member_epoch = 0;  // sender's membership version
  std::uint32_t seq = 0;    // per-sender frame counter (acked seq for kAck)
  std::int32_t sender = -1; // authoritative origin of the frame
  std::uint32_t body_len = 0;
};

/// A decoded frame; `body` aliases the input buffer.
struct DecodedFrame {
  FrameHeader header;
  std::span<const std::byte> body;
};

/// FNV-1a (64-bit) over `bytes`, continuing from `h`.
std::uint64_t fnv1a(std::span<const std::byte> bytes,
                    std::uint64_t h = 14695981039346656037ull) noexcept;

/// Wrap `body` in a frame with `header` (its body_len is overwritten) and a
/// freshly computed checksum.
std::vector<std::byte> encode_frame(FrameHeader header, std::span<const std::byte> body);

/// Parse a frame. Returns std::nullopt — never throws — when the buffer is
/// truncated, carries the wrong magic, or fails the checksum: a corrupt
/// frame is indistinguishable from a lost one and is recovered the same way
/// (sender retransmission), so it is dropped rather than raised.
std::optional<DecodedFrame> decode_frame(std::span<const std::byte> wire) noexcept;

/// Rewrite the member_epoch field of an already encoded frame in place and
/// recompute the checksum. Used when a sender observes a membership change
/// while frames are still unacknowledged: the payload is unchanged, only the
/// sender's membership claim advances, so receivers stop nacking it as stale.
void restamp_member_epoch(std::vector<std::byte>& wire, std::uint32_t member_epoch);

// --- failure-notice body codec ---------------------------------------------
//
// Body layout (little-endian, packed):
//   u32 membership_epoch  u32 dead_count  i32 dead[dead_count]
//
// Carried by kFailureNotice frames. The notice is a wake-up, not the source
// of truth: receivers compare `membership_epoch` against their own observed
// membership and re-snapshot from the cluster when the notice is newer; a
// stale or corrupt notice is ignored.

struct FailureNotice {
  std::uint32_t membership_epoch = 0;
  std::vector<std::int32_t> dead;
};

std::vector<std::byte> encode_failure_notice(std::uint32_t membership_epoch,
                                             std::span<const std::int32_t> dead);

/// Parse a failure-notice body. Returns std::nullopt — never throws — on a
/// truncated buffer, a dead-rank count that exceeds the bytes present, or
/// trailing garbage, so a corrupt notice can never crash a survivor.
std::optional<FailureNotice> decode_failure_notice(std::span<const std::byte> body) noexcept;

}  // namespace stfw::core
