#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "message.hpp"

/// \file wire.hpp
/// Wire format of a coalesced stage message.
///
/// Layout (little-endian, packed):
///   u32 count
///   count times: { i32 source, i32 dest, u32 len, u8 bytes[len] }
///
/// The threaded runtime ships stage messages in this format (as a real MPI
/// implementation would); the BSP simulator skips the byte copies but the
/// format is still what the buffer-size metric charges for.

namespace stfw::core {

/// Bytes the wire format needs for a stage message with `count` submessages
/// totalling `payload_bytes` of payload.
constexpr std::uint64_t wire_size_bytes(std::uint64_t count, std::uint64_t payload_bytes) {
  return 4 + count * 12 + payload_bytes;
}

/// Serialize `msg`, pulling payload bytes from `arena`.
std::vector<std::byte> serialize(const StageMessage& msg, const PayloadArena& arena);

/// Parse a wire buffer; payloads are appended to `arena` and the returned
/// submessages reference it. Throws Error on malformed input.
std::vector<Submessage> deserialize(std::span<const std::byte> wire, PayloadArena& arena);

}  // namespace stfw::core
