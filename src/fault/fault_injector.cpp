#include "fault_injector.hpp"

#include <string>
#include <thread>

#include "core/env.hpp"
#include "core/verify_hooks.hpp"

namespace stfw::fault {

namespace {

// Strict parsers (core/env.hpp): a malformed STFW_FAULT_* value throws
// core::ValidationError instead of being silently truncated by strtod.
using core::env_double;
using core::env_u64;

/// splitmix64 — decorrelates the per-sender streams derived from one seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultConfig FaultConfig::from_env() {
  FaultConfig c;
  c.seed = env_u64("STFW_FAULT_SEED", c.seed);
  c.drop_prob = env_double("STFW_FAULT_DROP", c.drop_prob);
  c.duplicate_prob = env_double("STFW_FAULT_DUP", c.duplicate_prob);
  c.reorder_prob = env_double("STFW_FAULT_REORDER", c.reorder_prob);
  c.truncate_prob = env_double("STFW_FAULT_TRUNCATE", c.truncate_prob);
  c.delay_prob = env_double("STFW_FAULT_DELAY", c.delay_prob);
  c.delay_max = std::chrono::milliseconds(
      env_u64("STFW_FAULT_DELAY_MAX_MS",
              static_cast<std::uint64_t>(c.delay_max.count())));
  c.crash_rank = static_cast<int>(core::env_int("STFW_FAULT_CRASH_RANK", c.crash_rank));
  c.crash_stage = static_cast<int>(core::env_int("STFW_FAULT_CRASH_STAGE", c.crash_stage));
  c.crash_visit = static_cast<int>(core::env_int("STFW_FAULT_CRASH_VISIT", c.crash_visit));
  c.crash_survivable = core::env_flag("STFW_FAULT_CRASH_SURVIVABLE", c.crash_survivable);
  return c;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {
  auto check = [](double p, const char* what) {
    core::require(p >= 0.0 && p <= 1.0, std::string("FaultInjector: ") + what +
                                            " probability outside [0, 1]");
  };
  check(config_.drop_prob, "drop");
  check(config_.duplicate_prob, "duplicate");
  check(config_.reorder_prob, "reorder");
  check(config_.truncate_prob, "truncate");
  check(config_.delay_prob, "delay");
  core::require(config_.delay_min <= config_.delay_max,
                "FaultInjector: delay_min must not exceed delay_max");
}

FaultInjector::Stream& FaultInjector::stream_for(int source) {
  core::MutexLock lock(streams_mu_);
  const auto idx = static_cast<std::size_t>(source);
  if (idx >= streams_.size()) streams_.resize(idx + 1);
  if (!streams_[idx])
    streams_[idx] = std::make_unique<Stream>(
        mix(config_.seed ^ (std::uint64_t{0x517cc1b727220a95} *
                            (static_cast<std::uint64_t>(source) + 1))));
  return *streams_[idx];
}

MessageDecision FaultInjector::on_post(int source, int dest, int tag,
                                       std::size_t size_bytes) {
  (void)dest;
  MessageDecision d;
  if (tag < config_.min_tag) return d;
  Stream& st = stream_for(source);
  core::MutexLock lock(st.mu);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  const double fate = coin(st.rng);
  if (fate < config_.drop_prob) {
    d.drop = true;
    drops_.fetch_add(1, std::memory_order_relaxed);
    return d;  // nothing else matters for a dropped message
  } else if (fate < config_.drop_prob + config_.duplicate_prob) {
    d.duplicate = true;
    duplicates_.fetch_add(1, std::memory_order_relaxed);
  } else if (fate < config_.drop_prob + config_.duplicate_prob + config_.reorder_prob) {
    d.reorder = true;
    reorders_.fetch_add(1, std::memory_order_relaxed);
  }

  if (size_bytes > 0 && coin(st.rng) < config_.truncate_prob) {
    d.truncate_to = static_cast<std::uint32_t>(
        std::uniform_int_distribution<std::size_t>(0, size_bytes - 1)(st.rng));
    truncations_.fetch_add(1, std::memory_order_relaxed);
  }
  if (coin(st.rng) < config_.delay_prob) {
    const auto lo = config_.delay_min.count();
    const auto hi = config_.delay_max.count();
    d.delay = std::chrono::milliseconds(
        std::uniform_int_distribution<long long>(lo, hi)(st.rng));
    if (d.delay.count() > 0) delays_.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

void FaultInjector::at_stage(int rank, int stage) {
  if (rank == config_.crash_rank) {
    const int visit = crash_rank_visits_.fetch_add(1, std::memory_order_relaxed);
    const bool hit = config_.crash_visit >= 0
                         ? visit == config_.crash_visit
                         : (config_.crash_stage < 0 || stage == config_.crash_stage);
    if (hit) {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      const std::string what = "fault injection: rank " + std::to_string(rank) +
                               " crashed at stage " + std::to_string(stage);
      if (config_.crash_survivable) throw RankCrashedError(what);
      throw FaultInjectedError(what);
    }
  }
  if (rank == config_.stall_rank &&
      (config_.stall_stage < 0 || stage == config_.stall_stage) &&
      config_.stall_duration.count() > 0) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
#if STFW_VERIFY_ENABLED
    if (verify::Hooks* h = verify::hooks()) {
      // Under the stfw-verify scheduler a stall advances the logical clock
      // and yields instead of sleeping, so stall schedules stay deterministic.
      h->stall(config_.stall_duration);
      return;
    }
#endif
    std::this_thread::sleep_for(config_.stall_duration);
  }
}

FaultCounters FaultInjector::counters() const {
  FaultCounters c;
  c.drops = drops_.load(std::memory_order_relaxed);
  c.duplicates = duplicates_.load(std::memory_order_relaxed);
  c.reorders = reorders_.load(std::memory_order_relaxed);
  c.truncations = truncations_.load(std::memory_order_relaxed);
  c.delays = delays_.load(std::memory_order_relaxed);
  c.stalls = stalls_.load(std::memory_order_relaxed);
  c.crashes = crashes_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace stfw::fault
