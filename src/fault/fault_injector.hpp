#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/sync.hpp"

/// \file fault_injector.hpp
/// Deterministic fault injection for the in-process runtime.
///
/// The paper's Algorithm 1 assumes every rank participates flawlessly in all
/// n stages; one lost message or stalled rank deadlocks the whole exchange.
/// FaultInjector makes those failure modes reproducible: plugged into
/// runtime::Cluster it intercepts every message post and may drop, delay,
/// duplicate, reorder or truncate it, and at stage boundaries it can stall
/// or crash a configured rank. All decisions come from per-sender RNG
/// streams derived from one seed, so a failing configuration replays
/// bit-identically. See docs/fault_model.md for the full fault model and
/// which layers recover from what.

namespace stfw::fault {

/// Thrown by a rank the injector was configured to crash (crash_rank /
/// crash_stage) — models a process failure at a deterministic site.
class FaultInjectedError : public core::Error {
public:
  explicit FaultInjectedError(const std::string& what) : core::Error(what) {}
};

/// The survivable flavor of an injected crash (crash_survivable = true):
/// runtime::Cluster catches this one at the rank-thread boundary, marks the
/// rank dead in the membership state, and lets the surviving ranks keep
/// running in degraded mode instead of aborting the whole cluster. See
/// docs/fault_model.md, "Membership epochs and degraded mode".
class RankCrashedError : public FaultInjectedError {
public:
  explicit RankCrashedError(const std::string& what) : FaultInjectedError(what) {}
};

struct FaultConfig {
  std::uint64_t seed = 1;

  // Per-message fault probabilities in [0, 1]; evaluated independently at
  // every post. Truncation and delay compose with delivery; drop, duplicate
  // and reorder are mutually exclusive (first match wins).
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double reorder_prob = 0.0;   // delivered ahead of queued same-tag traffic
  double truncate_prob = 0.0;  // delivered with the tail chopped off
  double delay_prob = 0.0;     // held back, delivered by the monitor thread
  std::chrono::milliseconds delay_min{1};
  std::chrono::milliseconds delay_max{5};

  /// Only messages with tag >= min_tag are candidates. Exchange stage
  /// traffic uses non-negative tags while the runtime's own collectives use
  /// negative tags, so the default faults the exchange but leaves control
  /// collectives reliable (the loss model of a transport with a reliable
  /// side channel).
  int min_tag = 0;

  // Rank-level faults, triggered at the stage sites the exchange announces
  // via at_stage(). stage == -1 means "any stage".
  int stall_rank = -1;
  int stall_stage = -1;
  std::chrono::milliseconds stall_duration{0};
  int crash_rank = -1;
  int crash_stage = -1;
  /// >= 0: crash on the Nth at_stage() visit of crash_rank (counted across
  /// exchanges) instead of matching crash_stage. With an n-dimensional VPT,
  /// visit n + d is stage d of the *second* exchange — how the CI crash
  /// matrix injects a failure during plan replay rather than plan recording.
  int crash_visit = -1;
  /// false: a crash throws FaultInjectedError, which escapes the rank
  /// function and aborts the whole cluster (a fail-stop process group).
  /// true: it throws RankCrashedError instead, which the cluster absorbs —
  /// the rank is marked dead, the membership epoch bumps, and survivors
  /// continue in degraded mode.
  bool crash_survivable = false;

  /// Reads STFW_FAULT_SEED, STFW_FAULT_DROP, STFW_FAULT_DUP,
  /// STFW_FAULT_REORDER, STFW_FAULT_TRUNCATE, STFW_FAULT_DELAY (probability),
  /// STFW_FAULT_DELAY_MAX_MS, and the crash knobs STFW_FAULT_CRASH_RANK,
  /// STFW_FAULT_CRASH_STAGE and STFW_FAULT_CRASH_SURVIVABLE; unset variables
  /// keep their defaults. CI's fault matrix and crash matrix drive the test
  /// grids through these.
  static FaultConfig from_env();
};

/// What Cluster::post should do with one message.
struct MessageDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  std::uint32_t truncate_to = UINT32_MAX;  // < size: deliver only a prefix
  std::chrono::milliseconds delay{0};      // > 0: hold back this long
};

/// Tallies of injected faults, for tests asserting that a run actually
/// exercised the recovery paths.
struct FaultCounters {
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
  std::int64_t reorders = 0;
  std::int64_t truncations = 0;
  std::int64_t delays = 0;
  std::int64_t stalls = 0;
  std::int64_t crashes = 0;
};

class FaultInjector {
public:
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const noexcept { return config_; }

  /// Decide the fate of a message about to be posted. Called by the cluster
  /// on the sender's thread; decisions for a given sender form one
  /// deterministic stream. The decision must be consumed — dropping it on
  /// the floor delivers a message the injector already counted as faulted.
  [[nodiscard]] MessageDecision on_post(int source, int dest, int tag,
                                        std::size_t size_bytes);

  /// Stage-boundary site: stalls the calling thread or throws
  /// FaultInjectedError when `rank` matches the configured stall/crash rank
  /// and `stage` the configured stage (-1 matches any).
  void at_stage(int rank, int stage);

  [[nodiscard]] FaultCounters counters() const;

private:
  struct Stream {
    /// Seeding happens in the constructor (single-threaded by definition);
    /// all later draws go through mu.
    explicit Stream(std::uint64_t seed) : rng(seed) {}

    core::Mutex mu;  // a sender's posts are sequential; uncontended in practice
    std::mt19937_64 rng STFW_GUARDED_BY(mu);
  };

  FaultConfig config_;
  core::Mutex streams_mu_;
  // One per sender rank, grown lazily. The vector (not the pointed-to
  // streams) is guarded: stream_for hands out stable Stream references
  // whose own mu takes over.
  std::vector<std::unique_ptr<Stream>> streams_ STFW_GUARDED_BY(streams_mu_);

  std::atomic<std::int64_t> drops_{0};
  std::atomic<std::int64_t> duplicates_{0};
  std::atomic<std::int64_t> reorders_{0};
  std::atomic<std::int64_t> truncations_{0};
  std::atomic<std::int64_t> delays_{0};
  std::atomic<std::int64_t> stalls_{0};
  std::atomic<std::int64_t> crashes_{0};
  std::atomic<int> crash_rank_visits_{0};  // at_stage visits by crash_rank

  Stream& stream_for(int source);
};

}  // namespace stfw::fault
