#include "mapping.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "core/error.hpp"

namespace stfw::mapping {

using core::Rank;
using core::require;

Permutation::Permutation(std::vector<Rank> position) : position_(std::move(position)) {
  std::vector<std::uint8_t> seen(position_.size(), 0);
  for (Rank p : position_) {
    require(p >= 0 && p < static_cast<Rank>(position_.size()),
            "Permutation: position out of range");
    require(!seen[static_cast<std::size_t>(p)], "Permutation: duplicate position");
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

Permutation Permutation::identity(Rank n) {
  std::vector<Rank> pos(static_cast<std::size_t>(n));
  std::iota(pos.begin(), pos.end(), 0);
  return Permutation(std::move(pos));
}

Permutation Permutation::inverse() const {
  std::vector<Rank> inv(position_.size());
  for (std::size_t r = 0; r < position_.size(); ++r)
    inv[static_cast<std::size_t>(position_[r])] = static_cast<Rank>(r);
  return Permutation(std::move(inv));
}

bool Permutation::is_identity() const noexcept {
  for (std::size_t r = 0; r < position_.size(); ++r)
    if (position_[r] != static_cast<Rank>(r)) return false;
  return true;
}

sim::CommPattern permute_pattern(const sim::CommPattern& pattern, const Permutation& perm) {
  require(perm.size() == pattern.num_ranks(), "permute_pattern: size mismatch");
  sim::CommPattern out(pattern.num_ranks());
  for (Rank r = 0; r < pattern.num_ranks(); ++r)
    for (const sim::Send& s : pattern.sends(r)) out.add_send(perm(r), perm(s.dest), s.payload_bytes);
  out.finalize();
  return out;
}

std::uint64_t vpt_volume_cost(const sim::CommPattern& pattern, const core::Vpt& vpt,
                              const Permutation& perm) {
  require(vpt.size() == pattern.num_ranks() && perm.size() == pattern.num_ranks(),
          "vpt_volume_cost: size mismatch");
  std::uint64_t cost = 0;
  for (Rank r = 0; r < pattern.num_ranks(); ++r)
    for (const sim::Send& s : pattern.sends(r))
      cost += static_cast<std::uint64_t>(vpt.hamming(perm(r), perm(s.dest))) * s.payload_bytes;
  return cost;
}

std::uint64_t physical_hop_cost(const sim::CommPattern& pattern, const netsim::Machine& machine,
                                const Permutation& perm) {
  require(perm.size() == pattern.num_ranks(), "physical_hop_cost: size mismatch");
  std::uint64_t cost = 0;
  for (Rank r = 0; r < pattern.num_ranks(); ++r)
    for (const sim::Send& s : pattern.sends(r))
      cost += static_cast<std::uint64_t>(machine.topology().hops(machine.node_of(perm(r)),
                                                                 machine.node_of(perm(s.dest)))) *
              s.payload_bytes;
  return cost;
}

namespace {

struct AdjEntry {
  Rank peer;
  std::uint64_t bytes;
};

/// Symmetric aggregated traffic: adj[i] holds (j, bytes_ij + bytes_ji).
std::vector<std::vector<AdjEntry>> build_adjacency(const sim::CommPattern& pattern) {
  const auto n = static_cast<std::size_t>(pattern.num_ranks());
  std::vector<std::pair<std::pair<Rank, Rank>, std::uint64_t>> edges;
  for (Rank r = 0; r < pattern.num_ranks(); ++r)
    for (const sim::Send& s : pattern.sends(r)) {
      if (s.dest == r) continue;
      const Rank a = std::min(r, s.dest);
      const Rank b = std::max(r, s.dest);
      edges.push_back({{a, b}, s.payload_bytes});
    }
  std::sort(edges.begin(), edges.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<std::vector<AdjEntry>> adj(n);
  std::size_t i = 0;
  while (i < edges.size()) {
    std::size_t j = i;
    std::uint64_t bytes = 0;
    while (j < edges.size() && edges[j].first == edges[i].first) bytes += edges[j++].second;
    const auto [a, b] = edges[i].first;
    adj[static_cast<std::size_t>(a)].push_back({b, bytes});
    adj[static_cast<std::size_t>(b)].push_back({a, bytes});
    i = j;
  }
  // Heaviest peers first: the greedy placer and the swap refiner both look
  // at prefixes.
  for (auto& list : adj)
    std::sort(list.begin(), list.end(),
              [](const AdjEntry& x, const AdjEntry& y) { return x.bytes > y.bytes; });
  return adj;
}

/// Shared optimizer over an arbitrary position distance. `dist(p, q)` must
/// be symmetric with dist(p, p) == 0. Two starting points are refined with
/// pairwise swaps and the cheaper result wins:
///  * identity — already strong when rank ids carry locality (recursive
///    bisection numbers sibling parts adjacently);
///  * greedy — heaviest communicators placed first at the cheapest
///    position against their already-placed peers.
template <class Dist>
class Optimizer {
public:
  Optimizer(const sim::CommPattern& pattern, Dist dist, const MapOptions& options)
      : dist_(std::move(dist)),
        options_(options),
        adj_(build_adjacency(pattern)),
        n_(adj_.size()),
        rng_(options.seed) {
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0);
    std::vector<std::uint64_t> traffic(n_, 0);
    for (std::size_t r = 0; r < n_; ++r)
      for (const AdjEntry& e : adj_[r]) traffic[r] += e.bytes;
    std::stable_sort(order_.begin(), order_.end(), [&](Rank a, Rank b) {
      return traffic[static_cast<std::size_t>(a)] > traffic[static_cast<std::size_t>(b)];
    });
  }

  Permutation run() {
    std::vector<Rank> greedy = construct_greedy();
    refine(greedy);
    std::vector<Rank> ident(n_);
    std::iota(ident.begin(), ident.end(), 0);
    refine(ident);
    return Permutation(total_cost(greedy) < total_cost(ident) ? std::move(greedy)
                                                              : std::move(ident));
  }

private:
  std::uint64_t total_cost(const std::vector<Rank>& position) const {
    std::uint64_t cost = 0;
    for (std::size_t r = 0; r < n_; ++r)
      for (const AdjEntry& e : adj_[r])
        cost += e.bytes * static_cast<std::uint64_t>(
                              dist_(position[r], position[static_cast<std::size_t>(e.peer)]));
    return cost / 2;  // adjacency is symmetric
  }

  std::vector<Rank> construct_greedy() {
    constexpr std::size_t kPlacedPeersCap = 16;
    constexpr std::size_t kCandidateCap = 48;
    std::vector<Rank> position(n_, -1);
    std::vector<Rank> free_positions(n_);
    std::iota(free_positions.begin(), free_positions.end(), 0);
    std::shuffle(free_positions.begin(), free_positions.end(), rng_);
    std::vector<std::uint8_t> taken(n_, 0);

    auto placement_cost = [&](Rank r, Rank pos) {
      std::uint64_t cost = 0;
      std::size_t considered = 0;
      for (const AdjEntry& e : adj_[static_cast<std::size_t>(r)]) {
        const Rank ppos = position[static_cast<std::size_t>(e.peer)];
        if (ppos < 0) continue;
        cost += e.bytes * static_cast<std::uint64_t>(dist_(pos, ppos));
        if (++considered >= kPlacedPeersCap) break;
      }
      return cost;
    };

    std::size_t free_cursor = 0;
    auto next_free = [&]() {
      while (taken[static_cast<std::size_t>(free_positions[free_cursor])]) ++free_cursor;
      return free_positions[free_cursor];
    };
    std::uniform_int_distribution<std::size_t> pick(0, n_ - 1);
    for (Rank r : order_) {
      Rank best = next_free();
      std::uint64_t best_cost = placement_cost(r, best);
      for (std::size_t c = 0; c < kCandidateCap; ++c) {
        const Rank cand = free_positions[pick(rng_)];
        if (taken[static_cast<std::size_t>(cand)]) continue;
        const std::uint64_t cost = placement_cost(r, cand);
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
      position[static_cast<std::size_t>(r)] = best;
      taken[static_cast<std::size_t>(best)] = 1;
    }
    return position;
  }

  void refine(std::vector<Rank>& position) {
    std::vector<Rank> rank_at(n_);
    for (std::size_t r = 0; r < n_; ++r)
      rank_at[static_cast<std::size_t>(position[r])] = static_cast<Rank>(r);

    auto rank_cost = [&](Rank r) {
      std::uint64_t cost = 0;
      for (const AdjEntry& e : adj_[static_cast<std::size_t>(r)])
        cost += e.bytes * static_cast<std::uint64_t>(
                              dist_(position[static_cast<std::size_t>(r)],
                                    position[static_cast<std::size_t>(e.peer)]));
      return cost;
    };
    auto try_swap = [&](Rank r, Rank other) {
      if (other == r) return false;
      const std::uint64_t before = rank_cost(r) + rank_cost(other);
      std::swap(position[static_cast<std::size_t>(r)], position[static_cast<std::size_t>(other)]);
      const std::uint64_t after = rank_cost(r) + rank_cost(other);
      if (after < before) {
        rank_at[static_cast<std::size_t>(position[static_cast<std::size_t>(r)])] = r;
        rank_at[static_cast<std::size_t>(position[static_cast<std::size_t>(other)])] = other;
        return true;
      }
      std::swap(position[static_cast<std::size_t>(r)], position[static_cast<std::size_t>(other)]);
      return false;
    };

    std::uniform_int_distribution<std::size_t> pick(0, n_ - 1);
    std::uniform_int_distribution<Rank> jitter(-3, 3);
    for (int sweep = 0; sweep < options_.refine_sweeps; ++sweep) {
      bool improved = false;
      for (Rank r : order_) {
        // Targeted candidates: swap toward positions adjacent (in position
        // index, a locality proxy in both VPT digit space and node space)
        // to the heaviest peers' positions.
        std::size_t targeted = 0;
        for (const AdjEntry& e : adj_[static_cast<std::size_t>(r)]) {
          if (targeted >= 4) break;
          ++targeted;
          const Rank peer_pos = position[static_cast<std::size_t>(e.peer)];
          const Rank cand_pos = static_cast<Rank>(
              std::clamp<Rank>(peer_pos + jitter(rng_), 0, static_cast<Rank>(n_) - 1));
          improved |= try_swap(r, rank_at[static_cast<std::size_t>(cand_pos)]);
        }
        for (int c = 0; c < options_.swap_candidates; ++c)
          improved |= try_swap(r, static_cast<Rank>(pick(rng_)));
      }
      if (!improved) break;
    }
  }

  Dist dist_;
  MapOptions options_;
  std::vector<std::vector<AdjEntry>> adj_;
  std::size_t n_;
  std::mt19937_64 rng_;
  std::vector<Rank> order_;
};

template <class Dist>
Permutation optimize(const sim::CommPattern& pattern, Dist&& dist, const MapOptions& options) {
  if (pattern.num_ranks() == 1) return Permutation::identity(1);
  return Optimizer<std::decay_t<Dist>>(pattern, std::forward<Dist>(dist), options).run();
}

}  // namespace

Permutation optimize_vpt_mapping(const sim::CommPattern& pattern, const core::Vpt& vpt,
                                 const MapOptions& options) {
  require(vpt.size() == pattern.num_ranks(), "optimize_vpt_mapping: size mismatch");
  return optimize(pattern, [&vpt](Rank p, Rank q) { return vpt.hamming(p, q); }, options);
}

Permutation optimize_physical_mapping(const sim::CommPattern& pattern,
                                      const netsim::Machine& machine,
                                      const MapOptions& options) {
  require(machine.topology().num_nodes() * machine.ranks_per_node() >= pattern.num_ranks(),
          "optimize_physical_mapping: machine too small for the pattern");
  return optimize(pattern,
                  [&machine](Rank p, Rank q) {
                    return machine.topology().hops(machine.node_of(p), machine.node_of(q));
                  },
                  options);
}

}  // namespace stfw::mapping
