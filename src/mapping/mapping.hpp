#pragma once

#include <cstdint>
#include <vector>

#include "core/vpt.hpp"
#include "netsim/machine.hpp"
#include "sim/pattern.hpp"

/// \file mapping.hpp
/// Process-to-topology mappings — the paper's Section 8 future work,
/// implemented.
///
/// Two independent orderings affect cost:
///
///  1. *VPT mapping*: which VPT position each process occupies. A
///     submessage from i to j is forwarded hamming(pos(i), pos(j)) times,
///     so placing heavily communicating pairs at small Hamming distance
///     reduces the forwarding volume (and, indirectly, message counts).
///  2. *Physical mapping*: which node each rank runs on. The wire cost of a
///     stage message grows with the hop count between nodes, so placing
///     chatty ranks on nearby nodes reduces the per-hop term.
///
/// Both are permutations of [0, K); both are optimized here with the same
/// greedy-construction + pairwise-swap local search over the communication
/// pattern. The optimizers are deterministic for a fixed seed.

namespace stfw::mapping {

/// A bijection of ranks: position[i] = where application rank i sits
/// (VPT position or physical slot). Identity by default.
class Permutation {
public:
  Permutation() = default;
  explicit Permutation(std::vector<core::Rank> position);
  static Permutation identity(core::Rank n);

  core::Rank size() const noexcept { return static_cast<core::Rank>(position_.size()); }
  core::Rank operator()(core::Rank r) const { return position_[static_cast<std::size_t>(r)]; }
  const std::vector<core::Rank>& positions() const noexcept { return position_; }

  /// position -> rank (the inverse bijection).
  Permutation inverse() const;

  bool is_identity() const noexcept;

private:
  std::vector<core::Rank> position_;
};

/// Apply a permutation to a pattern: the returned pattern is what the
/// topology "sees" — message (i -> j, b) becomes (perm(i) -> perm(j), b).
sim::CommPattern permute_pattern(const sim::CommPattern& pattern, const Permutation& perm);

/// Total forwarding volume (bytes x hops) of `pattern` on `vpt` under a
/// candidate mapping: sum over messages of bytes * hamming(pos_i, pos_j).
/// This is exactly the volume the store-and-forward scheme moves.
std::uint64_t vpt_volume_cost(const sim::CommPattern& pattern, const core::Vpt& vpt,
                              const Permutation& perm);

/// Total wire-distance cost of `pattern` on a machine under a candidate
/// mapping: sum over messages of bytes * hops(node(pos_i), node(pos_j)).
std::uint64_t physical_hop_cost(const sim::CommPattern& pattern, const netsim::Machine& machine,
                                const Permutation& perm);

struct MapOptions {
  std::uint64_t seed = 1;
  /// Pairwise-swap refinement sweeps (0 = greedy construction only).
  int refine_sweeps = 2;
  /// Candidate swaps examined per vertex per sweep.
  int swap_candidates = 8;
};

/// Greedy + local-search mapping of ranks onto VPT positions minimizing
/// vpt_volume_cost. Heaviest communicators are placed first, each at the
/// free position with the lowest Hamming-weighted cost to already-placed
/// peers.
Permutation optimize_vpt_mapping(const sim::CommPattern& pattern, const core::Vpt& vpt,
                                 const MapOptions& options = {});

/// Greedy + local-search mapping of ranks onto physical slots minimizing
/// physical_hop_cost (the paper's second Section 8 direction).
Permutation optimize_physical_mapping(const sim::CommPattern& pattern,
                                      const netsim::Machine& machine,
                                      const MapOptions& options = {});

}  // namespace stfw::mapping
