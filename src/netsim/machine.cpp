#include "machine.hpp"

#include "core/error.hpp"

namespace stfw::netsim {

using core::require;

Machine::Machine(std::string name, std::shared_ptr<const Topology> topology, int ranks_per_node,
                 double alpha_us, double recv_alpha_us, double beta_us_per_byte,
                 double gamma_us_per_hop, double injection_bytes_per_us)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      ranks_per_node_(ranks_per_node),
      alpha_us_(alpha_us),
      recv_alpha_us_(recv_alpha_us),
      beta_us_per_byte_(beta_us_per_byte),
      gamma_us_per_hop_(gamma_us_per_hop),
      injection_bytes_per_us_(injection_bytes_per_us) {
  require(topology_ != nullptr, "Machine: topology required");
  require(ranks_per_node >= 1, "Machine: ranks_per_node must be >= 1");
  require(alpha_us >= 0 && recv_alpha_us >= 0 && beta_us_per_byte >= 0 && gamma_us_per_hop >= 0 &&
              injection_bytes_per_us >= 0,
          "Machine: cost parameters must be non-negative");
}

namespace {

int nodes_for(core::Rank max_ranks, int ranks_per_node) {
  require(max_ranks >= 1, "Machine preset: max_ranks must be >= 1");
  return static_cast<int>((max_ranks + ranks_per_node - 1) / ranks_per_node);
}

}  // namespace

Machine Machine::blue_gene_q(core::Rank max_ranks) {
  constexpr int kRanksPerNode = 16;  // one rank per A2 core
  auto topo = std::make_shared<TorusTopology>(
      TorusTopology::fitting(nodes_for(max_ranks, kRanksPerNode), 5));
  // ~3.2 us MPI startup, ~1.75 GB/s effective per-rank stream, ~40 ns/hop,
  // ~18 GB/s aggregate node injection (10 torus links).
  return Machine("BlueGene/Q (5D torus)", std::move(topo), kRanksPerNode,
                 /*alpha_us=*/3.2, /*recv_alpha_us=*/1.6,
                 /*beta_us_per_byte=*/1.0 / 1750.0, /*gamma_us_per_hop=*/0.04,
                 /*injection_bytes_per_us=*/18000.0);
}

Machine Machine::cray_xk7(core::Rank max_ranks) {
  constexpr int kRanksPerNode = 16;  // one Interlagos socket per node
  auto topo = std::make_shared<TorusTopology>(
      TorusTopology::fitting(nodes_for(max_ranks, kRanksPerNode), 3));
  // Gemini: ~1.8 us startup, ~3.1 GB/s effective, ~100 ns/hop, ~6 GB/s
  // node injection (one Gemini NIC shared by the node).
  return Machine("Cray XK7 (3D torus, Gemini)", std::move(topo), kRanksPerNode,
                 /*alpha_us=*/1.8, /*recv_alpha_us=*/0.9,
                 /*beta_us_per_byte=*/1.0 / 3100.0, /*gamma_us_per_hop=*/0.10,
                 /*injection_bytes_per_us=*/6000.0);
}

Machine Machine::cray_xc40(core::Rank max_ranks) {
  constexpr int kRanksPerNode = 32;  // two 16-core Haswell sockets
  auto topo = std::make_shared<DragonflyTopology>(
      DragonflyTopology::fitting(nodes_for(max_ranks, kRanksPerNode)));
  // Aries: ~1.3 us startup, ~8 GB/s effective, ~30 ns/hop. The largest
  // alpha*bandwidth product of the three machines: most latency-bound.
  return Machine("Cray XC40 (Dragonfly, Aries)", std::move(topo), kRanksPerNode,
                 /*alpha_us=*/1.3, /*recv_alpha_us=*/0.65,
                 /*beta_us_per_byte=*/1.0 / 8000.0, /*gamma_us_per_hop=*/0.03,
                 /*injection_bytes_per_us=*/10000.0);
}

}  // namespace stfw::netsim
