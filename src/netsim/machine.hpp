#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/vpt.hpp"
#include "netsim/topology.hpp"

/// \file machine.hpp
/// Machine cost models for the three systems of the paper's evaluation.
///
/// A message of B wire bytes from rank i to rank j costs the sender
///     alpha + gamma * hops(node(i), node(j)) + beta * B    microseconds
/// and the receiver
///     recv_alpha + beta * B                                microseconds.
/// Ranks are folded onto nodes contiguously (ranks_per_node per node).
///
/// Parameters are calibrated from published microbenchmarks of the systems;
/// what matters for reproducing the paper is the latency/bandwidth *regime*:
/// the XC40's alpha x bandwidth product is the largest, making it the most
/// latency-bound (the paper's Section 6.4 explanation for its bigger STFW
/// wins), and BG/Q sits at the other end.

namespace stfw::netsim {

class Machine {
public:
  Machine(std::string name, std::shared_ptr<const Topology> topology, int ranks_per_node,
          double alpha_us, double recv_alpha_us, double beta_us_per_byte, double gamma_us_per_hop,
          double injection_bytes_per_us = 0.0);

  /// IBM BlueGene/Q: 16 ranks/node, 5D torus, MPICH2-era latency.
  static Machine blue_gene_q(core::Rank max_ranks);
  /// Cray XK7 (Gemini): 16 ranks/node, 3D torus.
  static Machine cray_xk7(core::Rank max_ranks);
  /// Cray XC40 (Aries): 32 ranks/node, Dragonfly.
  static Machine cray_xc40(core::Rank max_ranks);

  const std::string& name() const noexcept { return name_; }
  const Topology& topology() const noexcept { return *topology_; }
  int ranks_per_node() const noexcept { return ranks_per_node_; }
  double alpha_us() const noexcept { return alpha_us_; }
  double recv_alpha_us() const noexcept { return recv_alpha_us_; }
  double beta_us_per_byte() const noexcept { return beta_us_per_byte_; }
  double gamma_us_per_hop() const noexcept { return gamma_us_per_hop_; }

  int node_of(core::Rank r) const noexcept { return static_cast<int>(r) / ranks_per_node_; }

  /// Sender-side cost of one message (microseconds).
  double send_cost_us(core::Rank from, core::Rank to, std::uint64_t wire_bytes) const {
    return alpha_us_ + gamma_us_per_hop_ * topology_->hops(node_of(from), node_of(to)) +
           beta_us_per_byte_ * static_cast<double>(wire_bytes);
  }

  /// Receiver-side cost of one message (microseconds).
  double recv_cost_us(std::uint64_t wire_bytes) const {
    return recv_alpha_us_ + beta_us_per_byte_ * static_cast<double>(wire_bytes);
  }

  /// Message size at which the bandwidth term equals the startup term —
  /// a crude "how latency-bound is this network" indicator.
  double latency_equivalent_bytes() const noexcept { return alpha_us_ / beta_us_per_byte_; }

  /// Node NIC injection rate shared by all ranks of a node (bytes/us);
  /// 0 disables the injection-bottleneck term of the simulator's stage
  /// time. Off-node traffic of all co-located ranks serializes through it.
  double injection_bytes_per_us() const noexcept { return injection_bytes_per_us_; }

private:
  std::string name_;
  std::shared_ptr<const Topology> topology_;
  int ranks_per_node_;
  double alpha_us_;
  double recv_alpha_us_;
  double beta_us_per_byte_;
  double gamma_us_per_hop_;
  double injection_bytes_per_us_;
};

}  // namespace stfw::netsim
