#include "topology.hpp"

#include <cmath>
#include <cstdlib>

#include "core/error.hpp"

namespace stfw::netsim {

using core::require;

TorusTopology::TorusTopology(std::vector<int> dims) : dims_(std::move(dims)) {
  require(!dims_.empty(), "TorusTopology: at least one dimension");
  std::int64_t n = 1;
  for (int d : dims_) {
    require(d >= 1, "TorusTopology: dimension sizes must be >= 1");
    n *= d;
    require(n <= (std::int64_t{1} << 30), "TorusTopology: too many nodes");
  }
  num_nodes_ = static_cast<int>(n);
}

TorusTopology TorusTopology::fitting(int min_nodes, int n_dims) {
  require(min_nodes >= 1 && n_dims >= 1, "TorusTopology::fitting: bad arguments");
  // Start from the ceiling of the n-th root and grow dimensions round-robin
  // until the torus is large enough.
  const int side = static_cast<int>(
      std::ceil(std::pow(static_cast<double>(min_nodes), 1.0 / n_dims) - 1e-9));
  std::vector<int> dims(static_cast<std::size_t>(n_dims), std::max(side, 1));
  auto total = [&dims] {
    std::int64_t t = 1;
    for (int d : dims) t *= d;
    return t;
  };
  std::size_t next = 0;
  while (total() < min_nodes) {
    ++dims[next];
    next = (next + 1) % dims.size();
  }
  // Shrink dimensions that are unnecessarily large (keeps near-cubic shape).
  for (auto& d : dims) {
    while (d > 1 && total() / d * (d - 1) >= min_nodes) --d;
  }
  return TorusTopology(std::move(dims));
}

int TorusTopology::hops(int a, int b) const {
  require(a >= 0 && a < num_nodes_ && b >= 0 && b < num_nodes_,
          "TorusTopology::hops: node out of range");
  int h = 0;
  for (int k : dims_) {
    const int da = a % k;
    const int db = b % k;
    const int diff = std::abs(da - db);
    h += std::min(diff, k - diff);
    a /= k;
    b /= k;
  }
  return h;
}

std::string TorusTopology::name() const {
  std::string s = std::to_string(dims_.size()) + "D torus (";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(dims_[i]);
  }
  return s + ")";
}

DragonflyTopology::DragonflyTopology(int groups, int routers_per_group, int nodes_per_router)
    : groups_(groups), routers_per_group_(routers_per_group), nodes_per_router_(nodes_per_router) {
  require(groups >= 1 && routers_per_group >= 1 && nodes_per_router >= 1,
          "DragonflyTopology: all parameters must be >= 1");
  const std::int64_t n =
      std::int64_t{groups} * routers_per_group * nodes_per_router;
  require(n <= (std::int64_t{1} << 30), "DragonflyTopology: too many nodes");
  num_nodes_ = static_cast<int>(n);
}

DragonflyTopology DragonflyTopology::fitting(int min_nodes) {
  require(min_nodes >= 1, "DragonflyTopology::fitting: bad argument");
  constexpr int kRoutersPerGroup = 96;  // Aries: 96 routers per group
  constexpr int kNodesPerRouter = 4;    // Aries: 4 nodes per router
  const int per_group = kRoutersPerGroup * kNodesPerRouter;
  const int groups = (min_nodes + per_group - 1) / per_group;
  return DragonflyTopology(std::max(groups, 1), kRoutersPerGroup, kNodesPerRouter);
}

int DragonflyTopology::hops(int a, int b) const {
  require(a >= 0 && a < num_nodes_ && b >= 0 && b < num_nodes_,
          "DragonflyTopology::hops: node out of range");
  if (a == b) return 0;
  const int router_a = a / nodes_per_router_;
  const int router_b = b / nodes_per_router_;
  if (router_a == router_b) return 1;  // via the shared router
  const int group_a = router_a / routers_per_group_;
  const int group_b = router_b / routers_per_group_;
  if (group_a == group_b) return 2;  // router -> router -> node
  // router -> gateway router -> global link -> gateway router -> router.
  return 5;
}

std::string DragonflyTopology::name() const {
  return "dragonfly (" + std::to_string(groups_) + " groups x " +
         std::to_string(routers_per_group_) + " routers x " + std::to_string(nodes_per_router_) +
         " nodes)";
}

}  // namespace stfw::netsim
