#pragma once

#include <memory>
#include <string>
#include <vector>

/// \file topology.hpp
/// Physical network topologies for the communication-time model.
///
/// The store-and-forward scheme is oblivious to the physical network (its
/// VPT is purely virtual); the physical topology enters only through the
/// per-message hop count in the cost model. We model the three machines the
/// paper evaluates on: BlueGene/Q (5D torus), Cray XK7 (3D torus, Gemini)
/// and Cray XC40 (Dragonfly, Aries), assuming minimal-path routing and no
/// contention (see DESIGN.md).

namespace stfw::netsim {

/// Abstract node-to-node hop-count model.
class Topology {
public:
  virtual ~Topology() = default;
  virtual int num_nodes() const noexcept = 0;
  /// Network hops on a minimal route between two nodes (0 if a == b).
  virtual int hops(int a, int b) const = 0;
  virtual std::string name() const = 0;
};

/// k1 x k2 x ... torus with wrap-around links; hops = sum of per-dimension
/// ring distances min(|da - db|, kd - |da - db|).
class TorusTopology final : public Topology {
public:
  explicit TorusTopology(std::vector<int> dims);

  /// Smallest near-cubic n-dimensional torus with at least `min_nodes`
  /// nodes (how torus partitions are commonly allocated).
  static TorusTopology fitting(int min_nodes, int n_dims);

  int num_nodes() const noexcept override { return num_nodes_; }
  int hops(int a, int b) const override;
  std::string name() const override;
  const std::vector<int>& dims() const noexcept { return dims_; }

private:
  std::vector<int> dims_;
  int num_nodes_ = 0;
};

/// Dragonfly: g groups of a routers, p nodes per router; all-to-all links
/// inside each group and between groups. Minimal route hop counts:
/// same router 1, same group 2, different groups up to 5
/// (router -> gateway -> global link -> gateway -> router).
class DragonflyTopology final : public Topology {
public:
  DragonflyTopology(int groups, int routers_per_group, int nodes_per_router);

  /// Aries-like proportions (a = 96 routers/group, p = 4 nodes/router)
  /// with enough groups for `min_nodes`.
  static DragonflyTopology fitting(int min_nodes);

  int num_nodes() const noexcept override { return num_nodes_; }
  int hops(int a, int b) const override;
  std::string name() const override;

  int groups() const noexcept { return groups_; }
  int routers_per_group() const noexcept { return routers_per_group_; }
  int nodes_per_router() const noexcept { return nodes_per_router_; }

private:
  int groups_;
  int routers_per_group_;
  int nodes_per_router_;
  int num_nodes_;
};

}  // namespace stfw::netsim
