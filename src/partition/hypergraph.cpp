#include "hypergraph.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace stfw::partition {

using core::require;

Hypergraph::Hypergraph(std::int32_t num_vertices, std::vector<std::int64_t> net_ptr,
                       std::vector<std::int32_t> pins, std::vector<std::int64_t> vertex_weights)
    : num_vertices_(num_vertices),
      net_ptr_(std::move(net_ptr)),
      pins_(std::move(pins)),
      vertex_weights_(std::move(vertex_weights)) {
  require(num_vertices >= 0, "Hypergraph: negative vertex count");
  require(!net_ptr_.empty() && net_ptr_.front() == 0, "Hypergraph: bad net_ptr");
  require(net_ptr_.back() == static_cast<std::int64_t>(pins_.size()),
          "Hypergraph: net_ptr must end at pin count");
  require(vertex_weights_.size() == static_cast<std::size_t>(num_vertices),
          "Hypergraph: vertex weight count mismatch");
  for (std::int32_t p : pins_)
    require(p >= 0 && p < num_vertices, "Hypergraph: pin out of range");
  total_vertex_weight_ = std::accumulate(vertex_weights_.begin(), vertex_weights_.end(),
                                         std::int64_t{0});
}

Hypergraph Hypergraph::column_net_model(const sparse::Csr& a) {
  // Net j's pins = rows with a nonzero in column j = row indices of A^T row j.
  std::vector<std::int64_t> net_ptr(static_cast<std::size_t>(a.num_cols()) + 1, 0);
  for (std::int32_t c : a.col_idx()) ++net_ptr[static_cast<std::size_t>(c) + 1];
  std::partial_sum(net_ptr.begin(), net_ptr.end(), net_ptr.begin());
  std::vector<std::int32_t> pins(static_cast<std::size_t>(a.num_nonzeros()));
  std::vector<std::int64_t> cursor(net_ptr.begin(), net_ptr.end() - 1);
  for (std::int32_t r = 0; r < a.num_rows(); ++r)
    for (std::int32_t c : a.row_cols(r))
      pins[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] = r;
  std::vector<std::int64_t> weights(static_cast<std::size_t>(a.num_rows()));
  for (std::int32_t r = 0; r < a.num_rows(); ++r)
    weights[static_cast<std::size_t>(r)] = std::max<std::int64_t>(a.row_degree(r), 1);
  return Hypergraph(a.num_rows(), std::move(net_ptr), std::move(pins), std::move(weights));
}

void Hypergraph::build_incidence() const {
  vtx_ptr_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (std::int32_t p : pins_) ++vtx_ptr_[static_cast<std::size_t>(p) + 1];
  std::partial_sum(vtx_ptr_.begin(), vtx_ptr_.end(), vtx_ptr_.begin());
  vtx_nets_.resize(pins_.size());
  std::vector<std::int64_t> cursor(vtx_ptr_.begin(), vtx_ptr_.end() - 1);
  const auto nets = num_nets();
  for (std::int32_t n = 0; n < nets; ++n)
    for (std::int32_t p : net_pins(n))
      vtx_nets_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] = n;
}

std::span<const std::int32_t> Hypergraph::vertex_nets(std::int32_t v) const {
  if (vtx_ptr_.empty()) build_incidence();
  const auto b = static_cast<std::size_t>(vtx_ptr_[static_cast<std::size_t>(v)]);
  const auto e = static_cast<std::size_t>(vtx_ptr_[static_cast<std::size_t>(v) + 1]);
  return std::span<const std::int32_t>(vtx_nets_.data() + b, e - b);
}

namespace {

template <class PerNet>
void for_each_net_span(const Hypergraph& h, std::span<const std::int32_t> parts,
                       std::int32_t num_parts, PerNet&& per_net) {
  require(parts.size() == static_cast<std::size_t>(h.num_vertices()),
          "partition metrics: parts size mismatch");
  std::vector<std::int32_t> mark(static_cast<std::size_t>(num_parts), -1);
  const std::int32_t nets = h.num_nets();
  for (std::int32_t n = 0; n < nets; ++n) {
    std::int32_t span_count = 0;
    for (std::int32_t p : h.net_pins(n)) {
      const std::int32_t part = parts[static_cast<std::size_t>(p)];
      require(part >= 0 && part < num_parts, "partition metrics: part id out of range");
      if (mark[static_cast<std::size_t>(part)] != n) {
        mark[static_cast<std::size_t>(part)] = n;
        ++span_count;
      }
    }
    per_net(span_count);
  }
}

}  // namespace

std::int64_t connectivity_cost(const Hypergraph& h, std::span<const std::int32_t> parts,
                               std::int32_t num_parts) {
  std::int64_t cost = 0;
  for_each_net_span(h, parts, num_parts, [&](std::int32_t span_count) {
    if (span_count > 1) cost += span_count - 1;
  });
  return cost;
}

std::int64_t cut_nets(const Hypergraph& h, std::span<const std::int32_t> parts,
                      std::int32_t num_parts) {
  std::int64_t cut = 0;
  for_each_net_span(h, parts, num_parts, [&](std::int32_t span_count) {
    if (span_count > 1) ++cut;
  });
  return cut;
}

double imbalance(const Hypergraph& h, std::span<const std::int32_t> parts,
                 std::int32_t num_parts) {
  require(parts.size() == static_cast<std::size_t>(h.num_vertices()),
          "imbalance: parts size mismatch");
  std::vector<std::int64_t> weight(static_cast<std::size_t>(num_parts), 0);
  for (std::int32_t v = 0; v < h.num_vertices(); ++v)
    weight[static_cast<std::size_t>(parts[static_cast<std::size_t>(v)])] += h.vertex_weight(v);
  const std::int64_t max_w = *std::max_element(weight.begin(), weight.end());
  const double avg = static_cast<double>(h.total_vertex_weight()) / num_parts;
  return avg > 0 ? static_cast<double>(max_w) / avg - 1.0 : 0.0;
}

}  // namespace stfw::partition
