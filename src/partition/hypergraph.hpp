#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

/// \file hypergraph.hpp
/// Hypergraphs and partition-quality metrics.
///
/// The paper partitions matrices row-wise with PaToH using the column-net
/// model: vertices are rows (weighted by their nonzero count), every column
/// becomes a net connecting the rows with a nonzero in it, and the
/// connectivity-minus-one cost of a partition equals the total SpMV
/// communication volume. PaToH is proprietary; partitioner.hpp implements
/// the same multilevel scheme from scratch.

namespace stfw::partition {

class Hypergraph {
public:
  Hypergraph() = default;
  Hypergraph(std::int32_t num_vertices, std::vector<std::int64_t> net_ptr,
             std::vector<std::int32_t> pins, std::vector<std::int64_t> vertex_weights);

  /// Column-net model of a CSR matrix: vertex i = row i with weight
  /// max(row nnz, 1); net j = column j connecting all rows with a nonzero
  /// in column j.
  static Hypergraph column_net_model(const sparse::Csr& a);

  std::int32_t num_vertices() const noexcept { return num_vertices_; }
  std::int32_t num_nets() const noexcept { return static_cast<std::int32_t>(net_ptr_.size()) - 1; }
  std::int64_t num_pins() const noexcept { return static_cast<std::int64_t>(pins_.size()); }

  std::span<const std::int32_t> net_pins(std::int32_t net) const {
    const auto b = static_cast<std::size_t>(net_ptr_[static_cast<std::size_t>(net)]);
    const auto e = static_cast<std::size_t>(net_ptr_[static_cast<std::size_t>(net) + 1]);
    return std::span<const std::int32_t>(pins_.data() + b, e - b);
  }

  std::int64_t vertex_weight(std::int32_t v) const {
    return vertex_weights_[static_cast<std::size_t>(v)];
  }
  std::span<const std::int64_t> vertex_weights() const noexcept { return vertex_weights_; }
  std::int64_t total_vertex_weight() const noexcept { return total_vertex_weight_; }

  /// Nets incident to vertex v (built lazily on first use).
  std::span<const std::int32_t> vertex_nets(std::int32_t v) const;

private:
  void build_incidence() const;

  std::int32_t num_vertices_ = 0;
  std::vector<std::int64_t> net_ptr_{0};
  std::vector<std::int32_t> pins_;
  std::vector<std::int64_t> vertex_weights_;
  std::int64_t total_vertex_weight_ = 0;

  // Lazily built transpose (vertex -> nets).
  mutable std::vector<std::int64_t> vtx_ptr_;
  mutable std::vector<std::int32_t> vtx_nets_;
};

/// Sum over nets of (number of parts the net spans - 1) — equals the total
/// SpMV communication volume in words under the column-net model.
std::int64_t connectivity_cost(const Hypergraph& h, std::span<const std::int32_t> parts,
                               std::int32_t num_parts);

/// Number of nets spanning more than one part.
std::int64_t cut_nets(const Hypergraph& h, std::span<const std::int32_t> parts,
                      std::int32_t num_parts);

/// max part weight / average part weight - 1 (0 = perfectly balanced).
double imbalance(const Hypergraph& h, std::span<const std::int32_t> parts,
                 std::int32_t num_parts);

}  // namespace stfw::partition
