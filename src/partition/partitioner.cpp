#include "partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <random>

#include "core/error.hpp"

namespace stfw::partition {

using core::require;

namespace {

// ---------------------------------------------------------------------------
// Bisection working state: a (sub-)hypergraph in local vertex ids.
// ---------------------------------------------------------------------------

struct LocalHg {
  std::int32_t num_vertices = 0;
  std::vector<std::int64_t> net_ptr{0};
  std::vector<std::int32_t> pins;
  std::vector<std::int64_t> vwgt;
  // vertex -> nets incidence
  std::vector<std::int64_t> vtx_ptr;
  std::vector<std::int32_t> vtx_nets;

  std::int32_t num_nets() const { return static_cast<std::int32_t>(net_ptr.size()) - 1; }
  std::span<const std::int32_t> net_pins(std::int32_t n) const {
    const auto b = static_cast<std::size_t>(net_ptr[static_cast<std::size_t>(n)]);
    const auto e = static_cast<std::size_t>(net_ptr[static_cast<std::size_t>(n) + 1]);
    return {pins.data() + b, e - b};
  }
  std::span<const std::int32_t> nets_of(std::int32_t v) const {
    const auto b = static_cast<std::size_t>(vtx_ptr[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(vtx_ptr[static_cast<std::size_t>(v) + 1]);
    return {vtx_nets.data() + b, e - b};
  }
  std::int64_t net_size(std::int32_t n) const {
    return net_ptr[static_cast<std::size_t>(n) + 1] - net_ptr[static_cast<std::size_t>(n)];
  }
  std::int64_t total_weight() const {
    return std::accumulate(vwgt.begin(), vwgt.end(), std::int64_t{0});
  }

  void build_incidence() {
    vtx_ptr.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
    for (std::int32_t p : pins) ++vtx_ptr[static_cast<std::size_t>(p) + 1];
    std::partial_sum(vtx_ptr.begin(), vtx_ptr.end(), vtx_ptr.begin());
    vtx_nets.resize(pins.size());
    std::vector<std::int64_t> cursor(vtx_ptr.begin(), vtx_ptr.end() - 1);
    for (std::int32_t n = 0; n < num_nets(); ++n)
      for (std::int32_t p : net_pins(n))
        vtx_nets[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] = n;
  }
};

LocalHg to_local(const Hypergraph& h) {
  LocalHg l;
  l.num_vertices = h.num_vertices();
  l.net_ptr.assign(1, 0);
  for (std::int32_t n = 0; n < h.num_nets(); ++n) {
    const auto p = h.net_pins(n);
    if (p.size() < 2) continue;  // single-pin nets can never be cut
    l.pins.insert(l.pins.end(), p.begin(), p.end());
    l.net_ptr.push_back(static_cast<std::int64_t>(l.pins.size()));
  }
  l.vwgt.assign(h.vertex_weights().begin(), h.vertex_weights().end());
  l.build_incidence();
  return l;
}

// ---------------------------------------------------------------------------
// Coarsening: heavy-connectivity matching.
// ---------------------------------------------------------------------------

struct CoarseResult {
  LocalHg coarse;
  std::vector<std::int32_t> fine_to_coarse;
};

CoarseResult coarsen(const LocalHg& h, std::int32_t large_net_threshold, std::mt19937_64& rng) {
  const std::int32_t n = h.num_vertices;
  std::vector<std::int32_t> match(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<double> score(static_cast<std::size_t>(n), 0.0);
  std::vector<std::int32_t> touched;
  for (std::int32_t v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    touched.clear();
    for (std::int32_t net : h.nets_of(v)) {
      const auto size = h.net_size(net);
      if (size > large_net_threshold) continue;
      const double w = 1.0 / static_cast<double>(size - 1);
      for (std::int32_t u : h.net_pins(net)) {
        if (u == v || match[static_cast<std::size_t>(u)] != -1) continue;
        if (score[static_cast<std::size_t>(u)] == 0.0) touched.push_back(u);
        score[static_cast<std::size_t>(u)] += w;
      }
    }
    std::int32_t best = -1;
    double best_score = 0.0;
    for (std::int32_t u : touched) {
      if (score[static_cast<std::size_t>(u)] > best_score) {
        best_score = score[static_cast<std::size_t>(u)];
        best = u;
      }
      score[static_cast<std::size_t>(u)] = 0.0;
    }
    if (best != -1) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  CoarseResult out;
  out.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  std::int32_t next = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    if (out.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    out.fine_to_coarse[static_cast<std::size_t>(v)] = next;
    const std::int32_t m = match[static_cast<std::size_t>(v)];
    if (m != -1) out.fine_to_coarse[static_cast<std::size_t>(m)] = next;
    ++next;
  }
  LocalHg& c = out.coarse;
  c.num_vertices = next;
  c.vwgt.assign(static_cast<std::size_t>(next), 0);
  for (std::int32_t v = 0; v < n; ++v)
    c.vwgt[static_cast<std::size_t>(out.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        h.vwgt[static_cast<std::size_t>(v)];

  // Contract nets: map pins, dedup, drop shrunken single-pin nets.
  std::vector<std::int32_t> mark(static_cast<std::size_t>(next), -1);
  c.net_ptr.assign(1, 0);
  for (std::int32_t net = 0; net < h.num_nets(); ++net) {
    const auto begin_size = c.pins.size();
    for (std::int32_t p : h.net_pins(net)) {
      const std::int32_t cp = out.fine_to_coarse[static_cast<std::size_t>(p)];
      if (mark[static_cast<std::size_t>(cp)] == net) continue;
      mark[static_cast<std::size_t>(cp)] = net;
      c.pins.push_back(cp);
    }
    if (c.pins.size() - begin_size < 2)
      c.pins.resize(begin_size);  // net fully contracted
    else
      c.net_ptr.push_back(static_cast<std::int64_t>(c.pins.size()));
  }
  c.build_incidence();
  return out;
}

// ---------------------------------------------------------------------------
// Initial bisection: greedy growing by shared-net BFS.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> greedy_grow(const LocalHg& h, std::int64_t target0,
                                      std::int32_t large_net_threshold, std::mt19937_64& rng) {
  const std::int32_t n = h.num_vertices;
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 1);
  if (n == 0) return side;
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(n), 0);
  std::int64_t w0 = 0;
  std::queue<std::int32_t> frontier;
  std::uniform_int_distribution<std::int32_t> pick(0, n - 1);
  std::int32_t scanned = 0;
  while (w0 < target0 && scanned <= n) {
    if (frontier.empty()) {
      // (Re)seed from an unvisited vertex.
      std::int32_t s = pick(rng);
      while (visited[static_cast<std::size_t>(s)]) s = (s + 1) % n;
      visited[static_cast<std::size_t>(s)] = 1;
      frontier.push(s);
    }
    const std::int32_t v = frontier.front();
    frontier.pop();
    ++scanned;
    side[static_cast<std::size_t>(v)] = 0;
    w0 += h.vwgt[static_cast<std::size_t>(v)];
    if (w0 >= target0) break;
    for (std::int32_t net : h.nets_of(v)) {
      if (h.net_size(net) > large_net_threshold) continue;
      for (std::int32_t u : h.net_pins(net)) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = 1;
          frontier.push(u);
        }
      }
    }
  }
  return side;
}

// ---------------------------------------------------------------------------
// FM refinement on a bisection.
// ---------------------------------------------------------------------------

struct HeapEntry {
  std::int64_t gain;
  std::int32_t vertex;
  bool operator<(const HeapEntry& o) const { return gain < o.gain; }  // max-heap
};

/// Classic Fiduccia-Mattheyses bisection refinement with incremental
/// (delta) gain maintenance: moving a vertex touches a net's other pins only
/// when the net crosses a 0/1 pin-count threshold on either side, so a pass
/// costs O(pins + heap traffic) instead of O(moves * adjacency^2).
class FmRefiner {
public:
  FmRefiner(const LocalHg& h, std::vector<std::uint8_t>& side) : h_(h), side_(side) {
    const auto nets = static_cast<std::size_t>(h.num_nets());
    cnt_[0].assign(nets, 0);
    cnt_[1].assign(nets, 0);
    for (std::int32_t net = 0; net < h.num_nets(); ++net)
      for (std::int32_t p : h.net_pins(net))
        ++cnt_[side[static_cast<std::size_t>(p)]][static_cast<std::size_t>(net)];
    weight_[0] = weight_[1] = 0;
    for (std::int32_t v = 0; v < h.num_vertices; ++v)
      weight_[side[static_cast<std::size_t>(v)]] += h.vwgt[static_cast<std::size_t>(v)];
    gain_.resize(static_cast<std::size_t>(h.num_vertices));
  }

  std::int64_t weight(int s) const { return weight_[s]; }

  /// Greedily move the cheapest vertices off an overweight side until both
  /// sides fit; ignores the usual positive-gain requirement.
  void rebalance(std::int64_t max0, std::int64_t max1) {
    const std::int64_t max_side[2] = {max0, max1};
    for (int s = 0; s < 2; ++s) {
      if (weight_[s] <= max_side[s]) continue;
      recompute_gains();
      std::priority_queue<HeapEntry> heap;
      for (std::int32_t v = 0; v < h_.num_vertices; ++v)
        if (side_[static_cast<std::size_t>(v)] == s)
          heap.push(HeapEntry{gain_[static_cast<std::size_t>(v)], v});
      while (weight_[s] > max_side[s] && !heap.empty()) {
        const HeapEntry e = heap.top();
        heap.pop();
        const auto v = static_cast<std::size_t>(e.vertex);
        if (side_[v] != s) continue;        // already moved
        if (e.gain != gain_[v]) {           // stale: re-key so it stays movable
          heap.push(HeapEntry{gain_[v], e.vertex});
          continue;
        }
        move(e.vertex, nullptr);
      }
    }
  }

  /// One FM pass with rollback to the best prefix; returns the improvement.
  std::int64_t pass(std::int64_t max0, std::int64_t max1) {
    recompute_gains();
    std::priority_queue<HeapEntry> heap;
    const std::int32_t n = h_.num_vertices;
    for (std::int32_t v = 0; v < n; ++v)
      heap.push(HeapEntry{gain_[static_cast<std::size_t>(v)], v});
    locked_.assign(static_cast<std::size_t>(n), 0);
    std::vector<std::int32_t> moves;
    std::int64_t cumulative = 0, best = 0;
    std::size_t best_prefix = 0;
    const std::int64_t max_side[2] = {max0, max1};

    while (!heap.empty()) {
      const HeapEntry e = heap.top();
      heap.pop();
      const auto v = static_cast<std::size_t>(e.vertex);
      if (locked_[v] || e.gain != gain_[v]) continue;  // stale entry
      const int to = 1 - side_[v];
      if (weight_[to] + h_.vwgt[v] > max_side[to]) {
        locked_[v] = 1;  // infeasible this pass
        continue;
      }
      cumulative += gain_[v];
      move(e.vertex, &heap);
      locked_[v] = 1;
      moves.push_back(e.vertex);
      if (cumulative > best) {
        best = cumulative;
        best_prefix = moves.size();
      }
      // Cut-off: far past the best prefix with no recovery in sight.
      if (cumulative < best - 64 && moves.size() > best_prefix + 512) break;
    }
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      locked_[static_cast<std::size_t>(moves[i - 1])] = 0;
      move(moves[i - 1], nullptr);
    }
    return best;
  }

private:
  void recompute_gains() {
    for (std::int32_t v = 0; v < h_.num_vertices; ++v) {
      const int s = side_[static_cast<std::size_t>(v)];
      std::int64_t g = 0;
      for (std::int32_t net : h_.nets_of(v)) {
        if (cnt_[s][static_cast<std::size_t>(net)] == 1) ++g;      // move uncuts it
        if (cnt_[1 - s][static_cast<std::size_t>(net)] == 0) --g;  // move newly cuts it
      }
      gain_[static_cast<std::size_t>(v)] = g;
    }
  }

  template <class Heap>
  void bump(std::int32_t u, std::int64_t delta, Heap* heap) {
    gain_[static_cast<std::size_t>(u)] += delta;
    if (heap != nullptr && !locked_[static_cast<std::size_t>(u)])
      heap->push(HeapEntry{gain_[static_cast<std::size_t>(u)], u});
  }

  /// Move v to the other side, maintaining pin counts and delta gains.
  /// heap may be null (rebalance/rollback paths refresh gains lazily).
  template <class Heap>
  void move(std::int32_t v, Heap* heap) {
    const auto vi = static_cast<std::size_t>(v);
    const int from = side_[vi];
    const int to = 1 - from;
    for (std::int32_t net : h_.nets_of(v)) {
      const auto ni = static_cast<std::size_t>(net);
      auto& cf = cnt_[from][ni];
      auto& ct = cnt_[to][ni];
      // Threshold rules before the counts change...
      if (ct == 0) {
        for (std::int32_t u : h_.net_pins(net))
          if (u != v) bump(u, +1, heap);
      } else if (ct == 1) {
        for (std::int32_t u : h_.net_pins(net))
          if (u != v && side_[static_cast<std::size_t>(u)] == to) {
            bump(u, -1, heap);
            break;
          }
      }
      --cf;
      ++ct;
      // ...and after.
      if (cf == 0) {
        for (std::int32_t u : h_.net_pins(net))
          if (u != v) bump(u, -1, heap);
      } else if (cf == 1) {
        for (std::int32_t u : h_.net_pins(net))
          if (u != v && side_[static_cast<std::size_t>(u)] == from) {
            bump(u, +1, heap);
            break;
          }
      }
    }
    weight_[from] -= h_.vwgt[vi];
    weight_[to] += h_.vwgt[vi];
    side_[vi] = static_cast<std::uint8_t>(to);
    gain_[vi] = -gain_[vi];
  }

  void move(std::int32_t v, std::nullptr_t) { move<std::priority_queue<HeapEntry>>(v, nullptr); }

  const LocalHg& h_;
  std::vector<std::uint8_t>& side_;
  std::vector<std::int32_t> cnt_[2];
  std::int64_t weight_[2];
  std::vector<std::int64_t> gain_;
  std::vector<std::uint8_t> locked_;
};

void fm_refine(const LocalHg& h, std::vector<std::uint8_t>& side, std::int64_t target0,
               const PartitionOptions& opts, int passes) {
  const std::int64_t total = h.total_weight();
  const std::int64_t target1 = total - target0;
  const std::int64_t heaviest =
      h.vwgt.empty() ? 0 : *std::max_element(h.vwgt.begin(), h.vwgt.end());
  // Slack must admit at least the heaviest vertex or balance can be
  // infeasible no matter what the refiner does.
  const auto slack = [&](std::int64_t t) {
    return t + std::max(static_cast<std::int64_t>(std::ceil(opts.epsilon *
                                                            static_cast<double>(t))),
                        heaviest);
  };
  FmRefiner refiner(h, side);
  refiner.rebalance(slack(target0), slack(target1));
  for (int p = 0; p < passes; ++p)
    if (refiner.pass(slack(target0), slack(target1)) <= 0) break;
}

// ---------------------------------------------------------------------------
// Multilevel bisection.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> multilevel_bisect(const LocalHg& h, std::int64_t target0,
                                            const PartitionOptions& opts, std::mt19937_64& rng,
                                            int depth = 0) {
  if (h.num_vertices <= opts.coarsen_to || depth >= 40) {
    auto side = greedy_grow(h, target0, opts.large_net_threshold, rng);
    fm_refine(h, side, target0, opts, opts.fm_passes + 2);
    return side;
  }
  CoarseResult c = coarsen(h, opts.large_net_threshold, rng);
  if (c.coarse.num_vertices > static_cast<std::int32_t>(0.95 * h.num_vertices)) {
    auto side = greedy_grow(h, target0, opts.large_net_threshold, rng);
    fm_refine(h, side, target0, opts, opts.fm_passes + 2);
    return side;
  }
  const auto coarse_side = multilevel_bisect(c.coarse, target0, opts, rng, depth + 1);
  std::vector<std::uint8_t> side(static_cast<std::size_t>(h.num_vertices));
  for (std::int32_t v = 0; v < h.num_vertices; ++v)
    side[static_cast<std::size_t>(v)] =
        coarse_side[static_cast<std::size_t>(c.fine_to_coarse[static_cast<std::size_t>(v)])];
  fm_refine(h, side, target0, opts, opts.fm_passes);
  return side;
}

// ---------------------------------------------------------------------------
// Recursive bisection driver.
// ---------------------------------------------------------------------------

void bisect_recursive(const LocalHg& h, const std::vector<std::int32_t>& global_ids,
                      std::int32_t part_lo, std::int32_t parts, const PartitionOptions& opts,
                      std::mt19937_64& rng, std::vector<std::int32_t>& labels) {
  if (parts == 1 || h.num_vertices == 0) {
    for (std::int32_t g : global_ids) labels[static_cast<std::size_t>(g)] = part_lo;
    return;
  }
  if (h.num_vertices <= parts) {
    // Fewer vertices than parts: spread one vertex per part (rest empty).
    for (std::int32_t v = 0; v < h.num_vertices; ++v)
      labels[static_cast<std::size_t>(global_ids[static_cast<std::size_t>(v)])] =
          part_lo + (v % parts);
    return;
  }
  const std::int32_t k0 = parts / 2;  // low half (parts is a power of two in
  const std::int32_t k1 = parts - k0;  // all paper runs; general k still works)
  const std::int64_t total = h.total_weight();
  const auto target0 = static_cast<std::int64_t>(
      std::llround(static_cast<double>(total) * static_cast<double>(k0) / parts));
  const auto side = multilevel_bisect(h, target0, opts, rng, 0);

  // Split into the two induced sub-hypergraphs.
  for (int s = 0; s < 2; ++s) {
    LocalHg sub;
    std::vector<std::int32_t> sub_ids;
    std::vector<std::int32_t> local_of(static_cast<std::size_t>(h.num_vertices), -1);
    for (std::int32_t v = 0; v < h.num_vertices; ++v) {
      if (side[static_cast<std::size_t>(v)] != s) continue;
      local_of[static_cast<std::size_t>(v)] = sub.num_vertices++;
      sub_ids.push_back(global_ids[static_cast<std::size_t>(v)]);
      sub.vwgt.push_back(h.vwgt[static_cast<std::size_t>(v)]);
    }
    sub.net_ptr.assign(1, 0);
    for (std::int32_t net = 0; net < h.num_nets(); ++net) {
      const auto begin_size = sub.pins.size();
      for (std::int32_t p : h.net_pins(net)) {
        const std::int32_t lp = local_of[static_cast<std::size_t>(p)];
        if (lp != -1) sub.pins.push_back(lp);
      }
      if (sub.pins.size() - begin_size < 2)
        sub.pins.resize(begin_size);
      else
        sub.net_ptr.push_back(static_cast<std::int64_t>(sub.pins.size()));
    }
    sub.build_incidence();
    bisect_recursive(sub, sub_ids, s == 0 ? part_lo : part_lo + k0, s == 0 ? k0 : k1, opts, rng,
                     labels);
  }
}

}  // namespace

std::vector<std::int32_t> partition(const Hypergraph& h, const PartitionOptions& opts) {
  require(opts.num_parts >= 1, "partition: num_parts must be >= 1");
  require(opts.epsilon >= 0.0, "partition: epsilon must be non-negative");
  std::vector<std::int32_t> labels(static_cast<std::size_t>(h.num_vertices()), 0);
  if (opts.num_parts == 1 || h.num_vertices() == 0) return labels;
  LocalHg root = to_local(h);
  std::vector<std::int32_t> ids(static_cast<std::size_t>(h.num_vertices()));
  std::iota(ids.begin(), ids.end(), 0);
  std::mt19937_64 rng(opts.seed);
  // Per-bisection slack compounds multiplicatively down the recursion;
  // split the user's epsilon across the levels so the k-way imbalance lands
  // near the requested bound (heavy indivisible vertices aside).
  PartitionOptions level_opts = opts;
  const int levels = std::max(1, static_cast<int>(std::ceil(std::log2(opts.num_parts))));
  level_opts.epsilon = std::pow(1.0 + opts.epsilon, 1.0 / levels) - 1.0;
  bisect_recursive(root, ids, 0, opts.num_parts, level_opts, rng, labels);

  // Candidate comparison: banded/meshy inputs are sometimes served best by
  // a plain contiguous split, which multilevel bisection from random seeds
  // can miss. Keep whichever labeling cuts less (both are balanced).
  // Hierarchy note: the contiguous labels are also sibling-mergeable, so
  // derive_coarser() semantics are preserved either way.
  std::vector<std::int32_t> contiguous(static_cast<std::size_t>(h.num_vertices()));
  {
    const double total = static_cast<double>(h.total_vertex_weight());
    const double per_part = total / opts.num_parts;
    double acc = 0.0;
    std::int32_t part = 0;
    for (std::int32_t v = 0; v < h.num_vertices(); ++v) {
      contiguous[static_cast<std::size_t>(v)] = part;
      acc += static_cast<double>(h.vertex_weight(v));
      if (acc >= per_part * (part + 1) && part + 1 < opts.num_parts) ++part;
    }
  }
  if (connectivity_cost(h, contiguous, opts.num_parts) <
      connectivity_cost(h, labels, opts.num_parts))
    return contiguous;
  return labels;
}

std::vector<std::int32_t> partition_rows(const sparse::Csr& a, const PartitionOptions& opts) {
  return partition(Hypergraph::column_net_model(a), opts);
}

std::vector<std::int32_t> derive_coarser(std::span<const std::int32_t> labels,
                                         std::int32_t factor) {
  require(factor >= 1, "derive_coarser: factor must be >= 1");
  std::vector<std::int32_t> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i] = labels[i] / factor;
  return out;
}

std::vector<std::int32_t> block_partition_rows(const sparse::Csr& a, std::int32_t num_parts) {
  require(num_parts >= 1, "block_partition_rows: num_parts must be >= 1");
  const double total = static_cast<double>(a.num_nonzeros());
  const double per_part = total / num_parts;
  std::vector<std::int32_t> labels(static_cast<std::size_t>(a.num_rows()));
  double acc = 0.0;
  std::int32_t part = 0;
  for (std::int32_t r = 0; r < a.num_rows(); ++r) {
    labels[static_cast<std::size_t>(r)] = part;
    acc += static_cast<double>(a.row_degree(r));
    if (acc >= per_part * (part + 1) && part + 1 < num_parts) ++part;
  }
  return labels;
}

std::vector<std::int32_t> cyclic_partition(std::int32_t num_rows, std::int32_t num_parts) {
  require(num_parts >= 1, "cyclic_partition: num_parts must be >= 1");
  std::vector<std::int32_t> labels(static_cast<std::size_t>(num_rows));
  for (std::int32_t r = 0; r < num_rows; ++r) labels[static_cast<std::size_t>(r)] = r % num_parts;
  return labels;
}

std::vector<std::int32_t> random_partition(std::int32_t num_rows, std::int32_t num_parts,
                                           std::uint64_t seed) {
  require(num_parts >= 1, "random_partition: num_parts must be >= 1");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> dist(0, num_parts - 1);
  std::vector<std::int32_t> labels(static_cast<std::size_t>(num_rows));
  for (auto& l : labels) l = dist(rng);
  return labels;
}

}  // namespace stfw::partition
