#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "partition/hypergraph.hpp"
#include "sparse/csr.hpp"

/// \file partitioner.hpp
/// Multilevel hypergraph partitioning by recursive bisection — the in-tree
/// replacement for PaToH.
///
/// Pipeline per bisection: heavy-connectivity matching coarsens the
/// hypergraph until it is small; a greedy-growing initial bisection seeds
/// the partition; boundary Fiduccia-Mattheyses refinement (with rollback to
/// the best prefix of each pass) improves it at every uncoarsening level.
/// k-way partitions come from recursive bisection with proportional weight
/// targets, so for power-of-two k the part ids form a binary tree:
/// derive_coarser() merges sibling leaves to obtain every smaller
/// power-of-two partition of the same matrix for free.

namespace stfw::partition {

struct PartitionOptions {
  std::int32_t num_parts = 2;
  /// Allowed imbalance: every part weight <= (1 + epsilon) * ideal.
  double epsilon = 0.10;
  std::uint64_t seed = 1;
  /// Stop coarsening a bisection below this many vertices.
  std::int32_t coarsen_to = 160;
  /// FM refinement passes per level.
  int fm_passes = 3;
  /// Nets with more pins than this are ignored during matching and gain
  /// updates (standard large-net treatment; they rarely change state).
  std::int32_t large_net_threshold = 256;
};

/// Partition h into opts.num_parts parts; returns part id per vertex.
std::vector<std::int32_t> partition(const Hypergraph& h, const PartitionOptions& opts);

/// Row-wise matrix partition via the column-net model (the paper's setup).
std::vector<std::int32_t> partition_rows(const sparse::Csr& a, const PartitionOptions& opts);

/// Merge sibling parts of a recursive-bisection partition: labels for
/// num_parts parts become labels for num_parts / factor parts (factor a
/// power of two dividing num_parts).
std::vector<std::int32_t> derive_coarser(std::span<const std::int32_t> labels,
                                         std::int32_t factor);

/// Contiguous row blocks balanced by row weight (nnz).
std::vector<std::int32_t> block_partition_rows(const sparse::Csr& a, std::int32_t num_parts);

/// Row r -> part r % num_parts.
std::vector<std::int32_t> cyclic_partition(std::int32_t num_rows, std::int32_t num_parts);

/// Uniformly random assignment.
std::vector<std::int32_t> random_partition(std::int32_t num_rows, std::int32_t num_parts,
                                           std::uint64_t seed);

}  // namespace stfw::partition
