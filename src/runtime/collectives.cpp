#include "collectives.hpp"

#include <cstring>

#include "core/error.hpp"

namespace stfw::runtime {

using core::require;

namespace {

constexpr int kBcastTag = -2001;
constexpr int kReduceTag = -2002;
constexpr int kAlltoallTag = -2003;
constexpr int kScanTag = -2004;

/// Rank relative to a root: vrank 0 is the root; binomial-tree edges
/// connect vrank v to v + 2^i for each bit position i above v's lowest set
/// bit.
int vrank_of(int rank, int root, int size) { return (rank - root + size) % size; }
int rank_of(int vrank, int root, int size) { return (vrank + root) % size; }

}  // namespace

std::vector<std::byte> broadcast(Comm& comm, int root, std::vector<std::byte> bytes) {
  const int size = comm.size();
  require(root >= 0 && root < size, "broadcast: root out of range");
  const int me = vrank_of(comm.rank(), root, size);
  // Receive from the parent (vrank with our lowest set bit cleared)...
  int mask = 1;
  while (mask < size) {
    if (me & mask) {
      bytes = comm.recv(rank_of(me - mask, root, size), kBcastTag).data;
      break;
    }
    mask <<= 1;
  }
  // ...then forward to children at decreasing distances.
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < size) comm.send(rank_of(me + mask, root, size), kBcastTag, bytes);
    mask >>= 1;
  }
  return bytes;
}

std::vector<double> reduce_sum(Comm& comm, int root, std::span<const double> values) {
  const int size = comm.size();
  require(root >= 0 && root < size, "reduce_sum: root out of range");
  const int me = vrank_of(comm.rank(), root, size);
  std::vector<double> acc(values.begin(), values.end());
  // Receive from children (highest bit first mirrors the bcast tree).
  for (int bit = 1; bit < size; bit <<= 1) {
    if ((me & bit) != 0) {
      // Send to parent and stop.
      std::vector<std::byte> bytes(acc.size() * sizeof(double));
      std::memcpy(bytes.data(), acc.data(), bytes.size());
      comm.send(rank_of(me - bit, root, size), kReduceTag, std::move(bytes));
      return {};
    }
    const int child = me + bit;
    if (child < size) {
      const Message m = comm.recv(rank_of(child, root, size), kReduceTag);
      require(m.data.size() == acc.size() * sizeof(double),
              "reduce_sum: contribution size mismatch");
      const auto* vals = reinterpret_cast<const double*>(m.data.data());
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += vals[i];
    }
  }
  return acc;
}

std::vector<double> allreduce_sum(Comm& comm, std::span<const double> values) {
  std::vector<double> reduced = reduce_sum(comm, 0, values);
  std::vector<std::byte> bytes;
  if (comm.rank() == 0) {
    bytes.resize(reduced.size() * sizeof(double));
    std::memcpy(bytes.data(), reduced.data(), bytes.size());
  }
  bytes = broadcast(comm, 0, std::move(bytes));
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

std::vector<std::vector<std::byte>> alltoallv(Comm& comm,
                                              std::vector<std::vector<std::byte>> send) {
  const int size = comm.size();
  require(static_cast<int>(send.size()) == size, "alltoallv: need one buffer per rank");
  std::vector<std::vector<std::byte>> recv(static_cast<std::size_t>(size));
  recv[static_cast<std::size_t>(comm.rank())] =
      std::move(send[static_cast<std::size_t>(comm.rank())]);
  for (int j = 0; j < size; ++j) {
    if (j == comm.rank() || send[static_cast<std::size_t>(j)].empty()) continue;
    comm.send(j, kAlltoallTag, std::move(send[static_cast<std::size_t>(j)]));
  }
  comm.barrier();
  for (Message& m : comm.drain(kAlltoallTag))
    recv[static_cast<std::size_t>(m.source)] = std::move(m.data);
  return recv;
}

std::int64_t exscan_sum(Comm& comm, std::int64_t value) {
  // Linear token pass — exact MPI_Exscan semantics; prefix depth is O(K)
  // but the payload is one word (fine for setup-time use).
  std::int64_t prefix = 0;
  if (comm.rank() > 0) {
    const Message m = comm.recv(comm.rank() - 1, kScanTag);
    std::memcpy(&prefix, m.data.data(), sizeof(prefix));
  }
  if (comm.rank() + 1 < comm.size()) {
    const std::int64_t next = prefix + value;
    std::vector<std::byte> bytes(sizeof(next));
    std::memcpy(bytes.data(), &next, sizeof(next));
    comm.send(comm.rank() + 1, kScanTag, std::move(bytes));
  }
  return prefix;
}

}  // namespace stfw::runtime
