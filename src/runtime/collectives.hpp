#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/comm.hpp"

/// \file collectives.hpp
/// Collective operations over the threaded runtime.
///
/// The store-and-forward exchange needs only point-to-point messages and
/// barriers, but real applications mix it with collectives, and several MPI
/// collectives are the latency-reduction prior art the paper discusses
/// (Section 7). These are honest binomial-tree implementations over
/// Comm::send/recv with O(lg K) rounds — the same latency bound the VPT
/// hypercube mode achieves for irregular traffic. All are collective calls:
/// every rank of the cluster must participate.

namespace stfw::runtime {

/// Root's bytes are distributed to every rank (binomial tree, lg K rounds).
std::vector<std::byte> broadcast(Comm& comm, int root, std::vector<std::byte> bytes);

/// Element-wise sum of every rank's vector, delivered to root (others get
/// an empty vector). All contributions must have equal length.
std::vector<double> reduce_sum(Comm& comm, int root, std::span<const double> values);

/// reduce_sum followed by broadcast: everyone gets the sum.
std::vector<double> allreduce_sum(Comm& comm, std::span<const double> values);

/// Personalized all-to-all: send[j] goes to rank j; returns what every rank
/// sent to us, indexed by source. Irregular sizes allowed (the MPI_Alltoallv
/// shape). Empty vectors are skipped on the wire.
std::vector<std::vector<std::byte>> alltoallv(Comm& comm,
                                              std::vector<std::vector<std::byte>> send);

/// Exclusive prefix sum of one value per rank (rank 0 receives 0).
std::int64_t exscan_sum(Comm& comm, std::int64_t value);

}  // namespace stfw::runtime
