#include "comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "core/error.hpp"

namespace stfw::runtime {

using core::require;

int Comm::size() const noexcept { return cluster_->size(); }

void Comm::send(int dest, int tag, std::vector<std::byte> data) {
  require(dest >= 0 && dest < cluster_->size(), "Comm::send: destination out of range");
  cluster_->post(dest, Message{rank_, tag, std::move(data)});
}

Message Comm::recv(int source, int tag) { return cluster_->blocking_recv(rank_, source, tag); }

std::vector<Message> Comm::drain(int tag) { return cluster_->drain(rank_, tag); }

bool Comm::probe(int source, int tag) { return cluster_->probe(rank_, source, tag); }

void Comm::barrier() { cluster_->barrier_wait(); }

std::vector<std::vector<std::byte>> Comm::allgather(std::vector<std::byte> mine) {
  constexpr int kGatherTag = -1000;
  constexpr int kBcastTag = -1001;
  const int n = size();
  std::vector<std::vector<std::byte>> all(static_cast<std::size_t>(n));
  if (rank_ == 0) {
    all[0] = std::move(mine);
    for (int i = 1; i < n; ++i) {
      Message m = recv(kAnySource, kGatherTag);
      all[static_cast<std::size_t>(m.source)] = std::move(m.data);
    }
    // Broadcast back as a single concatenated buffer with a length header.
    std::vector<std::byte> packed;
    for (const auto& part : all) {
      const auto len = static_cast<std::uint64_t>(part.size());
      const auto* p = reinterpret_cast<const std::byte*>(&len);
      packed.insert(packed.end(), p, p + sizeof(len));
      packed.insert(packed.end(), part.begin(), part.end());
    }
    for (int i = 1; i < n; ++i) send(i, kBcastTag, packed);
  } else {
    send(0, kGatherTag, std::move(mine));
    Message m = recv(0, kBcastTag);
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) {
      std::uint64_t len = 0;
      std::copy_n(m.data.begin() + static_cast<std::ptrdiff_t>(pos), sizeof(len),
                  reinterpret_cast<std::byte*>(&len));
      pos += sizeof(len);
      all[static_cast<std::size_t>(i)].assign(
          m.data.begin() + static_cast<std::ptrdiff_t>(pos),
          m.data.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
  }
  return all;
}

Cluster::Cluster(int num_ranks) : num_ranks_(num_ranks) {
  require(num_ranks >= 1, "Cluster: need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

Cluster::~Cluster() = default;

void Cluster::run(const std::function<void(Comm&)>& fn) {
  for (const auto& mb : mailboxes_)
    require(mb->queue.empty(), "Cluster::run: mailbox not empty from previous run");

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
        Comm comm(*this, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort_all();  // unblock peers stuck in recv() or barrier()
      }
    });
  }
  for (auto& t : threads) t.join();
  const bool had_error =
      std::any_of(errors.begin(), errors.end(), [](const std::exception_ptr& e) { return !!e; });
  if (had_error) {
    // Discard messages stranded by the abort so the cluster stays reusable.
    for (const auto& mb : mailboxes_) {
      std::lock_guard<std::mutex> lock(mb->mu);
      mb->queue.clear();
    }
    aborted_.store(false);
    barrier_count_ = 0;
    for (const auto& e : errors)
      if (e) std::rethrow_exception(e);
  }
}

void Cluster::abort_all() {
  aborted_.store(true);
  for (const auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

void Cluster::post(int dest, Message msg) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

namespace {

bool matches(const Message& m, int source, int tag) {
  return m.tag == tag && (source == kAnySource || m.source == source);
}

}  // namespace

Message Cluster::blocking_recv(int me, int source, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  std::unique_lock<std::mutex> lock(mb.mu);
  for (;;) {
    auto it = std::find_if(mb.queue.begin(), mb.queue.end(),
                           [&](const Message& m) { return matches(m, source, tag); });
    if (it != mb.queue.end()) {
      Message out = std::move(*it);
      mb.queue.erase(it);
      return out;
    }
    if (aborted_.load()) core::fail("Comm::recv: cluster aborted by a peer exception");
    mb.cv.wait(lock);
  }
}

std::vector<Message> Cluster::drain(int me, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  std::vector<Message> out;
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    auto it = mb.queue.begin();
    while (it != mb.queue.end()) {
      if (it->tag == tag) {
        out.push_back(std::move(*it));
        it = mb.queue.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Message& a, const Message& b) { return a.source < b.source; });
  return out;
}

bool Cluster::probe(int me, int source, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  std::lock_guard<std::mutex> lock(mb.mu);
  return std::any_of(mb.queue.begin(), mb.queue.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

void Cluster::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_count_ == num_ranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [this, gen] { return barrier_generation_ != gen || aborted_.load(); });
  if (barrier_generation_ == gen && aborted_.load()) {
    --barrier_count_;
    core::fail("Comm::barrier: cluster aborted by a peer exception");
  }
}

}  // namespace stfw::runtime
