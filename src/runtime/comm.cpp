#include "comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "core/env.hpp"
#include "core/error.hpp"
#include "fault/fault_injector.hpp"

namespace stfw::runtime {

using core::MutexLock;
using core::require;

namespace {

long long ms_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(verify::verify_now() - t)
      .count();
}

}  // namespace

int Comm::size() const noexcept { return cluster_->size(); }

Comm::Comm(Cluster& cluster, int rank)
    : cluster_(&cluster),
      rank_(rank),
      seq_out_(static_cast<std::size_t>(cluster.size()), 0) {}

void Comm::send(int dest, int tag, std::vector<std::byte> data) {
  require(dest >= 0 && dest < cluster_->size(), "Comm::send: destination out of range");
  Message msg{rank_, tag, std::move(data)};
  // Stamped unconditionally (one increment); only the lock-free mailbox's
  // ticket gate reads it. Stamp and publication are separated by no
  // blocking call, so a gap in a mailbox's ticket sequence is always
  // transient: the stamping sender is mid-post and about to publish.
  msg.ticket = seq_out_[static_cast<std::size_t>(dest)]++;
  cluster_->post(dest, std::move(msg));
}

Message Comm::recv(int source, int tag) {
  return cluster_->blocking_recv(rank_, source, tag, Deadline::never());
}

Message Comm::recv(int source, int tag, Deadline deadline) {
  return cluster_->blocking_recv(rank_, source, tag, deadline);
}

std::vector<Message> Comm::drain(int tag) { return cluster_->drain(rank_, tag); }

std::vector<Message> Comm::recv_from_each(std::span<const int> sources, int tag,
                                          Deadline deadline) {
  return cluster_->recv_from_each(rank_, sources, tag, deadline);
}

bool Comm::probe(int source, int tag) { return cluster_->probe(rank_, source, tag); }

bool Comm::wait_message(Deadline deadline) { return cluster_->wait_message(rank_, deadline); }

void Comm::barrier() { cluster_->barrier_wait(rank_, Deadline::never()); }

void Comm::barrier(Deadline deadline) { cluster_->barrier_wait(rank_, deadline); }

void Comm::flush_delayed() { cluster_->flush_delayed(); }

fault::FaultInjector* Comm::fault_injector() const noexcept {
  return cluster_->fault_injector().get();
}

const Membership& Comm::membership() const noexcept { return cluster_->membership(); }

std::vector<std::vector<std::byte>> Comm::allgather(std::vector<std::byte> mine) {
  return allgather(std::move(mine), Deadline::never());
}

std::vector<std::vector<std::byte>> Comm::allgather(std::vector<std::byte> mine,
                                                    Deadline deadline) {
  constexpr int kGatherTag = -1000;
  constexpr int kBcastTag = -1001;
  const int n = size();
  std::vector<std::vector<std::byte>> all(static_cast<std::size_t>(n));
  if (rank_ == 0) {
    all[0] = std::move(mine);
    for (int i = 1; i < n; ++i) {
      Message m = recv(kAnySource, kGatherTag, deadline);
      all[static_cast<std::size_t>(m.source)] = std::move(m.data);
    }
    // Broadcast back as a single concatenated buffer with a length header.
    std::vector<std::byte> packed;
    for (const auto& part : all) {
      const auto len = static_cast<std::uint64_t>(part.size());
      const auto* p = reinterpret_cast<const std::byte*>(&len);
      packed.insert(packed.end(), p, p + sizeof(len));
      packed.insert(packed.end(), part.begin(), part.end());
    }
    for (int i = 1; i < n; ++i) send(i, kBcastTag, packed);
  } else {
    send(0, kGatherTag, std::move(mine));
    Message m = recv(0, kBcastTag, deadline);
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) {
      std::uint64_t len = 0;
      std::copy_n(m.data.begin() + static_cast<std::ptrdiff_t>(pos), sizeof(len),
                  reinterpret_cast<std::byte*>(&len));
      pos += sizeof(len);
      all[static_cast<std::size_t>(i)].assign(
          m.data.begin() + static_cast<std::ptrdiff_t>(pos),
          m.data.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
  }
  return all;
}

Cluster::Cluster(int num_ranks)
    : num_ranks_(num_ranks),
      lockfree_enabled_(core::env_flag("STFW_LOCKFREE_MAILBOX", true)),
      ring_capacity_(std::max<std::uint64_t>(core::env_u64("STFW_MAILBOX_RING", 256), 1)) {
  require(num_ranks >= 1, "Cluster: need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  block_state_.resize(static_cast<std::size_t>(num_ranks));
  membership_.reset(num_ranks);
}

Cluster::~Cluster() = default;

void Cluster::set_fault_injector(std::shared_ptr<fault::FaultInjector> injector) {
  injector_ = std::move(injector);
}

void Cluster::run(const std::function<void(Comm&)>& fn) {
  // Lock-free delivery is decided once per run, quiescently, before any
  // rank thread exists: an injector needs the locked queue's semantics
  // (reorder-to-front, the monitor's delayed pump, pristine duplicates), so
  // its presence forces the locked path for the whole run.
  lockfree_run_ = lockfree_enabled_ && injector_ == nullptr;
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& mb = mailboxes_[static_cast<std::size_t>(r)];
    // No rank threads are alive here, but the previous run's monitor could
    // in principle have raced this check before TSA made the lock mandatory.
    MutexLock lock(mb->mu);
    // Surface anything a previous run left in the lock-free channels so the
    // emptiness precondition below judges the whole mailbox, then (re)arm
    // the per-run lock-free state. Rings are rebuilt only when the capacity
    // knob changed; ticket gates restart with the fresh Comm counters.
    drain_lockfree_raw(*mb);
    if (lockfree_run_ && (!mb->ring || mb->ring->capacity() != ring_capacity_))
      mb->ring = std::make_unique<MpscRing<Message>>(ring_capacity_);
    mb->next_ticket.assign(static_cast<std::size_t>(num_ranks_), 0);
    mb->held.assign(static_cast<std::size_t>(num_ranks_), {});
    mb->consumer_waiting.store(false, std::memory_order_relaxed);
    if (!membership_.alive(r)) {
      // A rank that died last run may have collected late retransmits after
      // its mailbox was discarded; they belong to the finished run.
      STFW_VERIFY_WRITE(&mb->queue, "Cluster::run dead-rank mailbox clear");
      mb->queue.clear();
      continue;
    }
    STFW_VERIFY_READ(&mb->queue, "Cluster::run mailbox-empty precondition");
    require(mb->queue.empty(), "Cluster::run: mailbox not empty from previous run");
  }
  membership_.reset(num_ranks_);  // every run starts with all ranks alive

  {
    MutexLock lock(block_mu_);
    STFW_VERIFY_WRITE(block_state_.data(), "Cluster::run block_state reset");
    for (auto& b : block_state_) b = BlockInfo{};
    deadlock_victim_ = -1;
    deadlock_report_.clear();
  }
  deadlocked_.store(false);
  last_progress_ = progress_.load();
  last_progress_time_ = verify::verify_now();

  const bool need_monitor = watchdog_window_.count() > 0 || injector_ != nullptr;
  STFW_VERIFY_HOOK(region_begin(num_ranks_ + (need_monitor ? 1 : 0)));
  if (need_monitor) {
    monitor_stop_.store(false);
    monitor_ = core::Thread([this] {
      STFW_VERIFY_HOOK(thread_begin(num_ranks_, /*ticker=*/true));
      monitor_loop();
      STFW_VERIFY_HOOK(thread_end());
    });
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  std::vector<core::Thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back(core::Thread([this, r, &fn, &errors] {
      STFW_VERIFY_HOOK(thread_begin(r, /*ticker=*/false));
      try {
        Comm comm(*this, r);
        fn(comm);
      } catch (const fault::RankCrashedError&) {
        // A survivable injected crash: this rank is dead, the cluster is
        // not. Absorb the error (Membership::failed() records the death)
        // and let the surviving ranks finish in degraded mode.
        rank_died(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort_all();  // unblock peers stuck in recv() or barrier()
      }
      set_block_state(r, BlockInfo::Kind::kDone);
      STFW_VERIFY_HOOK(thread_end());
    }));
  }
  for (auto& t : threads) t.join();

  if (need_monitor) {
    monitor_stop_.store(true);
    monitor_.join();
  }
  STFW_VERIFY_HOOK(region_end());
  {
    // Delayed messages still pending when the run ends were "in flight" at
    // program exit; they are dropped, keeping the cluster clean for reuse.
    MutexLock lock(delayed_mu_);
    delayed_.clear();
  }

  const bool had_error =
      std::any_of(errors.begin(), errors.end(), [](const std::exception_ptr& e) { return !!e; });
  if (!had_error) return;

  // Discard messages stranded by the abort so the cluster stays reusable
  // (lock-free channels included — a producer may have published right up
  // to the moment its rank unwound).
  for (const auto& mb : mailboxes_) {
    MutexLock lock(mb->mu);
    STFW_VERIFY_WRITE(&mb->queue, "Cluster::run stranded-mailbox clear");
    drain_lockfree_raw(*mb);
    mb->queue.clear();
  }
  aborted_.store(false);
  deadlocked_.store(false);
  {
    // Stragglers that saw the abort flag already decremented their slot on
    // the way out; this rearms the barrier for the next run.
    MutexLock lock(barrier_mu_);
    STFW_VERIFY_WRITE(&barrier_count_, "Cluster::run barrier rearm");
    barrier_count_ = 0;
  }

  // Partition into primary errors and secondary ClusterAbortedError noise
  // (ranks merely unblocked by a peer's failure).
  std::vector<std::size_t> primaries;
  for (std::size_t r = 0; r < errors.size(); ++r) {
    if (!errors[r]) continue;
    try {
      std::rethrow_exception(errors[r]);
    } catch (const core::ClusterAbortedError&) {
      continue;
    } catch (...) {
      primaries.push_back(r);
    }
  }
  if (primaries.empty()) {
    // Every failure was abort-induced (should not happen, but never silently
    // swallow): surface the first one.
    for (const auto& e : errors)
      if (e) std::rethrow_exception(e);
  }
  if (primaries.size() == 1) std::rethrow_exception(errors[primaries[0]]);

  std::vector<core::MultiRankError::RankFailure> failures;
  failures.reserve(primaries.size());
  for (const std::size_t r : primaries) {
    std::string what = "unknown exception";
    try {
      std::rethrow_exception(errors[r]);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    failures.push_back({static_cast<int>(r), std::move(what)});
  }
  throw core::MultiRankError(std::move(failures));
}

void Cluster::abort_all() {
  aborted_.store(true);
  for (const auto& mb : mailboxes_) {
    MutexLock lock(mb->mu);
    mb->cv.notify_all();
  }
  {
    MutexLock lock(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

void Cluster::rank_died(int me) {
  membership_.mark_failed(me);
  {
    // Whatever is queued for the dead rank will never be read; drop it so
    // the cluster stays reusable. Late posts racing this clear are caught
    // by the next run()'s dead-mailbox sweep.
    Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
    MutexLock lock(mb.mu);
    STFW_VERIFY_WRITE(&mb.queue, "Cluster::rank_died mailbox clear");
    // The dying rank is its own mailbox's single consumer, so draining the
    // ring from here is safe; crashes only occur on injected (locked-mode)
    // runs today, but the sweep keeps this path mode-agnostic.
    drain_lockfree_raw(mb);
    mb.queue.clear();
  }
  {
    // A barrier the survivors have already fully entered must release now:
    // the dead rank will never arrive to complete it.
    MutexLock lock(barrier_mu_);
    maybe_release_barrier();
  }
  // Wake every blocked thread so it re-evaluates against the new membership
  // (the resilient exchange polls the epoch at each wakeup). A death is
  // progress, not silence — it must not trip the deadlock watchdog.
  progress_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& mb : mailboxes_) {
    MutexLock lock(mb->mu);
    mb->cv.notify_all();
  }
}

void Cluster::set_block_state(int me, BlockInfo::Kind kind, int source, int tag) {
  MutexLock lock(block_mu_);
  STFW_VERIFY_WRITE(block_state_.data(), "Cluster::set_block_state");
  BlockInfo& b = block_state_[static_cast<std::size_t>(me)];
  b.kind = kind;
  b.source = source;
  b.tag = tag;
  b.since = verify::verify_now();
}

void Cluster::throw_if_torn_down(int me, const char* op) {
  if (deadlocked_.load() || aborted_.load()) throw_torn_down(me, op);
}

void Cluster::throw_torn_down(int me, const char* op) {
  if (deadlocked_.load()) {
    std::string report;
    bool victim = false;
    {
      MutexLock lock(block_mu_);
      victim = (deadlock_victim_ == me);
      report = deadlock_report_;
    }
    if (victim)
      throw core::DeadlockError(me, watchdog_window_.count(), report);
    throw core::ClusterAbortedError(std::string("Comm::") + op +
                                    ": cluster aborted by the deadlock watchdog");
  }
  throw core::ClusterAbortedError(std::string("Comm::") + op +
                                  ": cluster aborted by a peer exception");
}

// --- fault-injected posting -------------------------------------------------

void Cluster::post(int dest, Message msg) {
  if (wire_tap_) wire_tap_(msg.source, dest, msg.tag, msg.data);
  if (injector_ != nullptr) {
    const fault::MessageDecision d =
        injector_->on_post(msg.source, dest, msg.tag, msg.data.size());
    if (d.drop) return;
    if (d.duplicate) post_raw(dest, msg);  // extra pristine copy, in order
    if (d.truncate_to < msg.data.size()) msg.data.resize(d.truncate_to);
    if (d.delay.count() > 0) {
      MutexLock lock(delayed_mu_);
      STFW_VERIFY_WRITE(&delayed_, "Cluster::post delayed enqueue");
      delayed_.push_back(DelayedMessage{verify::verify_now() + d.delay, dest, std::move(msg)});
      return;
    }
    post_raw(dest, std::move(msg), d.reorder);
    return;
  }
  post_raw(dest, std::move(msg));
}

void Cluster::post_raw(int dest, Message msg, bool to_front) {
  // A message for a dead rank is dropped at the post site, like a packet
  // into an unplugged NIC. any_failed() keeps the healthy hot path at one
  // relaxed atomic load. Also covers the monitor's delayed-message pump.
  if (membership_.any_failed() && !membership_.alive(dest)) return;
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
#if STFW_VERIFY_ENABLED
  // Send edge: a scheduler branch point, and the id ties the matching recv's
  // happens-before join back to this exact enqueue. Fired before the ring
  // publication too, so the race detector sees the same send->recv
  // happens-before edge on both delivery channels.
  if (verify::Hooks* h = verify::hooks())
    msg.verify_id = h->mailbox_send(msg.source, dest, msg.tag);
#endif
  if (lockfree_run_) {
    STFW_ASSERT(!to_front, "Cluster::post_raw: reorder on the lock-free path");
    if (!mb.ring->try_push(std::move(msg))) {
      // Ring full: locked overflow channel. Arrival order across the two
      // channels is irrelevant — the consumer's ticket gate restores
      // per-source order during harvest.
      MutexLock lock(mb.mu);
      STFW_VERIFY_WRITE(&mb.overflow, "Cluster::post_raw overflow enqueue");
      mb.overflow.push_back(std::move(msg));
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    // Dekker handshake with the consumer's harvest-then-wait step: the
    // publication store and this load are both seq_cst, so either this
    // producer sees the flag (and wakes the consumer under its mutex — the
    // lock serializes against the consumer's flag-set/harvest critical
    // section, so the notify cannot land in the gap before cv.wait), or
    // the consumer's post-flag harvest sees the publication.
    if (mb.consumer_waiting.load(std::memory_order_seq_cst)) {
      MutexLock lock(mb.mu);
      mb.cv.notify_all();
    }
    return;
  }
  {
    MutexLock lock(mb.mu);
    STFW_VERIFY_WRITE(&mb.queue, "Cluster::post_raw enqueue");
    if (to_front)
      mb.queue.push_front(std::move(msg));
    else
      mb.queue.push_back(std::move(msg));
  }
  progress_.fetch_add(1, std::memory_order_relaxed);
  mb.cv.notify_all();
}

// --- lock-free delivery: consumer-side harvest ------------------------------

void Cluster::gate_deliver(Mailbox& mb, Message msg) {
  STFW_ASSERT(msg.source >= 0 && msg.source < num_ranks_,
              "Cluster::gate_deliver: message without a valid source");
  const auto src = static_cast<std::size_t>(msg.source);
  if (msg.ticket != mb.next_ticket[src]) {
    // Out of order (it beat an earlier message still mid-publication or
    // parked in the other channel); park until the gap closes. A stamped
    // ticket is always published — Comm::send never blocks between stamping
    // and posting — so the gap closes on a later harvest at the latest.
    mb.held[src].push_back(std::move(msg));
    return;
  }
  STFW_VERIFY_WRITE(&mb.queue, "Cluster::gate_deliver release");
  ++mb.next_ticket[src];
  mb.queue.push_back(std::move(msg));
  auto& held = mb.held[src];
  bool released = true;
  while (released && !held.empty()) {
    released = false;
    for (auto it = held.begin(); it != held.end(); ++it) {
      if (it->ticket == mb.next_ticket[src]) {
        ++mb.next_ticket[src];
        mb.queue.push_back(std::move(*it));
        held.erase(it);
        released = true;
        break;
      }
    }
  }
}

void Cluster::harvest(Mailbox& mb) {
  if (!lockfree_run_ || mb.ring == nullptr) return;
  Message m;
  while (mb.ring->try_pop(m)) gate_deliver(mb, std::move(m));
  while (!mb.overflow.empty()) {
    Message o = std::move(mb.overflow.front());
    mb.overflow.pop_front();
    gate_deliver(mb, std::move(o));
  }
}

void Cluster::drain_lockfree_raw(Mailbox& mb) {
  if (mb.ring != nullptr) {
    Message m;
    while (mb.ring->try_pop(m)) mb.queue.push_back(std::move(m));
  }
  while (!mb.overflow.empty()) {
    mb.queue.push_back(std::move(mb.overflow.front()));
    mb.overflow.pop_front();
  }
  for (auto& from_src : mb.held) {
    for (Message& m : from_src) mb.queue.push_back(std::move(m));
    from_src.clear();
  }
}

void Cluster::flush_delayed() {
  std::vector<DelayedMessage> due;
  {
    MutexLock lock(delayed_mu_);
    STFW_VERIFY_WRITE(&delayed_, "Cluster::flush_delayed drain");
    due.swap(delayed_);
  }
  for (DelayedMessage& d : due) post_raw(d.dest, std::move(d.msg));
}

// --- blocking primitives ----------------------------------------------------

namespace {

bool matches(const Message& m, int source, int tag) {
  return m.tag == tag && (source == kAnySource || m.source == source);
}

}  // namespace

Message Cluster::blocking_recv(int me, int source, int tag, Deadline deadline) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  const auto entered = verify::verify_now();
  bool registered = false;
  MutexLock lock(mb.mu);
  for (;;) {
    harvest(mb);
    STFW_VERIFY_READ(&mb.queue, "Cluster::blocking_recv scan");
    auto it = std::find_if(mb.queue.begin(), mb.queue.end(),
                           [&](const Message& m) { return matches(m, source, tag); });
    if (it != mb.queue.end()) {
      Message out = std::move(*it);
      STFW_VERIFY_WRITE(&mb.queue, "Cluster::blocking_recv dequeue");
      mb.queue.erase(it);
      STFW_VERIFY_HOOK(mailbox_recv(me, out.source, out.tag, out.verify_id));
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      progress_.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
    throw_if_torn_down(me, "recv");
    if (deadline.expired()) {
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      throw core::TimeoutError("recv", me, source, tag, ms_since(entered),
                               "no matching message arrived before the deadline");
    }
    if (!registered) {
      set_block_state(me, BlockInfo::Kind::kRecv, source, tag);
      registered = true;
    }
    if (lockfree_run_) {
      // Advertise, then take one last look (see post_raw's Dekker comment):
      // a producer that published before seeing the flag is caught by this
      // harvest; one that saw it notifies under mu.
      mb.consumer_waiting.store(true, std::memory_order_seq_cst);
      const std::size_t before = mb.queue.size();
      harvest(mb);
      if (mb.queue.size() != before) {
        mb.consumer_waiting.store(false, std::memory_order_relaxed);
        continue;
      }
    }
    if (deadline.is_never())
      mb.cv.wait(lock);
    else
      mb.cv.wait_until(lock, deadline.at);
    if (lockfree_run_) mb.consumer_waiting.store(false, std::memory_order_relaxed);
  }
}

std::vector<Message> Cluster::recv_from_each(int me, std::span<const int> sources, int tag,
                                             Deadline deadline) {
  std::vector<int> want(sources.begin(), sources.end());
  std::sort(want.begin(), want.end());
  require(std::adjacent_find(want.begin(), want.end()) == want.end(),
          "Comm::recv_from_each: duplicate source");
  std::vector<Message> out(want.size());
  std::vector<bool> have(want.size(), false);
  std::size_t remaining = want.size();
  if (remaining == 0) return out;

  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  const auto entered = verify::verify_now();
  bool registered = false;
  MutexLock lock(mb.mu);
  for (;;) {
    harvest(mb);
    STFW_VERIFY_READ(&mb.queue, "Cluster::recv_from_each scan");
    auto it = mb.queue.begin();
    while (it != mb.queue.end() && remaining > 0) {
      bool take = false;
      std::size_t idx = 0;
      if (it->tag == tag) {
        const auto w = std::lower_bound(want.begin(), want.end(), it->source);
        if (w != want.end() && *w == it->source) {
          idx = static_cast<std::size_t>(w - want.begin());
          // Only the first queued match per source: a second same-tag
          // message from it belongs to a later wait and keeps its order.
          take = !have[idx];
        }
      }
      if (!take) {
        ++it;
        continue;
      }
      STFW_VERIFY_WRITE(&mb.queue, "Cluster::recv_from_each dequeue");
      STFW_VERIFY_HOOK(mailbox_recv(me, it->source, it->tag, it->verify_id));
      out[idx] = std::move(*it);
      have[idx] = true;
      --remaining;
      it = mb.queue.erase(it);
      progress_.fetch_add(1, std::memory_order_relaxed);
    }
    if (remaining == 0) {
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      return out;
    }
    throw_if_torn_down(me, "recv_from_each");
    if (membership_.any_failed()) {
      // A dead awaited source can never satisfy the dependency; fail fast
      // with a named error instead of sleeping out the full deadline.
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (have[i] || membership_.alive(want[i])) continue;
        if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
        throw core::TimeoutError("recv_from_each", me, want[i], tag, ms_since(entered),
                                 "awaited source died before sending its frame");
      }
    }
    if (deadline.expired()) {
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      std::string missing;
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (have[i]) continue;
        if (!missing.empty()) missing += ", ";
        missing += std::to_string(want[i]);
      }
      int first_missing = kAnySource;
      for (std::size_t i = 0; i < want.size(); ++i)
        if (!have[i]) {
          first_missing = want[i];
          break;
        }
      throw core::TimeoutError("recv_from_each", me, first_missing, tag, ms_since(entered),
                               "no frame arrived from source(s) " + missing +
                                   " before the deadline");
    }
    if (!registered) {
      set_block_state(me, BlockInfo::Kind::kRecv, kAnySource, tag);
      registered = true;
    }
    if (lockfree_run_) {
      mb.consumer_waiting.store(true, std::memory_order_seq_cst);
      const std::size_t before = mb.queue.size();
      harvest(mb);
      if (mb.queue.size() != before) {
        mb.consumer_waiting.store(false, std::memory_order_relaxed);
        continue;
      }
    }
    if (deadline.is_never())
      mb.cv.wait(lock);
    else
      mb.cv.wait_until(lock, deadline.at);
    if (lockfree_run_) mb.consumer_waiting.store(false, std::memory_order_relaxed);
  }
}

std::vector<Message> Cluster::drain(int me, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  std::vector<Message> out;
  {
    MutexLock lock(mb.mu);
    harvest(mb);
    STFW_VERIFY_WRITE(&mb.queue, "Cluster::drain sweep");
    auto it = mb.queue.begin();
    while (it != mb.queue.end()) {
      if (it->tag == tag) {
        STFW_VERIFY_HOOK(mailbox_recv(me, it->source, it->tag, it->verify_id));
        out.push_back(std::move(*it));
        it = mb.queue.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Message& a, const Message& b) { return a.source < b.source; });
  return out;
}

bool Cluster::probe(int me, int source, int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  MutexLock lock(mb.mu);
  harvest(mb);
  STFW_VERIFY_READ(&mb.queue, "Cluster::probe scan");
  return std::any_of(mb.queue.begin(), mb.queue.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

bool Cluster::wait_message(int me, Deadline deadline) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(me)];
  bool registered = false;
  MutexLock lock(mb.mu);
  for (;;) {
    harvest(mb);
    STFW_VERIFY_READ(&mb.queue, "Cluster::wait_message poll");
    if (!mb.queue.empty()) {
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      return true;
    }
    throw_if_torn_down(me, "wait_message");
    if (deadline.expired()) {
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      return false;
    }
    if (!registered) {
      set_block_state(me, BlockInfo::Kind::kWait, kAnySource, 0);
      registered = true;
    }
    if (lockfree_run_) {
      mb.consumer_waiting.store(true, std::memory_order_seq_cst);
      const std::size_t before = mb.queue.size();
      harvest(mb);
      if (mb.queue.size() != before) {
        mb.consumer_waiting.store(false, std::memory_order_relaxed);
        continue;
      }
    }
    if (deadline.is_never())
      mb.cv.wait(lock);
    else
      mb.cv.wait_until(lock, deadline.at);
    if (lockfree_run_) mb.consumer_waiting.store(false, std::memory_order_relaxed);
  }
}

void Cluster::maybe_release_barrier() {
  STFW_VERIFY_READ(&barrier_count_, "Cluster::maybe_release_barrier check");
  if (barrier_count_ == 0) return;
  // The release target is the number of ranks that can still arrive. A dead
  // rank cannot be parked inside the barrier (crash sites are stage
  // boundaries, never blocking primitives), so its arrival is simply never.
  if (barrier_count_ < membership_.alive_count()) return;
  barrier_count_ = 0;
  STFW_VERIFY_WRITE(&barrier_generation_, "Cluster::barrier_wait release");
  ++barrier_generation_;
  progress_.fetch_add(1, std::memory_order_relaxed);
  barrier_cv_.notify_all();
}

void Cluster::barrier_wait(int me, Deadline deadline) {
  const auto entered = verify::verify_now();
  bool registered = false;
  MutexLock lock(barrier_mu_);
  const std::uint64_t gen = barrier_generation_;
  STFW_VERIFY_WRITE(&barrier_count_, "Cluster::barrier_wait arrive");
  ++barrier_count_;
  maybe_release_barrier();
  if (barrier_generation_ != gen) return;  // our arrival completed it
  for (;;) {
    STFW_VERIFY_READ(&barrier_generation_, "Cluster::barrier_wait generation check");
    if (barrier_generation_ != gen) {
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      return;
    }
    if (deadlocked_.load() || aborted_.load()) {
      STFW_VERIFY_WRITE(&barrier_count_, "Cluster::barrier_wait abort retreat");
      --barrier_count_;
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      // Release before throwing: throw_torn_down takes block_mu_, and
      // holding barrier_mu_ across it would nest the two (documented order:
      // barrier/mailbox mutex first, block_mu_ second — but never both
      // across a throw). [[noreturn]] keeps the TSA path terminal.
      lock.unlock();
      throw_torn_down(me, "barrier");
    }
    if (deadline.expired()) {
      --barrier_count_;
      if (registered) set_block_state(me, BlockInfo::Kind::kRunning);
      throw core::TimeoutError("barrier", me, -1, 0, ms_since(entered),
                               "not all ranks reached the barrier before the deadline");
    }
    if (!registered) {
      set_block_state(me, BlockInfo::Kind::kBarrier);
      registered = true;
    }
    if (deadline.is_never())
      barrier_cv_.wait(lock);
    else
      barrier_cv_.wait_until(lock, deadline.at);
  }
}

// --- monitor thread: watchdog + delayed-message pump ------------------------

void Cluster::monitor_loop() {
  std::uint32_t seen_epoch = membership_.epoch();
  while (!monitor_stop_.load()) {
    const auto now = verify::verify_now();

    // Heartbeat piggyback: the watchdog thread doubles as the failure
    // detector's wake-up path. When the membership epoch advances, every
    // blocked survivor is notified so it re-snapshots membership promptly
    // instead of sleeping out its full timeout against a dead peer.
    const std::uint32_t ep = membership_.epoch();
    if (ep != seen_epoch) {
      seen_epoch = ep;
      for (const auto& mb : mailboxes_) {
        MutexLock lock(mb->mu);
        mb->cv.notify_all();
      }
      MutexLock lock(barrier_mu_);
      maybe_release_barrier();
    }

    // Pump injector-delayed messages whose release time has passed.
    std::vector<DelayedMessage> due;
    {
      MutexLock lock(delayed_mu_);
      STFW_VERIFY_WRITE(&delayed_, "Cluster::monitor_loop delayed pump");
      auto it = delayed_.begin();
      while (it != delayed_.end()) {
        if (it->release <= now) {
          due.push_back(std::move(*it));
          it = delayed_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (DelayedMessage& d : due) post_raw(d.dest, std::move(d.msg));

    if (watchdog_window_.count() > 0 && !deadlocked_.load() && !aborted_.load())
      check_deadlock(now);

#if STFW_VERIFY_ENABLED
    if (verify::Hooks* h = verify::hooks()) {
      // Under the scheduler a tick advances the logical clock and yields;
      // it only gets scheduled when no rank thread can run, which makes
      // watchdog firings a deterministic function of the schedule.
      h->tick_sleep(std::chrono::milliseconds(1));
      continue;
    }
#endif
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Cluster::check_deadlock(std::chrono::steady_clock::time_point now) {
  const std::uint64_t p = progress_.load();
  if (p != last_progress_) {
    last_progress_ = p;
    last_progress_time_ = now;
    return;
  }
  if (now - last_progress_time_ < watchdog_window_) return;

  {
    // Analyze and publish the verdict under block_mu_, but notify the
    // condition variables only after releasing it: blocking primitives
    // acquire their mailbox/barrier mutex first and block_mu_ second, so
    // holding block_mu_ while taking those mutexes would invert the order.
    MutexLock lock(block_mu_);
    STFW_VERIFY_READ(block_state_.data(), "Cluster::check_deadlock scan");
    int victim = -1;
    bool all_blocked = true;
    bool any_active = false;
    for (int r = 0; r < num_ranks_; ++r) {
      const BlockInfo& b = block_state_[static_cast<std::size_t>(r)];
      if (b.kind == BlockInfo::Kind::kDone) continue;
      any_active = true;
      const bool blocked = b.kind == BlockInfo::Kind::kRecv ||
                           b.kind == BlockInfo::Kind::kBarrier ||
                           b.kind == BlockInfo::Kind::kWait;
      if (!blocked || now - b.since < watchdog_window_) {
        all_blocked = false;
        break;
      }
      if (victim < 0) victim = r;
    }
    if (!any_active || !all_blocked || victim < 0) return;

    std::string report = "no message delivered for " +
                         std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                                            now - last_progress_time_)
                                            .count()) +
                         "ms;";
    for (int r = 0; r < num_ranks_; ++r) {
      const BlockInfo& b = block_state_[static_cast<std::size_t>(r)];
      report += " rank " + std::to_string(r) + ": ";
      switch (b.kind) {
        case BlockInfo::Kind::kRecv:
          report += "blocked in recv(source=" +
                    (b.source == kAnySource ? std::string("any")
                                            : std::to_string(b.source)) +
                    ", tag=" + std::to_string(b.tag) + ")";
          break;
        case BlockInfo::Kind::kBarrier:
          report += "blocked in barrier";
          break;
        case BlockInfo::Kind::kWait:
          report += "blocked in wait_message";
          break;
        case BlockInfo::Kind::kDone:
          report += "finished";
          break;
        case BlockInfo::Kind::kRunning:
          report += "running";
          break;
      }
      report += (r + 1 < num_ranks_) ? ";" : "";
    }
    deadlock_victim_ = victim;
    deadlock_report_ = std::move(report);
    deadlocked_.store(true);
  }

  // Wake everyone; the victim throws DeadlockError, peers ClusterAborted.
  for (const auto& mb : mailboxes_) {
    MutexLock mlock(mb->mu);
    mb->cv.notify_all();
  }
  {
    MutexLock block(barrier_mu_);
    barrier_cv_.notify_all();
  }
}

}  // namespace stfw::runtime
