#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "core/verify_hooks.hpp"
#include "membership.hpp"
#include "mpsc_ring.hpp"

/// \file comm.hpp
/// In-process message-passing runtime.
///
/// The paper's algorithm is written against MPI; this environment has no MPI
/// installation, so the runtime substitutes an in-process cluster: each rank
/// is a thread, each rank owns a tagged mailbox, sends are buffered
/// (enqueue-and-return, like MPI_Bsend), receives block until a matching
/// message arrives. Semantics relied upon by the store-and-forward code:
///
///  * point-to-point ordering: two messages from the same source with the
///    same tag arrive in send order;
///  * barrier(): collective; all sends issued before a rank enters the
///    barrier are visible to drain() calls made after it returns.
///
/// This is deliberately a small, honest subset of MPI — enough to run
/// Algorithm 1 exactly as each MPI rank would run it.
///
/// Resilience plumbing (docs/fault_model.md):
///
///  * every blocking primitive has a deadline overload that throws
///    core::TimeoutError instead of hanging, naming the peer waited for;
///  * an optional per-cluster watchdog detects the all-ranks-blocked
///    deadlock and reports which rank/tag each thread is stuck on;
///  * a fault::FaultInjector can be plugged in to drop, delay, duplicate,
///    reorder or truncate messages at the post site — the adversary the
///    resilient exchange mode is tested against. Point-to-point ordering
///    and the barrier visibility guarantee above hold only for traffic the
///    injector leaves alone.

namespace stfw::fault {
class FaultInjector;
}

namespace stfw::runtime {

inline constexpr int kAnySource = -1;

struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> data;
  /// Per-(source, dest) send sequence number, stamped by Comm::send. The
  /// lock-free mailbox delivers ring and overflow arrivals through a
  /// per-source ticket gate keyed on this, restoring the point-to-point
  /// ordering guarantee no matter which channel a message raced through.
  std::uint64_t ticket = 0;
#if STFW_VERIFY_ENABLED
  std::uint64_t verify_id = 0;  // stfw-verify message identity (send edge id)
#endif
};

/// Absolute time budget for a blocking primitive. Deadline::never() blocks
/// indefinitely (the pre-fault-layer behaviour). Time is read through
/// verify::verify_now() so that under the stfw-verify scheduler deadlines
/// follow the deterministic logical clock; in normal builds that is exactly
/// steady_clock::now().
struct Deadline {
  std::chrono::steady_clock::time_point at = std::chrono::steady_clock::time_point::max();

  static Deadline never() noexcept { return Deadline{}; }
  static Deadline in(std::chrono::milliseconds d) {
    return Deadline{verify::verify_now() + d};
  }
  bool is_never() const noexcept {
    return at == std::chrono::steady_clock::time_point::max();
  }
  bool expired() const noexcept {
    return !is_never() && verify::verify_now() >= at;
  }
};

class Cluster;

/// Per-rank communicator handle. Valid only inside Cluster::run's callback,
/// on the thread that received it.
class Comm {
public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered send: enqueues `data` into dest's mailbox and returns. Subject
  /// to the cluster's fault injector, if any.
  void send(int dest, int tag, std::vector<std::byte> data);

  /// Blocking receive of the first message matching (source, tag);
  /// source may be kAnySource. The deadline overload throws
  /// core::TimeoutError when it expires first.
  Message recv(int source, int tag);
  Message recv(int source, int tag, Deadline deadline);

  /// All messages with `tag` currently in the mailbox, sorted by source
  /// (then arrival order). Non-blocking; complete after a barrier that
  /// orders it after the sends of interest.
  std::vector<Message> drain(int tag);

  /// Blocks until one message with `tag` from *every* rank in `sources` is
  /// queued, then returns them in ascending-source order (the first queued
  /// match per source; later same-tag messages stay queued in send order).
  /// This is the stage-aware demultiplexer of the dependency-driven
  /// exchange: a rank advances the moment its per-stage inbound dependency
  /// set is satisfied, while frames tagged for later stages wait in the
  /// mailbox untouched. Throws core::TimeoutError naming a missing source
  /// when the deadline expires first, or as soon as an awaited source is
  /// dead (it can never satisfy the dependency).
  std::vector<Message> recv_from_each(std::span<const int> sources, int tag,
                                      Deadline deadline = Deadline::never());

  /// True iff a message matching (source, tag) is queued.
  bool probe(int source, int tag);

  /// Blocks until any message is queued in this rank's mailbox or the
  /// deadline expires; returns whether the mailbox is non-empty. Poll
  /// primitive for protocols that multiplex several tags (the resilient
  /// exchange's event loop).
  bool wait_message(Deadline deadline);

  /// Collective synchronization over all ranks of the cluster. The deadline
  /// overload throws core::TimeoutError when the barrier does not complete
  /// in time (some peer failed to arrive).
  void barrier();
  void barrier(Deadline deadline);

  /// Convenience collective: every rank contributes `mine`; returns all
  /// contributions indexed by rank. Built on send/recv via rank 0. The
  /// deadline applies to every internal receive.
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine);
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine,
                                                Deadline deadline);

  /// Immediately delivers every fault-injector-delayed message to its
  /// mailbox. Protocol epilogues call this (between barriers) so no injected
  /// delay can leak a message into a later exchange. No-op without faults.
  void flush_delayed();

  /// The cluster's fault injector, or nullptr. Exchange implementations call
  /// its stage sites (stall/crash injection) from here.
  fault::FaultInjector* fault_injector() const noexcept;

  /// The cluster's membership state (who is alive, at which epoch). The
  /// degraded exchange path polls Membership::epoch() to detect rank deaths
  /// mid-protocol.
  [[nodiscard]] const Membership& membership() const noexcept;

private:
  friend class Cluster;
  Comm(Cluster& cluster, int rank);

  Cluster* cluster_;
  int rank_;
  /// Next ticket per destination (Message::ticket). A Comm lives on exactly
  /// one rank thread, so plain counters suffice; they start at zero every
  /// run because the Comm itself is constructed fresh inside run().
  std::vector<std::uint64_t> seq_out_;
};

/// A fixed-size set of ranks executing a common function on private threads.
class Cluster {
public:
  explicit Cluster(int num_ranks);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const noexcept { return num_ranks_; }

  /// Run fn(comm) on every rank; returns when all ranks finish.
  ///
  /// Error aggregation: secondary failures (ClusterAbortedError — a rank
  /// unblocked because a peer threw) are discarded. If exactly one primary
  /// error remains it is rethrown with its original type; if several ranks
  /// failed independently, a core::MultiRankError summarizing every failing
  /// rank is thrown instead. May be called repeatedly; mailboxes must be
  /// empty in between (checked). Messages still delayed by the fault
  /// injector when run() returns are dropped.
  void run(const std::function<void(Comm&)>& fn);

  /// Plug in (or remove, with nullptr) a fault injector. Must not be called
  /// while run() is active.
  void set_fault_injector(std::shared_ptr<fault::FaultInjector> injector);
  const std::shared_ptr<fault::FaultInjector>& fault_injector() const noexcept {
    return injector_;
  }

  /// Arm the deadlock watchdog: a monitor thread observes the cluster during
  /// run() and, when every active rank has been blocked in recv / barrier /
  /// wait_message with no message delivered for at least `window`, aborts
  /// the run with a core::DeadlockError reporting where each rank is stuck
  /// (thrown on the lowest blocked rank; peers see ClusterAbortedError).
  /// window == 0 disables (default). Must not be called during run().
  void set_watchdog(std::chrono::milliseconds window) { watchdog_window_ = window; }

  /// Membership state: all ranks alive at the start of every run; a rank
  /// that throws fault::RankCrashedError is marked dead (epoch bump) and the
  /// run continues on the survivors. Membership::failed() after run() tells
  /// the caller who died.
  [[nodiscard]] const Membership& membership() const noexcept { return membership_; }

  /// Enable/disable the lock-free MPSC mailbox fast path (default: the
  /// STFW_LOCKFREE_MAILBOX flag, on when unset). Even when enabled it is
  /// only used on runs without a fault injector — injected reorder/delay/
  /// duplicate need the locked queue's semantics. Must not be called during
  /// run().
  void set_lockfree_mailbox(bool enabled) { lockfree_enabled_ = enabled; }
  /// Ring capacity per mailbox for the lock-free path (default: the
  /// STFW_MAILBOX_RING variable, 256 when unset; 0 is clamped to 1). Tiny
  /// capacities are valid — overflow falls back to the locked channel — and
  /// are how the tests force channel interleaving. Must not be called
  /// during run().
  void set_mailbox_ring_capacity(std::size_t slots) { ring_capacity_ = slots; }
  /// Whether the current/last run() used the lock-free delivery path.
  [[nodiscard]] bool lockfree_active() const noexcept { return lockfree_run_; }

  /// Test-support observability: called on the sender's thread for every
  /// post *before* the fault injector rules on it, so the tap sees dropped
  /// transmissions and their retransmits alike (how the byte-identity
  /// regression pins retransmitted frames to the originals). The callback
  /// must be thread-safe — posts from different ranks invoke it
  /// concurrently — and must copy the bytes if it keeps them. nullptr
  /// removes the tap. Must not be called during run().
  void set_wire_tap(
      std::function<void(int source, int dest, int tag, std::span<const std::byte>)> tap) {
    wire_tap_ = std::move(tap);
  }

private:
  friend class Comm;

  struct Mailbox {
    core::Mutex mu;
    core::CondVar cv;
    std::deque<Message> queue STFW_GUARDED_BY(mu);

    // Lock-free fast path (fault-free runs only; see lockfree_run_). The
    // ring and the waiting flag are touched without mu — the ring carries
    // its own synchronization and the flag is the Dekker handshake of the
    // sleep protocol. Everything else stays under mu: the overflow channel
    // (ring-full fallback), and the per-source ticket gate the consumer
    // runs while harvesting (next_ticket/held), which restores per-source
    // FIFO regardless of which channel a message raced through.
    std::unique_ptr<MpscRing<Message>> ring;
    std::atomic<bool> consumer_waiting{false};
    std::deque<Message> overflow STFW_GUARDED_BY(mu);
    std::vector<std::uint64_t> next_ticket STFW_GUARDED_BY(mu);
    std::vector<std::vector<Message>> held STFW_GUARDED_BY(mu);
  };

  /// What a rank's thread is doing, as seen by the watchdog.
  struct BlockInfo {
    enum class Kind : std::uint8_t { kRunning, kRecv, kBarrier, kWait, kDone };
    Kind kind = Kind::kRunning;
    int source = 0;
    int tag = 0;
    std::chrono::steady_clock::time_point since{};
  };

  struct DelayedMessage {
    std::chrono::steady_clock::time_point release;
    int dest;
    Message msg;
  };

  void post(int dest, Message msg);
  void post_raw(int dest, Message msg, bool to_front = false);
  Message blocking_recv(int me, int source, int tag, Deadline deadline);
  std::vector<Message> recv_from_each(int me, std::span<const int> sources, int tag,
                                      Deadline deadline);
  std::vector<Message> drain(int me, int tag);
  bool probe(int me, int source, int tag);
  bool wait_message(int me, Deadline deadline);
  void barrier_wait(int me, Deadline deadline);
  void abort_all();
  void flush_delayed();

  /// Absorbs a survivable crash on rank `me`'s own unwind path: marks it
  /// dead, discards its mailbox, releases any barrier now satisfied by the
  /// survivors alone, and wakes every blocked thread to re-evaluate.
  void rank_died(int me);
  /// Release the barrier if every *alive* rank has arrived. Dead ranks never
  /// arrive, so the release target is the live count, re-evaluated on every
  /// arrival and on every death.
  void maybe_release_barrier() STFW_REQUIRES(barrier_mu_);

  /// Consumer-side: move every published ring/overflow message through the
  /// per-source ticket gate into mb.queue. Only the mailbox owner (or the
  /// main thread while no rank threads run) may call it — it pops the
  /// single-consumer ring. No-op unless this run is lock-free.
  void harvest(Mailbox& mb) STFW_REQUIRES(mb.mu);
  /// Ticket gate: release `msg` into mb.queue if it is the next expected
  /// ticket from its source (plus any held successors), else park it.
  void gate_deliver(Mailbox& mb, Message msg) STFW_REQUIRES(mb.mu);
  /// Dump ring + overflow + held into mb.queue with no ordering gate; for
  /// run-boundary sweeps (emptiness checks, dead-rank/stranded clears)
  /// where only "is anything left" matters.
  void drain_lockfree_raw(Mailbox& mb) STFW_REQUIRES(mb.mu);

  void set_block_state(int me, BlockInfo::Kind kind, int source = 0, int tag = 0)
      STFW_EXCLUDES(block_mu_);
  /// Checks deadlock/abort flags from inside a blocking primitive; throws
  /// DeadlockError on the designated victim rank, ClusterAbortedError
  /// otherwise. Returns normally when neither flag is set.
  void throw_if_torn_down(int me, const char* op) STFW_EXCLUDES(block_mu_);
  /// The throwing tail of throw_if_torn_down, for call sites that already
  /// know a teardown flag is set (lets TSA see the path as terminal).
  [[noreturn]] void throw_torn_down(int me, const char* op) STFW_EXCLUDES(block_mu_);

  void monitor_loop();
  void check_deadlock(std::chrono::steady_clock::time_point now);

  int num_ranks_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Membership membership_;

  // Lock-free mailbox mode. lockfree_run_ is decided quiescently at the top
  // of every run() (enabled && no injector) before any rank thread exists,
  // and never changes mid-run — rank threads read it data-race-free via the
  // thread-creation happens-before edge.
  bool lockfree_enabled_;
  std::size_t ring_capacity_;
  bool lockfree_run_ = false;

  // Reusable two-phase barrier.
  core::Mutex barrier_mu_;
  core::CondVar barrier_cv_;
  int barrier_count_ STFW_GUARDED_BY(barrier_mu_) = 0;
  std::uint64_t barrier_generation_ STFW_GUARDED_BY(barrier_mu_) = 0;

  // Fault layer.
  std::shared_ptr<fault::FaultInjector> injector_;
  // Set quiescently (before run()), only read during it — no guard needed.
  std::function<void(int, int, int, std::span<const std::byte>)> wire_tap_;
  core::Mutex delayed_mu_;
  std::vector<DelayedMessage> delayed_ STFW_GUARDED_BY(delayed_mu_);

  // Watchdog state.
  std::chrono::milliseconds watchdog_window_{0};
  core::Mutex block_mu_;
  std::vector<BlockInfo> block_state_ STFW_GUARDED_BY(block_mu_);
  std::atomic<std::uint64_t> progress_{0};  // deliveries + barrier completions
  std::atomic<bool> deadlocked_{false};
  int deadlock_victim_ STFW_GUARDED_BY(block_mu_) = -1;
  std::string deadlock_report_ STFW_GUARDED_BY(block_mu_);
  // Private to the monitor thread between run() boundaries; unannotated.
  std::uint64_t last_progress_ = 0;
  std::chrono::steady_clock::time_point last_progress_time_{};

  // Monitor thread (watchdog + delayed-message pump); alive only during run().
  core::Thread monitor_;
  std::atomic<bool> monitor_stop_{false};
};

}  // namespace stfw::runtime
