#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

/// \file comm.hpp
/// In-process message-passing runtime.
///
/// The paper's algorithm is written against MPI; this environment has no MPI
/// installation, so the runtime substitutes an in-process cluster: each rank
/// is a thread, each rank owns a tagged mailbox, sends are buffered
/// (enqueue-and-return, like MPI_Bsend), receives block until a matching
/// message arrives. Semantics relied upon by the store-and-forward code:
///
///  * point-to-point ordering: two messages from the same source with the
///    same tag arrive in send order;
///  * barrier(): collective; all sends issued before a rank enters the
///    barrier are visible to drain() calls made after it returns.
///
/// This is deliberately a small, honest subset of MPI — enough to run
/// Algorithm 1 exactly as each MPI rank would run it.

namespace stfw::runtime {

inline constexpr int kAnySource = -1;

struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> data;
};

class Cluster;

/// Per-rank communicator handle. Valid only inside Cluster::run's callback,
/// on the thread that received it.
class Comm {
public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered send: enqueues `data` into dest's mailbox and returns.
  void send(int dest, int tag, std::vector<std::byte> data);

  /// Blocking receive of the first message matching (source, tag);
  /// source may be kAnySource.
  Message recv(int source, int tag);

  /// All messages with `tag` currently in the mailbox, sorted by source
  /// (then arrival order). Non-blocking; complete after a barrier that
  /// orders it after the sends of interest.
  std::vector<Message> drain(int tag);

  /// True iff a message matching (source, tag) is queued.
  bool probe(int source, int tag);

  /// Collective synchronization over all ranks of the cluster.
  void barrier();

  /// Convenience collective: every rank contributes `mine`; returns all
  /// contributions indexed by rank. Built on send/recv via rank 0.
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine);

private:
  friend class Cluster;
  Comm(Cluster& cluster, int rank) : cluster_(&cluster), rank_(rank) {}

  Cluster* cluster_;
  int rank_;
};

/// A fixed-size set of ranks executing a common function on private threads.
class Cluster {
public:
  explicit Cluster(int num_ranks);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const noexcept { return num_ranks_; }

  /// Run fn(comm) on every rank; returns when all ranks finish. If any rank
  /// throws, the first exception (by rank) is rethrown after all threads
  /// join. May be called repeatedly; mailboxes must be empty in between
  /// (checked).
  void run(const std::function<void(Comm&)>& fn);

private:
  friend class Comm;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void post(int dest, Message msg);
  Message blocking_recv(int me, int source, int tag);
  std::vector<Message> drain(int me, int tag);
  bool probe(int me, int source, int tag);
  void barrier_wait();
  void abort_all();

  int num_ranks_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Reusable two-phase barrier.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace stfw::runtime
