#pragma once

#include <cstddef>
#include <vector>

#include "core/exchange_plan.hpp"

/// \file exchange_plan.hpp
/// Runtime handle for a frozen exchange schedule (core::ExchangePlanLayout)
/// plus the pooled mutable scratch its replays reuse: the raw inbound frames
/// of each stage are parked here so every planned exchange on the same
/// pattern recycles the same allocations instead of rebuilding a
/// StfwRankState, a PayloadArena and per-submessage vectors.
///
/// A plan is produced by StfwCommunicator::plan() (collective) or recorded
/// transparently by the communicator's plan cache on the first exchange()
/// with a new pattern. It is valid for the Vpt and rank it was built for and
/// is not thread-safe: one plan belongs to one rank's communicator.

namespace stfw {
class StfwCommunicator;
}

namespace stfw::runtime {

class ExchangePlan {
public:
  explicit ExchangePlan(core::ExchangePlanLayout layout) : layout_(std::move(layout)) {
    in_raw_.resize(layout_.in_frames.size());
    for (std::size_t s = 0; s < in_raw_.size(); ++s)
      in_raw_[s].resize(layout_.in_frames[s].size());
  }

  const core::ExchangePlanLayout& layout() const noexcept { return layout_; }
  const core::PatternSignature& signature() const noexcept { return layout_.signature; }

private:
  friend class stfw::StfwCommunicator;

  core::ExchangePlanLayout layout_;
  // in_raw_[stage][frame]: the raw wire bytes received in the most recent
  // replay. Buffers arrive by ownership transfer from Comm and keep their
  // capacity across replays.
  std::vector<std::vector<std::vector<std::byte>>> in_raw_;
};

}  // namespace stfw::runtime
