#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/exchange_plan.hpp"

/// \file exchange_plan.hpp
/// Runtime handle for a frozen exchange schedule (core::ExchangePlanLayout)
/// plus the pooled mutable scratch its replays reuse: the raw inbound frames
/// of each stage are parked here so every planned exchange on the same
/// pattern recycles the same allocations instead of rebuilding a
/// StfwRankState, a PayloadArena and per-submessage vectors.
///
/// A plan is produced by StfwCommunicator::plan() (collective) or recorded
/// transparently by the communicator's plan cache on the first exchange()
/// with a new pattern. It is valid for the Vpt and rank it was built for and
/// is not thread-safe: one plan belongs to one rank's communicator.

namespace stfw {
class StfwCommunicator;
}

namespace stfw::runtime {

/// One delivered message of a zero-copy replay: `bytes` aliases either the
/// plan's parked inbound frame buffers or (for self-sends) the caller's own
/// payload buffer — no copy is made. Views stay valid until the next
/// exchange on the same plan begins, the plan is destroyed, or (self-sends)
/// the caller's payload buffer goes away, whichever comes first. See
/// docs/performance.md, "Zero-copy replay and lock-free delivery".
struct InboundView {
  core::Rank source = -1;
  std::span<const std::byte> bytes;
};

class ExchangePlan {
public:
  /// Audits the layout's slot tables before anything replays them: the
  /// gather path memcpys blindly through the frozen offsets, so a corrupt
  /// layout must die here as core::ValidationError ("plan-layout"), never as
  /// an out-of-bounds read from caller buffers.
  explicit ExchangePlan(core::ExchangePlanLayout layout) : layout_(std::move(layout)) {
    core::validate_plan_layout(layout_);
    in_raw_.resize(layout_.in_frames.size());
    for (std::size_t s = 0; s < in_raw_.size(); ++s)
      in_raw_[s].resize(layout_.in_frames[s].size());
  }

  const core::ExchangePlanLayout& layout() const noexcept { return layout_; }
  const core::PatternSignature& signature() const noexcept { return layout_.signature; }

private:
  friend class stfw::StfwCommunicator;

  core::ExchangePlanLayout layout_;
  // in_raw_[stage][frame]: the raw wire bytes received in the most recent
  // replay. Buffers arrive by ownership transfer from Comm; the buffer a new
  // frame displaces is released into the communicator's pool, so steady-state
  // replays cycle a fixed working set of allocations.
  std::vector<std::vector<std::vector<std::byte>>> in_raw_;
  // Scratch behind the span exchange_views() returns. Cleared at replay
  // entry, so after a drift/validation throw the previous views are gone
  // rather than dangling into recycled buffers.
  std::vector<InboundView> views_;
};

}  // namespace stfw::runtime
