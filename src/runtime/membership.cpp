#include "membership.hpp"

namespace stfw::runtime {

void Membership::reset(int num_ranks) {
  core::MutexLock lock(mu_);
  alive_.assign(static_cast<std::size_t>(num_ranks), 1);
  any_failed_.store(false, std::memory_order_release);
  // No epoch bump: reviving everyone is the baseline state of a run, and
  // keeping the counter monotonic means a frame stamped in an old degraded
  // run can never claim to be newer than the fresh view.
}

bool Membership::alive(int rank) const {
  core::MutexLock lock(mu_);
  return rank >= 0 && rank < static_cast<int>(alive_.size()) &&
         alive_[static_cast<std::size_t>(rank)] != 0;
}

int Membership::alive_count() const {
  core::MutexLock lock(mu_);
  int n = 0;
  for (const std::uint8_t a : alive_) n += a != 0;
  return n;
}

MembershipSnapshot Membership::snapshot() const {
  core::MutexLock lock(mu_);
  MembershipSnapshot s;
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.alive = alive_;
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r] == 0) continue;
    ++s.alive_count;
    if (s.lowest_alive < 0) s.lowest_alive = static_cast<int>(r);
  }
  return s;
}

std::vector<std::int32_t> Membership::failed() const {
  core::MutexLock lock(mu_);
  std::vector<std::int32_t> out;
  for (std::size_t r = 0; r < alive_.size(); ++r)
    if (alive_[r] == 0) out.push_back(static_cast<std::int32_t>(r));
  return out;
}

bool Membership::mark_failed(int rank) {
  core::MutexLock lock(mu_);
  if (rank < 0 || rank >= static_cast<int>(alive_.size())) return false;
  auto& a = alive_[static_cast<std::size_t>(rank)];
  if (a == 0) return false;
  a = 0;
  any_failed_.store(true, std::memory_order_release);
  // Release-publish after the bitmap write: pollers that see the new epoch
  // and snapshot afterwards observe at least this death.
  epoch_.fetch_add(1, std::memory_order_release);
  return true;
}

}  // namespace stfw::runtime
