#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

/// \file membership.hpp
/// Cluster membership state for rank-failure survival.
///
/// A Cluster starts every run with all ranks alive at some **membership
/// epoch**. When a rank dies (a survivable injected crash — see
/// fault::RankCrashedError), the runtime marks it failed, which bumps the
/// epoch. Every epoch bump is a new, strictly newer view of who is alive;
/// frames on the resilient wire carry the sender's epoch so receivers can
/// detect decisions made against a stale view (docs/fault_model.md,
/// "Membership epochs and degraded mode").
///
/// The epoch itself is a lock-free atomic so hot paths can poll "did
/// membership change?" without taking a lock; the alive bitmap is
/// mutex-guarded and snapshot under the lock. The epoch is published with
/// release ordering *after* the bitmap update, so a reader that observes a
/// new epoch and then snapshots is guaranteed to see the corresponding (or a
/// newer) bitmap.

namespace stfw::runtime {

/// A consistent view of membership at one epoch.
struct MembershipSnapshot {
  std::uint32_t epoch = 0;
  std::vector<std::uint8_t> alive;  // indexed by rank; 1 = alive
  int alive_count = 0;
  int lowest_alive = -1;  // degraded settlement root; -1 if everyone is dead

  [[nodiscard]] bool is_alive(int rank) const {
    return rank >= 0 && rank < static_cast<int>(alive.size()) && alive[static_cast<std::size_t>(rank)] != 0;
  }
};

class Membership {
public:
  Membership() = default;
  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  /// Revive all ranks for a new run. The epoch is monotonic across runs —
  /// it never rewinds — so frames stranded from a previous degraded run can
  /// never masquerade as current.
  void reset(int num_ranks);

  /// Current membership version; cheap enough to poll per loop iteration.
  [[nodiscard]] std::uint32_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Lock-free fast path for the post hot path: false means every rank is
  /// alive and per-destination liveness checks can be skipped entirely.
  [[nodiscard]] bool any_failed() const noexcept {
    return any_failed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool alive(int rank) const;
  [[nodiscard]] int alive_count() const;
  [[nodiscard]] MembershipSnapshot snapshot() const;

  /// Ranks marked failed since the last reset, ascending.
  [[nodiscard]] std::vector<std::int32_t> failed() const;

  /// Mark `rank` dead and bump the epoch. Returns false (and leaves the
  /// epoch alone) if it was already dead. Thread-safe; called from the
  /// dying rank's own unwind path.
  bool mark_failed(int rank);

private:
  mutable core::Mutex mu_;
  std::vector<std::uint8_t> alive_ STFW_GUARDED_BY(mu_);
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<bool> any_failed_{false};
};

}  // namespace stfw::runtime
