#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

/// \file mpsc_ring.hpp
/// Bounded lock-free multi-producer single-consumer ring.
///
/// The delivery fast path of the in-process cluster (comm.hpp): on a
/// fault-free run every Cluster::post publishes into the destination
/// mailbox's ring instead of taking its mutex, and the owning rank thread
/// pops without any lock at all. The design is the classic bounded MPMC
/// queue of sequence-stamped slots (Vyukov), specialised to one consumer:
///
///  * each slot carries an atomic sequence stamp; position `pos`'s slot is
///    `pos % capacity`, its stamp `2 * pos` when free and `2 * pos + 1` once
///    published. The parity bit is what makes the stamp unambiguous at ANY
///    capacity: the textbook stamps (free == pos, published == pos + 1)
///    collide at capacity 1, where "published at pos" and "free at pos + 1"
///    name the same slot with the same value and a second producer would
///    overwrite the unconsumed head;
///  * a producer claims `pos` by CASing the shared enqueue cursor while the
///    stamp reads 2 * pos, writes the value, then *publishes* by storing
///    2 * pos + 1;
///  * the single consumer reads slot `pos` when its stamp is 2 * pos + 1,
///    takes the value, and recycles the slot by storing 2 * (pos +
///    capacity) — the free stamp of the slot's next lap. The dequeue cursor
///    is a plain integer — only the owner thread touches it.
///
/// Memory ordering: the publication store and the consumer's sequence load
/// are seq_cst rather than the textbook release/acquire. That buys the
/// store-load ordering the mailbox's sleep protocol needs (Dekker pattern:
/// producer "publish then read consumer_waiting", consumer "set
/// consumer_waiting then re-poll the ring" — see Cluster::post_raw and the
/// harvest-before-wait step in comm.cpp); with plain release/acquire both
/// sides could order their load before the other's store and a wakeup
/// would be lost. The cost is one fence on each side, still far below a
/// mutex round trip.
///
/// A full ring (or a slot still mid-publication after the cursor wrapped)
/// makes try_push return false; the caller falls back to the mailbox's
/// locked overflow channel. try_pop returns false at a gap: a producer
/// between its CAS and its publication store hides everything behind it
/// until it publishes — the per-source ticket gate in comm.cpp makes that
/// reordering harmless.

namespace stfw::runtime {

template <typename T>
class MpscRing {
public:
  explicit MpscRing(std::size_t capacity)
      : cap_(capacity == 0 ? 1 : capacity),
        slots_(std::make_unique<Slot[]>(cap_)) {
    for (std::size_t i = 0; i < cap_; ++i)
      slots_[i].seq.store(2 * i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Multi-producer push; false when the ring is full.
  bool try_push(T&& value) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos % cap_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(2 * pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(2 * pos + 1, std::memory_order_seq_cst);  // publish
          return true;
        }
      } else if (diff < 0) {
        return false;  // lapped: the consumer has not recycled this slot yet
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop; false when empty or the head is mid-publication.
  /// Must only ever be called from the one consumer thread.
  bool try_pop(T& out) {
    Slot& slot = slots_[dequeue_pos_ % cap_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_seq_cst);
    if (seq != 2 * dequeue_pos_ + 1) return false;
    out = std::move(slot.value);
    slot.value = T{};  // drop payload now, not at the next lap
    slot.seq.store(2 * (dequeue_pos_ + cap_), std::memory_order_release);  // recycle
    ++dequeue_pos_;
    return true;
  }

  std::size_t capacity() const noexcept { return cap_; }

private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::size_t cap_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::uint64_t dequeue_pos_ = 0;  // consumer-private
};

}  // namespace stfw::runtime
