#include "stfw_communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/exchange_plan.hpp"
#include "core/wire.hpp"
#include "fault/fault_injector.hpp"

#if STFW_VALIDATE_ENABLED
#include "validate/exchange_validator.hpp"
#endif

namespace stfw {

using core::PayloadArena;
using core::StageMessage;
using core::StfwRankState;
using core::Submessage;

namespace {

// Fixed tags of the resilient frame protocol, far above any plain-exchange
// stage tag (epoch * dim + stage); the exchange epoch travels inside the
// frame header instead of the tag.
constexpr int kResilientDataTag = 1 << 28;
constexpr int kResilientAckTag = (1 << 28) + 1;

constexpr std::size_t kDefaultPlanCacheCapacity = 4;

// Stage boundary annotation for stfw-verify schedule traces; pairs with the
// fault injector's at_stage sites so a race/oracle report can name the
// dimension-order stage it happened in. No-op unless an engine is installed.
inline void verify_stage_tag(int rank, int stage) {
#if STFW_VERIFY_ENABLED
  STFW_VERIFY_HOOK(stage(rank, stage));
#else
  (void)rank;
  (void)stage;
#endif
}

std::vector<std::pair<core::Rank, std::uint32_t>> pattern_of(
    std::span<const OutboundMessage> sends) {
  std::vector<std::pair<core::Rank, std::uint32_t>> pattern;
  pattern.reserve(sends.size());
  for (const OutboundMessage& s : sends)
    pattern.emplace_back(s.dest, static_cast<std::uint32_t>(s.bytes.size()));
  return pattern;
}

// Header-only wire format of the planning pass: u32 count, then per
// submessage { i32 source, i32 dest, u32 len }. Only plan() traffic uses it
// (a collective, so no other reader can see these frames).
std::vector<std::byte> serialize_headers(const StageMessage& msg) {
  std::vector<std::byte> out(4 + msg.subs.size() * 12);
  std::byte* p = out.data();
  const auto count = static_cast<std::uint32_t>(msg.subs.size());
  std::memcpy(p, &count, 4);
  p += 4;
  for (const Submessage& s : msg.subs) {
    std::memcpy(p, &s.source, 4);
    std::memcpy(p + 4, &s.dest, 4);
    std::memcpy(p + 8, &s.size_bytes, 4);
    p += 12;
  }
  return out;
}

std::vector<Submessage> deserialize_headers(std::span<const std::byte> wire) {
  core::require(wire.size() >= 4, "plan: truncated header frame");
  std::uint32_t count = 0;
  std::memcpy(&count, wire.data(), 4);
  core::require(wire.size() == 4 + static_cast<std::size_t>(count) * 12,
                "plan: header frame size mismatch");
  std::vector<Submessage> subs(count);
  const std::byte* p = wire.data() + 4;
  for (Submessage& s : subs) {
    std::memcpy(&s.source, p, 4);
    std::memcpy(&s.dest, p + 4, 4);
    std::memcpy(&s.size_bytes, p + 8, 4);
    p += 12;
  }
  return subs;
}

// Provenance encoding of the planning pass: StfwRankState routes
// Submessage::offset untouched, so while planning it carries where the
// payload will come from at replay time instead of an arena offset.
constexpr std::uint64_t kProvRecvBit = 1ull << 63;

std::uint64_t encode_recv_prov(int stage, std::size_t frame, std::uint64_t offset) {
  return kProvRecvBit | (static_cast<std::uint64_t>(stage) << 48) |
         (static_cast<std::uint64_t>(frame) << 32) | offset;
}

core::PayloadSrc decode_prov(std::uint64_t enc, std::uint32_t bytes) {
  core::PayloadSrc src;
  src.bytes = bytes;
  if ((enc & kProvRecvBit) == 0) {
    src.kind = core::PayloadSrc::Kind::kSeed;
    src.index = static_cast<std::uint32_t>(enc);
  } else {
    src.kind = core::PayloadSrc::Kind::kRecv;
    src.stage = static_cast<std::uint8_t>((enc >> 48) & 0x7fu);
    src.frame = static_cast<std::uint16_t>((enc >> 32) & 0xffffu);
    src.offset = static_cast<std::uint32_t>(enc & 0xffffffffull);
  }
  return src;
}

// True when a received wire frame has exactly the submessage headers the
// plan expects at the planned offsets. Any deviation means a peer's pattern
// drifted since the plan was recorded.
bool frame_headers_match(std::span<const std::byte> raw, const core::PlanInFrame& f) {
  if (raw.size() != f.wire_size || raw.size() < 4) return false;
  std::uint32_t count = 0;
  std::memcpy(&count, raw.data(), 4);
  if (count != f.subs.size()) return false;
  for (const Submessage& s : f.subs) {
    const std::byte* h = raw.data() + s.offset - 12;
    std::int32_t source = -1;
    std::int32_t dest = -1;
    std::uint32_t len = 0;
    std::memcpy(&source, h, 4);
    std::memcpy(&dest, h + 4, 4);
    std::memcpy(&len, h + 8, 4);
    if (source != s.source || dest != s.dest || len != s.size_bytes) return false;
  }
  return true;
}

// Copies `frame`'s prebuilt wire image and fills its payload gaps from the
// seed payload views / previously received raw frames.
std::vector<std::byte> fill_planned_frame(
    const core::PlanOutFrame& frame, std::span<const std::span<const std::byte>> seeds,
    const std::vector<std::vector<std::vector<std::byte>>>& in_raw) {
  std::vector<std::byte> wire(frame.image);
  for (std::size_t i = 0; i < frame.slots.size(); ++i) {
    const core::PayloadSrc& src = frame.slots[i];
    const std::byte* from = src.kind == core::PayloadSrc::Kind::kSeed
                                ? seeds[src.index].data()
                                : in_raw[src.stage][src.frame].data() + src.offset;
    std::memcpy(wire.data() + frame.slot_offsets[i], from, src.bytes);
  }
  return wire;
}

// Materializes the InboundMessages of a completed planned exchange.
std::vector<InboundMessage> planned_result(
    const core::ExchangePlanLayout& layout, std::span<const std::span<const std::byte>> seeds,
    const std::vector<std::vector<std::vector<std::byte>>>& in_raw) {
  std::vector<InboundMessage> result;
  result.reserve(layout.deliveries.size());
  for (const core::PlanDelivery& d : layout.deliveries) {
    if (d.src.bytes == 0) {
      result.push_back(InboundMessage{d.source, {}});
      continue;
    }
    const std::byte* from = d.src.kind == core::PayloadSrc::Kind::kSeed
                                ? seeds[d.src.index].data()
                                : in_raw[d.src.stage][d.src.frame].data() + d.src.offset;
    result.push_back(InboundMessage{d.source, {from, from + d.src.bytes}});
  }
  return result;
}

std::vector<std::span<const std::byte>> seed_views_of(std::span<const OutboundMessage> sends) {
  std::vector<std::span<const std::byte>> views;
  views.reserve(sends.size());
  for (const OutboundMessage& s : sends) views.emplace_back(s.bytes);
  return views;
}

bool validation_default() {
#if STFW_VALIDATE_ENABLED
  // Strict parse (core/env): a typo'd STFW_VALIDATE throws instead of
  // silently leaving the validator on.
  return core::env_flag("STFW_VALIDATE", true);
#else
  return false;
#endif
}

}  // namespace

bool StfwCommunicator::validation_available() noexcept {
#if STFW_VALIDATE_ENABLED
  return true;
#else
  return false;
#endif
}

StfwCommunicator::StfwCommunicator(runtime::Comm& comm, core::Vpt vpt)
    : comm_(&comm),
      vpt_(std::move(vpt)),
      validate_(validation_default()),
      plan_cache_capacity_(static_cast<std::size_t>(
          core::env_u64("STFW_PLAN_CACHE", kDefaultPlanCacheCapacity))) {
  core::require(vpt_.size() == comm.size(),
                "StfwCommunicator: VPT size must equal communicator size");
}

std::size_t StfwCommunicator::plan_cache_capacity() const {
  core::MutexLock lock(plan_cache_mu_);
  return plan_cache_capacity_;
}

std::size_t StfwCommunicator::plan_cache_size() const {
  core::MutexLock lock(plan_cache_mu_);
  return plan_cache_.size();
}

void StfwCommunicator::set_plan_cache_capacity(std::size_t capacity) {
  core::MutexLock lock(plan_cache_mu_);
  plan_cache_capacity_ = capacity;
  plan_cache_evict_to(capacity);
}

void StfwCommunicator::plan_cache_evict_to(std::size_t capacity) {
  while (plan_cache_.size() > capacity) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < plan_cache_.size(); ++i)
      if (plan_cache_[i].last_use < plan_cache_[lru].last_use) lru = i;
    plan_cache_[lru] = std::move(plan_cache_.back());
    plan_cache_.pop_back();
  }
}

std::shared_ptr<runtime::ExchangePlan> StfwCommunicator::plan_cache_find(
    const core::PatternSignature& sig) {
  core::MutexLock lock(plan_cache_mu_);
  for (PlanCacheEntry& e : plan_cache_) {
    if (e.plan->signature() == sig) {
      e.last_use = ++plan_cache_tick_;
      return e.plan;
    }
  }
  return nullptr;
}

void StfwCommunicator::plan_cache_insert(std::shared_ptr<runtime::ExchangePlan> plan) {
  core::MutexLock lock(plan_cache_mu_);
  if (plan_cache_capacity_ == 0) return;
  for (PlanCacheEntry& e : plan_cache_) {
    if (e.plan->signature() == plan->signature()) {
      e.plan = std::move(plan);
      e.last_use = ++plan_cache_tick_;
      return;
    }
  }
  if (plan_cache_.size() >= plan_cache_capacity_ && !plan_cache_.empty()) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < plan_cache_.size(); ++i)
      if (plan_cache_[i].last_use < plan_cache_[lru].last_use) lru = i;
    plan_cache_[lru] = PlanCacheEntry{std::move(plan), ++plan_cache_tick_};
    return;
  }
  plan_cache_.push_back(PlanCacheEntry{std::move(plan), ++plan_cache_tick_});
}

void StfwCommunicator::plan_cache_erase(const core::PatternSignature& sig) {
  core::MutexLock lock(plan_cache_mu_);
  for (std::size_t i = 0; i < plan_cache_.size(); ++i) {
    if (plan_cache_[i].plan->signature() == sig) {
      plan_cache_[i] = std::move(plan_cache_.back());
      plan_cache_.pop_back();
      return;
    }
  }
}

std::vector<InboundMessage> StfwCommunicator::exchange(std::span<const OutboundMessage> sends) {
  if (plan_cache_capacity() > 0) {
    const auto pattern = pattern_of(sends);
    const auto sig = core::PatternSignature::of(pattern);
    // The shared_ptr pins the plan for the call: a mid-flight fallback
    // erases the cache entry while the plan's scratch is still in use.
    if (const std::shared_ptr<runtime::ExchangePlan> hit = plan_cache_find(sig))
      return exchange_planned_cached(*hit, sends);
    return exchange_unplanned(sends, &sig);
  }
  return exchange_unplanned(sends, nullptr);
}

std::vector<InboundMessage> StfwCommunicator::exchange_unplanned(
    std::span<const OutboundMessage> sends, const core::PatternSignature* record_as) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  StfwRankState state(vpt_, me);
  PayloadArena arena;
  stats_ = LocalExchangeStats{};

  // On a cache miss the exchange records itself into a PlanRecorder:
  // payload provenance (seed index or inbound-frame slice) is tracked per
  // arena offset so the finished layout can replay the routing with plain
  // memcpys next iteration.
  std::optional<core::PlanRecorder> recorder;
  std::unordered_map<std::uint64_t, core::PayloadSrc> provenance;
  if (record_as != nullptr) recorder.emplace(vpt_, me, record_as->sequence);

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) validator.emplace(vpt_, me);
#endif

  std::uint64_t seed_bytes = 0;
  std::uint32_t seed_index = 0;
  for (const OutboundMessage& s : sends) {
#if STFW_VALIDATE_ENABLED
    if (validator) validator->on_seed(s.dest, s.bytes);
#endif
    const std::uint64_t off = arena.add(s.bytes);
    state.add_send(s.dest, off, static_cast<std::uint32_t>(s.bytes.size()));
    if (recorder && !s.bytes.empty()) {
      core::PayloadSrc src;
      src.kind = core::PayloadSrc::Kind::kSeed;
      src.index = seed_index;
      src.bytes = static_cast<std::uint32_t>(s.bytes.size());
      provenance.insert_or_assign(off, src);
    }
    ++seed_index;
    seed_bytes += s.bytes.size();
  }

  std::vector<StageMessage> outbox;
  std::vector<core::PayloadSrc> srcs;
  std::uint64_t transit_peak = 0;
  const int tag_base = epoch_ * vpt_.dim();
  fault::FaultInjector* injector = comm_->fault_injector();
  for (int stage = 0; stage < vpt_.dim(); ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    outbox.clear();
    state.make_stage_outbox(stage, outbox);
    for (const StageMessage& m : outbox) {
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_send(stage, m);
#endif
      if (recorder) {
        srcs.clear();
        for (const Submessage& s : m.subs)
          srcs.push_back(s.size_bytes == 0 ? core::PayloadSrc{} : provenance.at(s.offset));
        recorder->on_stage_send(stage, m.to, m.subs, srcs);
      }
      auto wire = core::serialize(m, arena);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += m.payload_bytes();
      stats_.wire_bytes_sent += wire.size();
      comm_->send(static_cast<int>(m.to), tag, std::move(wire));
    }
    // All sends of this stage happen-before the barrier, so drain() below
    // sees the complete set of stage messages addressed to us.
    comm_->barrier();
    std::size_t frame_index = 0;
    for (runtime::Message& m : comm_->drain(tag)) {
      ++stats_.messages_received;
      const std::vector<Submessage> subs = core::deserialize(m.data, arena);
#if STFW_VALIDATE_ENABLED
      if (validator)
        validator->on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
#endif
      if (recorder) {
        const core::PlanInFrame& frame =
            recorder->on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
        for (std::size_t k = 0; k < subs.size(); ++k) {
          if (subs[k].size_bytes == 0) continue;
          core::PayloadSrc src;
          src.kind = core::PayloadSrc::Kind::kRecv;
          src.stage = static_cast<std::uint8_t>(stage);
          src.frame = static_cast<std::uint16_t>(frame_index);
          src.offset = static_cast<std::uint32_t>(frame.subs[k].offset);
          src.bytes = subs[k].size_bytes;
          provenance.insert_or_assign(subs[k].offset, src);
        }
      }
      state.accept(stage, subs);
      ++frame_index;
    }
    transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
    if (recorder)
      recorder->on_stage_complete(stage, state.buffered_payload_bytes(),
                                  state.buffered_submessage_count());
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(stage, state.buffered_payload_bytes(),
                                   state.buffered_submessage_count());
#endif
  }
  ++epoch_;

  // Paper Section 6.2 buffer metric: original send + receive buffers plus
  // the store-and-forward transit residency.
  stats_.peak_buffer_bytes = seed_bytes + state.delivered_payload_bytes() + transit_peak;

  std::vector<Submessage> delivered = state.take_delivered();

#if STFW_VALIDATE_ENABLED
  if (validator) {
    // Collective conservation + buffer-bound verdict: every rank shares its
    // seed-side claims and checks its deliveries against them.
    const auto summaries = comm_->allgather(validator->summary_blob());
    validator->finish(delivered, arena, stats_.messages_sent, summaries);
  }
#endif

  std::vector<InboundMessage> result;
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  if (recorder) {
    srcs.clear();
    for (const Submessage& s : delivered)
      srcs.push_back(s.size_bytes == 0 ? core::PayloadSrc{} : provenance.at(s.offset));
    plan_cache_insert(
        std::make_shared<runtime::ExchangePlan>(recorder->finish(delivered, srcs)));
    stats_.plan_builds = 1;
  }
  result.reserve(delivered.size());
  for (const Submessage& s : delivered) {
    const auto payload = arena.view(s);
    result.push_back(InboundMessage{s.source, {payload.begin(), payload.end()}});
  }
  return result;
}

std::vector<InboundMessage> StfwCommunicator::exchange_planned_cached(
    runtime::ExchangePlan& plan, std::span<const OutboundMessage> sends) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  const core::ExchangePlanLayout& layout = plan.layout();
  const int n = vpt_.dim();
  stats_ = LocalExchangeStats{};
  stats_.plan_hits = 1;
  const int tag_base = epoch_ * n;
  fault::FaultInjector* injector = comm_->fault_injector();
  const std::vector<std::span<const std::byte>> seeds = seed_views_of(sends);

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) {
    validator.emplace(vpt_, me);
    for (const OutboundMessage& s : sends) validator->on_seed(s.dest, s.bytes);
  }
#endif

  for (int stage = 0; stage < n; ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    for (const core::PlanOutFrame& f : layout.out_frames[static_cast<std::size_t>(stage)]) {
#if STFW_VALIDATE_ENABLED
      if (validator) {
        StageMessage m;
        m.from = me;
        m.to = f.to;
        m.subs = f.subs;
        validator->on_stage_send(stage, m);
      }
#endif
      auto wire = fill_planned_frame(f, seeds, plan.in_raw_);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += f.payload_bytes;
      stats_.wire_bytes_sent += wire.size();
      comm_->send(static_cast<int>(f.to), tag, std::move(wire));
    }
    // Same synchronization structure as the unplanned path, so a cluster in
    // which some ranks hit the cache and others miss stays deadlock-free.
    comm_->barrier();
    std::vector<runtime::Message> msgs = comm_->drain(tag);

    const auto& expected = layout.in_frames[static_cast<std::size_t>(stage)];
    bool match = msgs.size() == expected.size();
    for (std::size_t i = 0; match && i < msgs.size(); ++i)
      match = msgs[i].source == expected[i].source &&
              frame_headers_match(msgs[i].data, expected[i]);

    if (!match) {
      // A peer's pattern drifted since the plan was recorded: the inbound
      // frames no longer match the frozen roster. Rebuild Algorithm 1 state
      // by replaying the stages already completed from the raw frames the
      // plan kept, ingest what actually arrived, and continue unplanned.
      // Frames already sent this stage depended only on our own (matching)
      // pattern, so nothing wrong went out.
      stats_.plan_fallbacks = 1;
      plan_cache_erase(layout.signature);

      StfwRankState state(vpt_, me);
      PayloadArena arena;
      std::uint64_t seed_bytes = 0;
      for (const OutboundMessage& s : sends) {
        const std::uint64_t off = arena.add(s.bytes);
        state.add_send(s.dest, off, static_cast<std::uint32_t>(s.bytes.size()));
        seed_bytes += s.bytes.size();
      }
      std::vector<StageMessage> outbox;
      std::uint64_t transit_peak = 0;
      for (int s = 0; s < stage; ++s) {
        outbox.clear();
        state.make_stage_outbox(s, outbox);  // already on the wire; discard
        for (const std::vector<std::byte>& raw : plan.in_raw_[static_cast<std::size_t>(s)])
          state.accept(s, core::deserialize(raw, arena));
        transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
      }
      outbox.clear();
      state.make_stage_outbox(stage, outbox);  // already on the wire; discard
      for (runtime::Message& m : msgs) {
        ++stats_.messages_received;
        const std::vector<Submessage> subs = core::deserialize(m.data, arena);
#if STFW_VALIDATE_ENABLED
        if (validator)
          validator->on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
#endif
        state.accept(stage, subs);
      }
      transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
#if STFW_VALIDATE_ENABLED
      if (validator)
        validator->on_stage_complete(stage, state.buffered_payload_bytes(),
                                     state.buffered_submessage_count());
#endif
      for (int s = stage + 1; s < n; ++s) {
        verify_stage_tag(static_cast<int>(me), s);
        if (injector != nullptr) injector->at_stage(static_cast<int>(me), s);
        const int t = tag_base + s;
        outbox.clear();
        state.make_stage_outbox(s, outbox);
        for (const StageMessage& m : outbox) {
#if STFW_VALIDATE_ENABLED
          if (validator) validator->on_stage_send(s, m);
#endif
          auto wire = core::serialize(m, arena);
          ++stats_.messages_sent;
          stats_.payload_bytes_sent += m.payload_bytes();
          stats_.wire_bytes_sent += wire.size();
          comm_->send(static_cast<int>(m.to), t, std::move(wire));
        }
        comm_->barrier();
        for (runtime::Message& m : comm_->drain(t)) {
          ++stats_.messages_received;
          const std::vector<Submessage> subs = core::deserialize(m.data, arena);
#if STFW_VALIDATE_ENABLED
          if (validator)
            validator->on_stage_recv(s, static_cast<core::Rank>(m.source), subs);
#endif
          state.accept(s, subs);
        }
        transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
#if STFW_VALIDATE_ENABLED
        if (validator)
          validator->on_stage_complete(s, state.buffered_payload_bytes(),
                                       state.buffered_submessage_count());
#endif
      }
      ++epoch_;
      stats_.peak_buffer_bytes = seed_bytes + state.delivered_payload_bytes() + transit_peak;
      std::vector<Submessage> delivered = state.take_delivered();
#if STFW_VALIDATE_ENABLED
      if (validator) {
        const auto summaries = comm_->allgather(validator->summary_blob());
        validator->finish(delivered, arena, stats_.messages_sent, summaries);
      }
#endif
      std::vector<InboundMessage> result;
      std::stable_sort(
          delivered.begin(), delivered.end(),
          [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
      result.reserve(delivered.size());
      for (const Submessage& sub : delivered) {
        const auto payload = arena.view(sub);
        result.push_back(InboundMessage{sub.source, {payload.begin(), payload.end()}});
      }
      return result;
    }

    for (std::size_t i = 0; i < msgs.size(); ++i) {
      ++stats_.messages_received;
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_recv(stage, expected[i].source, expected[i].subs);
#endif
      plan.in_raw_[static_cast<std::size_t>(stage)][i] = std::move(msgs[i].data);
    }
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(stage,
                                   layout.stage_buffered_bytes[static_cast<std::size_t>(stage)],
                                   layout.stage_buffered_subs[static_cast<std::size_t>(stage)]);
#endif
  }
  ++epoch_;
  stats_.peak_buffer_bytes = layout.peak_buffer_bytes();

  std::vector<InboundMessage> result = planned_result(layout, seeds, plan.in_raw_);

#if STFW_VALIDATE_ENABLED
  if (validator) {
    PayloadArena varena;
    std::vector<Submessage> vdelivered;
    vdelivered.reserve(result.size());
    for (const InboundMessage& r : result) {
      Submessage s;
      s.source = r.source;
      s.dest = me;
      s.size_bytes = static_cast<std::uint32_t>(r.bytes.size());
      s.offset = varena.add(r.bytes);
      vdelivered.push_back(s);
    }
    const auto summaries = comm_->allgather(validator->summary_blob());
    validator->finish(vdelivered, varena, stats_.messages_sent, summaries);
  }
#endif
  return result;
}

std::shared_ptr<runtime::ExchangePlan> StfwCommunicator::plan(
    std::span<const OutboundMessage> sends) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  const auto pattern = pattern_of(sends);
  core::PlanRecorder recorder(vpt_, me, pattern);
  StfwRankState state(vpt_, me);

  // Header-only collective planning pass: the same Algorithm 1 stage
  // structure with empty wire bodies. Submessage::offset carries payload
  // provenance (seed index or inbound-frame slice) through the routing.
  std::uint32_t index = 0;
  for (const auto& [dest, size] : pattern) state.add_send(dest, index++, size);

  std::vector<StageMessage> outbox;
  std::vector<core::PayloadSrc> srcs;
  const int tag_base = epoch_ * vpt_.dim();
  fault::FaultInjector* injector = comm_->fault_injector();
  for (int stage = 0; stage < vpt_.dim(); ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    outbox.clear();
    state.make_stage_outbox(stage, outbox);
    for (const StageMessage& m : outbox) {
      srcs.clear();
      for (const Submessage& s : m.subs) srcs.push_back(decode_prov(s.offset, s.size_bytes));
      recorder.on_stage_send(stage, m.to, m.subs, srcs);
      comm_->send(static_cast<int>(m.to), tag, serialize_headers(m));
    }
    comm_->barrier();
    std::size_t frame_index = 0;
    for (runtime::Message& m : comm_->drain(tag)) {
      std::vector<Submessage> subs = deserialize_headers(m.data);
      const core::PlanInFrame& frame =
          recorder.on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
      for (std::size_t k = 0; k < subs.size(); ++k)
        subs[k].offset = encode_recv_prov(stage, frame_index, frame.subs[k].offset);
      state.accept(stage, subs);
      ++frame_index;
    }
    recorder.on_stage_complete(stage, state.buffered_payload_bytes(),
                               state.buffered_submessage_count());
  }
  ++epoch_;

  std::vector<Submessage> delivered = state.take_delivered();
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  srcs.clear();
  for (const Submessage& s : delivered) srcs.push_back(decode_prov(s.offset, s.size_bytes));
  return std::make_shared<runtime::ExchangePlan>(recorder.finish(delivered, srcs));
}

std::vector<InboundMessage> StfwCommunicator::exchange(
    runtime::ExchangePlan& plan, std::span<const std::span<const std::byte>> payloads) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  const core::ExchangePlanLayout& layout = plan.layout();
  core::require(layout.rank == me, "exchange(plan): plan belongs to another rank");
  core::require(layout.vpt_dims == vpt_.dim_sizes(),
                "exchange(plan): plan was built for a different VPT");
  const auto& sequence = layout.signature.sequence;
  core::require(payloads.size() == sequence.size(),
                "exchange(plan): payload count differs from the planned pattern");
  for (std::size_t i = 0; i < payloads.size(); ++i)
    core::require(payloads[i].size() == sequence[i].second,
                  "exchange(plan): payload size differs from the planned pattern");

  const int n = vpt_.dim();
  stats_ = LocalExchangeStats{};
  stats_.plan_hits = 1;
  const int tag_base = epoch_ * n;
  fault::FaultInjector* injector = comm_->fault_injector();

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) {
    validator.emplace(vpt_, me);
    for (std::size_t i = 0; i < payloads.size(); ++i)
      validator->on_seed(sequence[i].first, payloads[i]);
  }
#endif

  for (int stage = 0; stage < n; ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    for (const core::PlanOutFrame& f : layout.out_frames[static_cast<std::size_t>(stage)]) {
#if STFW_VALIDATE_ENABLED
      if (validator) {
        StageMessage m;
        m.from = me;
        m.to = f.to;
        m.subs = f.subs;
        validator->on_stage_send(stage, m);
      }
#endif
      auto wire = fill_planned_frame(f, payloads, plan.in_raw_);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += f.payload_bytes;
      stats_.wire_bytes_sent += wire.size();
      comm_->send(static_cast<int>(f.to), tag, std::move(wire));
    }
    // Barrier-free: the plan froze exactly which frames arrive, so each is
    // awaited directly by (source, tag). All ranks must replay plans of the
    // same collective plan() — drift here is a contract violation.
    auto& raw_stage = plan.in_raw_[static_cast<std::size_t>(stage)];
    const auto& expected = layout.in_frames[static_cast<std::size_t>(stage)];
    for (std::size_t i = 0; i < expected.size(); ++i) {
      runtime::Message m = comm_->recv(static_cast<int>(expected[i].source), tag);
      core::require(frame_headers_match(m.data, expected[i]),
                    "exchange(plan): inbound frame deviates from the plan; the send "
                    "pattern changed since plan() (use plain exchange() for "
                    "iteration-varying patterns)");
      ++stats_.messages_received;
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_recv(stage, expected[i].source, expected[i].subs);
#endif
      raw_stage[i] = std::move(m.data);
    }
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(stage,
                                   layout.stage_buffered_bytes[static_cast<std::size_t>(stage)],
                                   layout.stage_buffered_subs[static_cast<std::size_t>(stage)]);
#endif
  }
  ++epoch_;
  stats_.peak_buffer_bytes = layout.peak_buffer_bytes();

  std::vector<InboundMessage> result = planned_result(layout, payloads, plan.in_raw_);

#if STFW_VALIDATE_ENABLED
  if (validator) {
    PayloadArena varena;
    std::vector<Submessage> vdelivered;
    vdelivered.reserve(result.size());
    for (const InboundMessage& r : result) {
      Submessage s;
      s.source = r.source;
      s.dest = me;
      s.size_bytes = static_cast<std::uint32_t>(r.bytes.size());
      s.offset = varena.add(r.bytes);
      vdelivered.push_back(s);
    }
    const auto summaries = comm_->allgather(validator->summary_blob());
    validator->finish(vdelivered, varena, stats_.messages_sent, summaries);
  }
#endif
  return result;
}

std::vector<InboundMessage> StfwCommunicator::exchange(runtime::ExchangePlan& plan,
                                                       std::span<const OutboundMessage> sends) {
  const auto& sequence = plan.layout().signature.sequence;
  core::require(sends.size() == sequence.size(),
                "exchange(plan): send count differs from the planned pattern");
  for (std::size_t i = 0; i < sends.size(); ++i)
    core::require(sends[i].dest == sequence[i].first &&
                      sends[i].bytes.size() == sequence[i].second,
                  "exchange(plan): send pattern differs from the planned pattern");
  const std::vector<std::span<const std::byte>> views = seed_views_of(sends);
  return exchange(plan, views);
}

std::string ExchangeFailure::to_string() const {
  if (empty()) return "no failures";
  std::string out = std::to_string(lost.size()) + " lost submessage(s), " +
                    std::to_string(missing.size()) + " missing neighbor frame(s)";
  for (const LostSubmessage& l : lost) {
    out += "\n  lost: " + std::to_string(l.bytes) + " bytes " + std::to_string(l.source) +
           " -> " + std::to_string(l.dest);
    out += l.stage < 0 ? std::string(" (direct)") : " (stage " + std::to_string(l.stage) + ")";
  }
  for (const MissingNeighbor& m : missing)
    out += "\n  missing: stage " + std::to_string(m.stage) + " frame from rank " +
           std::to_string(m.neighbor);
  return out;
}

ResilientExchangeResult StfwCommunicator::exchange_resilient(
    std::span<const OutboundMessage> sends, const ResilienceOptions& opt) {
  // Retransmit timers run on verify::verify_now(): steady_clock in normal
  // builds, the deterministic logical clock under the stfw-verify scheduler.
  using clock = std::chrono::steady_clock;
  core::require(opt.max_attempts >= 1, "exchange_resilient: max_attempts must be >= 1");
  core::require(opt.backoff_factor >= 1.0, "exchange_resilient: backoff_factor must be >= 1");
  core::require(opt.retransmit_timeout.count() > 0,
                "exchange_resilient: retransmit_timeout must be positive");
  core::require(opt.stage_deadline.count() > 0,
                "exchange_resilient: stage_deadline must be positive");
  core::require(opt.max_settle_rounds >= 1, "exchange_resilient: max_settle_rounds must be >= 1");

  const auto me = static_cast<core::Rank>(comm_->rank());
  const int n = vpt_.dim();
  StfwRankState state(vpt_, me);
  PayloadArena arena;
  stats_ = LocalExchangeStats{};
  ResilientExchangeResult result;
  // Claim the epoch up front so a thrown exchange cannot leave stale frames
  // that a retry under the same epoch would mistake for its own.
  const auto epoch = static_cast<std::uint32_t>(epoch_);
  ++epoch_;
  fault::FaultInjector* injector = comm_->fault_injector();

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) validator.emplace(vpt_, me);
#endif

  // A cached plan for this pattern supplies frozen seed routing dimensions
  // (the full frame layout cannot be replayed here: injected faults make the
  // inbound schedule non-deterministic, so only the seeding scan is reused).
  std::shared_ptr<runtime::ExchangePlan> seed_plan;
  if (plan_cache_capacity_ > 0)
    seed_plan = plan_cache_find(core::PatternSignature::of(pattern_of(sends)));
  if (seed_plan) stats_.plan_hits = 1;

  std::uint64_t seed_bytes = 0;
  std::uint32_t next_sub_id = 0;
  for (const OutboundMessage& s : sends) {
#if STFW_VALIDATE_ENABLED
    if (validator) validator->on_seed(s.dest, s.bytes);
#endif
    const std::uint64_t off = arena.add(s.bytes);
    if (seed_plan)
      state.add_send_routed(s.dest, seed_plan->layout().seed_first_dim[next_sub_id], off,
                            static_cast<std::uint32_t>(s.bytes.size()), next_sub_id);
    else
      state.add_send(s.dest, off, static_cast<std::uint32_t>(s.bytes.size()), next_sub_id);
    ++next_sub_id;
    seed_bytes += s.bytes.size();
  }

  // --- sender side: every frame we emitted and still track -----------------
  struct OutFrame {
    core::FrameKind kind = core::FrameKind::kData;
    int stage = -1;  // -1 for kDirect
    core::Rank dest = -1;
    std::uint32_t seq = 0;
    std::vector<std::byte> wire;       // encoded once, retransmitted verbatim
    std::vector<Submessage> subs;      // for fallback / loss reporting
    int attempts = 0;
    clock::time_point next_retry{};
    std::chrono::milliseconds backoff{0};
    bool acked = false;
    bool failed = false;
  };
  std::vector<OutFrame> frames;
  std::unordered_map<std::uint32_t, std::size_t> frame_by_seq;
  std::uint32_t next_seq = 0;

  auto make_frame = [&](core::FrameKind kind, int stage, core::Rank dest, StageMessage msg) {
    core::FrameHeader h;
    h.kind = kind;
    h.stage = static_cast<std::uint16_t>(stage < 0 ? 0 : stage);
    h.epoch = epoch;
    h.seq = next_seq;
    h.sender = me;
    OutFrame f;
    f.kind = kind;
    f.stage = stage;
    f.dest = dest;
    f.seq = next_seq;
    f.wire = core::encode_frame(h, core::serialize_tracked(msg, arena));
    f.subs = std::move(msg.subs);
    f.backoff = opt.retransmit_timeout;
    frame_by_seq.emplace(next_seq, frames.size());
    frames.push_back(std::move(f));
    ++next_seq;
  };

  auto transmit = [&](OutFrame& f, clock::time_point now) {
    if (f.attempts > 0) ++stats_.retransmits;
    ++f.attempts;
    stats_.wire_bytes_sent += f.wire.size();
    comm_->send(static_cast<int>(f.dest), kResilientDataTag, std::vector<std::byte>(f.wire));
    f.next_retry = now + f.backoff;
    // Cap the backoff well below the stage deadline: the settlement loop's
    // wall budget is max_settle_rounds * retransmit_timeout, and a retry
    // scheduled beyond it would be force-failed even though the peer was
    // about to accept it.
    const double scaled = static_cast<double>(f.backoff.count()) * opt.backoff_factor;
    const double cap = static_cast<double>(
        std::min(opt.stage_deadline.count(), 8 * opt.retransmit_timeout.count()));
    f.backoff = std::chrono::milliseconds{
        static_cast<std::chrono::milliseconds::rep>(std::min(scaled, cap))};
  };

  // Give up on frame `i`: a dead kData frame degrades into kDirect frames
  // grouped by final destination (bypassing the remaining store-and-forward
  // stages); a dead kDirect frame is a definite loss. May push new frames,
  // so callers must not hold references into `frames` across the call.
  auto fail_frame = [&](std::size_t i) {
    frames[i].failed = true;
    const core::FrameKind kind = frames[i].kind;
    const int fstage = frames[i].stage;
    std::vector<Submessage> subs = std::move(frames[i].subs);
    if (kind == core::FrameKind::kData && opt.direct_fallback && !subs.empty()) {
      std::map<core::Rank, std::vector<Submessage>> groups;
      for (const Submessage& s : subs) groups[s.dest].push_back(s);
      for (auto& [gdest, gsubs] : groups) {
        stats_.direct_fallback_submessages += static_cast<std::int64_t>(gsubs.size());
        make_frame(core::FrameKind::kDirect, -1, gdest,
                   StageMessage{me, gdest, std::move(gsubs)});
      }
    } else {
      for (const Submessage& s : subs)
        result.failure.lost.push_back({s.source, s.dest, s.size_bytes, fstage});
    }
  };

  auto send_control = [&](core::FrameKind kind, core::Rank to, const core::FrameHeader& of) {
    core::FrameHeader a;
    a.kind = kind;
    a.stage = of.stage;
    a.epoch = epoch;
    a.seq = of.seq;  // acks/nacks echo the seq they answer
    a.sender = me;
    auto w = core::encode_frame(a, {});
    if (kind == core::FrameKind::kAck) ++stats_.acks_sent;
    stats_.wire_bytes_sent += w.size();
    comm_->send(static_cast<int>(to), kResilientAckTag, std::move(w));
  };
  auto send_ack = [&](core::Rank to, const core::FrameHeader& of) {
    send_control(core::FrameKind::kAck, to, of);
  };

  // Retransmit / give-up pass. Returns the earliest pending retry time (or
  // time_point::max() when nothing is outstanding). A frame that exhausts
  // its budget degrades: kData submessages are regrouped by final
  // destination and re-sent as kDirect frames (bypassing the remaining
  // store-and-forward stages); a dead kDirect frame is a definite loss.
  auto pump_sends = [&](clock::time_point now) {
    clock::time_point next = clock::time_point::max();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (frames[i].acked || frames[i].failed) continue;
      if (frames[i].attempts == 0) {
        transmit(frames[i], now);
      } else if (now >= frames[i].next_retry) {
        // kDirect frames are exempt from the attempt budget: they are the
        // last resort, exhausting one is a permanent loss, and the
        // settlement valve already bounds how long they may keep trying.
        if (frames[i].kind != core::FrameKind::kDirect &&
            frames[i].attempts >= opt.max_attempts) {
          ++stats_.timeouts;
          fail_frame(i);
          continue;
        }
        ++stats_.timeouts;
        transmit(frames[i], now);
      }
      if (!frames[i].failed) next = std::min(next, frames[i].next_retry);
    }
    return next;
  };

  auto all_settled_locally = [&] {
    for (const OutFrame& f : frames)
      if (!f.acked && !f.failed) return false;
    return true;
  };

  // --- receiver side -------------------------------------------------------
  int cur_stage = 0;
  std::set<std::pair<std::int32_t, std::uint32_t>> seen;  // (sender, seq) dedup
  std::vector<std::set<core::Rank>> stage_got(static_cast<std::size_t>(n));
  struct EarlyFrame {
    int stage;
    core::Rank sender;
    std::vector<std::byte> body;
  };
  std::vector<EarlyFrame> early;  // frames from neighbors already past us
  std::vector<Submessage> direct_delivered;
  std::uint64_t direct_bytes = 0;

  auto accept_stage_subs = [&](int stage, core::Rank sender, std::span<const std::byte> body) {
    const std::vector<Submessage> subs = core::deserialize_tracked(body, arena);
#if STFW_VALIDATE_ENABLED
    if (validator) validator->on_stage_recv(stage, sender, subs);
#endif
    state.accept(stage, subs);
    ++stats_.messages_received;
    stage_got[static_cast<std::size_t>(stage)].insert(sender);
  };

  auto process_incoming = [&] {
    for (runtime::Message& m : comm_->drain(kResilientAckTag)) {
      const auto dec = core::decode_frame(m.data);
      if (!dec || (dec->header.kind != core::FrameKind::kAck &&
                   dec->header.kind != core::FrameKind::kNack)) {
        ++stats_.corrupt_frames_discarded;
        continue;
      }
      if (dec->header.epoch != epoch) continue;  // stale, not corrupt
      const auto it = frame_by_seq.find(dec->header.seq);
      if (it == frame_by_seq.end()) continue;
      const std::size_t idx = it->second;
      if (static_cast<core::Rank>(dec->header.sender) != frames[idx].dest) continue;
      if (dec->header.kind == core::FrameKind::kAck) {
        if (!frames[idx].acked && !frames[idx].failed) {
          frames[idx].acked = true;
          ++stats_.acks_received;
        }
      } else if (!frames[idx].acked && !frames[idx].failed) {
        // The receiver refused this frame (it moved past the frame's stage);
        // retrying cannot succeed, so degrade right away instead of burning
        // the remaining attempts against a closed door.
        fail_frame(idx);
      }
    }
    for (runtime::Message& m : comm_->drain(kResilientDataTag)) {
      const auto dec = core::decode_frame(m.data);
      if (!dec || (dec->header.kind != core::FrameKind::kData &&
                   dec->header.kind != core::FrameKind::kDirect)) {
        ++stats_.corrupt_frames_discarded;  // truncated / bit-rotted / mis-tagged
        continue;
      }
      const core::FrameHeader& h = dec->header;
      if (h.epoch != epoch) continue;
      const auto sender = static_cast<core::Rank>(h.sender);
      if (sender < 0 || sender >= vpt_.size()) {
        ++stats_.corrupt_frames_discarded;
        continue;
      }
      const auto key = std::make_pair(h.sender, h.seq);
      if (h.kind == core::FrameKind::kDirect) {
        send_ack(sender, h);  // re-ack duplicates: our earlier ack may have died
        if (!seen.insert(key).second) {
          ++stats_.duplicate_frames_discarded;
          continue;
        }
        const std::vector<Submessage> subs = core::deserialize_tracked(dec->body, arena);
#if STFW_VALIDATE_ENABLED
        if (validator) validator->on_direct_recv(sender, subs);
#endif
        for (const Submessage& s : subs) {
          core::require(s.dest == me, "exchange_resilient: direct frame not addressed to me");
          direct_delivered.push_back(s);
          direct_bytes += s.size_bytes;
        }
        ++stats_.messages_received;
        continue;
      }
      // kData
      const int fstage = static_cast<int>(h.stage);
      if (fstage >= n ||
          !(vpt_.are_neighbors(sender, me) && vpt_.first_diff_dim(sender, me) == fstage)) {
        ++stats_.corrupt_frames_discarded;
        continue;
      }
      if (seen.count(key) != 0) {
        send_ack(sender, h);
        ++stats_.duplicate_frames_discarded;
        continue;
      }
      if (fstage < cur_stage) {
        // We gave up on this stage and moved on; accepting now would strand
        // submessages whose forwarding stages already ran. Nack so the
        // sender switches to its direct-routing fallback immediately.
        ++stats_.late_frames_refused;
        send_control(core::FrameKind::kNack, sender, h);
        continue;
      }
      send_ack(sender, h);
      seen.insert(key);
      if (fstage > cur_stage) {
        // Neighbor is ahead of us; park the frame until we enter its stage.
        early.push_back({fstage, sender, {dec->body.begin(), dec->body.end()}});
        continue;
      }
      accept_stage_subs(cur_stage, sender, dec->body);
    }
  };

  // --- the staged exchange -------------------------------------------------
  std::vector<core::Rank> nbrs;
  std::vector<StageMessage> outbox;
  std::uint64_t transit_peak = 0;
  for (cur_stage = 0; cur_stage < n; ++cur_stage) {
    verify_stage_tag(static_cast<int>(me), cur_stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), cur_stage);

    // Build this stage's frames. Unlike plain exchange(), every dimension-d
    // neighbor gets a frame — an empty one if we have nothing to forward —
    // so receivers can detect stage completeness by counting senders.
    outbox.clear();
    state.make_stage_outbox(cur_stage, outbox);
    std::map<core::Rank, std::size_t> outbox_by_dest;
    for (std::size_t i = 0; i < outbox.size(); ++i) outbox_by_dest.emplace(outbox[i].to, i);
    nbrs.clear();
    vpt_.neighbors(me, cur_stage, nbrs);
    for (const core::Rank nbr : nbrs) {
      StageMessage msg{me, nbr, {}};
      if (const auto it = outbox_by_dest.find(nbr); it != outbox_by_dest.end())
        msg.subs = std::move(outbox[it->second].subs);
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_send(cur_stage, msg);
#endif
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += msg.payload_bytes();
      make_frame(core::FrameKind::kData, cur_stage, nbr, std::move(msg));
    }

    // Frames for this stage that arrived while we were still behind.
    for (auto it = early.begin(); it != early.end();) {
      if (it->stage == cur_stage) {
        accept_stage_subs(cur_stage, it->sender, it->body);
        it = early.erase(it);
      } else {
        ++it;
      }
    }

    const auto stage_end = verify::verify_now() + opt.stage_deadline;
    const auto want = static_cast<std::size_t>(vpt_.dim_size(cur_stage) - 1);
    for (;;) {
      process_incoming();
      const auto now = verify::verify_now();
      const auto next_event = pump_sends(now);
      if (stage_got[static_cast<std::size_t>(cur_stage)].size() >= want) break;
      if (now >= stage_end) {
        // Note the gap and move on: the silent senders will fail their
        // retries and re-route directly, or report the loss themselves.
        ++stats_.timeouts;
        for (const core::Rank nbr : nbrs)
          if (stage_got[static_cast<std::size_t>(cur_stage)].count(nbr) == 0)
            result.failure.missing.push_back({cur_stage, nbr});
        break;
      }
      comm_->wait_message(runtime::Deadline{std::min(next_event, stage_end)});
    }

    transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(cur_stage, state.buffered_payload_bytes(),
                                   state.buffered_submessage_count());
#endif
  }

  // --- settlement: serve acks/retransmits until every rank is done ---------
  // Event-driven termination instead of a blocking collective: a rank stuck
  // inside an allgather cannot retransmit or ack, which starves peers into
  // full stage-deadline waits. Here every rank keeps pumping until the whole
  // cluster is settled; "settled" reports flow to rank 0 over the reliable
  // control tags (negative tags; the injector leaves them alone by default —
  // the "reliable side channel" of the fault model) and rank 0 broadcasts
  // completion. A safety valve bounds the wait: past it, outstanding frames
  // are declared lost so the exchange always terminates.
  {
    constexpr int kSettleReportTag = -1002;
    constexpr int kSettleDoneTag = -1003;
    // Peers still mid-exchange may legitimately lag by up to one stage
    // deadline per remaining stage before they can start answering.
    const auto settle_valve = verify::verify_now() + opt.stage_deadline * n +
                              opt.retransmit_timeout * opt.max_settle_rounds;
    const int world = comm_->size();
    std::set<int> settled_ranks;  // rank 0 only
    bool reported = false;
    bool done = false;
    while (!done) {
      process_incoming();
      if (verify::verify_now() >= settle_valve) {
        // Whatever is still unacked is now a definite loss. No direct
        // fallback this late: new frames could never be acknowledged.
        for (OutFrame& f : frames) {
          if (f.acked || f.failed) continue;
          f.failed = true;
          ++stats_.timeouts;
          for (const Submessage& s : f.subs)
            result.failure.lost.push_back({s.source, s.dest, s.size_bytes, f.stage});
        }
      }
      const auto next_event = pump_sends(verify::verify_now());
      if (!reported && all_settled_locally()) {
        reported = true;
        if (me == 0)
          settled_ranks.insert(0);
        else
          comm_->send(0, kSettleReportTag, std::vector<std::byte>{std::byte{1}});
      }
      if (me == 0) {
        for (const runtime::Message& m : comm_->drain(kSettleReportTag))
          settled_ranks.insert(m.source);
        if (reported && static_cast<int>(settled_ranks.size()) == world) {
          for (int r = 1; r < world; ++r)
            comm_->send(r, kSettleDoneTag, std::vector<std::byte>{std::byte{1}});
          done = true;
        }
      } else if (!comm_->drain(kSettleDoneTag).empty()) {
        done = true;
      }
      if (!done) {
        const auto tick = verify::verify_now() + opt.retransmit_timeout;
        comm_->wait_message(runtime::Deadline{std::min(next_event, tick)});
      }
    }
  }

  // Global recovery verdict, so every rank can branch on it collectively.
  std::vector<std::byte> lost_flag{
      static_cast<std::byte>(result.failure.lost.empty() ? 0 : 1)};
  const auto lost_flags =
      comm_->allgather(std::move(lost_flag), runtime::Deadline::in(opt.stage_deadline));
  result.fully_recovered = true;
  for (const auto& fb : lost_flags)
    if (!fb.empty() && fb[0] != std::byte{0}) result.fully_recovered = false;

  // Epilogue: no rank transmits protocol frames past this point. Flush any
  // injector-delayed stragglers into the mailboxes and discard everything
  // still addressed to this exchange, so the next one starts clean (the
  // cluster asserts empty mailboxes between runs). The barriers are
  // deliberately deadline-free: every rank has already passed the bounded
  // settlement loop above, so arrival is unconditional, and a timeout here
  // could strand delayed frames for the next exchange to trip over.
  comm_->barrier();  // stfw-lint: allow(l3-deadline) -- post-settlement; all ranks provably arrive
  comm_->flush_delayed();
  comm_->barrier();  // stfw-lint: allow(l3-deadline) -- post-settlement; all ranks provably arrive
  (void)comm_->drain(kResilientDataTag);
  (void)comm_->drain(kResilientAckTag);
  (void)comm_->drain(-1002);  // settle reports/done: should already be empty
  (void)comm_->drain(-1003);

  stats_.peak_buffer_bytes =
      seed_bytes + state.delivered_payload_bytes() + direct_bytes + transit_peak;

  // Merge store-and-forward and direct deliveries, deduplicating by
  // (source, id): when a sender exhausts its retries even though the
  // receiver had in fact accepted the frame (all acks lost or too slow),
  // the fallback re-delivers submessages the stage path also delivers.
  std::vector<Submessage> delivered = state.take_delivered();
  std::set<std::pair<core::Rank, std::uint32_t>> delivered_keys;
  for (const Submessage& s : delivered) delivered_keys.insert({s.source, s.id});
  for (const Submessage& s : direct_delivered) {
    if (delivered_keys.insert({s.source, s.id}).second)
      delivered.push_back(s);
    else
      ++stats_.duplicate_submessages_discarded;
  }

#if STFW_VALIDATE_ENABLED
  if (validator && result.fully_recovered) {
    // The conservation check is collective and only meaningful when nothing
    // was lost anywhere; fully_recovered is globally agreed, so all ranks
    // take this branch together. Deadline-bounded (stfw-lint l3-deadline
    // flagged the bare overload): a rank dying here must surface as a
    // TimeoutError, not a hang.
    const auto summaries = comm_->allgather(validator->summary_blob(),
                                            runtime::Deadline::in(opt.stage_deadline));
    validator->finish(delivered, arena, stats_.messages_sent, summaries);
  }
#endif

  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  result.delivered.reserve(delivered.size());
  for (const Submessage& s : delivered) {
    const auto payload = arena.view(s);
    result.delivered.push_back(InboundMessage{s.source, {payload.begin(), payload.end()}});
  }
  return result;
}

}  // namespace stfw
