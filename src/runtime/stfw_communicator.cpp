#include "stfw_communicator.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "core/error.hpp"
#include "core/wire.hpp"

#if STFW_VALIDATE_ENABLED
#include "validate/exchange_validator.hpp"
#endif

namespace stfw {

using core::PayloadArena;
using core::StageMessage;
using core::StfwRankState;
using core::Submessage;

namespace {

bool validation_default() {
#if STFW_VALIDATE_ENABLED
  const char* env = std::getenv("STFW_VALIDATE");
  if (env != nullptr && (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
                         std::strcmp(env, "false") == 0))
    return false;
  return true;
#else
  return false;
#endif
}

}  // namespace

bool StfwCommunicator::validation_available() noexcept {
#if STFW_VALIDATE_ENABLED
  return true;
#else
  return false;
#endif
}

StfwCommunicator::StfwCommunicator(runtime::Comm& comm, core::Vpt vpt)
    : comm_(&comm), vpt_(std::move(vpt)), validate_(validation_default()) {
  core::require(vpt_.size() == comm.size(),
                "StfwCommunicator: VPT size must equal communicator size");
}

std::vector<InboundMessage> StfwCommunicator::exchange(std::span<const OutboundMessage> sends) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  StfwRankState state(vpt_, me);
  PayloadArena arena;
  stats_ = LocalExchangeStats{};

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) validator.emplace(vpt_, me);
#endif

  std::uint64_t seed_bytes = 0;
  for (const OutboundMessage& s : sends) {
#if STFW_VALIDATE_ENABLED
    if (validator) validator->on_seed(s.dest, s.bytes);
#endif
    const std::uint64_t off = arena.add(s.bytes);
    state.add_send(s.dest, off, static_cast<std::uint32_t>(s.bytes.size()));
    seed_bytes += s.bytes.size();
  }

  std::vector<StageMessage> outbox;
  std::uint64_t transit_peak = 0;
  const int tag_base = epoch_ * vpt_.dim();
  for (int stage = 0; stage < vpt_.dim(); ++stage) {
    const int tag = tag_base + stage;
    outbox.clear();
    state.make_stage_outbox(stage, outbox);
    for (const StageMessage& m : outbox) {
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_send(stage, m);
#endif
      auto wire = core::serialize(m, arena);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += m.payload_bytes();
      stats_.wire_bytes_sent += wire.size();
      comm_->send(static_cast<int>(m.to), tag, std::move(wire));
    }
    // All sends of this stage happen-before the barrier, so drain() below
    // sees the complete set of stage messages addressed to us.
    comm_->barrier();
    for (runtime::Message& m : comm_->drain(tag)) {
      ++stats_.messages_received;
      const std::vector<Submessage> subs = core::deserialize(m.data, arena);
#if STFW_VALIDATE_ENABLED
      if (validator)
        validator->on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
#endif
      state.accept(stage, subs);
    }
    transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(stage, state.buffered_payload_bytes(),
                                   state.buffered_submessage_count());
#endif
  }
  ++epoch_;

  // Paper Section 6.2 buffer metric: original send + receive buffers plus
  // the store-and-forward transit residency.
  stats_.peak_buffer_bytes = seed_bytes + state.delivered_payload_bytes() + transit_peak;

  std::vector<Submessage> delivered = state.take_delivered();

#if STFW_VALIDATE_ENABLED
  if (validator) {
    // Collective conservation + buffer-bound verdict: every rank shares its
    // seed-side claims and checks its deliveries against them.
    const auto summaries = comm_->allgather(validator->summary_blob());
    validator->finish(delivered, arena, stats_.messages_sent, summaries);
  }
#endif

  std::vector<InboundMessage> result;
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  result.reserve(delivered.size());
  for (const Submessage& s : delivered) {
    const auto payload = arena.view(s);
    result.push_back(InboundMessage{s.source, {payload.begin(), payload.end()}});
  }
  return result;
}

}  // namespace stfw
