#include "stfw_communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/exchange_plan.hpp"
#include "core/wire.hpp"
#include "fault/fault_injector.hpp"

#if STFW_VALIDATE_ENABLED
#include "validate/exchange_validator.hpp"
#endif

namespace stfw {

using core::PayloadArena;
using core::StageMessage;
using core::StfwRankState;
using core::Submessage;

namespace {

// Fixed tags of the resilient frame protocol, far above any plain-exchange
// stage tag (epoch * dim + stage); the exchange epoch travels inside the
// frame header instead of the tag.
constexpr int kResilientDataTag = 1 << 28;
constexpr int kResilientAckTag = (1 << 28) + 1;

constexpr std::size_t kDefaultPlanCacheCapacity = 4;

// Hang guard of the plain exchange's dependency waits: generous against real
// schedules (stages complete in microseconds) yet finite, so a lost rank
// surfaces as core::TimeoutError instead of an untimed hang.
constexpr std::uint64_t kDefaultExchangeDeadlineMs = 30000;

// Regularized stage traffic: every (stage, dimension-d neighbor) pair
// carries exactly one frame. Neighbors the outbox leaves empty still get a
// 4-byte empty StageMessage (submessage count 0) so each receiver can block
// on per-neighbor frame counters — dependency-driven progress — instead of
// a global barrier. A real frame always carries >= 1 submessage header, so
// on the wire empty <=> filler, on both the payload format (core::serialize)
// and the header-only planning format (serialize_headers).
std::vector<std::byte> filler_frame() { return std::vector<std::byte>(4); }

bool is_filler_frame(std::span<const std::byte> raw) noexcept { return raw.size() == 4; }

// Stage boundary annotation for stfw-verify schedule traces; pairs with the
// fault injector's at_stage sites so a race/oracle report can name the
// dimension-order stage it happened in. No-op unless an engine is installed.
inline void verify_stage_tag(int rank, int stage) {
#if STFW_VERIFY_ENABLED
  STFW_VERIFY_HOOK(stage(rank, stage));
#else
  (void)rank;
  (void)stage;
#endif
}

std::vector<std::pair<core::Rank, std::uint32_t>> pattern_of(
    std::span<const OutboundMessage> sends) {
  std::vector<std::pair<core::Rank, std::uint32_t>> pattern;
  pattern.reserve(sends.size());
  for (const OutboundMessage& s : sends)
    pattern.emplace_back(s.dest, static_cast<std::uint32_t>(s.bytes.size()));
  return pattern;
}

// Header-only wire format of the planning pass: u32 count, then per
// submessage { i32 source, i32 dest, u32 len }. Only plan() traffic uses it
// (a collective, so no other reader can see these frames).
std::vector<std::byte> serialize_headers(const StageMessage& msg) {
  std::vector<std::byte> out(4 + msg.subs.size() * 12);
  std::byte* p = out.data();
  const auto count = static_cast<std::uint32_t>(msg.subs.size());
  std::memcpy(p, &count, 4);
  p += 4;
  for (const Submessage& s : msg.subs) {
    std::memcpy(p, &s.source, 4);
    std::memcpy(p + 4, &s.dest, 4);
    std::memcpy(p + 8, &s.size_bytes, 4);
    p += 12;
  }
  return out;
}

std::vector<Submessage> deserialize_headers(std::span<const std::byte> wire) {
  core::require(wire.size() >= 4, "plan: truncated header frame");
  std::uint32_t count = 0;
  std::memcpy(&count, wire.data(), 4);
  core::require(wire.size() == 4 + static_cast<std::size_t>(count) * 12,
                "plan: header frame size mismatch");
  std::vector<Submessage> subs(count);
  const std::byte* p = wire.data() + 4;
  for (Submessage& s : subs) {
    std::memcpy(&s.source, p, 4);
    std::memcpy(&s.dest, p + 4, 4);
    std::memcpy(&s.size_bytes, p + 8, 4);
    p += 12;
  }
  return subs;
}

// Provenance encoding of the planning pass: StfwRankState routes
// Submessage::offset untouched, so while planning it carries where the
// payload will come from at replay time instead of an arena offset.
constexpr std::uint64_t kProvRecvBit = 1ull << 63;

std::uint64_t encode_recv_prov(int stage, std::size_t frame, std::uint64_t offset) {
  return kProvRecvBit | (static_cast<std::uint64_t>(stage) << 48) |
         (static_cast<std::uint64_t>(frame) << 32) | offset;
}

core::PayloadSrc decode_prov(std::uint64_t enc, std::uint32_t bytes) {
  core::PayloadSrc src;
  src.bytes = bytes;
  if ((enc & kProvRecvBit) == 0) {
    src.kind = core::PayloadSrc::Kind::kSeed;
    src.index = static_cast<std::uint32_t>(enc);
  } else {
    src.kind = core::PayloadSrc::Kind::kRecv;
    src.stage = static_cast<std::uint8_t>((enc >> 48) & 0x7fu);
    src.frame = static_cast<std::uint16_t>((enc >> 32) & 0xffffu);
    src.offset = static_cast<std::uint32_t>(enc & 0xffffffffull);
  }
  return src;
}

// True when a received wire frame has exactly the submessage headers the
// plan expects at the planned offsets. Any deviation means a peer's pattern
// drifted since the plan was recorded.
bool frame_headers_match(std::span<const std::byte> raw, const core::PlanInFrame& f) {
  if (raw.size() != f.wire_size || raw.size() < 4) return false;
  std::uint32_t count = 0;
  std::memcpy(&count, raw.data(), 4);
  if (count != f.subs.size()) return false;
  for (const Submessage& s : f.subs) {
    const std::byte* h = raw.data() + s.offset - 12;
    std::int32_t source = -1;
    std::int32_t dest = -1;
    std::uint32_t len = 0;
    std::memcpy(&source, h, 4);
    std::memcpy(&dest, h + 4, 4);
    std::memcpy(&len, h + 8, 4);
    if (source != s.source || dest != s.dest || len != s.size_bytes) return false;
  }
  return true;
}

// Copies `frame`'s prebuilt wire image and fills its payload gaps from the
// seed payload views / previously received raw frames. The historical
// copying assembly, kept as the zero-copy A/B baseline (set_zero_copy(false)
// / STFW_ZERO_COPY=0): every payload byte is written twice, once as the
// image's zeroed gap and once as the payload itself.
std::vector<std::byte> fill_planned_frame(
    const core::PlanOutFrame& frame, std::span<const std::span<const std::byte>> seeds,
    const std::vector<std::vector<std::vector<std::byte>>>& in_raw) {
  std::vector<std::byte> wire(frame.image);
  for (std::size_t i = 0; i < frame.slots.size(); ++i) {
    const core::PayloadSrc& src = frame.slots[i];
    const std::byte* from = src.kind == core::PayloadSrc::Kind::kSeed
                                ? seeds[src.index].data()
                                : in_raw[src.stage][src.frame].data() + src.offset;
    std::memcpy(wire.data() + frame.slot_offsets[i], from, src.bytes);
  }
  return wire;
}

// Scatter/gather assembly of one planned frame into a pooled wire buffer:
// template segments of the frozen image (the submessage headers between the
// payload gaps) are interleaved with payload memcpys straight from the seed
// views / parked inbound frames. Every byte of the buffer is written exactly
// once — no image pre-copy, no double-written payload bytes, and (since the
// pool's sanitize-mode poison is fully overwritten) nothing stale can leak
// onto the wire. Slot offsets were audited by validate_plan_layout at plan
// construction, so the arithmetic here can trust them.
std::vector<std::byte> gather_planned_frame(
    core::BufferPool& pool, const core::PlanOutFrame& frame,
    std::span<const std::span<const std::byte>> seeds,
    const std::vector<std::vector<std::vector<std::byte>>>& in_raw) {
  std::vector<std::byte> wire = pool.acquire(frame.image.size());
  const std::byte* img = frame.image.data();
  std::byte* out = wire.data();
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < frame.slots.size(); ++i) {
    const core::PayloadSrc& src = frame.slots[i];
    const std::size_t off = frame.slot_offsets[i];
    if (off > cursor) std::memcpy(out + cursor, img + cursor, off - cursor);
    const std::byte* from = src.kind == core::PayloadSrc::Kind::kSeed
                                ? seeds[src.index].data()
                                : in_raw[src.stage][src.frame].data() + src.offset;
    std::memcpy(out + off, from, src.bytes);
    cursor = off + src.bytes;
  }
  if (cursor < frame.image.size())
    std::memcpy(out + cursor, img + cursor, frame.image.size() - cursor);
  return wire;
}

// Per-exchange pool counters: the difference between the communicator pool's
// cumulative stats now and at exchange entry.
void record_pool_delta(LocalExchangeStats& stats, const core::BufferPoolStats& now,
                       const core::BufferPoolStats& before) {
  stats.pool_hits = now.hits - before.hits;
  stats.pool_misses = now.misses - before.misses;
  stats.pool_reused_bytes = now.reused_bytes - before.reused_bytes;
}

// Materializes the InboundMessages of a completed planned exchange.
std::vector<InboundMessage> planned_result(
    const core::ExchangePlanLayout& layout, std::span<const std::span<const std::byte>> seeds,
    const std::vector<std::vector<std::vector<std::byte>>>& in_raw) {
  std::vector<InboundMessage> result;
  result.reserve(layout.deliveries.size());
  for (const core::PlanDelivery& d : layout.deliveries) {
    if (d.src.bytes == 0) {
      result.push_back(InboundMessage{d.source, {}});
      continue;
    }
    const std::byte* from = d.src.kind == core::PayloadSrc::Kind::kSeed
                                ? seeds[d.src.index].data()
                                : in_raw[d.src.stage][d.src.frame].data() + d.src.offset;
    result.push_back(InboundMessage{d.source, {from, from + d.src.bytes}});
  }
  return result;
}

std::vector<std::span<const std::byte>> seed_views_of(std::span<const OutboundMessage> sends) {
  std::vector<std::span<const std::byte>> views;
  views.reserve(sends.size());
  for (const OutboundMessage& s : sends) views.emplace_back(s.bytes);
  return views;
}

bool validation_default() {
#if STFW_VALIDATE_ENABLED
  // Strict parse (core/env): a typo'd STFW_VALIDATE throws instead of
  // silently leaving the validator on.
  return core::env_flag("STFW_VALIDATE", true);
#else
  return false;
#endif
}

}  // namespace

bool StfwCommunicator::validation_available() noexcept {
#if STFW_VALIDATE_ENABLED
  return true;
#else
  return false;
#endif
}

std::chrono::milliseconds next_backoff(std::chrono::milliseconds current, double factor,
                                       std::chrono::milliseconds retransmit_timeout,
                                       std::chrono::milliseconds stage_deadline) noexcept {
  using rep = std::chrono::milliseconds::rep;
  // Cap the backoff well below the stage deadline: the settlement loop's
  // wall budget is max_settle_rounds * retransmit_timeout, and a retry
  // scheduled beyond it would be force-failed even though the peer was
  // about to accept it. The 8x term is skipped when the multiply would
  // overflow rep; the cap itself never goes negative.
  rep cap = std::max<rep>(stage_deadline.count(), 0);
  const rep rt = retransmit_timeout.count();
  if (rt >= 0 && rt < std::numeric_limits<rep>::max() / 8) cap = std::min(cap, 8 * rt);
  // Clamp BEFORE the double -> rep cast: current * factor can exceed what
  // rep holds (large factor, or backoff grown near rep's max), and casting
  // an out-of-range double is undefined — observed as a negative delay that
  // turns the retry loop into a hot spin. NaN and negative products floor
  // at zero.
  const double scaled = static_cast<double>(current.count()) * factor;
  if (!(scaled >= 0.0)) return std::chrono::milliseconds{0};
  if (scaled >= static_cast<double>(cap)) return std::chrono::milliseconds{cap};
  return std::chrono::milliseconds{static_cast<rep>(scaled)};
}

StfwCommunicator::StfwCommunicator(runtime::Comm& comm, core::Vpt vpt)
    : comm_(&comm),
      vpt_(std::move(vpt)),
      validate_(validation_default()),
      exchange_deadline_(std::chrono::milliseconds(
          core::env_u64("STFW_EXCHANGE_DEADLINE_MS", kDefaultExchangeDeadlineMs))),
      barrier_sync_(core::env_flag("STFW_BARRIER_SYNC", false)),
      zero_copy_(core::env_flag("STFW_ZERO_COPY", true)),
      plan_cache_capacity_(static_cast<std::size_t>(
          core::env_u64("STFW_PLAN_CACHE", kDefaultPlanCacheCapacity))) {
  core::require(vpt_.size() == comm.size(),
                "StfwCommunicator: VPT size must equal communicator size");
}

runtime::Deadline StfwCommunicator::stage_deadline() const {
  return exchange_deadline_.count() == 0 ? runtime::Deadline::never()
                                         : runtime::Deadline::in(exchange_deadline_);
}

void StfwCommunicator::stage_neighbor_ranks(int stage, std::vector<int>& out) const {
  out.clear();
  const auto me = static_cast<core::Rank>(comm_->rank());
  const int k = vpt_.dim_size(stage);
  // with_coord over ascending digit values yields ascending ranks, matching
  // the drain() sort order the plan's in_frame indices were frozen under.
  for (int v = 0; v < k; ++v) {
    const core::Rank r = vpt_.with_coord(me, stage, v);
    if (r != me) out.push_back(static_cast<int>(r));
  }
}

void StfwCommunicator::send_stage_fillers(int stage, int tag, std::span<const int> neighbors,
                                          const std::vector<bool>& covered, bool count_stats) {
  (void)stage;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (covered[i]) continue;
    if (count_stats) {
      ++stats_.filler_frames_sent;
      stats_.wire_bytes_sent += 4;
    }
    comm_->send(neighbors[i], tag, filler_frame());
  }
}

std::vector<std::byte> StfwCommunicator::planned_frame_bytes(
    const core::PlanOutFrame& frame, std::span<const std::span<const std::byte>> seeds,
    const std::vector<std::vector<std::vector<std::byte>>>& in_raw) {
  return zero_copy_ ? gather_planned_frame(pool_, frame, seeds, in_raw)
                    : fill_planned_frame(frame, seeds, in_raw);
}

std::size_t StfwCommunicator::plan_cache_capacity() const {
  core::MutexLock lock(plan_cache_mu_);
  return plan_cache_capacity_;
}

std::size_t StfwCommunicator::plan_cache_size() const {
  core::MutexLock lock(plan_cache_mu_);
  return plan_cache_.size();
}

void StfwCommunicator::set_plan_cache_capacity(std::size_t capacity) {
  core::MutexLock lock(plan_cache_mu_);
  plan_cache_capacity_ = capacity;
  plan_cache_evict_to(capacity);
}

void StfwCommunicator::plan_cache_evict_to(std::size_t capacity) {
  while (plan_cache_.size() > capacity) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < plan_cache_.size(); ++i)
      if (plan_cache_[i].last_use < plan_cache_[lru].last_use) lru = i;
    plan_cache_[lru] = std::move(plan_cache_.back());
    plan_cache_.pop_back();
  }
}

std::shared_ptr<runtime::ExchangePlan> StfwCommunicator::plan_cache_find(
    const core::PatternSignature& sig) {
  core::MutexLock lock(plan_cache_mu_);
  for (PlanCacheEntry& e : plan_cache_) {
    if (e.plan->signature() == sig) {
      e.last_use = ++plan_cache_tick_;
      return e.plan;
    }
  }
  return nullptr;
}

void StfwCommunicator::plan_cache_insert(std::shared_ptr<runtime::ExchangePlan> plan) {
  core::MutexLock lock(plan_cache_mu_);
  if (plan_cache_capacity_ == 0) return;
  for (PlanCacheEntry& e : plan_cache_) {
    if (e.plan->signature() == plan->signature()) {
      e.plan = std::move(plan);
      e.last_use = ++plan_cache_tick_;
      return;
    }
  }
  if (plan_cache_.size() >= plan_cache_capacity_ && !plan_cache_.empty()) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < plan_cache_.size(); ++i)
      if (plan_cache_[i].last_use < plan_cache_[lru].last_use) lru = i;
    plan_cache_[lru] = PlanCacheEntry{std::move(plan), ++plan_cache_tick_};
    return;
  }
  plan_cache_.push_back(PlanCacheEntry{std::move(plan), ++plan_cache_tick_});
}

void StfwCommunicator::plan_cache_erase(const core::PatternSignature& sig) {
  core::MutexLock lock(plan_cache_mu_);
  for (std::size_t i = 0; i < plan_cache_.size(); ++i) {
    if (plan_cache_[i].plan->signature() == sig) {
      plan_cache_[i] = std::move(plan_cache_.back());
      plan_cache_.pop_back();
      return;
    }
  }
}

std::vector<InboundMessage> StfwCommunicator::exchange(std::span<const OutboundMessage> sends) {
  return exchange(sends, OverlapHook{});
}

std::vector<InboundMessage> StfwCommunicator::exchange(std::span<const OutboundMessage> sends,
                                                       const OverlapHook& overlap) {
  // Plain exchange() assumes a reliable transport *and* full membership: its
  // frozen neighbor roster cannot route around a dead rank, so a degraded
  // cluster must use exchange_resilient() (docs/fault_model.md).
  core::require(!comm_->membership().any_failed(),
                "exchange: cluster is degraded (a rank died); plain exchange() cannot "
                "survive rank failure — use exchange_resilient()");
  if (plan_cache_capacity() > 0) {
    const auto pattern = pattern_of(sends);
    const auto sig = core::PatternSignature::of(pattern);
    // The shared_ptr pins the plan for the call: a mid-flight fallback
    // erases the cache entry while the plan's scratch is still in use.
    if (const std::shared_ptr<runtime::ExchangePlan> hit = plan_cache_find(sig))
      return exchange_planned_cached(*hit, sends, overlap);
    return exchange_unplanned(sends, &sig, overlap);
  }
  return exchange_unplanned(sends, nullptr, overlap);
}

std::vector<InboundMessage> StfwCommunicator::exchange_unplanned(
    std::span<const OutboundMessage> sends, const core::PatternSignature* record_as,
    const OverlapHook& overlap) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  StfwRankState state(vpt_, me);
  PayloadArena arena;
  stats_ = LocalExchangeStats{};

  // On a cache miss the exchange records itself into a PlanRecorder:
  // payload provenance (seed index or inbound-frame slice) is tracked per
  // arena offset so the finished layout can replay the routing with plain
  // memcpys next iteration.
  std::optional<core::PlanRecorder> recorder;
  std::unordered_map<std::uint64_t, core::PayloadSrc> provenance;
  if (record_as != nullptr) recorder.emplace(vpt_, me, record_as->sequence);

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) validator.emplace(vpt_, me);
#endif

  std::uint64_t seed_bytes = 0;
  std::uint32_t seed_index = 0;
  for (const OutboundMessage& s : sends) {
#if STFW_VALIDATE_ENABLED
    if (validator) validator->on_seed(s.dest, s.bytes);
#endif
    const std::uint64_t off = arena.add(s.bytes);
    state.add_send(s.dest, off, static_cast<std::uint32_t>(s.bytes.size()));
    if (recorder && !s.bytes.empty()) {
      core::PayloadSrc src;
      src.kind = core::PayloadSrc::Kind::kSeed;
      src.index = seed_index;
      src.bytes = static_cast<std::uint32_t>(s.bytes.size());
      provenance.insert_or_assign(off, src);
    }
    ++seed_index;
    seed_bytes += s.bytes.size();
  }

  std::vector<StageMessage> outbox;
  std::vector<core::PayloadSrc> srcs;
  std::vector<int> nbrs;
  std::vector<bool> covered;
  std::uint64_t transit_peak = 0;
  const int tag_base = epoch_ * vpt_.dim();
  fault::FaultInjector* injector = comm_->fault_injector();
  for (int stage = 0; stage < vpt_.dim(); ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    stage_neighbor_ranks(stage, nbrs);
    covered.assign(nbrs.size(), false);
    outbox.clear();
    state.make_stage_outbox(stage, outbox);
    for (const StageMessage& m : outbox) {
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_send(stage, m);
#endif
      if (recorder) {
        srcs.clear();
        for (const Submessage& s : m.subs)
          srcs.push_back(s.size_bytes == 0 ? core::PayloadSrc{} : provenance.at(s.offset));
        recorder->on_stage_send(stage, m.to, m.subs, srcs);
      }
      auto wire = core::serialize(m, arena);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += m.payload_bytes();
      stats_.wire_bytes_sent += wire.size();
      const auto ni = std::lower_bound(nbrs.begin(), nbrs.end(), static_cast<int>(m.to));
      if (ni != nbrs.end() && *ni == static_cast<int>(m.to))
        covered[static_cast<std::size_t>(ni - nbrs.begin())] = true;
      comm_->send(static_cast<int>(m.to), tag, std::move(wire));
    }
    send_stage_fillers(stage, tag, nbrs, covered, /*count_stats=*/true);
    if (stage == 0 && overlap) overlap();
    // Dependency-driven progress: this rank's stage completes as soon as one
    // frame — real or filler — has arrived from each dimension-`stage`
    // neighbor; frames of later stages and exchanges wait in the mailbox
    // under their own tags. barrier_sync() re-inserts the bulk-synchronous
    // seed schedule for A/B measurement.
    if (barrier_sync_) comm_->barrier(stage_deadline());
    std::size_t frame_index = 0;
    for (runtime::Message& m : comm_->recv_from_each(nbrs, tag, stage_deadline())) {
      if (is_filler_frame(m.data)) {
        ++stats_.filler_frames_received;
        continue;
      }
      ++stats_.messages_received;
      const std::vector<Submessage> subs = core::deserialize(m.data, arena);
#if STFW_VALIDATE_ENABLED
      if (validator)
        validator->on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
#endif
      if (recorder) {
        const core::PlanInFrame& frame =
            recorder->on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
        for (std::size_t k = 0; k < subs.size(); ++k) {
          if (subs[k].size_bytes == 0) continue;
          core::PayloadSrc src;
          src.kind = core::PayloadSrc::Kind::kRecv;
          src.stage = static_cast<std::uint8_t>(stage);
          src.frame = static_cast<std::uint16_t>(frame_index);
          src.offset = static_cast<std::uint32_t>(frame.subs[k].offset);
          src.bytes = subs[k].size_bytes;
          provenance.insert_or_assign(subs[k].offset, src);
        }
      }
      state.accept(stage, subs);
      ++frame_index;
    }
    transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
    if (recorder)
      recorder->on_stage_complete(stage, state.buffered_payload_bytes(),
                                  state.buffered_submessage_count());
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(stage, state.buffered_payload_bytes(),
                                   state.buffered_submessage_count());
#endif
  }
  ++epoch_;

  // Paper Section 6.2 buffer metric: original send + receive buffers plus
  // the store-and-forward transit residency.
  stats_.peak_buffer_bytes = seed_bytes + state.delivered_payload_bytes() + transit_peak;

  std::vector<Submessage> delivered = state.take_delivered();

#if STFW_VALIDATE_ENABLED
  if (validator) {
    // Collective conservation + buffer-bound verdict: every rank shares its
    // seed-side claims and checks its deliveries against them.
    const auto summaries = comm_->allgather(validator->summary_blob(), stage_deadline());
    validator->finish(delivered, arena, stats_.messages_sent, summaries);
  }
#endif

  std::vector<InboundMessage> result;
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  if (recorder) {
    srcs.clear();
    for (const Submessage& s : delivered)
      srcs.push_back(s.size_bytes == 0 ? core::PayloadSrc{} : provenance.at(s.offset));
    plan_cache_insert(
        std::make_shared<runtime::ExchangePlan>(recorder->finish(delivered, srcs)));
    stats_.plan_builds = 1;
  }
  result.reserve(delivered.size());
  for (const Submessage& s : delivered) {
    const auto payload = arena.view(s);
    result.push_back(InboundMessage{s.source, {payload.begin(), payload.end()}});
  }
  return result;
}

std::vector<InboundMessage> StfwCommunicator::exchange_planned_cached(
    runtime::ExchangePlan& plan, std::span<const OutboundMessage> sends,
    const OverlapHook& overlap) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  const core::ExchangePlanLayout& layout = plan.layout();
  const int n = vpt_.dim();
  stats_ = LocalExchangeStats{};
  stats_.plan_hits = 1;
  // Any replay recycles the plan's parked frames, so views handed out by an
  // earlier exchange_views() stop being valid here — drop them now rather
  // than leave a span into a poisoned/reused buffer reachable.
  plan.views_.clear();
  const core::BufferPoolStats pool_before = pool_.stats();
  const int tag_base = epoch_ * n;
  fault::FaultInjector* injector = comm_->fault_injector();
  const std::vector<std::span<const std::byte>> seeds = seed_views_of(sends);
  std::vector<int> nbrs;
  std::vector<bool> covered;
  std::vector<std::size_t> real_idx;

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) {
    validator.emplace(vpt_, me);
    for (const OutboundMessage& s : sends) validator->on_seed(s.dest, s.bytes);
  }
#endif

  for (int stage = 0; stage < n; ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    stage_neighbor_ranks(stage, nbrs);
    covered.assign(nbrs.size(), false);
    for (const core::PlanOutFrame& f : layout.out_frames[static_cast<std::size_t>(stage)]) {
#if STFW_VALIDATE_ENABLED
      if (validator) {
        StageMessage m;
        m.from = me;
        m.to = f.to;
        m.subs = f.subs;
        validator->on_stage_send(stage, m);
      }
#endif
      auto wire = planned_frame_bytes(f, seeds, plan.in_raw_);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += f.payload_bytes;
      stats_.wire_bytes_sent += wire.size();
      const auto ni = std::lower_bound(nbrs.begin(), nbrs.end(), static_cast<int>(f.to));
      if (ni != nbrs.end() && *ni == static_cast<int>(f.to))
        covered[static_cast<std::size_t>(ni - nbrs.begin())] = true;
      comm_->send(static_cast<int>(f.to), tag, std::move(wire));
    }
    // Same regularized one-frame-per-neighbor traffic as the unplanned path,
    // so a cluster in which some ranks hit the cache and others miss (or
    // fall back mid-exchange) stays deadlock-free without a barrier.
    send_stage_fillers(stage, tag, nbrs, covered, /*count_stats=*/true);
    if (stage == 0 && overlap) overlap();
    if (barrier_sync_) comm_->barrier(stage_deadline());
    std::vector<runtime::Message> msgs = comm_->recv_from_each(nbrs, tag, stage_deadline());

    // Matching against the frozen roster: expected (real) frames must appear
    // with their planned headers in ascending-source order, and every other
    // neighbor's frame must be a filler. Any deviation means a peer's pattern
    // drifted since the plan was recorded.
    const auto& expected = layout.in_frames[static_cast<std::size_t>(stage)];
    real_idx.clear();
    bool match = true;
    for (std::size_t i = 0; match && i < msgs.size(); ++i) {
      const std::size_t ei = real_idx.size();
      if (ei < expected.size() && msgs[i].source == static_cast<int>(expected[ei].source)) {
        match = frame_headers_match(msgs[i].data, expected[ei]);
        real_idx.push_back(i);
      } else {
        match = is_filler_frame(msgs[i].data);
      }
    }
    match = match && real_idx.size() == expected.size();

    if (!match) {
      // A peer's pattern drifted since the plan was recorded: the inbound
      // frames no longer match the frozen roster. Rebuild Algorithm 1 state
      // by replaying the stages already completed from the raw frames the
      // plan kept, ingest what actually arrived, and continue unplanned.
      // Frames already sent this stage depended only on our own (matching)
      // pattern, so nothing wrong went out.
      stats_.plan_fallbacks = 1;
      plan_cache_erase(layout.signature);

      StfwRankState state(vpt_, me);
      PayloadArena arena;
      std::uint64_t seed_bytes = 0;
      for (const OutboundMessage& s : sends) {
        const std::uint64_t off = arena.add(s.bytes);
        state.add_send(s.dest, off, static_cast<std::uint32_t>(s.bytes.size()));
        seed_bytes += s.bytes.size();
      }
      std::vector<StageMessage> outbox;
      std::uint64_t transit_peak = 0;
      for (int s = 0; s < stage; ++s) {
        outbox.clear();
        state.make_stage_outbox(s, outbox);  // already on the wire; discard
        for (const std::vector<std::byte>& raw : plan.in_raw_[static_cast<std::size_t>(s)])
          state.accept(s, core::deserialize(raw, arena));
        transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
      }
      outbox.clear();
      state.make_stage_outbox(stage, outbox);  // already on the wire; discard
      for (runtime::Message& m : msgs) {
        if (is_filler_frame(m.data)) {
          ++stats_.filler_frames_received;
          continue;
        }
        ++stats_.messages_received;
        const std::vector<Submessage> subs = core::deserialize(m.data, arena);
#if STFW_VALIDATE_ENABLED
        if (validator)
          validator->on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
#endif
        state.accept(stage, subs);
      }
      transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
#if STFW_VALIDATE_ENABLED
      if (validator)
        validator->on_stage_complete(stage, state.buffered_payload_bytes(),
                                     state.buffered_submessage_count());
#endif
      for (int s = stage + 1; s < n; ++s) {
        verify_stage_tag(static_cast<int>(me), s);
        if (injector != nullptr) injector->at_stage(static_cast<int>(me), s);
        const int t = tag_base + s;
        stage_neighbor_ranks(s, nbrs);
        covered.assign(nbrs.size(), false);
        outbox.clear();
        state.make_stage_outbox(s, outbox);
        for (const StageMessage& m : outbox) {
#if STFW_VALIDATE_ENABLED
          if (validator) validator->on_stage_send(s, m);
#endif
          auto wire = core::serialize(m, arena);
          ++stats_.messages_sent;
          stats_.payload_bytes_sent += m.payload_bytes();
          stats_.wire_bytes_sent += wire.size();
          const auto ni = std::lower_bound(nbrs.begin(), nbrs.end(), static_cast<int>(m.to));
          if (ni != nbrs.end() && *ni == static_cast<int>(m.to))
            covered[static_cast<std::size_t>(ni - nbrs.begin())] = true;
          comm_->send(static_cast<int>(m.to), t, std::move(wire));
        }
        send_stage_fillers(s, t, nbrs, covered, /*count_stats=*/true);
        if (barrier_sync_) comm_->barrier(stage_deadline());
        for (runtime::Message& m : comm_->recv_from_each(nbrs, t, stage_deadline())) {
          if (is_filler_frame(m.data)) {
            ++stats_.filler_frames_received;
            continue;
          }
          ++stats_.messages_received;
          const std::vector<Submessage> subs = core::deserialize(m.data, arena);
#if STFW_VALIDATE_ENABLED
          if (validator)
            validator->on_stage_recv(s, static_cast<core::Rank>(m.source), subs);
#endif
          state.accept(s, subs);
        }
        transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
#if STFW_VALIDATE_ENABLED
        if (validator)
          validator->on_stage_complete(s, state.buffered_payload_bytes(),
                                       state.buffered_submessage_count());
#endif
      }
      ++epoch_;
      stats_.peak_buffer_bytes = seed_bytes + state.delivered_payload_bytes() + transit_peak;
      record_pool_delta(stats_, pool_.stats(), pool_before);
      std::vector<Submessage> delivered = state.take_delivered();
#if STFW_VALIDATE_ENABLED
      if (validator) {
        const auto summaries = comm_->allgather(validator->summary_blob(), stage_deadline());
        validator->finish(delivered, arena, stats_.messages_sent, summaries);
      }
#endif
      std::vector<InboundMessage> result;
      std::stable_sort(
          delivered.begin(), delivered.end(),
          [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
      result.reserve(delivered.size());
      for (const Submessage& sub : delivered) {
        const auto payload = arena.view(sub);
        result.push_back(InboundMessage{sub.source, {payload.begin(), payload.end()}});
      }
      return result;
    }

    stats_.filler_frames_received +=
        static_cast<std::int64_t>(msgs.size() - expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ++stats_.messages_received;
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_recv(stage, expected[i].source, expected[i].subs);
#endif
      // Recycle the previous replay's frame into the pool: the next stage's
      // (or iteration's) outbound gathers draw from it, so the steady state
      // cycles a fixed working set of allocations across the cluster.
      auto& slot = plan.in_raw_[static_cast<std::size_t>(stage)][i];
      if (zero_copy_ && !slot.empty()) pool_.release(std::move(slot));
      slot = std::move(msgs[real_idx[i]].data);
    }
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(stage,
                                   layout.stage_buffered_bytes[static_cast<std::size_t>(stage)],
                                   layout.stage_buffered_subs[static_cast<std::size_t>(stage)]);
#endif
  }
  ++epoch_;
  stats_.peak_buffer_bytes = layout.peak_buffer_bytes();
  record_pool_delta(stats_, pool_.stats(), pool_before);

  std::vector<InboundMessage> result = planned_result(layout, seeds, plan.in_raw_);

#if STFW_VALIDATE_ENABLED
  if (validator) {
    PayloadArena varena;
    std::vector<Submessage> vdelivered;
    vdelivered.reserve(result.size());
    for (const InboundMessage& r : result) {
      Submessage s;
      s.source = r.source;
      s.dest = me;
      s.size_bytes = static_cast<std::uint32_t>(r.bytes.size());
      s.offset = varena.add(r.bytes);
      vdelivered.push_back(s);
    }
    const auto summaries = comm_->allgather(validator->summary_blob(), stage_deadline());
    validator->finish(vdelivered, varena, stats_.messages_sent, summaries);
  }
#endif
  return result;
}

std::shared_ptr<runtime::ExchangePlan> StfwCommunicator::plan(
    std::span<const OutboundMessage> sends) {
  core::require(!comm_->membership().any_failed(),
                "plan: cluster is degraded (a rank died); the planning collective "
                "cannot survive rank failure — use exchange_resilient()");
  const auto me = static_cast<core::Rank>(comm_->rank());
  const auto pattern = pattern_of(sends);
  core::PlanRecorder recorder(vpt_, me, pattern);
  StfwRankState state(vpt_, me);

  // Header-only collective planning pass: the same Algorithm 1 stage
  // structure with empty wire bodies. Submessage::offset carries payload
  // provenance (seed index or inbound-frame slice) through the routing.
  std::uint32_t index = 0;
  for (const auto& [dest, size] : pattern) state.add_send(dest, index++, size);

  std::vector<StageMessage> outbox;
  std::vector<core::PayloadSrc> srcs;
  std::vector<int> nbrs;
  std::vector<bool> covered;
  const int tag_base = epoch_ * vpt_.dim();
  fault::FaultInjector* injector = comm_->fault_injector();
  for (int stage = 0; stage < vpt_.dim(); ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    stage_neighbor_ranks(stage, nbrs);
    covered.assign(nbrs.size(), false);
    outbox.clear();
    state.make_stage_outbox(stage, outbox);
    for (const StageMessage& m : outbox) {
      srcs.clear();
      for (const Submessage& s : m.subs) srcs.push_back(decode_prov(s.offset, s.size_bytes));
      recorder.on_stage_send(stage, m.to, m.subs, srcs);
      const auto ni = std::lower_bound(nbrs.begin(), nbrs.end(), static_cast<int>(m.to));
      if (ni != nbrs.end() && *ni == static_cast<int>(m.to))
        covered[static_cast<std::size_t>(ni - nbrs.begin())] = true;
      comm_->send(static_cast<int>(m.to), tag, serialize_headers(m));
    }
    // Planning traffic is regularized too (an empty header frame is the same
    // 4 bytes as a payload-format filler), but frozen stats stay filler-free.
    send_stage_fillers(stage, tag, nbrs, covered, /*count_stats=*/false);
    std::size_t frame_index = 0;
    for (runtime::Message& m : comm_->recv_from_each(nbrs, tag, stage_deadline())) {
      if (is_filler_frame(m.data)) continue;
      std::vector<Submessage> subs = deserialize_headers(m.data);
      const core::PlanInFrame& frame =
          recorder.on_stage_recv(stage, static_cast<core::Rank>(m.source), subs);
      for (std::size_t k = 0; k < subs.size(); ++k)
        subs[k].offset = encode_recv_prov(stage, frame_index, frame.subs[k].offset);
      state.accept(stage, subs);
      ++frame_index;
    }
    recorder.on_stage_complete(stage, state.buffered_payload_bytes(),
                               state.buffered_submessage_count());
  }
  ++epoch_;

  std::vector<Submessage> delivered = state.take_delivered();
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  srcs.clear();
  for (const Submessage& s : delivered) srcs.push_back(decode_prov(s.offset, s.size_bytes));
  return std::make_shared<runtime::ExchangePlan>(recorder.finish(delivered, srcs));
}

void StfwCommunicator::replay_plan_stages(
    runtime::ExchangePlan& plan, std::span<const std::span<const std::byte>> payloads) {
  core::require(!comm_->membership().any_failed(),
                "exchange(plan): cluster is degraded (a rank died); planned replay "
                "cannot survive rank failure — use exchange_resilient()");
  const auto me = static_cast<core::Rank>(comm_->rank());
  const core::ExchangePlanLayout& layout = plan.layout();
  core::require(layout.rank == me, "exchange(plan): plan belongs to another rank");
  core::require(layout.vpt_dims == vpt_.dim_sizes(),
                "exchange(plan): plan was built for a different VPT");
  const auto& sequence = layout.signature.sequence;
  core::require(payloads.size() == sequence.size(),
                "exchange(plan): payload count differs from the planned pattern");
  for (std::size_t i = 0; i < payloads.size(); ++i)
    core::require(payloads[i].size() == sequence[i].second,
                  "exchange(plan): payload size differs from the planned pattern");

  const int n = vpt_.dim();
  stats_ = LocalExchangeStats{};
  stats_.plan_hits = 1;
  // Views of the previous replay die the moment this one starts recycling
  // the parked frames; clearing first means a throw below leaves an empty
  // span behind, never a dangling one.
  plan.views_.clear();
  const core::BufferPoolStats pool_before = pool_.stats();
  const int tag_base = epoch_ * n;
  fault::FaultInjector* injector = comm_->fault_injector();
  std::vector<int> nbrs;
  std::vector<bool> covered;

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) {
    validator.emplace(vpt_, me);
    for (std::size_t i = 0; i < payloads.size(); ++i)
      validator->on_seed(sequence[i].first, payloads[i]);
  }
#endif

  for (int stage = 0; stage < n; ++stage) {
    verify_stage_tag(static_cast<int>(me), stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), stage);
    const int tag = tag_base + stage;
    stage_neighbor_ranks(stage, nbrs);
    covered.assign(nbrs.size(), false);
    for (const core::PlanOutFrame& f : layout.out_frames[static_cast<std::size_t>(stage)]) {
#if STFW_VALIDATE_ENABLED
      if (validator) {
        StageMessage m;
        m.from = me;
        m.to = f.to;
        m.subs = f.subs;
        validator->on_stage_send(stage, m);
      }
#endif
      auto wire = planned_frame_bytes(f, payloads, plan.in_raw_);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += f.payload_bytes;
      stats_.wire_bytes_sent += wire.size();
      const auto ni = std::lower_bound(nbrs.begin(), nbrs.end(), static_cast<int>(f.to));
      if (ni != nbrs.end() && *ni == static_cast<int>(f.to))
        covered[static_cast<std::size_t>(ni - nbrs.begin())] = true;
      comm_->send(static_cast<int>(f.to), tag, std::move(wire));
    }
    send_stage_fillers(stage, tag, nbrs, covered, /*count_stats=*/true);
    // Barrier-free: the plan froze exactly which frames arrive, so the stage
    // blocks on one frame per dimension-`stage` neighbor and merges the real
    // frames against the frozen roster. All ranks must replay plans of the
    // same collective plan() — drift here is a contract violation.
    auto& raw_stage = plan.in_raw_[static_cast<std::size_t>(stage)];
    const auto& expected = layout.in_frames[static_cast<std::size_t>(stage)];
    std::size_t ei = 0;
    for (runtime::Message& m : comm_->recv_from_each(nbrs, tag, stage_deadline())) {
      if (ei < expected.size() && m.source == static_cast<int>(expected[ei].source)) {
        core::require(frame_headers_match(m.data, expected[ei]),
                      "exchange(plan): inbound frame deviates from the plan; the send "
                      "pattern changed since plan() (use plain exchange() for "
                      "iteration-varying patterns)");
        ++stats_.messages_received;
#if STFW_VALIDATE_ENABLED
        if (validator) validator->on_stage_recv(stage, expected[ei].source, expected[ei].subs);
#endif
        if (zero_copy_ && !raw_stage[ei].empty()) pool_.release(std::move(raw_stage[ei]));
        raw_stage[ei] = std::move(m.data);
        ++ei;
      } else {
        core::require(is_filler_frame(m.data),
                      "exchange(plan): inbound frame deviates from the plan; the send "
                      "pattern changed since plan() (use plain exchange() for "
                      "iteration-varying patterns)");
        ++stats_.filler_frames_received;
      }
    }
    core::require(ei == expected.size(),
                  "exchange(plan): a planned inbound frame never arrived; the send "
                  "pattern changed since plan() (use plain exchange() for "
                  "iteration-varying patterns)");
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(stage,
                                   layout.stage_buffered_bytes[static_cast<std::size_t>(stage)],
                                   layout.stage_buffered_subs[static_cast<std::size_t>(stage)]);
#endif
  }
  ++epoch_;
  stats_.peak_buffer_bytes = layout.peak_buffer_bytes();
  record_pool_delta(stats_, pool_.stats(), pool_before);

#if STFW_VALIDATE_ENABLED
  if (validator) {
    // Reconstruct the deliveries from the frozen provenance tables — the
    // exact bytes both materializers below hand out — so the conservation
    // verdict is independent of whether the caller asked for copies or views.
    PayloadArena varena;
    std::vector<Submessage> vdelivered;
    vdelivered.reserve(layout.deliveries.size());
    for (const core::PlanDelivery& d : layout.deliveries) {
      Submessage s;
      s.source = d.source;
      s.dest = me;
      s.size_bytes = d.src.bytes;
      std::span<const std::byte> bytes;
      if (d.src.bytes > 0) {
        const std::byte* from =
            d.src.kind == core::PayloadSrc::Kind::kSeed
                ? payloads[d.src.index].data()
                : plan.in_raw_[d.src.stage][d.src.frame].data() + d.src.offset;
        bytes = {from, d.src.bytes};
      }
      s.offset = varena.add(bytes);
      vdelivered.push_back(s);
    }
    const auto summaries = comm_->allgather(validator->summary_blob(), stage_deadline());
    validator->finish(vdelivered, varena, stats_.messages_sent, summaries);
  }
#endif
}

std::vector<InboundMessage> StfwCommunicator::exchange(
    runtime::ExchangePlan& plan, std::span<const std::span<const std::byte>> payloads) {
  replay_plan_stages(plan, payloads);
  return planned_result(plan.layout(), payloads, plan.in_raw_);
}

std::span<const runtime::InboundView> StfwCommunicator::exchange_views(
    runtime::ExchangePlan& plan, std::span<const std::span<const std::byte>> payloads) {
  replay_plan_stages(plan, payloads);
  const core::ExchangePlanLayout& layout = plan.layout();
  plan.views_.reserve(layout.deliveries.size());
  for (const core::PlanDelivery& d : layout.deliveries) {
    std::span<const std::byte> bytes;
    if (d.src.bytes > 0) {
      const std::byte* from =
          d.src.kind == core::PayloadSrc::Kind::kSeed
              ? payloads[d.src.index].data()
              : plan.in_raw_[d.src.stage][d.src.frame].data() + d.src.offset;
      bytes = {from, d.src.bytes};
    }
    plan.views_.push_back(runtime::InboundView{d.source, bytes});
  }
  return plan.views_;
}

std::vector<InboundMessage> StfwCommunicator::exchange(runtime::ExchangePlan& plan,
                                                       std::span<const OutboundMessage> sends) {
  const auto& sequence = plan.layout().signature.sequence;
  core::require(sends.size() == sequence.size(),
                "exchange(plan): send count differs from the planned pattern");
  for (std::size_t i = 0; i < sends.size(); ++i)
    core::require(sends[i].dest == sequence[i].first &&
                      sends[i].bytes.size() == sequence[i].second,
                  "exchange(plan): send pattern differs from the planned pattern");
  const std::vector<std::span<const std::byte>> views = seed_views_of(sends);
  return exchange(plan, views);
}

std::string ExchangeFailure::to_string() const {
  if (empty()) return "no failures";
  std::string out = std::to_string(lost.size()) + " lost submessage(s), " +
                    std::to_string(missing.size()) + " missing neighbor frame(s)";
  for (const LostSubmessage& l : lost) {
    out += "\n  lost: " + std::to_string(l.bytes) + " bytes " + std::to_string(l.source) +
           " -> " + std::to_string(l.dest);
    out += l.stage < 0 ? std::string(" (direct)") : " (stage " + std::to_string(l.stage) + ")";
  }
  for (const MissingNeighbor& m : missing)
    out += "\n  missing: stage " + std::to_string(m.stage) + " frame from rank " +
           std::to_string(m.neighbor);
  return out;
}

ResilientExchangeResult StfwCommunicator::exchange_resilient(
    std::span<const OutboundMessage> sends, const ResilienceOptions& opt) {
  // Retransmit timers run on verify::verify_now(): steady_clock in normal
  // builds, the deterministic logical clock under the stfw-verify scheduler.
  using clock = std::chrono::steady_clock;
  core::require(opt.max_attempts >= 1, "exchange_resilient: max_attempts must be >= 1");
  core::require(opt.backoff_factor >= 1.0, "exchange_resilient: backoff_factor must be >= 1");
  core::require(opt.retransmit_timeout.count() > 0,
                "exchange_resilient: retransmit_timeout must be positive");
  core::require(opt.stage_deadline.count() > 0,
                "exchange_resilient: stage_deadline must be positive");
  core::require(opt.max_settle_rounds >= 1, "exchange_resilient: max_settle_rounds must be >= 1");

  const auto me = static_cast<core::Rank>(comm_->rank());
  const int n = vpt_.dim();
  const int world = comm_->size();
  StfwRankState state(vpt_, me);
  PayloadArena arena;
  stats_ = LocalExchangeStats{};
  ResilientExchangeResult result;

  // The membership view this exchange acts on. The epoch is polled every
  // event-loop iteration (one relaxed atomic load); a change re-snapshots
  // the bitmap and re-homes in-flight traffic (on_membership_change below).
  runtime::MembershipSnapshot mem = comm_->membership().snapshot();
  bool degraded = mem.alive_count < world;
  std::uint32_t announced_epoch = mem.epoch;  // deaths known at entry need no notice
  stats_.membership_epoch = mem.epoch;

  // Decorrelation jitter on the retransmit backoff. STFW_RETRY_JITTER
  // overrides the option (strict parse: a typo throws instead of silently
  // disabling jitter).
  double jitter = opt.retry_jitter;
  if (core::env_present("STFW_RETRY_JITTER"))
    jitter = core::env_double("STFW_RETRY_JITTER", jitter);
  core::require(jitter >= 0.0 && jitter <= 1.0,
                "exchange_resilient: retry jitter must be in [0, 1]");

  // Claim the epoch up front so a thrown exchange cannot leave stale frames
  // that a retry under the same epoch would mistake for its own.
  const auto epoch = static_cast<std::uint32_t>(epoch_);
  ++epoch_;
  fault::FaultInjector* injector = comm_->fault_injector();
  // Jitter draws are seeded per (rank, exchange): reproducible run to run,
  // and deterministic under the STFW_VERIFY schedule explorer.
  std::mt19937_64 jitter_rng((static_cast<std::uint64_t>(me) << 32) ^ epoch ^
                             0x9e3779b97f4a7c15ull);

#if STFW_VALIDATE_ENABLED
  std::optional<validate::ExchangeValidator> validator;
  if (validate_) validator.emplace(vpt_, me);
#endif

  // A cached plan for this pattern supplies frozen seed routing dimensions
  // (the full frame layout cannot be replayed here: injected faults make the
  // inbound schedule non-deterministic, so only the seeding scan is reused).
  // In degraded mode the frozen layout is *incrementally repaired* for the
  // current membership — diffed, not re-recorded — and its seed-route
  // overrides steer each send onto a surviving canonical hop, the relay
  // lane, or a dead-destination drop.
  std::shared_ptr<runtime::ExchangePlan> seed_plan;
  if (plan_cache_capacity_ > 0)
    seed_plan = plan_cache_find(core::PatternSignature::of(pattern_of(sends)));
  if (seed_plan) stats_.plan_hits = 1;
  std::shared_ptr<const core::RepairedPlan> repaired;
  if (seed_plan && degraded) {
    const std::uint64_t sig_key = seed_plan->layout().signature.key;
    if (repaired_plan_ != nullptr && repaired_sig_key_ == sig_key &&
        repaired_epoch_ == mem.epoch) {
      repaired = repaired_plan_;  // same pattern, same membership: reuse the diff
    } else {
      repaired = std::make_shared<const core::RepairedPlan>(
          core::repair_plan(seed_plan->layout(), vpt_, mem.alive));
      repaired_plan_ = repaired;
      repaired_sig_key_ = sig_key;
      repaired_epoch_ = mem.epoch;
      ++stats_.plan_repairs;
    }
  }

  // Seeds whose canonical first hop is dead leave the static plan entirely;
  // they are injected into the relay lane once its machinery exists below.
  std::vector<Submessage> relay_seeds;
  std::uint64_t seed_bytes = 0;
  std::uint32_t next_sub_id = 0;
  for (const OutboundMessage& s : sends) {
#if STFW_VALIDATE_ENABLED
    if (validator) validator->on_seed(s.dest, s.bytes);
#endif
    const std::uint64_t off = arena.add(s.bytes);
    const auto size = static_cast<std::uint32_t>(s.bytes.size());
    Submessage sub;
    sub.source = me;
    sub.dest = s.dest;
    sub.offset = off;
    sub.size_bytes = size;
    sub.id = next_sub_id;
    if (repaired != nullptr) {
      const core::SeedRoute& sr = repaired->seed_routes[next_sub_id];
      switch (sr.kind) {
        case core::SeedRoute::Kind::kSelf:
          state.add_send_routed(s.dest, -1, off, size, next_sub_id);
          break;
        case core::SeedRoute::Kind::kPlanned:
          state.add_send_routed(s.dest, sr.first_dim, off, size, next_sub_id);
          break;
        case core::SeedRoute::Kind::kRelay:
          relay_seeds.push_back(sub);
          break;
        case core::SeedRoute::Kind::kDeadDest:
          ++stats_.dead_dest_submessages_dropped;
          result.failure.lost.push_back({me, s.dest, size, -1});
          break;
      }
    } else if (degraded && s.dest != me) {
      if (!mem.is_alive(s.dest)) {
        ++stats_.dead_dest_submessages_dropped;
        result.failure.lost.push_back({me, s.dest, size, -1});
      } else {
        const int d0 = vpt_.first_diff_dim(me, s.dest);
        const core::Rank hop = vpt_.with_coord(me, d0, vpt_.coord(s.dest, d0));
        if (mem.is_alive(hop))
          state.add_send(s.dest, off, size, next_sub_id);
        else
          relay_seeds.push_back(sub);
      }
    } else if (seed_plan) {
      state.add_send_routed(s.dest, seed_plan->layout().seed_first_dim[next_sub_id], off,
                            size, next_sub_id);
    } else {
      state.add_send(s.dest, off, size, next_sub_id);
    }
    ++next_sub_id;
    seed_bytes += s.bytes.size();
  }

  // --- sender side: every frame we emitted and still track -----------------
  struct OutFrame {
    core::FrameKind kind = core::FrameKind::kData;
    int stage = -1;  // -1 for kDirect
    core::Rank dest = -1;
    std::uint32_t seq = 0;
    // No retained wire image: the tracker holds only the frame header and
    // the submessage headers (payload bytes stay in `arena`), and every
    // transmission — first send and retransmit alike — re-gathers the wire
    // bytes from them. serialize_tracked and encode_frame are deterministic
    // functions of (header, subs, arena), so a retransmit is byte-identical
    // to the original frame while an unacked frame costs O(subs) to track
    // instead of a full wire copy.
    core::FrameHeader header;
    StageMessage msg;  // subs double as the fallback / loss-reporting list
    int attempts = 0;
    clock::time_point next_retry{};
    std::chrono::milliseconds backoff{0};
    bool acked = false;
    bool failed = false;
  };
  std::vector<OutFrame> frames;
  std::unordered_map<std::uint32_t, std::size_t> frame_by_seq;
  std::uint32_t next_seq = 0;

  auto make_frame = [&](core::FrameKind kind, int stage, core::Rank dest, StageMessage msg) {
    core::FrameHeader h;
    h.kind = kind;
    h.stage = static_cast<std::uint16_t>(stage < 0 ? 0 : stage);
    h.epoch = epoch;
    h.member_epoch = mem.epoch;  // the view this frame's routing was decided under
    h.seq = next_seq;
    h.sender = me;
    OutFrame f;
    f.kind = kind;
    f.stage = stage;
    f.dest = dest;
    f.seq = next_seq;
    f.header = h;
    f.msg = std::move(msg);
    f.backoff = opt.retransmit_timeout;
    frame_by_seq.emplace(next_seq, frames.size());
    frames.push_back(std::move(f));
    ++next_seq;
  };

  auto transmit = [&](OutFrame& f, clock::time_point now) {
    if (f.attempts > 0) ++stats_.retransmits;
    ++f.attempts;
    auto wire = core::encode_frame(f.header, core::serialize_tracked(f.msg, arena));
    stats_.wire_bytes_sent += wire.size();
    comm_->send(static_cast<int>(f.dest), kResilientDataTag, std::move(wire));
    auto delay = f.backoff;
    if (jitter > 0.0 && delay > opt.retransmit_timeout) {
      // Pull the retry earlier by a random fraction of the grown part of the
      // backoff, so ranks that collided once don't retry in lockstep forever.
      const double u = std::uniform_real_distribution<double>(0.0, 1.0)(jitter_rng);
      const auto span = static_cast<double>((delay - opt.retransmit_timeout).count());
      delay -= std::chrono::milliseconds{
          static_cast<std::chrono::milliseconds::rep>(u * jitter * span)};
    }
    f.next_retry = now + delay;
    f.backoff = next_backoff(f.backoff, opt.backoff_factor, opt.retransmit_timeout,
                             opt.stage_deadline);
  };

  // Give up on frame `i`: a dead kData frame degrades into kDirect frames
  // grouped by final destination (bypassing the remaining store-and-forward
  // stages); a dead kDirect frame is a definite loss. May push new frames,
  // so callers must not hold references into `frames` across the call.
  auto fail_frame = [&](std::size_t i) {
    frames[i].failed = true;
    const core::FrameKind kind = frames[i].kind;
    const int fstage = frames[i].stage;
    std::vector<Submessage> subs = std::move(frames[i].msg.subs);
    // kRelay carries final-destination submessages just like kData, so a
    // relay hop that stops answering (slow, nacking, or newly dead) degrades
    // the same way: straight to per-destination kDirect frames. Without this
    // a survivable crash could turn into reported loss between live ranks
    // purely because the detour's first hop was congested.
    if ((kind == core::FrameKind::kData || kind == core::FrameKind::kRelay) &&
        opt.direct_fallback && !subs.empty()) {
      std::map<core::Rank, std::vector<Submessage>> groups;
      for (const Submessage& s : subs) {
        // A direct frame to a dead destination would never be acked and —
        // being budget-exempt — would pin the settlement loop to its valve.
        if (!mem.is_alive(s.dest)) {
          ++stats_.dead_dest_submessages_dropped;
          result.failure.lost.push_back({s.source, s.dest, s.size_bytes, fstage});
          continue;
        }
        groups[s.dest].push_back(s);
      }
      for (auto& [gdest, gsubs] : groups) {
        stats_.direct_fallback_submessages += static_cast<std::int64_t>(gsubs.size());
        make_frame(core::FrameKind::kDirect, -1, gdest,
                   StageMessage{me, gdest, std::move(gsubs)});
      }
    } else {
      for (const Submessage& s : subs)
        result.failure.lost.push_back({s.source, s.dest, s.size_bytes, fstage});
    }
  };

  auto send_control = [&](core::FrameKind kind, core::Rank to, const core::FrameHeader& of) {
    core::FrameHeader a;
    a.kind = kind;
    a.stage = of.stage;
    a.epoch = epoch;
    a.seq = of.seq;  // acks/nacks echo the seq they answer
    a.sender = me;
    auto w = core::encode_frame(a, {});
    if (kind == core::FrameKind::kAck) ++stats_.acks_sent;
    stats_.wire_bytes_sent += w.size();
    comm_->send(static_cast<int>(to), kResilientAckTag, std::move(w));
  };
  auto send_ack = [&](core::Rank to, const core::FrameHeader& of) {
    send_control(core::FrameKind::kAck, to, of);
  };

  // Out-of-band deliveries: submessages for this rank that arrived via
  // kDirect or kRelay frames instead of the stage machinery. Merged with the
  // staged deliveries at the end under (source, id) dedup.
  std::vector<Submessage> direct_delivered;
  std::uint64_t direct_bytes = 0;

  // --- the relay lane ------------------------------------------------------
  // Detoured traffic cannot re-enter the stage machinery: store-and-forward
  // fixes dimensions in ascending order and a detour around a dead rank
  // breaks that order, so the stages downstream would never fix the skipped
  // dimensions. Relay frames are instead event-driven — each receiver
  // delivers its own submessages and forwards the rest one greedy-alive hop
  // closer (strictly decreasing Hamming distance, so no cycles even under
  // stale membership views).
  auto route_relayed = [&](std::vector<Submessage> subs, bool count_as_relay) {
    std::map<core::Rank, std::vector<Submessage>> groups;
    for (const Submessage& s : subs) {
      if (s.dest == me) {
        direct_delivered.push_back(s);
        direct_bytes += s.size_bytes;
        continue;
      }
      if (!mem.is_alive(s.dest)) {
        ++stats_.dead_dest_submessages_dropped;
        result.failure.lost.push_back({s.source, s.dest, s.size_bytes, -1});
        continue;
      }
      groups[core::greedy_next_hop(vpt_, mem.alive, me, s.dest)].push_back(s);
    }
    for (auto& [hop, gsubs] : groups) {
      (count_as_relay ? stats_.relay_submessages : stats_.reinjected_submessages) +=
          static_cast<std::int64_t>(gsubs.size());
      make_frame(core::FrameKind::kRelay, -1, hop, StageMessage{me, hop, std::move(gsubs)});
    }
  };

  // Membership transition: re-snapshot, announce the deaths to survivors,
  // pull every tracked frame off dead destinations (re-homing its payload
  // over the relay lane), and restamp the surviving in-flight frames with
  // the new epoch so receivers don't refuse them as stale.
  auto on_membership_change = [&] {
    const runtime::MembershipSnapshot ns = comm_->membership().snapshot();
    if (ns.epoch == mem.epoch) return;
    mem = ns;
    degraded = mem.alive_count < world;
    ++stats_.epoch_transitions;
    if (announced_epoch < mem.epoch) {
      // One kFailureNotice per epoch per peer, fire-and-forget on the control
      // tag. In-process the shared Membership is the detection authority and
      // every rank's poll already sees the bump; the notice is the portable
      // wire signal a distributed transport would rely on (and what the
      // fuzz/replay tests exercise).
      announced_epoch = mem.epoch;
      std::vector<std::int32_t> dead;
      for (int r = 0; r < world; ++r)
        if (!mem.is_alive(r)) dead.push_back(r);
      core::FrameHeader nh;
      nh.kind = core::FrameKind::kFailureNotice;
      nh.epoch = epoch;
      nh.member_epoch = mem.epoch;
      nh.seq = next_seq++;
      nh.sender = me;
      const auto body = core::encode_failure_notice(mem.epoch, dead);
      for (int r = 0; r < world; ++r) {
        if (r == static_cast<int>(me) || !mem.is_alive(r)) continue;
        auto w = core::encode_frame(nh, body);
        stats_.wire_bytes_sent += w.size();
        comm_->send(r, kResilientAckTag, std::move(w));
        ++stats_.failure_notices_sent;
      }
    }
    const std::size_t tracked = frames.size();  // route_relayed appends; don't revisit
    for (std::size_t i = 0; i < tracked; ++i) {
      if (frames[i].failed || mem.is_alive(frames[i].dest)) continue;
      const bool was_acked = frames[i].acked;
      const core::FrameKind kind = frames[i].kind;
      frames[i].failed = true;  // its receiver no longer exists; stop the pump
      std::vector<Submessage> subs = std::move(frames[i].msg.subs);
      if (kind == core::FrameKind::kDirect) {
        // An acked direct frame was delivered before the death — the copy
        // died with its owner, nothing to re-home. An unacked one is lost.
        if (!was_acked) {
          for (const Submessage& s : subs) {
            ++stats_.dead_dest_submessages_dropped;
            result.failure.lost.push_back({s.source, s.dest, s.size_bytes, -1});
          }
        }
        continue;
      }
      // kData / kRelay: the dead rank's forward obligations die with it even
      // when it acked. Reinject everything bound elsewhere; end-to-end
      // (source, id) dedup absorbs whatever it managed to forward first.
      route_relayed(std::move(subs), /*count_as_relay=*/false);
    }
    // Frames are re-encoded per transmit, so advancing the membership claim
    // is a header-field write — the next retransmit carries it (the encoded
    // restamp_member_epoch fixup is only needed for retained wire images).
    for (OutFrame& f : frames)
      if (!f.acked && !f.failed) f.header.member_epoch = mem.epoch;
  };

  // Retransmit / give-up pass. Returns the earliest pending retry time (or
  // time_point::max() when nothing is outstanding). A frame that exhausts
  // its budget degrades: kData submessages are regrouped by final
  // destination and re-sent as kDirect frames (bypassing the remaining
  // store-and-forward stages); a dead kDirect frame is a definite loss.
  auto pump_sends = [&](clock::time_point now) {
    clock::time_point next = clock::time_point::max();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (frames[i].acked || frames[i].failed) continue;
      if (frames[i].attempts == 0) {
        transmit(frames[i], now);
      } else if (now >= frames[i].next_retry) {
        // kDirect frames are exempt from the attempt budget: they are the
        // last resort, exhausting one is a permanent loss, and the
        // settlement valve already bounds how long they may keep trying.
        if (frames[i].kind != core::FrameKind::kDirect &&
            frames[i].attempts >= opt.max_attempts) {
          ++stats_.timeouts;
          fail_frame(i);
          continue;
        }
        ++stats_.timeouts;
        transmit(frames[i], now);
      }
      if (!frames[i].failed) next = std::min(next, frames[i].next_retry);
    }
    return next;
  };

  auto all_settled_locally = [&] {
    for (const OutFrame& f : frames)
      if (!f.acked && !f.failed) return false;
    return true;
  };

  // --- receiver side -------------------------------------------------------
  int cur_stage = 0;
  std::set<std::pair<std::int32_t, std::uint32_t>> seen;  // (sender, seq) dedup
  std::vector<std::set<core::Rank>> stage_got(static_cast<std::size_t>(n));
  struct EarlyFrame {
    int stage;
    core::Rank sender;
    std::vector<std::byte> body;
  };
  std::vector<EarlyFrame> early;  // frames from neighbors already past us

  auto accept_stage_subs = [&](int stage, core::Rank sender, std::span<const std::byte> body) {
    const std::vector<Submessage> subs = core::deserialize_tracked(body, arena);
#if STFW_VALIDATE_ENABLED
    if (validator) validator->on_stage_recv(stage, sender, subs);
#endif
    state.accept(stage, subs);
    ++stats_.messages_received;
    stage_got[static_cast<std::size_t>(stage)].insert(sender);
  };

  auto process_incoming = [&] {
    for (runtime::Message& m : comm_->drain(kResilientAckTag)) {
      const auto dec = core::decode_frame(m.data);
      if (!dec || (dec->header.kind != core::FrameKind::kAck &&
                   dec->header.kind != core::FrameKind::kNack &&
                   dec->header.kind != core::FrameKind::kFailureNotice)) {
        ++stats_.corrupt_frames_discarded;
        continue;
      }
      if (dec->header.epoch != epoch) continue;  // stale, not corrupt
      if (dec->header.kind == core::FrameKind::kFailureNotice) {
        const auto notice = core::decode_failure_notice(dec->body);
        if (!notice) {
          ++stats_.corrupt_frames_discarded;  // mutated body: reject outright
          continue;
        }
        ++stats_.failure_notices_received;
        // Epoch gate: compare the announced epoch against our current
        // membership before acting. The shared Membership is the in-process
        // authority on *who* died, so a newer notice triggers a re-snapshot
        // rather than trusting the announced dead list — a corrupt or forged
        // notice can therefore never kill a healthy rank.
        if (notice->membership_epoch > mem.epoch) on_membership_change();
        continue;
      }
      const auto it = frame_by_seq.find(dec->header.seq);
      if (it == frame_by_seq.end()) continue;
      const std::size_t idx = it->second;
      if (static_cast<core::Rank>(dec->header.sender) != frames[idx].dest) continue;
      if (dec->header.kind == core::FrameKind::kAck) {
        if (!frames[idx].acked && !frames[idx].failed) {
          frames[idx].acked = true;
          ++stats_.acks_received;
        }
      } else if (!frames[idx].acked && !frames[idx].failed) {
        // The receiver refused this frame (it moved past the frame's stage);
        // retrying cannot succeed, so degrade right away instead of burning
        // the remaining attempts against a closed door.
        fail_frame(idx);
      }
    }
    for (runtime::Message& m : comm_->drain(kResilientDataTag)) {
      const auto dec = core::decode_frame(m.data);
      if (!dec || (dec->header.kind != core::FrameKind::kData &&
                   dec->header.kind != core::FrameKind::kDirect &&
                   dec->header.kind != core::FrameKind::kRelay)) {
        ++stats_.corrupt_frames_discarded;  // truncated / bit-rotted / mis-tagged
        continue;
      }
      const core::FrameHeader& h = dec->header;
      if (h.epoch != epoch) continue;
      const auto sender = static_cast<core::Rank>(h.sender);
      if (sender < 0 || sender >= vpt_.size()) {
        ++stats_.corrupt_frames_discarded;
        continue;
      }
      const auto key = std::make_pair(h.sender, h.seq);
      if (h.kind == core::FrameKind::kDirect) {
        send_ack(sender, h);  // re-ack duplicates: our earlier ack may have died
        if (!seen.insert(key).second) {
          ++stats_.duplicate_frames_discarded;
          continue;
        }
        const std::vector<Submessage> subs = core::deserialize_tracked(dec->body, arena);
#if STFW_VALIDATE_ENABLED
        if (validator) validator->on_direct_recv(sender, subs);
#endif
        for (const Submessage& s : subs) {
          core::require(s.dest == me, "exchange_resilient: direct frame not addressed to me");
          direct_delivered.push_back(s);
          direct_bytes += s.size_bytes;
        }
        ++stats_.messages_received;
        continue;
      }
      if (h.kind == core::FrameKind::kRelay) {
        send_ack(sender, h);  // re-ack duplicates: our earlier ack may have died
        if (!seen.insert(key).second) {
          ++stats_.duplicate_frames_discarded;
          continue;
        }
        std::vector<Submessage> subs = core::deserialize_tracked(dec->body, arena);
        ++stats_.messages_received;
        // Deliver our own submessages; forward the rest one greedy-alive hop
        // closer to their destinations under our *current* membership view.
        route_relayed(std::move(subs), /*count_as_relay=*/true);
        continue;
      }
      // kData
      const int fstage = static_cast<int>(h.stage);
      if (fstage >= n ||
          !(vpt_.are_neighbors(sender, me) && vpt_.first_diff_dim(sender, me) == fstage)) {
        ++stats_.corrupt_frames_discarded;
        continue;
      }
      if (seen.count(key) != 0) {
        send_ack(sender, h);
        ++stats_.duplicate_frames_discarded;
        continue;
      }
      if (h.member_epoch < mem.epoch) {
        // The sender routed this frame under a membership view that predates
        // a death we already observed; its forwarding decisions are suspect.
        // Nack so the sender re-decides now rather than after its retry
        // budget (its own epoch poll restamps in-flight frames, so only the
        // race window is refused).
        ++stats_.stale_epoch_frames_refused;
        send_control(core::FrameKind::kNack, sender, h);
        continue;
      }
      if (fstage < cur_stage) {
        // We gave up on this stage and moved on; accepting now would strand
        // submessages whose forwarding stages already ran. Nack so the
        // sender switches to its direct-routing fallback immediately.
        ++stats_.late_frames_refused;
        send_control(core::FrameKind::kNack, sender, h);
        continue;
      }
      send_ack(sender, h);
      seen.insert(key);
      if (fstage > cur_stage) {
        // Neighbor is ahead of us; park the frame until we enter its stage.
        early.push_back({fstage, sender, {dec->body.begin(), dec->body.end()}});
        continue;
      }
      accept_stage_subs(cur_stage, sender, dec->body);
    }
  };

  // --- the staged exchange -------------------------------------------------
  // Seeds whose canonical first hop died enter the relay lane now; the first
  // pump_sends transmits them alongside the stage frames.
  if (!relay_seeds.empty()) route_relayed(std::move(relay_seeds), /*count_as_relay=*/true);
  std::vector<core::Rank> nbrs;
  std::vector<StageMessage> outbox;
  std::uint64_t transit_peak = 0;

  // Settlement traffic (reliable control tags) can arrive before this rank
  // is ready to act on it: a peer that finished all its stages reports
  // settled while we are still mid-stage, and after a root re-election a
  // report can reach a rank that has not yet observed it became root. Both
  // wait loops below block on "any message arrived", so a message nobody
  // drains would make wait_message return immediately forever — a busy spin
  // against the stage deadline. Absorb the control tags into buffers on
  // every iteration instead; the settlement phase consumes the buffers.
  constexpr int kSettleReportTag = -1002;
  constexpr int kSettleDoneTag = -1003;
  std::vector<runtime::Message> settle_reports;
  std::vector<runtime::Message> settle_dones;
  auto absorb_settle_traffic = [&] {
    for (runtime::Message& m : comm_->drain(kSettleReportTag))
      settle_reports.push_back(std::move(m));
    for (runtime::Message& m : comm_->drain(kSettleDoneTag))
      settle_dones.push_back(std::move(m));
  };
  for (cur_stage = 0; cur_stage < n; ++cur_stage) {
    verify_stage_tag(static_cast<int>(me), cur_stage);
    if (injector != nullptr) injector->at_stage(static_cast<int>(me), cur_stage);

    // Build this stage's frames. Unlike plain exchange(), every dimension-d
    // neighbor gets a frame — an empty one if we have nothing to forward —
    // so receivers can detect stage completeness by counting senders.
    outbox.clear();
    state.make_stage_outbox(cur_stage, outbox);
    std::map<core::Rank, std::size_t> outbox_by_dest;
    for (std::size_t i = 0; i < outbox.size(); ++i) outbox_by_dest.emplace(outbox[i].to, i);
    nbrs.clear();
    vpt_.neighbors(me, cur_stage, nbrs);
    for (const core::Rank nbr : nbrs) {
      StageMessage msg{me, nbr, {}};
      if (const auto it = outbox_by_dest.find(nbr); it != outbox_by_dest.end())
        msg.subs = std::move(outbox[it->second].subs);
      if (!mem.is_alive(nbr)) {
        // Dead neighbor: this rank is the pivot for whatever the stage would
        // have funneled through it — the dynamic counterpart of the repaired
        // plan's PivotSend set. No empty frame either; receivers only count
        // alive senders.
        route_relayed(std::move(msg.subs), /*count_as_relay=*/false);
        continue;
      }
#if STFW_VALIDATE_ENABLED
      if (validator) validator->on_stage_send(cur_stage, msg);
#endif
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += msg.payload_bytes();
      make_frame(core::FrameKind::kData, cur_stage, nbr, std::move(msg));
    }

    // Frames for this stage that arrived while we were still behind.
    for (auto it = early.begin(); it != early.end();) {
      if (it->stage == cur_stage) {
        accept_stage_subs(cur_stage, it->sender, it->body);
        it = early.erase(it);
      } else {
        ++it;
      }
    }

    const auto stage_end = verify::verify_now() + opt.stage_deadline;
    for (;;) {
      if (comm_->membership().epoch() != mem.epoch) on_membership_change();
      process_incoming();
      absorb_settle_traffic();
      const auto now = verify::verify_now();
      const auto next_event = pump_sends(now);
      // Recomputed every iteration: a neighbor dying mid-stage shrinks the
      // expected sender count, so the stage completes among survivors
      // instead of waiting out the full deadline for a frame that can never
      // arrive.
      std::size_t want = 0;
      for (const core::Rank nbr : nbrs)
        if (mem.is_alive(nbr)) ++want;
      if (stage_got[static_cast<std::size_t>(cur_stage)].size() >= want) break;
      if (now >= stage_end) {
        // Note the gap and move on: the silent senders will fail their
        // retries and re-route directly, or report the loss themselves.
        ++stats_.timeouts;
        for (const core::Rank nbr : nbrs)
          if (mem.is_alive(nbr) &&
              stage_got[static_cast<std::size_t>(cur_stage)].count(nbr) == 0)
            result.failure.missing.push_back({cur_stage, nbr});
        break;
      }
      comm_->wait_message(runtime::Deadline{std::min(next_event, stage_end)});
    }

    transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
#if STFW_VALIDATE_ENABLED
    if (validator)
      validator->on_stage_complete(cur_stage, state.buffered_payload_bytes(),
                                   state.buffered_submessage_count());
#endif
  }

  // --- settlement: serve acks/retransmits until every survivor is done -----
  // Event-driven termination instead of a blocking collective: a rank stuck
  // inside an allgather cannot retransmit or ack, which starves peers into
  // full stage-deadline waits — and a rank-0-rooted allgather would hang
  // forever if rank 0 died. Here every rank keeps pumping until the
  // *surviving* cluster is settled: "settled" reports flow to the lowest
  // alive rank (the root, re-elected on every epoch change) over the
  // reliable control tags (negative tags; the injector leaves them alone by
  // default — the "reliable side channel" of the fault model), and the root
  // broadcasts a verdict-carrying completion — whether anything was lost
  // anywhere, and the final membership — so all survivors agree on
  // fully_recovered and degraded without a collective. Safety valves bound
  // both phases: past the first, outstanding frames are declared lost; past
  // the second, a rank stops waiting for the verdict and reports
  // conservatively (fully_recovered = false) rather than hang.
  {
    // Peers still mid-exchange may legitimately lag by up to one stage
    // deadline per remaining stage before they can start answering.
    const auto settle_valve = verify::verify_now() + opt.stage_deadline * n +
                              opt.retransmit_timeout * opt.max_settle_rounds;
    const auto verdict_valve = settle_valve + opt.stage_deadline;
    std::set<int> settled_ranks;  // root only
    bool peer_lost = false;       // root only
    int reported_to = -1;         // last root we sent our settled report to
    bool done = false;
    while (!done) {
      if (comm_->membership().epoch() != mem.epoch) on_membership_change();
      process_incoming();
      if (verify::verify_now() >= settle_valve) {
        // Whatever is still unacked is now a definite loss. No direct
        // fallback this late: new frames could never be acknowledged.
        for (OutFrame& f : frames) {
          if (f.acked || f.failed) continue;
          f.failed = true;
          ++stats_.timeouts;
          for (const Submessage& s : f.msg.subs)
            result.failure.lost.push_back({s.source, s.dest, s.size_bytes, f.stage});
        }
      }
      const auto next_event = pump_sends(verify::verify_now());
      absorb_settle_traffic();
      const int root = mem.lowest_alive;
      if (all_settled_locally()) {
        if (static_cast<int>(me) == root) {
          settled_ranks.insert(root);
        } else if (reported_to != root) {
          // (Re-)report whenever the root changed: a newly elected root
          // starts with an empty roster, so every survivor repeats its
          // report to it. Body: { settled = 1, lost-anything flag }.
          std::vector<std::byte> rep(2);
          rep[0] = std::byte{1};
          rep[1] = static_cast<std::byte>(result.failure.lost.empty() ? 0 : 1);
          comm_->send(root, kSettleReportTag, std::move(rep));
          reported_to = root;
        }
      }
      if (static_cast<int>(me) == root) {
        for (const runtime::Message& m : settle_reports) {
          settled_ranks.insert(m.source);
          if (m.data.size() >= 2 && m.data[1] != std::byte{0}) peer_lost = true;
        }
        settle_reports.clear();
        bool all = all_settled_locally();
        for (int r = 0; all && r < world; ++r)
          if (mem.is_alive(r) && settled_ranks.count(r) == 0) all = false;
        if (all) {
          // Verdict body: { any_lost, i32 alive_count, u32 membership epoch }
          // — enough for every survivor to set fully_recovered and degraded
          // to the same values the root saw.
          const bool any_lost = peer_lost || !result.failure.lost.empty();
          std::vector<std::byte> verdict(9);
          verdict[0] = static_cast<std::byte>(any_lost ? 1 : 0);
          const std::int32_t ac = mem.alive_count;
          std::memcpy(verdict.data() + 1, &ac, 4);
          std::memcpy(verdict.data() + 5, &mem.epoch, 4);
          for (int r = 0; r < world; ++r)
            if (r != root && mem.is_alive(r))
              comm_->send(r, kSettleDoneTag, std::vector<std::byte>(verdict));
          result.fully_recovered = !any_lost;
          result.degraded = mem.alive_count < world;
          done = true;
        }
      } else {
        for (const runtime::Message& m : settle_dones) {
          if (m.data.size() < 9) continue;
          std::int32_t ac = world;
          std::memcpy(&ac, m.data.data() + 1, 4);
          result.fully_recovered = m.data[0] == std::byte{0};
          result.degraded = ac < world;
          done = true;
        }
        settle_dones.clear();
      }
      if (!done && verify::verify_now() >= verdict_valve) {
        // The verdict never arrived (e.g. the root died after a partial
        // broadcast and the re-election raced our exit). Terminate with a
        // conservative local verdict instead of hanging.
        result.fully_recovered = false;
        result.degraded = degraded;
        done = true;
      }
      if (!done) {
        const auto tick = verify::verify_now() + opt.retransmit_timeout;
        comm_->wait_message(runtime::Deadline{std::min(next_event, tick)});
      }
    }
  }

  // Epilogue: no rank transmits protocol frames past this point. Flush any
  // injector-delayed stragglers into the mailboxes and discard everything
  // still addressed to this exchange, so the next one starts clean (the
  // cluster asserts empty mailboxes between runs). Every *surviving* rank
  // has already passed the bounded settlement loop above (and the barrier
  // releases on the alive count, so the dead are not waited for), so arrival
  // is expected within one more settlement budget — the generous deadline
  // below only fires on a genuinely wedged peer, surfacing a TimeoutError
  // instead of an untimed hang.
  const auto epilogue_deadline = [&] {
    using rep = std::chrono::milliseconds::rep;
    const rep sd = std::max<rep>(opt.stage_deadline.count(), 1);
    const rep budget = sd < std::numeric_limits<rep>::max() / 4 ? 4 * sd : sd;
    return runtime::Deadline::in(std::chrono::milliseconds{budget});
  };
  comm_->barrier(epilogue_deadline());
  comm_->flush_delayed();
  comm_->barrier(epilogue_deadline());
  (void)comm_->drain(kResilientDataTag);
  (void)comm_->drain(kResilientAckTag);
  (void)comm_->drain(-1002);  // settle reports/done: should already be empty
  (void)comm_->drain(-1003);

  stats_.peak_buffer_bytes =
      seed_bytes + state.delivered_payload_bytes() + direct_bytes + transit_peak;
  stats_.membership_epoch = mem.epoch;  // final view this rank finished under

  // Merge store-and-forward and direct deliveries, deduplicating by
  // (source, id): when a sender exhausts its retries even though the
  // receiver had in fact accepted the frame (all acks lost or too slow),
  // the fallback re-delivers submessages the stage path also delivers.
  std::vector<Submessage> delivered = state.take_delivered();
  std::set<std::pair<core::Rank, std::uint32_t>> delivered_keys;
  for (const Submessage& s : delivered) delivered_keys.insert({s.source, s.id});
  for (const Submessage& s : direct_delivered) {
    if (delivered_keys.insert({s.source, s.id}).second)
      delivered.push_back(s);
    else
      ++stats_.duplicate_submessages_discarded;
  }

#if STFW_VALIDATE_ENABLED
  if (validator && result.fully_recovered && !result.degraded) {
    // The conservation check is collective and only meaningful when nothing
    // was lost anywhere *and* membership is full (its allgather is rank-0
    // rooted and its seed-side claims include traffic to dead ranks);
    // fully_recovered and degraded come from the settlement verdict, so all
    // survivors take this branch together. Deadline-bounded (stfw-lint
    // l3-deadline flagged the bare overload): a rank dying here must surface
    // as a TimeoutError, not a hang.
    const auto summaries = comm_->allgather(validator->summary_blob(),
                                            runtime::Deadline::in(opt.stage_deadline));
    validator->finish(delivered, arena, stats_.messages_sent, summaries);
  }
#endif

  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  result.delivered.reserve(delivered.size());
  for (const Submessage& s : delivered) {
    const auto payload = arena.view(s);
    result.delivered.push_back(InboundMessage{s.source, {payload.begin(), payload.end()}});
  }
  return result;
}

}  // namespace stfw
