#include "stfw_communicator.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/wire.hpp"

namespace stfw {

using core::PayloadArena;
using core::StageMessage;
using core::StfwRankState;
using core::Submessage;

StfwCommunicator::StfwCommunicator(runtime::Comm& comm, core::Vpt vpt)
    : comm_(&comm), vpt_(std::move(vpt)) {
  core::require(vpt_.size() == comm.size(),
                "StfwCommunicator: VPT size must equal communicator size");
}

std::vector<InboundMessage> StfwCommunicator::exchange(std::span<const OutboundMessage> sends) {
  const auto me = static_cast<core::Rank>(comm_->rank());
  StfwRankState state(vpt_, me);
  PayloadArena arena;
  stats_ = LocalExchangeStats{};

  std::uint64_t seed_bytes = 0;
  for (const OutboundMessage& s : sends) {
    const std::uint64_t off = arena.add(s.bytes);
    state.add_send(s.dest, off, static_cast<std::uint32_t>(s.bytes.size()));
    seed_bytes += s.bytes.size();
  }

  std::vector<StageMessage> outbox;
  std::uint64_t transit_peak = 0;
  const int tag_base = epoch_ * vpt_.dim();
  for (int stage = 0; stage < vpt_.dim(); ++stage) {
    const int tag = tag_base + stage;
    outbox.clear();
    state.make_stage_outbox(stage, outbox);
    for (const StageMessage& m : outbox) {
      auto wire = core::serialize(m, arena);
      ++stats_.messages_sent;
      stats_.payload_bytes_sent += m.payload_bytes();
      stats_.wire_bytes_sent += wire.size();
      comm_->send(static_cast<int>(m.to), tag, std::move(wire));
    }
    // All sends of this stage happen-before the barrier, so drain() below
    // sees the complete set of stage messages addressed to us.
    comm_->barrier();
    for (runtime::Message& m : comm_->drain(tag)) {
      ++stats_.messages_received;
      const std::vector<Submessage> subs = core::deserialize(m.data, arena);
      state.accept(stage, subs);
    }
    transit_peak = std::max(transit_peak, state.buffered_payload_bytes());
  }
  ++epoch_;

  // Paper Section 6.2 buffer metric: original send + receive buffers plus
  // the store-and-forward transit residency.
  stats_.peak_buffer_bytes = seed_bytes + state.delivered_payload_bytes() + transit_peak;

  std::vector<InboundMessage> result;
  std::vector<Submessage> delivered = state.take_delivered();
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const Submessage& a, const Submessage& b) { return a.source < b.source; });
  result.reserve(delivered.size());
  for (const Submessage& s : delivered) {
    const auto payload = arena.view(s);
    result.push_back(InboundMessage{s.source, {payload.begin(), payload.end()}});
  }
  return result;
}

}  // namespace stfw
