#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/metrics.hpp"
#include "core/plan_repair.hpp"
#include "core/rank_state.hpp"
#include "core/sync.hpp"
#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "runtime/exchange_plan.hpp"

/// \file stfw_communicator.hpp
/// The paper's black-box operation (Section 2.2): every process passes the
/// data it wants to send together with the VPT, and the library realizes the
/// exchange with store-and-forward routing over the VPT. With Vpt::direct(K)
/// this degenerates to plain point-to-point sends — the BL baseline.
///
/// Two exchange modes are offered. exchange() is the paper's Algorithm 1
/// verbatim: it assumes a reliable transport and deadlocks or silently loses
/// data if messages go missing. exchange_resilient() runs the same routing
/// over sequence-numbered, checksummed wire frames with per-stage
/// ack/retransmit and bounded exponential backoff, recovering transparently
/// from dropped, duplicated, reordered, truncated and delayed messages; when
/// a frame exhausts its retry budget — or the receiver nacks it because it
/// already moved past that stage — the affected submessages are re-routed
/// directly to their final destinations, and what cannot be delivered at all
/// is surfaced in a per-rank ExchangeFailure report instead of crashing the
/// cluster. See docs/fault_model.md.

namespace stfw {

struct OutboundMessage {
  core::Rank dest = -1;
  std::vector<std::byte> bytes;
};

struct InboundMessage {
  core::Rank source = -1;
  std::vector<std::byte> bytes;

  friend bool operator==(const InboundMessage&, const InboundMessage&) = default;
};

/// Per-process communication statistics of one exchange.
///
/// messages_sent / payload_bytes_sent count unique protocol messages so the
/// two exchange modes are comparable; the resilience counters below record
/// the extra wire work recovery cost (retransmissions and acks do appear in
/// wire_bytes_sent).
struct LocalExchangeStats {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::uint64_t payload_bytes_sent = 0;    // includes forwarded submessages
  std::uint64_t wire_bytes_sent = 0;       // payload + wire headers
  std::uint64_t peak_buffer_bytes = 0;     // forward-buffer high water + delivered

  // Plan-cache activity of this exchange (see docs/performance.md).
  std::int64_t plan_builds = 0;     // 1 when this exchange recorded a new plan
  std::int64_t plan_hits = 0;       // 1 when this exchange replayed a plan
  std::int64_t plan_fallbacks = 0;  // 1 when a replay detected pattern drift
                                    // mid-flight and fell back to Algorithm 1

  // Dependency-driven stage progress (plain exchange; docs/performance.md).
  // Fillers are the 4-byte empty stage frames that regularize the exchange
  // to exactly one frame per (stage, dimension-d neighbor) so receivers can
  // await per-neighbor counters instead of a global barrier. They carry no
  // submessages and are excluded from messages_sent / messages_received
  // (which keep counting real protocol messages only); their wire bytes do
  // appear in wire_bytes_sent, like acks.
  std::int64_t filler_frames_sent = 0;
  std::int64_t filler_frames_received = 0;

  // Pooled-buffer activity of this exchange (zero-copy planned replays only;
  // zero elsewhere). Hits are outbound gathers served from the communicator's
  // recycled wire buffers, misses fell through to the allocator;
  // pool_reused_bytes counts the bytes handed out without allocating.
  std::int64_t pool_hits = 0;
  std::int64_t pool_misses = 0;
  std::uint64_t pool_reused_bytes = 0;

  // Resilient mode only (all zero for plain exchange()).
  std::int64_t retransmits = 0;            // transmissions beyond each frame's first
  std::int64_t timeouts = 0;               // retransmit-timer + stage-deadline expiries
  std::int64_t duplicate_frames_discarded = 0;  // recovered duplicates/re-sends
  std::int64_t duplicate_submessages_discarded = 0;  // direct copy of a delivered sub
  std::int64_t corrupt_frames_discarded = 0;    // checksum/truncation rejects
  std::int64_t late_frames_refused = 0;    // stage traffic nacked after its deadline
  std::int64_t acks_sent = 0;
  std::int64_t acks_received = 0;
  std::int64_t direct_fallback_submessages = 0;  // re-routed past a dead neighbor link

  // Rank-failure survival (exchange_resilient only; docs/fault_model.md,
  // "Membership epochs and degraded mode"). membership_epoch is the epoch
  // this rank finished the exchange at; the counters are per-exchange.
  std::uint32_t membership_epoch = 0;
  std::int64_t epoch_transitions = 0;    // membership changes observed mid-exchange
  std::int64_t failure_notices_sent = 0;
  std::int64_t failure_notices_received = 0;
  std::int64_t stale_epoch_frames_refused = 0;  // nacked: sender's view predates a death
  std::int64_t relay_submessages = 0;      // subs carried over the relay lane
  std::int64_t reinjected_submessages = 0;  // subs re-homed off frames to dead ranks
  std::int64_t dead_dest_submessages_dropped = 0;  // traffic whose destination died
  std::int64_t plan_repairs = 0;  // 1 when a degraded replay repaired a cached plan
};

/// Tuning knobs of exchange_resilient(). Defaults suit the in-process
/// runtime under test-grade fault rates; real deployments would scale the
/// deadlines with network latency.
struct ResilienceOptions {
  /// First retransmission after this long without an ack; grows by
  /// backoff_factor on every further attempt, capped at 8x this timeout
  /// (and never above the stage deadline) so a much-faulted frame still
  /// retries often enough to fit inside the settlement budget.
  std::chrono::milliseconds retransmit_timeout{10};
  double backoff_factor = 2.0;
  /// Transmissions per frame (including the first) before giving up and
  /// degrading. >= 1. Direct-fallback frames are exempt: as the last
  /// resort they keep retrying until the settlement safety valve.
  int max_attempts = 6;
  /// Budget for one stage to complete its receives; expiry records the
  /// missing neighbors and moves on rather than hanging.
  std::chrono::milliseconds stage_deadline{2000};
  /// Sizes the settlement safety valve: after all stages, a rank waits at
  /// most dim * stage_deadline + max_settle_rounds * retransmit_timeout for
  /// the cluster to settle before force-failing outstanding frames. Bounds
  /// exchange runtime.
  int max_settle_rounds = 200;
  /// Re-route the submessages of a retry-exhausted frame straight to their
  /// final destinations instead of declaring them lost immediately.
  bool direct_fallback = true;
  /// Decorrelation jitter on the retransmit backoff, in [0, 1]. Each retry
  /// waits backoff - U[0,1) * retry_jitter * (backoff - retransmit_timeout):
  /// 0 keeps the exact deterministic schedule, 1 spreads retries uniformly
  /// between the base timeout and the full backoff so colliding ranks
  /// decorrelate instead of thundering in lockstep. The STFW_RETRY_JITTER
  /// environment variable overrides this field (strict parse). Draws come
  /// from a per-(rank, exchange) seeded generator, so runs — including
  /// schedule exploration under STFW_VERIFY — stay deterministic.
  double retry_jitter = 0.0;
};

/// What one rank could not recover in a resilient exchange. empty() means
/// this rank's part of the exchange was fully reliable-equivalent.
struct ExchangeFailure {
  struct LostSubmessage {
    core::Rank source = -1;
    core::Rank dest = -1;
    std::uint32_t bytes = 0;
    int stage = -1;  // stage whose frame exhausted its budget; -1 = direct
  };
  struct MissingNeighbor {
    int stage = -1;
    core::Rank neighbor = -1;  // expected a stage frame from it; never arrived
  };

  std::vector<LostSubmessage> lost;      // definite loss (held by this rank)
  std::vector<MissingNeighbor> missing;  // inbound gaps (sender may have re-routed)

  [[nodiscard]] bool empty() const noexcept { return lost.empty() && missing.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Communication/computation overlap callback of exchange(): invoked exactly
/// once per exchange, on the calling rank's thread, after the stage-0 frames
/// have been posted and before the rank blocks on its stage-0 receives. The
/// caller runs communication-independent work (e.g. the interior rows of an
/// SpMV) inside it, hiding peer skew behind local compute. An empty hook is
/// equivalent to the plain overload.
using OverlapHook = std::function<void()>;

/// Overflow-safe retransmit backoff step: the next backoff after `current`
/// grown by `factor`, clamped into [0, min(stage_deadline, 8 *
/// retransmit_timeout)]. The clamp is computed without the signed overflow
/// that 8 * a-huge-timeout invites, and the double -> milliseconds cast only
/// happens on an in-range value, so no combination of large backoff_factor
/// and accumulated backoff can wrap into a negative or absurd delay.
std::chrono::milliseconds next_backoff(std::chrono::milliseconds current, double factor,
                                       std::chrono::milliseconds retransmit_timeout,
                                       std::chrono::milliseconds stage_deadline) noexcept;

struct ResilientExchangeResult {
  std::vector<InboundMessage> delivered;
  ExchangeFailure failure;
  /// False iff any rank of the cluster reported lost submessages this
  /// exchange (globally agreed, so all ranks can branch on it collectively).
  bool fully_recovered = true;
  /// True iff the exchange finished with at least one rank dead (agreed via
  /// the settlement verdict, so survivors can branch on it collectively).
  bool degraded = false;
};

/// Collective store-and-forward exchange over a threaded-runtime Comm.
///
/// All ranks of the communicator must construct a StfwCommunicator with an
/// equal Vpt and call exchange() the same number of times.
class StfwCommunicator {
public:
  StfwCommunicator(runtime::Comm& comm, core::Vpt vpt);

  const core::Vpt& vpt() const noexcept { return vpt_; }

  /// Executes Algorithm 1 across all ranks; returns the messages addressed
  /// to this rank, sorted by source. Collective: every rank must call it.
  /// Assumes a reliable transport (no fault injector on the faulted tags).
  ///
  /// Repeated calls with an identical send pattern (same (dest, size)
  /// sequence) transparently replay a recorded ExchangePlan instead of
  /// re-deriving routes and frame layouts — the persistent-collective fast
  /// path for iterative workloads. The cache is pattern-keyed and bounded
  /// (set_plan_cache_capacity); a replay that detects mid-flight pattern
  /// drift on a peer falls back to the unplanned path with identical
  /// results. LocalExchangeStats.plan_{builds,hits,fallbacks} report what
  /// happened.
  std::vector<InboundMessage> exchange(std::span<const OutboundMessage> sends);

  /// Overlap variant: identical exchange, but `overlap` runs once between
  /// posting the stage-0 frames and blocking on the stage-0 receives — the
  /// window where communication-independent compute hides peer skew. The
  /// result is byte-identical to the plain overload.
  std::vector<InboundMessage> exchange(std::span<const OutboundMessage> sends,
                                       const OverlapHook& overlap);

  /// Builds an ExchangePlan for `sends`' pattern with a header-only
  /// collective planning pass (payload bytes in `sends` are ignored; only
  /// (dest, size) matter). Collective: all ranks must call plan() together,
  /// like an exchange. The plan is bound to this rank and VPT.
  std::shared_ptr<runtime::ExchangePlan> plan(std::span<const OutboundMessage> sends);

  /// Replays `plan` with fresh payload bytes — the explicit persistent-
  /// exchange API. `payloads[i]` supplies the bytes of the i-th send of the
  /// planned pattern and must match its planned size. Collective, and
  /// *barrier-free*: every rank must replay a plan of the same collective
  /// plan() / recorded exchange, every time. Pattern drift is a contract
  /// violation (throws core::Error); use plain exchange() when the pattern
  /// may change between iterations.
  std::vector<InboundMessage> exchange(runtime::ExchangePlan& plan,
                                       std::span<const std::span<const std::byte>> payloads);

  /// Convenience overload: replays `plan` taking payload bytes from `sends`,
  /// whose (dest, size) sequence must equal the planned pattern.
  std::vector<InboundMessage> exchange(runtime::ExchangePlan& plan,
                                       std::span<const OutboundMessage> sends);

  /// Zero-copy replay: identical collective to exchange(plan, payloads), but
  /// the deliveries come back as views aliasing the plan's parked inbound
  /// frames (self-sends alias the caller's payload buffers) instead of
  /// freshly copied InboundMessages. Views are invalidated when the next
  /// exchange on `plan` begins or the plan is destroyed; copy out anything
  /// that must outlive the iteration. The returned span is empty after a
  /// throw (drift, validation), never dangling. Delivery order and bytes are
  /// byte-identical to exchange(plan, payloads).
  std::span<const runtime::InboundView> exchange_views(
      runtime::ExchangePlan& plan, std::span<const std::span<const std::byte>> payloads);

  /// Whether planned replays gather outgoing frames scatter/gather-style
  /// straight into pooled wire buffers (each byte written exactly once)
  /// instead of copying the frame image and overwriting its payload gaps.
  /// Defaults to the STFW_ZERO_COPY environment variable (strict parse, on).
  /// Off keeps the historical copying path for A/B benchmarking; results are
  /// byte-identical either way.
  [[nodiscard]] bool zero_copy_enabled() const noexcept { return zero_copy_; }
  void set_zero_copy(bool on) noexcept { zero_copy_ = on; }

  /// Cumulative wire-buffer pool counters of this communicator (planned
  /// replays only). LocalExchangeStats carries per-exchange deltas.
  [[nodiscard]] const core::BufferPoolStats& buffer_pool_stats() const noexcept {
    return pool_.stats();
  }

  /// Transparent plan cache bound (LRU, default 4 plans; STFW_PLAN_CACHE
  /// overrides the default). 0 disables transparent caching entirely;
  /// explicit plan()/exchange(plan, ...) still work. The cache has its own
  /// mutex so a configuration thread may resize/inspect it while the owning
  /// rank is mid-exchange; the exchange itself stays single-threaded.
  [[nodiscard]] std::size_t plan_cache_capacity() const STFW_EXCLUDES(plan_cache_mu_);
  void set_plan_cache_capacity(std::size_t capacity) STFW_EXCLUDES(plan_cache_mu_);
  [[nodiscard]] std::size_t plan_cache_size() const STFW_EXCLUDES(plan_cache_mu_);

  /// Executes Algorithm 1 over the resilient frame protocol: per-stage
  /// ack/retransmit with bounded exponential backoff, duplicate suppression,
  /// checksum rejection, direct-routing fallback and a per-rank failure
  /// report. Collective among the *alive* ranks; all must pass equal
  /// options. No foreign traffic may share the communicator's tags while it
  /// runs.
  ///
  /// Unlike plain exchange(), this mode survives rank failure: when a rank
  /// dies (fault::RankCrashedError) the membership epoch advances, survivors
  /// announce the death with kFailureNotice frames, incrementally repair any
  /// cached plan instead of re-recording it, re-home traffic stranded at the
  /// dead rank over the relay lane (kRelay frames, greedy-alive next hops),
  /// and complete the exchange among themselves with exactly-once delivery —
  /// frames are epoch-stamped and stale-epoch stage traffic is nacked. See
  /// docs/fault_model.md, "Membership epochs and degraded mode".
  [[nodiscard]] ResilientExchangeResult exchange_resilient(
      std::span<const OutboundMessage> sends, const ResilienceOptions& options = {});

  /// Statistics of the most recent exchange() / exchange_resilient() on
  /// this rank.
  [[nodiscard]] const LocalExchangeStats& last_stats() const noexcept { return stats_; }

  /// True when the build carries the debug-mode exchange validator
  /// (CMake option STFW_VALIDATE=ON; see docs/validation.md).
  static bool validation_available() noexcept;

  /// Whether exchange() runs under the invariant validator. Defaults to ON
  /// in validator-enabled builds unless the STFW_VALIDATE environment
  /// variable parses false (core::env_flag: 0/false/off/no; a malformed
  /// value throws core::ValidationError). The validator's conservation check
  /// is collective, so all ranks must agree on this flag; without
  /// STFW_VALIDATE=ON in the build the flag has no effect.
  bool validation_enabled() const noexcept { return validate_; }
  void set_validation(bool on) noexcept { validate_ = on; }

  /// Hang guard of the plain exchange's dependency waits: each per-stage
  /// wait (and the validator's collectives) gets this budget before throwing
  /// core::TimeoutError naming the missing neighbor. Defaults to the
  /// STFW_EXCHANGE_DEADLINE_MS environment variable (strict parse), falling
  /// back to 30 s; 0 waits forever (the pre-deadline behaviour).
  [[nodiscard]] std::chrono::milliseconds exchange_deadline() const noexcept {
    return exchange_deadline_;
  }
  void set_exchange_deadline(std::chrono::milliseconds d) noexcept { exchange_deadline_ = d; }

  /// A/B switch for the bulk-synchronous seed schedule: when on, exchange()
  /// re-inserts a global barrier between posting a stage's sends and
  /// receiving — the pre-dependency-driven structure, kept for honest
  /// overlap benchmarking (bench_overlap) and differential tests. Defaults
  /// to the STFW_BARRIER_SYNC environment variable (strict parse, off).
  [[nodiscard]] bool barrier_sync() const noexcept { return barrier_sync_; }
  void set_barrier_sync(bool on) noexcept { barrier_sync_ = on; }

private:
  struct PlanCacheEntry {
    std::shared_ptr<runtime::ExchangePlan> plan;
    std::uint64_t last_use = 0;
  };

  std::vector<InboundMessage> exchange_unplanned(std::span<const OutboundMessage> sends,
                                                 const core::PatternSignature* record_as,
                                                 const OverlapHook& overlap);
  std::vector<InboundMessage> exchange_planned_cached(runtime::ExchangePlan& plan,
                                                      std::span<const OutboundMessage> sends,
                                                      const OverlapHook& overlap);
  /// Shared stage loop of the strict replay APIs: contract checks, sends
  /// (gather or copy), dependency-driven receives, validator, stats. Leaves
  /// the inbound raw frames parked in `plan`; the caller materializes either
  /// InboundMessages or InboundViews from them.
  void replay_plan_stages(runtime::ExchangePlan& plan,
                          std::span<const std::span<const std::byte>> payloads);
  /// Outbound frame bytes for a planned send: pooled scatter/gather when
  /// zero_copy_, else a copy of the image with the payload gaps filled.
  std::vector<std::byte> planned_frame_bytes(
      const core::PlanOutFrame& frame, std::span<const std::span<const std::byte>> seeds,
      const std::vector<std::vector<std::vector<std::byte>>>& in_raw);
  /// Fresh per-stage deadline from exchange_deadline_ (never() when 0).
  runtime::Deadline stage_deadline() const;
  /// This rank's dimension-`stage` neighbors, ascending — the inbound
  /// dependency set of one dependency-driven stage.
  void stage_neighbor_ranks(int stage, std::vector<int>& out) const;
  /// Posts one 4-byte empty filler frame to every dimension-`stage` neighbor
  /// not in `covered`, so each receiver's per-stage frame count is met.
  void send_stage_fillers(int stage, int tag, std::span<const int> neighbors,
                          const std::vector<bool>& covered, bool count_stats);
  // Self-locking cache helpers: each takes plan_cache_mu_ only for its own
  // body, so the mutex is never held across Comm calls (no ordering edge
  // between the cache mutex and any mailbox/barrier mutex can form).
  std::shared_ptr<runtime::ExchangePlan> plan_cache_find(const core::PatternSignature& sig)
      STFW_EXCLUDES(plan_cache_mu_);
  void plan_cache_insert(std::shared_ptr<runtime::ExchangePlan> plan)
      STFW_EXCLUDES(plan_cache_mu_);
  void plan_cache_erase(const core::PatternSignature& sig) STFW_EXCLUDES(plan_cache_mu_);
  void plan_cache_evict_to(std::size_t capacity) STFW_REQUIRES(plan_cache_mu_);

  runtime::Comm* comm_;
  core::Vpt vpt_;
  int epoch_ = 0;  // distinguishes tags across repeated exchanges
  bool validate_;
  std::chrono::milliseconds exchange_deadline_;
  bool barrier_sync_;
  bool zero_copy_;
  LocalExchangeStats stats_;
  // Recycled wire buffers of the zero-copy replay path. Thread-confined to
  // the owning rank's exchange thread (like stats_), so no lock.
  core::BufferPool pool_;
  // Single-slot cache of the last incremental plan repair, keyed by pattern
  // signature and membership epoch. Thread-confined to the owning rank's
  // exchange thread (like stats_), so no lock: repeated degraded iterations
  // replay the same repaired routing without re-diffing the layout.
  std::shared_ptr<const core::RepairedPlan> repaired_plan_;
  std::uint64_t repaired_sig_key_ = 0;
  std::uint32_t repaired_epoch_ = 0;
  mutable core::Mutex plan_cache_mu_;
  std::vector<PlanCacheEntry> plan_cache_ STFW_GUARDED_BY(plan_cache_mu_);
  std::size_t plan_cache_capacity_ STFW_GUARDED_BY(plan_cache_mu_);
  std::uint64_t plan_cache_tick_ STFW_GUARDED_BY(plan_cache_mu_) = 0;
};

}  // namespace stfw
