#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/rank_state.hpp"
#include "core/vpt.hpp"
#include "runtime/comm.hpp"

/// \file stfw_communicator.hpp
/// The paper's black-box operation (Section 2.2): every process passes the
/// data it wants to send together with the VPT, and the library realizes the
/// exchange with store-and-forward routing over the VPT. With Vpt::direct(K)
/// this degenerates to plain point-to-point sends — the BL baseline.

namespace stfw {

struct OutboundMessage {
  core::Rank dest = -1;
  std::vector<std::byte> bytes;
};

struct InboundMessage {
  core::Rank source = -1;
  std::vector<std::byte> bytes;

  friend bool operator==(const InboundMessage&, const InboundMessage&) = default;
};

/// Per-process communication statistics of one exchange.
struct LocalExchangeStats {
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::uint64_t payload_bytes_sent = 0;    // includes forwarded submessages
  std::uint64_t wire_bytes_sent = 0;       // payload + wire headers
  std::uint64_t peak_buffer_bytes = 0;     // forward-buffer high water + delivered
};

/// Collective store-and-forward exchange over a threaded-runtime Comm.
///
/// All ranks of the communicator must construct a StfwCommunicator with an
/// equal Vpt and call exchange() the same number of times.
class StfwCommunicator {
public:
  StfwCommunicator(runtime::Comm& comm, core::Vpt vpt);

  const core::Vpt& vpt() const noexcept { return vpt_; }

  /// Executes Algorithm 1 across all ranks; returns the messages addressed
  /// to this rank, sorted by source. Collective: every rank must call it.
  std::vector<InboundMessage> exchange(std::span<const OutboundMessage> sends);

  /// Statistics of the most recent exchange() on this rank.
  const LocalExchangeStats& last_stats() const noexcept { return stats_; }

  /// True when the build carries the debug-mode exchange validator
  /// (CMake option STFW_VALIDATE=ON; see docs/validation.md).
  static bool validation_available() noexcept;

  /// Whether exchange() runs under the invariant validator. Defaults to ON
  /// in validator-enabled builds unless the STFW_VALIDATE environment
  /// variable is "0"/"off"/"false". The validator's conservation check is
  /// collective, so all ranks must agree on this flag; without
  /// STFW_VALIDATE=ON in the build the flag has no effect.
  bool validation_enabled() const noexcept { return validate_; }
  void set_validation(bool on) noexcept { validate_ = on; }

private:
  runtime::Comm* comm_;
  core::Vpt vpt_;
  int epoch_ = 0;  // distinguishes tags across repeated exchanges
  bool validate_;
  LocalExchangeStats stats_;
};

}  // namespace stfw
