#include "bsp_simulator.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/rank_state.hpp"
#include "core/wire.hpp"

namespace stfw::sim {

using core::Rank;
using core::StageMessage;
using core::StfwRankState;

SimResult simulate_exchange(const core::Vpt& vpt, const CommPattern& pattern,
                            const SimOptions& options) {
  core::require(pattern.finalized(), "simulate_exchange: pattern must be finalized");
  core::require(vpt.size() == pattern.num_ranks(),
                "simulate_exchange: VPT size must equal pattern rank count");

  const Rank K = vpt.size();
  const auto nK = static_cast<std::size_t>(K);

  // With a caller-provided scratch the per-rank states (and their forward-
  // buffer hash maps) survive across calls; otherwise `own` serves one call.
  SimScratch own;
  SimScratch& scratch = options.scratch != nullptr ? *options.scratch : own;
  if (!scratch.vpt_.has_value() || !(*scratch.vpt_ == vpt) || scratch.states_.size() != nK) {
    scratch.vpt_ = vpt;  // stable copy the pooled states can point at
    scratch.states_.clear();
    scratch.states_.reserve(nK);
    for (Rank r = 0; r < K; ++r) scratch.states_.emplace_back(*scratch.vpt_, r);
  } else {
    for (StfwRankState& st : scratch.states_) st.reset();
  }
  std::vector<StfwRankState>& states = scratch.states_;

  // Seed from SendSets. Payload bytes are accounted but never materialized;
  // offsets are unused by the simulator.
  for (Rank r = 0; r < K; ++r)
    for (const Send& s : pattern.sends(r))
      states[static_cast<std::size_t>(r)].add_send(s.dest, 0, s.payload_bytes);

  SimResult result{core::ExchangeMetrics(K), {}, 0.0, {}};
  result.stage_times_us.reserve(static_cast<std::size_t>(vpt.dim()));

  scratch.inbox_.resize(nK);
  scratch.send_cost_.resize(nK);
  scratch.recv_cost_.resize(nK);
  std::vector<std::vector<StageMessage>>& inbox = scratch.inbox_;
  std::vector<double>& send_cost = scratch.send_cost_;
  std::vector<double>& recv_cost = scratch.recv_cost_;
  std::vector<StageMessage>& outbox = scratch.outbox_;
  outbox.clear();
  // Per-node NIC injection/ejection bottleneck: all off-node traffic of a
  // node's ranks serializes through its NIC.
  const bool model_injection =
      options.machine != nullptr && options.machine->injection_bytes_per_us() > 0.0;
  const std::size_t num_nodes =
      options.machine != nullptr
          ? static_cast<std::size_t>(options.machine->node_of(K - 1)) + 1
          : 0;
  std::vector<std::uint64_t> node_out(num_nodes, 0), node_in(num_nodes, 0);
  // Store-and-forward transit residency: bytes parked in forward buffers at
  // stage boundaries (zero for the direct topology — everything leaves in
  // stage 0). Part of the paper's buffer-size metric.
  scratch.transit_peak_.assign(nK, 0);
  std::vector<std::uint64_t>& transit_peak = scratch.transit_peak_;

  for (int stage = 0; stage < vpt.dim(); ++stage) {
    if (options.machine != nullptr) {
      std::fill(send_cost.begin(), send_cost.end(), 0.0);
      std::fill(recv_cost.begin(), recv_cost.end(), 0.0);
      std::fill(node_out.begin(), node_out.end(), 0);
      std::fill(node_in.begin(), node_in.end(), 0);
    }
    // Phase 1: every rank forms its stage outbox; messages are routed to
    // the destinations' inboxes.
    for (Rank r = 0; r < K; ++r) {
      outbox.clear();
      states[static_cast<std::size_t>(r)].make_stage_outbox(stage, outbox);
      for (StageMessage& m : outbox) {
        const std::uint64_t payload = m.payload_bytes();
        result.metrics.record_send(r, payload);
        result.metrics.record_recv(m.to, payload);
        if (options.machine != nullptr) {
          const std::uint64_t wire = core::wire_size_bytes(m.subs.size(), payload);
          send_cost[static_cast<std::size_t>(r)] += options.machine->send_cost_us(r, m.to, wire);
          recv_cost[static_cast<std::size_t>(m.to)] += options.machine->recv_cost_us(wire);
          const int src_node = options.machine->node_of(r);
          const int dst_node = options.machine->node_of(m.to);
          if (model_injection && src_node != dst_node) {
            node_out[static_cast<std::size_t>(src_node)] += wire;
            node_in[static_cast<std::size_t>(dst_node)] += wire;
          }
        }
        inbox[static_cast<std::size_t>(m.to)].push_back(std::move(m));
      }
    }
    // Phase 2: every rank scatters what it received.
    for (Rank r = 0; r < K; ++r) {
      auto& box = inbox[static_cast<std::size_t>(r)];
      for (const StageMessage& m : box)
        states[static_cast<std::size_t>(r)].accept(stage, m.subs);
      box.clear();
      transit_peak[static_cast<std::size_t>(r)] =
          std::max(transit_peak[static_cast<std::size_t>(r)],
                   states[static_cast<std::size_t>(r)].buffered_payload_bytes());
    }
    if (options.machine != nullptr) {
      double stage_time = 0.0;
      for (std::size_t r = 0; r < nK; ++r)
        stage_time = std::max(stage_time, send_cost[r] + recv_cost[r]);
      if (model_injection) {
        const double rate = options.machine->injection_bytes_per_us();
        for (std::size_t node = 0; node < num_nodes; ++node)
          stage_time = std::max(
              stage_time, static_cast<double>(std::max(node_out[node], node_in[node])) / rate);
      }
      result.stage_times_us.push_back(stage_time);
      result.comm_time_us += stage_time;
    } else {
      result.stage_times_us.push_back(0.0);
    }
  }

  for (Rank r = 0; r < K; ++r) {
    auto& st = states[static_cast<std::size_t>(r)];
    // Paper Section 6.2 metric: buffers for the original messages a process
    // sends and receives, plus its store-and-forward buffers.
    std::uint64_t seed_bytes = 0;
    for (const Send& s : pattern.sends(r)) seed_bytes += s.payload_bytes;
    result.metrics.record_buffer_bytes(r, seed_bytes + st.delivered_payload_bytes() +
                                              transit_peak[static_cast<std::size_t>(r)]);
    STFW_ASSERT(st.buffered_payload_bytes() == 0,
                "simulate_exchange: submessages left undelivered");
  }

  if (options.collect_delivered) {
    result.delivered.resize(nK);
    for (Rank r = 0; r < K; ++r)
      result.delivered[static_cast<std::size_t>(r)] =
          states[static_cast<std::size_t>(r)].take_delivered();
  }
  return result;
}

}  // namespace stfw::sim
