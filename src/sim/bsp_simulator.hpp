#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/message.hpp"
#include "core/metrics.hpp"
#include "core/rank_state.hpp"
#include "core/vpt.hpp"
#include "netsim/machine.hpp"
#include "sim/pattern.hpp"

/// \file bsp_simulator.hpp
/// Bulk-synchronous simulator of the store-and-forward exchange.
///
/// The exchange is bulk-synchronous per stage by construction (a process
/// starts stage d only after receiving all stage d-1 messages), so a
/// stage-stepped in-process execution of all ranks is faithful: the same
/// StfwRankState per-rank logic as the threaded runtime, driven stage by
/// stage over all ranks. This scales to the paper's 16K-process studies on
/// one host because payloads are never copied — fixed-size submessage
/// records move between forward buffers.
///
/// Timing: a stage costs max over ranks of (sum of its send costs + sum of
/// its receive costs) under a Machine cost model; the exchange costs the sum
/// of its stage costs. This mirrors the paper's latency/bandwidth reasoning
/// (per-stage synchronized maxima) and ignores link contention (DESIGN.md).

namespace stfw::sim {

struct SimOptions;
struct SimResult;

/// Pooled per-rank state for repeated simulate_exchange calls. The sweep
/// harnesses simulate many exchanges over the same (or equally-shaped) VPT;
/// constructing K StfwRankStates — a vector of hash maps each — per call
/// dominates small-pattern runs. A scratch passed via SimOptions keeps the
/// states (and their bucket allocations) alive across calls: states are
/// reset when the VPT matches and rebuilt only when it changes. Owns a copy
/// of the VPT so pooled states never dangle on a caller-destroyed topology.
class SimScratch {
public:
  SimScratch() = default;

private:
  friend SimResult simulate_exchange(const core::Vpt& vpt, const CommPattern& pattern,
                                     const SimOptions& options);
  std::optional<core::Vpt> vpt_;
  std::vector<core::StfwRankState> states_;
  std::vector<std::vector<core::StageMessage>> inbox_;
  std::vector<core::StageMessage> outbox_;
  std::vector<std::uint64_t> transit_peak_;
  std::vector<double> send_cost_;
  std::vector<double> recv_cost_;
};

struct SimOptions {
  /// Compute simulated stage/exchange times on this machine (else times are 0).
  const netsim::Machine* machine = nullptr;
  /// Record delivered submessages per destination rank (for tests).
  bool collect_delivered = false;
  /// Reuse per-rank state across calls (see SimScratch). Optional.
  SimScratch* scratch = nullptr;
};

struct SimResult {
  core::ExchangeMetrics metrics;
  std::vector<double> stage_times_us;
  double comm_time_us = 0.0;
  /// delivered[r] = submessages that reached rank r; empty unless
  /// SimOptions::collect_delivered.
  std::vector<std::vector<core::Submessage>> delivered;
};

/// Run one store-and-forward exchange of `pattern` over `vpt`.
/// Pass Vpt::direct(K) for the BL baseline.
[[nodiscard]] SimResult simulate_exchange(const core::Vpt& vpt, const CommPattern& pattern,
                                          const SimOptions& options = {});

}  // namespace stfw::sim
