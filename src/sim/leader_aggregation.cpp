#include "leader_aggregation.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "core/error.hpp"
#include "core/wire.hpp"

namespace stfw::sim {

using core::Rank;

namespace {

/// Accumulates the cost-model state of one synchronized stage.
class StageCost {
public:
  StageCost(const netsim::Machine& machine, Rank num_ranks)
      : machine_(machine),
        send_(static_cast<std::size_t>(num_ranks), 0.0),
        recv_(static_cast<std::size_t>(num_ranks), 0.0) {
    const auto nodes = static_cast<std::size_t>(machine.node_of(num_ranks - 1)) + 1;
    node_out_.assign(nodes, 0);
    node_in_.assign(nodes, 0);
  }

  void message(Rank from, Rank to, std::uint64_t submessages, std::uint64_t payload_bytes) {
    const std::uint64_t wire = core::wire_size_bytes(submessages, payload_bytes);
    send_[static_cast<std::size_t>(from)] += machine_.send_cost_us(from, to, wire);
    recv_[static_cast<std::size_t>(to)] += machine_.recv_cost_us(wire);
    const int a = machine_.node_of(from);
    const int b = machine_.node_of(to);
    if (a != b) {
      node_out_[static_cast<std::size_t>(a)] += wire;
      node_in_[static_cast<std::size_t>(b)] += wire;
    }
  }

  double close() const {
    double t = 0.0;
    for (std::size_t r = 0; r < send_.size(); ++r) t = std::max(t, send_[r] + recv_[r]);
    if (machine_.injection_bytes_per_us() > 0.0) {
      for (std::size_t n = 0; n < node_out_.size(); ++n)
        t = std::max(t, static_cast<double>(std::max(node_out_[n], node_in_[n])) /
                            machine_.injection_bytes_per_us());
    }
    return t;
  }

private:
  const netsim::Machine& machine_;
  std::vector<double> send_, recv_;
  std::vector<std::uint64_t> node_out_, node_in_;
};

}  // namespace

LeaderAggResult simulate_leader_aggregation(const CommPattern& pattern,
                                            const netsim::Machine& machine) {
  core::require(pattern.finalized(), "simulate_leader_aggregation: pattern must be finalized");
  const Rank K = pattern.num_ranks();
  core::require(machine.topology().num_nodes() * machine.ranks_per_node() >= K,
                "simulate_leader_aggregation: machine too small");
  const int rpn = machine.ranks_per_node();
  auto leader_of = [rpn](Rank r) { return static_cast<Rank>(r / rpn * rpn); };

  LeaderAggResult result{core::ExchangeMetrics(K), 0.0, {0, 0, 0}};
  auto& metrics = result.metrics;

  // Stage A: non-leaders coalesce off-node payloads to their leader;
  // intra-node destinations are messaged directly (on-node, cheap).
  // Bookkeeping for stage B: per (source node leader, destination node
  // leader): {submessage count, payload bytes}.
  std::map<std::pair<Rank, Rank>, std::pair<std::uint64_t, std::uint64_t>> internode;
  // Stage C: per (destination leader, final destination): {count, bytes}.
  std::map<std::pair<Rank, Rank>, std::pair<std::uint64_t, std::uint64_t>> scatter;

  StageCost stage_a(machine, K);
  for (Rank r = 0; r < K; ++r) {
    const Rank my_leader = leader_of(r);
    std::uint64_t to_leader_count = 0, to_leader_bytes = 0;
    for (const Send& s : pattern.sends(r)) {
      const Rank dest_leader = leader_of(s.dest);
      if (dest_leader == my_leader) {
        // Same node: direct message (as BL would).
        if (s.dest != r) {
          metrics.record_send(r, s.payload_bytes);
          metrics.record_recv(s.dest, s.payload_bytes);
          stage_a.message(r, s.dest, 1, s.payload_bytes);
        }
        continue;
      }
      to_leader_count += 1;
      to_leader_bytes += s.payload_bytes;
      auto& agg = internode[{my_leader, dest_leader}];
      agg.first += 1;
      agg.second += s.payload_bytes;
      if (s.dest != dest_leader) {
        auto& sc = scatter[{dest_leader, s.dest}];
        sc.first += 1;
        sc.second += s.payload_bytes;
      }
    }
    if (to_leader_count > 0 && r != my_leader) {
      metrics.record_send(r, to_leader_bytes);
      metrics.record_recv(my_leader, to_leader_bytes);
      stage_a.message(r, my_leader, to_leader_count, to_leader_bytes);
    }
  }
  result.stage_times_us[0] = stage_a.close();

  // Stage B: leader-to-leader aggregated messages.
  StageCost stage_b(machine, K);
  for (const auto& [key, agg] : internode) {
    const auto [from, to] = key;
    metrics.record_send(from, agg.second);
    metrics.record_recv(to, agg.second);
    stage_b.message(from, to, agg.first, agg.second);
  }
  result.stage_times_us[1] = stage_b.close();

  // Stage C: destination leaders scatter to their local ranks.
  StageCost stage_c(machine, K);
  for (const auto& [key, sc] : scatter) {
    const auto [leader, dest] = key;
    metrics.record_send(leader, sc.second);
    metrics.record_recv(dest, sc.second);
    stage_c.message(leader, dest, sc.first, sc.second);
  }
  result.stage_times_us[2] = stage_c.close();

  result.comm_time_us =
      result.stage_times_us[0] + result.stage_times_us[1] + result.stage_times_us[2];
  return result;
}

}  // namespace stfw::sim
