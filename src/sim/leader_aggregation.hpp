#pragma once

#include "core/metrics.hpp"
#include "netsim/machine.hpp"
#include "sim/pattern.hpp"

/// \file leader_aggregation.hpp
/// Hierarchical leader aggregation — a practitioner baseline.
///
/// A common alternative to the paper's VPT for latency-bound irregular
/// exchanges is node-leader aggregation: each node elects its lowest rank
/// as leader; non-leaders hand all their off-node payloads to the leader
/// (one on-node message), leaders exchange one aggregated message per
/// destination *node*, and destination leaders scatter to their local
/// ranks. This bounds every non-leader at O(local dests + 1) messages but
/// concentrates all of a node's off-node traffic in one process — exactly
/// the serialization the paper's VPT avoids by keeping every process a
/// first-class router. simulate_leader_aggregation() lets the benches put
/// the two side by side under the same cost model.
///
/// Differences from Vpt::node_aware(K, r): the VPT's stage 2 spreads
/// inter-node traffic over all r ranks of a node (each talks to its own
/// "column"), while leader aggregation funnels it through one rank.

namespace stfw::sim {

struct LeaderAggResult {
  core::ExchangeMetrics metrics;     // per-rank message counts / volumes
  double comm_time_us = 0.0;         // 3-stage max-model time
  double stage_times_us[3] = {0, 0, 0};
};

/// Simulate the three-stage leader-aggregation exchange of `pattern` on
/// `machine` (the machine defines the rank -> node folding and all costs).
[[nodiscard]] LeaderAggResult simulate_leader_aggregation(const CommPattern& pattern,
                                                          const netsim::Machine& machine);

}  // namespace stfw::sim
