#include "pattern.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace stfw::sim {

using core::require;

CommPattern::CommPattern(core::Rank num_ranks) : num_ranks_(num_ranks) {
  require(num_ranks >= 1, "CommPattern: need at least one rank");
}

void CommPattern::add_send(core::Rank from, core::Rank dest, std::uint32_t payload_bytes) {
  require(!finalized_, "CommPattern::add_send: already finalized");
  require(from >= 0 && from < num_ranks_, "CommPattern::add_send: source out of range");
  require(dest >= 0 && dest < num_ranks_, "CommPattern::add_send: destination out of range");
  from_.push_back(from);
  staged_.push_back(Send{dest, payload_bytes});
}

void CommPattern::finalize() {
  require(!finalized_, "CommPattern::finalize: already finalized");
  offsets_.assign(static_cast<std::size_t>(num_ranks_) + 1, 0);
  for (core::Rank r : from_) ++offsets_[static_cast<std::size_t>(r) + 1];
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  sends_.resize(staged_.size());
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < staged_.size(); ++i)
    sends_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(from_[i])]++)] = staged_[i];
  // Deterministic order within each rank's SendSet.
  for (core::Rank r = 0; r < num_ranks_; ++r) {
    auto begin = sends_.begin() + static_cast<std::ptrdiff_t>(offsets_[static_cast<std::size_t>(r)]);
    auto end = sends_.begin() + static_cast<std::ptrdiff_t>(offsets_[static_cast<std::size_t>(r) + 1]);
    std::sort(begin, end, [](const Send& a, const Send& b) { return a.dest < b.dest; });
  }
  from_.clear();
  from_.shrink_to_fit();
  staged_.clear();
  staged_.shrink_to_fit();
  finalized_ = true;
}

std::span<const Send> CommPattern::sends(core::Rank r) const {
  require(finalized_, "CommPattern::sends: call finalize() first");
  require(r >= 0 && r < num_ranks_, "CommPattern::sends: rank out of range");
  const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(r)]);
  const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(r) + 1]);
  return std::span<const Send>(sends_.data() + b, e - b);
}

std::vector<std::int64_t> CommPattern::send_counts() const {
  require(finalized_, "CommPattern::send_counts: call finalize() first");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_ranks_));
  for (core::Rank r = 0; r < num_ranks_; ++r)
    counts[static_cast<std::size_t>(r)] =
        offsets_[static_cast<std::size_t>(r) + 1] - offsets_[static_cast<std::size_t>(r)];
  return counts;
}

std::int64_t CommPattern::max_send_count() const {
  const auto counts = send_counts();
  return *std::max_element(counts.begin(), counts.end());
}

double CommPattern::avg_send_count() const {
  return static_cast<double>(total_messages()) / static_cast<double>(num_ranks_);
}

std::uint64_t CommPattern::total_payload_bytes() const {
  require(finalized_, "CommPattern::total_payload_bytes: call finalize() first");
  std::uint64_t total = 0;
  for (const Send& s : sends_) total += s.payload_bytes;
  return total;
}

}  // namespace stfw::sim
