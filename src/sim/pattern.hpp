#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vpt.hpp"

/// \file pattern.hpp
/// A communication pattern: who sends how many payload bytes to whom.
///
/// This is the simulator's workload description — the set of SendSets of
/// Section 2, with message sizes. Patterns are extracted from applications
/// (row-parallel SpMV in spmv/) or generated synthetically (tests, examples).

namespace stfw::sim {

/// One process's message to one destination.
struct Send {
  core::Rank dest = -1;
  std::uint32_t payload_bytes = 0;

  friend bool operator==(const Send&, const Send&) = default;
};

/// CSR-like storage of all processes' SendSets.
class CommPattern {
public:
  explicit CommPattern(core::Rank num_ranks);

  core::Rank num_ranks() const noexcept { return num_ranks_; }
  std::int64_t total_messages() const noexcept {
    return static_cast<std::int64_t>(finalized_ ? sends_.size() : staged_.size());
  }

  void add_send(core::Rank from, core::Rank dest, std::uint32_t payload_bytes);
  /// Call once after the last add_send; groups sends by source rank.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  /// The SendSet of rank r (valid after finalize()).
  std::span<const Send> sends(core::Rank r) const;

  /// Per-rank original message counts — the data behind Figure 1.
  std::vector<std::int64_t> send_counts() const;
  /// Maximum / average original message count over ranks (BL's mmax/mavg).
  std::int64_t max_send_count() const;
  double avg_send_count() const;
  /// Total payload bytes over all original messages.
  std::uint64_t total_payload_bytes() const;

private:
  core::Rank num_ranks_;
  bool finalized_ = false;
  std::vector<core::Rank> from_;  // staging, parallel to staged_
  std::vector<Send> staged_;
  std::vector<std::int64_t> offsets_;  // CSR by source rank, size K+1
  std::vector<Send> sends_;
};

}  // namespace stfw::sim
