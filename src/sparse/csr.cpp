#include "csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"

namespace stfw::sparse {

using core::require;

Csr::Csr(std::int32_t num_rows, std::int32_t num_cols, std::vector<std::int64_t> row_ptr,
         std::vector<std::int32_t> col_idx, std::vector<double> values)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  require(num_rows >= 0 && num_cols >= 0, "Csr: negative dimensions");
  require(row_ptr_.size() == static_cast<std::size_t>(num_rows) + 1, "Csr: bad row_ptr size");
  require(row_ptr_.front() == 0, "Csr: row_ptr must start at 0");
  require(row_ptr_.back() == static_cast<std::int64_t>(col_idx_.size()),
          "Csr: row_ptr must end at nnz");
  require(col_idx_.size() == values_.size(), "Csr: col_idx/values size mismatch");
  for (std::size_t r = 0; r < static_cast<std::size_t>(num_rows); ++r)
    require(row_ptr_[r] <= row_ptr_[r + 1], "Csr: row_ptr must be non-decreasing");
  for (std::int32_t c : col_idx_)
    require(c >= 0 && c < num_cols, "Csr: column index out of range");
}

Csr Csr::from_triplets(std::int32_t num_rows, std::int32_t num_cols,
                       std::vector<Triplet> triplets) {
  require(num_rows >= 0 && num_cols >= 0, "Csr::from_triplets: negative dimensions");
  for (const Triplet& t : triplets) {
    require(t.row >= 0 && t.row < num_rows, "Csr::from_triplets: row out of range");
    require(t.col >= 0 && t.col < num_cols, "Csr::from_triplets: col out of range");
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(num_rows) + 1, 0);
  std::vector<std::int32_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(triplets.size());
  values.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    if (i > 0 && triplets[i].row == triplets[i - 1].row && triplets[i].col == triplets[i - 1].col) {
      values.back() += triplets[i].value;  // merge duplicates
      continue;
    }
    col_idx.push_back(triplets[i].col);
    values.push_back(triplets[i].value);
    ++row_ptr[static_cast<std::size_t>(triplets[i].row) + 1];
  }
  std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());
  return Csr(num_rows, num_cols, std::move(row_ptr), std::move(col_idx), std::move(values));
}

void Csr::spmv(std::span<const double> x, std::span<double> y) const {
  require(x.size() == static_cast<std::size_t>(num_cols_), "Csr::spmv: x size mismatch");
  require(y.size() == static_cast<std::size_t>(num_rows_), "Csr::spmv: y size mismatch");
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    double acc = 0.0;
    for (std::int64_t i = row_begin(r); i < row_end(r); ++i)
      acc += values_[static_cast<std::size_t>(i)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(i)])];
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void Csr::spmm(std::span<const double> x, std::span<double> y, std::int32_t num_vectors) const {
  require(num_vectors >= 1, "Csr::spmm: need at least one vector");
  require(x.size() == static_cast<std::size_t>(num_cols_) * static_cast<std::size_t>(num_vectors),
          "Csr::spmm: x size mismatch");
  require(y.size() == static_cast<std::size_t>(num_rows_) * static_cast<std::size_t>(num_vectors),
          "Csr::spmm: y size mismatch");
  const auto nv = static_cast<std::size_t>(num_vectors);
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    double* yr = y.data() + static_cast<std::size_t>(r) * nv;
    std::fill(yr, yr + nv, 0.0);
    for (std::int64_t i = row_begin(r); i < row_end(r); ++i) {
      const double a = values_[static_cast<std::size_t>(i)];
      const double* xc =
          x.data() + static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(i)]) * nv;
      for (std::size_t v = 0; v < nv; ++v) yr[v] += a * xc[v];
    }
  }
}

Csr Csr::transpose() const {
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(num_cols_) + 1, 0);
  for (std::int32_t c : col_idx_) ++row_ptr[static_cast<std::size_t>(c) + 1];
  std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());
  std::vector<std::int32_t> col_idx(col_idx_.size());
  std::vector<double> values(values_.size());
  std::vector<std::int64_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    for (std::int64_t i = row_begin(r); i < row_end(r); ++i) {
      const auto c = static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(i)]);
      const auto pos = static_cast<std::size_t>(cursor[c]++);
      col_idx[pos] = r;
      values[pos] = values_[static_cast<std::size_t>(i)];
    }
  }
  return Csr(num_cols_, num_rows_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

Csr Csr::symmetrized() const {
  require(num_rows_ == num_cols_, "Csr::symmetrized: matrix must be square");
  const Csr t = transpose();
  std::vector<Triplet> triplets;
  triplets.reserve(col_idx_.size() * 2);
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    for (std::int64_t i = row_begin(r); i < row_end(r); ++i)
      triplets.push_back(Triplet{r, col_idx_[static_cast<std::size_t>(i)],
                                 0.5 * values_[static_cast<std::size_t>(i)]});
    for (std::int64_t i = t.row_begin(r); i < t.row_end(r); ++i)
      triplets.push_back(Triplet{r, t.col_idx_[static_cast<std::size_t>(i)],
                                 0.5 * t.values_[static_cast<std::size_t>(i)]});
  }
  return from_triplets(num_rows_, num_cols_, std::move(triplets));
}

bool Csr::has_symmetric_pattern() const {
  if (num_rows_ != num_cols_) return false;
  const Csr t = transpose();
  return row_ptr_ == t.row_ptr_ && col_idx_ == t.col_idx_;
}

bool Csr::has_full_diagonal() const {
  require(num_rows_ == num_cols_, "Csr::has_full_diagonal: matrix must be square");
  for (std::int32_t r = 0; r < num_rows_; ++r) {
    const auto cols = row_cols(r);
    if (!std::binary_search(cols.begin(), cols.end(), r)) return false;
  }
  return true;
}

DegreeStats degree_stats(const Csr& a) {
  DegreeStats s;
  if (a.num_rows() == 0) return s;
  double sum = 0.0, sum_sq = 0.0;
  for (std::int32_t r = 0; r < a.num_rows(); ++r) {
    const auto d = static_cast<double>(a.row_degree(r));
    s.max_degree = std::max(s.max_degree, a.row_degree(r));
    sum += d;
    sum_sq += d * d;
  }
  const auto n = static_cast<double>(a.num_rows());
  s.avg_degree = sum / n;
  const double var = std::max(sum_sq / n - s.avg_degree * s.avg_degree, 0.0);
  s.cv = s.avg_degree > 0 ? std::sqrt(var) / s.avg_degree : 0.0;
  s.maxdr = static_cast<double>(s.max_degree) / n;
  return s;
}

}  // namespace stfw::sparse
