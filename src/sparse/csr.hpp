#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// \file csr.hpp
/// Compressed sparse row matrices — the substrate of the SpMV evaluation.

namespace stfw::sparse {

/// A coordinate-format triplet (builder input).
struct Triplet {
  std::int32_t row = 0;
  std::int32_t col = 0;
  double value = 0.0;
};

/// CSR sparse matrix with double values.
class Csr {
public:
  Csr() = default;
  Csr(std::int32_t num_rows, std::int32_t num_cols, std::vector<std::int64_t> row_ptr,
      std::vector<std::int32_t> col_idx, std::vector<double> values);

  /// Build from triplets; duplicates are summed, entries are sorted by
  /// (row, col).
  static Csr from_triplets(std::int32_t num_rows, std::int32_t num_cols,
                           std::vector<Triplet> triplets);

  std::int32_t num_rows() const noexcept { return num_rows_; }
  std::int32_t num_cols() const noexcept { return num_cols_; }
  std::int64_t num_nonzeros() const noexcept {
    return static_cast<std::int64_t>(col_idx_.size());
  }

  std::span<const std::int64_t> row_ptr() const noexcept { return row_ptr_; }
  std::span<const std::int32_t> col_idx() const noexcept { return col_idx_; }
  std::span<const double> values() const noexcept { return values_; }

  std::int64_t row_begin(std::int32_t r) const { return row_ptr_[static_cast<std::size_t>(r)]; }
  std::int64_t row_end(std::int32_t r) const { return row_ptr_[static_cast<std::size_t>(r) + 1]; }
  std::int64_t row_degree(std::int32_t r) const { return row_end(r) - row_begin(r); }

  std::span<const std::int32_t> row_cols(std::int32_t r) const {
    return std::span<const std::int32_t>(col_idx_.data() + row_begin(r),
                                         static_cast<std::size_t>(row_degree(r)));
  }
  std::span<const double> row_values(std::int32_t r) const {
    return std::span<const double>(values_.data() + row_begin(r),
                                   static_cast<std::size_t>(row_degree(r)));
  }

  /// y = A * x (serial reference kernel).
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Y = A * X for a row-major dense block X of num_vectors columns
  /// (the SpMM kernel; X has num_cols() * num_vectors entries, Y has
  /// num_rows() * num_vectors).
  void spmm(std::span<const double> x, std::span<double> y, std::int32_t num_vectors) const;

  /// A^T with sorted rows.
  Csr transpose() const;

  /// Pattern-symmetric closure: returns A with the pattern of A | A^T
  /// (values of duplicated entries averaged). Requires square.
  Csr symmetrized() const;

  /// True iff the sparsity pattern equals its transpose's.
  bool has_symmetric_pattern() const;

  /// True iff every row i contains an entry in column i. Requires square.
  bool has_full_diagonal() const;

private:
  std::int32_t num_rows_ = 0;
  std::int32_t num_cols_ = 0;
  std::vector<std::int64_t> row_ptr_{0};
  std::vector<std::int32_t> col_idx_;
  std::vector<double> values_;
};

/// Row-degree statistics — the columns of the paper's Table 1.
struct DegreeStats {
  std::int64_t max_degree = 0;
  double avg_degree = 0.0;
  double cv = 0.0;     // coefficient of variation of row degrees
  double maxdr = 0.0;  // max degree / number of rows
};

[[nodiscard]] DegreeStats degree_stats(const Csr& a);

}  // namespace stfw::sparse
