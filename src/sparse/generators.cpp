#include "generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <string>
#include <unordered_set>

#include "core/error.hpp"

namespace stfw::sparse {

using core::require;

Csr random_uniform(std::int32_t rows, std::int32_t cols, std::int64_t nnz, std::uint64_t seed) {
  require(rows >= 1 && cols >= 1, "random_uniform: empty matrix");
  require(nnz <= static_cast<std::int64_t>(rows) * cols, "random_uniform: nnz too large");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> row_dist(0, rows - 1);
  std::uniform_int_distribution<std::int32_t> col_dist(0, cols - 1);
  std::uniform_real_distribution<double> val_dist(-1.0, 1.0);
  std::unordered_set<std::int64_t> seen;
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz));
  while (static_cast<std::int64_t>(triplets.size()) < nnz) {
    const std::int32_t r = row_dist(rng);
    const std::int32_t c = col_dist(rng);
    if (!seen.insert(static_cast<std::int64_t>(r) * cols + c).second) continue;
    triplets.push_back(Triplet{r, c, val_dist(rng)});
  }
  return Csr::from_triplets(rows, cols, std::move(triplets));
}

Csr stencil_2d(std::int32_t nx, std::int32_t ny) {
  require(nx >= 1 && ny >= 1, "stencil_2d: empty grid");
  const std::int64_t n = static_cast<std::int64_t>(nx) * ny;
  require(n <= (std::int64_t{1} << 30), "stencil_2d: grid too large");
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(5 * n));
  auto id = [nx](std::int32_t x, std::int32_t y) { return y * nx + x; };
  for (std::int32_t y = 0; y < ny; ++y) {
    for (std::int32_t x = 0; x < nx; ++x) {
      const std::int32_t me = id(x, y);
      triplets.push_back(Triplet{me, me, 4.0});
      if (x > 0) triplets.push_back(Triplet{me, id(x - 1, y), -1.0});
      if (x + 1 < nx) triplets.push_back(Triplet{me, id(x + 1, y), -1.0});
      if (y > 0) triplets.push_back(Triplet{me, id(x, y - 1), -1.0});
      if (y + 1 < ny) triplets.push_back(Triplet{me, id(x, y + 1), -1.0});
    }
  }
  return Csr::from_triplets(static_cast<std::int32_t>(n), static_cast<std::int32_t>(n),
                            std::move(triplets));
}

Csr stencil_3d(std::int32_t nx, std::int32_t ny, std::int32_t nz) {
  require(nx >= 1 && ny >= 1 && nz >= 1, "stencil_3d: empty grid");
  const std::int64_t n = static_cast<std::int64_t>(nx) * ny * nz;
  require(n <= (std::int64_t{1} << 30), "stencil_3d: grid too large");
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(7 * n));
  auto id = [nx, ny](std::int32_t x, std::int32_t y, std::int32_t z) {
    return (z * ny + y) * nx + x;
  };
  for (std::int32_t z = 0; z < nz; ++z)
    for (std::int32_t y = 0; y < ny; ++y)
      for (std::int32_t x = 0; x < nx; ++x) {
        const std::int32_t me = id(x, y, z);
        triplets.push_back(Triplet{me, me, 6.0});
        if (x > 0) triplets.push_back(Triplet{me, id(x - 1, y, z), -1.0});
        if (x + 1 < nx) triplets.push_back(Triplet{me, id(x + 1, y, z), -1.0});
        if (y > 0) triplets.push_back(Triplet{me, id(x, y - 1, z), -1.0});
        if (y + 1 < ny) triplets.push_back(Triplet{me, id(x, y + 1, z), -1.0});
        if (z > 0) triplets.push_back(Triplet{me, id(x, y, z - 1), -1.0});
        if (z + 1 < nz) triplets.push_back(Triplet{me, id(x, y, z + 1), -1.0});
      }
  return Csr::from_triplets(static_cast<std::int32_t>(n), static_cast<std::int32_t>(n),
                            std::move(triplets));
}

std::vector<double> lognormal_degrees(std::int32_t n, double avg, double cv,
                                      std::int64_t max_degree, std::uint64_t seed) {
  require(n >= 1, "lognormal_degrees: n must be >= 1");
  require(avg >= 1.0, "lognormal_degrees: average degree must be >= 1");
  require(max_degree >= 1 && max_degree <= n, "lognormal_degrees: bad max degree");
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(avg) - 0.5 * sigma2;
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
  std::vector<double> w(static_cast<std::size_t>(n));
  for (double& x : w) x = std::clamp(dist(rng), 1.0, static_cast<double>(max_degree));
  // Clamping shifts the mean; rescale (iteratively, since rescaling
  // re-clamps the tail) so the realized mean matches `avg`.
  for (int pass = 0; pass < 8; ++pass) {
    const double mean = std::accumulate(w.begin(), w.end(), 0.0) / static_cast<double>(n);
    const double f = avg / mean;
    if (std::abs(f - 1.0) < 1e-3) break;
    for (double& x : w) x = std::clamp(x * f, 1.0, static_cast<double>(max_degree));
  }
  // Guarantee the Table 1 dense row exists.
  *std::max_element(w.begin(), w.end()) = static_cast<double>(max_degree);
  return w;
}

namespace {

/// Miller-Hagberg sampling of a Chung-Lu graph: expected degree of vertex v
/// is weights[v]; edges are sampled in O(n + m) with geometric skipping over
/// weight-sorted vertices. Returns undirected edges (u < v) in sorted-index
/// space; the caller relabels.
std::vector<std::pair<std::int32_t, std::int32_t>> sample_chung_lu_edges(
    std::span<const double> sorted_weights, std::mt19937_64& rng) {
  const auto n = static_cast<std::int32_t>(sorted_weights.size());
  const double total = std::accumulate(sorted_weights.begin(), sorted_weights.end(), 0.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(static_cast<std::size_t>(total / 2.0 * 1.1) + 16);
  for (std::int32_t u = 0; u + 1 < n; ++u) {
    std::int32_t v = u + 1;
    const double wu = sorted_weights[static_cast<std::size_t>(u)];
    double p = std::min(wu * sorted_weights[static_cast<std::size_t>(v)] / total, 1.0);
    while (v < n && p > 0.0) {
      if (p < 1.0) {
        // Geometric skip; clamp in double space (the skip can exceed n or
        // overflow 32 bits for tiny p, and log(0) must be avoided).
        double r = unit(rng);
        if (r <= 0.0) r = std::numeric_limits<double>::min();
        const double skip = std::floor(std::log(r) / std::log(1.0 - p));
        if (skip >= static_cast<double>(n - v)) break;
        v += static_cast<std::int32_t>(skip);
      }
      if (v < n) {
        const double q =
            std::min(wu * sorted_weights[static_cast<std::size_t>(v)] / total, 1.0);
        if (unit(rng) < q / p) edges.emplace_back(u, v);
        p = q;
        ++v;
      }
    }
  }
  return edges;
}

}  // namespace

Csr chung_lu_symmetric(std::span<const double> weights, std::uint64_t seed) {
  const auto n = static_cast<std::int32_t>(weights.size());
  require(n >= 1, "chung_lu_symmetric: empty weight vector");
  std::mt19937_64 rng(seed);

  // Sort weights descending, remembering a shuffled relabeling so vertex id
  // carries no degree information (SuiteSparse orderings are arbitrary too).
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return weights[static_cast<std::size_t>(a)] > weights[static_cast<std::size_t>(b)];
  });
  std::vector<double> sorted(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < sorted.size(); ++i)
    sorted[i] = weights[static_cast<std::size_t>(order[i])];
  std::vector<std::int32_t> label(static_cast<std::size_t>(n));
  std::iota(label.begin(), label.end(), 0);
  std::shuffle(label.begin(), label.end(), rng);

  const auto edges = sample_chung_lu_edges(sorted, rng);

  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2 + static_cast<std::size_t>(n));
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  for (const auto& [su, sv] : edges) {
    const std::int32_t u = label[static_cast<std::size_t>(su)];
    const std::int32_t v = label[static_cast<std::size_t>(sv)];
    triplets.push_back(Triplet{u, v, 1.0});
    triplets.push_back(Triplet{v, u, 1.0});
    row_sum[static_cast<std::size_t>(u)] += 1.0;
    row_sum[static_cast<std::size_t>(v)] += 1.0;
  }
  // Strictly diagonally dominant diagonal: keeps the matrix usable in
  // iterative solvers and guarantees a nonzero in every row.
  for (std::int32_t i = 0; i < n; ++i)
    triplets.push_back(Triplet{i, i, row_sum[static_cast<std::size_t>(i)] + 1.0});
  return Csr::from_triplets(n, n, std::move(triplets));
}

namespace {

// Table 1 of the paper, verbatim; the locality column is ours (see
// MatrixSpec::locality): ~0.9 for mesh-like kinds, ~0.5 for networks.
constexpr std::array<MatrixSpec, 22> kPaperMatrices = {{
    {"cbuckle", "structural mechanics", 13681, 676515, 600, 0.16, 0.044, 0.90},
    {"msc10848", "structural eng.", 10848, 1229778, 723, 0.42, 0.067, 0.90},
    {"fe_rotor", "undirected graph", 99617, 1324862, 125, 0.29, 0.001, 0.85},
    {"sparsine", "structural eng.", 50000, 1548988, 56, 0.36, 0.001, 0.60},
    {"coAuthorsDBLP", "co-author network", 299067, 1955352, 336, 1.50, 0.001, 0.50},
    {"net125", "optimization", 36720, 2577200, 231, 0.95, 0.006, 0.70},
    {"nd3k", "2D/3D problem", 9000, 3279690, 515, 0.26, 0.057, 0.90},
    {"GaAsH6", "chemistry problem", 61349, 3381809, 1646, 2.44, 0.027, 0.85},
    {"pkustk04", "structural eng.", 55590, 4218660, 4230, 1.46, 0.076, 0.90},
    {"gupta2", "linear programming", 62064, 4248286, 8413, 5.20, 0.136, 0.60},
    {"TSOPF_FS_b300_c2", "power network", 56814, 8767466, 27742, 6.23, 0.488, 0.85},
    {"pattern1", "optimization", 19242, 9323432, 6028, 0.78, 0.313, 0.70},
    {"SiO2", "chemistry problem", 155331, 11283503, 2749, 4.05, 0.018, 0.85},
    {"human_gene2", "gene network", 14340, 18068388, 7229, 1.09, 0.504, 0.50},
    {"coPapersCiteseer", "citation network", 434102, 32073440, 1188, 1.37, 0.003, 0.50},
    {"mip1", "optimization", 66463, 10352819, 66395, 2.25, 0.999, 0.70},
    {"TSOPF_FS_b300_c3", "power network", 84414, 13135930, 41542, 7.59, 0.492, 0.85},
    {"crankseg_2", "structural eng.", 63838, 14148858, 3423, 0.43, 0.054, 0.90},
    {"Ga41As41H72", "chemistry problem", 268096, 17488476, 702, 1.53, 0.003, 0.85},
    {"bundle_adj", "computer vision prb.", 513351, 20208051, 12588, 6.37, 0.025, 0.75},
    {"F1", "structural eng.", 343791, 26837113, 435, 0.52, 0.001, 0.90},
    {"nd24k", "2D/3D problem", 72000, 28715634, 520, 0.19, 0.007, 0.90},
}};

}  // namespace

std::span<const MatrixSpec> paper_matrices() {
  return std::span<const MatrixSpec>(kPaperMatrices.data(), kPaperMatrices.size());
}

std::span<const MatrixSpec> paper_matrices_small() {
  return std::span<const MatrixSpec>(kPaperMatrices.data(), 15);
}

std::vector<MatrixSpec> paper_matrices_large() {
  std::vector<MatrixSpec> out;
  for (const MatrixSpec& m : kPaperMatrices)
    if (m.nnz > 10'000'000) out.push_back(m);
  return out;
}

const MatrixSpec& find_paper_matrix(std::string_view name) {
  for (const MatrixSpec& m : kPaperMatrices)
    if (m.name == name) return m;
  core::fail("find_paper_matrix: unknown matrix " + std::string(name));
}

MatrixSpec scaled_spec(const MatrixSpec& spec, double scale, std::int32_t min_rows) {
  require(scale > 0.0 && scale <= 1.0, "scaled_spec: scale must be in (0, 1]");
  MatrixSpec out = spec;
  const auto target_rows =
      static_cast<std::int32_t>(std::llround(static_cast<double>(spec.rows) * scale));
  out.rows = std::min(spec.rows, std::max(target_rows, min_rows));
  const double row_frac = static_cast<double>(out.rows) / static_cast<double>(spec.rows);
  // Degree scales *with* rows: this preserves both maxdr (what fraction of
  // the ranks a dense row reaches) and the max/avg degree ratio (how
  // irregular the matrix is) — the two shape statistics the evaluation
  // depends on. Scaling only rows would keep avg degree constant while the
  // max shrinks, flattening the tail that makes these instances
  // latency-bound. Smaller degrees also mean smaller messages, i.e. deeper
  // into the latency-bound regime the paper studies.
  const double orig_avg = static_cast<double>(spec.nnz) / spec.rows;
  const double avg = std::max(6.0, orig_avg * row_frac);
  out.nnz = static_cast<std::int64_t>(avg * out.rows);
  // Max degree follows maxdr, floored for feasibility against the average.
  const auto min_max = static_cast<std::int64_t>(std::ceil(1.3 * avg)) + 1;
  out.max_degree = std::clamp<std::int64_t>(
      std::max(static_cast<std::int64_t>(std::llround(spec.maxdr * out.rows)), min_max), 1,
      out.rows);
  out.maxdr = static_cast<double>(out.max_degree) / static_cast<double>(out.rows);
  return out;
}

Csr generate(const MatrixSpec& spec, std::uint64_t seed) {
  const std::int32_t n = spec.rows;
  const double avg = std::max(1.0, static_cast<double>(spec.nnz) / n - 1.0);
  // The diagonal contributes 1 to every row degree; target the off-diagonal
  // degrees with the generator and the stats come out near Table 1.
  const std::int64_t max_off = std::max<std::int64_t>(1, spec.max_degree - 1);
  const auto w = lognormal_degrees(n, avg, spec.cv, max_off, seed);
  std::mt19937_64 rng(seed + 0x9e3779b97f4a7c15ULL);

  // Each row's target degree splits into three kinds of edges:
  //  * banded: to nearby indices — the bulk of real FEM/chemistry rows, and
  //    what makes the matrices partition-friendly;
  //  * hub excess: rows heavier than the band cap spread the rest uniformly
  //    over all vertices (a dense row touches everyone — the paper's
  //    latency driver);
  //  * connector windows: with probability (1 - locality) a light row puts
  //    half its degree into one or two random remote index windows — far
  //    couplings in real matrices are block-structured, not uniform
  //    (uniform spray would make every rank talk to every rank and erase
  //    the paper's max-vs-avg message-count gap).
  const double band_cap = std::min(3.0 * avg, static_cast<double>(n - 1));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<std::int32_t> any_vertex(0, n - 1);

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(spec.nnz) + static_cast<std::size_t>(n));
  auto add_edge = [&](std::int32_t u, std::int32_t v) {
    if (u == v) return;
    triplets.push_back(Triplet{u, v, 1.0});
    triplets.push_back(Triplet{v, u, 1.0});
  };

  const auto window = static_cast<std::int32_t>(std::max(band_cap, 8.0));
  for (std::int32_t i = 0; i < n; ++i) {
    const double target = w[static_cast<std::size_t>(i)];
    double band = std::min(target, band_cap);
    double global = target - band;  // hub excess
    if (global <= 0.0 && unit(rng) < 1.0 - spec.locality) {
      global = 0.5 * band;  // connector row
      band -= global;
    }

    // Banded part: half the width per side; neighbors' bands fill the rest.
    const auto half = static_cast<std::int32_t>(band / 2.0);
    for (std::int32_t delta = 1; delta <= half; ++delta) add_edge(i, (i + delta) % n);

    if (global <= 0.5) continue;
    const auto extra = static_cast<std::int32_t>(global);
    if (static_cast<double>(target) >= 0.6 * static_cast<double>(max_off)) {
      // True dense row: uniform targets over the whole index range
      // (duplicates merge; slight undershoot is fine).
      for (std::int32_t e = 0; e < extra; ++e) add_edge(i, any_vertex(rng));
    } else {
      // Mid-tail heavy rows and connectors: global edges land inside a few
      // remote windows — real matrices' far couplings are clustered, and
      // uniform spray here would saturate every rank's message count.
      const int num_windows =
          std::clamp(extra / std::max(window, 1) + 1, 1, 4);
      for (int win = 0; win < num_windows; ++win) {
        const std::int32_t start = any_vertex(rng);
        std::uniform_int_distribution<std::int32_t> in_window(0, window - 1);
        for (std::int32_t e = 0; e < extra / num_windows; ++e)
          add_edge(i, (start + in_window(rng)) % n);
      }
    }
  }

  // Diagonally dominant diagonal (also guarantees a nonzero in every row);
  // duplicate off-diagonal entries merge in from_triplets.
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  for (const Triplet& t : triplets) row_sum[static_cast<std::size_t>(t.row)] += t.value;
  for (std::int32_t i = 0; i < n; ++i)
    triplets.push_back(Triplet{i, i, row_sum[static_cast<std::size_t>(i)] + 1.0});
  return Csr::from_triplets(n, n, std::move(triplets));
}

}  // namespace stfw::sparse
