#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "sparse/csr.hpp"

/// \file generators.hpp
/// Synthetic sparse matrices.
///
/// The paper evaluates on 22 SuiteSparse matrices (Table 1) characterized by
/// rows, nonzeros, maximum row degree, coefficient of variation (cv) of the
/// row degrees, and maxdr = max degree / rows. Those statistics are exactly
/// what drives the communication pattern of row-parallel SpMV, so we
/// substitute each matrix with a synthetic symmetric pattern matching them:
/// a lognormal degree sequence (mean = nnz/rows, given cv, clamped to the
/// given max and with the max forced) sampled into a graph with the
/// Miller-Hagberg O(n+m) Chung-Lu algorithm, plus a full diagonal.

namespace stfw::sparse {

/// Uniformly random pattern with exactly `nnz` distinct entries.
Csr random_uniform(std::int32_t rows, std::int32_t cols, std::int64_t nnz, std::uint64_t seed);

/// 5-point 2D Laplacian stencil on an nx-by-ny grid (a *regular* pattern —
/// the contrast class the paper's introduction discusses).
Csr stencil_2d(std::int32_t nx, std::int32_t ny);

/// 7-point 3D Laplacian stencil.
Csr stencil_3d(std::int32_t nx, std::int32_t ny, std::int32_t nz);

/// Lognormal degree targets with the given mean and coefficient of
/// variation, clamped to [1, max_degree], with max_degree forced to occur.
std::vector<double> lognormal_degrees(std::int32_t n, double avg, double cv,
                                      std::int64_t max_degree, std::uint64_t seed);

/// Symmetric Chung-Lu graph (pattern + unit values + full diagonal) whose
/// expected degree sequence is `weights`; vertex labels are shuffled so
/// degree does not correlate with index. Values are 1 except a diagonal
/// that makes rows strictly diagonally dominant (safe for iterative use).
Csr chung_lu_symmetric(std::span<const double> weights, std::uint64_t seed);

/// Table 1 row: the target statistics of one paper matrix.
struct MatrixSpec {
  std::string_view name;
  std::string_view kind;
  std::int32_t rows = 0;
  std::int64_t nnz = 0;
  std::int64_t max_degree = 0;
  double cv = 0.0;
  double maxdr = 0.0;
  /// Fraction of each row's degree realized as *banded* (index-local)
  /// edges; the rest is sampled globally (Chung-Lu). Real matrices are
  /// mostly local (FEM/chemistry ~0.9) with dense rows reaching far;
  /// relationship networks are less local (~0.5). Locality is what makes
  /// the matrices partition-friendly: without it every rank talks to every
  /// rank and the paper's max-vs-avg message-count gap disappears.
  double locality = 0.8;
};

/// All 22 matrices of Table 1, in table order. The first 15 are the
/// Section 6.2-6.4 set; the last 10 (nnz > 10M) are the Section 6.5 set
/// (three matrices belong to both).
std::span<const MatrixSpec> paper_matrices();

/// The 15-matrix application-study set (top of Table 1).
std::span<const MatrixSpec> paper_matrices_small();

/// The 10-matrix large-scale set (nnz > 10M).
std::vector<MatrixSpec> paper_matrices_large();

/// Lookup by name; throws core::Error if unknown.
const MatrixSpec& find_paper_matrix(std::string_view name);

/// Shrink a spec for laptop-scale runs: rows and nnz scale by `scale`
/// (rows never below min_rows or the original count, whichever is smaller);
/// max degree follows maxdr * new_rows; cv is preserved. nnz is additionally
/// capped so avg degree never exceeds the original.
MatrixSpec scaled_spec(const MatrixSpec& spec, double scale, std::int32_t min_rows);

/// Generate the synthetic stand-in for `spec`.
Csr generate(const MatrixSpec& spec, std::uint64_t seed);

}  // namespace stfw::sparse
