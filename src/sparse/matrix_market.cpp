#include "matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace stfw::sparse {

using core::require;

Csr read_matrix_market(std::istream& in) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "matrix market: empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  std::transform(field.begin(), field.end(), field.begin(), ::tolower);
  std::transform(symmetry.begin(), symmetry.end(), symmetry.begin(), ::tolower);
  require(banner == "%%MatrixMarket", "matrix market: bad banner");
  require(object == "matrix" && format == "coordinate",
          "matrix market: only coordinate matrices supported");
  require(field == "real" || field == "integer" || field == "pattern",
          "matrix market: unsupported field type");
  require(symmetry == "general" || symmetry == "symmetric",
          "matrix market: unsupported symmetry");
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments.
  do {
    require(static_cast<bool>(std::getline(in, line)), "matrix market: missing size line");
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  std::int64_t rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  require(rows > 0 && cols > 0 && entries >= 0, "matrix market: bad size line");

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(symmetric ? entries * 2 : entries));
  for (std::int64_t i = 0; i < entries; ++i) {
    std::int64_t r = 0, c = 0;
    double v = 1.0;
    in >> r >> c;
    if (!pattern) in >> v;
    require(static_cast<bool>(in), "matrix market: truncated entries");
    require(r >= 1 && r <= rows && c >= 1 && c <= cols, "matrix market: entry out of range");
    triplets.push_back(
        Triplet{static_cast<std::int32_t>(r - 1), static_cast<std::int32_t>(c - 1), v});
    if (symmetric && r != c)
      triplets.push_back(
          Triplet{static_cast<std::int32_t>(c - 1), static_cast<std::int32_t>(r - 1), v});
  }
  return Csr::from_triplets(static_cast<std::int32_t>(rows), static_cast<std::int32_t>(cols),
                            std::move(triplets));
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "matrix market: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr& a) {
  out << std::setprecision(17);  // round-trip exact for doubles
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.num_rows() << " " << a.num_cols() << " " << a.num_nonzeros() << "\n";
  for (std::int32_t r = 0; r < a.num_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i)
      out << (r + 1) << " " << (cols[i] + 1) << " " << vals[i] << "\n";
  }
}

void write_matrix_market_file(const std::string& path, const Csr& a) {
  std::ofstream out(path);
  require(out.good(), "matrix market: cannot open " + path + " for writing");
  write_matrix_market(out, a);
}

}  // namespace stfw::sparse
