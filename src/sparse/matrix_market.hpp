#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

/// \file matrix_market.hpp
/// MatrixMarket coordinate-format I/O (the format SuiteSparse distributes).
/// Supports `matrix coordinate real|integer|pattern general|symmetric`;
/// symmetric inputs are expanded to full storage, pattern values become 1.0.

namespace stfw::sparse {

Csr read_matrix_market(std::istream& in);
Csr read_matrix_market_file(const std::string& path);

/// Writes general real coordinate format.
void write_matrix_market(std::ostream& out, const Csr& a);
void write_matrix_market_file(const std::string& path, const Csr& a);

}  // namespace stfw::sparse
