#include "reorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <queue>

#include "core/error.hpp"

namespace stfw::sparse {

using core::require;

namespace {

/// BFS returning the visit order from `start`, neighbors in ascending
/// degree; also reports the last level's lowest-degree vertex (for the
/// pseudo-peripheral search) and the eccentricity.
struct BfsResult {
  std::vector<std::int32_t> order;
  std::int32_t far_vertex = -1;
  int levels = 0;
};

BfsResult bfs_by_degree(const Csr& a, std::int32_t start, std::vector<std::int32_t>& level,
                        std::int32_t mark) {
  BfsResult out;
  std::queue<std::int32_t> frontier;
  frontier.push(start);
  level[static_cast<std::size_t>(start)] = mark;
  std::vector<std::int32_t> next;
  std::int32_t current_level_end = start;
  int depth = 0;
  std::int32_t last_vertex = start;
  while (!frontier.empty()) {
    const std::int32_t v = frontier.front();
    frontier.pop();
    out.order.push_back(v);
    last_vertex = v;
    next.assign(a.row_cols(v).begin(), a.row_cols(v).end());
    std::sort(next.begin(), next.end(), [&a](std::int32_t x, std::int32_t y) {
      return a.row_degree(x) != a.row_degree(y) ? a.row_degree(x) < a.row_degree(y) : x < y;
    });
    for (std::int32_t u : next) {
      if (level[static_cast<std::size_t>(u)] == mark) continue;
      level[static_cast<std::size_t>(u)] = mark;
      frontier.push(u);
    }
    if (v == current_level_end && !frontier.empty()) {
      ++depth;
      current_level_end = frontier.back();
    }
  }
  out.far_vertex = last_vertex;
  out.levels = depth;
  return out;
}

}  // namespace

std::vector<std::int32_t> rcm_ordering(const Csr& a) {
  require(a.num_rows() == a.num_cols(), "rcm_ordering: matrix must be square");
  const std::int32_t n = a.num_rows();
  std::vector<std::int32_t> level(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> new_of_old(static_cast<std::size_t>(n), -1);
  std::int32_t next_new = 0;
  std::int32_t mark = 0;

  for (std::int32_t seed = 0; seed < n; ++seed) {
    if (new_of_old[static_cast<std::size_t>(seed)] != -1) continue;
    // Pseudo-peripheral start: two BFS hops from the component's smallest
    // vertex usually land near the graph periphery.
    std::int32_t start = seed;
    for (int hop = 0; hop < 2; ++hop) {
      const BfsResult probe = bfs_by_degree(a, start, level, ++mark);
      if (probe.far_vertex == start) break;
      start = probe.far_vertex;
    }
    const BfsResult order = bfs_by_degree(a, start, level, ++mark);
    // Cuthill-McKee assigns BFS order; *reverse* it within the component.
    const auto count = static_cast<std::int32_t>(order.order.size());
    for (std::int32_t i = 0; i < count; ++i)
      new_of_old[static_cast<std::size_t>(order.order[static_cast<std::size_t>(i)])] =
          next_new + count - 1 - i;
    next_new += count;
  }
  STFW_ASSERT(next_new == n, "rcm_ordering: not all vertices ordered");
  return new_of_old;
}

Csr permute_symmetric(const Csr& a, std::span<const std::int32_t> perm) {
  require(a.num_rows() == a.num_cols(), "permute_symmetric: matrix must be square");
  require(perm.size() == static_cast<std::size_t>(a.num_rows()),
          "permute_symmetric: permutation size mismatch");
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(a.num_nonzeros()));
  for (std::int32_t r = 0; r < a.num_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i)
      triplets.push_back(Triplet{perm[static_cast<std::size_t>(r)],
                                 perm[static_cast<std::size_t>(cols[i])], vals[i]});
  }
  return Csr::from_triplets(a.num_rows(), a.num_cols(), std::move(triplets));
}

std::int64_t bandwidth(const Csr& a) {
  std::int64_t bw = 0;
  for (std::int32_t r = 0; r < a.num_rows(); ++r)
    for (std::int32_t c : a.row_cols(r)) bw = std::max<std::int64_t>(bw, std::abs(r - c));
  return bw;
}

double average_bandwidth(const Csr& a) {
  if (a.num_nonzeros() == 0) return 0.0;
  std::int64_t total = 0;
  for (std::int32_t r = 0; r < a.num_rows(); ++r)
    for (std::int32_t c : a.row_cols(r)) total += std::abs(r - c);
  return static_cast<double>(total) / static_cast<double>(a.num_nonzeros());
}

}  // namespace stfw::sparse
