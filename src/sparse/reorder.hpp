#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

/// \file reorder.hpp
/// Symmetric row/column reordering.
///
/// Reverse Cuthill-McKee pulls a symmetric pattern's nonzeros toward the
/// diagonal; the resulting index locality is what makes contiguous row
/// partitions communication-friendly. Useful as a cheap preprocessing pass
/// before partitioning, and as a diagnostic for how much locality a pattern
/// has to give.

namespace stfw::sparse {

/// Reverse Cuthill-McKee ordering of a square matrix with a symmetric
/// pattern: perm[old_index] = new_index. Each connected component is
/// ordered from a pseudo-peripheral start vertex; components are emitted in
/// ascending order of their smallest vertex.
std::vector<std::int32_t> rcm_ordering(const Csr& a);

/// B[perm[i]][perm[j]] = A[i][j] — apply a symmetric permutation.
Csr permute_symmetric(const Csr& a, std::span<const std::int32_t> perm);

/// max over nonzeros of |i - j| (0 for diagonal/empty matrices).
std::int64_t bandwidth(const Csr& a);

/// Mean over nonzeros of |i - j| — a smoother locality measure.
double average_bandwidth(const Csr& a);

}  // namespace stfw::sparse
