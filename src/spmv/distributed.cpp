#include "distributed.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "core/error.hpp"

namespace stfw::spmv {

using core::Rank;
using core::require;

SpmvProblem::SpmvProblem(const sparse::Csr& a, std::span<const std::int32_t> parts,
                         Rank num_ranks, bool build_plans)
    : matrix_(&a), parts_(parts.begin(), parts.end()), num_ranks_(num_ranks) {
  require(a.num_rows() == a.num_cols(), "SpmvProblem: matrix must be square (x and y conform)");
  require(parts.size() == static_cast<std::size_t>(a.num_rows()),
          "SpmvProblem: one part id per row required");
  require(num_ranks >= 1, "SpmvProblem: need at least one rank");
  for (std::int32_t p : parts_)
    require(p >= 0 && p < num_ranks, "SpmvProblem: part id out of range");

  // consumers[(owner, consumer)] -> x entries needed. Build per owner with a
  // per-column dedup: column j owned by parts[j] must reach every distinct
  // rank with a nonzero in column j.
  //
  // Walk rows once; mark (col, consumer) pairs via a per-column last-seen
  // rank cache to cheaply skip repeats within a row block.
  const std::int32_t n = a.num_rows();
  std::vector<std::int64_t> local_nnz(static_cast<std::size_t>(num_ranks), 0);

  // For each column, the set of consumer ranks (excluding the owner).
  // Stored sparsely: flat list of (col, consumer) pairs, deduplicated.
  std::vector<std::pair<std::int32_t, Rank>> needs;
  needs.reserve(static_cast<std::size_t>(a.num_nonzeros() / 4) + 16);
  for (std::int32_t r = 0; r < n; ++r) {
    const Rank consumer = parts_[static_cast<std::size_t>(r)];
    local_nnz[static_cast<std::size_t>(consumer)] += a.row_degree(r);
    for (std::int32_t c : a.row_cols(r)) {
      if (parts_[static_cast<std::size_t>(c)] != consumer)
        needs.emplace_back(c, consumer);
    }
  }
  std::sort(needs.begin(), needs.end());
  needs.erase(std::unique(needs.begin(), needs.end()), needs.end());
  max_local_nnz_ = local_nnz.empty()
                       ? 0
                       : *std::max_element(local_nnz.begin(), local_nnz.end());
  total_volume_words_ = static_cast<std::int64_t>(needs.size());

  // Aggregate into per-(owner, consumer) entry counts.
  std::map<std::pair<Rank, Rank>, std::int32_t> pair_counts;
  for (const auto& [col, consumer] : needs)
    ++pair_counts[{parts_[static_cast<std::size_t>(col)], consumer}];
  send_offsets_.assign(static_cast<std::size_t>(num_ranks) + 1, 0);
  for (const auto& [key, count] : pair_counts)
    ++send_offsets_[static_cast<std::size_t>(key.first) + 1];
  std::partial_sum(send_offsets_.begin(), send_offsets_.end(), send_offsets_.begin());
  send_dest_.resize(pair_counts.size());
  send_entry_counts_.resize(pair_counts.size());
  {
    std::vector<std::int64_t> cursor(send_offsets_.begin(), send_offsets_.end() - 1);
    for (const auto& [key, count] : pair_counts) {
      const auto pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(key.first)]++);
      send_dest_[pos] = key.second;
      send_entry_counts_[pos] = count;
    }
  }

  if (!build_plans) return;

  // ------------------------------------------------------------------
  // Numeric per-rank plans.
  // ------------------------------------------------------------------
  plans_.resize(static_cast<std::size_t>(num_ranks));
  // Owned rows per rank.
  for (std::int32_t r = 0; r < n; ++r)
    plans_[static_cast<std::size_t>(parts_[static_cast<std::size_t>(r)])].owned_rows.push_back(r);

  // Send plans: `needs` is sorted by (col, consumer); group by owner.
  for (const auto& [col, consumer] : needs) {
    RankPlan& owner_plan = plans_[static_cast<std::size_t>(parts_[static_cast<std::size_t>(col)])];
    if (owner_plan.sends.empty() || owner_plan.sends.back().dest != consumer) {
      // Find or create the send list for this consumer.
      auto it = std::find_if(owner_plan.sends.begin(), owner_plan.sends.end(),
                             [&](const RankPlan::SendTo& s) { return s.dest == consumer; });
      if (it == owner_plan.sends.end()) {
        owner_plan.sends.push_back(RankPlan::SendTo{consumer, {}});
        it = owner_plan.sends.end() - 1;
      }
      it->x_slots.push_back(col);  // temporarily global; remapped below
    } else {
      owner_plan.sends.back().x_slots.push_back(col);
    }
  }

  for (Rank p = 0; p < num_ranks_; ++p) {
    RankPlan& plan = plans_[static_cast<std::size_t>(p)];
    std::sort(plan.sends.begin(), plan.sends.end(),
              [](const RankPlan::SendTo& a_, const RankPlan::SendTo& b_) {
                return a_.dest < b_.dest;
              });
    for (auto& s : plan.sends) std::sort(s.x_slots.begin(), s.x_slots.end());

    // Local x layout: owned entries first (owned_rows order), ghosts after,
    // sorted by global id.
    std::unordered_map<std::int32_t, std::int32_t> slot_of;
    slot_of.reserve(plan.owned_rows.size() * 2);
    plan.x_slot_global = plan.owned_rows;
    for (std::size_t i = 0; i < plan.owned_rows.size(); ++i)
      slot_of[plan.owned_rows[i]] = static_cast<std::int32_t>(i);

    std::vector<std::int32_t> ghosts;
    for (std::int32_t row : plan.owned_rows)
      for (std::int32_t c : a.row_cols(row))
        if (parts_[static_cast<std::size_t>(c)] != p) ghosts.push_back(c);
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    for (std::int32_t g : ghosts) {
      slot_of[g] = static_cast<std::int32_t>(plan.x_slot_global.size());
      plan.x_slot_global.push_back(g);
    }

    // Recv plans: grouped by source rank, in the sender's (ascending global)
    // order — the sender sorts its x_slots the same way.
    std::map<Rank, std::vector<std::int32_t>> by_source;
    for (std::int32_t g : ghosts)
      by_source[parts_[static_cast<std::size_t>(g)]].push_back(slot_of[g]);
    for (auto& [source, slots] : by_source)
      plan.recvs.push_back(RankPlan::RecvFrom{source, std::move(slots)});

    // Remap send x_slots from global ids to local owned slots.
    for (auto& s : plan.sends)
      for (auto& slot : s.x_slots) slot = slot_of[slot];

    // Local CSR with remapped columns.
    std::vector<std::int64_t> row_ptr(plan.owned_rows.size() + 1, 0);
    std::vector<std::int32_t> col_idx;
    std::vector<double> values;
    for (std::size_t i = 0; i < plan.owned_rows.size(); ++i) {
      const std::int32_t row = plan.owned_rows[i];
      const auto cols = a.row_cols(row);
      const auto vals = a.row_values(row);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        col_idx.push_back(slot_of[cols[j]]);
        values.push_back(vals[j]);
      }
      row_ptr[i + 1] = static_cast<std::int64_t>(col_idx.size());
    }
    plan.local = sparse::Csr(static_cast<std::int32_t>(plan.owned_rows.size()),
                             static_cast<std::int32_t>(plan.x_slot_global.size()),
                             std::move(row_ptr), std::move(col_idx), std::move(values));
  }
}

const RankPlan& SpmvProblem::plan(Rank r) const {
  require(has_plans(), "SpmvProblem::plan: built with build_plans = false");
  require(r >= 0 && r < num_ranks_, "SpmvProblem::plan: rank out of range");
  return plans_[static_cast<std::size_t>(r)];
}

sim::CommPattern SpmvProblem::comm_pattern(std::uint32_t bytes_per_value) const {
  sim::CommPattern pattern(num_ranks_);
  for (Rank owner = 0; owner < num_ranks_; ++owner) {
    const auto b = static_cast<std::size_t>(send_offsets_[static_cast<std::size_t>(owner)]);
    const auto e = static_cast<std::size_t>(send_offsets_[static_cast<std::size_t>(owner) + 1]);
    for (std::size_t i = b; i < e; ++i)
      pattern.add_send(owner, send_dest_[i],
                       static_cast<std::uint32_t>(send_entry_counts_[i]) * bytes_per_value);
  }
  pattern.finalize();
  return pattern;
}

double compute_time_us(std::int64_t max_local_nnz, double ns_per_nnz) {
  return static_cast<double>(max_local_nnz) * ns_per_nnz / 1000.0;
}

}  // namespace stfw::spmv
