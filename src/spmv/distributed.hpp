#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vpt.hpp"
#include "sim/pattern.hpp"
#include "sparse/csr.hpp"

/// \file distributed.hpp
/// Row-parallel distributed SpMV — the paper's evaluation kernel.
///
/// Rows are assigned to ranks by a partition vector; the rank owning row i
/// also owns x_i and y_i. One iteration is a communication phase (each rank
/// sends the x entries it owns to every rank with a nonzero in the matching
/// columns) followed by a local SpMV. The communication phase is exactly the
/// irregular P2P scenario of Section 2: SendSet(P_i) = ranks that need any
/// of P_i's x entries.

namespace stfw::spmv {

/// Per-rank execution plan.
struct RankPlan {
  /// Global ids of owned rows (ascending).
  std::vector<std::int32_t> owned_rows;
  /// Local matrix over owned rows; columns index the local x vector:
  /// slots [0, owned_rows.size()) hold owned x entries (same order as
  /// owned_rows), the rest are ghosts.
  sparse::Csr local;
  /// Global column id of every local x slot.
  std::vector<std::int32_t> x_slot_global;

  struct SendTo {
    core::Rank dest = -1;
    /// Local owned-x slots whose values travel, ascending global id.
    std::vector<std::int32_t> x_slots;
  };
  std::vector<SendTo> sends;

  struct RecvFrom {
    core::Rank source = -1;
    /// Ghost slots filled by this source, in the sender's slot order.
    std::vector<std::int32_t> ghost_slots;
  };
  std::vector<RecvFrom> recvs;
};

/// Global description of one distributed SpMV instance.
class SpmvProblem {
public:
  /// `parts[r]` assigns row/column r to a rank; all values in [0, K).
  /// Numeric per-rank plans are skipped when build_plans is false (metric
  /// and timing studies need only the communication pattern).
  SpmvProblem(const sparse::Csr& a, std::span<const std::int32_t> parts, core::Rank num_ranks,
              bool build_plans = true);

  core::Rank num_ranks() const noexcept { return num_ranks_; }
  const sparse::Csr& matrix() const noexcept { return *matrix_; }
  std::span<const std::int32_t> parts() const noexcept { return parts_; }

  bool has_plans() const noexcept { return !plans_.empty(); }
  const RankPlan& plan(core::Rank r) const;

  /// The communication phase as a simulator workload: one message per
  /// (owner, consumer) pair, payload = #x-entries * bytes_per_value.
  sim::CommPattern comm_pattern(std::uint32_t bytes_per_value = 8) const;

  /// Total x entries crossing rank boundaries (= the column-net model's
  /// connectivity-minus-one cost of the partition).
  std::int64_t total_comm_volume_words() const noexcept { return total_volume_words_; }

  /// max over ranks of local nonzeros (drives the compute-phase model).
  std::int64_t max_local_nnz() const noexcept { return max_local_nnz_; }

private:
  const sparse::Csr* matrix_;
  std::vector<std::int32_t> parts_;
  core::Rank num_ranks_;
  std::vector<RankPlan> plans_;
  // (owner -> consumer -> x-entry count), CSR over owners, for comm_pattern.
  std::vector<std::int64_t> send_offsets_;
  std::vector<core::Rank> send_dest_;
  std::vector<std::int32_t> send_entry_counts_;
  std::int64_t total_volume_words_ = 0;
  std::int64_t max_local_nnz_ = 0;
};

/// Compute-phase time model: nanoseconds-per-nonzero of an A2-class core.
inline constexpr double kDefaultNsPerNonzero = 12.0;

/// Simulated local-SpMV time (microseconds) for the slowest rank.
double compute_time_us(std::int64_t max_local_nnz, double ns_per_nnz = kDefaultNsPerNonzero);

}  // namespace stfw::spmv
