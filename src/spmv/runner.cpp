#include "runner.hpp"

#include <algorithm>
#include <cstring>

#include "core/env.hpp"
#include "core/error.hpp"
#include "runtime/stfw_communicator.hpp"

namespace stfw::spmv {

using core::Rank;
using core::require;

namespace {

void unpack_doubles(std::span<const std::byte> bytes, std::span<double> out) {
  require(bytes.size() == out.size() * sizeof(double), "unpack_doubles: size mismatch");
  std::memcpy(out.data(), bytes.data(), bytes.size());
}

// Partition local rows by whether every column reads an owned x slot (the
// local x layout keeps slots [0, num_owned) owned and the rest ghosts).
// Interior rows depend on no inbound data, so the overlap hook can multiply
// them while the exchange is still in flight; boundary rows wait for the
// ghost scatter.
void split_rows(const sparse::Csr& a, std::size_t num_owned,
                std::vector<std::int32_t>& interior, std::vector<std::int32_t>& boundary) {
  interior.clear();
  boundary.clear();
  for (std::int32_t r = 0; r < a.num_rows(); ++r) {
    bool in = true;
    for (const std::int32_t c : a.row_cols(r)) {
      if (static_cast<std::size_t>(c) >= num_owned) {
        in = false;
        break;
      }
    }
    (in ? interior : boundary).push_back(r);
  }
}

// Row-subset SpMV with exactly Csr::spmv's per-row accumulation order, so an
// interior/boundary split computes y bit-identical to one full sweep.
void spmv_rows(const sparse::Csr& a, std::span<const std::int32_t> rows,
               std::span<const double> x, std::span<double> y) {
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (const std::int32_t r : rows) {
    double acc = 0.0;
    for (std::int64_t i = a.row_begin(r); i < a.row_end(r); ++i)
      acc += values[static_cast<std::size_t>(i)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(i)])];
    y[static_cast<std::size_t>(r)] = acc;
  }
}

// Row-subset SpMM mirroring Csr::spmm, same bit-identity guarantee.
void spmm_rows(const sparse::Csr& a, std::span<const std::int32_t> rows,
               std::span<const double> x, std::span<double> y, std::int32_t num_vectors) {
  const auto nv = static_cast<std::size_t>(num_vectors);
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (const std::int32_t r : rows) {
    double* yr = y.data() + static_cast<std::size_t>(r) * nv;
    std::fill(yr, yr + nv, 0.0);
    for (std::int64_t i = a.row_begin(r); i < a.row_end(r); ++i) {
      const double v = values[static_cast<std::size_t>(i)];
      const double* xc =
          x.data() + static_cast<std::size_t>(col_idx[static_cast<std::size_t>(i)]) * nv;
      for (std::size_t k = 0; k < nv; ++k) yr[k] += v * xc[k];
    }
  }
}

void absorb_stats(ExchangeStatsTotals& t, const LocalExchangeStats& s) {
  t.exchanges += 1;
  t.plan_builds += s.plan_builds;
  t.plan_hits += s.plan_hits;
  t.plan_fallbacks += s.plan_fallbacks;
  t.messages_sent += s.messages_sent;
  t.payload_bytes_sent += s.payload_bytes_sent;
  t.wire_bytes_sent += s.wire_bytes_sent;
}

}  // namespace

bool overlap_default() { return core::env_flag("STFW_OVERLAP", true); }

std::vector<double> run_distributed(runtime::Cluster& cluster, const SpmvProblem& problem,
                                    const core::Vpt& vpt, std::span<const double> x0,
                                    int iterations, std::vector<ExchangeStatsTotals>* totals,
                                    bool overlap) {
  require(problem.has_plans(), "run_distributed: problem built without numeric plans");
  require(cluster.size() == problem.num_ranks(), "run_distributed: cluster size mismatch");
  require(x0.size() == static_cast<std::size_t>(problem.matrix().num_rows()),
          "run_distributed: x size mismatch");
  require(iterations >= 1, "run_distributed: need at least one iteration");

  std::vector<double> result(x0.size(), 0.0);
  if (totals != nullptr) totals->assign(static_cast<std::size_t>(problem.num_ranks()), {});

  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    const RankPlan& plan = problem.plan(me);
    StfwCommunicator communicator(comm, vpt);

    // Local x: owned slots seeded from the global vector, ghosts zero.
    std::vector<double> x_local(plan.x_slot_global.size(), 0.0);
    const std::size_t num_owned = plan.owned_rows.size();
    for (std::size_t i = 0; i < num_owned; ++i)
      x_local[i] = x0[static_cast<std::size_t>(plan.owned_rows[i])];
    std::vector<double> y_local(num_owned, 0.0);
    std::vector<double> scratch;

    // The pattern never changes across iterations, so the outbound buffers
    // are allocated once and refilled in place (and the exchanges behind
    // them replay one cached plan).
    std::vector<OutboundMessage> sends(plan.sends.size());
    for (std::size_t i = 0; i < plan.sends.size(); ++i) {
      sends[i].dest = plan.sends[i].dest;
      sends[i].bytes.resize(plan.sends[i].x_slots.size() * sizeof(double));
    }

    // Overlap split: the packed send buffers snapshot the owned x entries
    // before the exchange starts, so the hook may multiply interior rows
    // concurrently with the stage traffic.
    std::vector<std::int32_t> interior;
    std::vector<std::int32_t> boundary;
    if (overlap) split_rows(plan.local, num_owned, interior, boundary);
    const OverlapHook hook = [&] { spmv_rows(plan.local, interior, x_local, y_local); };

    for (int it = 0; it < iterations; ++it) {
      // Communication phase: ship owned x entries to their consumers.
      for (std::size_t si = 0; si < plan.sends.size(); ++si) {
        const RankPlan::SendTo& s = plan.sends[si];
        scratch.resize(s.x_slots.size());
        for (std::size_t i = 0; i < s.x_slots.size(); ++i)
          scratch[i] = x_local[static_cast<std::size_t>(s.x_slots[i])];
        std::memcpy(sends[si].bytes.data(), scratch.data(), sends[si].bytes.size());
      }
      const std::vector<InboundMessage> received =
          overlap ? communicator.exchange(sends, hook) : communicator.exchange(sends);
      if (totals != nullptr)
        absorb_stats((*totals)[static_cast<std::size_t>(me)], communicator.last_stats());

      // Scatter received x entries into ghost slots.
      require(received.size() == plan.recvs.size(),
              "run_distributed: unexpected number of inbound messages");
      for (std::size_t i = 0; i < received.size(); ++i) {
        const RankPlan::RecvFrom& r = plan.recvs[i];
        require(received[i].source == r.source, "run_distributed: inbound source mismatch");
        scratch.resize(r.ghost_slots.size());
        unpack_doubles(received[i].bytes, scratch);
        for (std::size_t j = 0; j < r.ghost_slots.size(); ++j)
          x_local[static_cast<std::size_t>(r.ghost_slots[j])] = scratch[j];
      }

      // Compute phase (interior rows already done by the hook when
      // overlapping).
      if (overlap)
        spmv_rows(plan.local, boundary, x_local, y_local);
      else
        plan.local.spmv(x_local, y_local);
      if (it + 1 < iterations)
        std::copy(y_local.begin(), y_local.end(), x_local.begin());  // x <- y
    }

    // Threads share the result buffer; owned rows are disjoint across ranks.
    for (std::size_t i = 0; i < num_owned; ++i)
      result[static_cast<std::size_t>(plan.owned_rows[i])] = y_local[i];
  });

  return result;
}

std::vector<double> run_distributed_resilient(runtime::Cluster& cluster,
                                              const SpmvProblem& problem, const core::Vpt& vpt,
                                              std::span<const double> x0, int iterations,
                                              ResilientRunReport* report) {
  require(problem.has_plans(), "run_distributed_resilient: problem built without numeric plans");
  require(cluster.size() == problem.num_ranks(),
          "run_distributed_resilient: cluster size mismatch");
  require(x0.size() == static_cast<std::size_t>(problem.matrix().num_rows()),
          "run_distributed_resilient: x size mismatch");
  require(iterations >= 1, "run_distributed_resilient: need at least one iteration");

  const auto num_ranks = static_cast<std::size_t>(problem.num_ranks());
  std::vector<double> result(x0.size(), 0.0);
  // Per-rank slots so the rank threads never share a counter; reduced into
  // the report after the run.
  std::vector<ExchangeStatsTotals> totals(num_ranks);
  std::vector<std::int64_t> degraded_iters(num_ranks, 0);
  std::vector<std::int64_t> transitions(num_ranks, 0);
  std::vector<std::int64_t> repairs(num_ranks, 0);
  std::vector<std::uint32_t> final_epoch(num_ranks, 0);

  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    const RankPlan& plan = problem.plan(me);
    StfwCommunicator communicator(comm, vpt);

    std::vector<double> x_local(plan.x_slot_global.size(), 0.0);
    const std::size_t num_owned = plan.owned_rows.size();
    for (std::size_t i = 0; i < num_owned; ++i)
      x_local[i] = x0[static_cast<std::size_t>(plan.owned_rows[i])];
    std::vector<double> y_local(num_owned, 0.0);
    std::vector<double> scratch;

    std::vector<OutboundMessage> sends(plan.sends.size());
    for (std::size_t i = 0; i < plan.sends.size(); ++i) {
      sends[i].dest = plan.sends[i].dest;
      sends[i].bytes.resize(plan.sends[i].x_slots.size() * sizeof(double));
    }

    for (int it = 0; it < iterations; ++it) {
      for (std::size_t si = 0; si < plan.sends.size(); ++si) {
        const RankPlan::SendTo& s = plan.sends[si];
        scratch.resize(s.x_slots.size());
        for (std::size_t i = 0; i < s.x_slots.size(); ++i)
          scratch[i] = x_local[static_cast<std::size_t>(s.x_slots[i])];
        std::memcpy(sends[si].bytes.data(), scratch.data(), sends[si].bytes.size());
      }
      const ResilientExchangeResult ex = communicator.exchange_resilient(sends);
      const LocalExchangeStats& s = communicator.last_stats();
      const std::size_t slot = static_cast<std::size_t>(me);
      absorb_stats(totals[slot], s);
      transitions[slot] += s.epoch_transitions;
      repairs[slot] += s.plan_repairs;
      final_epoch[slot] = s.membership_epoch;
      if (ex.degraded) ++degraded_iters[slot];

      // Tolerant inbound matching: a source that died simply stops sending,
      // so its ghost entries freeze at the last received values instead of
      // failing the run. Both lists are sorted by source rank.
      std::size_t di = 0;
      for (const RankPlan::RecvFrom& r : plan.recvs) {
        while (di < ex.delivered.size() && ex.delivered[di].source < r.source) ++di;
        if (di >= ex.delivered.size() || ex.delivered[di].source != r.source) continue;
        if (ex.delivered[di].bytes.size() != r.ghost_slots.size() * sizeof(double)) continue;
        scratch.resize(r.ghost_slots.size());
        unpack_doubles(ex.delivered[di].bytes, scratch);
        for (std::size_t j = 0; j < r.ghost_slots.size(); ++j)
          x_local[static_cast<std::size_t>(r.ghost_slots[j])] = scratch[j];
      }

      plan.local.spmv(x_local, y_local);
      if (it + 1 < iterations)
        std::copy(y_local.begin(), y_local.end(), x_local.begin());  // x <- y
    }

    // Threads share the result buffer; owned rows are disjoint across ranks,
    // and a dead rank never reaches this write.
    for (std::size_t i = 0; i < num_owned; ++i)
      result[static_cast<std::size_t>(plan.owned_rows[i])] = y_local[i];
  });

  if (report != nullptr) {
    report->totals = std::move(totals);
    report->failed_ranks = cluster.membership().failed();
    report->membership_epoch = 0;
    report->degraded_iterations = 0;
    report->epoch_transitions = 0;
    report->plan_repairs = 0;
    for (std::size_t r = 0; r < num_ranks; ++r) {
      report->membership_epoch = std::max(report->membership_epoch, final_epoch[r]);
      report->degraded_iterations = std::max(report->degraded_iterations, degraded_iters[r]);
      report->epoch_transitions += transitions[r];
      report->plan_repairs += repairs[r];
    }
  }
  return result;
}

std::vector<double> run_distributed_spmm(runtime::Cluster& cluster, const SpmvProblem& problem,
                                         const core::Vpt& vpt, std::span<const double> x0,
                                         std::int32_t num_vectors, int iterations,
                                         std::vector<ExchangeStatsTotals>* totals,
                                         bool overlap) {
  require(problem.has_plans(), "run_distributed_spmm: problem built without numeric plans");
  require(cluster.size() == problem.num_ranks(), "run_distributed_spmm: cluster size mismatch");
  require(num_vectors >= 1, "run_distributed_spmm: need at least one vector");
  require(x0.size() == static_cast<std::size_t>(problem.matrix().num_rows()) *
                           static_cast<std::size_t>(num_vectors),
          "run_distributed_spmm: X size mismatch");
  require(iterations >= 1, "run_distributed_spmm: need at least one iteration");

  const auto nv = static_cast<std::size_t>(num_vectors);
  std::vector<double> result(x0.size(), 0.0);
  if (totals != nullptr) totals->assign(static_cast<std::size_t>(problem.num_ranks()), {});

  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    const RankPlan& plan = problem.plan(me);
    StfwCommunicator communicator(comm, vpt);

    std::vector<double> x_local(plan.x_slot_global.size() * nv, 0.0);
    const std::size_t num_owned = plan.owned_rows.size();
    for (std::size_t i = 0; i < num_owned; ++i)
      std::copy_n(x0.data() + static_cast<std::size_t>(plan.owned_rows[i]) * nv, nv,
                  x_local.data() + i * nv);
    std::vector<double> y_local(num_owned * nv, 0.0);
    std::vector<double> scratch;

    std::vector<OutboundMessage> sends(plan.sends.size());
    for (std::size_t i = 0; i < plan.sends.size(); ++i) {
      sends[i].dest = plan.sends[i].dest;
      sends[i].bytes.resize(plan.sends[i].x_slots.size() * nv * sizeof(double));
    }

    std::vector<std::int32_t> interior;
    std::vector<std::int32_t> boundary;
    if (overlap) split_rows(plan.local, num_owned, interior, boundary);
    const OverlapHook hook = [&] {
      spmm_rows(plan.local, interior, x_local, y_local, num_vectors);
    };

    for (int it = 0; it < iterations; ++it) {
      for (std::size_t si = 0; si < plan.sends.size(); ++si) {
        const RankPlan::SendTo& s = plan.sends[si];
        scratch.resize(s.x_slots.size() * nv);
        for (std::size_t i = 0; i < s.x_slots.size(); ++i)
          std::copy_n(x_local.data() + static_cast<std::size_t>(s.x_slots[i]) * nv, nv,
                      scratch.data() + i * nv);
        std::memcpy(sends[si].bytes.data(), scratch.data(), sends[si].bytes.size());
      }
      const std::vector<InboundMessage> received =
          overlap ? communicator.exchange(sends, hook) : communicator.exchange(sends);
      if (totals != nullptr)
        absorb_stats((*totals)[static_cast<std::size_t>(me)], communicator.last_stats());

      require(received.size() == plan.recvs.size(),
              "run_distributed_spmm: unexpected number of inbound messages");
      for (std::size_t i = 0; i < received.size(); ++i) {
        const RankPlan::RecvFrom& r = plan.recvs[i];
        require(received[i].source == r.source, "run_distributed_spmm: inbound source mismatch");
        scratch.resize(r.ghost_slots.size() * nv);
        unpack_doubles(received[i].bytes, scratch);
        for (std::size_t j = 0; j < r.ghost_slots.size(); ++j)
          std::copy_n(scratch.data() + j * nv, nv,
                      x_local.data() + static_cast<std::size_t>(r.ghost_slots[j]) * nv);
      }

      if (overlap)
        spmm_rows(plan.local, boundary, x_local, y_local, num_vectors);
      else
        plan.local.spmm(x_local, y_local, num_vectors);
      if (it + 1 < iterations)
        std::copy(y_local.begin(), y_local.end(), x_local.begin());
    }

    for (std::size_t i = 0; i < num_owned; ++i)
      std::copy_n(y_local.data() + i * nv, nv,
                  result.data() + static_cast<std::size_t>(plan.owned_rows[i]) * nv);
  });

  return result;
}

std::vector<double> run_serial(const sparse::Csr& a, std::span<const double> x0, int iterations) {
  require(iterations >= 1, "run_serial: need at least one iteration");
  std::vector<double> x(x0.begin(), x0.end());
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()), 0.0);
  for (int it = 0; it < iterations; ++it) {
    a.spmv(x, y);
    std::swap(x, y);
  }
  return x;
}

std::vector<double> run_serial_spmm(const sparse::Csr& a, std::span<const double> x0,
                                    std::int32_t num_vectors, int iterations) {
  require(iterations >= 1, "run_serial_spmm: need at least one iteration");
  std::vector<double> x(x0.begin(), x0.end());
  std::vector<double> y(
      static_cast<std::size_t>(a.num_rows()) * static_cast<std::size_t>(num_vectors), 0.0);
  for (int it = 0; it < iterations; ++it) {
    a.spmm(x, y, num_vectors);
    std::swap(x, y);
  }
  return x;
}

}  // namespace stfw::spmv
