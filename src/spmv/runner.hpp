#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "spmv/distributed.hpp"

/// \file runner.hpp
/// Numeric distributed SpMV on the threaded runtime.
///
/// Every rank runs the paper's two-phase iteration: exchange the x entries
/// over the given VPT with the store-and-forward communicator (Vpt::direct
/// for the BL baseline), then multiply locally. Used to validate that the
/// regularized communication computes bit-identical results to a serial
/// SpMV, and by the examples.

namespace stfw::spmv {

/// Per-rank accumulation of communication statistics over all iterations of
/// a distributed run. The iterative pattern is identical every iteration, so
/// with the communicator's transparent plan cache enabled a healthy run
/// shows plan_builds == 1 and plan_hits == iterations - 1 per rank.
struct ExchangeStatsTotals {
  std::int64_t exchanges = 0;
  std::int64_t plan_builds = 0;
  std::int64_t plan_hits = 0;
  std::int64_t plan_fallbacks = 0;
  std::int64_t messages_sent = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t wire_bytes_sent = 0;
};

/// Default of the runners' `overlap` parameter: the STFW_OVERLAP environment
/// flag (strict parse, default on). With overlap on, each rank multiplies its
/// interior rows — rows reading only owned x slots — inside the exchange's
/// OverlapHook while stage frames are still in flight, and only the boundary
/// rows wait for the ghost scatter. Results are bit-identical either way
/// (the split kernels accumulate in the same per-row order as Csr::spmv).
bool overlap_default();

/// Run `iterations` of x <- A x on `cluster` and return the final global
/// vector (row i's value at index i). The problem must have numeric plans.
/// When `totals` is non-null it is resized to one entry per rank and filled
/// with each rank's accumulated exchange statistics.
std::vector<double> run_distributed(runtime::Cluster& cluster, const SpmvProblem& problem,
                                    const core::Vpt& vpt, std::span<const double> x0,
                                    int iterations = 1,
                                    std::vector<ExchangeStatsTotals>* totals = nullptr,
                                    bool overlap = overlap_default());

/// What a resilient distributed run observed (see run_distributed_resilient).
struct ResilientRunReport {
  std::vector<ExchangeStatsTotals> totals;  // per rank, like run_distributed
  std::vector<std::int32_t> failed_ranks;   // ranks dead when the run ended
  std::uint32_t membership_epoch = 0;       // highest epoch any rank finished under
  std::int64_t degraded_iterations = 0;     // max per-rank iterations run degraded
  std::int64_t epoch_transitions = 0;       // summed over ranks
  std::int64_t plan_repairs = 0;            // summed over ranks
};

/// Rank-failure-surviving variant of run_distributed: exchanges run over
/// exchange_resilient, and when a rank dies mid-run (a survivable injected
/// crash) the survivors keep iterating on their own partitions — ghost
/// entries whose source died freeze at their last received value, and the
/// dead rank's owned rows keep whatever the result buffer last held (zero if
/// it never finished). On a healthy cluster the result is bit-identical to
/// run_distributed. See docs/fault_model.md, "Membership epochs and degraded
/// mode".
std::vector<double> run_distributed_resilient(runtime::Cluster& cluster,
                                              const SpmvProblem& problem, const core::Vpt& vpt,
                                              std::span<const double> x0, int iterations = 1,
                                              ResilientRunReport* report = nullptr);

/// SpMM variant: X0 is row-major with num_vectors columns; `iterations` of
/// X <- A X. Each communicated x entry carries num_vectors doubles, so the
/// exchange sits num_vectors times deeper in the bandwidth regime — the
/// trade-off knob the large-scale analysis sweeps.
std::vector<double> run_distributed_spmm(runtime::Cluster& cluster, const SpmvProblem& problem,
                                         const core::Vpt& vpt, std::span<const double> x0,
                                         std::int32_t num_vectors, int iterations = 1,
                                         std::vector<ExchangeStatsTotals>* totals = nullptr,
                                         bool overlap = overlap_default());

/// Serial reference: `iterations` of x <- A x.
std::vector<double> run_serial(const sparse::Csr& a, std::span<const double> x0,
                               int iterations = 1);

/// Serial SpMM reference: `iterations` of X <- A X (row-major X).
std::vector<double> run_serial_spmm(const sparse::Csr& a, std::span<const double> x0,
                                    std::int32_t num_vectors, int iterations = 1);

}  // namespace stfw::spmv
