#include "exchange_validator.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "core/error.hpp"

namespace stfw::validate {

using core::Rank;
using core::StageMessage;
using core::Submessage;

std::uint64_t payload_digest(std::span<const std::byte> payload) noexcept {
  // FNV-1a, 64-bit.
  std::uint64_t h = 14695981039346656037ull;
  for (const std::byte b : payload) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

// --- summary blob wire helpers (little-endian, packed) ---------------------
//
// Layout:
//   u64 seed_count
//   u64 max_payload_bytes
//   u8  has_duplicate_pair
//   u8[7] reserved
//   u64 num_entries
//   num_entries times: { i64 dest, u64 count, u64 bytes, u64 digest }

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  std::byte buf[8];
  std::memcpy(buf, &v, 8);
  out.insert(out.end(), buf, buf + 8);
}

std::uint64_t get_u64(std::span<const std::byte> in, std::size_t& pos) {
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + pos, 8);
  pos += 8;
  return v;
}

struct RankSummary {
  std::uint64_t seed_count = 0;
  std::uint64_t max_payload_bytes = 0;
  bool has_duplicate_pair = false;
  struct Entry {
    Rank dest;
    std::uint64_t count, bytes, digest;
  };
  std::vector<Entry> entries;
};

}  // namespace

ExchangeValidator::ExchangeValidator(const core::Vpt& vpt, Rank me) : vpt_(&vpt), me_(me) {
  core::require(me >= 0 && me < vpt.size(), "ExchangeValidator: rank out of range");
}

void ExchangeValidator::violation(const char* check, int stage, const std::string& detail) const {
  throw core::ValidationError(check, static_cast<int>(me_), stage, detail);
}

void ExchangeValidator::check_rank(const char* check, int stage, Rank r, const char* what) const {
  if (r < 0 || r >= vpt_->size())
    violation(check, stage,
              std::string(what) + " rank " + std::to_string(r) + " outside [0, " +
                  std::to_string(vpt_->size()) + ")");
}

void ExchangeValidator::on_seed(Rank dest, std::span<const std::byte> payload) {
  check_rank("seed-dest", -1, dest, "seed destination");
  DestClaim& claim = claims_[dest];
  if (claim.count > 0) has_duplicate_pair_ = true;
  ++claim.count;
  claim.bytes += payload.size();
  claim.digest += payload_digest(payload);

  if (seed_count_ == 0) {
    uniform_size_ = payload.size();
  } else if (payload.size() != uniform_size_) {
    uniform_ = false;
  }
  ++seed_count_;

  if (dest != me_) {
    // Non-self seeds are parked in forward buffers before stage 0.
    seed_resident_bytes_ += payload.size();
    ++seed_resident_subs_;
    peak_resident_bytes_ = std::max(peak_resident_bytes_, seed_resident_bytes_);
    peak_resident_subs_ = std::max(peak_resident_subs_, seed_resident_subs_);
  }
}

void ExchangeValidator::on_stage_send(int stage, const StageMessage& msg) {
  if (stage < 0 || stage >= vpt_->dim())
    violation("stage-range", stage, "send in nonexistent stage");
  if (stage < last_send_stage_)
    violation("stage-order", stage,
              "send after stage " + std::to_string(last_send_stage_) + " already ran");
  if (stage > last_send_stage_) {
    last_send_stage_ = stage;
    stage_messages_ = 0;
    neighbor_seen_.assign(static_cast<std::size_t>(vpt_->dim_size(stage)), false);
  }

  if (msg.from != me_)
    violation("send-origin", stage,
              "stage message claims origin " + std::to_string(msg.from) + ", sender is " +
                  std::to_string(me_));
  check_rank("neighbor-send", stage, msg.to, "stage-message destination");
  if (msg.to == me_ || vpt_->first_diff_dim(me_, msg.to) != stage ||
      vpt_->first_diff_dim_after(me_, msg.to, stage) != -1)
    violation("neighbor-send", stage,
              "destination " + std::to_string(msg.to) + " is not a dimension-" +
                  std::to_string(stage) + " neighbor of " + std::to_string(me_) + " in " +
                  vpt_->to_string());

  const auto digit = static_cast<std::size_t>(vpt_->coord(msg.to, stage));
  if (neighbor_seen_[digit])
    violation("duplicate-stage-message", stage,
              "second coalesced message to neighbor " + std::to_string(msg.to));
  neighbor_seen_[digit] = true;

  ++stage_messages_;
  if (stage_messages_ > vpt_->dim_size(stage) - 1)
    violation("stage-message-count", stage,
              std::to_string(stage_messages_) + " messages exceed the k_d - 1 = " +
                  std::to_string(vpt_->dim_size(stage) - 1) + " per-stage bound");
  ++messages_sent_;
  if (messages_sent_ > vpt_->max_message_count_bound())
    violation("max-message-bound", stage,
              std::to_string(messages_sent_) + " total messages exceed sum_d (k_d - 1) = " +
                  std::to_string(vpt_->max_message_count_bound()));

  for (const Submessage& s : msg.subs) {
    check_rank("header-rank", stage, s.source, "submessage source");
    check_rank("header-rank", stage, s.dest, "submessage destination");
    if (s.dest == me_)
      violation("self-addressed", stage, "submessage addressed to this rank is leaving it");
    if (vpt_->coord(s.dest, stage) != vpt_->coord(msg.to, stage))
      violation("routing-digit", stage,
                "submessage for " + std::to_string(s.dest) +
                    " sent to neighbor with the wrong dimension-" + std::to_string(stage) +
                    " digit");
    for (int d = 0; d < stage; ++d)
      if (vpt_->coord(s.dest, d) != vpt_->coord(me_, d))
        violation("dimension-order-send", stage,
                  "submessage for " + std::to_string(s.dest) + " still differs in dimension " +
                      std::to_string(d) + " < stage, violating dimension-order routing");
    for (int d = stage + 1; d < vpt_->dim(); ++d)
      if (vpt_->coord(s.source, d) != vpt_->coord(me_, d))
        violation("source-consistency", stage,
                  "submessage from " + std::to_string(s.source) +
                      " cannot reside here: holder must match the source on dimension " +
                      std::to_string(d) + " > stage");
  }
}

void ExchangeValidator::on_stage_recv(int stage, Rank source,
                                      std::span<const Submessage> subs) {
  if (stage < 0 || stage >= vpt_->dim())
    violation("stage-range", stage, "receive in nonexistent stage");
  check_rank("neighbor-recv", stage, source, "stage-message source");
  if (source == me_ || vpt_->first_diff_dim(me_, source) != stage ||
      vpt_->first_diff_dim_after(me_, source, stage) != -1)
    violation("neighbor-recv", stage,
              "received a stage message from " + std::to_string(source) +
                  ", not a dimension-" + std::to_string(stage) + " neighbor of " +
                  std::to_string(me_) + " in " + vpt_->to_string());

  // Per-edge receive discipline: at most one stage frame per dimension-
  // `stage` neighbor. With dependency-driven progress there is no global
  // barrier delimiting the stage, so this local counter is what rules out a
  // demultiplexing bug feeding one edge's frame to a stage twice.
  if (stage != last_recv_stage_) {
    last_recv_stage_ = stage;
    recv_seen_.assign(static_cast<std::size_t>(vpt_->dim_size(stage)), false);
  }
  const auto src_digit = static_cast<std::size_t>(vpt_->coord(source, stage));
  if (recv_seen_[src_digit])
    violation("duplicate-stage-frame", stage,
              "second stage frame received from neighbor " + std::to_string(source));
  recv_seen_[src_digit] = true;

  for (const Submessage& s : subs) {
    check_rank("header-rank", stage, s.source, "submessage source");
    check_rank("header-rank", stage, s.dest, "submessage destination");
    for (int d = 0; d <= stage; ++d)
      if (vpt_->coord(s.dest, d) != vpt_->coord(me_, d))
        violation("dimension-order-recv", stage,
                  "submessage header for destination " + std::to_string(s.dest) +
                      " disagrees with the receiver in dimension " + std::to_string(d) +
                      " <= stage: misrouted or corrupted header");
    for (int d = stage + 1; d < vpt_->dim(); ++d)
      if (vpt_->coord(s.source, d) != vpt_->coord(me_, d))
        violation("source-consistency", stage,
                  "submessage from " + std::to_string(s.source) +
                      " routed to a rank that differs from the source in dimension " +
                      std::to_string(d) + " > stage");
  }
}

void ExchangeValidator::on_direct_recv(core::Rank source, std::span<const Submessage> subs) {
  check_rank("direct-recv", -1, source, "direct-frame sender");
  for (const Submessage& s : subs) {
    check_rank("header-rank", -1, s.source, "submessage source");
    check_rank("header-rank", -1, s.dest, "submessage destination");
    if (s.dest != me_)
      violation("direct-recv", -1,
                "direct frame carries a submessage for rank " + std::to_string(s.dest) +
                    ", but direct routing must target the final destination");
  }
}

void ExchangeValidator::on_stage_complete(int stage, std::uint64_t buffered_bytes,
                                          std::uint64_t buffered_subs) {
  if (stage < 0 || stage >= vpt_->dim())
    violation("stage-range", stage, "stage completion out of range");
  peak_resident_bytes_ = std::max(peak_resident_bytes_, buffered_bytes);
  peak_resident_subs_ = std::max(peak_resident_subs_, buffered_subs);
}

std::vector<std::byte> ExchangeValidator::summary_blob() const {
  std::vector<std::byte> out;
  out.reserve(32 + claims_.size() * 32);
  std::uint64_t max_payload = 0;
  for (const auto& [dest, claim] : claims_)
    if (claim.count > 0) max_payload = std::max(max_payload, claim.bytes / claim.count);
  // max over per-dest averages underestimates a mixed pattern's max payload,
  // but when payloads are uniform (the only case the buffer bound applies
  // to) it is exact; record the uniform size directly when we have it.
  if (uniform_ && seed_count_ > 0) max_payload = uniform_size_;
  put_u64(out, seed_count_);
  put_u64(out, max_payload);
  put_u64(out, (has_duplicate_pair_ ? 1u : 0u) | (uniform_ ? 0u : 2u));
  put_u64(out, claims_.size());
  // Deterministic entry order for reproducible diagnostics.
  std::vector<Rank> dests;
  dests.reserve(claims_.size());
  for (const auto& [dest, claim] : claims_) dests.push_back(dest);
  std::sort(dests.begin(), dests.end());
  for (const Rank dest : dests) {
    const DestClaim& claim = claims_.at(dest);
    put_u64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(dest)));
    put_u64(out, claim.count);
    put_u64(out, claim.bytes);
    put_u64(out, claim.digest);
  }
  return out;
}

void ExchangeValidator::finish(std::span<const Submessage> delivered,
                               const core::PayloadArena& arena,
                               std::int64_t reported_messages_sent,
                               std::span<const std::vector<std::byte>> all_summaries) {
  if (reported_messages_sent != messages_sent_)
    violation("stats-mismatch", -1,
              "LocalExchangeStats reports " + std::to_string(reported_messages_sent) +
                  " messages sent, validator observed " + std::to_string(messages_sent_));

  if (all_summaries.size() != static_cast<std::size_t>(vpt_->size()))
    violation("summary-shape", -1,
              "expected " + std::to_string(vpt_->size()) + " rank summaries, got " +
                  std::to_string(all_summaries.size()));

  // Parse the allgathered summaries.
  std::vector<RankSummary> summaries;
  summaries.reserve(all_summaries.size());
  for (std::size_t r = 0; r < all_summaries.size(); ++r) {
    std::span<const std::byte> blob(all_summaries[r]);
    if (blob.size() < 32)
      violation("summary-shape", -1, "rank " + std::to_string(r) + " summary truncated");
    std::size_t pos = 0;
    RankSummary s;
    s.seed_count = get_u64(blob, pos);
    s.max_payload_bytes = get_u64(blob, pos);
    const std::uint64_t flags = get_u64(blob, pos);
    s.has_duplicate_pair = (flags & 1u) != 0;
    const std::uint64_t n = get_u64(blob, pos);
    if (blob.size() != 32 + n * 32)
      violation("summary-shape", -1, "rank " + std::to_string(r) + " summary truncated");
    s.entries.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      RankSummary::Entry e{};
      e.dest = static_cast<Rank>(static_cast<std::int64_t>(get_u64(blob, pos)));
      e.count = get_u64(blob, pos);
      e.bytes = get_u64(blob, pos);
      e.digest = get_u64(blob, pos);
      s.entries.push_back(e);
    }
    summaries.push_back(std::move(s));
  }

  // Conservation: what every rank claims to have sent to us must equal what
  // we delivered, per source, in count, bytes and payload digest — the same
  // verdict a bit-exact diff against the Vpt::direct baseline would give
  // (up to 64-bit digest collisions).
  std::unordered_map<Rank, DestClaim> got;
  for (const Submessage& s : delivered) {
    check_rank("delivered-rank", -1, s.source, "delivered submessage source");
    if (s.dest != me_)
      violation("delivered-rank", -1,
                "delivered submessage addressed to " + std::to_string(s.dest));
    DestClaim& g = got[s.source];
    ++g.count;
    g.bytes += s.size_bytes;
    g.digest += payload_digest(arena.view(s));
  }
  for (Rank src = 0; src < vpt_->size(); ++src) {
    const auto& entries = summaries[static_cast<std::size_t>(src)].entries;
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const RankSummary::Entry& e) { return e.dest == me_; });
    const auto g = got.find(src);
    const std::uint64_t got_count = (g == got.end()) ? 0 : g->second.count;
    const std::uint64_t got_bytes = (g == got.end()) ? 0 : g->second.bytes;
    const std::uint64_t got_digest = (g == got.end()) ? 0 : g->second.digest;
    const std::uint64_t want_count = (it == entries.end()) ? 0 : it->count;
    const std::uint64_t want_bytes = (it == entries.end()) ? 0 : it->bytes;
    const std::uint64_t want_digest = (it == entries.end()) ? 0 : it->digest;
    if (got_count != want_count || got_bytes != want_bytes || got_digest != want_digest)
      violation("payload-conservation", -1,
                "source " + std::to_string(src) + " claims " + std::to_string(want_count) +
                    " messages / " + std::to_string(want_bytes) +
                    " bytes for this rank, delivered " + std::to_string(got_count) +
                    " messages / " + std::to_string(got_bytes) +
                    (got_digest != want_digest && got_count == want_count &&
                             got_bytes == want_bytes
                         ? " bytes with corrupted payload bits"
                         : " bytes"));
  }

  // §4 buffer bound: with at most one message per ordered (source, dest)
  // pair, any rank's forward-buffer residency is a subset of the all-to-all
  // residency, hence <= K-1 submessages and <= s*(K-1) bytes for payloads of
  // at most s bytes (exactly the paper's bound when payloads are uniform).
  bool any_duplicate = false;
  std::uint64_t s_max = 0;
  for (const RankSummary& s : summaries) {
    any_duplicate = any_duplicate || s.has_duplicate_pair;
    s_max = std::max(s_max, s.max_payload_bytes);
  }
  if (!any_duplicate) {
    const auto resident_bound = static_cast<std::uint64_t>(vpt_->size() - 1);
    if (peak_resident_subs_ > resident_bound)
      violation("buffer-bound", -1,
                "forward-buffer residency peaked at " + std::to_string(peak_resident_subs_) +
                    " submessages, above the K-1 = " + std::to_string(resident_bound) +
                    " bound");
    if (peak_resident_bytes_ > s_max * resident_bound)
      violation("buffer-bound", -1,
                "forward-buffer residency peaked at " + std::to_string(peak_resident_bytes_) +
                    " bytes, above the s*(K-1) = " + std::to_string(s_max * resident_bound) +
                    " bound");
  }
}

}  // namespace stfw::validate
