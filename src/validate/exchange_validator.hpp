#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/message.hpp"
#include "core/vpt.hpp"

/// \file exchange_validator.hpp
/// Debug-mode invariant validator for the store-and-forward exchange.
///
/// Algorithm 1 (paper §3-§4) makes hard quantitative promises that nothing
/// else in the repo mechanically enforces:
///
///  * every stage-d message travels between dimension-d neighbors only;
///  * submessage headers obey dimension-order routing — when a rank holds a
///    submessage after stage d, its final destination agrees with the rank
///    on all digits 0..d;
///  * no rank sends more than sum_d (k_d - 1) coalesced messages, and at
///    most k_d - 1 of them in stage d, at most one per neighbor;
///  * for uniform payloads of size s with at most one message per ordered
///    (source, dest) pair, forward-buffer residency never exceeds K-1
///    submessages / s*(K-1) bytes at any rank (§4's buffer bound);
///  * the exchange delivers exactly the multiset of payloads that a direct
///    (Vpt::direct) point-to-point exchange would deliver, bit-exactly.
///
/// ExchangeValidator observes one rank's exchange through hook calls placed
/// in StfwCommunicator::exchange (compiled behind the STFW_VALIDATE CMake
/// option, toggled at runtime via the STFW_VALIDATE environment variable or
/// StfwCommunicator::set_validation). Each violation throws a structured
/// core::ValidationError naming the check that fired.
///
/// The payload-conservation check is collective: each rank condenses what it
/// seeded into a summary blob (per-destination message counts, byte totals
/// and order-independent payload digests), the communicator allgathers the
/// blobs, and every rank verifies its deliveries bit-for-bit against the
/// senders' claims — equivalent to diffing the exchange against the
/// Vpt::direct baseline without running the second exchange.

namespace stfw::validate {

/// Order-independent digest of a set of payloads: the sum (mod 2^64) of the
/// FNV-1a hash of each payload. Addition (not XOR) so duplicated payloads do
/// not cancel.
std::uint64_t payload_digest(std::span<const std::byte> payload) noexcept;

class ExchangeValidator {
public:
  ExchangeValidator(const core::Vpt& vpt, core::Rank me);

  /// Hook: one original send of this rank (Algorithm 1 lines 4-6), before
  /// any stage runs. Self-sends (dest == me) are legal and participate in
  /// conservation accounting.
  void on_seed(core::Rank dest, std::span<const std::byte> payload);

  /// Hook: a coalesced stage message about to be sent in `stage`
  /// (Algorithm 1 lines 9-12). Checks neighbor discipline, per-stage and
  /// total message-count bounds, and every submessage header.
  void on_stage_send(int stage, const core::StageMessage& msg);

  /// Hook: submessages received from `source` in `stage` (lines 14-17).
  /// Checks that the sender is a dimension-`stage` neighbor, that at most
  /// one frame arrives from each neighbor per stage (the per-edge ordering
  /// invariant of the barrier-free exchange), and that each header respects
  /// dimension-order routing up to and including `stage`.
  void on_stage_recv(int stage, core::Rank source, std::span<const core::Submessage> subs);

  /// Hook: submessages received in a resilient-mode kDirect frame — the
  /// degradation path that bypasses store-and-forward routing after a frame
  /// exhausted its retry budget (docs/fault_model.md). Such frames may come
  /// from any rank (not just VPT neighbors) but every submessage must be
  /// finally addressed to this rank. Retransmitted frames never reach the
  /// validator: the protocol deduplicates by (sender, seq) first, so the
  /// per-stage message-count bounds keep holding in resilient mode.
  void on_direct_recv(core::Rank source, std::span<const core::Submessage> subs);

  /// Hook: end of `stage` on this rank, after all receives were scattered.
  /// Samples forward-buffer residency for the buffer-bound check.
  void on_stage_complete(int stage, std::uint64_t buffered_bytes, std::uint64_t buffered_subs);

  /// This rank's contribution to the collective conservation check. Call
  /// after the last stage; allgather the blobs and pass them to finish().
  std::vector<std::byte> summary_blob() const;

  /// Final verdict. `delivered` + `arena` are the submessages handed to the
  /// application, `reported_messages_sent` the stats counter to cross-check,
  /// `all_summaries` the allgathered summary_blob() of every rank (indexed
  /// by rank). Throws core::ValidationError on any violation.
  void finish(std::span<const core::Submessage> delivered, const core::PayloadArena& arena,
              std::int64_t reported_messages_sent,
              std::span<const std::vector<std::byte>> all_summaries);

  /// Stage messages this rank sent so far (all stages).
  std::int64_t messages_sent() const noexcept { return messages_sent_; }

private:
  struct DestClaim {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t digest = 0;  // sum of payload_digest() over the messages
  };

  [[noreturn]] void violation(const char* check, int stage, const std::string& detail) const;
  void check_rank(const char* check, int stage, core::Rank r, const char* what) const;

  const core::Vpt* vpt_;
  core::Rank me_;

  // Seed-side accounting for conservation and the uniform-payload bound.
  std::unordered_map<core::Rank, DestClaim> claims_;
  std::uint64_t seed_count_ = 0;
  std::uint64_t uniform_size_ = 0;  // meaningful when uniform_ && seed_count_ > 0
  bool uniform_ = true;
  bool has_duplicate_pair_ = false;

  // Per-stage send discipline.
  int last_send_stage_ = -1;
  std::vector<bool> neighbor_seen_;  // dests already used in last_send_stage_
  std::int64_t stage_messages_ = 0;  // messages sent in last_send_stage_
  std::int64_t messages_sent_ = 0;

  // Per-stage receive discipline (per-edge: one frame per neighbor).
  int last_recv_stage_ = -1;
  std::vector<bool> recv_seen_;  // sources already seen in last_recv_stage_

  // Forward-buffer high water (sampled after seeding and per stage).
  std::uint64_t peak_resident_bytes_ = 0;
  std::uint64_t peak_resident_subs_ = 0;
  std::uint64_t seed_resident_bytes_ = 0;
  std::uint64_t seed_resident_subs_ = 0;
};

}  // namespace stfw::validate
