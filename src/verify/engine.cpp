#include "verify/engine.hpp"

#include <algorithm>
#include <thread>

namespace stfw::verify {

namespace {

// Per-thread pointer into the engine's slot table. run_id guards against
// stale pointers from a previous begin_run (slots are reallocated there, but
// every hooked thread of the old run has been joined first, so a mismatched
// run_id is only ever *read*, never dereferenced).
struct TlsRef {
  const void* eng = nullptr;
  std::uint64_t run_id = 0;
  void* slot = nullptr;
};
thread_local TlsRef t_ref;

std::uint64_t to_ns(std::chrono::steady_clock::duration d) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

std::string RaceReport::to_string() const {
  std::string out = "data race: ";
  out += write_a ? "write" : "read";
  out += " at ";
  out += site_a;
  out += "  vs  ";
  out += write_b ? "write" : "read";
  out += " at ";
  out += site_b;
  return out;
}

Engine::Engine(EngineConfig cfg) : cfg_(cfg) {}

Engine::~Engine() = default;

void Engine::begin_run(std::uint64_t seed) {
  std::lock_guard<std::mutex> lk(mu_);
  ++run_id_;
  seed_ = seed;
  slots_.clear();
  externals_.clear();
  next_ci_ = 0;
  scheduling_ = false;
  released_ = false;
  aborted_ = false;
  abort_reason_.clear();
  blocked_state_.clear();
  expected_threads_ = 0;
  registered_count_ = 0;
  owners_.clear();
  sync_clock_.clear();
  msg_clock_.clear();
  msg_seq_ = 0;
  birth_clock_.clear();
  region_join_clock_.clear();
  vars_.clear();
  races_.clear();
  obj_ids_.clear();
  next_obj_id_ = 0;
  record_.clear();
  choice_idx_ = 0;
  rng_.seed(seed ^ 0x9e3779b97f4a7c15ULL);
  steps_ = 0;
  idle_ticks_ = 0;
  logical_ns_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  trace_.clear();
}

RunReport Engine::end_run() {
  std::lock_guard<std::mutex> lk(mu_);
  RunReport rep;
  rep.races = races_;
  rep.aborted = aborted_;
  rep.abort_reason = abort_reason_;
  rep.blocked_state = blocked_state_;
  rep.steps = steps_;
  rep.branch_points = record_.size();
  rep.trace = trace_;
  return rep;
}

bool Engine::advance_exhaustive() {
  std::lock_guard<std::mutex> lk(mu_);
  // Depth-first over the recorded decision string: bump the deepest choice
  // that still has an untried alternative and fits the preemption budget
  // (non-zero ordinals are preemptions — deviations from the default
  // run-to-block schedule).
  while (!record_.empty()) {
    const Choice c = record_.back();
    record_.pop_back();
    int used = 0;
    for (const Choice& r : record_)
      if (r.ord != 0) ++used;
    if (c.ord + 1 < c.n && used + 1 <= cfg_.max_preemptions) {
      path_.clear();
      path_.reserve(record_.size() + 1);
      for (const Choice& r : record_) path_.push_back(r.ord);
      path_.push_back(c.ord + 1);
      return true;
    }
  }
  return false;
}

std::string Engine::path_string() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const Choice& c : record_) {
    if (!out.empty()) out += ',';
    out += std::to_string(c.ord);
  }
  return out.empty() ? "0" : out;
}

// --- slot plumbing ----------------------------------------------------------

Engine::Slot* Engine::registered_slot_locked() {
  if (t_ref.eng == this && t_ref.run_id == run_id_ && t_ref.slot != nullptr)
    return static_cast<Slot*>(t_ref.slot);
  return nullptr;
}

Engine::Slot* Engine::slot_for_current_locked() {
  if (Slot* s = registered_slot_locked()) return s;
  const std::thread::id tid = std::this_thread::get_id();
  auto it = externals_.find(tid);
  if (it == externals_.end()) {
    auto s = std::make_unique<Slot>();
    s->id = -(static_cast<int>(externals_.size()) + 1);
    s->ci = next_ci_++;
    s->external = true;
    s->state = St::kRunning;
    it = externals_.emplace(tid, std::move(s)).first;
  }
  return it->second.get();
}

std::string Engine::slot_name(const Slot& s) const {
  if (s.external) return "x" + std::to_string(-s.id);
  return "t" + std::to_string(s.id);
}

int Engine::object_id_locked(const void* obj) {
  auto it = obj_ids_.find(obj);
  if (it != obj_ids_.end()) return it->second;
  const int id = next_obj_id_++;
  obj_ids_.emplace(obj, id);
  return id;
}

void Engine::trace_locked(const std::string& line) {
  if (!cfg_.record_trace) return;
  trace_ += line;
  trace_ += '\n';
}

// --- scheduling core --------------------------------------------------------

void Engine::grant_locked(Slot* next) {
  next->token = true;
  next->cv.notify_all();
}

void Engine::wait_token(std::unique_lock<std::mutex>& lk, Slot* s) {
  s->cv.wait(lk, [&] { return s->token || released_; });
  s->token = false;
}

int Engine::next_choice_locked(int n) {
  int ord = 0;
  if (cfg_.exhaustive) {
    if (choice_idx_ < path_.size()) {
      ord = path_[choice_idx_];
      if (ord >= n) ord = n - 1;  // candidate set shrank along a new prefix
    }
  } else {
    ord = static_cast<int>(rng_() % static_cast<std::uint64_t>(n));
  }
  ++choice_idx_;
  record_.push_back(Choice{ord, n});
  trace_locked("choice " + std::to_string(choice_idx_ - 1) + " -> " +
               std::to_string(ord) + "/" + std::to_string(n));
  return ord;
}

bool Engine::advance_time_locked() {
  auto best = std::chrono::steady_clock::time_point::max();
  bool any = false;
  for (const auto& up : slots_) {
    const Slot* c = up.get();
    if (c != nullptr && c->state == St::kBlockedCv && c->has_deadline) {
      any = true;
      best = std::min(best, c->deadline);
    }
  }
  if (!any) return false;
  const std::uint64_t target = to_ns(best - epoch_);
  if (target > logical_ns_) logical_ns_ = target;
  trace_locked("time-jump " + std::to_string(logical_ns_ / 1000000) + "ms");
  wake_expired_locked();
  return true;
}

void Engine::wake_expired_locked() {
  const auto now_tp = epoch_ + std::chrono::nanoseconds(logical_ns_);
  for (const auto& up : slots_) {
    Slot* c = up.get();
    if (c == nullptr || c->state != St::kBlockedCv || !c->has_deadline) continue;
    if (c->deadline <= now_tp) {
      c->timed_out = true;
      c->state = St::kRunnable;
      trace_locked("timeout " + slot_name(*c));
    }
  }
}

void Engine::do_abort_locked(const char* reason) {
  if (released_) return;
  aborted_ = true;
  abort_reason_ = reason;
  blocked_state_ = describe_blocked_locked();
  trace_locked(std::string("abort ") + reason);
  released_ = true;
  for (const auto& up : slots_)
    if (up) up->cv.notify_all();
  for (auto& [tid, up] : externals_)
    if (up) up->cv.notify_all();
}

std::string Engine::describe_blocked_locked() const {
  std::string out;
  for (const auto& up : slots_) {
    const Slot* c = up.get();
    if (c == nullptr || c->state == St::kDone) continue;
    if (!out.empty()) out += "; ";
    out += slot_name(*c);
    switch (c->state) {
      case St::kBlockedMutex: out += " blocked on mutex ("; out += c->where; out += ")"; break;
      case St::kBlockedCv: out += " blocked in "; out += c->where; break;
      case St::kRunnable: out += " runnable"; break;
      case St::kRunning: out += " running"; break;
      case St::kRegistering: out += " registering"; break;
      case St::kDone: break;
    }
  }
  return out;
}

void Engine::throw_aborted() {
  std::string reason;
  std::string state;
  {
    std::lock_guard<std::mutex> lk(mu_);
    reason = abort_reason_;
    state = blocked_state_;
  }
  throw SchedulerAbortedError("stfw-verify: schedule aborted (" + reason +
                              "); threads: " + state);
}

void Engine::start_scheduling_locked() {
  scheduling_ = true;
  Slot* first = nullptr;
  Slot* first_ticker = nullptr;
  for (const auto& up : slots_) {
    Slot* c = up.get();
    if (c == nullptr || c->state != St::kRegistering) continue;
    c->state = St::kRunnable;
    trace_locked("begin " + slot_name(*c) + (c->ticker ? " ticker" : ""));
    if (!c->ticker && first == nullptr) first = c;
    if (c->ticker && first_ticker == nullptr) first_ticker = c;
  }
  if (first == nullptr) first = first_ticker;
  if (first != nullptr) grant_locked(first);
}

bool Engine::switch_from(std::unique_lock<std::mutex>& lk, Slot* s, bool branchable,
                         Yield kind) {
  (void)kind;
  if (released_) return !aborted_;
  if (!scheduling_) return true;
  ++steps_;
  if (steps_ > cfg_.max_steps) {
    do_abort_locked("step-limit");
    return false;
  }
  const bool voluntary = (s->state == St::kRunning);
  Slot* next = nullptr;
  for (;;) {
    // Candidates in deterministic order: a voluntary yielder continues by
    // default (ordinal 0), then runnable non-tickers by logical id.
    std::vector<Slot*> cands;
    if (voluntary && !s->ticker) cands.push_back(s);
    for (const auto& up : slots_) {
      Slot* c = up.get();
      if (c != nullptr && !c->ticker && c->state == St::kRunnable) cands.push_back(c);
    }
    if (!cands.empty()) {
      int ord = 0;
      if (branchable && cands.size() > 1)
        ord = next_choice_locked(static_cast<int>(cands.size()));
      next = cands[static_cast<std::size_t>(ord)];
      break;
    }
    // No rank can run: the ticker (watchdog monitor) gets the floor.
    if (voluntary && s->ticker) {
      next = s;
      break;
    }
    Slot* tick = nullptr;
    for (const auto& up : slots_) {
      Slot* c = up.get();
      if (c != nullptr && c->ticker && c->state == St::kRunnable) {
        tick = c;
        break;
      }
    }
    if (tick != nullptr) {
      next = tick;
      break;
    }
    // Nothing runnable at all: jump to the earliest cv deadline, or report
    // the terminal deadlock (the watchdog equivalent when none is armed).
    if (!advance_time_locked()) {
      do_abort_locked("deadlock");
      return false;
    }
  }
  if (next == s && voluntary) return true;
  if (voluntary) s->state = St::kRunnable;
  if (next != s) grant_locked(next);
  wait_token(lk, s);
  if (released_) return !aborted_;
  s->state = St::kRunning;
  return true;
}

// --- Hooks: lifecycle -------------------------------------------------------

void Engine::region_begin(int expected_threads) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  birth_clock_ = s->clock;
  region_join_clock_.clear();
  expected_threads_ = expected_threads;
  registered_count_ = 0;
  trace_locked("region-begin n" + std::to_string(expected_threads));
}

void Engine::region_end() {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  s->clock.join(region_join_clock_);
  scheduling_ = false;
  expected_threads_ = 0;
  trace_locked("region-end");
}

void Engine::thread_begin(int logical_id, bool ticker) {
  std::unique_lock<std::mutex> lk(mu_);
  if (logical_id < 0) logical_id = 0;
  const auto idx = static_cast<std::size_t>(logical_id);
  if (idx >= slots_.size()) slots_.resize(idx + 1);
  if (!slots_[idx]) {
    slots_[idx] = std::make_unique<Slot>();
    slots_[idx]->ci = next_ci_++;
    slots_[idx]->id = logical_id;
  }
  Slot* s = slots_[idx].get();
  s->ticker = ticker;
  s->token = false;
  s->state = St::kRegistering;
  s->wait_obj = nullptr;
  s->has_deadline = false;
  s->timed_out = false;
  s->where = "begin";
  s->clock = birth_clock_;
  s->clock.tick(s->ci);
  t_ref = TlsRef{this, run_id_, s};
  if (cfg_.schedule && expected_threads_ > 0 && !released_) {
    ++registered_count_;
    if (registered_count_ == expected_threads_) start_scheduling_locked();
    wait_token(lk, s);
    if (released_ && aborted_ && !s->ticker) {
      lk.unlock();
      throw_aborted();
    }
    s->state = St::kRunning;
  } else {
    s->state = St::kRunning;
  }
}

void Engine::thread_end() {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = registered_slot_locked();
  if (s == nullptr) return;
  s->clock.tick(s->ci);
  region_join_clock_.join(s->clock);
  s->state = St::kDone;
  trace_locked("end " + slot_name(*s));
  t_ref.slot = nullptr;
  if (!scheduling_ || released_) return;
  // Pass the token on without parking (this thread is exiting).
  for (;;) {
    Slot* next = nullptr;
    for (const auto& up : slots_) {
      Slot* c = up.get();
      if (c != nullptr && !c->ticker && c->state == St::kRunnable) {
        next = c;
        break;
      }
    }
    if (next == nullptr) {
      for (const auto& up : slots_) {
        Slot* c = up.get();
        if (c != nullptr && c->ticker && c->state == St::kRunnable) {
          next = c;
          break;
        }
      }
    }
    if (next != nullptr) {
      grant_locked(next);
      return;
    }
    bool blocked = false;
    for (const auto& up : slots_) {
      const Slot* c = up.get();
      if (c != nullptr && !c->ticker &&
          (c->state == St::kBlockedCv || c->state == St::kBlockedMutex))
        blocked = true;
    }
    if (!blocked) return;  // everyone else done (or ticker mid-flight)
    if (!advance_time_locked()) {
      do_abort_locked("deadlock");
      return;
    }
  }
}

// --- Hooks: mutexes ---------------------------------------------------------

void Engine::mutex_acquire(const void* mu) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = registered_slot_locked();
  if (s == nullptr || !scheduling_ || released_) return;
  for (;;) {
    auto it = owners_.find(mu);
    if (it == owners_.end() || it->second == s) break;
    s->state = St::kBlockedMutex;
    s->wait_obj = mu;
    s->where = "mutex acquire";
    trace_locked("block-lock " + slot_name(*s) + " m" +
                 std::to_string(object_id_locked(mu)));
    if (!switch_from(lk, s, true, Yield::kForced)) {
      lk.unlock();
      if (!s->ticker) throw_aborted();
      return;
    }
    if (released_) return;
  }
  owners_[mu] = s;
}

void Engine::mutex_acquired(const void* mu) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  auto it = sync_clock_.find(mu);
  if (it != sync_clock_.end()) s->clock.join(it->second);
  if (scheduling_ && !released_) {
    if (Slot* r = registered_slot_locked()) owners_[mu] = r;
  }
  trace_locked("lock " + slot_name(*s) + " m" + std::to_string(object_id_locked(mu)));
}

void Engine::mutex_release(const void* mu) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  sync_clock_[mu] = s->clock;
  auto it = owners_.find(mu);
  if (it != owners_.end() && it->second == s) owners_.erase(it);
  if (scheduling_ && !released_) {
    for (const auto& up : slots_) {
      Slot* c = up.get();
      if (c != nullptr && c->state == St::kBlockedMutex && c->wait_obj == mu)
        c->state = St::kRunnable;
    }
  }
  trace_locked("unlock " + slot_name(*s) + " m" + std::to_string(object_id_locked(mu)));
}

// --- Hooks: condition variables ---------------------------------------------

bool Engine::cv_wait(const void* cv, const void* mu, std::unique_lock<std::mutex>& real,
                     const std::chrono::steady_clock::time_point* deadline,
                     bool& timed_out) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  // The wait releases mu: publish happens-before for the next acquirer.
  s->clock.tick(s->ci);
  sync_clock_[mu] = s->clock;
  Slot* r = registered_slot_locked();
  if (r == nullptr || !scheduling_ || released_) {
    trace_locked("cv-wait-free " + slot_name(*s) + " c" +
                 std::to_string(object_id_locked(cv)));
    return false;  // caller performs the real wait and reports cv_woke
  }
  {
    auto it = owners_.find(mu);
    if (it != owners_.end() && it->second == s) owners_.erase(it);
  }
  for (const auto& up : slots_) {
    Slot* c = up.get();
    if (c != nullptr && c->state == St::kBlockedMutex && c->wait_obj == mu)
      c->state = St::kRunnable;
  }
  real.unlock();
  s->state = St::kBlockedCv;
  s->wait_obj = cv;
  s->has_deadline = (deadline != nullptr);
  if (deadline != nullptr) s->deadline = *deadline;
  s->timed_out = false;
  s->where = "cv-wait";
  trace_locked("cv-wait " + slot_name(*s) + " c" + std::to_string(object_id_locked(cv)) +
               (deadline != nullptr ? " timed" : ""));
  if (!switch_from(lk, s, true, Yield::kForced)) {
    lk.unlock();
    throw_aborted();  // rank thread; tickers never cv_wait through the hooks
  }
  timed_out = s->timed_out;
  s->has_deadline = false;
  s->wait_obj = nullptr;
  // Reacquire the mutex under scheduler control before returning.
  for (;;) {
    auto it = owners_.find(mu);
    if (it == owners_.end()) break;
    s->state = St::kBlockedMutex;
    s->wait_obj = mu;
    s->where = "cv-relock";
    if (!switch_from(lk, s, true, Yield::kForced)) {
      lk.unlock();
      throw_aborted();
    }
  }
  owners_[mu] = s;
  s->clock.tick(s->ci);
  auto itc = sync_clock_.find(mu);
  if (itc != sync_clock_.end()) s->clock.join(itc->second);
  trace_locked("cv-woke " + slot_name(*s) + " c" + std::to_string(object_id_locked(cv)) +
               (timed_out ? " timeout" : ""));
  real.lock();  // uncontended: the engine just assigned ownership to us
  return true;
}

void Engine::cv_woke(const void* cv, const void* mu) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  auto it = sync_clock_.find(cv);
  if (it != sync_clock_.end()) s->clock.join(it->second);
  auto itm = sync_clock_.find(mu);
  if (itm != sync_clock_.end()) s->clock.join(itm->second);
}

void Engine::cv_notify(const void* cv, bool all) noexcept {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  sync_clock_[cv].join(s->clock);  // observer-mode waiters join at cv_woke
  Slot* r = registered_slot_locked();
  if (r == nullptr || !scheduling_ || released_) return;
  int woken = 0;
  for (const auto& up : slots_) {
    Slot* w = up.get();
    if (w == nullptr || w->state != St::kBlockedCv || w->wait_obj != cv) continue;
    w->state = St::kRunnable;
    w->timed_out = false;
    w->has_deadline = false;
    w->wait_obj = nullptr;
    w->clock.join(s->clock);
    ++woken;
    if (!all) break;  // notify_one: deterministic lowest-id waiter
  }
  trace_locked("notify " + slot_name(*s) + " c" + std::to_string(object_id_locked(cv)) +
               (all ? " all" : " one") + " woke" + std::to_string(woken));
  if (woken > 0)
    switch_from(lk, s, true, Yield::kNotify);  // abort swallowed (noexcept)
}

// --- Hooks: mailbox edges, stages, time -------------------------------------

std::uint64_t Engine::mailbox_send(int source, int dest, int tag) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  const std::uint64_t id = ++msg_seq_;
  msg_clock_[id] = s->clock;
  trace_locked("send " + slot_name(*s) + " " + std::to_string(source) + "->" +
               std::to_string(dest) + " tag" + std::to_string(tag) + " #" +
               std::to_string(id));
  Slot* r = registered_slot_locked();
  if (r != nullptr && scheduling_ && !released_) {
    if (!switch_from(lk, s, true, Yield::kSend)) {
      lk.unlock();
      if (!s->ticker) throw_aborted();
    }
  }
  return id;
}

void Engine::mailbox_recv(int me, int source, int tag, std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  if (id != 0) {
    auto it = msg_clock_.find(id);
    if (it != msg_clock_.end()) s->clock.join(it->second);
  }
  trace_locked("recv " + slot_name(*s) + " r" + std::to_string(me) + " from" +
               std::to_string(source) + " tag" + std::to_string(tag) + " #" +
               std::to_string(id));
}

void Engine::stage(int rank, int stage) {
  std::unique_lock<std::mutex> lk(mu_);
  trace_locked("stage r" + std::to_string(rank) + " s" + std::to_string(stage));
}

std::chrono::steady_clock::time_point Engine::now() {
  if (!cfg_.schedule) return std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_ + std::chrono::nanoseconds(logical_ns_);
}

void Engine::tick_sleep(std::chrono::milliseconds d) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = registered_slot_locked();
  if (s == nullptr || !cfg_.schedule || !scheduling_ || released_) {
    lk.unlock();
    // Post-abort (or observer mode) the monitor free-runs; keep it polling
    // quickly so teardown stays prompt.
    std::this_thread::sleep_for(released_ ? std::chrono::microseconds(100) : d);
    return;
  }
  bool any_active = false;
  bool any_runnable = false;
  for (const auto& up : slots_) {
    const Slot* c = up.get();
    if (c == nullptr || c->ticker) continue;
    if (c->state != St::kDone && c->state != St::kRegistering) any_active = true;
    if (c->state == St::kRunnable) any_runnable = true;
  }
  if (!any_active) {
    // Ranks are done; the spawner is joining us. Freeze logical time (for
    // trace determinism) and wait out monitor_stop_ in real time.
    lk.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return;
  }
  logical_ns_ += to_ns(d);
  wake_expired_locked();
  trace_locked("tick " + std::to_string(logical_ns_ / 1000000) + "ms");
  if (!any_runnable) {
    bool now_runnable = false;
    for (const auto& up : slots_) {
      const Slot* c = up.get();
      if (c != nullptr && !c->ticker && c->state == St::kRunnable) now_runnable = true;
    }
    if (!now_runnable && ++idle_ticks_ > cfg_.max_idle_ticks) {
      do_abort_locked("idle-limit");
      return;
    }
    if (now_runnable) idle_ticks_ = 0;
  } else {
    idle_ticks_ = 0;
  }
  switch_from(lk, s, false, Yield::kTick);  // abort: just return (ticker)
}

void Engine::stall(std::chrono::milliseconds d) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = registered_slot_locked();
  if (s == nullptr || !cfg_.schedule || !scheduling_ || released_) {
    lk.unlock();
    std::this_thread::sleep_for(d);
    return;
  }
  logical_ns_ += to_ns(d);
  wake_expired_locked();
  trace_locked("stall " + slot_name(*s) + " +" + std::to_string(d.count()) + "ms");
  if (!switch_from(lk, s, false, Yield::kStall)) {
    lk.unlock();
    if (!s->ticker) throw_aborted();
  }
}

// --- Hooks: tagged accesses (the race detector) -----------------------------

void Engine::check_race_locked(Slot& s, const void* addr, bool write,
                               const char* site) {
  VarState& v = vars_[addr];
  const std::uint64_t my = s.clock.get(s.ci);
  auto report = [&](const char* site_a, bool write_a) {
    if (races_.size() >= 64) return;
    for (const RaceReport& r : races_)
      if (r.site_a == site_a && r.site_b == site) return;  // dedup by site pair
    races_.push_back(RaceReport{site_a, write_a, site, write});
    trace_locked(races_.back().to_string());
  };
  if (v.w_site != nullptr && v.w_ci != s.ci && s.clock.get(v.w_ci) < v.w_tick)
    report(v.w_site, true);
  if (write) {
    for (const auto& [ci, rd] : v.reads)
      if (ci != s.ci && s.clock.get(ci) < rd.first) report(rd.second, false);
    v.w_ci = s.ci;
    v.w_tick = my;
    v.w_site = site;
    v.reads.clear();
  } else {
    v.reads[s.ci] = {my, site};
  }
}

void Engine::access(const void* addr, bool write, const char* site) {
  std::unique_lock<std::mutex> lk(mu_);
  Slot* s = slot_for_current_locked();
  s->clock.tick(s->ci);
  check_race_locked(*s, addr, write, site);
  trace_locked(std::string(write ? "w " : "r ") + slot_name(*s) + " o" +
               std::to_string(object_id_locked(addr)) + " " + site);
}

}  // namespace stfw::verify
