#pragma once

#if !STFW_VERIFY_ENABLED
#error "src/verify requires -DSTFW_VERIFY=ON (it implements the verify hooks)"
#endif

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/error.hpp"
#include "core/verify_hooks.hpp"
#include "verify/vector_clock.hpp"

/// \file engine.hpp
/// The stfw-verify engine: a happens-before race detector and a cooperative
/// deterministic scheduler, both fed by the core/verify_hooks.hpp events.
///
/// Race detection (always on): every hooked thread carries a vector clock;
/// mutex release→acquire, condvar notify→wake, mailbox send→recv and thread
/// fork/join edges order the clocks, and every STFW_VERIFY_READ/WRITE-tagged
/// access is checked FastTrack-style against the last write (and, for writes,
/// all unordered reads) of that address. A finding is a two-site RaceReport
/// naming both source locations, not just "race somewhere".
///
/// Deterministic scheduling (EngineConfig::schedule): the registered region
/// threads (Cluster ranks + monitor) are serialized onto one running thread
/// at a time via per-thread token handoff. Yield points are lock acquire,
/// condvar wait/notify, mailbox sends, watchdog ticks and injector stalls.
/// Time is logical: it advances only at ticks/stalls and timeout jumps, so
/// deadlines and the deadlock watchdog fire as a deterministic function of
/// the schedule. Branch points (who runs next) are decided either by a
/// recorded ordinal path (exhaustive, delay-bounded enumeration driven by
/// advance_exhaustive()) or by a seeded RNG (random schedules, replayable
/// from the seed alone).
///
/// Threads the engine does not know about (the test's main thread, between
/// regions) pass straight through every hook with only happens-before
/// bookkeeping; this is what keeps Cluster::run's spawning thread safe to
/// leave unscheduled.

namespace stfw::verify {

/// Thrown out of blocked rank threads when the engine force-stops a schedule
/// (deadlock with no watchdog armed, step budget, idle budget). Cluster::run
/// aggregates it like any other rank failure.
class SchedulerAbortedError : public core::Error {
public:
  explicit SchedulerAbortedError(const std::string& what) : core::Error(what) {}
};

struct RaceReport {
  const char* site_a = "";  // earlier access (file:line label)
  bool write_a = false;
  const char* site_b = "";  // racing access
  bool write_b = false;
  std::string to_string() const;
};

struct EngineConfig {
  bool schedule = true;      // false: observe a free-running execution only
  bool exhaustive = false;   // branch by recorded path instead of the RNG
  int max_preemptions = 2;   // non-default branch budget per schedule
  std::uint64_t max_steps = 2000000;     // scheduler switches per schedule
  std::uint64_t max_idle_ticks = 20000;  // ticker-only spins with blocked ranks
  bool record_trace = false;
};

struct RunReport {
  std::vector<RaceReport> races;
  bool aborted = false;       // the engine force-stopped the schedule
  std::string abort_reason;   // "deadlock" | "step-limit" | "idle-limit"
  std::string blocked_state;  // where every live thread was stuck on abort
  std::uint64_t steps = 0;
  std::uint64_t branch_points = 0;
  std::string trace;          // filled when EngineConfig::record_trace
};

class Engine final : public Hooks {
public:
  explicit Engine(EngineConfig cfg);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Reset all per-schedule state. `seed` drives random branching (ignored
  /// under exhaustive mode, where the ordinal path persists across runs).
  void begin_run(std::uint64_t seed);
  /// Collect the finished schedule's findings. All hooked threads must have
  /// been joined (and the engine uninstalled) first.
  RunReport end_run();

  /// Exhaustive mode: mutate the ordinal path to the next unexplored
  /// schedule within the preemption budget. False when the space is spent.
  bool advance_exhaustive();
  /// The current ordinal path, e.g. "0,2,1" (for failure reports).
  std::string path_string() const;

  void set_record_trace(bool on) { cfg_.record_trace = on; }
  const EngineConfig& config() const noexcept { return cfg_; }

  // --- Hooks ----------------------------------------------------------------
  void region_begin(int expected_threads) override;
  void region_end() override;
  void thread_begin(int logical_id, bool ticker) override;
  void thread_end() override;
  void mutex_acquire(const void* mu) override;
  void mutex_acquired(const void* mu) override;
  void mutex_release(const void* mu) override;
  bool cv_wait(const void* cv, const void* mu, std::unique_lock<std::mutex>& real,
               const std::chrono::steady_clock::time_point* deadline,
               bool& timed_out) override;
  void cv_woke(const void* cv, const void* mu) override;
  void cv_notify(const void* cv, bool all) noexcept override;
  std::uint64_t mailbox_send(int source, int dest, int tag) override;
  void mailbox_recv(int me, int source, int tag, std::uint64_t id) override;
  void stage(int rank, int stage) override;
  std::chrono::steady_clock::time_point now() override;
  void tick_sleep(std::chrono::milliseconds d) override;
  void stall(std::chrono::milliseconds d) override;
  void access(const void* addr, bool write, const char* site) override;

private:
  enum class St : std::uint8_t {
    kRegistering,  // at thread_begin, region not complete yet
    kRunnable,     // may be granted the token
    kRunning,      // holds the token
    kBlockedMutex, // waiting for a mutex owner to release
    kBlockedCv,    // inside cv_wait, before notify/timeout
    kDone,         // thread_end reached
  };

  struct Slot {
    int id = -1;             // logical id (rank; num_ranks for the monitor)
    std::size_t ci = 0;      // vector-clock component
    bool ticker = false;
    bool external = false;
    St state = St::kRegistering;
    bool token = false;
    std::condition_variable cv;
    VectorClock clock;
    // kBlockedMutex / kBlockedCv bookkeeping.
    const void* wait_obj = nullptr;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    bool timed_out = false;
    const char* where = "";  // human-readable op for abort reports
  };

  struct VarState {
    std::size_t w_ci = 0;
    std::uint64_t w_tick = 0;
    const char* w_site = nullptr;
    // last read per clock component that is not ordered before the next write
    std::map<std::size_t, std::pair<std::uint64_t, const char*>> reads;
  };

  struct Choice {
    int ord;
    int n;
  };

  enum class Yield : std::uint8_t { kForced, kSend, kNotify, kTick, kStall };

  Slot* slot_for_current_locked();
  Slot* registered_slot_locked();  // nullptr for external threads
  int object_id_locked(const void* obj);
  void trace_locked(const std::string& line);
  std::string slot_name(const Slot& s) const;

  /// Hand the token to the next thread per the schedule and park `s` until
  /// it is granted again. `branchable` marks enumerated branch points.
  /// Returns false when the engine aborted (caller throws or swallows).
  bool switch_from(std::unique_lock<std::mutex>& lk, Slot* s, bool branchable,
                   Yield kind);
  void grant_locked(Slot* next);
  void wait_token(std::unique_lock<std::mutex>& lk, Slot* s);
  int next_choice_locked(int n);
  /// Jump the logical clock to the earliest pending cv deadline and wake the
  /// expired waiters. False when no thread has a deadline to wait for.
  bool advance_time_locked();
  void wake_expired_locked();
  void do_abort_locked(const char* reason);
  std::string describe_blocked_locked() const;
  void start_scheduling_locked();
  void check_race_locked(Slot& s, const void* addr, bool write, const char* site);
  [[noreturn]] void throw_aborted();

  EngineConfig cfg_;
  mutable std::mutex mu_;  // raw on purpose: core::Mutex would re-enter hooks

  std::uint64_t run_id_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;  // registered, by logical id
  std::unordered_map<std::thread::id, std::unique_ptr<Slot>> externals_;
  std::size_t next_ci_ = 0;

  bool scheduling_ = false;  // region complete, token discipline active
  bool released_ = false;    // abort: every thread free-runs to unwind
  bool aborted_ = false;
  std::string abort_reason_;
  std::string blocked_state_;
  int expected_threads_ = 0;
  int registered_count_ = 0;

  std::unordered_map<const void*, Slot*> owners_;        // mutex → holder
  std::unordered_map<const void*, VectorClock> sync_clock_;  // mutex/cv clocks
  std::unordered_map<std::uint64_t, VectorClock> msg_clock_;
  std::uint64_t msg_seq_ = 0;
  VectorClock birth_clock_;        // region spawner's clock at region_begin
  VectorClock region_join_clock_;  // joined final clocks of ended threads

  std::unordered_map<const void*, VarState> vars_;
  std::vector<RaceReport> races_;

  std::unordered_map<const void*, int> obj_ids_;
  int next_obj_id_ = 0;

  std::vector<Choice> record_;  // branch decisions taken this schedule
  std::vector<int> path_;       // forced ordinals (exhaustive enumeration)
  std::size_t choice_idx_ = 0;
  std::mt19937_64 rng_;

  std::uint64_t steps_ = 0;
  std::uint64_t idle_ticks_ = 0;
  std::uint64_t logical_ns_ = 0;
  std::chrono::steady_clock::time_point epoch_{};

  std::string trace_;
};

}  // namespace stfw::verify
