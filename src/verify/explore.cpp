#include "verify/explore.hpp"

#include <exception>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/sync.hpp"

namespace stfw::verify {

namespace {

void write_trace_artifact(const std::string& label, const ScheduleFailure& f) {
  const std::string dir = core::env_string("STFW_VERIFY_TRACE_DIR", "");
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // artifact write is best-effort; the failure is reported anyway
  const std::string name = label + "-" +
                           (f.path.empty() ? "seed" + std::to_string(f.seed)
                                           : "path" + f.path) +
                           ".trace";
  std::ofstream out(std::filesystem::path(dir) /
                    std::filesystem::path(name).filename());
  out << f.to_string() << "\n--- trace ---\n" << f.trace;
}

struct ScheduleOutcome {
  RunReport report;
  bool body_threw = false;
  std::string exception_what;
};

/// One schedule under an installed engine: begin_run, body, end_run. Any
/// body exception is captured (the engine must still be closed out).
ScheduleOutcome run_schedule(Engine& eng, std::uint64_t seed, const ExploreBody& body) {
  ScheduleOutcome out;
  eng.begin_run(seed);
  try {
    body();
  } catch (const std::exception& e) {
    out.body_threw = true;
    out.exception_what = e.what();
  } catch (...) {  // stfw-lint: allow(l4-catch-all) -- schedule boundary: any body failure becomes a reported ScheduleFailure
    out.body_threw = true;
    out.exception_what = "non-std exception";
  }
  out.report = eng.end_run();
  return out;
}

/// Classify one finished schedule. Returns true when it failed (and appends
/// the failure to `res`).
bool classify(ExploreResult& res, const ExploreConfig& cfg, const Engine& eng,
              std::uint64_t seed, bool exhaustive, const ScheduleOutcome& out) {
  ScheduleFailure f;
  f.seed = seed;
  if (exhaustive) f.path = eng.path_string();
  f.trace = out.report.trace;
  if (!out.report.races.empty()) {
    f.kind = "race";
    f.detail = out.report.races.front().to_string();
    if (out.report.races.size() > 1)
      f.detail += " (+" + std::to_string(out.report.races.size() - 1) + " more)";
  } else if (out.report.aborted) {
    f.kind = "deadlock";
    f.detail = out.report.abort_reason +
               (out.report.blocked_state.empty() ? ""
                                                 : "; " + out.report.blocked_state);
  } else if (out.body_threw) {
    f.kind = "exception";
    f.detail = out.exception_what;
  } else {
    return false;
  }
  write_trace_artifact(cfg.label, f);
  res.failures.push_back(std::move(f));
  return true;
}

void check_oracle(ExploreResult& res, const ExploreConfig& cfg, const Engine& eng,
                  std::uint64_t seed, bool exhaustive, const ScheduleOutcome& out,
                  const ExploreOracle& oracle) {
  if (!oracle) return;
  const std::string violation = oracle();
  if (violation.empty()) return;
  ScheduleFailure f;
  f.seed = seed;
  if (exhaustive) f.path = eng.path_string();
  f.trace = out.report.trace;
  f.kind = "oracle";
  f.detail = violation;
  write_trace_artifact(cfg.label, f);
  res.failures.push_back(std::move(f));
}

class HookInstallation {
public:
  explicit HookInstallation(Engine& eng) { install_hooks(&eng); }
  ~HookInstallation() { install_hooks(nullptr); }
  HookInstallation(const HookInstallation&) = delete;
  HookInstallation& operator=(const HookInstallation&) = delete;
};

}  // namespace

std::string ScheduleFailure::to_string() const {
  std::string out = kind + ": " + detail;
  if (!path.empty())
    out += "  [replay: exhaustive path " + path + "]";
  else
    out += "  [replay: STFW_VERIFY_SCHEDULE=" + std::to_string(seed) + "]";
  return out;
}

std::string ExploreResult::summary() const {
  std::string out = std::to_string(schedules_run) + " schedule(s)";
  if (truncated) out += " (truncated)";
  if (replayed) out += " (single-seed replay)";
  if (failures.empty()) {
    out += ", all clean";
    return out;
  }
  out += ", " + std::to_string(failures.size()) + " failure(s):";
  for (const ScheduleFailure& f : failures) {
    out += "\n  ";
    out += f.to_string();
  }
  return out;
}

ExploreResult explore(const ExploreConfig& cfg, const ExploreBody& body,
                      const ExploreOracle& oracle) {
  ExploreResult res;

  // A set replay seed turns any sweep into one fully traced seeded run.
  if (core::env_present("STFW_VERIFY_SCHEDULE")) {
    const std::uint64_t seed = core::env_u64("STFW_VERIFY_SCHEDULE", 0);
    EngineConfig ec;
    ec.record_trace = true;
    Engine eng(ec);
    HookInstallation guard(eng);
    const ScheduleOutcome out = run_schedule(eng, seed, body);
    res.schedules_run = 1;
    res.replayed = true;
    res.last_trace = out.report.trace;
    if (!classify(res, cfg, eng, seed, /*exhaustive=*/false, out))
      check_oracle(res, cfg, eng, seed, false, out, oracle);
    return res;
  }

  const bool exhaustive = (cfg.mode == ExploreConfig::Mode::kExhaustive);
  EngineConfig ec;
  ec.exhaustive = exhaustive;
  ec.max_preemptions = cfg.max_preemptions;
  // Traces are recorded unconditionally: they are per-schedule (reset by
  // begin_run) and every failure must ship its trace without a re-run.
  ec.record_trace = true;
  Engine eng(ec);
  HookInstallation guard(eng);

  if (exhaustive) {
    for (;;) {
      const ScheduleOutcome out = run_schedule(eng, cfg.base_seed, body);
      ++res.schedules_run;
      res.last_trace = out.report.trace;
      if (!classify(res, cfg, eng, cfg.base_seed, true, out))
        check_oracle(res, cfg, eng, cfg.base_seed, true, out, oracle);
      if (res.failures.size() >= cfg.max_failures) break;
      if (res.schedules_run >= cfg.max_schedules) {
        res.truncated = true;
        break;
      }
      if (!eng.advance_exhaustive()) break;
    }
    return res;
  }

  for (int i = 0; i < cfg.schedules; ++i) {
    const std::uint64_t seed = cfg.base_seed + static_cast<std::uint64_t>(i);
    const ScheduleOutcome out = run_schedule(eng, seed, body);
    ++res.schedules_run;
    res.last_trace = out.report.trace;
    if (!classify(res, cfg, eng, seed, false, out))
      check_oracle(res, cfg, eng, seed, false, out, oracle);
    if (res.failures.size() >= cfg.max_failures) break;
  }
  return res;
}

RunReport run_traced(std::uint64_t seed, const ExploreBody& body) {
  EngineConfig ec;
  ec.record_trace = true;
  Engine eng(ec);
  HookInstallation guard(eng);
  ScheduleOutcome out = run_schedule(eng, seed, body);
  return out.report;
}

void run_threads(int n, const std::function<void(int)>& fn) {
  Hooks* h = hooks();
  if (h != nullptr) h->region_begin(n);
  std::vector<core::Thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  core::Mutex err_mu;
  std::exception_ptr first;
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      Hooks* th = hooks();
      if (th != nullptr) th->thread_begin(i, /*ticker=*/false);
      try {
        fn(i);
      } catch (...) {  // stfw-lint: allow(l4-catch-all) -- thread boundary: first exception is rethrown on the spawner after join
        core::MutexLock lock(err_mu);
        if (!first) first = std::current_exception();
      }
      if (th != nullptr) th->thread_end();
    });
  }
  for (core::Thread& t : threads) t.join();
  if (h != nullptr) h->region_end();
  if (first) std::rethrow_exception(first);
}

}  // namespace stfw::verify
