#pragma once

#if !STFW_VERIFY_ENABLED
#error "src/verify requires -DSTFW_VERIFY=ON (it implements the verify hooks)"
#endif

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/engine.hpp"

/// \file explore.hpp
/// Schedule-space drivers on top of verify::Engine.
///
/// explore() runs a body (typically a Cluster::run with an exchange inside)
/// under the deterministic scheduler many times — either exhaustively over
/// the delay-bounded branch space (small configs) or across seeded random
/// schedules — and checks protocol oracles at every terminal state. Each
/// failure carries the seed (random) or ordinal path (exhaustive) plus the
/// full event trace, so `STFW_VERIFY_SCHEDULE=<seed>` replays it exactly.
///
/// Environment knobs (read by explore()):
///  * STFW_VERIFY_SCHEDULE   — replay exactly this one seed instead of the
///    configured sweep (turns any sweep into a single traced run);
///  * STFW_VERIFY_TRACE_DIR  — directory to write failing-schedule event
///    traces into (one file per failure), for CI artifacts.

namespace stfw::verify {

struct ExploreConfig {
  enum class Mode : std::uint8_t { kExhaustive, kRandom };
  Mode mode = Mode::kRandom;
  /// Random mode: number of seeded schedules (seeds base_seed..base_seed+n-1).
  int schedules = 64;
  std::uint64_t base_seed = 1;
  /// Exhaustive mode: preemption bound of the enumeration.
  int max_preemptions = 2;
  /// Exhaustive mode: hard cap on enumerated schedules (sets `truncated`).
  std::uint64_t max_schedules = 100000;
  /// Stop after this many failures (the space is clearly broken by then).
  std::size_t max_failures = 8;
  /// Tag for trace-artifact file names.
  std::string label = "explore";
};

struct ScheduleFailure {
  std::uint64_t seed = 0;    // random mode (and replay)
  std::string path;          // exhaustive mode ordinal path
  std::string kind;          // "race" | "deadlock" | "exception" | "oracle"
  std::string detail;
  std::string trace;         // full deterministic event trace

  [[nodiscard]] std::string to_string() const;
};

struct ExploreResult {
  std::uint64_t schedules_run = 0;
  std::vector<ScheduleFailure> failures;
  bool truncated = false;     // exhaustive cap hit before the space was spent
  bool replayed = false;      // STFW_VERIFY_SCHEDULE overrode the sweep
  std::string last_trace;     // trace of the last schedule (replay/debugging)

  [[nodiscard]] bool clean() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Body of one schedule. It runs on the calling thread (unscheduled) and is
/// expected to spawn the hooked threads itself (Cluster::run, run_threads).
using ExploreBody = std::function<void()>;

/// Oracle checked after every schedule whose body returned normally. Returns
/// an empty string when the terminal state is fine, else the violation.
using ExploreOracle = std::function<std::string()>;

/// Sweep the schedule space of `body` per `cfg`; classify every terminal
/// state (races, deadlock/abort, escaped exceptions, oracle violations).
[[nodiscard]] ExploreResult explore(const ExploreConfig& cfg, const ExploreBody& body,
                                    const ExploreOracle& oracle = {});

/// Run `body` once under the scheduler with `seed`, recording the trace.
/// The replay primitive: equal seeds yield byte-identical traces.
RunReport run_traced(std::uint64_t seed, const ExploreBody& body);

/// Spawn `n` hooked threads running fn(0..n-1) inside a verify region and
/// join them; rethrows the first thread exception. For unit-level schedules
/// that do not involve a Cluster (e.g. the race-detector tests).
void run_threads(int n, const std::function<void(int)>& fn);

}  // namespace stfw::verify
