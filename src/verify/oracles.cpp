#include "verify/oracles.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

namespace stfw::verify {

namespace {

using PayloadMultiset = std::map<std::vector<std::byte>, int>;
using PairKey = std::pair<int, int>;  // (source, dest)

std::string pair_name(const PairKey& k) {
  return std::to_string(k.first) + "->" + std::to_string(k.second);
}

}  // namespace

std::string check_exchange_delivery(const ExchangeObservation& obs) {
  if (obs.sends.size() != obs.delivered.size())
    return "observation is lopsided: " + std::to_string(obs.sends.size()) +
           " send slots vs " + std::to_string(obs.delivered.size()) +
           " delivery slots";
  const int n = static_cast<int>(obs.sends.size());

  std::map<PairKey, PayloadMultiset> posted;
  for (int src = 0; src < n; ++src) {
    for (const OutboundMessage& m : obs.sends[static_cast<std::size_t>(src)]) {
      if (m.dest < 0 || m.dest >= n)
        return "rank " + std::to_string(src) + " posted to out-of-range dest " +
               std::to_string(m.dest);
      ++posted[{src, static_cast<int>(m.dest)}][m.bytes];
    }
  }

  for (int dst = 0; dst < n; ++dst) {
    const auto& inbox = obs.delivered[static_cast<std::size_t>(dst)];
    for (std::size_t i = 1; i < inbox.size(); ++i)
      if (inbox[i - 1].source > inbox[i].source)
        return "rank " + std::to_string(dst) +
               " deliveries not sorted by source (…" +
               std::to_string(inbox[i - 1].source) + ", " +
               std::to_string(inbox[i].source) + "…)";
    for (const InboundMessage& m : inbox) {
      const PairKey key{static_cast<int>(m.source), dst};
      auto it = posted.find(key);
      if (it == posted.end())
        return "conservation violated: rank " + std::to_string(dst) +
               " received a message from " + std::to_string(m.source) +
               " that was never posted";
      auto pit = it->second.find(m.bytes);
      if (pit == it->second.end())
        return "conservation violated: " + pair_name(key) + " delivered a " +
               std::to_string(m.bytes.size()) +
               "-byte payload that does not match any outstanding post";
      if (--pit->second == 0) it->second.erase(pit);
      if (it->second.empty()) posted.erase(it);
    }
  }

  for (const auto& [key, payloads] : posted) {
    int lost = 0;
    for (const auto& [bytes, count] : payloads) lost += count;
    return "exactly-once violated: " + std::to_string(lost) + " message(s) " +
           pair_name(key) + " posted but never delivered";
  }
  return {};
}

std::string check_exchange_delivery_survivors(const ExchangeObservation& obs,
                                              const std::vector<std::uint8_t>& alive) {
  if (obs.sends.size() != obs.delivered.size())
    return "observation is lopsided: " + std::to_string(obs.sends.size()) +
           " send slots vs " + std::to_string(obs.delivered.size()) +
           " delivery slots";
  const int n = static_cast<int>(obs.sends.size());
  if (alive.size() != static_cast<std::size_t>(n))
    return "alive bitmap size (" + std::to_string(alive.size()) +
           ") does not match the observation (" + std::to_string(n) + " ranks)";
  const auto is_alive = [&](int r) { return alive[static_cast<std::size_t>(r)] != 0; };

  std::map<PairKey, PayloadMultiset> posted;
  for (int src = 0; src < n; ++src) {
    for (const OutboundMessage& m : obs.sends[static_cast<std::size_t>(src)]) {
      if (m.dest < 0 || m.dest >= n)
        return "rank " + std::to_string(src) + " posted to out-of-range dest " +
               std::to_string(m.dest);
      ++posted[{src, static_cast<int>(m.dest)}][m.bytes];
    }
  }

  for (int dst = 0; dst < n; ++dst) {
    if (!is_alive(dst)) continue;  // a dead rank never returned its inbox
    const auto& inbox = obs.delivered[static_cast<std::size_t>(dst)];
    for (std::size_t i = 1; i < inbox.size(); ++i)
      if (inbox[i - 1].source > inbox[i].source)
        return "rank " + std::to_string(dst) +
               " deliveries not sorted by source (…" +
               std::to_string(inbox[i - 1].source) + ", " +
               std::to_string(inbox[i].source) + "…)";
    for (const InboundMessage& m : inbox) {
      // Conservation and no-duplication hold for every delivery, dead or
      // alive source: consuming from the posted multiset rejects both
      // fabricated payloads and second copies.
      const PairKey key{static_cast<int>(m.source), dst};
      auto it = posted.find(key);
      if (it == posted.end())
        return "conservation violated: rank " + std::to_string(dst) +
               " received a message from " + std::to_string(m.source) +
               " with no outstanding post (fabricated or duplicated)";
      auto pit = it->second.find(m.bytes);
      if (pit == it->second.end())
        return "conservation violated: " + pair_name(key) + " delivered a " +
               std::to_string(m.bytes.size()) +
               "-byte payload that does not match any outstanding post";
      if (--pit->second == 0) it->second.erase(pit);
      if (it->second.empty()) posted.erase(it);
    }
  }

  // Leftover posts between two survivors are real losses; leftovers with a
  // dead endpoint are the expected cost of the crash.
  for (const auto& [key, payloads] : posted) {
    if (!is_alive(key.first) || !is_alive(key.second)) continue;
    int lost = 0;
    for (const auto& [bytes, count] : payloads) lost += count;
    return "survivor exactly-once violated: " + std::to_string(lost) +
           " message(s) " + pair_name(key) +
           " posted between live ranks but never delivered";
  }
  return {};
}

}  // namespace stfw::verify
