#pragma once

#if !STFW_VERIFY_ENABLED
#error "src/verify requires -DSTFW_VERIFY=ON (it implements the verify hooks)"
#endif

#include <string>
#include <vector>

#include "runtime/stfw_communicator.hpp"

/// \file oracles.hpp
/// Terminal-state protocol oracles for explored exchange schedules.
///
/// An ExchangeObservation collects what every rank sent and what every rank
/// saw delivered during one schedule; check_exchange_delivery() then asserts
/// the exchange contract independently of the route taken:
///
///  * exactly-once delivery — each posted payload arrives at its destination
///    exactly once (no loss, no duplication), compared as multisets per
///    (source, dest) pair so reordering among equal payloads is immaterial;
///  * payload conservation — no bytes appear out of thin air (every
///    delivered message matches a posted one);
///  * per-rank delivery order — exchange() promises delivery sorted by
///    source rank.
///
/// Under a FaultInjector the same oracle doubles as the no-frame-loss check:
/// when exchange_resilient() reports fully_recovered, the observation must
/// still satisfy exactly-once delivery.

namespace stfw::verify {

struct ExchangeObservation {
  /// sends[r] — the OutboundMessages rank r passed to the exchange.
  std::vector<std::vector<OutboundMessage>> sends;
  /// delivered[r] — the InboundMessages the exchange returned on rank r.
  std::vector<std::vector<InboundMessage>> delivered;

  void reset(int num_ranks) {
    sends.assign(static_cast<std::size_t>(num_ranks), {});
    delivered.assign(static_cast<std::size_t>(num_ranks), {});
  }
};

/// Empty string when the observation satisfies the exchange contract, else
/// a description of the first violation found.
std::string check_exchange_delivery(const ExchangeObservation& obs);

/// Degraded-mode oracle: the exchange contract restricted to the ranks that
/// survived. `alive` is indexed by rank (nonzero = alive). Traffic between
/// two alive ranks must satisfy the full contract — exactly-once delivery,
/// payload conservation, per-rank source order. Traffic with a dead endpoint
/// may be lost (the rank died mid-exchange) but can never be fabricated or
/// duplicated: everything delivered must still match a posted payload.
/// Observations recorded for dead ranks' own inboxes are ignored (a dead
/// rank never returned from the exchange). Empty string when satisfied.
std::string check_exchange_delivery_survivors(const ExchangeObservation& obs,
                                              const std::vector<std::uint8_t>& alive);

}  // namespace stfw::verify
