#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file vector_clock.hpp
/// Sparse-tailed vector clock for the stfw-verify happens-before engine.
///
/// Components are indexed by "clock index" (one per hooked thread or external
/// caller, allocated by the engine); missing tail entries read as zero, so
/// clocks grow lazily as threads appear.

namespace stfw::verify {

class VectorClock {
public:
  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept {
    return i < c_.size() ? c_[i] : 0;
  }

  void set(std::size_t i, std::uint64_t v) {
    if (i >= c_.size()) c_.resize(i + 1, 0);
    c_[i] = v;
  }

  /// Increment this thread's own component and return the new value.
  std::uint64_t tick(std::size_t i) {
    if (i >= c_.size()) c_.resize(i + 1, 0);
    return ++c_[i];
  }

  /// Pointwise maximum: afterwards *this dominates both inputs.
  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i)
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
  }

  void clear() noexcept { c_.clear(); }

private:
  std::vector<std::uint64_t> c_;
};

}  // namespace stfw::verify
