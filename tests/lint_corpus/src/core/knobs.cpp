// Corpus: l1-getenv — raw getenv outside src/core/env.cpp.
#include <cstdlib>
#include <string>

double bench_scale_raw() {
  const char* v = std::getenv("STFW_BENCH_SCALE");  // lint-expect: l1-getenv
  return v ? std::atof(v) : 1.0;
}

std::string output_dir_raw() {
  if (const char* dir = getenv("STFW_OUT_DIR")) return dir;  // lint-expect: l1-getenv
  return ".";
}

// Near-miss: the identifier merely contains "getenv"; must stay clean.
const char* my_getenv_cache(int slot);

const char* cached_lookup() { return my_getenv_cache(0); }
