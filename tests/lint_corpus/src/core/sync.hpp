// Corpus: l6-raw-sync negative case — this file simulates the real
// src/core/sync.hpp (the selftest strips the corpus prefix), the one
// header allowed to own raw primitives. Nothing here may be flagged.

#include <condition_variable>
#include <mutex>
#include <thread>

namespace stfw::core {

class CorpusMutex {
  std::mutex mu_;
};

class CorpusCondVar {
  std::condition_variable cv_;
};

class CorpusThread {
  std::thread t_;
};

inline void corpus_lock(std::mutex& mu) {
  std::unique_lock<std::mutex> lk(mu);
}

}  // namespace stfw::core
