// Corpus: l2-wire-reserve — allocation sized by an unchecked wire field.
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

struct Entry {
  std::uint32_t size = 0;
};

void require(bool ok, const char* what);

template <class T>
T get(std::span<const std::byte> in, std::size_t& pos);

std::vector<Entry> parse_unchecked(std::span<const std::byte> wire) {
  std::uint32_t count = 0;
  std::memcpy(&count, wire.data(), sizeof(count));
  std::vector<Entry> out;
  out.reserve(count);  // lint-expect: l2-wire-reserve
  return out;
}

std::vector<std::byte> parse_unchecked_resize(std::span<const std::byte> wire) {
  std::size_t pos = 0;
  const auto n = get<std::uint32_t>(wire, pos);
  std::vector<std::byte> body;
  body.resize(n * 12);  // lint-expect: l2-wire-reserve
  return body;
}

// Near-miss: the PR 3 fix pattern — bounds check before the reserve.
std::vector<Entry> parse_checked(std::span<const std::byte> wire) {
  std::size_t pos = 0;
  const auto count = get<std::uint32_t>(wire, pos);
  require(static_cast<std::uint64_t>(count) * 12 <= wire.size() - pos,
          "parse: count exceeds buffer");
  std::vector<Entry> out;
  out.reserve(count);
  return out;
}

// Near-miss: an if-comparison also counts as a check.
std::vector<Entry> parse_if_checked(std::span<const std::byte> wire) {
  std::size_t pos = 0;
  const auto n = get<std::uint64_t>(wire, pos);
  std::vector<Entry> out;
  if (wire.size() != 32 + n * 32) return out;
  out.reserve(n);
  return out;
}

// Near-miss: reserve from a locally computed size is not wire-derived.
std::vector<Entry> build_local(std::size_t rows) {
  std::vector<Entry> out;
  out.reserve(rows * 2);
  return out;
}
