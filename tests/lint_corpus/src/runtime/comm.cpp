// Corpus: l4-catch-all allowlist — this file mirrors the path of the real
// src/runtime/comm.cpp, so catch (...) inside run() is sanctioned and the
// whole file must stay clean.
void invoke_rank(int r);
void record_error(int r);
void abort_all_ranks();

void run(int num_ranks) {
  for (int r = 0; r < num_ranks; ++r) {
    try {
      invoke_rank(r);
    } catch (...) {
      record_error(r);
      abort_all_ranks();
    }
  }
}
