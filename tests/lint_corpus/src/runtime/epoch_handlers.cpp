// Corpus: l7-epoch-check — frame handlers on recovery paths must gate on the
// membership epoch before acting on a decoded frame.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

struct FrameHeader {
  std::uint16_t kind = 0;
  std::uint32_t epoch = 0;
  std::uint32_t member_epoch = 0;
  std::int32_t sender = -1;
};

struct DecodedFrame {
  FrameHeader header;
  std::span<const std::byte> body;
};

std::optional<DecodedFrame> decode_frame(std::span<const std::byte> wire) noexcept;

struct Membership {
  std::uint32_t epoch = 0;
};

struct Inbox {
  std::vector<std::vector<std::byte>> messages;
};

void deliver(const DecodedFrame& frame);
void nack(std::int32_t sender);

void process_incoming_notices(Inbox& inbox, const Membership& mem) {
  for (const auto& wire : inbox.messages) {
    const auto dec = decode_frame(wire);  // lint-expect: l7-epoch-check
    if (!dec) continue;
    // Acting on the frame with no epoch gate: a sender that routed this
    // before a death we already observed gets its stale decisions applied.
    deliver(*dec);
  }
  (void)mem;
}

// Near-miss: the same handler with the gate is correct — the frame's
// membership claim is compared against the current epoch before delivery.
void process_incoming_gated(Inbox& inbox, const Membership& mem) {
  for (const auto& wire : inbox.messages) {
    const auto dec = decode_frame(wire);
    if (!dec) continue;
    if (dec->header.member_epoch < mem.epoch) {
      nack(dec->header.sender);
      continue;
    }
    deliver(*dec);
  }
}

// Near-miss: decoding outside a recovery/membership path is not this rule's
// business (the plain exchange has no epochs to compare).
void drain_plain_frames(Inbox& inbox) {
  for (const auto& wire : inbox.messages) {
    const auto dec = decode_frame(wire);
    if (dec) deliver(*dec);
  }
}
