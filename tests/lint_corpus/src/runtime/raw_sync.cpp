// Corpus: l6-raw-sync — raw standard-library sync primitives outside
// core/sync.hpp / src/verify/. Each must be flagged on its own line; the
// core::-wrapped equivalents below must not be.

#include <mutex>
#include <thread>

#include "core/sync.hpp"

namespace stfw::runtime {

struct RawSyncOffenders {
  std::mutex mu;                      // lint-expect: l6-raw-sync
  std::condition_variable cv;         // lint-expect: l6-raw-sync
  std::shared_mutex cache_mu;         // lint-expect: l6-raw-sync
};

void spawn_raw_worker() {
  std::thread worker([] {});          // lint-expect: l6-raw-sync
  worker.join();
}

void lock_raw(RawSyncOffenders& s) {
  std::lock_guard<std::mutex> a(s.mu);    // lint-expect: l6-raw-sync
  std::unique_lock<std::mutex> b(s.mu);   // lint-expect: l6-raw-sync
  std::scoped_lock c(s.mu);               // lint-expect: l6-raw-sync
}

// The wrapped primitives — and std::this_thread, which is not a primitive —
// are fine anywhere.
struct WrappedSyncClean {
  core::Mutex mu;
  core::CondVar cv;
};

void spawn_wrapped_worker() {
  core::Thread worker([] { std::this_thread::yield(); });
  worker.join();
}

// A documented suppression silences the rule (e.g. interop with a foreign
// API that hands out a std::unique_lock).
void suppressed_raw(RawSyncOffenders& s) {
  // stfw-lint: allow(l6-raw-sync) -- corpus: documented-interop suppression
  std::unique_lock<std::mutex> lk(s.mu);
}

}  // namespace stfw::runtime
