// Corpus: l3-deadline — blocking primitives inside recovery/timeout paths.
#include <cstddef>
#include <vector>

struct Deadline {
  static Deadline never();
  static Deadline in(long ms);
};

struct Message {
  int source = 0;
};

struct Comm {
  Message recv(int source, int tag);
  Message recv(int source, int tag, Deadline deadline);
  bool wait_message(Deadline deadline);
  void barrier();
  void barrier(Deadline deadline);
  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine);
};

void settle_outstanding_frames(Comm& comm, int peer) {
  Message m = comm.recv(peer, 7);  // lint-expect: l3-deadline
  (void)m;
  comm.barrier();  // lint-expect: l3-deadline
}

void exchange_resilient_epilogue(Comm& comm) {
  auto blobs = comm.allgather({});  // lint-expect: l3-deadline
  (void)blobs;
}

// Near-miss: the same calls with Deadline overloads are correct.
void settle_with_deadlines(Comm& comm, int peer, Deadline stage_deadline) {
  Message m = comm.recv(peer, 7, stage_deadline);
  (void)m;
  if (comm.wait_message(Deadline::in(50))) return;
  comm.barrier(stage_deadline);
}

// Near-miss: a non-recovery function may use the blocking overloads.
void plain_exchange_stage(Comm& comm, int peer) {
  Message m = comm.recv(peer, 3);
  (void)m;
  comm.barrier();
}
