// Corpus: l4-catch-all — catch (...) outside the sanctioned sites.
void do_work();
void log_failure();

void run_one_task() {
  try {
    do_work();
  } catch (...) {  // lint-expect: l4-catch-all
    log_failure();
  }
}
