// Corpus: l5-nodiscard — status/stats-returning APIs in public headers.
#pragma once

struct RouteStats {
  long messages = 0;
};

struct SettleResult {
  bool converged = false;
};

struct Plan;

RouteStats route_stats(const Plan& plan);  // lint-expect: l5-nodiscard

SettleResult settle(Plan& plan, int max_rounds);  // lint-expect: l5-nodiscard

// Near-miss: annotated declarations are correct, on either line.
[[nodiscard]] RouteStats checked_route_stats(const Plan& plan);

[[nodiscard]]
SettleResult checked_settle(Plan& plan, int max_rounds);

// Near-miss: out-parameter pointers and member declarations must stay clean.
void accumulate(const Plan& plan, RouteStats* totals = nullptr);

struct Runner {
  RouteStats last_stats_member_decl;
};
