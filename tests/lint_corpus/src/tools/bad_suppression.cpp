// Corpus: a suppression without a reason is itself a finding, and it does
// not suppress the underlying violation.
#include <cstdlib>

const char* home_dir() {
  // stfw-lint: allow(l1-getenv) lint-expect: suppression
  return std::getenv("HOME");  // lint-expect: l1-getenv
}
