// Corpus: documented suppressions — every finding below carries a
// `// stfw-lint: allow(<rule>) -- <reason>` and the file must report clean.
#include <cstdlib>

void teardown_subsystems();

const char* terminal_columns() {
  // stfw-lint: allow(l1-getenv) -- read-only display knob, never parsed as a number
  return std::getenv("COLUMNS");
}

void shutdown_for_exit() {
  try {
    teardown_subsystems();
  } catch (...) {  // stfw-lint: allow(l4-catch-all) -- process-exit path; diagnostics already flushed
  }
}
