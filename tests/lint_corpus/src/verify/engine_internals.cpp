// Corpus: l6-raw-sync negative case — src/verify/ implements the scheduler
// that *controls* the wrapped primitives, so it must build on the raw ones
// (a core::Mutex here would re-enter its own hooks). Nothing may be flagged.

#include <condition_variable>
#include <mutex>

namespace stfw::verify {

struct CorpusEngineState {
  std::mutex mu;
  std::condition_variable cv;
};

inline void corpus_park(CorpusEngineState& s) {
  std::unique_lock<std::mutex> lk(s.mu);
  s.cv.wait(lk, [] { return true; });
}

}  // namespace stfw::verify
