#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stfw::core::analysis {
namespace {

TEST(Analysis, MaxMessageCountBoundSpansLinearToLog) {
  EXPECT_EQ(max_message_count_bound(Vpt::direct(256)), 255);
  EXPECT_EQ(max_message_count_bound(Vpt::balanced(256, 2)), 30);   // 2*(16-1)
  EXPECT_EQ(max_message_count_bound(Vpt::hypercube(256)), 8);      // lg2 256
}

TEST(Analysis, PaperSection4VolumeRatios) {
  // Section 4 quotes exact-to-direct volume ratios at K = 256:
  // T_2 -> 1.88, T_4 -> 3.01, T_8 -> 4.02, with loose bounds 2, 4, 8.
  const Vpt t2 = Vpt::balanced(256, 2);
  const Vpt t4 = Vpt::balanced(256, 4);
  const Vpt t8 = Vpt::balanced(256, 8);
  EXPECT_NEAR(alltoall_volume_ratio(t2), 1.88, 0.005);
  EXPECT_NEAR(alltoall_volume_ratio(t4), 3.01, 0.005);
  EXPECT_NEAR(alltoall_volume_ratio(t8), 4.02, 0.005);
  EXPECT_EQ(alltoall_volume_ratio_loose(t2), 2);
  EXPECT_EQ(alltoall_volume_ratio_loose(t4), 4);
  EXPECT_EQ(alltoall_volume_ratio_loose(t8), 8);
}

TEST(Analysis, DirectVolumeIsKMinusOne) {
  const Vpt t = Vpt::direct(64);
  EXPECT_EQ(alltoall_volume_units(t), 63);
  EXPECT_DOUBLE_EQ(alltoall_volume_ratio(t), 1.0);
}

TEST(Analysis, ForwardHopsMatchPaperClosedFormForEqualDims) {
  // For k1 = ... = kn = k: sum_l (k-1)^l * C(n,l) * l.
  auto closed_form = [](int k, int n) {
    auto binom = [](int a, int b) {
      double r = 1.0;
      for (int i = 1; i <= b; ++i) r = r * (a - b + i) / i;
      return r;
    };
    double total = 0.0;
    for (int l = 1; l <= n; ++l) total += std::pow(k - 1, l) * binom(n, l) * l;
    return static_cast<std::int64_t>(std::llround(total));
  };
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{{2, 4}, {4, 3}, {8, 2}, {2, 10}}) {
    std::vector<int> dims(static_cast<std::size_t>(n), k);
    EXPECT_EQ(alltoall_forward_hops(Vpt(dims)), closed_form(k, n)) << "k=" << k << " n=" << n;
  }
}

TEST(Analysis, ForwardHopsEqualSumOfHammingDistances) {
  // Direct verification of the derivation for unequal dimension sizes.
  for (const std::vector<int>& dims :
       {std::vector<int>{4, 2, 8}, std::vector<int>{2, 2, 4}, std::vector<int>{16, 4}}) {
    const Vpt t(dims);
    std::int64_t expected = 0;
    for (Rank r = 1; r < t.size(); ++r) expected += t.hamming(0, r);
    EXPECT_EQ(alltoall_forward_hops(t), expected) << t.to_string();
  }
}

TEST(Analysis, VolumeRatioIsMonotoneInDimensionAtFixedK) {
  double prev = 0.0;
  for (int n = 1; n <= 8; ++n) {
    const double r = alltoall_volume_ratio(Vpt::balanced(256, n));
    EXPECT_GT(r, prev);
    prev = r;
  }
  // And never exceeds the loose bound n.
  for (int n = 1; n <= 8; ++n)
    EXPECT_LE(alltoall_volume_ratio(Vpt::balanced(256, n)), static_cast<double>(n));
}

TEST(Analysis, ResidentSubmessagesAreAlwaysKMinusOne) {
  // Section 4: after any stage in the all-to-all case, each process holds
  // exactly K - 1 submessages, for any dimension mix.
  for (const std::vector<int>& dims :
       {std::vector<int>{4, 4, 4}, std::vector<int>{2, 8, 4}, std::vector<int>{16, 16}}) {
    const Vpt t(dims);
    for (int d = 0; d < t.dim(); ++d)
      EXPECT_EQ(resident_submessages_after_stage(t, d), t.size() - 1) << t.to_string();
  }
}

TEST(Analysis, BufferBoundUnits) {
  EXPECT_EQ(buffer_bound_units(Vpt::balanced(64, 3)), 63);
  EXPECT_EQ(buffer_bound_units(Vpt::direct(512)), 511);
}

}  // namespace
}  // namespace stfw::core::analysis
