#include "sim/bsp_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "core/analysis.hpp"
#include "core/error.hpp"
#include "netsim/machine.hpp"
#include "runtime/stfw_communicator.hpp"

namespace stfw::sim {
namespace {

using core::Rank;
using core::Vpt;

CommPattern random_pattern(Rank K, double density, std::uint64_t seed,
                           std::uint32_t payload = 8) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  CommPattern p(K);
  for (Rank i = 0; i < K; ++i)
    for (Rank j = 0; j < K; ++j)
      if (i != j && coin(rng) < density) p.add_send(i, j, payload);
  p.finalize();
  return p;
}

CommPattern alltoall_pattern(Rank K, std::uint32_t payload) {
  CommPattern p(K);
  for (Rank i = 0; i < K; ++i)
    for (Rank j = 0; j < K; ++j)
      if (i != j) p.add_send(i, j, payload);
  p.finalize();
  return p;
}

struct SimCase {
  std::vector<int> dims;
  double density;
};

class SimulatorProperty : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimulatorProperty, DeliversEverySendExactlyOnce) {
  const auto& param = GetParam();
  const Vpt vpt(param.dims);
  const auto pattern = random_pattern(vpt.size(), param.density, 7);
  SimOptions opts;
  opts.collect_delivered = true;
  const SimResult result = simulate_exchange(vpt, pattern, opts);

  std::multiset<std::pair<Rank, Rank>> expected, got;
  for (Rank r = 0; r < vpt.size(); ++r)
    for (const Send& s : pattern.sends(r)) expected.emplace(r, s.dest);
  for (Rank r = 0; r < vpt.size(); ++r)
    for (const core::Submessage& m : result.delivered[static_cast<std::size_t>(r)]) {
      EXPECT_EQ(m.dest, r);
      got.emplace(m.source, m.dest);
    }
  EXPECT_EQ(got, expected);
}

TEST_P(SimulatorProperty, RespectsMaxMessageCountBound) {
  const auto& param = GetParam();
  const Vpt vpt(param.dims);
  const auto pattern = random_pattern(vpt.size(), param.density, 11);
  const SimResult result = simulate_exchange(vpt, pattern);
  EXPECT_LE(result.metrics.max_send_count(), vpt.max_message_count_bound());
}

TEST_P(SimulatorProperty, VolumeEqualsPayloadTimesHammingDistance) {
  // Every original message of B bytes is transmitted exactly
  // hamming(src, dest) times under dimension-order routing.
  const auto& param = GetParam();
  const Vpt vpt(param.dims);
  const auto pattern = random_pattern(vpt.size(), param.density, 13, 24);
  const SimResult result = simulate_exchange(vpt, pattern);
  std::uint64_t expected_bytes = 0;
  for (Rank r = 0; r < vpt.size(); ++r)
    for (const Send& s : pattern.sends(r))
      expected_bytes += static_cast<std::uint64_t>(vpt.hamming(r, s.dest)) * s.payload_bytes;
  EXPECT_EQ(static_cast<std::uint64_t>(result.metrics.total_volume_words()) * 8, expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimulatorProperty,
                         ::testing::Values(SimCase{{16}, 0.3},            // BL
                                           SimCase{{4, 4}, 0.3},
                                           SimCase{{2, 8}, 0.3},
                                           SimCase{{8, 2}, 0.3},
                                           SimCase{{2, 2, 2, 2}, 0.3},
                                           SimCase{{4, 2, 2}, 0.5},
                                           SimCase{{2, 2, 2, 2, 2, 2}, 0.1},
                                           SimCase{{8, 8}, 0.1},
                                           SimCase{{4, 4, 4}, 0.05},
                                           SimCase{{32, 4}, 0.02},
                                           // Non-power-of-two rank counts.
                                           SimCase{{3, 4}, 0.4},
                                           SimCase{{5, 3, 2}, 0.3},
                                           SimCase{{7, 11}, 0.2},
                                           SimCase{{100}, 0.1}));

TEST(Simulator, AllToAllMatchesClosedFormVolume) {
  // Section 4's exact volume formula, verified end-to-end.
  for (int n = 1; n <= 6; ++n) {
    const Vpt vpt = Vpt::balanced(64, n);
    const auto pattern = alltoall_pattern(64, 8);
    const SimResult result = simulate_exchange(vpt, pattern);
    const std::int64_t expected_per_rank = core::analysis::alltoall_volume_units(vpt);
    EXPECT_EQ(result.metrics.total_volume_words(), expected_per_rank * 64) << "n=" << n;
  }
}

TEST(Simulator, AllToAllMaxCountIsTight) {
  for (int n = 1; n <= 6; ++n) {
    const Vpt vpt = Vpt::balanced(64, n);
    const SimResult result = simulate_exchange(vpt, alltoall_pattern(64, 8));
    EXPECT_EQ(result.metrics.max_send_count(), vpt.max_message_count_bound()) << "n=" << n;
    // And every rank sends exactly the bound (the pattern is symmetric).
    for (std::int64_t c : result.metrics.send_counts())
      EXPECT_EQ(c, vpt.max_message_count_bound());
  }
}

TEST(Simulator, AllToAllBufferBoundHolds) {
  // Section 4: at most K - 1 submessages reside at a process between
  // stages, so the transit term of the buffer metric is bounded by
  // s * (K - 1); the full metric adds the original send and receive
  // buffers, each exactly s * (K - 1) in the all-to-all case.
  const Rank K = 64;
  const std::uint32_t s = 16;
  for (int n = 2; n <= 6; ++n) {
    const Vpt vpt = Vpt::balanced(K, n);
    const SimResult result = simulate_exchange(vpt, alltoall_pattern(K, s));
    for (std::uint64_t b : result.metrics.buffer_bytes())
      EXPECT_LE(b, 3ull * s * (K - 1)) << "n=" << n;
  }
  // Direct communication has no transit residency at all.
  const SimResult bl = simulate_exchange(Vpt::direct(K), alltoall_pattern(K, s));
  for (std::uint64_t b : bl.metrics.buffer_bytes()) EXPECT_EQ(b, 2ull * s * (K - 1));
}

TEST(Simulator, BaselineMetricsEqualPatternStatistics) {
  const auto pattern = random_pattern(32, 0.4, 3);
  const SimResult result = simulate_exchange(Vpt::direct(32), pattern);
  EXPECT_EQ(result.metrics.max_send_count(), pattern.max_send_count());
  EXPECT_DOUBLE_EQ(result.metrics.avg_send_count(), pattern.avg_send_count());
  EXPECT_EQ(static_cast<std::uint64_t>(result.metrics.total_volume_words()) * 8,
            pattern.total_payload_bytes());
}

TEST(Simulator, HigherDimensionTradesLatencyForVolume) {
  // The paper's core trade-off on a realistic irregular pattern.
  const Rank K = 128;
  const auto pattern = random_pattern(K, 0.15, 5);
  std::int64_t prev_mmax = pattern.max_send_count() + 1;
  std::int64_t prev_volume = -1;
  for (int n = 1; n <= 7; ++n) {
    const SimResult r = simulate_exchange(Vpt::balanced(K, n), pattern);
    if (n > 1) {
      EXPECT_LT(r.metrics.max_send_count(), pattern.max_send_count()) << "n=" << n;
      EXPECT_GE(r.metrics.total_volume_words(), prev_volume) << "n=" << n;
    }
    EXPECT_LE(r.metrics.max_send_count(), prev_mmax) << "n=" << n;
    prev_mmax = r.metrics.max_send_count();
    prev_volume = r.metrics.total_volume_words();
  }
}

TEST(Simulator, TimingRequiresMachineAndIsPositive) {
  const auto pattern = random_pattern(64, 0.2, 9);
  const SimResult untimed = simulate_exchange(Vpt::balanced(64, 3), pattern);
  EXPECT_EQ(untimed.comm_time_us, 0.0);

  const auto machine = netsim::Machine::blue_gene_q(64);
  SimOptions opts;
  opts.machine = &machine;
  const SimResult timed = simulate_exchange(Vpt::balanced(64, 3), pattern, opts);
  EXPECT_GT(timed.comm_time_us, 0.0);
  EXPECT_EQ(timed.stage_times_us.size(), 3u);
  double sum = 0.0;
  for (double t : timed.stage_times_us) {
    EXPECT_GE(t, 0.0);
    sum += t;
  }
  EXPECT_DOUBLE_EQ(sum, timed.comm_time_us);
}

TEST(Simulator, InjectionBottleneckRaisesHeavyTrafficTimes) {
  // A custom machine with a tiny NIC rate must be slower than an identical
  // machine without the injection term, and only for traffic that actually
  // crosses nodes.
  const Rank K = 64;
  auto topo = std::make_shared<netsim::TorusTopology>(std::vector<int>{4});
  const netsim::Machine no_nic("test", topo, 16, 1.0, 0.5, 1e-4, 0.0, 0.0);
  const netsim::Machine slow_nic("test", topo, 16, 1.0, 0.5, 1e-4, 0.0, /*inject=*/10.0);

  CommPattern cross(K);
  for (Rank r = 0; r < 16; ++r) cross.add_send(r, r + 16, 4096);  // node 0 -> node 1
  cross.finalize();
  SimOptions opts;
  opts.machine = &no_nic;
  const double t_free = simulate_exchange(Vpt::direct(K), cross, opts).comm_time_us;
  opts.machine = &slow_nic;
  const double t_nic = simulate_exchange(Vpt::direct(K), cross, opts).comm_time_us;
  EXPECT_GT(t_nic, 2.0 * t_free);

  // Intra-node traffic is not charged against the NIC.
  CommPattern local(K);
  for (Rank r = 0; r < 16; ++r) local.add_send(r, (r + 1) % 16, 4096);
  local.finalize();
  opts.machine = &slow_nic;
  const double t_local = simulate_exchange(Vpt::direct(K), local, opts).comm_time_us;
  opts.machine = &no_nic;
  const double t_local_free = simulate_exchange(Vpt::direct(K), local, opts).comm_time_us;
  EXPECT_DOUBLE_EQ(t_local, t_local_free);
}

TEST(Simulator, NodeAwareVptKeepsStageOneOnNode) {
  // With contiguous rank->node folding, every stage-1 message of the
  // node-aware topology is intra-node (zero hops).
  const Rank K = 64;
  const auto machine = netsim::Machine::blue_gene_q(K);  // 16 ranks/node
  const Vpt vpt = Vpt::node_aware(K, machine.ranks_per_node());
  EXPECT_EQ(vpt.dim(), 2);
  EXPECT_EQ(vpt.dim_size(0), 16);
  for (Rank r = 0; r < K; ++r)
    for (Rank n : vpt.neighbors(r, 0))
      EXPECT_EQ(machine.node_of(r), machine.node_of(n)) << "rank " << r;
}

TEST(Simulator, LatencyBoundPatternFavorsStfw) {
  // A hub-and-spoke pattern (one rank talks to everyone, tiny messages) is
  // the scenario of the paper's introduction: BL's comm time must exceed a
  // mid-dimension STFW's under every machine model.
  const Rank K = 256;
  CommPattern p(K);
  for (Rank j = 1; j < K; ++j) {
    p.add_send(0, j, 16);
    p.add_send(j, 0, 16);
  }
  p.finalize();
  for (const auto& machine : {netsim::Machine::blue_gene_q(K), netsim::Machine::cray_xc40(K),
                              netsim::Machine::cray_xk7(K)}) {
    SimOptions opts;
    opts.machine = &machine;
    const double bl = simulate_exchange(Vpt::direct(K), p, opts).comm_time_us;
    const double stfw = simulate_exchange(Vpt::balanced(K, 4), p, opts).comm_time_us;
    EXPECT_LT(stfw, bl) << machine.name();
  }
}

TEST(Simulator, RejectsMismatchedSizes) {
  const auto pattern = random_pattern(16, 0.3, 1);
  EXPECT_THROW(simulate_exchange(Vpt::direct(8), pattern), core::Error);
}

TEST(Simulator, RejectsUnfinalizedPattern) {
  CommPattern p(4);
  p.add_send(0, 1, 8);
  EXPECT_THROW(simulate_exchange(Vpt::direct(4), p), core::Error);
}

TEST(Simulator, MatchesThreadedRuntimeMetrics) {
  // The two substrates share the routing core; their aggregate metrics must
  // agree exactly. (The threaded side is exercised per-rank in
  // test_stfw_communicator; here we pin the cross-substrate invariant.)
  const Vpt vpt({4, 2, 2});
  const auto pattern = random_pattern(vpt.size(), 0.35, 21);
  const SimResult sim = simulate_exchange(vpt, pattern);

  runtime::Cluster cluster(vpt.size());
  std::vector<std::int64_t> sent(static_cast<std::size_t>(vpt.size()));
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(vpt.size()));
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    std::vector<OutboundMessage> sends;
    for (const Send& s : pattern.sends(static_cast<Rank>(comm.rank())))
      sends.push_back(OutboundMessage{s.dest, std::vector<std::byte>(s.payload_bytes)});
    communicator.exchange(sends);
    const auto r = static_cast<std::size_t>(comm.rank());
    sent[r] = communicator.last_stats().messages_sent;
    bytes[r] = communicator.last_stats().payload_bytes_sent;
  });

  for (Rank r = 0; r < vpt.size(); ++r) {
    EXPECT_EQ(sent[static_cast<std::size_t>(r)],
              sim.metrics.send_counts()[static_cast<std::size_t>(r)])
        << "rank " << r;
    EXPECT_EQ(bytes[static_cast<std::size_t>(r)],
              sim.metrics.send_payload_bytes()[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

}  // namespace
}  // namespace stfw::sim
