#include "runtime/collectives.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/error.hpp"

namespace stfw::runtime {
namespace {

std::vector<std::byte> bytes_of_string(const char* s) {
  std::vector<std::byte> b(std::strlen(s));
  std::memcpy(b.data(), s, b.size());
  return b;
}

class CollectivesParam : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesParam, BroadcastReachesEveryRankFromEveryRoot) {
  const int size = GetParam();
  Cluster cluster(size);
  for (int root = 0; root < size; root += std::max(1, size / 3)) {
    cluster.run([root](Comm& comm) {
      std::vector<std::byte> payload;
      if (comm.rank() == root) payload = bytes_of_string("broadcast payload");
      const auto result = broadcast(comm, root, std::move(payload));
      ASSERT_EQ(result.size(), std::strlen("broadcast payload"));
      EXPECT_EQ(std::memcmp(result.data(), "broadcast payload", result.size()), 0);
    });
  }
}

TEST_P(CollectivesParam, ReduceSumsContributions) {
  const int size = GetParam();
  Cluster cluster(size);
  cluster.run([size](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()), 1.0};
    const auto result = reduce_sum(comm, 0, mine);
    if (comm.rank() == 0) {
      ASSERT_EQ(result.size(), 2u);
      EXPECT_DOUBLE_EQ(result[0], size * (size - 1) / 2.0);
      EXPECT_DOUBLE_EQ(result[1], static_cast<double>(size));
    } else {
      EXPECT_TRUE(result.empty());
    }
  });
}

TEST_P(CollectivesParam, AllreduceGivesEveryoneTheSum) {
  const int size = GetParam();
  Cluster cluster(size);
  cluster.run([size](Comm& comm) {
    const std::vector<double> mine{1.0, static_cast<double>(comm.rank())};
    const auto result = allreduce_sum(comm, mine);
    ASSERT_EQ(result.size(), 2u);
    EXPECT_DOUBLE_EQ(result[0], static_cast<double>(size));
    EXPECT_DOUBLE_EQ(result[1], size * (size - 1) / 2.0);
  });
}

TEST_P(CollectivesParam, AlltoallvPersonalizedExchange) {
  const int size = GetParam();
  Cluster cluster(size);
  cluster.run([size](Comm& comm) {
    // Rank i sends (i * size + j) as a one-int payload to rank j; j == i+1
    // (mod size) gets nothing, exercising the empty-buffer path.
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(size));
    for (int j = 0; j < size; ++j) {
      if (j == (comm.rank() + 1) % size) continue;
      const int v = comm.rank() * size + j;
      send[static_cast<std::size_t>(j)].resize(sizeof(int));
      std::memcpy(send[static_cast<std::size_t>(j)].data(), &v, sizeof(int));
    }
    const auto recv = alltoallv(comm, std::move(send));
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) {
      if (comm.rank() == (i + 1) % size) {
        EXPECT_TRUE(recv[static_cast<std::size_t>(i)].empty());
        continue;
      }
      int v = -1;
      ASSERT_EQ(recv[static_cast<std::size_t>(i)].size(), sizeof(int));
      std::memcpy(&v, recv[static_cast<std::size_t>(i)].data(), sizeof(int));
      EXPECT_EQ(v, i * size + comm.rank());
    }
  });
}

TEST_P(CollectivesParam, ExscanComputesExclusivePrefix) {
  const int size = GetParam();
  Cluster cluster(size);
  cluster.run([](Comm& comm) {
    const std::int64_t mine = comm.rank() + 1;
    const std::int64_t prefix = exscan_sum(comm, mine);
    // Exclusive prefix of 1, 2, 3, ... is r * (r + 1) / 2.
    EXPECT_EQ(prefix, static_cast<std::int64_t>(comm.rank()) * (comm.rank() + 1) / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesParam,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 33));

TEST(Collectives, BroadcastValidatesRoot) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Comm& comm) { broadcast(comm, 5, {}); }), core::Error);
}

}  // namespace
}  // namespace stfw::runtime
