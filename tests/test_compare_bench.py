#!/usr/bin/env python3
"""Tests for tools/compare_bench.py exit codes and failure messages.

Exercises the tool as a subprocess, the way CI's bench-smoke job and a human
diffing two commits run it. The hardening cases matter most: a missing file,
a glob that matches nothing, and an empty results array must all fail with
exit 2 and a message naming the cause -- never pass silently.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(REPO_ROOT, "tools", "compare_bench.py")


def bench_doc(results):
    return {
        "bench": "micro_exchange",
        "schema_version": 1,
        "config": {"k_max": 64, "iters": 6},
        "results": results,
    }


def run_tool(*argv):
    return subprocess.run(
        [sys.executable, TOOL, *argv],
        capture_output=True,
        text=True,
        check=False,
    )


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def test_schema_ok(self):
        path = self.write("BENCH_a.json", bench_doc([{"name": "k4", "mean_us": 1.5}]))
        proc = run_tool("--schema", path)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("ok:", proc.stdout)

    def test_missing_file_exits_2_with_cause(self):
        missing = os.path.join(self.tmp.name, "BENCH_nope.json")
        proc = run_tool("--schema", missing)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("does not exist", proc.stderr)
        self.assertIn("did the benchmark run", proc.stderr)

    def test_unmatched_glob_exits_2_with_cause(self):
        pattern = os.path.join(self.tmp.name, "BENCH_*.json")
        proc = run_tool("--schema", pattern)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("matched no files", proc.stderr)

    def test_glob_expansion_finds_files(self):
        self.write("BENCH_a.json", bench_doc([{"name": "k4", "mean_us": 1.0}]))
        self.write("BENCH_b.json", bench_doc([{"name": "k8", "mean_us": 2.0}]))
        proc = run_tool("--schema", os.path.join(self.tmp.name, "BENCH_*.json"))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(proc.stdout.count("ok:"), 2)

    def test_empty_results_exits_2(self):
        path = self.write("BENCH_empty.json", bench_doc([]))
        proc = run_tool("--schema", path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("'results' is empty", proc.stderr)

    def test_schema_mismatch_exits_2(self):
        doc = bench_doc([{"name": "k4", "mean_us": 1.0}])
        doc["schema_version"] = 99
        path = self.write("BENCH_v99.json", doc)
        proc = run_tool("--schema", path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("schema_version", proc.stderr)

    def test_malformed_json_exits_2(self):
        path = os.path.join(self.tmp.name, "BENCH_bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        proc = run_tool("--schema", path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_diff_within_tolerance_passes(self):
        base = self.write("base.json", bench_doc([{"name": "k4", "mean_us": 100.0}]))
        cand = self.write("cand.json", bench_doc([{"name": "k4", "mean_us": 110.0}]))
        proc = run_tool(base, cand, "--tolerance", "0.25")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_diff_time_regression_fails(self):
        base = self.write("base.json", bench_doc([{"name": "k4", "mean_us": 100.0}]))
        cand = self.write("cand.json", bench_doc([{"name": "k4", "mean_us": 200.0}]))
        proc = run_tool(base, cand, "--tolerance", "0.25")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("regressed", proc.stderr)

    def test_diff_speedup_passes(self):
        base = self.write("base.json", bench_doc([{"name": "k4", "mean_us": 100.0}]))
        cand = self.write("cand.json", bench_doc([{"name": "k4", "mean_us": 10.0}]))
        proc = run_tool(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_diff_missing_row_fails(self):
        base = self.write("base.json", bench_doc(
            [{"name": "k4", "mean_us": 1.0}, {"name": "k8", "mean_us": 2.0}]))
        cand = self.write("cand.json", bench_doc([{"name": "k4", "mean_us": 1.0}]))
        proc = run_tool(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from", proc.stderr)

    def overlap_doc(self, sync_ns, overlap_ns, ranks=256):
        return {
            "bench": "overlap",
            "schema_version": 1,
            "config": {"kmax": ranks},
            "results": [
                {"name": f"K{ranks}/barrier", "mode": "barrier", "ranks": ranks,
                 "wall_ns_per_iter": sync_ns * 1.5},
                {"name": f"K{ranks}/sync", "mode": "sync", "ranks": ranks,
                 "wall_ns_per_iter": sync_ns},
                {"name": f"K{ranks}/overlap", "mode": "overlap", "ranks": ranks,
                 "wall_ns_per_iter": overlap_ns},
            ],
        }

    def test_overlap_gate_passes_when_overlap_is_faster(self):
        path = self.write("BENCH_overlap.json", self.overlap_doc(100.0, 80.0))
        proc = run_tool("--overlap-gate", path, "--tolerance", "0.05")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("overlap gate at K=256", proc.stdout)

    def test_overlap_gate_fails_when_overlap_is_slower(self):
        path = self.write("BENCH_overlap.json", self.overlap_doc(100.0, 120.0))
        proc = run_tool("--overlap-gate", path, "--tolerance", "0.05")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("overlap slower than sync at K=256", proc.stderr)

    def test_overlap_gate_uses_largest_k_only(self):
        doc = self.overlap_doc(100.0, 80.0, ranks=256)
        # A slower overlap at a smaller K must not trip the gate.
        doc["results"] += self.overlap_doc(100.0, 500.0, ranks=32)["results"]
        path = self.write("BENCH_overlap.json", doc)
        proc = run_tool("--overlap-gate", path, "--tolerance", "0.05")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_overlap_gate_missing_rows_fails(self):
        doc = self.overlap_doc(100.0, 80.0)
        doc["results"] = [r for r in doc["results"] if r["mode"] != "overlap"]
        path = self.write("BENCH_overlap.json", doc)
        proc = run_tool("--overlap-gate", path)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no 'overlap' row", proc.stderr)

    def micro_doc(self, planned_ns, ranks=256):
        return {
            "bench": "micro_exchange",
            "schema_version": 1,
            "config": {"kmax": ranks},
            "results": [
                {"name": f"K{ranks}/unplanned", "mode": "unplanned", "ranks": ranks,
                 "wall_ns_per_exchange": planned_ns * 1.4},
                {"name": f"K{ranks}/planned", "mode": "planned", "ranks": ranks,
                 "wall_ns_per_exchange": planned_ns},
            ],
        }

    def test_zero_copy_gate_passes_when_zero_copy_is_faster(self):
        base = self.write("copying.json", self.micro_doc(100.0))
        cand = self.write("zerocopy.json", self.micro_doc(70.0))
        proc = run_tool("--zero-copy-gate", base, cand, "--tolerance", "0.05")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("zero-copy gate at K=256", proc.stdout)

    def test_zero_copy_gate_fails_when_zero_copy_is_slower(self):
        base = self.write("copying.json", self.micro_doc(100.0))
        cand = self.write("zerocopy.json", self.micro_doc(120.0))
        proc = run_tool("--zero-copy-gate", base, cand, "--tolerance", "0.05")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("zero-copy planned replay slower", proc.stderr)

    def test_zero_copy_gate_compares_at_baseline_largest_k(self):
        # Candidate carrying extra (larger) K rows must be compared at the
        # baseline's largest K, not silently mismatch row-by-row.
        base = self.write("copying.json", self.micro_doc(100.0, ranks=128))
        cand_doc = self.micro_doc(70.0, ranks=128)
        cand_doc["results"] += self.micro_doc(500.0, ranks=256)["results"]
        cand = self.write("zerocopy.json", cand_doc)
        proc = run_tool("--zero-copy-gate", base, cand, "--tolerance", "0.05")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("K=128", proc.stdout)

    def test_zero_copy_gate_missing_planned_row_fails(self):
        base_doc = self.micro_doc(100.0)
        base_doc["results"] = [r for r in base_doc["results"] if r["mode"] != "planned"]
        base = self.write("copying.json", base_doc)
        cand = self.write("zerocopy.json", self.micro_doc(70.0))
        proc = run_tool("--zero-copy-gate", base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no 'planned' row", proc.stderr)

    def test_zero_copy_gate_needs_two_files(self):
        base = self.write("copying.json", self.micro_doc(100.0))
        proc = run_tool("--zero-copy-gate", base)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("exactly two files", proc.stderr)

    def test_diff_against_empty_candidate_is_schema_error(self):
        # The key hardening case: an empty candidate must not "pass" the diff.
        base = self.write("base.json", bench_doc([{"name": "k4", "mean_us": 1.0}]))
        cand = self.write("cand.json", bench_doc([]))
        proc = run_tool(base, cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("'results' is empty", proc.stderr)


if __name__ == "__main__":
    unittest.main()
