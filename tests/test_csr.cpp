#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/error.hpp"

namespace stfw::sparse {
namespace {

Csr small_matrix() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  return Csr::from_triplets(3, 3,
                            {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {2, 0, 4.0}, {2, 2, 5.0}});
}

TEST(Csr, FromTripletsSortsAndStores) {
  const Csr a = small_matrix();
  EXPECT_EQ(a.num_rows(), 3);
  EXPECT_EQ(a.num_cols(), 3);
  EXPECT_EQ(a.num_nonzeros(), 5);
  EXPECT_EQ(a.row_degree(0), 2);
  EXPECT_EQ(a.row_degree(1), 1);
  EXPECT_EQ(a.row_cols(0)[0], 0);
  EXPECT_EQ(a.row_cols(0)[1], 2);
  EXPECT_DOUBLE_EQ(a.row_values(2)[1], 5.0);
}

TEST(Csr, FromTripletsMergesDuplicates) {
  const Csr a = Csr::from_triplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, 1.0}});
  EXPECT_EQ(a.num_nonzeros(), 2);
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 3.5);
}

TEST(Csr, SpmvMatchesHandComputation) {
  const Csr a = small_matrix();
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3);
  a.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0 * 1 + 2.0 * 3);
  EXPECT_DOUBLE_EQ(y[1], 3.0 * 2);
  EXPECT_DOUBLE_EQ(y[2], 4.0 * 1 + 5.0 * 3);
}

TEST(Csr, SpmmMatchesColumnwiseSpmv) {
  const Csr a = small_matrix();
  constexpr std::int32_t kVectors = 3;
  // Row-major X: x[i * kVectors + v].
  std::vector<double> x(9), y(9), y_ref(3);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i) * 0.5 - 2.0;
  a.spmm(x, y, kVectors);
  for (std::int32_t v = 0; v < kVectors; ++v) {
    std::vector<double> xv(3);
    for (std::int32_t i = 0; i < 3; ++i)
      xv[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i * kVectors + v)];
    a.spmv(xv, y_ref);
    for (std::int32_t i = 0; i < 3; ++i)
      EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i * kVectors + v)],
                       y_ref[static_cast<std::size_t>(i)])
          << "vector " << v << " row " << i;
  }
}

TEST(Csr, SpmmValidatesSizes) {
  const Csr a = small_matrix();
  std::vector<double> x(6), y(9);
  EXPECT_THROW(a.spmm(x, y, 3), core::Error);
  EXPECT_THROW(a.spmm(x, y, 0), core::Error);
}

TEST(Csr, SpmvValidatesSizes) {
  const Csr a = small_matrix();
  std::vector<double> x(2), y(3);
  EXPECT_THROW(a.spmv(x, y), core::Error);
}

TEST(Csr, TransposeRoundTrip) {
  std::mt19937_64 rng(3);
  std::vector<Triplet> triplets;
  std::uniform_int_distribution<std::int32_t> rd(0, 9), cd(0, 14);
  std::uniform_real_distribution<double> vd(-1, 1);
  for (int i = 0; i < 60; ++i) triplets.push_back({rd(rng), cd(rng), vd(rng)});
  const Csr a = Csr::from_triplets(10, 15, triplets);
  const Csr t = a.transpose();
  EXPECT_EQ(t.num_rows(), 15);
  EXPECT_EQ(t.num_cols(), 10);
  EXPECT_EQ(t.num_nonzeros(), a.num_nonzeros());
  const Csr tt = t.transpose();
  EXPECT_EQ(tt.row_ptr().size(), a.row_ptr().size());
  EXPECT_TRUE(std::equal(tt.col_idx().begin(), tt.col_idx().end(), a.col_idx().begin()));
  EXPECT_TRUE(std::equal(tt.values().begin(), tt.values().end(), a.values().begin()));
}

TEST(Csr, SymmetrizedHasSymmetricPattern) {
  const Csr a = Csr::from_triplets(3, 3, {{0, 1, 2.0}, {2, 0, 4.0}, {1, 1, 1.0}});
  EXPECT_FALSE(a.has_symmetric_pattern());
  const Csr s = a.symmetrized();
  EXPECT_TRUE(s.has_symmetric_pattern());
  // a_01 becomes (a_01 + a_10)/2 = 1.0 on both sides.
  EXPECT_DOUBLE_EQ(s.row_values(0)[static_cast<std::size_t>(std::distance(
                       s.row_cols(0).begin(),
                       std::find(s.row_cols(0).begin(), s.row_cols(0).end(), 1)))],
                   1.0);
}

TEST(Csr, FullDiagonalDetection) {
  EXPECT_TRUE(small_matrix().has_full_diagonal());  // 1, 3, 5 on the diagonal
  const Csr missing = Csr::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_FALSE(missing.has_full_diagonal());
}

TEST(Csr, ValidatesConstruction) {
  EXPECT_THROW(Csr(2, 2, {0, 1}, {0}, {1.0}), core::Error);        // row_ptr too short
  EXPECT_THROW(Csr(1, 1, {0, 1}, {5}, {1.0}), core::Error);        // column out of range
  EXPECT_THROW(Csr(1, 1, {0, 2}, {0}, {1.0}), core::Error);        // row_ptr end mismatch
  EXPECT_THROW(Csr::from_triplets(1, 1, {{0, 3, 1.0}}), core::Error);
}

TEST(Csr, EmptyMatrix) {
  const Csr a = Csr::from_triplets(0, 0, {});
  EXPECT_EQ(a.num_nonzeros(), 0);
  const Csr b = Csr::from_triplets(3, 3, {});
  std::vector<double> x(3, 1.0), y(3, -1.0);
  b.spmv(x, y);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DegreeStatsTest, MatchesHandComputation) {
  // Degrees: 2, 1, 2 -> avg 5/3, max 2, var = 2/9, cv = sqrt(2/9)/(5/3).
  const DegreeStats s = degree_stats(small_matrix());
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_NEAR(s.avg_degree, 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.cv, std::sqrt(2.0 / 9.0) / (5.0 / 3.0), 1e-12);
  EXPECT_NEAR(s.maxdr, 2.0 / 3.0, 1e-12);
}

TEST(DegreeStatsTest, UniformDegreesHaveZeroCv) {
  const Csr a = Csr::from_triplets(4, 4, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1}});
  const DegreeStats s = degree_stats(a);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_EQ(s.max_degree, 1);
}

}  // namespace
}  // namespace stfw::sparse
