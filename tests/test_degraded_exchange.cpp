#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/vpt.hpp"
#include "fault/fault_injector.hpp"
#include "partition/partitioner.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"
#include "sparse/generators.hpp"
#include "spmv/runner.hpp"

/// \file test_degraded_exchange.cpp
/// Rank-failure survival of exchange_resilient (docs/fault_model.md,
/// "Membership epochs and degraded mode"): exhaustive crash sweeps over
/// (rank, stage), repaired-plan replay instead of re-recording, the
/// environment-driven CI crash-matrix entry, and survivor continuation of
/// the distributed SpMV runner.

namespace stfw {
namespace {

using namespace std::chrono_literals;
using core::Rank;
using core::Vpt;
using fault::FaultConfig;
using fault::FaultInjector;
using runtime::Cluster;
using runtime::Comm;

std::vector<std::byte> pattern_bytes(Rank src, Rank dest) {
  const std::size_t len = static_cast<std::size_t>((src * 7 + dest * 13) % 40) + 1;
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((static_cast<std::size_t>(src) * 31 +
                                   static_cast<std::size_t>(dest) * 17 + i) &
                                  0xff);
  return b;
}

std::vector<OutboundMessage> all_to_all_sends(Rank K, Rank me) {
  std::vector<OutboundMessage> out;
  for (Rank d = 0; d < K; ++d) {
    if (d == me) continue;
    out.push_back({d, pattern_bytes(me, d)});
  }
  return out;
}

ResilienceOptions sweep_options() {
  ResilienceOptions opt;
  opt.retransmit_timeout = 5ms;
  opt.max_attempts = 8;
  return opt;
}

/// The survivor contract for one all-to-all exchange with `dead` crashed:
/// every alive-pair message arrives exactly once and intact; traffic from
/// the dead rank may be lost but never fabricated or duplicated.
void check_survivor_delivery(Rank K, Rank dead,
                             const std::vector<ResilientExchangeResult>& results,
                             const char* context) {
  for (Rank r = 0; r < K; ++r) {
    if (r == dead) continue;
    const auto& res = results[static_cast<std::size_t>(r)];
    std::map<Rank, int> seen;
    for (const InboundMessage& m : res.delivered) {
      EXPECT_EQ(m.bytes, pattern_bytes(m.source, r))
          << context << ": rank " << r << " received corrupt/fabricated payload from "
          << m.source;
      EXPECT_LT(seen[m.source]++, 1)
          << context << ": rank " << r << " received a duplicate from " << m.source;
    }
    for (Rank src = 0; src < K; ++src) {
      if (src == r || src == dead) continue;
      EXPECT_EQ(seen[src], 1) << context << ": alive-pair message " << src << "->" << r
                              << " was lost (dead rank " << dead << ")";
    }
  }
}

/// One crash configuration: `crash_rank` dies survivably at `crash_stage` of
/// a single resilient exchange. Asserts survivor completion, the survivor
/// delivery contract, and that every survivor finished at the new epoch.
void run_crash_config(const Vpt& vpt, Rank crash_rank, int crash_stage,
                      std::uint64_t seed) {
  const Rank K = vpt.size();
  const std::string context = vpt.to_string() + " crash rank " +
                              std::to_string(crash_rank) + " stage " +
                              std::to_string(crash_stage);
  SCOPED_TRACE(context);

  auto injector = std::make_shared<FaultInjector>([&] {
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.crash_rank = crash_rank;
    cfg.crash_stage = crash_stage;
    cfg.crash_survivable = true;
    return cfg;
  }());
  std::vector<ResilientExchangeResult> results(static_cast<std::size_t>(K));
  std::vector<LocalExchangeStats> stats(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  const std::uint32_t epoch_before = cluster.membership().epoch();
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    results[me] = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), sweep_options());
    stats[me] = stfw.last_stats();
  });
  cluster.set_fault_injector(nullptr);

  ASSERT_EQ(injector->counters().crashes, 1) << context;
  ASSERT_EQ(cluster.membership().failed(), std::vector<std::int32_t>{crash_rank});
  EXPECT_EQ(cluster.membership().epoch(), epoch_before + 1);

  check_survivor_delivery(K, crash_rank, results, context.c_str());
  for (Rank r = 0; r < K; ++r) {
    if (r == crash_rank) continue;
    const auto& res = results[static_cast<std::size_t>(r)];
    const auto& st = stats[static_cast<std::size_t>(r)];
    EXPECT_TRUE(res.degraded) << context << ": survivor " << r
                              << " did not learn the exchange was degraded";
    EXPECT_EQ(st.membership_epoch, epoch_before + 1)
        << context << ": survivor " << r << " finished under a stale epoch";
    // Alive-pair traffic must never appear in the loss report.
    for (const auto& lost : res.failure.lost)
      EXPECT_EQ(lost.dest, crash_rank)
          << context << ": survivor " << r << " lost alive-pair traffic to " << lost.dest;
  }
}

TEST(DegradedExchange, ExhaustiveCrashSweepK4) {
  const Vpt vpt({2, 2});
  for (Rank r = 0; r < vpt.size(); ++r)
    for (int s = 0; s < vpt.dim(); ++s) run_crash_config(vpt, r, s, 1);
}

TEST(DegradedExchange, ExhaustiveCrashSweepK8) {
  const Vpt vpt({2, 2, 2});
  for (Rank r = 0; r < vpt.size(); ++r)
    for (int s = 0; s < vpt.dim(); ++s) run_crash_config(vpt, r, s, 7);
}

TEST(DegradedExchange, ExhaustiveCrashSweepK16) {
  const Vpt vpt({4, 4});
  for (Rank r = 0; r < vpt.size(); ++r)
    for (int s = 0; s < vpt.dim(); ++s) run_crash_config(vpt, r, s, 20260806);
}

TEST(DegradedExchange, SeededCrashAtScaleK256) {
  const Vpt vpt = Vpt::balanced(256, 2);
  ASSERT_EQ(vpt.size(), 256);
  run_crash_config(vpt, /*crash_rank=*/37, /*crash_stage=*/1, 20260806);
}

TEST(DegradedExchange, RepairedPlanReplayNotReRecord) {
  // The tentpole acceptance bar: a cached plan is *incrementally repaired*
  // when membership shrinks, never re-recorded. Sequence: a plain exchange
  // records the plan; a healthy resilient exchange replays it; the crash
  // fires mid-replay; two further degraded exchanges replay the repaired
  // routing — the first computes the diff, the second reuses it.
  const Vpt vpt({2, 2});
  const Rank K = vpt.size();
  const Rank crash_rank = 2;
  auto injector = std::make_shared<FaultInjector>([&] {
    FaultConfig cfg;
    cfg.crash_rank = crash_rank;
    // Visits: plain warm exchange = 0..1, healthy resilient = 2..3; fire at
    // stage 0 of the crash exchange (the second resilient one).
    cfg.crash_visit = 2 * vpt.dim();
    cfg.crash_survivable = true;
    return cfg;
  }());

  struct PerRank {
    LocalExchangeStats crash_stats, first_degraded, second_degraded;
    ResilientExchangeResult first_result, second_result;
    bool reached_degraded = false;
  };
  std::vector<PerRank> ranks(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  const std::uint32_t epoch_before = cluster.membership().epoch();
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    const auto sends = all_to_all_sends(K, comm.rank());
    const ResilienceOptions opt = sweep_options();
    (void)stfw.exchange(sends);                    // records the plan
    (void)stfw.exchange_resilient(sends, opt);     // healthy replay
    (void)stfw.exchange_resilient(sends, opt);     // crash_rank dies in here
    ranks[me].crash_stats = stfw.last_stats();
    ranks[me].first_result = stfw.exchange_resilient(sends, opt);
    ranks[me].first_degraded = stfw.last_stats();
    ranks[me].second_result = stfw.exchange_resilient(sends, opt);
    ranks[me].second_degraded = stfw.last_stats();
    ranks[me].reached_degraded = true;
  });
  cluster.set_fault_injector(nullptr);

  ASSERT_EQ(cluster.membership().failed(), std::vector<std::int32_t>{crash_rank});
  for (Rank r = 0; r < K; ++r) {
    if (r == crash_rank) continue;
    const auto& pr = ranks[static_cast<std::size_t>(r)];
    ASSERT_TRUE(pr.reached_degraded) << "survivor " << r << " did not finish";
    // The crash round ends at the new epoch on every survivor, and each
    // survivor either watched the epoch advance mid-exchange or entered
    // already degraded — in which case it computed the plan repair there.
    EXPECT_EQ(pr.crash_stats.membership_epoch, epoch_before + 1) << "survivor " << r;
    EXPECT_GE(pr.crash_stats.epoch_transitions + pr.crash_stats.plan_repairs, 1)
        << "survivor " << r << " never registered the membership change";

    for (const LocalExchangeStats* st : {&pr.first_degraded, &pr.second_degraded}) {
      EXPECT_EQ(st->plan_builds, 0) << "survivor " << r << " re-recorded the plan";
      EXPECT_EQ(st->plan_hits, 1) << "survivor " << r << " abandoned the cached plan";
      EXPECT_EQ(st->membership_epoch, epoch_before + 1);
    }
    // The diff is computed exactly once and then served from the single-slot
    // cache. Which exchange computes it depends on a race the protocol
    // allows: a survivor that snapshots membership after the death starts
    // the crash-round exchange already degraded and repairs there.
    EXPECT_EQ(pr.crash_stats.plan_repairs + pr.first_degraded.plan_repairs, 1)
        << "survivor " << r;
    EXPECT_EQ(pr.second_degraded.plan_repairs, 0)
        << "survivor " << r << " re-diffed an unchanged (pattern, epoch) pair";
    EXPECT_TRUE(pr.first_result.degraded);
    EXPECT_TRUE(pr.second_result.degraded);
    // Degraded replay still delivers every alive-pair message exactly once.
    std::map<Rank, int> seen;
    for (const InboundMessage& m : pr.second_result.delivered) {
      EXPECT_EQ(m.bytes, pattern_bytes(m.source, r));
      EXPECT_LT(seen[m.source]++, 1);
    }
    for (Rank src = 0; src < K; ++src) {
      if (src != r && src != crash_rank) {
        EXPECT_EQ(seen[src], 1) << src << "->" << r;
      }
    }
  }
}

TEST(DegradedExchange, EnvCrashMatrixEntry) {
  // The CI crash-matrix job drives this test through STFW_FAULT_CRASH_*:
  // a warm plain exchange records the plan (visits 0..n-1 of every rank),
  // then three resilient exchanges run (visits n..4n-1). CI picks
  // STFW_FAULT_CRASH_VISIT in [n, 2n) to crash at each stage of the first
  // resilient exchange and in [2n, 3n) to crash during plan *replay*; the
  // final exchange is always post-crash and must use the repaired plan.
  if (!core::env_present("STFW_FAULT_CRASH_RANK"))
    GTEST_SKIP() << "set STFW_FAULT_CRASH_RANK/_VISIT/_SURVIVABLE to run";
  const FaultConfig cfg = FaultConfig::from_env();
  ASSERT_TRUE(cfg.crash_survivable) << "the crash matrix must use survivable crashes";
  const Vpt vpt({4, 2, 2});
  const Rank K = vpt.size();
  const auto crash_rank = static_cast<Rank>(cfg.crash_rank);
  ASSERT_GE(cfg.crash_rank, 0);
  ASSERT_LT(crash_rank, K);
  ASSERT_GE(cfg.crash_visit, vpt.dim()) << "visits below n would kill the plain warm "
                                           "exchange, which cannot survive rank failure";

  struct PerRank {
    std::vector<ResilientExchangeResult> results;
    LocalExchangeStats final_stats;
    std::int64_t repairs = 0;
    bool finished = false;
  };
  std::vector<PerRank> ranks(static_cast<std::size_t>(K));
  auto injector = std::make_shared<FaultInjector>(cfg);
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    const auto sends = all_to_all_sends(K, comm.rank());
    ResilienceOptions opt;
    opt.retransmit_timeout = 5ms;
    opt.max_attempts = 10;
    (void)stfw.exchange(sends);  // records the plan
    for (int round = 0; round < 3; ++round) {
      ranks[me].results.push_back(stfw.exchange_resilient(sends, opt));
      ranks[me].repairs += stfw.last_stats().plan_repairs;
    }
    ranks[me].final_stats = stfw.last_stats();
    ranks[me].finished = true;
  });
  cluster.set_fault_injector(nullptr);

  ASSERT_EQ(injector->counters().crashes, 1);
  ASSERT_EQ(cluster.membership().failed(), std::vector<std::int32_t>{crash_rank});
  for (Rank r = 0; r < K; ++r) {
    if (r == crash_rank) continue;
    const auto& pr = ranks[static_cast<std::size_t>(r)];
    ASSERT_TRUE(pr.finished) << "survivor " << r << " did not complete all exchanges";
    ASSERT_EQ(pr.results.size(), 3u);
    // The final exchange always starts degraded: repaired replay, no rebuild.
    EXPECT_EQ(pr.final_stats.plan_builds, 0) << "survivor " << r;
    EXPECT_EQ(pr.final_stats.plan_hits, 1) << "survivor " << r;
    EXPECT_GE(pr.repairs, 1) << "survivor " << r << " never repaired the cached plan";
    EXPECT_EQ(pr.final_stats.membership_epoch, cluster.membership().epoch());
    EXPECT_TRUE(pr.results.back().degraded);
    // Oracle over every post-warm exchange: exactly-once among survivors,
    // nothing fabricated. Pre-crash rounds satisfy it trivially (full
    // membership means the dead set is empty for that round's deliveries,
    // but a message from any rank must still be unique and intact).
    for (const auto& res : pr.results) {
      std::map<Rank, int> seen;
      for (const InboundMessage& m : res.delivered) {
        EXPECT_EQ(m.bytes, pattern_bytes(m.source, r));
        EXPECT_LT(seen[m.source]++, 1);
      }
    }
    // The final, fully-degraded round must deliver all alive-pair traffic.
    std::map<Rank, int> seen;
    for (const InboundMessage& m : pr.results.back().delivered) ++seen[m.source];
    for (Rank src = 0; src < K; ++src) {
      if (src != r && src != crash_rank) {
        EXPECT_EQ(seen[src], 1) << src << "->" << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Survivor continuation of the distributed SpMV runner

/// SpmvProblem keeps a pointer to the matrix, so the fixture owns both.
struct ProblemFixture {
  sparse::Csr a;
  spmv::SpmvProblem problem;

  explicit ProblemFixture(Rank K)
      : a(sparse::generate(
            sparse::scaled_spec(sparse::find_paper_matrix("pattern1"), 0.05, 128), 13)),
        problem(a, partition::partition_rows(a, [K] {
                  partition::PartitionOptions opts;
                  opts.num_parts = K;
                  return opts;
                }()),
                K) {}
};

std::vector<double> unit_vector(std::size_t n) { return std::vector<double>(n, 1.0); }

TEST(ResilientSpmvRunner, HealthyRunMatchesPlainRunnerBitIdentical) {
  constexpr Rank K = 8;
  const ProblemFixture fx(K);
  const spmv::SpmvProblem& problem = fx.problem;
  const Vpt vpt({2, 2, 2});
  Cluster cluster(K);
  const auto x0 = unit_vector(static_cast<std::size_t>(problem.matrix().num_rows()));
  const auto plain = spmv::run_distributed(cluster, problem, vpt, x0, 3);
  spmv::ResilientRunReport report;
  const auto resilient =
      spmv::run_distributed_resilient(cluster, problem, vpt, x0, 3, &report);
  ASSERT_EQ(resilient.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_DOUBLE_EQ(resilient[i], plain[i]) << "index " << i;
  EXPECT_TRUE(report.failed_ranks.empty());
  EXPECT_EQ(report.degraded_iterations, 0);
  EXPECT_EQ(report.plan_repairs, 0);
}

TEST(ResilientSpmvRunner, SurvivorsKeepIteratingAfterMidRunCrash) {
  constexpr Rank K = 8;
  constexpr Rank crash_rank = 3;
  constexpr int iterations = 4;
  const ProblemFixture fx(K);
  const spmv::SpmvProblem& problem = fx.problem;
  const Vpt vpt({2, 2, 2});
  auto injector = std::make_shared<FaultInjector>([&] {
    FaultConfig cfg;
    cfg.crash_rank = crash_rank;
    cfg.crash_visit = 2 * vpt.dim();  // stage 0 of the third iteration's exchange
    cfg.crash_survivable = true;
    return cfg;
  }());
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  const auto x0 = unit_vector(static_cast<std::size_t>(problem.matrix().num_rows()));
  spmv::ResilientRunReport report;
  const auto result =
      spmv::run_distributed_resilient(cluster, problem, vpt, x0, iterations, &report);
  cluster.set_fault_injector(nullptr);

  ASSERT_EQ(injector->counters().crashes, 1);
  ASSERT_EQ(report.failed_ranks, std::vector<std::int32_t>{crash_rank});
  EXPECT_GE(report.degraded_iterations, 1);
  EXPECT_EQ(report.membership_epoch, cluster.membership().epoch());

  // Survivors finish all iterations with finite values; the dead rank never
  // writes its owned rows, so they keep the result buffer's initial zeros.
  const auto& owned_by_dead = problem.plan(crash_rank).owned_rows;
  std::vector<bool> dead_owned(result.size(), false);
  for (const auto row : owned_by_dead) dead_owned[static_cast<std::size_t>(row)] = true;
  for (std::size_t i = 0; i < result.size(); ++i) {
    if (dead_owned[i])
      EXPECT_EQ(result[i], 0.0) << "row " << i << " owned by the dead rank was written";
    else
      EXPECT_TRUE(std::isfinite(result[i])) << "row " << i;
  }

  // First two iterations ran on full membership, so survivor rows that only
  // depend on pre-crash data match the healthy run at those iterations; the
  // strongest cheap global statement is that at least the healthy prefix of
  // the iteration count was bit-equal, which the degraded_iterations counter
  // pins: iterations - degraded must be >= 2 here.
  EXPECT_LE(report.degraded_iterations, iterations - 2);
}

}  // namespace
}  // namespace stfw
