// Strict environment-knob parsing (ISSUE 4 satellite bugfix): a mistyped
// STFW_* value must be a loud core::ValidationError, never a silently
// truncated strtod/strtoull prefix.

#include "core/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>

#include "core/error.hpp"

namespace stfw::core {
namespace {

constexpr const char* kVar = "STFW_TEST_ENV_KNOB";

class EnvVar : public ::testing::Test {
protected:
  void TearDown() override { ::unsetenv(kVar); }
  static void set(const char* value) { ::setenv(kVar, value, 1); }
};

TEST(ParseDouble, AcceptsFullTokens) {
  EXPECT_DOUBLE_EQ(parse_double("0.25", "knob"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-3", "knob"), -3.0);
  EXPECT_DOUBLE_EQ(parse_double("1e-3", "knob"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_double("  0.5  ", "knob"), 0.5);  // whitespace trimmed
}

TEST(ParseDouble, RejectsPartialTokensAndGarbage) {
  EXPECT_THROW(parse_double("0.1x", "knob"), ValidationError);
  EXPECT_THROW(parse_double("x0.1", "knob"), ValidationError);
  EXPECT_THROW(parse_double("1.2 3", "knob"), ValidationError);
  EXPECT_THROW(parse_double("", "knob"), ValidationError);
  EXPECT_THROW(parse_double("   ", "knob"), ValidationError);
  EXPECT_THROW(parse_double("nanb", "knob"), ValidationError);
  EXPECT_THROW(parse_double("1e999", "knob"), ValidationError);  // out of range
}

TEST(ParseInt, AcceptsFullTokens) {
  EXPECT_EQ(parse_int("42", "knob"), 42);
  EXPECT_EQ(parse_int("-7", "knob"), -7);
  EXPECT_EQ(parse_int(" 600000 ", "knob"), 600000);
}

TEST(ParseInt, RejectsPartialTokensAndOverflow) {
  EXPECT_THROW(parse_int("12abc", "knob"), ValidationError);
  EXPECT_THROW(parse_int("1.5", "knob"), ValidationError);
  EXPECT_THROW(parse_int("", "knob"), ValidationError);
  EXPECT_THROW(parse_int("99999999999999999999999", "knob"), ValidationError);
}

TEST(ParseU64, AcceptsFullTokens) {
  EXPECT_EQ(parse_u64("0", "knob"), 0u);
  EXPECT_EQ(parse_u64("20190717", "knob"), 20190717u);
  EXPECT_EQ(parse_u64("18446744073709551615", "knob"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsNegativesPartialTokensAndOverflow) {
  // strtoull silently wraps negatives; the strict parser must not.
  EXPECT_THROW(parse_u64("-1", "knob"), ValidationError);
  EXPECT_THROW(parse_u64("12 34", "knob"), ValidationError);
  EXPECT_THROW(parse_u64("0x10z", "knob"), ValidationError);
  EXPECT_THROW(parse_u64("18446744073709551616", "knob"), ValidationError);
}

TEST(ParseFlag, AcceptsTheFullSwitchVocabularyCaseInsensitively) {
  for (const char* yes : {"1", "true", "TRUE", "True", "on", "ON", "yes", "YES"}) {
    EXPECT_TRUE(parse_flag(yes, "knob")) << yes;
  }
  for (const char* no : {"0", "false", "FALSE", "False", "off", "OFF", "no", "NO"}) {
    EXPECT_FALSE(parse_flag(no, "knob")) << no;
  }
}

TEST(ParseFlag, RejectsTyposInsteadOfGuessing) {
  // "STFW_VALIDATE=flase" must not silently enable (or disable) anything.
  EXPECT_THROW(parse_flag("flase", "knob"), ValidationError);
  EXPECT_THROW(parse_flag("2", "knob"), ValidationError);
  EXPECT_THROW(parse_flag("", "knob"), ValidationError);
  EXPECT_THROW(parse_flag("yes!", "knob"), ValidationError);
}

TEST(ParseErrors, NameTheOffendingValue) {
  try {
    parse_double("0.1x", "STFW_BENCH_SCALE");
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("STFW_BENCH_SCALE"), std::string::npos) << what;
    EXPECT_NE(what.find("0.1x"), std::string::npos) << what;
  }
}

TEST_F(EnvVar, UnsetAndEmptyFallBack) {
  ::unsetenv(kVar);
  EXPECT_DOUBLE_EQ(env_double(kVar, 0.5), 0.5);
  EXPECT_EQ(env_int(kVar, -3), -3);
  EXPECT_EQ(env_u64(kVar, 9u), 9u);
  set("");
  EXPECT_DOUBLE_EQ(env_double(kVar, 0.5), 0.5);
  EXPECT_EQ(env_int(kVar, -3), -3);
  EXPECT_EQ(env_u64(kVar, 9u), 9u);
}

TEST_F(EnvVar, ValidValuesOverrideFallback) {
  set("0.125");
  EXPECT_DOUBLE_EQ(env_double(kVar, 0.5), 0.125);
  set("1234");
  EXPECT_EQ(env_int(kVar, -3), 1234);
  EXPECT_EQ(env_u64(kVar, 9u), 1234u);
}

TEST_F(EnvVar, MalformedValuesThrowInsteadOfTruncating) {
  set("0.1x");  // the historical silent-garbage case
  EXPECT_THROW(env_double(kVar, 0.5), ValidationError);
  set("10ms");
  EXPECT_THROW(env_int(kVar, 0), ValidationError);
  EXPECT_THROW(env_u64(kVar, 0), ValidationError);
}

TEST_F(EnvVar, FlagParsesStrictlyWithFallback) {
  ::unsetenv(kVar);
  EXPECT_TRUE(env_flag(kVar, true));
  EXPECT_FALSE(env_flag(kVar, false));
  set("");
  EXPECT_TRUE(env_flag(kVar, true));
  set("off");
  EXPECT_FALSE(env_flag(kVar, true));
  set("Yes");
  EXPECT_TRUE(env_flag(kVar, false));
  set("flase");
  EXPECT_THROW(env_flag(kVar, true), ValidationError);
}

TEST_F(EnvVar, StringReturnsValueOrFallback) {
  ::unsetenv(kVar);
  EXPECT_EQ(env_string(kVar, "dflt"), "dflt");
  set("");
  EXPECT_EQ(env_string(kVar, "dflt"), "dflt");
  set("/tmp/bench-json");
  EXPECT_EQ(env_string(kVar, "dflt"), "/tmp/bench-json");
}

TEST_F(EnvVar, PresentTracksNonEmptyValues) {
  ::unsetenv(kVar);
  EXPECT_FALSE(env_present(kVar));
  set("");
  EXPECT_FALSE(env_present(kVar));
  set("0");  // present even when the value parses falsy
  EXPECT_TRUE(env_present(kVar));
}

}  // namespace
}  // namespace stfw::core
