// Satellite bugfixes of the dependency-driven exchange: the plain exchange
// used to take no deadline, so a rank lost mid-exchange left every peer
// blocked in an untimed stage wait forever (the per-stage barrier hid the
// hang in CI, where all ranks always arrive). Each stage wait now carries a
// Deadline derived from STFW_EXCHANGE_DEADLINE_MS and the failure surfaces
// as a named error. Also covers next_backoff, the overflow-safe replacement
// of the resilient retransmit backoff's unchecked double -> milliseconds
// cast.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/vpt.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

namespace stfw {
namespace {

using namespace std::chrono_literals;
using std::chrono::milliseconds;
using core::Rank;
using core::Vpt;

std::vector<OutboundMessage> ring_sends(Rank me, Rank K) {
  std::vector<OutboundMessage> sends;
  sends.push_back(OutboundMessage{(me + 1) % K, std::vector<std::byte>(32, std::byte{0x11})});
  return sends;
}

TEST(ExchangeDeadline, DefaultsToThirtySecondsAndIsSettable) {
  runtime::Cluster cluster(2);
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, Vpt({2}));
    EXPECT_EQ(communicator.exchange_deadline(), 30000ms);
    communicator.set_exchange_deadline(250ms);
    EXPECT_EQ(communicator.exchange_deadline(), 250ms);
  });
}

/// A non-survivable injected crash mid-exchange (after stage 0 completed)
/// must escape Cluster::run as the injected error — the peers' stage waits
/// are unblocked by the abort and filtered as secondary noise.
TEST(ExchangeDeadline, NonSurvivableCrashMidExchangeRaisesNamedError) {
  constexpr Rank K = 8;
  const Vpt vpt({4, 2});
  auto injector = std::make_shared<fault::FaultInjector>([] {
    fault::FaultConfig cfg;
    cfg.crash_rank = 1;
    cfg.crash_stage = 1;  // mid-exchange: stage 0 already ran
    cfg.crash_survivable = false;
    return cfg;
  }());
  runtime::Cluster cluster(K);
  cluster.set_fault_injector(injector);
  bool named = false;
  try {
    cluster.run([&](runtime::Comm& comm) {
      StfwCommunicator communicator(comm, vpt);
      communicator.set_exchange_deadline(5000ms);
      (void)communicator.exchange(ring_sends(static_cast<Rank>(comm.rank()), K));
    });
  } catch (const fault::FaultInjectedError&) {
    named = true;  // the primary cause, not a peer's secondary abort
  } catch (const core::MultiRankError& e) {
    // The crash racing a peer's own failure is acceptable as long as the
    // injected fault is named in the aggregate.
    named = std::string(e.what()).find("fault") != std::string::npos;
    EXPECT_TRUE(named) << e.what();
  }
  cluster.set_fault_injector(nullptr);
  EXPECT_TRUE(named) << "the injected crash completed silently";
  EXPECT_EQ(injector->counters().crashes, 1);
}

/// A rank that never joins the exchange (returned early; in a real
/// deployment: wedged or dead without membership noticing) must surface as
/// core::TimeoutError naming the missing source — this hung forever before
/// the stage waits carried deadlines.
TEST(ExchangeDeadline, LostRankSurfacesAsTimeoutNotHang) {
  constexpr Rank K = 8;
  const Vpt vpt({4, 2});
  runtime::Cluster cluster(K);
  bool timed_out = false;
  try {
    cluster.run([&](runtime::Comm& comm) {
      const auto me = static_cast<Rank>(comm.rank());
      if (me == 0) return;  // the lost rank
      StfwCommunicator communicator(comm, vpt);
      communicator.set_exchange_deadline(300ms);
      (void)communicator.exchange(ring_sends(me, K));
    });
  } catch (const core::MultiRankError& e) {
    timed_out = std::string(e.what()).find("timeout") != std::string::npos;
    EXPECT_TRUE(timed_out) << e.what();
  } catch (const core::TimeoutError& e) {
    timed_out = true;
    EXPECT_NE(std::string(e.what()).find("recv_from_each"), std::string::npos) << e.what();
  }
  EXPECT_TRUE(timed_out) << "the exchange completed despite a lost rank";
}

/// Deadline 0 must mean "wait forever" — the pre-deadline behaviour stays
/// reachable; a healthy exchange completes under it.
TEST(ExchangeDeadline, ZeroDeadlineStillCompletesHealthyExchanges) {
  constexpr Rank K = 8;
  const Vpt vpt({2, 2, 2});
  runtime::Cluster cluster(K);
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    StfwCommunicator communicator(comm, vpt);
    communicator.set_exchange_deadline(0ms);
    const auto inbox = communicator.exchange(ring_sends(me, K));
    ASSERT_EQ(inbox.size(), 1u);
    EXPECT_EQ(inbox[0].source, (me + K - 1) % K);
  });
}

// ---------------------------------------------------------------------------
// next_backoff: the clamp must happen before the double -> milliseconds
// cast, so no (current, factor) combination produces a negative or wrapped
// delay. The old code computed min(scaled, cap) with cap itself derived from
// an overflowing 8 * retransmit_timeout.

TEST(NextBackoff, GrowsGeometricallyInsideTheCap) {
  EXPECT_EQ(next_backoff(10ms, 2.0, 50ms, 10000ms), 20ms);
  EXPECT_EQ(next_backoff(100ms, 1.5, 50ms, 10000ms), 150ms);
}

TEST(NextBackoff, ClampsToEightRetransmitTimeoutsOrStageDeadline) {
  EXPECT_EQ(next_backoff(300ms, 2.0, 50ms, 10000ms), 400ms);   // 8 * rt
  EXPECT_EQ(next_backoff(300ms, 2.0, 50ms, 250ms), 250ms);     // stage deadline
}

TEST(NextBackoff, LargeFactorDoesNotWrapNegative) {
  const auto b = next_backoff(1000ms, 1e300, 50ms, 10000ms);
  EXPECT_GE(b.count(), 0);
  EXPECT_EQ(b, 400ms);  // clamped to 8 * retransmit_timeout
}

TEST(NextBackoff, MaxAccumulatedBackoffDoesNotOverflow) {
  const auto big = milliseconds{std::numeric_limits<milliseconds::rep>::max()};
  const auto b = next_backoff(big, 2.0, big, big);
  EXPECT_GE(b.count(), 0);
  EXPECT_LE(b, big);  // the 8x term is skipped rather than overflowed
}

TEST(NextBackoff, PathologicalFactorsFloorAtZero) {
  EXPECT_EQ(next_backoff(100ms, -3.0, 50ms, 10000ms), 0ms);
  EXPECT_EQ(next_backoff(100ms, std::numeric_limits<double>::quiet_NaN(), 50ms, 10000ms),
            0ms);
  EXPECT_EQ(next_backoff(100ms, 2.0, 50ms, -5ms), 0ms);  // negative deadline
}

}  // namespace
}  // namespace stfw
