// Differential test of every exchange implementation (ISSUE 4 satellite):
// the planned fast path, the unplanned Algorithm 1, the resilient frame
// protocol and the BL/direct baseline must deliver byte-identical multisets
// of InboundMessages for the same send pattern. Any divergence between the
// recorded-plan replay and the paths it shortcuts is a routing bug.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

using SendSets = std::vector<std::vector<OutboundMessage>>;
/// received[r], sorted (source, bytes) — the order-insensitive multiset.
using Inboxes = std::vector<std::vector<InboundMessage>>;

/// Seeded skewed pattern: rank 0 fans out to everyone, a few "hub" ranks to
/// many, the rest to a handful; sizes span empty through `max_bytes`, with
/// at least one exactly-empty and one exactly-max message in the set.
SendSets skewed_sendsets(Rank num_ranks, std::uint64_t seed, std::size_t max_bytes) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dest_dist(0, num_ranks - 1);
  std::uniform_int_distribution<std::size_t> len_dist(0, 96);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  SendSets sets(static_cast<std::size_t>(num_ranks));
  auto add = [&](Rank src, Rank dest, std::size_t len) {
    if (dest == src) dest = (dest + 1) % num_ranks;  // SendSets exclude self
    OutboundMessage m;
    m.dest = dest;
    m.bytes.resize(len);
    for (std::byte& b : m.bytes) b = static_cast<std::byte>(byte_dist(rng));
    sets[static_cast<std::size_t>(src)].push_back(std::move(m));
  };
  for (Rank dest = 1; dest < num_ranks; ++dest) add(0, dest, len_dist(rng));
  for (Rank src = 1; src < num_ranks; ++src) {
    const int fanout = (src % 5 == 1) ? std::max(1, num_ranks / 2) : 1 + src % 4;
    for (int i = 0; i < fanout; ++i) add(src, dest_dist(rng), len_dist(rng));
  }
  // Edge payloads the generators above may have missed: an empty message, a
  // max-size message, and a duplicate (src, dest) pair.
  add(1 % num_ranks, num_ranks - 1, 0);
  add(num_ranks - 1, 0, max_bytes);
  add(1 % num_ranks, num_ranks - 1, 7);
  add(1 % num_ranks, num_ranks - 1, 7);
  return sets;
}

void sort_inbox(std::vector<InboundMessage>& inbox) {
  std::sort(inbox.begin(), inbox.end(), [](const InboundMessage& a, const InboundMessage& b) {
    return a.source != b.source ? a.source < b.source : a.bytes < b.bytes;
  });
}

enum class Mode { kUnplanned, kCachedReplay, kExplicitPlan, kResilient };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kUnplanned: return "unplanned";
    case Mode::kCachedReplay: return "cached-replay";
    case Mode::kExplicitPlan: return "explicit-plan";
    case Mode::kResilient: return "resilient";
  }
  return "?";
}

/// One collective exchange in `mode`; returns per-rank sorted inboxes.
Inboxes run_mode(runtime::Cluster& cluster, const Vpt& vpt, const SendSets& sets, Mode mode) {
  Inboxes received(sets.size());
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    const auto& sends = sets[static_cast<std::size_t>(comm.rank())];
    std::vector<InboundMessage> inbox;
    switch (mode) {
      case Mode::kUnplanned:
        communicator.set_plan_cache_capacity(0);
        inbox = communicator.exchange(sends);
        break;
      case Mode::kCachedReplay:
        (void)communicator.exchange(sends);  // records the plan
        inbox = communicator.exchange(sends);
        EXPECT_EQ(communicator.last_stats().plan_hits, 1);
        break;
      case Mode::kExplicitPlan: {
        const auto plan = communicator.plan(sends);
        inbox = communicator.exchange(*plan, sends);
        break;
      }
      case Mode::kResilient: {
        ResilientExchangeResult r = communicator.exchange_resilient(sends);
        EXPECT_TRUE(r.fully_recovered);
        EXPECT_TRUE(r.failure.empty());
        inbox = std::move(r.delivered);
        break;
      }
    }
    sort_inbox(inbox);
    received[static_cast<std::size_t>(comm.rank())] = std::move(inbox);
  });
  return received;
}

void expect_same_inboxes(const Inboxes& reference, const Inboxes& other, const char* label) {
  ASSERT_EQ(reference.size(), other.size());
  for (std::size_t r = 0; r < reference.size(); ++r) {
    ASSERT_EQ(reference[r].size(), other[r].size()) << label << ", rank " << r;
    for (std::size_t i = 0; i < reference[r].size(); ++i) {
      EXPECT_EQ(reference[r][i].source, other[r][i].source) << label << ", rank " << r;
      EXPECT_TRUE(reference[r][i].bytes == other[r][i].bytes)
          << label << ": payload bytes diverge at rank " << r << ", message " << i;
    }
  }
}

struct EquivalenceCase {
  Rank num_ranks;
  std::vector<int> dims;
  std::uint64_t seed;
  std::size_t max_bytes;
};

class ExchangeEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ExchangeEquivalence, AllModesDeliverIdenticalMultisets) {
  const auto& param = GetParam();
  const Vpt vpt(param.dims);
  ASSERT_EQ(vpt.size(), param.num_ranks);
  const SendSets sets = skewed_sendsets(param.num_ranks, param.seed, param.max_bytes);

  runtime::Cluster cluster(param.num_ranks);
  const Inboxes reference = run_mode(cluster, Vpt::direct(param.num_ranks), sets,
                                     Mode::kUnplanned);  // BL baseline
  for (const Mode mode :
       {Mode::kUnplanned, Mode::kCachedReplay, Mode::kExplicitPlan, Mode::kResilient}) {
    const Inboxes got = run_mode(cluster, vpt, sets, mode);
    expect_same_inboxes(reference, got, mode_name(mode));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExchangeEquivalence,
    ::testing::Values(EquivalenceCase{8, {2, 2, 2}, 101, 4096},
                      EquivalenceCase{8, {4, 2}, 202, 65536},
                      EquivalenceCase{32, {4, 8}, 303, 4096},
                      EquivalenceCase{32, {2, 4, 4}, 404, 16384},
                      EquivalenceCase{128, {16, 8}, 505, 2048},
                      EquivalenceCase{128, {4, 4, 8}, 606, 2048}));

/// A rank that changes its pattern between iterations must not poison the
/// peers that kept theirs: their cached replays detect the drift mid-flight,
/// fall back to Algorithm 1, and everything is still delivered exactly once.
TEST(ExchangeEquivalence, MixedPatternDriftFallsBackCorrectly) {
  constexpr Rank kRanks = 8;
  const Vpt vpt({2, 2, 2});
  const SendSets first = skewed_sendsets(kRanks, 888, 1024);
  SendSets second = first;
  // Rank 0 grows one payload and adds a new destination; everyone else keeps
  // an identical pattern (and therefore hits the plan cache).
  second[0][0].bytes.resize(second[0][0].bytes.size() + 13, std::byte{0x5a});
  second[0].push_back(OutboundMessage{kRanks - 1, {std::byte{1}, std::byte{2}}});

  runtime::Cluster cluster(kRanks);
  Inboxes got(kRanks);
  std::vector<LocalExchangeStats> stats(kRanks);
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    StfwCommunicator communicator(comm, vpt);
    (void)communicator.exchange(first[me]);  // records `first` on all ranks
    auto inbox = communicator.exchange(second[me]);
    stats[me] = communicator.last_stats();
    sort_inbox(inbox);
    got[me] = std::move(inbox);
  });

  // Rank 0's pattern changed, so it rebuilt; at least one peer must have
  // started a replay and detected drift (rank 0's stage-0 neighbors see
  // different frames).
  EXPECT_EQ(stats[0].plan_builds, 1);
  EXPECT_EQ(stats[0].plan_hits, 0);
  std::int64_t fallbacks = 0;
  for (const auto& s : stats) fallbacks += s.plan_fallbacks;
  EXPECT_GE(fallbacks, 1);

  const Inboxes reference = run_mode(cluster, Vpt::direct(kRanks), second, Mode::kUnplanned);
  expect_same_inboxes(reference, got, "drift-fallback");
}

/// Tentpole differential (dependency-driven progress): the overlap hook and
/// the STFW_BARRIER_SYNC bulk-synchronous emulation must not change what is
/// delivered. Runs each variant over both the recording and the cached-replay
/// path and compares against the BL/direct baseline byte-for-byte; also
/// checks the hook fires exactly once per exchange.
TEST(ExchangeEquivalence, OverlapAndBarrierSyncDeliverIdenticalMultisets) {
  constexpr Rank kRanks = 16;
  const Vpt vpt({4, 4});
  const SendSets sets = skewed_sendsets(kRanks, 777, 2048);
  runtime::Cluster cluster(kRanks);

  auto run_with = [&](bool use_hook, bool barrier_sync, const char* label) {
    Inboxes received(kRanks);
    std::vector<std::int64_t> hook_calls(kRanks, 0);
    cluster.run([&](runtime::Comm& comm) {
      const auto me = static_cast<std::size_t>(comm.rank());
      StfwCommunicator communicator(comm, vpt);
      communicator.set_barrier_sync(barrier_sync);
      std::vector<InboundMessage> inbox;
      if (use_hook) {
        const OverlapHook hook = [&] { ++hook_calls[me]; };
        (void)communicator.exchange(sets[me], hook);    // records the plan
        inbox = communicator.exchange(sets[me], hook);  // cached replay
      } else {
        (void)communicator.exchange(sets[me]);
        inbox = communicator.exchange(sets[me]);
      }
      EXPECT_EQ(communicator.last_stats().plan_hits, 1) << label;
      sort_inbox(inbox);
      received[me] = std::move(inbox);
    });
    if (use_hook)
      for (Rank r = 0; r < kRanks; ++r)
        EXPECT_EQ(hook_calls[static_cast<std::size_t>(r)], 2)
            << label << ": hook must fire once per exchange, rank " << r;
    return received;
  };

  const Inboxes reference = run_mode(cluster, Vpt::direct(kRanks), sets, Mode::kUnplanned);
  expect_same_inboxes(reference, run_with(false, false, "overlap-off"), "overlap-off");
  expect_same_inboxes(reference, run_with(true, false, "overlap-on"), "overlap-on");
  expect_same_inboxes(reference, run_with(false, true, "barrier-sync"), "barrier-sync");
  expect_same_inboxes(reference, run_with(true, true, "overlap+barrier-sync"),
                      "overlap+barrier-sync");
}

/// Plans survive interleaving with other traffic: planned replays, resilient
/// exchanges and unplanned exchanges on the same communicator stay in
/// epoch lockstep.
TEST(ExchangeEquivalence, ModesInterleaveOnOneCommunicator) {
  constexpr Rank kRanks = 8;
  const Vpt vpt({4, 2});
  const SendSets sets = skewed_sendsets(kRanks, 999, 512);

  runtime::Cluster cluster(kRanks);
  Inboxes a(kRanks), b(kRanks), c(kRanks);
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    StfwCommunicator communicator(comm, vpt);
    auto first = communicator.exchange(sets[me]);       // records
    auto second = communicator.exchange(sets[me]);      // cached replay
    ResilientExchangeResult r = communicator.exchange_resilient(sets[me]);
    EXPECT_TRUE(r.fully_recovered);
    sort_inbox(first);
    sort_inbox(second);
    sort_inbox(r.delivered);
    a[me] = std::move(first);
    b[me] = std::move(second);
    c[me] = std::move(r.delivered);
  });
  expect_same_inboxes(a, b, "cached replay after record");
  expect_same_inboxes(a, c, "resilient after cached");
}

}  // namespace
}  // namespace stfw
