// Unit tests of the persistent exchange-plan layer (ISSUE 4 tentpole): the
// pattern-keyed transparent cache inside StfwCommunicator::exchange(), the
// explicit plan()/exchange(plan, payloads) API, and the plan-reuse counters
// surfaced through spmv::run_distributed.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "core/error.hpp"
#include "core/exchange_plan.hpp"
#include "core/vpt.hpp"
#include "partition/partitioner.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"
#include "sparse/generators.hpp"
#include "spmv/runner.hpp"

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

using SendSets = std::vector<std::vector<OutboundMessage>>;

std::vector<std::byte> payload(std::size_t len, int fill) {
  return std::vector<std::byte>(len, static_cast<std::byte>(fill));
}

/// Fixed ring pattern; `salt` varies payload contents only (same signature),
/// `extra_bytes` grows every rank's first message (a different signature on
/// all ranks, so the whole cluster misses or hits together).
SendSets ring_sendsets(Rank num_ranks, int salt, std::size_t extra_bytes = 0) {
  SendSets sets(static_cast<std::size_t>(num_ranks));
  for (Rank r = 0; r < num_ranks; ++r) {
    const std::size_t len = 16 + static_cast<std::size_t>(r) + extra_bytes;
    sets[static_cast<std::size_t>(r)].push_back(
        OutboundMessage{(r + 1) % num_ranks, payload(len, salt + r)});
    sets[static_cast<std::size_t>(r)].push_back(
        OutboundMessage{(r + 2) % num_ranks, payload(8, salt - r)});
  }
  return sets;
}

TEST(PatternSignature, KeyedOnDestsAndSizesNotOrderOrPayload) {
  using core::PatternSignature;
  const std::vector<std::pair<Rank, std::uint32_t>> a{{1, 16}, {2, 8}, {3, 0}};
  const std::vector<std::pair<Rank, std::uint32_t>> reordered{{3, 0}, {1, 16}, {2, 8}};
  const std::vector<std::pair<Rank, std::uint32_t>> resized{{1, 16}, {2, 9}, {3, 0}};
  const std::vector<std::pair<Rank, std::uint32_t>> redirected{{1, 16}, {4, 8}, {3, 0}};

  EXPECT_EQ(PatternSignature::of(a).key, PatternSignature::of(reordered).key);
  // Same key, but the order-preserving sequence distinguishes them: a cache
  // hit requires the exact send order (payload slots are positional).
  EXPECT_FALSE(PatternSignature::of(a) == PatternSignature::of(reordered));
  EXPECT_TRUE(PatternSignature::of(a) == PatternSignature::of(a));
  EXPECT_NE(PatternSignature::of(a).key, PatternSignature::of(resized).key);
  EXPECT_NE(PatternSignature::of(a).key, PatternSignature::of(redirected).key);
}

/// Drives one communicator per rank through a scripted sequence of
/// exchanges, recording (plan_builds, plan_hits, cache_size) after each.
struct StepStats {
  std::int64_t builds = 0;
  std::int64_t hits = 0;
  std::size_t cache_size = 0;
};

std::vector<StepStats> run_script(Rank num_ranks, const Vpt& vpt,
                                  const std::vector<SendSets>& script,
                                  std::size_t capacity) {
  runtime::Cluster cluster(num_ranks);
  std::vector<StepStats> steps(script.size());
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    communicator.set_plan_cache_capacity(capacity);
    for (std::size_t step = 0; step < script.size(); ++step) {
      (void)communicator.exchange(script[step][static_cast<std::size_t>(comm.rank())]);
      if (comm.rank() == 0) {
        steps[step].builds = communicator.last_stats().plan_builds;
        steps[step].hits = communicator.last_stats().plan_hits;
        steps[step].cache_size = communicator.plan_cache_size();
      }
    }
  });
  return steps;
}

TEST(PlanCache, HitsOnIdenticalPatternMissesOnChange) {
  constexpr Rank kRanks = 4;
  const Vpt vpt({2, 2});
  const SendSets a = ring_sendsets(kRanks, 10);
  const SendSets a2 = ring_sendsets(kRanks, 99);      // same signature, new bytes
  const SendSets bigger = ring_sendsets(kRanks, 10, 4);  // size change
  SendSets moved = ring_sendsets(kRanks, 10);
  moved[0][0].dest = (moved[0][0].dest + 1) % kRanks;  // dest-set change

  const auto steps = run_script(kRanks, vpt, {a, a2, bigger, moved, a2}, 8);
  // a: records. a2: identical signature -> replay. bigger/moved: new
  // signatures -> record. a2 again: the first plan is still cached.
  EXPECT_EQ(steps[0].builds, 1);
  EXPECT_EQ(steps[0].hits, 0);
  EXPECT_EQ(steps[1].builds, 0);
  EXPECT_EQ(steps[1].hits, 1);
  EXPECT_EQ(steps[2].builds, 1);
  EXPECT_EQ(steps[2].hits, 0);
  EXPECT_EQ(steps[3].builds, 1);
  EXPECT_EQ(steps[3].hits, 0);
  EXPECT_EQ(steps[4].builds, 0);
  EXPECT_EQ(steps[4].hits, 1);
  EXPECT_EQ(steps[4].cache_size, 3u);
}

TEST(PlanCache, EvictionBoundAndLruOrder) {
  constexpr Rank kRanks = 4;
  const Vpt vpt({4});
  const SendSets a = ring_sendsets(kRanks, 1);
  const SendSets b = ring_sendsets(kRanks, 1, 8);
  const SendSets c = ring_sendsets(kRanks, 1, 16);

  // Capacity 2: a, b fill it; touching a makes b the LRU victim when c
  // arrives; a then still hits while b must rebuild.
  const auto steps = run_script(kRanks, vpt, {a, b, a, c, a, b}, 2);
  EXPECT_EQ(steps[2].hits, 1);           // a touched
  EXPECT_EQ(steps[3].builds, 1);         // c evicts b
  EXPECT_EQ(steps[3].cache_size, 2u);    // never exceeds capacity
  EXPECT_EQ(steps[4].hits, 1);           // a survived
  EXPECT_EQ(steps[5].builds, 1);         // b was evicted
  EXPECT_EQ(steps[5].cache_size, 2u);
}

TEST(PlanCache, CapacityZeroDisablesCaching) {
  constexpr Rank kRanks = 4;
  const SendSets a = ring_sendsets(kRanks, 3);
  const auto steps = run_script(kRanks, Vpt({2, 2}), {a, a, a}, 0);
  for (const auto& s : steps) {
    EXPECT_EQ(s.builds, 0);
    EXPECT_EQ(s.hits, 0);
    EXPECT_EQ(s.cache_size, 0u);
  }
}

TEST(PlanCache, ShrinkingCapacityEvictsDownToBound) {
  constexpr Rank kRanks = 4;
  const Vpt vpt({2, 2});
  runtime::Cluster cluster(kRanks);
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    communicator.set_plan_cache_capacity(4);
    for (int i = 0; i < 3; ++i)
      (void)communicator.exchange(
          ring_sendsets(kRanks, 1, static_cast<std::size_t>(8 * i))[static_cast<std::size_t>(
              comm.rank())]);
    EXPECT_EQ(communicator.plan_cache_size(), 3u);
    communicator.set_plan_cache_capacity(1);
    EXPECT_EQ(communicator.plan_cache_size(), 1u);
  });
}

TEST(PlanCache, ExplicitPlanReplayMatchesPlainExchange) {
  constexpr Rank kRanks = 8;
  const Vpt vpt({2, 2, 2});
  const SendSets sets = ring_sendsets(kRanks, 21);
  runtime::Cluster cluster(kRanks);
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    StfwCommunicator communicator(comm, vpt);
    communicator.set_plan_cache_capacity(0);  // isolate the explicit API
    const auto plan = communicator.plan(sets[me]);
    EXPECT_TRUE(plan->signature() == core::PatternSignature::of([&] {
      std::vector<std::pair<Rank, std::uint32_t>> p;
      for (const auto& s : sets[me])
        p.emplace_back(s.dest, static_cast<std::uint32_t>(s.bytes.size()));
      return p;
    }()));
    const auto reference = communicator.exchange(sets[me]);
    const auto replayed = communicator.exchange(*plan, sets[me]);
    EXPECT_EQ(communicator.last_stats().plan_hits, 1);
    ASSERT_EQ(replayed.size(), reference.size());
    for (std::size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_EQ(replayed[i].source, reference[i].source);
      EXPECT_TRUE(replayed[i].bytes == reference[i].bytes);
    }
  });
}

TEST(PlanCache, ExplicitReplayRejectsMismatchedPayloads) {
  constexpr Rank kRanks = 4;
  const Vpt vpt({2, 2});
  const SendSets sets = ring_sendsets(kRanks, 5);
  runtime::Cluster cluster(kRanks);
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    StfwCommunicator communicator(comm, vpt);
    const auto plan = communicator.plan(sets[me]);
    // Wrong payload size for slot 0: every rank's local validation throws
    // before anything reaches the wire, so the cluster stays consistent.
    auto wrong = sets[me];
    wrong[0].bytes.push_back(std::byte{0});
    bool threw = false;
    try {
      (void)communicator.exchange(*plan, wrong);
    } catch (const core::Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    // The communicator is still usable collectively afterwards.
    (void)communicator.exchange(*plan, sets[me]);
  });
}

TEST(PlanCache, RunDistributedReusesOnePlanAcrossIterations) {
  const sparse::Csr a = sparse::stencil_2d(12, 12);
  constexpr Rank kRanks = 4;
  partition::PartitionOptions opts;
  opts.num_parts = kRanks;
  const auto parts = partition::partition_rows(a, opts);
  const spmv::SpmvProblem problem(a, parts, kRanks);
  runtime::Cluster cluster(kRanks);
  std::vector<double> x0(static_cast<std::size_t>(a.num_rows()), 1.0);

  constexpr int kIterations = 5;
  std::vector<spmv::ExchangeStatsTotals> totals;
  (void)spmv::run_distributed(cluster, problem, Vpt({2, 2}), x0, kIterations, &totals);

  ASSERT_EQ(totals.size(), static_cast<std::size_t>(kRanks));
  for (std::size_t r = 0; r < totals.size(); ++r) {
    EXPECT_EQ(totals[r].exchanges, kIterations) << "rank " << r;
    EXPECT_EQ(totals[r].plan_builds, 1) << "rank " << r;
    EXPECT_EQ(totals[r].plan_hits, kIterations - 1) << "rank " << r;
    EXPECT_EQ(totals[r].plan_fallbacks, 0) << "rank " << r;
    EXPECT_GT(totals[r].messages_sent, 0) << "rank " << r;
  }
}

TEST(PlanCache, ResilientExchangeReusesSeedRouting) {
  constexpr Rank kRanks = 8;
  const Vpt vpt({2, 2, 2});
  const SendSets sets = ring_sendsets(kRanks, 31);
  runtime::Cluster cluster(kRanks);
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    StfwCommunicator communicator(comm, vpt);
    (void)communicator.exchange(sets[me]);  // records the plan
    const ResilientExchangeResult r = communicator.exchange_resilient(sets[me]);
    EXPECT_TRUE(r.fully_recovered);
    // The resilient path found the frozen routes in the cache.
    EXPECT_EQ(communicator.last_stats().plan_hits, 1);
  });
}

}  // namespace
}  // namespace stfw
