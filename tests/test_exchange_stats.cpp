#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/analysis.hpp"
#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

/// \file test_exchange_stats.cpp
/// LocalExchangeStats against the paper's closed-form bounds (§4-§5), across
/// the §5 optimal dimension-size scheme (Vpt::balanced) for K = 32 … 512.
///
/// For a uniform complete exchange with per-message payload s:
///  * messages_sent / messages_received <= sum_d (k_d - 1), tight at the max;
///  * the store-and-forward transit component of peak_buffer_bytes is
///    bounded by s*(K-1); the reported metric additionally charges the
///    original send buffer s*(K-1) and the receive buffer s*(K-1)
///    (DESIGN.md §6), so the whole metric stays <= 3*s*(K-1).

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

constexpr std::uint32_t kPayload = 8;  // uniform message size s, in bytes

struct ShapeCase {
  Rank K;
  int n;
};

std::vector<ShapeCase> sweep_cases() {
  std::vector<ShapeCase> cases;
  for (Rank K : {32, 64, 128, 256, 512}) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    // Sanitizers multiply the cost of the K-thread complete exchange; the
    // bound logic is K-independent, so trim the sweep to keep tsan/asan runs
    // fast while still covering every dimension count.
    if (K > 64) continue;
#endif
    const int lg = core::floor_log2(K);
    for (int n = 1; n <= lg; ++n) {
      // The thread-per-rank complete exchange on the direct topology costs
      // K*(K-1) point-to-point messages; cap that corner at K = 128.
      if (n == 1 && K > 128) continue;
      cases.push_back(ShapeCase{K, n});
    }
  }
  return cases;
}

class ExchangeStatsBounds : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ExchangeStatsBounds, CompleteExchangeRespectsPaperBounds) {
  const auto [K, n] = GetParam();
  const Vpt vpt = Vpt::balanced(K, n);
  ASSERT_EQ(vpt.size(), K);

  // Uniform complete exchange: every rank sends s bytes to every other rank.
  runtime::Cluster cluster(K);
  std::vector<LocalExchangeStats> stats(static_cast<std::size_t>(K));
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    std::vector<OutboundMessage> sends;
    sends.reserve(static_cast<std::size_t>(K) - 1);
    for (Rank j = 0; j < K; ++j) {
      if (j == me) continue;
      std::vector<std::byte> payload(kPayload);
      for (std::uint32_t b = 0; b < kPayload; ++b)
        payload[b] = static_cast<std::byte>((me + j + static_cast<Rank>(b)) & 0xff);
      sends.push_back(OutboundMessage{j, std::move(payload)});
    }
    StfwCommunicator communicator(comm, vpt);
    communicator.exchange(sends);
    stats[static_cast<std::size_t>(comm.rank())] = communicator.last_stats();
  });

  const std::int64_t mbound = vpt.max_message_count_bound();
  ASSERT_EQ(mbound, core::analysis::max_message_count_bound(vpt));
  const std::uint64_t seed_bytes = static_cast<std::uint64_t>(K - 1) * kPayload;
  const std::uint64_t delivered_bytes = seed_bytes;  // complete exchange is symmetric
  const std::uint64_t transit_bound = static_cast<std::uint64_t>(kPayload) *
                                      static_cast<std::uint64_t>(K - 1);  // s*(K-1), §4

  std::int64_t mmax = 0;
  for (Rank r = 0; r < K; ++r) {
    const LocalExchangeStats& s = stats[static_cast<std::size_t>(r)];
    EXPECT_LE(s.messages_sent, mbound) << "rank " << r;
    EXPECT_LE(s.messages_received, mbound) << "rank " << r;
    // peak_buffer_bytes = seed buffer + delivered buffer + transit peak; the
    // paper's s*(K-1) bound constrains the transit component.
    ASSERT_GE(s.peak_buffer_bytes, seed_bytes + delivered_bytes) << "rank " << r;
    EXPECT_LE(s.peak_buffer_bytes - seed_bytes - delivered_bytes, transit_bound)
        << "rank " << r;
    EXPECT_LE(s.peak_buffer_bytes, 3 * transit_bound) << "rank " << r;
    mmax = std::max(mmax, s.messages_sent);
  }
  // For the complete exchange the sum_d (k_d - 1) bound is tight.
  EXPECT_EQ(mmax, mbound);
}

/// Satellite (barrier-free stats audit): three back-to-back exchanges on one
/// communicator — a sparse ring (recording), the same ring again (cached
/// replay), then a complete exchange (different pattern, recording again).
/// Counters must reset per exchange, filler frames must never be counted as
/// real messages, and real + filler frames must add up to the regularized
/// per-rank total sum_d (k_d - 1) on every path.
TEST(ExchangeStatsReset, BackToBackExchangesResetCountersAndSplitFillers) {
  constexpr Rank K = 8;
  const Vpt vpt({4, 2});
  runtime::Cluster cluster(K);
  std::vector<LocalExchangeStats> ring_first(K), ring_replay(K), complete(K);
  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    StfwCommunicator communicator(comm, vpt);
    std::vector<OutboundMessage> ring;
    ring.push_back(OutboundMessage{(me + 1) % K, std::vector<std::byte>(16, std::byte{0xaa})});
    communicator.exchange(ring);
    ring_first[static_cast<std::size_t>(me)] = communicator.last_stats();
    communicator.exchange(ring);
    ring_replay[static_cast<std::size_t>(me)] = communicator.last_stats();
    std::vector<OutboundMessage> all;
    for (Rank j = 0; j < K; ++j) {
      if (j == me) continue;
      all.push_back(OutboundMessage{j, std::vector<std::byte>(kPayload, std::byte{0x2b})});
    }
    communicator.exchange(all);
    complete[static_cast<std::size_t>(me)] = communicator.last_stats();
  });

  const std::int64_t frames = vpt.max_message_count_bound();  // sum_d (k_d - 1) = 4
  std::int64_t sent = 0, received = 0, filler_sent = 0, filler_received = 0;
  for (Rank r = 0; r < K; ++r) {
    const LocalExchangeStats& f = ring_first[static_cast<std::size_t>(r)];
    const LocalExchangeStats& p = ring_replay[static_cast<std::size_t>(r)];
    const LocalExchangeStats& c = complete[static_cast<std::size_t>(r)];
    // Regularization: every (stage, neighbor) slot carries exactly one
    // frame, real or filler, on both the recording and the replay path.
    EXPECT_EQ(f.messages_sent + f.filler_frames_sent, frames) << "rank " << r;
    EXPECT_EQ(f.messages_received + f.filler_frames_received, frames) << "rank " << r;
    EXPECT_EQ(p.messages_sent + p.filler_frames_sent, frames) << "rank " << r;
    EXPECT_EQ(p.messages_received + p.filler_frames_received, frames) << "rank " << r;
    EXPECT_EQ(c.messages_sent + c.filler_frames_sent, frames) << "rank " << r;
    EXPECT_EQ(c.messages_received + c.filler_frames_received, frames) << "rank " << r;
    // The ring is sparse, so some slots must be fillers cluster-wide; the
    // complete exchange saturates every slot with a real frame.
    EXPECT_EQ(c.messages_sent, frames) << "rank " << r;
    EXPECT_EQ(c.filler_frames_sent, 0) << "rank " << r;
    EXPECT_EQ(c.filler_frames_received, 0) << "rank " << r;
    // Replay reproduces the recorded exchange's counters exactly — a
    // counter that survived the first exchange would break these.
    EXPECT_EQ(p.messages_sent, f.messages_sent) << "rank " << r;
    EXPECT_EQ(p.messages_received, f.messages_received) << "rank " << r;
    EXPECT_EQ(p.filler_frames_sent, f.filler_frames_sent) << "rank " << r;
    EXPECT_EQ(p.filler_frames_received, f.filler_frames_received) << "rank " << r;
    EXPECT_EQ(f.plan_builds, 1) << "rank " << r;
    EXPECT_EQ(p.plan_hits, 1) << "rank " << r;
    EXPECT_EQ(c.plan_builds, 1) << "rank " << r;
    sent += f.messages_sent;
    received += f.messages_received;
    filler_sent += f.filler_frames_sent;
    filler_received += f.filler_frames_received;
  }
  // Cluster-wide conservation: every frame sent is received exactly once and
  // demuxed into exactly one bucket (no double count of fillers as recvs).
  EXPECT_EQ(sent, received);
  EXPECT_EQ(filler_sent, filler_received);
  EXPECT_GT(filler_sent, 0);
}

std::string shape_name(const ::testing::TestParamInfo<ShapeCase>& info) {
  std::string name = "K";
  name += std::to_string(info.param.K);
  name += "_n";
  name += std::to_string(info.param.n);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Section5Shapes, ExchangeStatsBounds,
                         ::testing::ValuesIn(sweep_cases()), shape_name);

}  // namespace
}  // namespace stfw
