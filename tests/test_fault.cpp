#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/sync.hpp"
#include "core/vpt.hpp"
#include "core/wire.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

/// \file test_fault.cpp
/// The fault-tolerance layer end to end: injector determinism, timeout-aware
/// primitives, the deadlock watchdog, and the resilient exchange's recovery
/// and degradation guarantees (docs/fault_model.md).

namespace stfw {
namespace {

using namespace std::chrono_literals;
using core::Rank;
using fault::FaultConfig;
using fault::FaultInjector;
using fault::MessageDecision;
using runtime::Cluster;
using runtime::Comm;
using runtime::Deadline;

// ---------------------------------------------------------------------------
// FaultInjector unit tests

bool any_fault(const MessageDecision& d) {
  return d.drop || d.duplicate || d.reorder || d.truncate_to != UINT32_MAX || d.delay > 0ms;
}

TEST(FaultInjector, SameSeedReplaysIdenticalDecisions) {
  FaultConfig cfg;
  cfg.seed = 1234;
  cfg.drop_prob = 0.2;
  cfg.duplicate_prob = 0.2;
  cfg.reorder_prob = 0.1;
  cfg.truncate_prob = 0.1;
  cfg.delay_prob = 0.2;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    const int sender = i % 4;
    const MessageDecision da = a.on_post(sender, (sender + 1) % 4, 7, 100);
    const MessageDecision db = b.on_post(sender, (sender + 1) % 4, 7, 100);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.reorder, db.reorder);
    EXPECT_EQ(da.truncate_to, db.truncate_to);
    EXPECT_EQ(da.delay, db.delay);
  }
}

TEST(FaultInjector, SendersHaveIndependentStreams) {
  // Interleaving posts of different senders must not perturb a sender's own
  // decision stream — that is what makes multi-threaded runs replayable.
  FaultConfig cfg;
  cfg.seed = 9;
  cfg.drop_prob = 0.3;
  FaultInjector solo(cfg), interleaved(cfg);
  std::vector<bool> solo_fates;
  for (int i = 0; i < 200; ++i) solo_fates.push_back(solo.on_post(0, 1, 5, 8).drop);
  std::vector<bool> mixed_fates;
  for (int i = 0; i < 200; ++i) {
    (void)interleaved.on_post(1, 0, 5, 8);
    (void)interleaved.on_post(2, 0, 5, 8);
    mixed_fates.push_back(interleaved.on_post(0, 1, 5, 8).drop);
  }
  EXPECT_EQ(solo_fates, mixed_fates);
}

TEST(FaultInjector, NegativeControlTagsAreReliable) {
  FaultConfig cfg;
  cfg.drop_prob = 1.0;
  cfg.duplicate_prob = 1.0;
  FaultInjector inj(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(any_fault(inj.on_post(0, 1, -2001, 64)));  // collective traffic
    EXPECT_TRUE(inj.on_post(0, 1, 0, 64).drop);             // exchange traffic
  }
  EXPECT_EQ(inj.counters().drops, 100);
}

TEST(FaultInjector, CountersTallyDecisions) {
  FaultConfig cfg;
  cfg.truncate_prob = 1.0;
  cfg.delay_prob = 1.0;
  FaultInjector inj(cfg);
  for (int i = 0; i < 50; ++i) {
    const MessageDecision d = inj.on_post(0, 1, 3, 100);
    EXPECT_LT(d.truncate_to, 100u);
    EXPECT_GE(d.delay.count(), cfg.delay_min.count());
    EXPECT_LE(d.delay.count(), cfg.delay_max.count());
  }
  EXPECT_EQ(inj.counters().truncations, 50);
  EXPECT_EQ(inj.counters().delays, 50);
  EXPECT_EQ(inj.counters().drops, 0);
}

TEST(FaultInjector, RejectsInvalidConfig) {
  FaultConfig bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(FaultInjector{bad}, core::Error);
  FaultConfig bad2;
  bad2.delay_min = 10ms;
  bad2.delay_max = 5ms;
  EXPECT_THROW(FaultInjector{bad2}, core::Error);
}

TEST(FaultInjector, FromEnvReadsTheFaultMatrixVariables) {
  ::setenv("STFW_FAULT_SEED", "77", 1);
  ::setenv("STFW_FAULT_DROP", "0.25", 1);
  ::setenv("STFW_FAULT_DUP", "0.125", 1);
  ::setenv("STFW_FAULT_DELAY", "0.5", 1);
  ::setenv("STFW_FAULT_DELAY_MAX_MS", "9", 1);
  const FaultConfig cfg = FaultConfig::from_env();
  ::unsetenv("STFW_FAULT_SEED");
  ::unsetenv("STFW_FAULT_DROP");
  ::unsetenv("STFW_FAULT_DUP");
  ::unsetenv("STFW_FAULT_DELAY");
  ::unsetenv("STFW_FAULT_DELAY_MAX_MS");
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_DOUBLE_EQ(cfg.drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(cfg.duplicate_prob, 0.125);
  EXPECT_DOUBLE_EQ(cfg.delay_prob, 0.5);
  EXPECT_EQ(cfg.delay_max.count(), 9);
}

TEST(FaultInjector, CrashSiteThrowsOnConfiguredRankAndStage) {
  FaultConfig cfg;
  cfg.crash_rank = 2;
  cfg.crash_stage = 1;
  FaultInjector inj(cfg);
  inj.at_stage(2, 0);  // wrong stage: no-op
  inj.at_stage(1, 1);  // wrong rank: no-op
  EXPECT_THROW(inj.at_stage(2, 1), fault::FaultInjectedError);
  EXPECT_EQ(inj.counters().crashes, 1);
}

TEST(FaultInjector, StallSiteBlocksTheCallingThread) {
  FaultConfig cfg;
  cfg.stall_rank = 0;
  cfg.stall_stage = -1;  // any stage
  cfg.stall_duration = 30ms;
  FaultInjector inj(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  inj.at_stage(0, 3);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 30ms);
  EXPECT_EQ(inj.counters().stalls, 1);
}

// ---------------------------------------------------------------------------
// Timeout-aware primitives and the watchdog

TEST(Timeout, RecvDeadlineThrowsNamingTheAwaitedRank) {
  Cluster cluster(2);
  try {
    cluster.run([](Comm& comm) {
      if (comm.rank() == 0) comm.recv(1, 7, Deadline::in(30ms));
      // Rank 1 never sends.
    });
    FAIL() << "recv deadline did not fire";
  } catch (const core::TimeoutError& e) {
    EXPECT_EQ(e.op(), "recv");
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.peer(), 1);
    EXPECT_EQ(e.tag(), 7);
    EXPECT_NE(std::string(e.what()).find("for rank 1"), std::string::npos) << e.what();
  }
}

TEST(Timeout, BarrierDeadlineThrowsWhenAPeerNeverArrives) {
  Cluster cluster(3);
  try {
    cluster.run([](Comm& comm) {
      if (comm.rank() == 2) return;          // never joins the barrier
      if (comm.rank() == 0) {
        comm.barrier(Deadline::in(40ms));    // the single primary failure
      } else {
        comm.barrier();                      // unblocked by rank 0's abort
      }
    });
    FAIL() << "barrier deadline did not fire";
  } catch (const core::TimeoutError& e) {
    EXPECT_EQ(e.op(), "barrier");
  }
  cluster.run([](Comm& comm) { comm.barrier(); });  // cluster stays usable
}

TEST(Timeout, StalledRankConvertsDeadlockIntoNamedTimeout) {
  // The acceptance scenario: a rank stalls at a stage boundary; under plain
  // blocking primitives its peer would deadlock. With a deadline the peer
  // gets a TimeoutError naming the stuck rank, well within the stall.
  Cluster cluster(2);
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.stall_rank = 1;
    cfg.stall_stage = 0;
    cfg.stall_duration = 200ms;
    return cfg;
  }());
  cluster.set_fault_injector(injector);
  try {
    cluster.run([&](Comm& comm) {
      if (comm.rank() == 1) {
        comm.fault_injector()->at_stage(1, 0);  // stalls 200ms
        comm.send(0, 7, {});
      } else {
        comm.recv(1, 7, Deadline::in(50ms));
      }
    });
    FAIL() << "stall did not surface as a timeout";
  } catch (const core::TimeoutError& e) {
    EXPECT_EQ(e.peer(), 1) << "timeout must name the stalled rank";
    // The verdict arrived on the deadline, not after the stall finished.
    EXPECT_GE(e.waited_ms(), 50);
    EXPECT_LT(e.waited_ms(), 200);
    EXPECT_NE(std::string(e.what()).find("for rank 1"), std::string::npos) << e.what();
  }
  EXPECT_GE(injector->counters().stalls, 1);
  cluster.set_fault_injector(nullptr);
}

TEST(Watchdog, ReportsAllRanksBlockedDeadlock) {
  Cluster cluster(3);
  cluster.set_watchdog(60ms);
  try {
    // Circular wait: rank r receives from r+1, nobody ever sends.
    cluster.run([](Comm& comm) { comm.recv((comm.rank() + 1) % 3, 9); });
    FAIL() << "watchdog did not fire";
  } catch (const core::DeadlockError& e) {
    EXPECT_EQ(e.op(), "deadlock");
    const std::string what = e.what();
    for (int r = 0; r < 3; ++r)
      EXPECT_NE(what.find("rank " + std::to_string(r)), std::string::npos)
          << "report must name every stuck rank: " << what;
    EXPECT_NE(what.find("recv"), std::string::npos) << what;
  }
  cluster.set_watchdog(0ms);
  cluster.run([](Comm& comm) { comm.barrier(); });  // cluster stays usable
}

TEST(Watchdog, DoesNotFireWhileProgressIsBeingMade) {
  Cluster cluster(2);
  cluster.set_watchdog(50ms);
  cluster.run([](Comm& comm) {
    // Ping-pong for ~8 watchdog windows; steady progress must hold it off.
    const int peer = 1 - comm.rank();
    for (int i = 0; i < 40; ++i) {
      if (comm.rank() == 0) {
        comm.send(peer, 1, {});
        comm.recv(peer, 2);
      } else {
        comm.recv(peer, 1);
        comm.send(peer, 2, {});
      }
      std::this_thread::sleep_for(10ms);
    }
  });
  cluster.set_watchdog(0ms);
}

TEST(Cluster, AggregatesIndependentFailuresAcrossRanks) {
  // Satellite of the robustness PR: several ranks failing independently must
  // all be named, not just the lowest-numbered one.
  Cluster cluster(4);
  try {
    cluster.run([](Comm& comm) {
      if (comm.rank() == 1) throw core::Error("alpha failure");
      if (comm.rank() == 3) throw core::Error("beta failure");
      comm.recv(1, 1);  // secondary: unblocked by the peers' abort
    });
    FAIL() << "no error propagated";
  } catch (const core::MultiRankError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].rank, 1);
    EXPECT_EQ(e.failures()[1].rank, 3);
    const std::string what = e.what();
    EXPECT_NE(what.find("alpha failure"), std::string::npos) << what;
    EXPECT_NE(what.find("beta failure"), std::string::npos) << what;
  }
  cluster.run([](Comm& comm) { comm.barrier(); });
}

// ---------------------------------------------------------------------------
// Resilient exchange

std::vector<std::byte> pattern_bytes(Rank src, Rank dest) {
  const std::size_t len = static_cast<std::size_t>((src * 7 + dest * 13) % 40) + 1;
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((static_cast<std::size_t>(src) * 31 +
                                   static_cast<std::size_t>(dest) * 17 + i) &
                                  0xff);
  return b;
}

std::vector<OutboundMessage> all_to_all_sends(Rank K, Rank me) {
  std::vector<OutboundMessage> out;
  for (Rank d = 0; d < K; ++d) {
    if (d == me) continue;
    out.push_back({d, pattern_bytes(me, d)});
  }
  return out;
}

void sort_by_source(std::vector<InboundMessage>& msgs) {
  std::stable_sort(msgs.begin(), msgs.end(),
                   [](const InboundMessage& a, const InboundMessage& b) {
                     return a.source < b.source;
                   });
}

/// Runs the plain (fault-free) exchange on a fresh cluster — the baseline the
/// resilient mode must reproduce byte-for-byte.
std::vector<std::vector<InboundMessage>> fault_free_baseline(const core::Vpt& vpt) {
  const Rank K = vpt.size();
  std::vector<std::vector<InboundMessage>> delivered(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<Rank>(comm.rank());
    delivered[static_cast<std::size_t>(me)] = stfw.exchange(all_to_all_sends(K, me));
  });
  for (auto& msgs : delivered) sort_by_source(msgs);
  return delivered;
}

TEST(ResilientExchange, CleanTransportMatchesPlainExchange) {
  const auto vpt = core::Vpt({4, 4});
  const auto baseline = fault_free_baseline(vpt);
  const Rank K = vpt.size();
  std::vector<ResilientExchangeResult> results(static_cast<std::size_t>(K));
  std::vector<LocalExchangeStats> stats(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    ResilienceOptions opt;
    opt.retransmit_timeout = 500ms;  // scheduling hiccups must not retransmit
    results[me] = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    stats[me] = stfw.last_stats();
  });
  for (Rank r = 0; r < K; ++r) {
    auto& res = results[static_cast<std::size_t>(r)];
    const auto& st = stats[static_cast<std::size_t>(r)];
    EXPECT_TRUE(res.fully_recovered);
    EXPECT_TRUE(res.failure.empty()) << res.failure.to_string();
    sort_by_source(res.delivered);
    EXPECT_EQ(res.delivered, baseline[static_cast<std::size_t>(r)]) << "rank " << r;
    // T_2(4,4): every rank emits exactly (4-1)+(4-1) stage frames (empty ones
    // included) and each one is acked exactly once.
    EXPECT_EQ(st.messages_sent, 6);
    EXPECT_EQ(st.acks_received, 6);
    EXPECT_EQ(st.acks_sent, 6);
    EXPECT_EQ(st.retransmits, 0);
    EXPECT_EQ(st.duplicate_frames_discarded, 0);
    EXPECT_EQ(st.corrupt_frames_discarded, 0);
    EXPECT_EQ(st.direct_fallback_submessages, 0);
  }
}

TEST(ResilientExchange, RecoversFromDropsAndDuplicationByteIdentical) {
  // The PR's acceptance bar: K=64, n=2, >= 1% injected drop AND duplication;
  // the exchange must complete with payloads byte-identical to the
  // fault-free baseline and report a nonzero retransmit count.
  const auto vpt = core::Vpt({8, 8});
  const Rank K = vpt.size();
  ASSERT_EQ(K, 64);
  const auto baseline = fault_free_baseline(vpt);

  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.seed = 20260806;
    cfg.drop_prob = 0.02;
    cfg.duplicate_prob = 0.02;
    return cfg;
  }());
  std::vector<ResilientExchangeResult> results(static_cast<std::size_t>(K));
  std::vector<LocalExchangeStats> stats(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    ResilienceOptions opt;
    opt.retransmit_timeout = 3ms;
    opt.max_attempts = 10;
    opt.stage_deadline = 5000ms;
    opt.max_settle_rounds = 2000;
    results[me] = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    stats[me] = stfw.last_stats();
  });
  cluster.set_fault_injector(nullptr);

  EXPECT_GT(injector->counters().drops, 0);
  EXPECT_GT(injector->counters().duplicates, 0);
  std::int64_t total_retransmits = 0;
  std::int64_t total_dups_discarded = 0;
  for (Rank r = 0; r < K; ++r) {
    auto& res = results[static_cast<std::size_t>(r)];
    EXPECT_TRUE(res.fully_recovered) << "rank " << r;
    EXPECT_TRUE(res.failure.empty()) << "rank " << r << ": " << res.failure.to_string();
    sort_by_source(res.delivered);
    EXPECT_EQ(res.delivered, baseline[static_cast<std::size_t>(r)])
        << "payloads diverged from the fault-free baseline on rank " << r;
    total_retransmits += stats[static_cast<std::size_t>(r)].retransmits;
    total_dups_discarded += stats[static_cast<std::size_t>(r)].duplicate_frames_discarded;
  }
  EXPECT_GT(total_retransmits, 0) << "faults were injected but nothing was retransmitted";
  EXPECT_GT(total_dups_discarded, 0) << "duplicates were injected but none deduplicated";
}

TEST(ResilientExchange, RecoversFromTruncationDelayAndReorder) {
  const auto vpt = core::Vpt({2, 2, 2});
  const Rank K = vpt.size();
  const auto baseline = fault_free_baseline(vpt);
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.seed = 42;
    cfg.truncate_prob = 0.15;  // checksum layer must reject these
    cfg.delay_prob = 0.15;
    cfg.delay_min = 1ms;
    cfg.delay_max = 4ms;
    cfg.reorder_prob = 0.15;
    return cfg;
  }());
  std::vector<ResilientExchangeResult> results(static_cast<std::size_t>(K));
  std::vector<LocalExchangeStats> stats(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    ResilienceOptions opt;
    opt.retransmit_timeout = 5ms;
    opt.max_attempts = 10;
    results[me] = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    stats[me] = stfw.last_stats();
  });
  cluster.set_fault_injector(nullptr);

  EXPECT_GT(injector->counters().truncations, 0);
  std::int64_t total_corrupt = 0;
  for (Rank r = 0; r < K; ++r) {
    auto& res = results[static_cast<std::size_t>(r)];
    EXPECT_TRUE(res.fully_recovered) << "rank " << r;
    sort_by_source(res.delivered);
    EXPECT_EQ(res.delivered, baseline[static_cast<std::size_t>(r)]) << "rank " << r;
    total_corrupt += stats[static_cast<std::size_t>(r)].corrupt_frames_discarded;
  }
  EXPECT_GT(total_corrupt, 0) << "truncations were injected but no frame failed its checksum";
}

TEST(ResilientExchange, RepeatedExchangesUnderFaultsStayIsolated) {
  // Delayed/duplicated stragglers of one exchange must never contaminate the
  // next one (epoch tagging + the flush/drain epilogue).
  const auto vpt = core::Vpt({2, 2});
  const Rank K = vpt.size();
  const auto baseline = fault_free_baseline(vpt);
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.drop_prob = 0.05;
    cfg.duplicate_prob = 0.05;
    cfg.delay_prob = 0.2;
    cfg.delay_min = 1ms;
    cfg.delay_max = 6ms;
    return cfg;
  }());
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    ResilienceOptions opt;
    opt.retransmit_timeout = 4ms;
    opt.max_attempts = 10;
    for (int round = 0; round < 5; ++round) {
      auto res = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
      EXPECT_TRUE(res.fully_recovered) << "round " << round;
      sort_by_source(res.delivered);
      EXPECT_EQ(res.delivered, baseline[static_cast<std::size_t>(comm.rank())])
          << "round " << round << " rank " << comm.rank();
    }
  });
  cluster.set_fault_injector(nullptr);
}

TEST(ResilientExchange, DirectFallbackDuplicateOfAcceptedFrameIsDiscarded) {
  // The at-least-once window (docs/fault_model.md, "Delivery semantics"): a
  // receiver stalled across the sender's whole retry budget eventually
  // accepts the stage frame, but only after the sender has declared it dead
  // and re-routed the payload directly. Both copies reach the destination;
  // the (source, id) filter must deliver exactly one.
  const auto vpt = core::Vpt({2});
  const auto baseline = fault_free_baseline(vpt);
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;  // no message faults: the stall alone opens the window
    cfg.stall_rank = 1;
    cfg.stall_stage = 0;
    cfg.stall_duration = 400ms;
    return cfg;
  }());
  std::vector<ResilientExchangeResult> results(2);
  std::vector<LocalExchangeStats> stats(2);
  Cluster cluster(2);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    ResilienceOptions opt;
    opt.retransmit_timeout = 4ms;  // full retry budget spans ~250ms,
    opt.max_attempts = 10;         // comfortably inside the 400ms stall
    results[me] = stfw.exchange_resilient(all_to_all_sends(2, comm.rank()), opt);
    stats[me] = stfw.last_stats();
  });
  cluster.set_fault_injector(nullptr);

  ASSERT_EQ(injector->counters().stalls, 1);
  for (Rank r = 0; r < 2; ++r) {
    auto& res = results[static_cast<std::size_t>(r)];
    EXPECT_TRUE(res.fully_recovered) << "rank " << r;
    EXPECT_TRUE(res.failure.empty()) << "rank " << r << ": " << res.failure.to_string();
    sort_by_source(res.delivered);
    EXPECT_EQ(res.delivered, baseline[static_cast<std::size_t>(r)]) << "rank " << r;
  }
  // Rank 0 gave up on the stalled receiver and re-routed directly; rank 1,
  // which had in fact accepted the original, discarded the extra copy.
  EXPECT_GT(stats[0].direct_fallback_submessages, 0);
  EXPECT_GT(stats[0].timeouts, 0);
  EXPECT_GT(stats[1].duplicate_submessages_discarded, 0);
}

TEST(ResilientExchange, TotalLossDegradesIntoFailureReport) {
  // 100% drop on every exchange tag: nothing can ever be delivered. The
  // exchange must neither hang nor crash — it reports what died, on every
  // rank, with a globally agreed fully_recovered == false.
  const auto vpt = core::Vpt({2, 2});
  const Rank K = vpt.size();
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.drop_prob = 1.0;
    return cfg;
  }());
  std::vector<ResilientExchangeResult> results(static_cast<std::size_t>(K));
  std::vector<LocalExchangeStats> stats(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    ResilienceOptions opt;
    opt.retransmit_timeout = 1ms;
    opt.max_attempts = 2;
    opt.stage_deadline = 60ms;
    opt.max_settle_rounds = 10;
    results[me] = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    stats[me] = stfw.last_stats();
  });
  cluster.set_fault_injector(nullptr);

  for (Rank r = 0; r < K; ++r) {
    const auto& res = results[static_cast<std::size_t>(r)];
    const auto& st = stats[static_cast<std::size_t>(r)];
    EXPECT_FALSE(res.fully_recovered);
    EXPECT_TRUE(res.delivered.empty());
    // All three outbound payloads of this rank are definitely lost, and both
    // stages saw their neighbor frame never arrive.
    EXPECT_EQ(res.failure.lost.size(), 3u) << res.failure.to_string();
    EXPECT_EQ(res.failure.missing.size(), 2u) << res.failure.to_string();
    EXPECT_EQ(st.direct_fallback_submessages, 3);
    EXPECT_GT(st.timeouts, 0);
    EXPECT_GT(st.retransmits, 0);
    EXPECT_NE(res.failure.to_string().find("lost"), std::string::npos);
  }
}

TEST(ResilientExchange, DirectFallbackCanBeDisabled) {
  const auto vpt = core::Vpt({2, 2});
  const Rank K = vpt.size();
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.drop_prob = 1.0;
    return cfg;
  }());
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    ResilienceOptions opt;
    opt.retransmit_timeout = 1ms;
    opt.max_attempts = 1;
    opt.stage_deadline = 40ms;
    opt.max_settle_rounds = 5;
    opt.direct_fallback = false;
    const auto res = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    EXPECT_FALSE(res.fully_recovered);
    EXPECT_EQ(stfw.last_stats().direct_fallback_submessages, 0);
    for (const auto& lost : res.failure.lost)
      EXPECT_GE(lost.stage, 0) << "without fallback every loss is a stage-frame loss";
  });
  cluster.set_fault_injector(nullptr);
}

// ---------------------------------------------------------------------------
// Retry-jitter decorrelation (rides along with the rank-failure work)

TEST(ResilientExchange, RetransmittedFramesAreByteIdenticalToOriginals) {
  // Zero-copy PR pin: the resilient path no longer retains each frame's wire
  // image — a retransmit re-gathers it from the kept (header, StageMessage).
  // Serialization is deterministic, so every transmission of a given
  // (sender, seq, epoch, member_epoch) data frame must be byte-for-byte
  // identical. The cluster wire tap fires before the injector rules, so the
  // dropped originals are captured alongside their retransmits.
  const auto vpt = core::Vpt({2, 2});
  const Rank K = vpt.size();
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.seed = 4242;
    cfg.drop_prob = 0.3;
    return cfg;
  }());
  Cluster cluster(K);
  cluster.set_fault_injector(injector);

  using Key = std::tuple<std::int32_t, std::uint32_t, std::uint32_t, std::uint32_t>;
  core::Mutex mu;
  std::map<Key, std::vector<std::vector<std::byte>>> frames;
  cluster.set_wire_tap([&](int, int, int, std::span<const std::byte> bytes) {
    // Control collectives and acks are not data frames; decode filters them.
    const auto dec = core::decode_frame(bytes);
    if (!dec.has_value() || dec->header.kind != core::FrameKind::kData) return;
    const Key key{dec->header.sender, dec->header.seq, dec->header.epoch,
                  dec->header.member_epoch};
    core::MutexLock lock(mu);
    frames[key].emplace_back(bytes.begin(), bytes.end());
  });

  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    ResilienceOptions opt;
    opt.retransmit_timeout = 2ms;
    opt.max_attempts = 20;
    const auto res = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    EXPECT_TRUE(res.fully_recovered);
  });
  cluster.set_wire_tap(nullptr);
  cluster.set_fault_injector(nullptr);

  ASSERT_GT(injector->counters().drops, 0) << "drop fault never engaged";
  std::size_t retransmissions = 0;
  for (const auto& [key, copies] : frames) {
    for (std::size_t i = 1; i < copies.size(); ++i) {
      ++retransmissions;
      EXPECT_EQ(copies[i], copies[0])
          << "retransmit " << i << " of frame (sender " << std::get<0>(key) << ", seq "
          << std::get<1>(key) << ") differs from the original";
    }
  }
  EXPECT_GT(retransmissions, 0u) << "no frame was ever retransmitted";
}

TEST(RetryJitter, RejectsOutOfRangeValues) {
  Cluster cluster(4);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 StfwCommunicator stfw(comm, core::Vpt({2, 2}));
                 ResilienceOptions opt;
                 opt.retry_jitter = 1.5;
                 (void)stfw.exchange_resilient({}, opt);
               }),
               core::Error);
  cluster.run([](Comm& comm) { comm.barrier(); });  // cluster stays usable
}

TEST(RetryJitter, MalformedEnvOverrideThrows) {
  ::setenv("STFW_RETRY_JITTER", "plenty", 1);
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 StfwCommunicator stfw(comm, core::Vpt({2}));
                 (void)stfw.exchange_resilient({});
               }),
               core::Error);
  ::unsetenv("STFW_RETRY_JITTER");
  cluster.run([](Comm& comm) { comm.barrier(); });
}

TEST(RetryJitter, FullJitterStillRecoversByteIdentical) {
  // Maximum decorrelation must only reshuffle retry instants, never the
  // recovered payloads. Driven through the environment override, the same
  // path the benchmark and CI knobs use.
  const auto vpt = core::Vpt({2, 2, 2});
  const Rank K = vpt.size();
  const auto baseline = fault_free_baseline(vpt);
  auto injector = std::make_shared<FaultInjector>([] {
    FaultConfig cfg;
    cfg.seed = 11;
    cfg.drop_prob = 0.08;
    return cfg;
  }());
  ::setenv("STFW_RETRY_JITTER", "1.0", 1);
  std::vector<ResilientExchangeResult> results(static_cast<std::size_t>(K));
  std::vector<LocalExchangeStats> stats(static_cast<std::size_t>(K));
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    ResilienceOptions opt;
    opt.retransmit_timeout = 3ms;
    opt.max_attempts = 10;
    opt.retry_jitter = 0.0;  // the env variable must override this
    results[me] = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    stats[me] = stfw.last_stats();
  });
  cluster.set_fault_injector(nullptr);
  ::unsetenv("STFW_RETRY_JITTER");

  ASSERT_GT(injector->counters().drops, 0);
  std::int64_t total_retransmits = 0;
  for (Rank r = 0; r < K; ++r) {
    auto& res = results[static_cast<std::size_t>(r)];
    EXPECT_TRUE(res.fully_recovered) << "rank " << r << ": " << res.failure.to_string();
    sort_by_source(res.delivered);
    EXPECT_EQ(res.delivered, baseline[static_cast<std::size_t>(r)]) << "rank " << r;
    total_retransmits += stats[static_cast<std::size_t>(r)].retransmits;
  }
  EXPECT_GT(total_retransmits, 0) << "drops were injected but nothing was retransmitted";
}

TEST(ResilientExchange, EnvironmentDrivenFaultMatrixEntry) {
  // The CI fault-matrix job drives this test through STFW_FAULT_* variables;
  // without them it runs one representative mid-rate configuration.
  FaultConfig cfg = FaultConfig::from_env();
  if (!core::env_present("STFW_FAULT_SEED")) {
    cfg.seed = 5;
    cfg.drop_prob = 0.03;
    cfg.duplicate_prob = 0.03;
    cfg.delay_prob = 0.05;
  }
  const auto vpt = core::Vpt({4, 2, 2});
  const Rank K = vpt.size();
  const auto baseline = fault_free_baseline(vpt);
  auto injector = std::make_shared<FaultInjector>(cfg);
  Cluster cluster(K);
  cluster.set_fault_injector(injector);
  cluster.run([&](Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    ResilienceOptions opt;
    opt.retransmit_timeout = 3ms;
    opt.max_attempts = 12;
    opt.stage_deadline = 5000ms;
    opt.max_settle_rounds = 2000;
    auto res = stfw.exchange_resilient(all_to_all_sends(K, comm.rank()), opt);
    EXPECT_TRUE(res.fully_recovered) << res.failure.to_string();
    sort_by_source(res.delivered);
    EXPECT_EQ(res.delivered, baseline[static_cast<std::size_t>(comm.rank())]);
  });
  cluster.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace stfw
