#include "sparse/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/error.hpp"

namespace stfw::sparse {
namespace {

TEST(Generators, RandomUniformHasExactNnz) {
  const Csr a = random_uniform(50, 60, 500, 7);
  EXPECT_EQ(a.num_rows(), 50);
  EXPECT_EQ(a.num_cols(), 60);
  EXPECT_EQ(a.num_nonzeros(), 500);
}

TEST(Generators, RandomUniformIsDeterministic) {
  const Csr a = random_uniform(30, 30, 200, 11);
  const Csr b = random_uniform(30, 30, 200, 11);
  EXPECT_TRUE(std::equal(a.col_idx().begin(), a.col_idx().end(), b.col_idx().begin()));
  const Csr c = random_uniform(30, 30, 200, 12);
  EXPECT_FALSE(std::equal(a.col_idx().begin(), a.col_idx().end(), c.col_idx().begin()) &&
               std::equal(a.values().begin(), a.values().end(), c.values().begin()));
}

TEST(Generators, Stencil2dShape) {
  const Csr a = stencil_2d(10, 8);
  EXPECT_EQ(a.num_rows(), 80);
  EXPECT_TRUE(a.has_symmetric_pattern());
  EXPECT_TRUE(a.has_full_diagonal());
  const DegreeStats s = degree_stats(a);
  EXPECT_EQ(s.max_degree, 5);  // interior point: self + 4 neighbors
  // Regular pattern: tiny cv (the anti-case of the paper's irregular set).
  EXPECT_LT(s.cv, 0.2);
}

TEST(Generators, Stencil3dShape) {
  const Csr a = stencil_3d(5, 5, 5);
  EXPECT_EQ(a.num_rows(), 125);
  EXPECT_TRUE(a.has_symmetric_pattern());
  EXPECT_EQ(degree_stats(a).max_degree, 7);
}

TEST(Generators, LognormalDegreesHitTargets) {
  const auto w = lognormal_degrees(20000, 30.0, 1.5, 4000, 3);
  const double mean = std::accumulate(w.begin(), w.end(), 0.0) / static_cast<double>(w.size());
  EXPECT_NEAR(mean, 30.0, 1.0);
  const double mx = *std::max_element(w.begin(), w.end());
  EXPECT_DOUBLE_EQ(mx, 4000.0);  // forced dense row
  for (double x : w) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 4000.0);
  }
}

TEST(Generators, ChungLuMatchesExpectedDegrees) {
  // Uniform weights: every vertex should get close to the target degree.
  std::vector<double> w(5000, 20.0);
  const Csr a = chung_lu_symmetric(w, 17);
  EXPECT_TRUE(a.has_symmetric_pattern());
  EXPECT_TRUE(a.has_full_diagonal());
  const DegreeStats s = degree_stats(a);
  // Diagonal adds one to each degree.
  EXPECT_NEAR(s.avg_degree, 21.0, 1.5);
  EXPECT_LT(s.cv, 0.35);
}

TEST(Generators, ChungLuRespectsSkewedWeights) {
  // One hub with weight ~ n/2 plus a light background.
  std::vector<double> w(4000, 4.0);
  w[0] = 2000.0;
  const Csr a = chung_lu_symmetric(w, 23);
  const DegreeStats s = degree_stats(a);
  // The hub emerges as a dense row.
  EXPECT_GT(s.max_degree, 1200);
  EXPECT_GT(s.cv, 2.0);
  EXPECT_TRUE(a.has_symmetric_pattern());
}

TEST(Generators, PaperTableHasAll22Matrices) {
  const auto all = paper_matrices();
  EXPECT_EQ(all.size(), 22u);
  EXPECT_EQ(paper_matrices_small().size(), 15u);
  const auto large = paper_matrices_large();
  EXPECT_EQ(large.size(), 10u);
  for (const auto& m : large) EXPECT_GT(m.nnz, 10'000'000);
  EXPECT_EQ(find_paper_matrix("gupta2").max_degree, 8413);
  EXPECT_THROW(find_paper_matrix("nope"), core::Error);
}

TEST(Generators, ScaledSpecPreservesShape) {
  // Scaling preserves the two *shape* statistics the evaluation depends on:
  // maxdr (fraction of ranks a dense row reaches) and the max/avg degree
  // ratio (irregularity). Rows and avg degree both shrink by `scale`.
  const MatrixSpec& orig = find_paper_matrix("pkustk04");
  const MatrixSpec s = scaled_spec(orig, 0.25, 1000);
  EXPECT_LT(s.rows, orig.rows);
  EXPECT_GE(s.rows, 1000);
  const double orig_avg = static_cast<double>(orig.nnz) / orig.rows;
  const double s_avg = static_cast<double>(s.nnz) / s.rows;
  EXPECT_NEAR(s_avg, orig_avg * 0.25, orig_avg * 0.05);
  EXPECT_NEAR(s.maxdr, orig.maxdr, 0.01);
  const double orig_ratio = static_cast<double>(orig.max_degree) / orig_avg;
  const double s_ratio = static_cast<double>(s.max_degree) / s_avg;
  EXPECT_NEAR(s_ratio, orig_ratio, 0.4 * orig_ratio);
  EXPECT_DOUBLE_EQ(s.cv, orig.cv);
  // min_rows floor wins over tiny scales; avg degree is floored at 6.
  const MatrixSpec t = scaled_spec(orig, 0.0001, 2048);
  EXPECT_EQ(t.rows, 2048);
  EXPECT_GE(static_cast<double>(t.nnz) / t.rows, 6.0);
  // scale = 1 keeps everything (modulo integer rounding of nnz).
  const MatrixSpec u = scaled_spec(orig, 1.0, 1);
  EXPECT_EQ(u.rows, orig.rows);
  EXPECT_NEAR(static_cast<double>(u.nnz), static_cast<double>(orig.nnz),
              static_cast<double>(orig.rows));
}

struct GenCase {
  const char* name;
  double scale;
};

class PaperMatrixFidelity : public ::testing::TestWithParam<GenCase> {};

TEST_P(PaperMatrixFidelity, StatisticsTrackTable1) {
  const auto& [name, scale] = GetParam();
  const MatrixSpec spec = scaled_spec(find_paper_matrix(name), scale, 512);
  const Csr a = generate(spec, 99);
  EXPECT_EQ(a.num_rows(), spec.rows);
  EXPECT_TRUE(a.has_symmetric_pattern());
  EXPECT_TRUE(a.has_full_diagonal());
  const DegreeStats s = degree_stats(a);
  // nnz within 2x (Chung-Lu caps very heavy tails), max degree within the
  // target up to Poisson fluctuation (realized degrees scatter ~sqrt(w)
  // around their expectation). These statistics drive the communication
  // pattern.
  const double target_avg = static_cast<double>(spec.nnz) / spec.rows;
  EXPECT_GT(s.avg_degree, 0.45 * target_avg) << name;
  EXPECT_LT(s.avg_degree, 1.6 * target_avg) << name;
  EXPECT_GT(s.max_degree, spec.max_degree / 2) << name;
  EXPECT_LE(s.max_degree,
            spec.max_degree + 5 * static_cast<std::int64_t>(
                                      std::sqrt(static_cast<double>(spec.max_degree))) + 8)
      << name;
  if (spec.cv > 1.0) {
    EXPECT_GT(s.cv, 0.4) << name;  // irregularity survives
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PaperMatrixFidelity,
                         ::testing::Values(GenCase{"cbuckle", 0.5},
                                           GenCase{"sparsine", 0.25},
                                           GenCase{"coAuthorsDBLP", 0.05},
                                           GenCase{"GaAsH6", 0.1},
                                           GenCase{"gupta2", 0.1},
                                           GenCase{"pattern1", 0.2},
                                           GenCase{"mip1", 0.05},
                                           GenCase{"TSOPF_FS_b300_c2", 0.05}));

TEST(Generators, GenerateIsDeterministic) {
  const MatrixSpec spec = scaled_spec(find_paper_matrix("sparsine"), 0.1, 256);
  const Csr a = generate(spec, 5);
  const Csr b = generate(spec, 5);
  EXPECT_EQ(a.num_nonzeros(), b.num_nonzeros());
  EXPECT_TRUE(std::equal(a.col_idx().begin(), a.col_idx().end(), b.col_idx().begin()));
}

TEST(Generators, ValidatesArguments) {
  EXPECT_THROW(random_uniform(2, 2, 10, 1), core::Error);
  EXPECT_THROW(lognormal_degrees(10, 5.0, 0.5, 100, 1), core::Error);  // max > n
  EXPECT_THROW(scaled_spec(find_paper_matrix("cbuckle"), 0.0, 1), core::Error);
  EXPECT_THROW(scaled_spec(find_paper_matrix("cbuckle"), 1.5, 1), core::Error);
}

}  // namespace
}  // namespace stfw::sparse
