#include "partition/hypergraph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "sparse/generators.hpp"

namespace stfw::partition {
namespace {

TEST(HypergraphTest, ColumnNetModelOfSmallMatrix) {
  // [ x x . ]
  // [ . x . ]
  // [ x . x ]
  const sparse::Csr a = sparse::Csr::from_triplets(
      3, 3, {{0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {2, 0, 1}, {2, 2, 1}});
  const Hypergraph h = Hypergraph::column_net_model(a);
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_nets(), 3);
  EXPECT_EQ(h.num_pins(), 5);
  // Net 0 (column 0) connects rows 0 and 2.
  const auto p0 = h.net_pins(0);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0[0], 0);
  EXPECT_EQ(p0[1], 2);
  // Vertex weights = row nonzero counts.
  EXPECT_EQ(h.vertex_weight(0), 2);
  EXPECT_EQ(h.vertex_weight(1), 1);
  EXPECT_EQ(h.total_vertex_weight(), 5);
  // Incidence transpose.
  const auto nets0 = h.vertex_nets(0);
  ASSERT_EQ(nets0.size(), 2u);
  EXPECT_EQ(nets0[0], 0);
  EXPECT_EQ(nets0[1], 1);
}

TEST(HypergraphTest, ConnectivityCostCountsLambdaMinusOne) {
  const sparse::Csr a = sparse::Csr::from_triplets(
      4, 4,
      {{0, 0, 1}, {1, 0, 1}, {2, 0, 1}, {3, 0, 1},  // column 0 touches all rows
       {1, 1, 1}, {2, 2, 1}, {3, 3, 1}});
  const Hypergraph h = Hypergraph::column_net_model(a);
  // Parts {0,0,1,1}: net 0 spans 2 parts -> cost 1; others internal.
  const std::vector<std::int32_t> half{0, 0, 1, 1};
  EXPECT_EQ(connectivity_cost(h, half, 2), 1);
  EXPECT_EQ(cut_nets(h, half, 2), 1);
  // Fully spread: net 0 spans 4 parts -> cost 3.
  const std::vector<std::int32_t> spread{0, 1, 2, 3};
  EXPECT_EQ(connectivity_cost(h, spread, 4), 3);
  EXPECT_EQ(cut_nets(h, spread, 4), 1);
  // Everything in one part: no cost.
  const std::vector<std::int32_t> one{0, 0, 0, 0};
  EXPECT_EQ(connectivity_cost(h, one, 1), 0);
}

TEST(HypergraphTest, ImbalanceMetric) {
  const sparse::Csr a = sparse::Csr::from_triplets(
      4, 4, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1}});
  const Hypergraph h = Hypergraph::column_net_model(a);
  const std::vector<std::int32_t> balanced{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(imbalance(h, balanced, 2), 0.0);
  const std::vector<std::int32_t> skewed{0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(imbalance(h, skewed, 2), 0.5);  // 3 vs ideal 2
}

TEST(HypergraphTest, ValidatesInput) {
  const sparse::Csr a = sparse::Csr::from_triplets(2, 2, {{0, 0, 1}, {1, 1, 1}});
  const Hypergraph h = Hypergraph::column_net_model(a);
  const std::vector<std::int32_t> bad{0};
  EXPECT_THROW(connectivity_cost(h, bad, 2), core::Error);
  const std::vector<std::int32_t> out_of_range{0, 5};
  EXPECT_THROW(connectivity_cost(h, out_of_range, 2), core::Error);
}

TEST(HypergraphTest, ColumnNetVolumeEqualsSpmvCommVolume) {
  // The column-net model's connectivity cost is exactly the x-entries that
  // must cross rank boundaries in row-parallel SpMV (checked structurally
  // against a direct count).
  const sparse::Csr a = sparse::random_uniform(60, 60, 600, 4).symmetrized();
  const Hypergraph h = Hypergraph::column_net_model(a);
  const std::vector<std::int32_t> parts = [] {
    std::vector<std::int32_t> p(60);
    for (int i = 0; i < 60; ++i) p[static_cast<std::size_t>(i)] = i % 4;
    return p;
  }();
  std::int64_t direct_count = 0;
  for (std::int32_t c = 0; c < a.num_cols(); ++c) {
    std::set<std::int32_t> consumers;
    for (std::int32_t r = 0; r < a.num_rows(); ++r) {
      const auto cols = a.row_cols(r);
      if (std::binary_search(cols.begin(), cols.end(), c))
        consumers.insert(parts[static_cast<std::size_t>(r)]);
    }
    if (!consumers.empty()) direct_count += static_cast<std::int64_t>(consumers.size()) - 1;
  }
  EXPECT_EQ(connectivity_cost(h, parts, 4), direct_count);
}

}  // namespace
}  // namespace stfw::partition
