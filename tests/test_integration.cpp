#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/analysis.hpp"
#include "netsim/machine.hpp"
#include "partition/partitioner.hpp"
#include "sim/bsp_simulator.hpp"
#include "sparse/generators.hpp"
#include "spmv/distributed.hpp"

/// End-to-end pipeline tests: generate a paper matrix, partition it, extract
/// the SpMV communication pattern, run BL and STFW through the simulator,
/// and check the paper's qualitative claims hold on our substrate.

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

struct Pipeline {
  sparse::Csr matrix;
  std::vector<std::int32_t> parts;
  sim::CommPattern pattern;
};

Pipeline make_pipeline(const char* name, double scale, Rank K, std::uint64_t seed) {
  const auto spec = sparse::scaled_spec(sparse::find_paper_matrix(name), scale, 4 * K);
  sparse::Csr a = sparse::generate(spec, seed);
  partition::PartitionOptions opts;
  opts.num_parts = K;
  opts.seed = seed;
  auto parts = partition::partition_rows(a, opts);
  spmv::SpmvProblem problem(a, parts, K, /*build_plans=*/false);
  auto pattern = problem.comm_pattern();
  return Pipeline{std::move(a), std::move(parts), std::move(pattern)};
}

TEST(Integration, IrregularMatrixIsLatencyBoundUnderBl) {
  // The premise of the paper: irregular matrices with dense rows produce a
  // large gap between max and average message count at scale.
  const Rank K = 128;
  const auto p = make_pipeline("GaAsH6", 0.1, K, 3);
  const auto counts = p.pattern.send_counts();
  const double avg = p.pattern.avg_send_count();
  const auto mmax = p.pattern.max_send_count();
  EXPECT_GT(mmax, 2.5 * avg) << "expected a pronounced max-vs-avg message gap";
  EXPECT_GT(mmax, K / 4) << "dense rows should touch a large share of ranks";
}

TEST(Integration, StfwCompressesTheMessageCountSpectrum) {
  const Rank K = 128;
  const auto p = make_pipeline("gupta2", 0.05, K, 5);
  const auto bl = sim::simulate_exchange(Vpt::direct(K), p.pattern);
  std::int64_t prev_mmax = bl.metrics.max_send_count();
  for (int n : {2, 3, 4, 7}) {
    const auto r = sim::simulate_exchange(Vpt::balanced(K, n), p.pattern);
    EXPECT_LE(r.metrics.max_send_count(), Vpt::balanced(K, n).max_message_count_bound());
    EXPECT_LT(r.metrics.max_send_count(), prev_mmax) << "n=" << n;
    prev_mmax = r.metrics.max_send_count();
    // Volume grows with n but stays under the loose bound n * BL volume.
    EXPECT_GE(r.metrics.total_volume_words(), bl.metrics.total_volume_words());
    EXPECT_LE(r.metrics.total_volume_words(), n * bl.metrics.total_volume_words());
  }
}

TEST(Integration, StfwWinsCommTimeOnLatencyBoundInstances) {
  // Table 2's qualitative content at laptop scale: for irregular instances
  // a mid-dimension STFW beats BL on simulated communication time on BG/Q.
  const Rank K = 256;
  const auto machine = netsim::Machine::blue_gene_q(K);
  sim::SimOptions opts;
  opts.machine = &machine;
  int wins = 0;
  for (const char* name : {"GaAsH6", "gupta2", "pattern1", "TSOPF_FS_b300_c2"}) {
    const auto p = make_pipeline(name, 0.05, K, 11);
    const double bl = sim::simulate_exchange(Vpt::direct(K), p.pattern, opts).comm_time_us;
    double best_stfw = 1e300;
    for (int n = 2; n <= 8; ++n)
      best_stfw = std::min(
          best_stfw, sim::simulate_exchange(Vpt::balanced(K, n), p.pattern, opts).comm_time_us);
    if (best_stfw < bl) ++wins;
  }
  EXPECT_GE(wins, 3) << "STFW should win on at least 3 of 4 latency-bound instances";
}

TEST(Integration, RegularStencilDoesNotNeedStfw) {
  // Contrast case: a stencil pattern has tiny message counts already; BL is
  // near-optimal and STFW's extra volume cannot pay off by much. The key
  // structural fact: BL mmax is already tiny.
  const Rank K = 64;
  const sparse::Csr a = sparse::stencil_2d(96, 96);
  const auto parts = partition::block_partition_rows(a, K);
  const spmv::SpmvProblem problem(a, parts, K, false);
  const auto pattern = problem.comm_pattern();
  EXPECT_LE(pattern.max_send_count(), 4);
}

TEST(Integration, BufferMetricStaysNearTwiceBl) {
  // Section 6.2: STFW buffer sizes stay below twice BL's.
  const Rank K = 128;
  const auto p = make_pipeline("pkustk04", 0.05, K, 7);
  const auto bl = sim::simulate_exchange(Vpt::direct(K), p.pattern);
  const auto bl_buffer = bl.metrics.max_buffer_bytes();
  for (int n : {2, 4, 7}) {
    const auto r = sim::simulate_exchange(Vpt::balanced(K, n), p.pattern);
    EXPECT_LT(r.metrics.max_buffer_bytes(), 3 * bl_buffer) << "n=" << n;
  }
}

TEST(Integration, HypergraphPartitionBeatsBlockOnVolume) {
  // Why the paper partitions with PaToH at all.
  const Rank K = 64;
  const auto spec = sparse::scaled_spec(sparse::find_paper_matrix("net125"), 0.2, 4 * K);
  const sparse::Csr a = sparse::generate(spec, 21);
  partition::PartitionOptions opts;
  opts.num_parts = K;
  const auto hg_parts = partition::partition_rows(a, opts);
  const auto blk_parts = partition::block_partition_rows(a, K);
  const auto rnd_parts = partition::random_partition(a.num_rows(), K, 77);
  const spmv::SpmvProblem hg(a, hg_parts, K, false);
  const spmv::SpmvProblem blk(a, blk_parts, K, false);
  const spmv::SpmvProblem rnd(a, rnd_parts, K, false);
  // The partitioner considers a contiguous split among its candidates, so
  // it can tie block on banded inputs but never lose to it — and it must
  // crush a random assignment.
  EXPECT_LE(hg.total_comm_volume_words(), blk.total_comm_volume_words());
  EXPECT_LT(hg.total_comm_volume_words(), rnd.total_comm_volume_words() / 2);
}

TEST(Integration, LargeScaleSixteenKRanksSmoke) {
  // A miniature of the Section 6.5 study: 16K ranks on the XK7 model.
  const Rank K = 16384;
  // Synthetic hub-heavy pattern at 16K ranks (full matrix pipelines at this
  // scale run in the benches; the smoke test pins scalability of the engine).
  sim::CommPattern pattern(K);
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<Rank> pick(0, K - 1);
  for (Rank r = 0; r < K; ++r) {
    for (int j = 0; j < 6; ++j) pattern.add_send(r, pick(rng), 64);
    if (r < 8)  // eight hubs touch 2K ranks each
      for (Rank d = 0; d < K; d += 8) pattern.add_send(r, d, 16);
  }
  pattern.finalize();
  const auto machine = netsim::Machine::cray_xk7(K);
  sim::SimOptions opts;
  opts.machine = &machine;
  const auto bl = sim::simulate_exchange(Vpt::direct(K), pattern, opts);
  const auto stfw4 = sim::simulate_exchange(Vpt::balanced(K, 4), pattern, opts);
  EXPECT_GT(bl.metrics.max_send_count(), 2000);
  EXPECT_LE(stfw4.metrics.max_send_count(), Vpt::balanced(K, 4).max_message_count_bound());
  EXPECT_LT(stfw4.comm_time_us, bl.comm_time_us);
}

}  // namespace
}  // namespace stfw
