#include "sim/leader_aggregation.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/error.hpp"
#include "core/vpt.hpp"
#include "sim/bsp_simulator.hpp"

namespace stfw::sim {
namespace {

using core::Rank;

TEST(LeaderAggregation, IntraNodeTrafficStaysDirect) {
  // 32 ranks on 2 BG/Q nodes (16 ranks/node): purely local traffic makes no
  // leader or inter-node messages at all.
  const Rank K = 32;
  const auto machine = netsim::Machine::blue_gene_q(K);
  CommPattern p(K);
  for (Rank r = 0; r < 16; ++r) p.add_send(r, (r + 1) % 16, 64);
  p.finalize();
  const auto result = simulate_leader_aggregation(p, machine);
  EXPECT_EQ(result.metrics.max_send_count(), 1);
  EXPECT_DOUBLE_EQ(result.stage_times_us[1], 0.0);
  EXPECT_DOUBLE_EQ(result.stage_times_us[2], 0.0);
  EXPECT_EQ(result.metrics.total_volume_words(), 16 * 8);
}

TEST(LeaderAggregation, OffNodeTrafficRoutesThroughLeaders) {
  // One non-leader rank sends to one non-leader rank on another node:
  // exactly three messages — to leader, leader to leader, leader to dest.
  const Rank K = 32;
  const auto machine = netsim::Machine::blue_gene_q(K);
  CommPattern p(K);
  p.add_send(3, 21, 128);  // node 0 rank -> node 1 rank (leaders are 0 and 16)
  p.finalize();
  const auto result = simulate_leader_aggregation(p, machine);
  EXPECT_EQ(result.metrics.send_counts()[3], 1);   // -> leader 0
  EXPECT_EQ(result.metrics.send_counts()[0], 1);   // -> leader 16
  EXPECT_EQ(result.metrics.send_counts()[16], 1);  // -> rank 21
  EXPECT_EQ(result.metrics.recv_counts()[21], 1);
  // Volume: the 128-byte payload moved three times.
  EXPECT_EQ(result.metrics.total_volume_words(), 3 * 128 / 8);
  EXPECT_GT(result.stage_times_us[0], 0.0);
  EXPECT_GT(result.stage_times_us[1], 0.0);
  EXPECT_GT(result.stage_times_us[2], 0.0);
}

TEST(LeaderAggregation, BoundsNonLeaderMessageCounts) {
  // Hub-and-spoke: rank 5 sends to everyone. Under leader aggregation its
  // own count collapses to (local dests + 1); its leader pays instead.
  const Rank K = 128;
  const auto machine = netsim::Machine::blue_gene_q(K);  // 8 nodes
  CommPattern p(K);
  for (Rank d = 0; d < K; ++d)
    if (d != 5) p.add_send(5, d, 16);
  p.finalize();
  const auto result = simulate_leader_aggregation(p, machine);
  EXPECT_EQ(result.metrics.send_counts()[5], 15 + 1);  // 15 local + 1 to leader
  // Leader 0 exchanges with the 7 other node leaders.
  EXPECT_EQ(result.metrics.send_counts()[0], 7);
  // Destination leaders scatter to at most 15 non-leader locals each.
  EXPECT_LE(result.metrics.max_send_count(), 16);
}

TEST(LeaderAggregation, LeaderSerializationLosesToStfwOnBalancedIrregularTraffic) {
  // When *every* rank is irregular (not just one hub), the leader funnel
  // becomes the bottleneck while the VPT spreads routing over all ranks:
  // STFW's slowest process does strictly less than the busiest leader.
  const Rank K = 256;
  const auto machine = netsim::Machine::cray_xk7(K);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Rank> any(0, K - 1);
  CommPattern p(K);
  for (Rank r = 0; r < K; ++r)
    for (int j = 0; j < 24; ++j) {
      const Rank d = any(rng);
      if (d != r) p.add_send(r, d, 32);
    }
  p.finalize();
  const auto leader = simulate_leader_aggregation(p, machine);
  SimOptions opts;
  opts.machine = &machine;
  const auto stfw = simulate_exchange(core::Vpt::balanced(K, 4), p, opts);
  EXPECT_LT(stfw.comm_time_us, leader.comm_time_us);
}

TEST(LeaderAggregation, Validates) {
  CommPattern p(4);
  EXPECT_THROW(simulate_leader_aggregation(p, netsim::Machine::blue_gene_q(4)), core::Error);
}

}  // namespace
}  // namespace stfw::sim
