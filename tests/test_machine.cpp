#include "netsim/machine.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace stfw::netsim {
namespace {

TEST(Machine, PresetsCoverTheirRankCounts) {
  for (core::Rank k : {core::Rank{64}, core::Rank{512}, core::Rank{4096}, core::Rank{16384}}) {
    for (const Machine& m :
         {Machine::blue_gene_q(k), Machine::cray_xk7(k), Machine::cray_xc40(k)}) {
      EXPECT_GE(m.topology().num_nodes() * m.ranks_per_node(), k) << m.name();
      EXPECT_LT(m.node_of(k - 1), m.topology().num_nodes()) << m.name();
      EXPECT_EQ(m.node_of(0), 0);
    }
  }
}

TEST(Machine, SendCostDecomposition) {
  const Machine m = Machine::blue_gene_q(64);
  const double same_node = m.send_cost_us(0, 1, 0);  // ranks 0,1 share node 0
  EXPECT_DOUBLE_EQ(same_node, m.alpha_us());
  const double with_bytes = m.send_cost_us(0, 1, 1000);
  EXPECT_DOUBLE_EQ(with_bytes, m.alpha_us() + 1000 * m.beta_us_per_byte());
  EXPECT_DOUBLE_EQ(m.recv_cost_us(1000), m.recv_alpha_us() + 1000 * m.beta_us_per_byte());
}

TEST(Machine, CostGrowsWithDistanceAndSize) {
  const Machine m = Machine::cray_xk7(4096);
  // Rank 4000 lives on a far node; hop term must make it dearer than a
  // same-node target.
  EXPECT_GT(m.send_cost_us(0, 4000, 64), m.send_cost_us(0, 1, 64));
  EXPECT_GT(m.send_cost_us(0, 4000, 4096), m.send_cost_us(0, 4000, 64));
}

TEST(Machine, Xc40IsMostLatencyBound) {
  // Section 6.4 attributes the XC40's larger STFW wins to its larger
  // startup-to-per-byte ratio; the presets must preserve that ordering.
  const auto bgq = Machine::blue_gene_q(512);
  const auto xk7 = Machine::cray_xk7(512);
  const auto xc40 = Machine::cray_xc40(512);
  EXPECT_GT(xc40.latency_equivalent_bytes(), bgq.latency_equivalent_bytes());
  EXPECT_GT(xc40.latency_equivalent_bytes(), xk7.latency_equivalent_bytes());
}

TEST(Machine, RanksPerNodeMatchTheSystems) {
  EXPECT_EQ(Machine::blue_gene_q(64).ranks_per_node(), 16);
  EXPECT_EQ(Machine::cray_xk7(64).ranks_per_node(), 16);
  EXPECT_EQ(Machine::cray_xc40(64).ranks_per_node(), 32);
}

TEST(Machine, PresetsHaveInjectionRates) {
  EXPECT_GT(Machine::blue_gene_q(64).injection_bytes_per_us(), 0.0);
  EXPECT_GT(Machine::cray_xk7(64).injection_bytes_per_us(), 0.0);
  EXPECT_GT(Machine::cray_xc40(64).injection_bytes_per_us(), 0.0);
  // Gemini's shared NIC is the narrowest of the three.
  EXPECT_LT(Machine::cray_xk7(64).injection_bytes_per_us(),
            Machine::blue_gene_q(64).injection_bytes_per_us());
}

TEST(Machine, ValidatesParameters) {
  auto topo = std::make_shared<TorusTopology>(std::vector<int>{4});
  EXPECT_THROW(Machine("bad", nullptr, 1, 1, 1, 1, 1), core::Error);
  EXPECT_THROW(Machine("bad", topo, 0, 1, 1, 1, 1), core::Error);
  EXPECT_THROW(Machine("bad", topo, 1, -1, 1, 1, 1), core::Error);
}

}  // namespace
}  // namespace stfw::netsim
