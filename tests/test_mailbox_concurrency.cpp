// MPSC mailbox torture battery (zero-copy/lock-free delivery PR satellite).
//
// The Cluster's fault-free fast path delivers every post through a bounded
// lock-free MPSC ring (runtime/mpsc_ring.hpp) with a locked overflow channel
// and a per-source ticket gate restoring per-(source, tag) FIFO order — see
// the design note in comm.cpp. This suite attacks each layer:
//
//  * MpscRing unit level: full/empty boundaries and wraparound at the
//    degenerate capacities 1, 2 and 3, where every push immediately collides
//    with the consumer's recycling store;
//  * raw N-producers-by-1-consumer torture (core::Thread, so the tsan preset
//    sees every access): multiset delivery and per-producer FIFO through the
//    ring alone;
//  * cluster level with rings sized 1/2/3: the overflow fallback engages on
//    almost every post while the ticket gate must still reconstruct exact
//    per-source send order;
//  * interleaved runs flipping between lock-free (no injector) and the
//    locked mailbox (fault injector installed, exercising reorder-to-front
//    and duplication — deque semantics the ring cannot provide), proving the
//    quiescent per-run mode switch leaves no message behind;
//  * a locked-vs-lockfree differential on a full store-and-forward exchange.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "core/vpt.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/comm.hpp"
#include "runtime/mpsc_ring.hpp"
#include "runtime/stfw_communicator.hpp"

namespace stfw {
namespace {

using runtime::Cluster;
using runtime::Comm;
using runtime::Deadline;
using runtime::Message;
using runtime::MpscRing;

TEST(MpscRing, EmptyPopFailsAndSinglePushPopRoundTrips) {
  MpscRing<int> ring(4);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(42));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, FullBoundaryIsExactlyCapacity) {
  for (const std::size_t cap : {1u, 2u, 3u, 8u}) {
    MpscRing<std::size_t> ring(cap);
    EXPECT_EQ(ring.capacity(), cap);
    for (std::size_t i = 0; i < cap; ++i)
      EXPECT_TRUE(ring.try_push(std::size_t{i})) << "cap " << cap << " push " << i;
    EXPECT_FALSE(ring.try_push(std::size_t{99})) << "cap " << cap << " must be full";
    std::size_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, 0u);
    // One slot recycled: exactly one more push fits.
    EXPECT_TRUE(ring.try_push(std::size_t{100}));
    EXPECT_FALSE(ring.try_push(std::size_t{101}));
  }
}

TEST(MpscRing, WraparoundPreservesOrderAtTinyCapacities) {
  for (const std::size_t cap : {1u, 2u, 3u}) {
    MpscRing<int> ring(cap);
    int next_out = 0;
    int next_in = 0;
    // Many laps around the ring, interleaving fills and drains so the
    // sequence stamps wrap the 64-bit positions through every slot phase.
    for (int round = 0; round < 1000; ++round) {
      while (ring.try_push(static_cast<int>(next_in))) ++next_in;
      int out = -1;
      while (ring.try_pop(out)) {
        ASSERT_EQ(out, next_out);
        ++next_out;
      }
    }
    EXPECT_EQ(next_out, next_in);
    EXPECT_EQ(next_out, 1000 * static_cast<int>(cap));
  }
}

TEST(MpscRing, MoveOnlyPayloadsSurviveRecycling) {
  MpscRing<std::unique_ptr<int>> ring(2);
  for (int lap = 0; lap < 64; ++lap) {
    ASSERT_TRUE(ring.try_push(std::make_unique<int>(lap)));
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, lap);
  }
}

// Raw multi-producer torture: values encode (producer, sequence) so the
// consumer can assert per-producer FIFO — the property the mailbox's ticket
// gate builds on — and exact multiset delivery. Producers spin on a full
// ring (the mailbox would overflow to the locked channel instead), so the
// ring's claim/publish protocol is the only thing under test.
TEST(MpscRing, MultiProducerTorturePreservesPerProducerOrder) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(8);
  std::atomic<bool> go{false};

  std::vector<core::Thread> threads;
  threads.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, &go, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = (p << 32) | i;
        while (!ring.try_push(std::move(v))) {
          v = (p << 32) | i;
          std::this_thread::yield();  // full: let the consumer drain
        }
      }
    });
  }

  go.store(true, std::memory_order_release);
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) continue;
    const std::uint64_t p = v >> 32;
    const std::uint64_t seq = v & 0xffffffffull;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[p]) << "per-producer FIFO violated for producer " << p;
    ++next_seq[p];
    ++received;
  }
  for (core::Thread& t : threads) t.join();
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));
}

// Cluster-level: with ring capacities 1/2/3 nearly every post overflows into
// the locked channel, and harvest interleaves ring and overflow messages
// arbitrarily. The per-source ticket gate must still hand the consumer exact
// send order per (source, tag) — the mailbox ordering contract.
TEST(MailboxLockfree, TinyRingsOverflowYetPreservePerSourceOrder) {
  for (const std::size_t ring_cap : {1u, 2u, 3u}) {
    Cluster cluster(4);
    cluster.set_mailbox_ring_capacity(ring_cap);
    constexpr int kMsgs = 200;
    cluster.run([&](Comm& comm) {
      const int me = comm.rank();
      const int n = comm.size();
      EXPECT_TRUE(cluster.lockfree_active());
      for (int i = 0; i < kMsgs; ++i) {
        for (int dest = 0; dest < n; ++dest) {
          if (dest == me) continue;
          std::vector<std::byte> data(3);
          data[0] = static_cast<std::byte>(me);
          data[1] = static_cast<std::byte>(i);
          data[2] = static_cast<std::byte>(i >> 8);
          comm.send(dest, /*tag=*/7, std::move(data));
        }
      }
      std::vector<int> next(static_cast<std::size_t>(n), 0);
      for (int got = 0; got < kMsgs * (n - 1); ++got) {
        const Message m = comm.recv(runtime::kAnySource, 7, Deadline::in(
                                        std::chrono::milliseconds(20000)));
        ASSERT_EQ(m.data.size(), 3u);
        const int src = static_cast<int>(m.data[0]);
        const int seq = static_cast<int>(m.data[1]) | (static_cast<int>(m.data[2]) << 8);
        ASSERT_EQ(m.source, src);
        ASSERT_EQ(seq, next[static_cast<std::size_t>(src)])
            << "per-source order broken (ring " << ring_cap << ")";
        ++next[static_cast<std::size_t>(src)];
      }
    });
  }
}

// Flip between lock-free runs and injector-forced locked runs on the same
// Cluster. The injector's reorder/duplicate faults need the deque semantics
// of the locked mailbox; the quiescent mode decision at run() entry must
// pick the right channel every time and leak nothing across runs.
TEST(MailboxLockfree, InterleavedFallbackAndLockfreeRunsDeliverEverything) {
  const core::Vpt vpt({2, 2});
  Cluster cluster(vpt.size());
  cluster.set_mailbox_ring_capacity(2);  // keep the overflow path hot too
  auto injector = std::make_shared<fault::FaultInjector>([] {
    fault::FaultConfig cfg;
    cfg.seed = 99;
    cfg.duplicate_prob = 0.2;
    cfg.reorder_prob = 0.2;
    cfg.delay_prob = 0.1;
    return cfg;
  }());

  for (int round = 0; round < 6; ++round) {
    const bool faulted = round % 2 == 1;
    cluster.set_fault_injector(faulted ? injector : nullptr);
    cluster.run([&](Comm& comm) {
      EXPECT_EQ(cluster.lockfree_active(), !faulted);
      StfwCommunicator stfw(comm, vpt);
      const auto me = static_cast<core::Rank>(comm.rank());
      std::vector<OutboundMessage> sends;
      sends.push_back({(me + 1) % vpt.size(),
                       std::vector<std::byte>(16, static_cast<std::byte>(round + me))});
      const ResilientExchangeResult result = stfw.exchange_resilient(sends);
      EXPECT_TRUE(result.fully_recovered);
      ASSERT_EQ(result.delivered.size(), 1u);
      const auto from = (me + vpt.size() - 1) % vpt.size();
      EXPECT_EQ(result.delivered[0].source, from);
      EXPECT_EQ(result.delivered[0].bytes,
                std::vector<std::byte>(16, static_cast<std::byte>(round + from)));
    });
  }
  cluster.set_fault_injector(nullptr);
}

// Differential: a full skewed exchange must deliver identical inboxes with
// the lock-free mailbox on and off (locked legacy path). The lock-free side
// runs at ring capacity 1 as well as the default: capacity 1 pushes nearly
// every staged frame through the overflow channel mid-exchange, the corner
// where a mailbox bug shows up as a stage-dependency timeout rather than a
// unit-test failure.
TEST(MailboxLockfree, LockedAndLockfreeExchangesDeliverIdenticalInboxes) {
  const core::Vpt vpt({2, 2, 2});
  const auto K = vpt.size();
  auto sends_for = [&](core::Rank r) {
    std::vector<OutboundMessage> sends;
    for (core::Rank d = 0; d < K; ++d) {
      if ((r + d) % 3 == 0)
        sends.push_back({d, std::vector<std::byte>(static_cast<std::size_t>(8 + r + d),
                                                   static_cast<std::byte>(r * 16 + d))});
    }
    return sends;
  };

  auto run_exchanges = [&](bool lockfree, std::size_t ring_cap) {
    std::vector<std::vector<InboundMessage>> inboxes(static_cast<std::size_t>(K));
    Cluster cluster(K);
    cluster.set_lockfree_mailbox(lockfree);
    if (ring_cap != 0) cluster.set_mailbox_ring_capacity(ring_cap);
    cluster.run([&](Comm& comm) {
      EXPECT_EQ(cluster.lockfree_active(), lockfree);
      StfwCommunicator stfw(comm, vpt);
      const auto me = static_cast<core::Rank>(comm.rank());
      for (int iter = 0; iter < 3; ++iter)
        inboxes[static_cast<std::size_t>(me)] = stfw.exchange(sends_for(me));
    });
    return inboxes;
  };

  const auto inbox_locked = run_exchanges(false, 0);
  for (const std::size_t ring_cap : {0u, 1u}) {
    const auto inbox_lockfree = run_exchanges(true, ring_cap);
    for (core::Rank r = 0; r < K; ++r)
      EXPECT_EQ(inbox_locked[static_cast<std::size_t>(r)],
                inbox_lockfree[static_cast<std::size_t>(r)])
          << "rank " << r << " ring_cap " << ring_cap;
  }
}

}  // namespace
}  // namespace stfw
