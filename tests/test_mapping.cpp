#include "mapping/mapping.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/error.hpp"
#include "sim/bsp_simulator.hpp"

namespace stfw::mapping {
namespace {

using core::Rank;
using core::Vpt;

sim::CommPattern clustered_pattern(Rank K, Rank cluster, std::uint32_t heavy,
                                   std::uint32_t light, std::uint64_t seed) {
  // Heavy traffic inside clusters of `cluster` *scattered* ranks, light
  // noise elsewhere. A good VPT mapping co-locates each cluster.
  std::mt19937_64 rng(seed);
  std::vector<Rank> shuffled(static_cast<std::size_t>(K));
  std::iota(shuffled.begin(), shuffled.end(), 0);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  sim::CommPattern p(K);
  for (Rank base = 0; base < K; base += cluster)
    for (Rank i = 0; i < cluster; ++i)
      for (Rank j = 0; j < cluster; ++j)
        if (i != j)
          p.add_send(shuffled[static_cast<std::size_t>(base + i)],
                     shuffled[static_cast<std::size_t>(base + j)], heavy);
  std::uniform_int_distribution<Rank> any(0, K - 1);
  for (Rank r = 0; r < K; ++r) {
    const Rank d = any(rng);
    if (d != r) p.add_send(r, d, light);
  }
  p.finalize();
  return p;
}

TEST(PermutationTest, IdentityAndInverse) {
  const auto id = Permutation::identity(8);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id(5), 5);
  const Permutation p({2, 0, 1});
  EXPECT_FALSE(p.is_identity());
  const Permutation inv = p.inverse();
  for (Rank r = 0; r < 3; ++r) EXPECT_EQ(inv(p(r)), r);
}

TEST(PermutationTest, RejectsNonBijections) {
  EXPECT_THROW(Permutation({0, 0, 1}), core::Error);
  EXPECT_THROW(Permutation({0, 3}), core::Error);
  EXPECT_THROW(Permutation({-1, 0}), core::Error);
}

TEST(Mapping, PermutePatternRelabelsEndpoints) {
  sim::CommPattern p(4);
  p.add_send(0, 1, 8);
  p.add_send(2, 3, 16);
  p.finalize();
  const Permutation perm({3, 2, 1, 0});  // reverse
  const auto q = permute_pattern(p, perm);
  ASSERT_EQ(q.sends(3).size(), 1u);
  EXPECT_EQ(q.sends(3)[0].dest, 2);
  ASSERT_EQ(q.sends(1).size(), 1u);
  EXPECT_EQ(q.sends(1)[0].dest, 0);
  EXPECT_EQ(q.total_payload_bytes(), p.total_payload_bytes());
}

TEST(Mapping, VptVolumeCostMatchesSimulatedVolume) {
  // The cost function is exactly the payload-bytes-times-hops volume the
  // simulator charges.
  const Vpt vpt({4, 4});
  std::mt19937_64 rng(3);
  sim::CommPattern p(16);
  std::uniform_int_distribution<Rank> any(0, 15);
  for (int i = 0; i < 60; ++i) {
    const Rank a = any(rng), b = any(rng);
    if (a != b) p.add_send(a, b, 24);
  }
  p.finalize();
  const auto id = Permutation::identity(16);
  const auto result = sim::simulate_exchange(vpt, p);
  EXPECT_EQ(vpt_volume_cost(p, vpt, id),
            static_cast<std::uint64_t>(result.metrics.total_volume_words()) * 8);
}

TEST(Mapping, OptimizerReducesVptVolume) {
  const Rank K = 64;
  const Vpt vpt = Vpt::balanced(K, 3);
  const auto pattern = clustered_pattern(K, 4, 64, 8, 7);
  const auto id = Permutation::identity(K);
  const auto opt = optimize_vpt_mapping(pattern, vpt);
  const auto cost_id = vpt_volume_cost(pattern, vpt, id);
  const auto cost_opt = vpt_volume_cost(pattern, vpt, opt);
  EXPECT_LT(cost_opt, cost_id) << "mapping should reduce forwarding volume";
  // And the simulator agrees end-to-end.
  const auto sim_id = sim::simulate_exchange(vpt, pattern);
  const auto sim_opt = sim::simulate_exchange(vpt, permute_pattern(pattern, opt));
  EXPECT_LT(sim_opt.metrics.total_volume_words(), sim_id.metrics.total_volume_words());
}

TEST(Mapping, OptimizerReducesPhysicalHops) {
  const Rank K = 256;
  const auto machine = netsim::Machine::cray_xk7(K);
  const auto pattern = clustered_pattern(K, 16, 128, 8, 11);
  const auto id = Permutation::identity(K);
  const auto opt = optimize_physical_mapping(pattern, machine);
  EXPECT_LT(physical_hop_cost(pattern, machine, opt), physical_hop_cost(pattern, machine, id));
}

TEST(Mapping, DeterministicForFixedSeed) {
  const Rank K = 32;
  const Vpt vpt = Vpt::balanced(K, 2);
  const auto pattern = clustered_pattern(K, 4, 32, 4, 5);
  MapOptions opts;
  opts.seed = 99;
  const auto a = optimize_vpt_mapping(pattern, vpt, opts);
  const auto b = optimize_vpt_mapping(pattern, vpt, opts);
  EXPECT_EQ(a.positions(), b.positions());
}

TEST(Mapping, MappedExchangeStillDeliversEverything) {
  // Remapping must never break correctness: same multiset of (src, dest)
  // after inverting the permutation.
  const Rank K = 32;
  const Vpt vpt = Vpt::balanced(K, 3);
  const auto pattern = clustered_pattern(K, 4, 16, 4, 13);
  const auto opt = optimize_vpt_mapping(pattern, vpt);
  sim::SimOptions sopts;
  sopts.collect_delivered = true;
  const auto result = sim::simulate_exchange(vpt, permute_pattern(pattern, opt), sopts);
  std::int64_t delivered = 0;
  for (const auto& inbox : result.delivered) delivered += static_cast<std::int64_t>(inbox.size());
  EXPECT_EQ(delivered, pattern.total_messages());
}

TEST(Mapping, ValidatesSizes) {
  sim::CommPattern p(4);
  p.finalize();
  EXPECT_THROW(vpt_volume_cost(p, Vpt::direct(8), Permutation::identity(4)), core::Error);
  EXPECT_THROW(permute_pattern(p, Permutation::identity(8)), core::Error);
}

}  // namespace
}  // namespace stfw::mapping
