#include "sparse/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "sparse/generators.hpp"

namespace stfw::sparse {
namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  const Csr a = random_uniform(20, 30, 100, 42);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const Csr b = read_matrix_market(ss);
  EXPECT_EQ(b.num_rows(), a.num_rows());
  EXPECT_EQ(b.num_cols(), a.num_cols());
  EXPECT_EQ(b.num_nonzeros(), a.num_nonzeros());
  EXPECT_TRUE(std::equal(a.col_idx().begin(), a.col_idx().end(), b.col_idx().begin()));
  for (std::size_t i = 0; i < a.values().size(); ++i)
    EXPECT_NEAR(a.values()[i], b.values()[i], 1e-9);
}

TEST(MatrixMarket, ReadsSymmetricStorage) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment line\n"
      "3 3 3\n"
      "1 1 5.0\n"
      "2 1 2.0\n"
      "3 3 1.0\n");
  const Csr a = read_matrix_market(ss);
  EXPECT_EQ(a.num_nonzeros(), 4);  // off-diagonal mirrored, diagonal not
  EXPECT_TRUE(a.has_symmetric_pattern());
  EXPECT_DOUBLE_EQ(a.row_values(0)[1], 2.0);  // mirrored a_12
}

TEST(MatrixMarket, ReadsPatternField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const Csr a = read_matrix_market(ss);
  EXPECT_EQ(a.num_nonzeros(), 2);
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 1.0);
}

TEST(MatrixMarket, ReadsIntegerField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 1 7\n");
  const Csr a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 7.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  {
    std::stringstream ss("not a matrix market file\n");
    EXPECT_THROW(read_matrix_market(ss), core::Error);
  }
  {
    std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_THROW(read_matrix_market(ss), core::Error);
  }
  {
    std::stringstream ss("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(ss), core::Error);  // truncated entries
  }
  {
    std::stringstream ss("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
    EXPECT_THROW(read_matrix_market(ss), core::Error);  // entry out of range
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const Csr a = stencil_2d(5, 4);
  const std::string path = ::testing::TempDir() + "/stfw_mm_test.mtx";
  write_matrix_market_file(path, a);
  const Csr b = read_matrix_market_file(path);
  EXPECT_EQ(b.num_nonzeros(), a.num_nonzeros());
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), core::Error);
}

}  // namespace
}  // namespace stfw::sparse
