#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace stfw::core {
namespace {

TEST(Metrics, StartsAtZero) {
  ExchangeMetrics m(4);
  EXPECT_EQ(m.num_ranks(), 4);
  EXPECT_EQ(m.max_send_count(), 0);
  EXPECT_DOUBLE_EQ(m.avg_send_count(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_send_volume_words(), 0.0);
  EXPECT_EQ(m.max_buffer_bytes(), 0u);
}

TEST(Metrics, AggregatesSendsPerRank) {
  ExchangeMetrics m(4);
  m.record_send(0, 80);
  m.record_send(0, 40);
  m.record_send(2, 160);
  EXPECT_EQ(m.max_send_count(), 2);
  EXPECT_DOUBLE_EQ(m.avg_send_count(), 3.0 / 4.0);
  // Volumes in 8-byte words: rank0 = 15, rank2 = 20 -> avg (15+20)/4.
  EXPECT_DOUBLE_EQ(m.avg_send_volume_words(), (15.0 + 20.0) / 4.0);
  EXPECT_EQ(m.max_send_volume_words(), 20);
  EXPECT_EQ(m.total_volume_words(), 35);
}

TEST(Metrics, TracksReceivesIndependently) {
  ExchangeMetrics m(2);
  m.record_send(0, 8);
  m.record_recv(1, 8);
  EXPECT_EQ(m.send_counts()[0], 1);
  EXPECT_EQ(m.send_counts()[1], 0);
  EXPECT_EQ(m.recv_counts()[1], 1);
  EXPECT_EQ(m.recv_payload_bytes()[1], 8u);
}

TEST(Metrics, BufferBytesKeepMax) {
  ExchangeMetrics m(3);
  m.record_buffer_bytes(0, 100);
  m.record_buffer_bytes(1, 300);
  m.record_buffer_bytes(2, 200);
  EXPECT_EQ(m.max_buffer_bytes(), 300u);
}

TEST(Metrics, RejectsEmpty) { EXPECT_THROW(ExchangeMetrics(0), Error); }

}  // namespace
}  // namespace stfw::core
