#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error.hpp"
#include "sparse/generators.hpp"

namespace stfw::partition {
namespace {

void expect_valid_partition(std::span<const std::int32_t> labels, std::int32_t parts) {
  for (std::int32_t l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, parts);
  }
}

TEST(Partitioner, BisectionOfAStencilIsBalancedAndCheap) {
  const sparse::Csr a = sparse::stencil_2d(24, 24);
  const Hypergraph h = Hypergraph::column_net_model(a);
  PartitionOptions opts;
  opts.num_parts = 2;
  const auto labels = partition(h, opts);
  expect_valid_partition(labels, 2);
  EXPECT_LE(imbalance(h, labels, 2), opts.epsilon + 0.02);
  // A good bisection of a 24x24 grid cuts ~one grid line; anything below
  // 4x that is clearly "working" (random would cut ~half the nets).
  EXPECT_LT(connectivity_cost(h, labels, 2), 4 * 24 * 3);
}

TEST(Partitioner, KWayBalanceHolds) {
  const sparse::Csr a =
      sparse::generate(sparse::scaled_spec(sparse::find_paper_matrix("sparsine"), 0.1, 512), 3);
  const Hypergraph h = Hypergraph::column_net_model(a);
  for (std::int32_t k : {4, 8, 16}) {
    PartitionOptions opts;
    opts.num_parts = k;
    opts.seed = 7;
    const auto labels = partition(h, opts);
    expect_valid_partition(labels, k);
    // Recursive bisection compounds per-level slack; allow a loose budget.
    EXPECT_LE(imbalance(h, labels, k), 0.35) << "k=" << k;
  }
}

TEST(Partitioner, BeatsRandomPartitionOnConnectivity) {
  const sparse::Csr a =
      sparse::generate(sparse::scaled_spec(sparse::find_paper_matrix("GaAsH6"), 0.05, 512), 5);
  const Hypergraph h = Hypergraph::column_net_model(a);
  PartitionOptions opts;
  opts.num_parts = 8;
  const auto ours = partition(h, opts);
  const auto rand = random_partition(a.num_rows(), 8, 99);
  EXPECT_LT(connectivity_cost(h, ours, 8), connectivity_cost(h, rand, 8));
}

TEST(Partitioner, DeterministicForFixedSeed) {
  const sparse::Csr a = sparse::stencil_2d(16, 16);
  const Hypergraph h = Hypergraph::column_net_model(a);
  PartitionOptions opts;
  opts.num_parts = 4;
  opts.seed = 42;
  EXPECT_EQ(partition(h, opts), partition(h, opts));
}

TEST(Partitioner, HandlesMorePartsThanVertices) {
  const sparse::Csr a = sparse::stencil_2d(3, 3);  // 9 vertices
  const Hypergraph h = Hypergraph::column_net_model(a);
  PartitionOptions opts;
  opts.num_parts = 16;
  const auto labels = partition(h, opts);
  expect_valid_partition(labels, 16);
  // No part holds two vertices while another holds none... at minimum every
  // vertex got a legal label; stronger: all labels distinct.
  std::set<std::int32_t> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 9u);
}

TEST(Partitioner, SinglePartIsTrivial) {
  const sparse::Csr a = sparse::stencil_2d(4, 4);
  PartitionOptions opts;
  opts.num_parts = 1;
  const auto labels = partition_rows(a, opts);
  for (std::int32_t l : labels) EXPECT_EQ(l, 0);
}

TEST(Partitioner, DeriveCoarserMergesSiblings) {
  const sparse::Csr a = sparse::stencil_2d(20, 20);
  const Hypergraph h = Hypergraph::column_net_model(a);
  PartitionOptions opts;
  opts.num_parts = 16;
  opts.seed = 3;
  const auto fine = partition(h, opts);
  const auto mid = derive_coarser(fine, 2);
  expect_valid_partition(mid, 8);
  // Sibling structure: rows in fine part p land in mid part p/2.
  for (std::size_t i = 0; i < fine.size(); ++i) EXPECT_EQ(mid[i], fine[i] / 2);
  // Coarser partitions stay balanced and can only reduce connectivity.
  EXPECT_LE(imbalance(h, mid, 8), 0.35);
  EXPECT_LE(connectivity_cost(h, mid, 8), connectivity_cost(h, fine, 16));
  const auto coarsest = derive_coarser(fine, 16);
  for (std::int32_t l : coarsest) EXPECT_EQ(l, 0);
}

TEST(Partitioner, BlockPartitionBalancesNnz) {
  const sparse::Csr a =
      sparse::generate(sparse::scaled_spec(sparse::find_paper_matrix("cbuckle"), 0.2, 256), 9);
  const auto labels = block_partition_rows(a, 8);
  expect_valid_partition(labels, 8);
  // Contiguity: labels are non-decreasing.
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  // nnz balance within a factor ~2 of ideal (block splits cannot split rows).
  std::vector<std::int64_t> w(8, 0);
  for (std::int32_t r = 0; r < a.num_rows(); ++r)
    w[static_cast<std::size_t>(labels[static_cast<std::size_t>(r)])] += a.row_degree(r);
  const auto mx = *std::max_element(w.begin(), w.end());
  EXPECT_LT(static_cast<double>(mx), 2.0 * static_cast<double>(a.num_nonzeros()) / 8.0);
}

TEST(Partitioner, CyclicAndRandomCoverAllParts) {
  const auto cyc = cyclic_partition(100, 8);
  expect_valid_partition(cyc, 8);
  EXPECT_EQ(cyc[0], 0);
  EXPECT_EQ(cyc[9], 1);
  const auto rnd = random_partition(1000, 8, 5);
  expect_valid_partition(rnd, 8);
  std::set<std::int32_t> seen(rnd.begin(), rnd.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Partitioner, ValidatesOptions) {
  const sparse::Csr a = sparse::stencil_2d(4, 4);
  const Hypergraph h = Hypergraph::column_net_model(a);
  PartitionOptions opts;
  opts.num_parts = 0;
  EXPECT_THROW(partition(h, opts), core::Error);
  EXPECT_THROW(block_partition_rows(a, 0), core::Error);
  EXPECT_THROW(cyclic_partition(10, 0), core::Error);
}

}  // namespace
}  // namespace stfw::partition
