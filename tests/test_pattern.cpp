#include "sim/pattern.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace stfw::sim {
namespace {

TEST(Pattern, BuildAndQuery) {
  CommPattern p(4);
  p.add_send(0, 1, 8);
  p.add_send(0, 3, 16);
  p.add_send(2, 0, 24);
  p.add_send(0, 2, 8);
  p.finalize();

  EXPECT_EQ(p.total_messages(), 4);
  const auto s0 = p.sends(0);
  ASSERT_EQ(s0.size(), 3u);
  // Sorted by destination.
  EXPECT_EQ(s0[0].dest, 1);
  EXPECT_EQ(s0[1].dest, 2);
  EXPECT_EQ(s0[2].dest, 3);
  EXPECT_TRUE(p.sends(1).empty());
  ASSERT_EQ(p.sends(2).size(), 1u);
  EXPECT_EQ(p.sends(2)[0].payload_bytes, 24u);
  EXPECT_TRUE(p.sends(3).empty());
}

TEST(Pattern, CountsAndVolume) {
  CommPattern p(4);
  p.add_send(1, 0, 8);
  p.add_send(1, 2, 8);
  p.add_send(3, 0, 32);
  p.finalize();
  const auto counts = p.send_counts();
  EXPECT_EQ(counts, (std::vector<std::int64_t>{0, 2, 0, 1}));
  EXPECT_EQ(p.max_send_count(), 2);
  EXPECT_DOUBLE_EQ(p.avg_send_count(), 3.0 / 4.0);
  EXPECT_EQ(p.total_payload_bytes(), 48u);
}

TEST(Pattern, GuardsAgainstMisuse) {
  CommPattern p(2);
  EXPECT_THROW(p.sends(0), core::Error);  // before finalize
  p.add_send(0, 1, 8);
  p.finalize();
  EXPECT_THROW(p.add_send(0, 1, 8), core::Error);  // after finalize
  EXPECT_THROW(p.finalize(), core::Error);
  EXPECT_THROW(p.sends(5), core::Error);
  CommPattern q(2);
  EXPECT_THROW(q.add_send(0, 2, 8), core::Error);
  EXPECT_THROW(q.add_send(-1, 0, 8), core::Error);
}

TEST(Pattern, EmptyPatternIsValid) {
  CommPattern p(3);
  p.finalize();
  EXPECT_EQ(p.total_messages(), 0);
  EXPECT_EQ(p.max_send_count(), 0);
  EXPECT_EQ(p.total_payload_bytes(), 0u);
}

}  // namespace
}  // namespace stfw::sim
