// Concurrency regression test for the plan-cache LRU (ISSUE 5 satellite):
// a per-rank configuration thread hammers set_plan_cache_capacity /
// plan_cache_size / plan_cache_capacity while the rank itself alternates
// exchange() (transparent cache: build, hit, or unplanned depending on the
// capacity the config thread last set) and exchange_resilient() over a fixed
// seed pattern. Run under the tsan preset this proves two things:
//
//  * every plan_cache_* access goes through plan_cache_mu_ (no data race on
//    the LRU vector, the capacity, or the tick counter), matching the
//    STFW_GUARDED_BY annotations checked at compile time by the tsa preset;
//  * no lock-order inversion between the cache mutex and the Comm mailbox /
//    barrier mutexes: the cache helpers are self-locking and never hold
//    plan_cache_mu_ across a Comm call, so no ordering edge between the two
//    families can form (TSan's deadlock detector would flag a cycle).
//
// Correctness is asserted too: whatever mix of planned / unplanned / fallback
// executions the capacity flips produce (the two paths share one collective
// structure — stfw_communicator.cpp), every byte must still arrive intact.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/sync.hpp"

#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

std::vector<std::byte> payload(std::size_t len, int fill) {
  return std::vector<std::byte>(len, static_cast<std::byte>(fill));
}

/// The frozen seed pattern: rank r sends to r+1 and r+3 (mod K) every
/// iteration, with contents salted by the iteration so a stale replay would
/// deliver detectably wrong bytes.
std::vector<OutboundMessage> sends_for(Rank me, Rank num_ranks, int iter) {
  std::vector<OutboundMessage> sends;
  sends.push_back(OutboundMessage{(me + 1) % num_ranks,
                                  payload(24 + static_cast<std::size_t>(me), iter + me)});
  sends.push_back(OutboundMessage{(me + 3) % num_ranks, payload(9, iter - me)});
  return sends;
}

void expect_inbound(const std::vector<InboundMessage>& got, Rank me, Rank num_ranks,
                    int iter) {
  ASSERT_EQ(got.size(), 2u);
  const Rank from_near = (me + num_ranks - 1) % num_ranks;
  const Rank from_far = (me + num_ranks - 3) % num_ranks;
  EXPECT_EQ(got[0].source, std::min(from_near, from_far));
  EXPECT_EQ(got[1].source, std::max(from_near, from_far));
  for (const InboundMessage& m : got) {
    const bool near = m.source == from_near;
    const std::size_t len = near ? 24 + static_cast<std::size_t>(m.source) : 9;
    const int fill = near ? iter + m.source : iter - m.source;
    ASSERT_EQ(m.bytes.size(), len);
    EXPECT_EQ(m.bytes.front(), static_cast<std::byte>(fill));
    EXPECT_EQ(m.bytes.back(), static_cast<std::byte>(fill));
  }
}

TEST(PlanCacheConcurrency, CapacityFlipsRacePlannedAndResilientExchanges) {
  const Vpt vpt({2, 2, 2});
  const Rank K = vpt.size();
  runtime::Cluster cluster(K);
  constexpr int kIters = 40;

  cluster.run([&](runtime::Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    StfwCommunicator stfw(comm, vpt);

    // The adversary: flips the cache bound between "disabled" and "roomy",
    // forcing evictions of in-use plans (the shared_ptr pin keeps replays
    // safe) and unsynchronized planned/unplanned mixes across ranks.
    std::atomic<bool> stop{false};
    core::Thread config([&] {
      std::uint64_t flip = 0;
      while (!stop.load(std::memory_order_acquire)) {
        stfw.set_plan_cache_capacity(flip++ % 2 == 0 ? 0 : 4);
        (void)stfw.plan_cache_size();
        (void)stfw.plan_cache_capacity();
        std::this_thread::yield();
      }
    });

    for (int iter = 0; iter < kIters; ++iter) {
      const auto sends = sends_for(me, K, iter);
      if (iter % 4 == 3) {
        const ResilientExchangeResult result = stfw.exchange_resilient(sends);
        EXPECT_TRUE(result.fully_recovered);
        EXPECT_TRUE(result.failure.empty());
        expect_inbound(result.delivered, me, K, iter);
      } else {
        expect_inbound(stfw.exchange(sends), me, K, iter);
      }
    }

    stop.store(true, std::memory_order_release);
    config.join();
  });
}

}  // namespace
}  // namespace stfw
