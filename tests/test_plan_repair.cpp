#include "core/plan_repair.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <vector>

#include "core/error.hpp"
#include "runtime/comm.hpp"
#include "runtime/exchange_plan.hpp"
#include "runtime/stfw_communicator.hpp"

/// \file test_plan_repair.cpp
/// Incremental plan repair after rank failure (core/plan_repair.hpp): the
/// routing helpers, and repair_plan() diffing dead ranks out of real frozen
/// layouts — checked rank-pairwise for frame consistency and end to end for
/// exactly-once accounting of every surviving submessage.

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

std::vector<std::uint8_t> all_alive(Rank K) {
  return std::vector<std::uint8_t>(static_cast<std::size_t>(K), 1);
}

// ---------------------------------------------------------------------------
// route_hops

TEST(RouteHops, SelfRouteIsEmpty) {
  const Vpt vpt({2, 2, 2});
  for (Rank r = 0; r < vpt.size(); ++r) EXPECT_TRUE(core::route_hops(vpt, r, r).empty());
}

TEST(RouteHops, FollowsAscendingDimensionOrder) {
  for (const Vpt& vpt : {Vpt({4, 2}), Vpt({2, 2, 2}), Vpt({3, 3}), Vpt({4, 2, 2})}) {
    for (Rank src = 0; src < vpt.size(); ++src)
      for (Rank dst = 0; dst < vpt.size(); ++dst) {
        const auto hops = core::route_hops(vpt, src, dst);
        ASSERT_EQ(static_cast<int>(hops.size()), vpt.hamming(src, dst))
            << vpt.to_string() << " " << src << "->" << dst;
        Rank cur = src;
        int last_dim = -1;
        for (const Rank hop : hops) {
          const int d = vpt.first_diff_dim(cur, hop);
          ASSERT_NE(d, -1);
          EXPECT_GT(d, last_dim) << "route must fix dimensions in ascending order";
          EXPECT_EQ(vpt.first_diff_dim_after(cur, hop, d), -1)
              << "each hop must change exactly one coordinate";
          EXPECT_EQ(vpt.coord(hop, d), vpt.coord(dst, d))
              << "each hop must land on the destination's digit";
          last_dim = d;
          cur = hop;
        }
        if (src != dst) {
          EXPECT_EQ(hops.back(), dst);
        }
      }
  }
}

// ---------------------------------------------------------------------------
// greedy_next_hop

TEST(GreedyNextHop, FullyAliveMatchesCanonicalRoute) {
  const Vpt vpt({4, 2, 2});
  const auto alive = all_alive(vpt.size());
  for (Rank src = 0; src < vpt.size(); ++src)
    for (Rank dst = 0; dst < vpt.size(); ++dst) {
      if (src == dst) continue;
      const auto hops = core::route_hops(vpt, src, dst);
      EXPECT_EQ(core::greedy_next_hop(vpt, alive, src, dst), hops.front());
    }
}

TEST(GreedyNextHop, FallsBackToDirectWhenEveryIntermediateIsDead) {
  const Vpt vpt({2, 2, 2});
  // Only src and dst survive: no aligned intermediate can be alive, so the
  // relay must jump straight to the destination.
  const Rank src = 0, dst = 7;
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(vpt.size()), 0);
  alive[static_cast<std::size_t>(src)] = 1;
  alive[static_cast<std::size_t>(dst)] = 1;
  EXPECT_EQ(core::greedy_next_hop(vpt, alive, src, dst), dst);
}

TEST(GreedyNextHop, ChainsTerminateAndOnlyVisitSurvivors) {
  // Random dead sets (destination kept alive): following greedy hops from
  // any survivor must reach the destination within dim() steps and never
  // step onto a dead rank — each hop fixes one more coordinate, so chains
  // cannot cycle even though every hop re-evaluates liveness.
  const Vpt vpt({4, 2, 2});
  const Rank K = vpt.size();
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> alive = all_alive(K);
    const int deaths = static_cast<int>(rng() % static_cast<std::uint64_t>(K / 2));
    for (int i = 0; i < deaths; ++i) alive[rng() % static_cast<std::uint64_t>(K)] = 0;
    for (Rank src = 0; src < K; ++src) {
      if (!alive[static_cast<std::size_t>(src)]) continue;
      for (Rank dst = 0; dst < K; ++dst) {
        if (dst == src || !alive[static_cast<std::size_t>(dst)]) continue;
        Rank cur = src;
        int steps = 0;
        while (cur != dst) {
          cur = core::greedy_next_hop(vpt, alive, cur, dst);
          ASSERT_TRUE(alive[static_cast<std::size_t>(cur)])
              << "greedy hop landed on dead rank " << cur;
          ASSERT_LE(++steps, vpt.dim()) << src << "->" << dst << " did not converge";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// repair_plan on real frozen layouts

std::vector<std::byte> payload_for(Rank src, Rank dst, std::uint32_t salt) {
  const std::size_t len =
      static_cast<std::size_t>((src * 7 + dst * 13 + static_cast<Rank>(salt)) % 40) + 1;
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((static_cast<std::size_t>(src) * 31 + i + salt) & 0xff);
  return b;
}

/// Deterministic dense-ish pattern with a self-send per rank, so layouts
/// exercise kSelf seed routes alongside multi-hop forwarding.
std::vector<std::vector<OutboundMessage>> repair_sendsets(Rank K) {
  std::vector<std::vector<OutboundMessage>> sets(static_cast<std::size_t>(K));
  std::mt19937_64 rng(99);
  for (Rank i = 0; i < K; ++i) {
    sets[static_cast<std::size_t>(i)].push_back({i, payload_for(i, i, 0)});
    for (Rank j = 0; j < K; ++j) {
      if (j == i || rng() % 100 >= 60) continue;
      sets[static_cast<std::size_t>(i)].push_back({j, payload_for(i, j, 1)});
    }
  }
  return sets;
}

/// Collectively builds every rank's frozen layout for `sets` over `vpt`.
std::vector<core::ExchangePlanLayout> build_layouts(
    const Vpt& vpt, const std::vector<std::vector<OutboundMessage>>& sets) {
  const Rank K = vpt.size();
  std::vector<core::ExchangePlanLayout> layouts(static_cast<std::size_t>(K));
  runtime::Cluster cluster(K);
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator stfw(comm, vpt);
    const auto me = static_cast<std::size_t>(comm.rank());
    layouts[me] = stfw.plan(sets[me])->layout();
  });
  return layouts;
}

/// Key of one expected submessage: (source, dest, id).
using SubKey = std::tuple<Rank, Rank, std::uint32_t>;

void check_repair(const Vpt& vpt, const std::vector<std::vector<OutboundMessage>>& sets,
                  const std::vector<core::ExchangePlanLayout>& layouts, Rank dead) {
  const Rank K = vpt.size();
  std::vector<std::uint8_t> alive = all_alive(K);
  alive[static_cast<std::size_t>(dead)] = 0;
  const auto is_alive = [&](Rank r) { return alive[static_cast<std::size_t>(r)] != 0; };

  std::vector<core::RepairedPlan> repaired(static_cast<std::size_t>(K));
  for (Rank r = 0; r < K; ++r) {
    if (!is_alive(r)) continue;
    repaired[static_cast<std::size_t>(r)] =
        core::repair_plan(layouts[static_cast<std::size_t>(r)], vpt, alive);
  }

  // (c) No repaired structure may reference the dead rank.
  for (Rank r = 0; r < K; ++r) {
    if (!is_alive(r)) continue;
    const auto& lay = repaired[static_cast<std::size_t>(r)].layout;
    for (const auto& stage_out : lay.out_frames)
      for (const auto& f : stage_out) {
        EXPECT_NE(f.to, dead) << "rank " << r << " still sends to the dead rank";
        for (const auto& sub : f.subs) {
          EXPECT_NE(sub.source, dead);
          EXPECT_NE(sub.dest, dead);
        }
      }
    for (const auto& stage_in : lay.in_frames)
      for (const auto& f : stage_in) {
        EXPECT_NE(f.source, dead) << "rank " << r << " still expects a dead sender";
        for (const auto& sub : f.subs) {
          EXPECT_NE(sub.source, dead);
          EXPECT_NE(sub.dest, dead);
        }
      }
    for (const auto& d : lay.deliveries) EXPECT_NE(d.source, dead);
    for (const auto& p : repaired[static_cast<std::size_t>(r)].pivot_sends) {
      EXPECT_NE(p.sub.source, dead);
      EXPECT_NE(p.sub.dest, dead);
      EXPECT_EQ(p.dead_hop, dead);
    }
  }

  // (a) Pairwise frame consistency: for every alive (sender, receiver) pair
  // and stage, the sender's repaired out-frame must agree with the
  // receiver's repaired in-frame on wire size and submessage multiset.
  for (Rank a = 0; a < K; ++a) {
    if (!is_alive(a)) continue;
    const auto& la = repaired[static_cast<std::size_t>(a)].layout;
    for (int s = 0; s < static_cast<int>(la.out_frames.size()); ++s) {
      for (const auto& out : la.out_frames[static_cast<std::size_t>(s)]) {
        const auto& lb = repaired[static_cast<std::size_t>(out.to)].layout;
        const core::PlanInFrame* match = nullptr;
        for (const auto& in : lb.in_frames[static_cast<std::size_t>(s)])
          if (in.source == a) {
            ASSERT_EQ(match, nullptr) << "duplicate in-frame " << a << "->" << out.to;
            match = &in;
          }
        ASSERT_NE(match, nullptr)
            << "rank " << out.to << " lost the stage-" << s << " frame from " << a;
        EXPECT_EQ(match->wire_size, out.image.size());
        std::multiset<SubKey> sent, expected;
        for (const auto& sub : out.subs) sent.insert({sub.source, sub.dest, sub.id});
        for (const auto& sub : match->subs) {
          expected.insert({sub.source, sub.dest, sub.id});
          EXPECT_LE(static_cast<std::uint64_t>(sub.offset) + sub.size_bytes,
                    match->wire_size)
              << "in-frame offset table points past the repaired frame";
        }
        EXPECT_EQ(sent, expected) << "frame contents diverged " << a << "->" << out.to
                                  << " at stage " << s;
      }
      // Symmetric direction: every expected in-frame must have a sender.
      for (const auto& in : la.in_frames[static_cast<std::size_t>(s)]) {
        const auto& lb = repaired[static_cast<std::size_t>(in.source)].layout;
        int senders = 0;
        for (const auto& out : lb.out_frames[static_cast<std::size_t>(s)])
          if (out.to == a) ++senders;
        EXPECT_EQ(senders, 1) << "rank " << a << " expects a stage-" << s
                              << " frame from " << in.source << " that nobody sends";
      }
    }
  }

  // (b) Exactly-once accounting: every send of an alive source is handled by
  // exactly one mechanism — a surviving static delivery, a seed relay at the
  // origin, a pivot re-home at exactly one survivor, or (dead destination) a
  // counted drop at the origin.
  for (Rank src = 0; src < K; ++src) {
    if (!is_alive(src)) continue;
    const auto& rp = repaired[static_cast<std::size_t>(src)];
    const auto& sends = sets[static_cast<std::size_t>(src)];
    ASSERT_EQ(rp.seed_routes.size(), sends.size());
    int dead_dest_drops = 0;
    for (std::size_t i = 0; i < sends.size(); ++i) {
      const Rank dst = sends[i].dest;
      const auto& route = rp.seed_routes[i];
      if (!is_alive(dst)) {
        EXPECT_EQ(route.kind, core::SeedRoute::Kind::kDeadDest);
        ++dead_dest_drops;
        continue;
      }
      if (dst == src) {
        EXPECT_EQ(route.kind, core::SeedRoute::Kind::kSelf);
      }
      // Routes of a send whose canonical path survives must stay kPlanned;
      // kRelay only when the first hop died. Either way the aggregate check
      // below pins each send to exactly one delivery mechanism.
      if (route.kind == core::SeedRoute::Kind::kPlanned) {
        const auto hops = core::route_hops(vpt, src, dst);
        EXPECT_TRUE(is_alive(hops.front()))
            << src << "->" << dst << " kept a planned route through a dead first hop";
      }
      if (route.kind == core::SeedRoute::Kind::kRelay) {
        const auto hops = core::route_hops(vpt, src, dst);
        EXPECT_FALSE(is_alive(hops.front()))
            << src << "->" << dst << " was relayed although its first hop is alive";
      }
    }
    EXPECT_EQ(rp.stats.subs_dropped_dead_dest, dead_dest_drops);

    // Aggregate per destination: static deliveries + dynamic re-homes cover
    // every alive-pair send exactly once.
    std::map<Rank, int> sent_to, statically_delivered, dynamically_routed;
    for (std::size_t i = 0; i < sends.size(); ++i) {
      const Rank dst = sends[i].dest;
      if (!is_alive(dst)) continue;
      ++sent_to[dst];
      if (rp.seed_routes[i].kind == core::SeedRoute::Kind::kRelay)
        ++dynamically_routed[dst];
    }
    for (Rank h = 0; h < K; ++h) {
      if (!is_alive(h)) continue;
      for (const auto& p : repaired[static_cast<std::size_t>(h)].pivot_sends)
        if (p.sub.source == src) ++dynamically_routed[p.sub.dest];
    }
    for (Rank dst = 0; dst < K; ++dst) {
      if (!is_alive(dst)) continue;
      for (const auto& d : repaired[static_cast<std::size_t>(dst)].layout.deliveries)
        if (d.source == src) ++statically_delivered[dst];
      EXPECT_EQ(statically_delivered[dst] + dynamically_routed[dst], sent_to[dst])
          << "traffic " << src << "->" << dst << " (dead " << dead
          << ") not covered exactly once";
    }
  }

  // Frozen stats stay consistent with the repaired frames.
  for (Rank r = 0; r < K; ++r) {
    if (!is_alive(r)) continue;
    const auto& lay = repaired[static_cast<std::size_t>(r)].layout;
    std::int64_t frames = 0;
    std::uint64_t wire = 0;
    for (const auto& stage_out : lay.out_frames)
      for (const auto& f : stage_out) {
        ++frames;
        wire += f.image.size();
      }
    EXPECT_EQ(lay.messages_sent, frames);
    EXPECT_EQ(lay.wire_bytes_sent, wire);
    std::uint64_t delivered = 0;
    for (const auto& d : lay.deliveries) delivered += d.src.bytes;
    EXPECT_EQ(lay.delivered_payload_bytes, delivered);
  }
}

class PlanRepair : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(PlanRepair, EverySingleFailureRepairsConsistently) {
  const Vpt vpt(GetParam());
  const auto sets = repair_sendsets(vpt.size());
  const auto layouts = build_layouts(vpt, sets);
  for (Rank dead = 0; dead < vpt.size(); ++dead)
    check_repair(vpt, sets, layouts, dead);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanRepair,
                         ::testing::Values(std::vector<int>{4, 2},
                                           std::vector<int>{2, 2, 2},
                                           std::vector<int>{4, 4},
                                           std::vector<int>{2, 4, 2}));

TEST(PlanRepairEdge, FullyAliveBitmapIsAnUntouchedCopy) {
  const Vpt vpt({4, 2});
  const auto sets = repair_sendsets(vpt.size());
  const auto layouts = build_layouts(vpt, sets);
  for (Rank r = 0; r < vpt.size(); ++r) {
    const auto& pristine = layouts[static_cast<std::size_t>(r)];
    const auto rp = core::repair_plan(pristine, vpt, all_alive(vpt.size()));
    EXPECT_TRUE(rp.pivot_sends.empty());
    EXPECT_EQ(rp.stats.out_frames_removed, 0);
    EXPECT_EQ(rp.stats.in_frames_removed, 0);
    EXPECT_EQ(rp.stats.subs_excised, 0);
    EXPECT_EQ(rp.stats.pivot_reroutes, 0);
    EXPECT_EQ(rp.stats.seed_reroutes, 0);
    EXPECT_EQ(rp.stats.subs_dropped_dead_dest, 0);
    EXPECT_EQ(rp.stats.deliveries_removed, 0);
    for (std::size_t i = 0; i < rp.seed_routes.size(); ++i) {
      const auto& route = rp.seed_routes[i];
      if (pristine.seed_first_dim[i] < 0)
        EXPECT_EQ(route.kind, core::SeedRoute::Kind::kSelf);
      else {
        EXPECT_EQ(route.kind, core::SeedRoute::Kind::kPlanned);
        EXPECT_EQ(route.first_dim, pristine.seed_first_dim[i]);
      }
    }
    EXPECT_EQ(rp.layout.messages_sent, pristine.messages_sent);
    EXPECT_EQ(rp.layout.wire_bytes_sent, pristine.wire_bytes_sent);
    EXPECT_EQ(rp.layout.transit_peak_bytes, pristine.transit_peak_bytes);
    ASSERT_EQ(rp.layout.out_frames.size(), pristine.out_frames.size());
    for (std::size_t s = 0; s < pristine.out_frames.size(); ++s) {
      ASSERT_EQ(rp.layout.out_frames[s].size(), pristine.out_frames[s].size());
      for (std::size_t f = 0; f < pristine.out_frames[s].size(); ++f)
        EXPECT_EQ(rp.layout.out_frames[s][f].image, pristine.out_frames[s][f].image);
    }
  }
}

TEST(PlanRepairEdge, RepairingForOwnDeathIsRejected) {
  const Vpt vpt({2, 2});
  const auto sets = repair_sendsets(vpt.size());
  const auto layouts = build_layouts(vpt, sets);
  auto alive = all_alive(vpt.size());
  alive[0] = 0;  // layout 0 belongs to rank 0
  EXPECT_THROW((void)core::repair_plan(layouts[0], vpt, alive), core::Error);
}

}  // namespace
}  // namespace stfw
