#include "core/rank_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"

namespace stfw::core {
namespace {

std::vector<StageMessage> outbox_of(StfwRankState& state, int stage) {
  std::vector<StageMessage> out;
  state.make_stage_outbox(stage, out);
  return out;
}

TEST(RankState, SelfSendDeliversImmediately) {
  const Vpt t({4, 4});
  StfwRankState s(t, 5);
  s.add_send(5, 0, 16);
  ASSERT_EQ(s.delivered().size(), 1u);
  EXPECT_EQ(s.delivered()[0].source, 5);
  EXPECT_EQ(s.delivered()[0].dest, 5);
  EXPECT_EQ(s.delivered_payload_bytes(), 16u);
  EXPECT_EQ(s.buffered_payload_bytes(), 0u);
}

TEST(RankState, DirectVptSendsEverythingInStageZero) {
  const Vpt t = Vpt::direct(8);
  StfwRankState s(t, 0);
  for (Rank d = 1; d < 8; ++d) s.add_send(d, 0, 8);
  EXPECT_EQ(s.buffered_payload_bytes(), 7u * 8u);
  auto out = outbox_of(s, 0);
  EXPECT_EQ(out.size(), 7u);  // one message per destination
  for (const auto& m : out) {
    EXPECT_EQ(m.from, 0);
    EXPECT_EQ(m.subs.size(), 1u);
    EXPECT_EQ(m.subs[0].dest, m.to);
  }
  EXPECT_EQ(s.buffered_payload_bytes(), 0u);
}

TEST(RankState, MessagesToSameNeighborCoalesce) {
  // T_2(4,4), rank 0 = (0,0). Destinations (1,0), (1,1), (1,2), (1,3) all
  // have digit0 = 1, so stage 0 routes them through the single neighbor
  // with digit0 = 1 — one coalesced message with four submessages.
  const Vpt t({4, 4});
  StfwRankState s(t, 0);
  for (int y = 0; y < 4; ++y) {
    const int coords[2] = {1, y};
    s.add_send(t.rank_of(coords), 0, 8);
  }
  auto out = outbox_of(s, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 1);  // (1,0)
  EXPECT_EQ(out[0].subs.size(), 4u);
  EXPECT_EQ(out[0].payload_bytes(), 32u);
}

TEST(RankState, SecondStageSeedsSkipStageZero) {
  // Destination shares digit 0 with the source: first hop is stage 1.
  const Vpt t({4, 4});
  StfwRankState s(t, 0);  // (0,0)
  const int coords[2] = {0, 2};
  s.add_send(t.rank_of(coords), 0, 8);
  EXPECT_TRUE(outbox_of(s, 0).empty());
  auto out = outbox_of(s, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, t.rank_of(coords));
}

TEST(RankState, PaperFigure4Walkthrough) {
  // Figure 4, T_3(4,4,4): P_a's three destinations all differ from P_a in
  // dimension 1, so stage 1 produces ONE coalesced message M_ad to its
  // dimension-1 neighbor P_d carrying all three submessages; P_d then
  // delivers its own, forwards (P_e, m_ae) in stage 2 and (P_c, m_ac) in
  // stage 3. Digits (0-based, dimension 1 first):
  //   P_a = (0,1,1), P_c = (2,1,3), P_d = (2,1,1), P_e = (2,3,1).
  const Vpt t({4, 4, 4});
  auto rank = [&](int d0, int d1, int d2) {
    const int c[3] = {d0, d1, d2};
    return t.rank_of(c);
  };
  const Rank pa = rank(0, 1, 1);
  const Rank pc = rank(2, 1, 3);
  const Rank pd = rank(2, 1, 1);
  const Rank pe = rank(2, 3, 1);

  StfwRankState a(t, pa);
  a.add_send(pc, 0, 8);
  a.add_send(pd, 0, 8);
  a.add_send(pe, 0, 8);

  auto out0 = outbox_of(a, 0);
  ASSERT_EQ(out0.size(), 1u);  // a single M_ad despite three destinations
  EXPECT_EQ(out0[0].to, pd);
  EXPECT_EQ(out0[0].subs.size(), 3u);
  EXPECT_TRUE(outbox_of(a, 1).empty());
  EXPECT_TRUE(outbox_of(a, 2).empty());

  // P_d receives M_ad in stage 1 and sorts the submessages out.
  StfwRankState d(t, pd);
  std::vector<StageMessage> sink;
  d.make_stage_outbox(0, sink);
  d.accept(0, out0[0].subs);
  ASSERT_EQ(d.delivered().size(), 1u);  // m_ad is for P_d itself
  EXPECT_EQ(d.delivered()[0].dest, pd);

  auto dout1 = outbox_of(d, 1);  // stage 2: (P_e, m_ae) via dimension 2
  ASSERT_EQ(dout1.size(), 1u);
  EXPECT_EQ(dout1[0].to, rank(2, 3, 1));
  ASSERT_EQ(dout1[0].subs.size(), 1u);
  EXPECT_EQ(dout1[0].subs[0].dest, pe);

  auto dout2 = outbox_of(d, 2);  // stage 3: (P_c, m_ac) via dimension 3
  ASSERT_EQ(dout2.size(), 1u);
  EXPECT_EQ(dout2[0].to, pc);
  ASSERT_EQ(dout2[0].subs.size(), 1u);
  EXPECT_EQ(dout2[0].subs[0].dest, pc);
}

TEST(RankState, ForwardingMergesStreamsForSameDestination) {
  // Section 3: submessages from *distinct* sources destined for the *same*
  // process meet in the same forward buffer and travel inside one message
  // from then on; submessages from the *same* source to *distinct*
  // destinations go to different buffers and stay in distinct messages.
  const Vpt t({2, 2, 2});
  StfwRankState s(t, 0);  // intermediate process (0,0,0)
  std::vector<StageMessage> sink;
  s.make_stage_outbox(0, sink);  // enter stage 0 (nothing of our own)
  ASSERT_TRUE(sink.empty());

  const int same_dest_coords[3] = {0, 1, 0};
  const int other_dest_coords[3] = {0, 0, 1};
  const Rank same_dest = t.rank_of(same_dest_coords);
  const Rank other_dest = t.rank_of(other_dest_coords);
  const Submessage subs[3] = {
      {1, same_dest, 0, 8},   // source 1 -> D
      {1, other_dest, 0, 8},  // source 1 -> D' (same source, distinct dest)
      {3, same_dest, 0, 8},   // source 3 -> D (distinct source, same dest)
  };
  s.accept(0, subs);

  auto out1 = outbox_of(s, 1);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1[0].to, same_dest);
  EXPECT_EQ(out1[0].subs.size(), 2u);  // both streams merged into one message

  auto out2 = outbox_of(s, 2);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].to, other_dest);
  EXPECT_EQ(out2[0].subs.size(), 1u);  // the same-source stream stayed apart
}

TEST(RankState, AcceptScattersIntoLaterStages) {
  const Vpt t({2, 2, 2});
  StfwRankState s(t, 0);  // (0,0,0)
  std::vector<StageMessage> sink;
  s.make_stage_outbox(0, sink);  // enter stage 0

  const int d1_coords[3] = {0, 1, 0};  // forwarded in stage 1
  const int d2_coords[3] = {0, 0, 1};  // forwarded in stage 2
  const Rank via_stage1 = t.rank_of(d1_coords);
  const Rank via_stage2 = t.rank_of(d2_coords);
  const Submessage subs[3] = {
      {1, via_stage1, 0, 8},
      {1, via_stage2, 0, 8},
      {1, 0, 0, 8},  // for me
  };
  s.accept(0, subs);
  EXPECT_EQ(s.delivered().size(), 1u);
  EXPECT_EQ(s.buffered_payload_bytes(), 16u);

  auto out1 = outbox_of(s, 1);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1[0].to, via_stage1);
  auto out2 = outbox_of(s, 2);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].to, via_stage2);
  EXPECT_EQ(s.buffered_payload_bytes(), 0u);
}

TEST(RankState, PeakBufferTracksHighWater) {
  const Vpt t = Vpt::direct(4);
  StfwRankState s(t, 0);
  s.add_send(1, 0, 100);
  s.add_send(2, 0, 50);
  EXPECT_EQ(s.peak_buffered_payload_bytes(), 150u);
  std::vector<StageMessage> sink;
  s.make_stage_outbox(0, sink);
  EXPECT_EQ(s.buffered_payload_bytes(), 0u);
  EXPECT_EQ(s.peak_buffered_payload_bytes(), 150u);  // high water sticks
}

TEST(RankState, StagesMustRunInOrder) {
  const Vpt t({2, 2});
  StfwRankState s(t, 0);
  std::vector<StageMessage> sink;
  EXPECT_THROW(s.make_stage_outbox(1, sink), Error);
  s.make_stage_outbox(0, sink);
  EXPECT_THROW(s.make_stage_outbox(0, sink), Error);
  EXPECT_THROW(s.make_stage_outbox(2, sink), Error);
}

TEST(RankState, AcceptRequiresMatchingStage) {
  const Vpt t({2, 2});
  StfwRankState s(t, 0);
  const Submessage sub{1, 0, 0, 8};
  EXPECT_THROW(s.accept(0, std::span<const Submessage>(&sub, 1)), Error);  // before outbox
}

TEST(RankState, AddSendAfterStartIsAnError) {
  const Vpt t({2, 2});
  StfwRankState s(t, 0);
  std::vector<StageMessage> sink;
  s.make_stage_outbox(0, sink);
  EXPECT_THROW(s.add_send(1, 0, 8), Error);
}

TEST(RankState, ResetAllowsReuse) {
  const Vpt t({2, 2});
  StfwRankState s(t, 0);
  s.add_send(3, 0, 8);
  std::vector<StageMessage> sink;
  s.make_stage_outbox(0, sink);
  s.make_stage_outbox(1, sink);
  s.reset();
  EXPECT_EQ(s.delivered().size(), 0u);
  EXPECT_EQ(s.peak_buffered_payload_bytes(), 0u);
  s.add_send(1, 0, 8);  // no throw
  sink.clear();
  s.make_stage_outbox(0, sink);
  EXPECT_EQ(sink.size(), 1u);
}

TEST(RankState, RejectsOutOfRangeDestination) {
  const Vpt t({2, 2});
  StfwRankState s(t, 0);
  EXPECT_THROW(s.add_send(4, 0, 8), Error);
  EXPECT_THROW(s.add_send(-1, 0, 8), Error);
}

}  // namespace
}  // namespace stfw::core
