#include "sparse/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/error.hpp"
#include "sparse/generators.hpp"

namespace stfw::sparse {
namespace {

/// Randomly permute a matrix's rows/columns symmetrically.
Csr shuffled(const Csr& a, std::uint64_t seed) {
  std::vector<std::int32_t> perm(static_cast<std::size_t>(a.num_rows()));
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return permute_symmetric(a, perm);
}

TEST(Reorder, PermuteSymmetricIsAnIsomorphism) {
  const Csr a = stencil_2d(8, 8);
  std::vector<std::int32_t> perm(static_cast<std::size_t>(a.num_rows()));
  std::iota(perm.rbegin(), perm.rend(), 0);  // reversal
  const Csr b = permute_symmetric(a, perm);
  EXPECT_EQ(b.num_nonzeros(), a.num_nonzeros());
  EXPECT_TRUE(b.has_symmetric_pattern());
  // Degrees are preserved under relabeling.
  const DegreeStats sa = degree_stats(a);
  const DegreeStats sb = degree_stats(b);
  EXPECT_EQ(sa.max_degree, sb.max_degree);
  EXPECT_DOUBLE_EQ(sa.avg_degree, sb.avg_degree);
  // Applying the inverse recovers the original.
  std::vector<std::int32_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) inv[static_cast<std::size_t>(perm[i])] =
      static_cast<std::int32_t>(i);
  const Csr back = permute_symmetric(b, inv);
  EXPECT_TRUE(std::equal(back.col_idx().begin(), back.col_idx().end(), a.col_idx().begin()));
}

TEST(Reorder, BandwidthOfStencil) {
  const Csr a = stencil_2d(10, 10);
  EXPECT_EQ(bandwidth(a), 10);  // the y-neighbor offset
  EXPECT_GT(average_bandwidth(a), 0.0);
  const Csr diag = Csr::from_triplets(3, 3, {{0, 0, 1}, {1, 1, 1}, {2, 2, 1}});
  EXPECT_EQ(bandwidth(diag), 0);
}

TEST(Reorder, RcmRestoresStencilLocality) {
  // Shuffling a 2D stencil destroys its banded structure; RCM recovers
  // bandwidth within a small factor of the original.
  const Csr a = stencil_2d(16, 16);
  const Csr messy = shuffled(a, 5);
  ASSERT_GT(bandwidth(messy), 4 * bandwidth(a));
  const auto perm = rcm_ordering(messy);
  const Csr restored = permute_symmetric(messy, perm);
  EXPECT_LT(bandwidth(restored), 3 * bandwidth(a));
  EXPECT_LT(average_bandwidth(restored), average_bandwidth(messy) / 4);
}

TEST(Reorder, RcmIsAValidPermutation) {
  const Csr a = shuffled(stencil_3d(5, 5, 5), 7);
  const auto perm = rcm_ordering(a);
  std::vector<std::uint8_t> seen(perm.size(), 0);
  for (std::int32_t p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, static_cast<std::int32_t>(perm.size()));
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = 1;
  }
}

TEST(Reorder, RcmHandlesDisconnectedComponents) {
  // Two disjoint paths plus an isolated diagonal-only vertex.
  std::vector<Triplet> t;
  auto path = [&t](std::int32_t from, std::int32_t count) {
    for (std::int32_t i = from; i < from + count; ++i) {
      t.push_back({i, i, 2.0});
      if (i + 1 < from + count) {
        t.push_back({i, i + 1, -1.0});
        t.push_back({i + 1, i, -1.0});
      }
    }
  };
  path(0, 4);
  path(4, 3);
  t.push_back({7, 7, 1.0});
  const Csr a = Csr::from_triplets(8, 8, std::move(t));
  const Csr messy = shuffled(a, 3);
  const auto perm = rcm_ordering(messy);
  const Csr restored = permute_symmetric(messy, perm);
  EXPECT_LE(bandwidth(restored), 1);  // paths are bandwidth-1
}

TEST(Reorder, RcmImprovesGeneratedMatrixLocality) {
  // Our generator's banded structure survives a shuffle + RCM round trip
  // in the average-bandwidth sense.
  const Csr a = generate(scaled_spec(find_paper_matrix("cbuckle"), 0.2, 256), 3);
  const Csr messy = shuffled(a, 11);
  const auto perm = rcm_ordering(messy);
  const Csr restored = permute_symmetric(messy, perm);
  EXPECT_LT(average_bandwidth(restored), average_bandwidth(messy) / 2);
}

TEST(Reorder, Validates) {
  const Csr rect = random_uniform(3, 4, 5, 1);
  EXPECT_THROW(rcm_ordering(rect), core::Error);
  const Csr sq = stencil_2d(3, 3);
  const std::vector<std::int32_t> short_perm{0, 1};
  EXPECT_THROW(permute_symmetric(sq, short_perm), core::Error);
}

}  // namespace
}  // namespace stfw::sparse
