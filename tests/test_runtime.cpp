#include "runtime/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "core/error.hpp"

namespace stfw::runtime {
namespace {

std::vector<std::byte> payload(int v) {
  std::vector<std::byte> b(sizeof(int));
  std::memcpy(b.data(), &v, sizeof(int));
  return b;
}

int value_of(const Message& m) {
  int v = 0;
  std::memcpy(&v, m.data.data(), sizeof(int));
  return v;
}

TEST(Runtime, PingPong) {
  Cluster cluster(2);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, payload(123));
      const Message reply = comm.recv(1, 8);
      EXPECT_EQ(value_of(reply), 124);
    } else {
      const Message m = comm.recv(0, 7);
      EXPECT_EQ(value_of(m), 123);
      comm.send(0, 8, payload(value_of(m) + 1));
    }
  });
}

TEST(Runtime, PointToPointOrderingPerSourceAndTag) {
  Cluster cluster(2);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send(1, 1, payload(i));
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(value_of(comm.recv(0, 1)), i);
    }
  });
}

TEST(Runtime, RecvFiltersByTag) {
  Cluster cluster(2);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, payload(10));
      comm.send(1, 2, payload(20));
    } else {
      // Receive tag 2 first even though tag 1 arrived earlier.
      EXPECT_EQ(value_of(comm.recv(0, 2)), 20);
      EXPECT_EQ(value_of(comm.recv(0, 1)), 10);
    }
  });
}

TEST(Runtime, RecvAnySource) {
  Cluster cluster(4);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::int64_t sum = 0;
      for (int i = 0; i < 3; ++i) sum += value_of(comm.recv(kAnySource, 5));
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      comm.send(0, 5, payload(comm.rank()));
    }
  });
}

TEST(Runtime, DrainAfterBarrierSeesAllStageSends) {
  constexpr int kRanks = 8;
  Cluster cluster(kRanks);
  cluster.run([](Comm& comm) {
    // Everyone sends to everyone (including a tag the drain must not touch).
    for (int d = 0; d < kRanks; ++d) {
      if (d == comm.rank()) continue;
      comm.send(d, 1, payload(comm.rank()));
    }
    comm.send((comm.rank() + 1) % kRanks, 99, payload(-1));
    comm.barrier();
    const auto msgs = comm.drain(1);
    ASSERT_EQ(msgs.size(), static_cast<std::size_t>(kRanks - 1));
    // Sorted by source, and the other tag is untouched.
    for (std::size_t i = 1; i < msgs.size(); ++i) EXPECT_GT(msgs[i].source, msgs[i - 1].source);
    EXPECT_TRUE(comm.probe(kAnySource, 99));
    comm.recv(kAnySource, 99);  // leave mailboxes clean
  });
}

TEST(Runtime, BarrierSynchronizesPhases) {
  constexpr int kRanks = 16;
  Cluster cluster(kRanks);
  std::atomic<int> phase_counter{0};
  cluster.run([&](Comm& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      phase_counter.fetch_add(1);
      comm.barrier();
      // After the barrier every rank must have bumped the counter.
      EXPECT_GE(phase_counter.load(), (phase + 1) * kRanks);
      comm.barrier();
    }
  });
  EXPECT_EQ(phase_counter.load(), 10 * kRanks);
}

TEST(Runtime, AllgatherCollectsContributions) {
  constexpr int kRanks = 8;
  Cluster cluster(kRanks);
  cluster.run([](Comm& comm) {
    const auto all = comm.allgather(payload(comm.rank() * 10));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) {
      int v = 0;
      std::memcpy(&v, all[static_cast<std::size_t>(r)].data(), sizeof(int));
      EXPECT_EQ(v, r * 10);
    }
  });
}

TEST(Runtime, ExceptionPropagatesAndUnblocksPeers) {
  Cluster cluster(4);
  EXPECT_THROW(cluster.run([](Comm& comm) {
                 if (comm.rank() == 0) throw core::Error("boom");
                 // Peers block forever without abort handling.
                 comm.recv(0, 1);
               }),
               core::Error);
  // The cluster remains usable.
  cluster.run([](Comm& comm) { comm.barrier(); });
}

TEST(Runtime, SendValidatesDestination) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Comm& comm) { comm.send(5, 0, {}); }), core::Error);
}

TEST(Runtime, ReusableAcrossRuns) {
  Cluster cluster(4);
  for (int round = 0; round < 3; ++round) {
    cluster.run([round](Comm& comm) {
      comm.send((comm.rank() + 1) % 4, round, payload(round));
      const Message m = comm.recv((comm.rank() + 3) % 4, round);
      EXPECT_EQ(value_of(m), round);
    });
  }
}

TEST(Runtime, StressManyTagsAndInterleavedTraffic) {
  // Many concurrent logical streams: every rank sends a burst on several
  // tags to several peers, then receives them back in arbitrary order.
  constexpr int kRanks = 12;
  constexpr int kTags = 5;
  constexpr int kBurst = 20;
  Cluster cluster(kRanks);
  cluster.run([](Comm& comm) {
    for (int tag = 0; tag < kTags; ++tag)
      for (int b = 0; b < kBurst; ++b)
        for (int offset : {1, 3, 7}) {
          const int dest = (comm.rank() + offset) % kRanks;
          comm.send(dest, tag, payload(tag * 1000 + b));
        }
    // Receive: per (source, tag) stream the burst must arrive in order.
    for (int offset : {1, 3, 7}) {
      const int source = (comm.rank() - offset % kRanks + kRanks) % kRanks;
      for (int tag = kTags - 1; tag >= 0; --tag)  // reverse tag order on purpose
        for (int b = 0; b < kBurst; ++b)
          EXPECT_EQ(value_of(comm.recv(source, tag)), tag * 1000 + b);
    }
  });
}

TEST(Runtime, ExchangeStressRepeatedEpochs) {
  // Repeated collective exchanges interleaved with point-to-point chatter
  // must never cross-contaminate epochs.
  constexpr int kRanks = 8;
  Cluster cluster(kRanks);
  cluster.run([](Comm& comm) {
    for (int epoch = 0; epoch < 25; ++epoch) {
      const int dest = (comm.rank() + epoch) % kRanks;
      if (dest != comm.rank()) comm.send(dest, 100 + epoch, payload(epoch));
      comm.barrier();
      const auto msgs = comm.drain(100 + epoch);
      const bool expecting = (comm.rank() - epoch % kRanks + kRanks) % kRanks != comm.rank();
      ASSERT_EQ(msgs.size(), expecting ? 1u : 0u) << "epoch " << epoch;
      if (expecting) {
        EXPECT_EQ(value_of(msgs[0]), epoch);
      }
    }
  });
}

TEST(Runtime, RecvAnySourceConcurrentSendersKeepPerSourceOrder) {
  // Seven senders hammer rank 0 concurrently on one tag; whatever global
  // interleaving the scheduler produces, the (source, tag) substreams must
  // stay in send order.
  static constexpr int kRanks = 8;
  static constexpr int kBurst = 200;
  Cluster cluster(kRanks);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> next_seq(kRanks, 0);
      for (int i = 0; i < (kRanks - 1) * kBurst; ++i) {
        const Message m = comm.recv(kAnySource, 5);
        ASSERT_GE(m.source, 1);
        ASSERT_LT(m.source, kRanks);
        const auto src = static_cast<std::size_t>(m.source);
        EXPECT_EQ(value_of(m), m.source * 1000 + next_seq[src])
            << "out-of-order delivery from rank " << m.source;
        ++next_seq[src];
      }
      for (int r = 1; r < kRanks; ++r) EXPECT_EQ(next_seq[static_cast<std::size_t>(r)], kBurst);
    } else {
      for (int b = 0; b < kBurst; ++b) comm.send(0, 5, payload(comm.rank() * 1000 + b));
    }
  });
}

TEST(Runtime, ProbeUnderConcurrentLoadMatchesRecv) {
  // probe() answers about the current mailbox; a positive probe must be
  // immediately satisfiable by recv even while senders keep posting.
  static constexpr int kRanks = 6;
  static constexpr int kBurst = 100;
  Cluster cluster(kRanks);
  cluster.run([](Comm& comm) {
    if (comm.rank() == 0) {
      int got = 0;
      std::vector<int> next_seq(kRanks, 0);
      while (got < (kRanks - 1) * kBurst) {
        comm.wait_message(Deadline::never());
        while (comm.probe(kAnySource, 3)) {
          const Message m = comm.recv(kAnySource, 3);
          const auto src = static_cast<std::size_t>(m.source);
          EXPECT_EQ(value_of(m), next_seq[src]) << "from rank " << m.source;
          ++next_seq[src];
          ++got;
        }
        // Specific-source probes agree with what recv would find.
        for (int r = 1; r < kRanks; ++r) {
          if (comm.probe(r, 3)) {
            EXPECT_TRUE(comm.probe(kAnySource, 3));
          }
        }
      }
      EXPECT_FALSE(comm.probe(kAnySource, 3));
    } else {
      for (int b = 0; b < kBurst; ++b) comm.send(0, 3, payload(b));
    }
  });
}

TEST(Runtime, DrainUnderConcurrentMultiSenderLoadKeepsPerSourceOrder) {
  // drain() while other tags are still in flight: per source the drained
  // sequence must be the send sequence, and foreign tags stay untouched.
  static constexpr int kRanks = 8;
  static constexpr int kBurst = 50;
  Cluster cluster(kRanks);
  cluster.run([](Comm& comm) {
    for (int b = 0; b < kBurst; ++b) {
      for (int d = 0; d < kRanks; ++d) {
        if (d == comm.rank()) continue;
        comm.send(d, 11, payload(comm.rank() * 10000 + b));
        if (b % 7 == 0) comm.send(d, 12, payload(b));
      }
    }
    comm.barrier();
    const auto msgs = comm.drain(11);
    ASSERT_EQ(msgs.size(), static_cast<std::size_t>((kRanks - 1) * kBurst));
    std::vector<int> next_seq(kRanks, 0);
    int last_source = -1;
    for (const Message& m : msgs) {
      EXPECT_GE(m.source, last_source) << "drain not sorted by source";
      last_source = m.source;
      const auto src = static_cast<std::size_t>(m.source);
      EXPECT_EQ(value_of(m), m.source * 10000 + next_seq[src]);
      ++next_seq[src];
    }
    // Tag 12 was untouched by the drain; clean it up.
    const auto rest = comm.drain(12);
    EXPECT_EQ(rest.size(), static_cast<std::size_t>((kRanks - 1) * ((kBurst + 6) / 7)));
  });
}

TEST(Runtime, SingleRankClusterWorks) {
  Cluster cluster(1);
  cluster.run([](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    const auto all = comm.allgather(payload(7));
    ASSERT_EQ(all.size(), 1u);
  });
}

}  // namespace
}  // namespace stfw::runtime
