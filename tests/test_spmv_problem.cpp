#include "spmv/distributed.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/error.hpp"
#include "partition/hypergraph.hpp"
#include "partition/partitioner.hpp"
#include "sparse/generators.hpp"

namespace stfw::spmv {
namespace {

TEST(SpmvProblem, TinyHandExample) {
  // [ 1 2 0 0 ]   rows 0,1 -> rank 0; rows 2,3 -> rank 1.
  // [ 0 3 4 0 ]   rank 0 needs x2 (from rank 1); rank 1 needs x1 (rank 0).
  // [ 0 5 6 0 ]
  // [ 0 0 0 7 ]
  const sparse::Csr a = sparse::Csr::from_triplets(
      4, 4, {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}, {1, 2, 4}, {2, 1, 5}, {2, 2, 6}, {3, 3, 7}});
  const std::vector<std::int32_t> parts{0, 0, 1, 1};
  const SpmvProblem problem(a, parts, 2);

  EXPECT_EQ(problem.total_comm_volume_words(), 2);
  EXPECT_EQ(problem.max_local_nnz(), 4);

  const auto pattern = problem.comm_pattern();
  ASSERT_EQ(pattern.sends(0).size(), 1u);
  EXPECT_EQ(pattern.sends(0)[0].dest, 1);
  EXPECT_EQ(pattern.sends(0)[0].payload_bytes, 8u);  // one x entry
  ASSERT_EQ(pattern.sends(1).size(), 1u);
  EXPECT_EQ(pattern.sends(1)[0].dest, 0);

  const RankPlan& p0 = problem.plan(0);
  EXPECT_EQ(p0.owned_rows, (std::vector<std::int32_t>{0, 1}));
  ASSERT_EQ(p0.sends.size(), 1u);
  EXPECT_EQ(p0.sends[0].dest, 1);
  ASSERT_EQ(p0.sends[0].x_slots.size(), 1u);
  EXPECT_EQ(p0.x_slot_global[static_cast<std::size_t>(p0.sends[0].x_slots[0])], 1);  // sends x1
  ASSERT_EQ(p0.recvs.size(), 1u);
  EXPECT_EQ(p0.recvs[0].source, 1);
  ASSERT_EQ(p0.recvs[0].ghost_slots.size(), 1u);
  EXPECT_EQ(p0.x_slot_global[static_cast<std::size_t>(p0.recvs[0].ghost_slots[0])], 2);

  // Local matrices: rank 0 has rows 0,1 with 4 nonzeros over 3 local slots.
  EXPECT_EQ(p0.local.num_rows(), 2);
  EXPECT_EQ(p0.local.num_cols(), 3);
  EXPECT_EQ(p0.local.num_nonzeros(), 4);
}

TEST(SpmvProblem, CommVolumeEqualsConnectivityCost) {
  // The paper's rationale for hypergraph partitioning: total SpMV volume ==
  // connectivity-minus-one of the column-net model.
  const sparse::Csr a =
      sparse::generate(sparse::scaled_spec(sparse::find_paper_matrix("msc10848"), 0.2, 512), 8);
  const partition::Hypergraph h = partition::Hypergraph::column_net_model(a);
  for (std::int32_t k : {4, 16}) {
    partition::PartitionOptions opts;
    opts.num_parts = k;
    const auto parts = partition::partition(h, opts);
    const SpmvProblem problem(a, parts, k, /*build_plans=*/false);
    EXPECT_EQ(problem.total_comm_volume_words(), partition::connectivity_cost(h, parts, k))
        << "k=" << k;
    // Pattern payload agrees (8 bytes per entry).
    EXPECT_EQ(problem.comm_pattern().total_payload_bytes(),
              static_cast<std::uint64_t>(problem.total_comm_volume_words()) * 8);
  }
}

TEST(SpmvProblem, SendAndRecvPlansMirrorEachOther) {
  const sparse::Csr a = sparse::random_uniform(80, 80, 800, 2).symmetrized();
  const auto parts = partition::cyclic_partition(80, 8);
  const SpmvProblem problem(a, parts, 8);
  // For every (owner -> consumer, count) there is a matching recv plan.
  for (core::Rank owner = 0; owner < 8; ++owner) {
    for (const RankPlan::SendTo& s : problem.plan(owner).sends) {
      const RankPlan& consumer = problem.plan(s.dest);
      const auto it = std::find_if(consumer.recvs.begin(), consumer.recvs.end(),
                                   [&](const RankPlan::RecvFrom& r) { return r.source == owner; });
      ASSERT_NE(it, consumer.recvs.end());
      EXPECT_EQ(it->ghost_slots.size(), s.x_slots.size());
      // Sender slot order and receiver ghost order name the same globals.
      for (std::size_t i = 0; i < s.x_slots.size(); ++i) {
        const std::int32_t sent_global =
            problem.plan(owner).x_slot_global[static_cast<std::size_t>(s.x_slots[i])];
        const std::int32_t recv_global =
            consumer.x_slot_global[static_cast<std::size_t>(it->ghost_slots[i])];
        EXPECT_EQ(sent_global, recv_global);
      }
    }
  }
}

TEST(SpmvProblem, MaxLocalNnzTracksPartition) {
  const sparse::Csr a = sparse::stencil_2d(16, 16);
  const auto even = partition::block_partition_rows(a, 4);
  const SpmvProblem p_even(a, even, 4, false);
  // All rows in one rank: max == total.
  const std::vector<std::int32_t> all_zero(static_cast<std::size_t>(a.num_rows()), 0);
  const SpmvProblem p_skew(a, all_zero, 4, false);
  EXPECT_EQ(p_skew.max_local_nnz(), a.num_nonzeros());
  EXPECT_LT(p_even.max_local_nnz(), a.num_nonzeros() / 2);
}

TEST(SpmvProblem, ValidatesInput) {
  const sparse::Csr square = sparse::stencil_2d(4, 4);
  const sparse::Csr rect = sparse::random_uniform(4, 6, 8, 1);
  std::vector<std::int32_t> parts(16, 0);
  EXPECT_THROW(SpmvProblem(rect, std::vector<std::int32_t>(4, 0), 1), core::Error);
  EXPECT_THROW(SpmvProblem(square, std::vector<std::int32_t>(3, 0), 1), core::Error);
  std::vector<std::int32_t> bad = parts;
  bad[0] = 7;
  EXPECT_THROW(SpmvProblem(square, bad, 4), core::Error);
  const SpmvProblem no_plans(square, parts, 1, false);
  EXPECT_THROW(no_plans.plan(0), core::Error);
}

TEST(SpmvProblem, ComputeTimeModel) {
  EXPECT_DOUBLE_EQ(compute_time_us(0), 0.0);
  EXPECT_DOUBLE_EQ(compute_time_us(1000, 12.0), 12.0);
  EXPECT_DOUBLE_EQ(compute_time_us(500000, 10.0), 5000.0);
}

}  // namespace
}  // namespace stfw::spmv
