#include "spmv/runner.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/error.hpp"
#include "partition/partitioner.hpp"
#include "sparse/generators.hpp"

namespace stfw::spmv {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(n);
  for (double& v : x) v = dist(rng);
  return x;
}

void expect_near(std::span<const double> a, std::span<const double> b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], tol) << "index " << i;
}

struct RunnerCase {
  const char* matrix;
  double scale;
  core::Rank ranks;
  std::vector<int> vpt_dims;  // empty = direct / BL
  int iterations;
};

class DistributedSpmv : public ::testing::TestWithParam<RunnerCase> {};

TEST_P(DistributedSpmv, MatchesSerialReference) {
  const auto& param = GetParam();
  const sparse::MatrixSpec spec =
      sparse::scaled_spec(sparse::find_paper_matrix(param.matrix), param.scale, 128);
  const sparse::Csr a = sparse::generate(spec, 31);
  partition::PartitionOptions opts;
  opts.num_parts = param.ranks;
  const auto parts = partition::partition_rows(a, opts);
  const SpmvProblem problem(a, parts, param.ranks);

  const core::Vpt vpt = param.vpt_dims.empty() ? core::Vpt::direct(param.ranks)
                                               : core::Vpt(param.vpt_dims);
  runtime::Cluster cluster(param.ranks);
  const auto x0 = random_vector(static_cast<std::size_t>(a.num_rows()), 77);
  const auto distributed = run_distributed(cluster, problem, vpt, x0, param.iterations);
  const auto serial = run_serial(a, x0, param.iterations);
  // Same owner computes each row with identical local ordering -> near-exact.
  expect_near(distributed, serial, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedSpmv,
    ::testing::Values(RunnerCase{"cbuckle", 0.05, 4, {}, 1},
                      RunnerCase{"cbuckle", 0.05, 4, {2, 2}, 1},
                      RunnerCase{"sparsine", 0.02, 8, {2, 2, 2}, 1},
                      RunnerCase{"sparsine", 0.02, 8, {8}, 2},
                      RunnerCase{"GaAsH6", 0.01, 16, {4, 4}, 1},
                      RunnerCase{"GaAsH6", 0.01, 16, {2, 2, 2, 2}, 3},
                      RunnerCase{"gupta2", 0.01, 16, {4, 2, 2}, 2},
                      RunnerCase{"coAuthorsDBLP", 0.005, 32, {2, 4, 4}, 1}));

TEST(DistributedSpmvEdge, SingleRankMatchesSerial) {
  const sparse::Csr a = sparse::stencil_2d(8, 8);
  const std::vector<std::int32_t> parts(static_cast<std::size_t>(a.num_rows()), 0);
  const SpmvProblem problem(a, parts, 1);
  runtime::Cluster cluster(1);
  const auto x0 = random_vector(static_cast<std::size_t>(a.num_rows()), 1);
  expect_near(run_distributed(cluster, problem, core::Vpt::direct(1), x0),
              run_serial(a, x0), 1e-12);
}

TEST(DistributedSpmvEdge, EmptyRanksParticipate) {
  // More ranks than busy parts: some ranks own nothing but still take part
  // in every stage of the exchange.
  const sparse::Csr a = sparse::stencil_2d(4, 4);  // 16 rows
  std::vector<std::int32_t> parts(16, 0);
  for (int i = 0; i < 16; ++i) parts[static_cast<std::size_t>(i)] = i % 3;  // ranks 3..7 empty
  const SpmvProblem problem(a, parts, 8);
  runtime::Cluster cluster(8);
  const auto x0 = random_vector(16, 2);
  expect_near(run_distributed(cluster, problem, core::Vpt({2, 2, 2}), x0),
              run_serial(a, x0), 1e-12);
}

TEST(DistributedSpmvEdge, ResultsIdenticalAcrossVpts) {
  // Different VPTs reorganize the communication but the numeric result is
  // bit-identical (same owner, same local kernel, same operand order).
  const sparse::Csr a = sparse::generate(
      sparse::scaled_spec(sparse::find_paper_matrix("pattern1"), 0.05, 128), 13);
  partition::PartitionOptions opts;
  opts.num_parts = 16;
  const auto parts = partition::partition_rows(a, opts);
  const SpmvProblem problem(a, parts, 16);
  runtime::Cluster cluster(16);
  const auto x0 = random_vector(static_cast<std::size_t>(a.num_rows()), 5);

  const auto bl = run_distributed(cluster, problem, core::Vpt::direct(16), x0, 2);
  for (const core::Vpt& vpt : {core::Vpt({4, 4}), core::Vpt({2, 2, 2, 2}), core::Vpt({2, 8})}) {
    const auto stfw = run_distributed(cluster, problem, vpt, x0, 2);
    ASSERT_EQ(stfw.size(), bl.size());
    for (std::size_t i = 0; i < bl.size(); ++i)
      EXPECT_DOUBLE_EQ(stfw[i], bl[i]) << vpt.to_string() << " index " << i;
  }
}

TEST(DistributedSpmvEdge, OverlapIsBitIdenticalToSynchronous) {
  // The overlapped schedule computes interior rows inside the exchange and
  // boundary rows after the ghost scatter, with the exact per-row
  // accumulation order of the monolithic kernel — so overlap on/off must be
  // bit-identical, not merely near.
  const sparse::Csr a = sparse::generate(
      sparse::scaled_spec(sparse::find_paper_matrix("pattern1"), 0.05, 128), 13);
  partition::PartitionOptions opts;
  opts.num_parts = 16;
  const auto parts = partition::partition_rows(a, opts);
  const SpmvProblem problem(a, parts, 16);
  runtime::Cluster cluster(16);
  const auto x0 = random_vector(static_cast<std::size_t>(a.num_rows()), 5);

  const core::Vpt vpt({4, 4});
  const auto sync = run_distributed(cluster, problem, vpt, x0, 3, nullptr, /*overlap=*/false);
  const auto over = run_distributed(cluster, problem, vpt, x0, 3, nullptr, /*overlap=*/true);
  ASSERT_EQ(over.size(), sync.size());
  for (std::size_t i = 0; i < sync.size(); ++i)
    EXPECT_DOUBLE_EQ(over[i], sync[i]) << "index " << i;

  const auto sync_mm =
      run_distributed_spmm(cluster, problem, vpt, x0, 1, 2, nullptr, /*overlap=*/false);
  const auto over_mm =
      run_distributed_spmm(cluster, problem, vpt, x0, 1, 2, nullptr, /*overlap=*/true);
  ASSERT_EQ(over_mm.size(), sync_mm.size());
  for (std::size_t i = 0; i < sync_mm.size(); ++i)
    EXPECT_DOUBLE_EQ(over_mm[i], sync_mm[i]) << "index " << i;
}

struct SpmmCase {
  std::int32_t num_vectors;
  std::vector<int> vpt_dims;
  int iterations;
};

class DistributedSpmm : public ::testing::TestWithParam<SpmmCase> {};

TEST_P(DistributedSpmm, MatchesSerialReference) {
  const auto& param = GetParam();
  const sparse::Csr a = sparse::generate(
      sparse::scaled_spec(sparse::find_paper_matrix("msc10848"), 0.05, 128), 41);
  constexpr core::Rank K = 8;
  partition::PartitionOptions opts;
  opts.num_parts = K;
  const auto parts = partition::partition_rows(a, opts);
  const SpmvProblem problem(a, parts, K);

  const core::Vpt vpt = param.vpt_dims.empty() ? core::Vpt::direct(K)
                                               : core::Vpt(param.vpt_dims);
  runtime::Cluster cluster(K);
  const auto x0 = random_vector(
      static_cast<std::size_t>(a.num_rows()) * static_cast<std::size_t>(param.num_vectors), 3);
  const auto distributed =
      run_distributed_spmm(cluster, problem, vpt, x0, param.num_vectors, param.iterations);
  const auto serial = run_serial_spmm(a, x0, param.num_vectors, param.iterations);
  expect_near(distributed, serial, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedSpmm,
                         ::testing::Values(SpmmCase{1, {}, 1}, SpmmCase{4, {}, 1},
                                           SpmmCase{4, {2, 2, 2}, 1},
                                           SpmmCase{8, {4, 2}, 2},
                                           SpmmCase{16, {2, 4}, 1},
                                           SpmmCase{3, {8}, 3}));

TEST(DistributedSpmmEdge, SingleVectorEqualsSpmv) {
  const sparse::Csr a = sparse::stencil_2d(6, 6);
  const std::vector<std::int32_t> parts = partition::cyclic_partition(a.num_rows(), 4);
  const SpmvProblem problem(a, parts, 4);
  runtime::Cluster cluster(4);
  const auto x0 = random_vector(static_cast<std::size_t>(a.num_rows()), 9);
  const auto spmm = run_distributed_spmm(cluster, problem, core::Vpt({2, 2}), x0, 1, 2);
  const auto spmv = run_distributed(cluster, problem, core::Vpt({2, 2}), x0, 2);
  expect_near(spmm, spmv, 0.0);
}

TEST(DistributedSpmvEdge, ValidatesArguments) {
  const sparse::Csr a = sparse::stencil_2d(4, 4);
  const std::vector<std::int32_t> parts(16, 0);
  const SpmvProblem with_plans(a, parts, 2);
  const SpmvProblem no_plans(a, parts, 2, false);
  runtime::Cluster cluster(2);
  const std::vector<double> x0(16, 1.0);
  EXPECT_THROW(run_distributed(cluster, no_plans, core::Vpt::direct(2), x0), core::Error);
  EXPECT_THROW(run_distributed(cluster, with_plans, core::Vpt::direct(2), x0, 0), core::Error);
  const std::vector<double> short_x(4, 1.0);
  EXPECT_THROW(run_distributed(cluster, with_plans, core::Vpt::direct(2), short_x), core::Error);
  runtime::Cluster wrong(4);
  EXPECT_THROW(run_distributed(wrong, with_plans, core::Vpt::direct(4), x0), core::Error);
}

}  // namespace
}  // namespace stfw::spmv
