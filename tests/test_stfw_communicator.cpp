#include "runtime/stfw_communicator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <random>

#include "core/analysis.hpp"
#include "core/error.hpp"
#include "core/wire.hpp"

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

/// A reproducible random scenario: sendsets[i] = messages of rank i, where
/// each payload encodes (source, dest, salt) so delivery can be verified.
using SendSets = std::vector<std::vector<OutboundMessage>>;

std::vector<std::byte> encode(Rank src, Rank dest, std::uint32_t salt, std::size_t len) {
  std::vector<std::byte> b(12 + len);
  std::memcpy(b.data(), &src, 4);
  std::memcpy(b.data() + 4, &dest, 4);
  std::memcpy(b.data() + 8, &salt, 4);
  for (std::size_t i = 0; i < len; ++i)
    b[12 + i] = static_cast<std::byte>((salt + i) & 0xff);
  return b;
}

SendSets random_sendsets(Rank K, double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> len(0, 48);
  SendSets sets(static_cast<std::size_t>(K));
  std::uint32_t salt = 0;
  for (Rank i = 0; i < K; ++i)
    for (Rank j = 0; j < K; ++j) {
      if (j == i || coin(rng) >= density) continue;  // SendSets exclude self

      sets[static_cast<std::size_t>(i)].push_back(
          OutboundMessage{j, encode(i, j, ++salt, len(rng))});
    }
  return sets;
}

/// Runs the exchange on a threaded cluster and checks every message arrived
/// exactly once, intact, at the right rank.
void run_and_verify(const Vpt& vpt, const SendSets& sets) {
  const Rank K = vpt.size();
  runtime::Cluster cluster(K);
  std::vector<std::vector<InboundMessage>> received(static_cast<std::size_t>(K));
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    received[static_cast<std::size_t>(comm.rank())] =
        communicator.exchange(sets[static_cast<std::size_t>(comm.rank())]);
  });

  // Expected inbox of each rank.
  std::vector<std::multimap<Rank, const OutboundMessage*>> expected(static_cast<std::size_t>(K));
  for (Rank i = 0; i < K; ++i)
    for (const OutboundMessage& m : sets[static_cast<std::size_t>(i)])
      expected[static_cast<std::size_t>(m.dest)].emplace(i, &m);

  for (Rank r = 0; r < K; ++r) {
    const auto& inbox = received[static_cast<std::size_t>(r)];
    auto& exp = expected[static_cast<std::size_t>(r)];
    ASSERT_EQ(inbox.size(), exp.size()) << "rank " << r;
    for (const InboundMessage& m : inbox) {
      auto [lo, hi] = exp.equal_range(m.source);
      bool matched = false;
      for (auto it = lo; it != hi; ++it) {
        if (it->second->bytes == m.bytes) {
          exp.erase(it);
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "rank " << r << " got an unexpected message from " << m.source;
    }
    EXPECT_TRUE(exp.empty()) << "rank " << r << " missed messages";
  }
}

struct TopologyCase {
  std::vector<int> dims;
  double density;
};

class CommunicatorProperty : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(CommunicatorProperty, DeliversEverythingExactlyOnce) {
  const auto& param = GetParam();
  const Vpt vpt(param.dims);
  run_and_verify(vpt, random_sendsets(vpt.size(), param.density, 12345));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CommunicatorProperty,
    ::testing::Values(TopologyCase{{8}, 0.4},                 // BL / direct
                      TopologyCase{{4, 2}, 0.4},              // mixed sizes
                      TopologyCase{{2, 4}, 0.4},
                      TopologyCase{{2, 2, 2}, 0.5},           // hypercube 8
                      TopologyCase{{4, 4}, 0.3},
                      TopologyCase{{4, 4}, 1.0},              // complete exchange
                      TopologyCase{{2, 2, 2, 2}, 0.3},
                      TopologyCase{{4, 2, 4}, 0.25},
                      TopologyCase{{8, 4}, 0.15},
                      TopologyCase{{2, 4, 4}, 0.15},
                      TopologyCase{{32}, 0.1},
                      TopologyCase{{2, 2, 2, 2, 2}, 0.1}));

TEST(Communicator, EmptyExchange) {
  const Vpt vpt({4, 4});
  runtime::Cluster cluster(16);
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    const auto inbox = communicator.exchange({});
    EXPECT_TRUE(inbox.empty());
    EXPECT_EQ(communicator.last_stats().messages_sent, 0);
  });
}

TEST(Communicator, SelfMessageDeliveredLocally) {
  const Vpt vpt({2, 2});
  runtime::Cluster cluster(4);
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    const auto me = static_cast<Rank>(comm.rank());
    std::vector<OutboundMessage> sends;
    sends.push_back(OutboundMessage{me, encode(me, me, 7, 4)});
    const auto inbox = communicator.exchange(sends);
    ASSERT_EQ(inbox.size(), 1u);
    EXPECT_EQ(inbox[0].source, me);
    EXPECT_EQ(communicator.last_stats().messages_sent, 0);  // never hits the wire
  });
}

TEST(Communicator, RepeatedExchangesAreIndependent) {
  const Vpt vpt({2, 2, 2});
  const auto sets1 = random_sendsets(8, 0.4, 1);
  const auto sets2 = random_sendsets(8, 0.4, 2);
  runtime::Cluster cluster(8);
  std::vector<std::size_t> first_counts(8), second_counts(8);
  std::vector<std::vector<InboundMessage>> inbox1(8), inbox2(8);
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    const auto r = static_cast<std::size_t>(comm.rank());
    inbox1[r] = communicator.exchange(sets1[r]);
    inbox2[r] = communicator.exchange(sets2[r]);
  });
  std::size_t total1 = 0, total2 = 0, sent1 = 0, sent2 = 0;
  for (const auto& s : sets1) sent1 += s.size();
  for (const auto& s : sets2) sent2 += s.size();
  for (const auto& i : inbox1) total1 += i.size();
  for (const auto& i : inbox2) total2 += i.size();
  EXPECT_EQ(total1, sent1);
  EXPECT_EQ(total2, sent2);
}

TEST(Communicator, MaxMessageCountRespectsSection4Bound) {
  // Even under a complete exchange, no rank sends more than sum(k_d - 1)
  // messages — the Section 4 guarantee BL cannot give.
  const Vpt vpt({4, 2, 2});
  const Rank K = vpt.size();
  const auto sets = random_sendsets(K, 1.0, 99);
  runtime::Cluster cluster(K);
  std::vector<std::int64_t> sent(static_cast<std::size_t>(K));
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator communicator(comm, vpt);
    communicator.exchange(sets[static_cast<std::size_t>(comm.rank())]);
    sent[static_cast<std::size_t>(comm.rank())] = communicator.last_stats().messages_sent;
  });
  for (Rank r = 0; r < K; ++r)
    EXPECT_LE(sent[static_cast<std::size_t>(r)], vpt.max_message_count_bound());
  // For the complete exchange the bound is tight.
  EXPECT_EQ(*std::max_element(sent.begin(), sent.end()), vpt.max_message_count_bound());
}

#ifdef STFW_VALIDATE_ENABLED
TEST(Communicator, ValidatorActiveByDefaultInValidateBuilds) {
  ASSERT_TRUE(StfwCommunicator::validation_available());
}

TEST(Communicator, ValidatorDetectsMisroutedMessage) {
  // A forged stage-0 wire message whose submessage header claims a final
  // destination the receiving rank cannot legally hold under dimension-order
  // routing. The validator must catch it before the rank-state scatters it.
  const Vpt vpt({2, 2});
  runtime::Cluster cluster(4);
  EXPECT_THROW(
      cluster.run([&](runtime::Comm& comm) {
        StfwCommunicator communicator(comm, vpt);
        communicator.set_validation(true);
        if (comm.rank() == 1) {
          core::PayloadArena arena;
          core::StageMessage forged;
          forged.from = 1;
          forged.to = 0;  // a legitimate dimension-0 neighbor of rank 1
          const std::vector<std::byte> payload(8, std::byte{0x5a});
          // Final destination 3 = (1,1): rank 0's dimension-0 digit cannot
          // match it, so the header is misrouted/corrupted.
          forged.subs.push_back(core::Submessage{1, 3, arena.add(payload),
                                                 static_cast<std::uint32_t>(payload.size())});
          comm.send(0, /*tag=*/0, core::serialize(forged, arena));
        }
        communicator.exchange({});
      }),
      core::ValidationError);
}

TEST(Communicator, ValidatorDetectsLostPayload) {
  // A raw message that bypasses the communicator entirely: rank 1 injects a
  // well-formed stage message the validator's conservation pass has no seed
  // claim for, so the exchange-wide payload-conservation check must fire.
  const Vpt vpt({2, 2});
  runtime::Cluster cluster(4);
  EXPECT_THROW(
      cluster.run([&](runtime::Comm& comm) {
        StfwCommunicator communicator(comm, vpt);
        communicator.set_validation(true);
        if (comm.rank() == 1) {
          core::PayloadArena arena;
          core::StageMessage forged;
          forged.from = 1;
          forged.to = 0;
          const std::vector<std::byte> payload(4, std::byte{0x7e});
          forged.subs.push_back(core::Submessage{1, 0, arena.add(payload),
                                                 static_cast<std::uint32_t>(payload.size())});
          comm.send(0, /*tag=*/0, core::serialize(forged, arena));
        }
        communicator.exchange({});
      }),
      core::ValidationError);
}
#endif  // STFW_VALIDATE_ENABLED

TEST(Communicator, RejectsMismatchedVptSize) {
  runtime::Cluster cluster(4);
  EXPECT_THROW(cluster.run([&](runtime::Comm& comm) {
                 StfwCommunicator communicator(comm, Vpt::direct(8));
               }),
               core::Error);
}

TEST(Communicator, BaselineEqualsDirectSends) {
  // With Vpt::direct the stats must equal plain point-to-point behaviour:
  // every rank sends exactly |SendSet| messages and forwards nothing.
  const Rank K = 8;
  const auto sets = random_sendsets(K, 0.5, 4242);
  runtime::Cluster cluster(K);
  cluster.run([&](runtime::Comm& comm) {
    StfwCommunicator bl(comm, Vpt::direct(K));
    const auto r = static_cast<std::size_t>(comm.rank());
    bl.exchange(sets[r]);
    std::uint64_t payload = 0;
    for (const auto& m : sets[r]) payload += m.bytes.size();
    EXPECT_EQ(bl.last_stats().messages_sent, static_cast<std::int64_t>(sets[r].size()));
    EXPECT_EQ(bl.last_stats().payload_bytes_sent, payload);
  });
}

}  // namespace
}  // namespace stfw
