#include "netsim/topology.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace stfw::netsim {
namespace {

TEST(Torus, RingDistancesWithWraparound) {
  const TorusTopology t({8});
  EXPECT_EQ(t.num_nodes(), 8);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 1);
  EXPECT_EQ(t.hops(0, 4), 4);
  EXPECT_EQ(t.hops(0, 7), 1);  // wrap-around
  EXPECT_EQ(t.hops(2, 6), 4);
}

TEST(Torus, MultiDimensionalHopsAreSumOfRings) {
  const TorusTopology t({4, 4, 4});
  EXPECT_EQ(t.num_nodes(), 64);
  // node = x + 4y + 16z
  EXPECT_EQ(t.hops(0, 1 + 4 * 1 + 16 * 1), 3);
  EXPECT_EQ(t.hops(0, 2 + 4 * 2 + 16 * 2), 6);  // max per dim is 2 in a 4-ring
  EXPECT_EQ(t.hops(0, 3), 1);                   // wrap in x
}

TEST(Torus, HopsAreSymmetricAndTriangular) {
  const TorusTopology t({3, 5});
  for (int a = 0; a < t.num_nodes(); ++a)
    for (int b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
      for (int c = 0; c < t.num_nodes(); c += 4)
        EXPECT_LE(t.hops(a, b), t.hops(a, c) + t.hops(c, b));
    }
}

TEST(Torus, FittingProducesNearCubicShape) {
  const auto t3 = TorusTopology::fitting(1000, 3);
  EXPECT_GE(t3.num_nodes(), 1000);
  const auto& d = t3.dims();
  ASSERT_EQ(d.size(), 3u);
  const auto [mn, mx] = std::minmax_element(d.begin(), d.end());
  EXPECT_LE(*mx - *mn, 2);

  const auto t5 = TorusTopology::fitting(1024, 5);
  EXPECT_GE(t5.num_nodes(), 1024);
  EXPECT_EQ(t5.dims().size(), 5u);

  const auto t1 = TorusTopology::fitting(7, 1);
  EXPECT_EQ(t1.num_nodes(), 7);
}

TEST(Torus, RejectsBadInput) {
  EXPECT_THROW(TorusTopology({}), core::Error);
  EXPECT_THROW(TorusTopology({0}), core::Error);
  const TorusTopology t({4});
  EXPECT_THROW(t.hops(0, 4), core::Error);
  EXPECT_THROW(t.hops(-1, 0), core::Error);
}

TEST(Dragonfly, HopTiers) {
  const DragonflyTopology d(4, 8, 4);  // 4 groups x 8 routers x 4 nodes
  EXPECT_EQ(d.num_nodes(), 128);
  EXPECT_EQ(d.hops(0, 0), 0);
  EXPECT_EQ(d.hops(0, 1), 1);    // same router
  EXPECT_EQ(d.hops(0, 4), 2);    // same group, different router
  EXPECT_EQ(d.hops(0, 31), 2);   // last node of group 0
  EXPECT_EQ(d.hops(0, 32), 5);   // first node of group 1
  EXPECT_EQ(d.hops(0, 127), 5);
}

TEST(Dragonfly, HopsAreSymmetric) {
  const DragonflyTopology d(3, 4, 2);
  for (int a = 0; a < d.num_nodes(); ++a)
    for (int b = 0; b < d.num_nodes(); ++b) EXPECT_EQ(d.hops(a, b), d.hops(b, a));
}

TEST(Dragonfly, FittingUsesAriesProportions) {
  const auto d = DragonflyTopology::fitting(512);
  EXPECT_GE(d.num_nodes(), 512);
  EXPECT_EQ(d.routers_per_group(), 96);
  EXPECT_EQ(d.nodes_per_router(), 4);
  const auto big = DragonflyTopology::fitting(2000);
  EXPECT_GE(big.num_nodes(), 2000);
  EXPECT_GE(big.groups(), 6);
}

TEST(Dragonfly, RejectsBadInput) {
  EXPECT_THROW(DragonflyTopology(0, 1, 1), core::Error);
  const DragonflyTopology d(2, 2, 2);
  EXPECT_THROW(d.hops(0, 8), core::Error);
}

}  // namespace
}  // namespace stfw::netsim
